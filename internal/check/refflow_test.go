package check

import (
	"math/rand"
	"testing"

	"repro/internal/flow"
)

// Known-answer sanity for the reference solvers themselves: a diamond
// with a cheap narrow path and an expensive wide one.
func TestRefGraphKnownAnswer(t *testing.T) {
	//      1
	//    /   \
	//  0       3     0-1-3: cap 2, cost 1+0
	//    \   /       0-2-3: cap 3, cost 5+0
	//      2
	g := &RefGraph{N: 4, Edges: []RefEdge{
		{0, 1, 2, 1}, {1, 3, 2, 0},
		{0, 2, 3, 5}, {2, 3, 3, 0},
	}}
	if f := g.MaxFlow(0, 3); f != 5 {
		t.Fatalf("max flow = %d, want 5", f)
	}
	f, c := g.MinCostMaxFlow(0, 3, refUnbounded)
	if f != 5 || c != 2*1+3*5 {
		t.Fatalf("min-cost max-flow = (%d,%d), want (5,17)", f, c)
	}
	// Limited to 2 units it must take only the cheap path.
	f, c = g.MinCostMaxFlow(0, 3, 2)
	if f != 2 || c != 2 {
		t.Fatalf("limited = (%d,%d), want (2,2)", f, c)
	}
	// Unreachable sink.
	iso := &RefGraph{N: 3, Edges: []RefEdge{{0, 1, 4, 1}}}
	if f := iso.MaxFlow(0, 2); f != 0 {
		t.Fatalf("disconnected sink max flow = %d, want 0", f)
	}
}

// TestDifferentialOracles is the acceptance-criterion sweep: across at
// least 256 seeded random instances, the production SSP and Dinic
// solvers and both naive references must agree on max-flow value, SSP's
// cost must be the reference optimum, conservation/Reset round-trip
// must hold, and warm-started workspace solves must be bit-identical to
// cold ones across Reset, Clear+rebuild and capacity drift (all folded
// into DiffCheck).
func TestDifferentialOracles(t *testing.T) {
	count := 0
	for seed := int64(0); seed < 64; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 4; i++ {
			in := RandomInstance(rng, 9, 24, 15, 31)
			if err := DiffCheck(in); err != nil {
				t.Fatalf("seed %d instance %d: %v\ninstance: %+v", seed, i, err, in)
			}
			count++
		}
	}
	if count < 256 {
		t.Fatalf("only %d instances checked, acceptance needs >= 256", count)
	}
}

// Metamorphic property at the solver level: multiplying every edge cost
// by a positive constant k preserves every shortest-path comparison, so
// the SSP solver must route the identical per-edge flows with total
// cost scaled exactly by k.
func TestFlowCostScalingMetamorphic(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		in := RandomInstance(rng, 8, 20, 10, 20)
		for _, k := range []int64{2, 3, 10} {
			scaled := Instance{Nodes: in.Nodes, Src: in.Src, Sink: in.Sink,
				Edges: append([]RefEdge(nil), in.Edges...)}
			for i := range scaled.Edges {
				scaled.Edges[i].Cost *= k
			}
			g1, ids1 := in.Graph()
			g2, ids2 := scaled.Graph()
			r1 := g1.MinCostFlow(in.Src, in.Sink, refUnbounded)
			r2 := g2.MinCostFlow(in.Src, in.Sink, refUnbounded)
			if r2.Flow != r1.Flow {
				t.Fatalf("seed %d k=%d: flow changed %d -> %d", seed, k, r1.Flow, r2.Flow)
			}
			if r2.Cost != k*r1.Cost {
				t.Fatalf("seed %d k=%d: cost %d, want %d*%d", seed, k, r2.Cost, k, r1.Cost)
			}
			for i := range ids1 {
				if f1, f2 := g1.Flow(ids1[i]), g2.Flow(ids2[i]); f1 != f2 {
					t.Fatalf("seed %d k=%d edge %d: flow %d -> %d", seed, k, i, f1, f2)
				}
			}
		}
	}
}

// TestWarmStartMetamorphicInterleave drives a workspace-backed graph
// through random interleavings of Clear+rebuild (same shape, capacity
// drift or genuine shape change), Reset and WarmStart, checking after
// every solve that the result and per-edge flows equal a fresh cold
// graph's — i.e. the memo life-cycle never leaks stale state no matter
// the operation order.
func TestWarmStartMetamorphicInterleave(t *testing.T) {
	const refLimit = refUnbounded
	for seed := int64(0); seed < 32; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		base := RandomInstance(rng, 8, 20, 12, 24)
		if len(base.Edges) == 0 {
			continue
		}
		cur := base
		g, _ := cur.Graph()
		ws := flow.NewWorkspace()
		g.SetWorkspace(ws)
		dirty := false
		rebuild := func(in Instance) {
			g.Clear()
			g.AddNodes(in.Nodes)
			for _, e := range in.Edges {
				g.AddEdge(e.From, e.To, e.Cap, e.Cost)
			}
			cur, dirty = in, false
		}
		for op := 0; op < 40; op++ {
			switch rng.Intn(4) {
			case 0: // rebuild unchanged
				rebuild(cur)
			case 1: // rebuild with a perturbed edge
				next := Instance{Nodes: cur.Nodes, Src: cur.Src, Sink: cur.Sink,
					Edges: append([]RefEdge(nil), cur.Edges...)}
				e := &next.Edges[rng.Intn(len(next.Edges))]
				switch rng.Intn(3) {
				case 0: // capacity drift (shape kept while cap stays open)
					if e.Cap > 0 {
						e.Cap += int64(rng.Intn(8))
					}
				case 1: // open/closed flip (shape change)
					if e.Cap > 0 {
						e.Cap = 0
					} else {
						e.Cap = 1 + int64(rng.Intn(8))
					}
				case 2: // cost change (shape change)
					e.Cost = int64(rng.Intn(25))
				}
				rebuild(next)
			case 2:
				g.Reset()
				dirty = false
			case 3:
				if dirty {
					g.Reset()
				}
				warm := g.WarmStart(cur.Src, cur.Sink, refLimit)
				dirty = true
				gc, cids := cur.Graph()
				cold := gc.MinCostFlow(cur.Src, cur.Sink, refLimit)
				if warm != cold {
					t.Fatalf("seed %d op %d: warm %+v != cold %+v\ninstance: %+v", seed, op, warm, cold, cur)
				}
				for i := range cids {
					if fw, fc := g.Flow(cids[i]), gc.Flow(cids[i]); fw != fc {
						t.Fatalf("seed %d op %d edge %d: warm flow %d, cold %d", seed, op, i, fw, fc)
					}
				}
			}
		}
		if ws.Solves == 0 {
			t.Fatalf("seed %d: interleave never solved", seed)
		}
	}
}

func TestDecodeInstanceBounded(t *testing.T) {
	if _, ok := DecodeInstance(nil); ok {
		t.Fatal("empty input decoded")
	}
	in, ok := DecodeInstance([]byte{7, 0, 1, 200, 100, 5, 5, 9, 9})
	if !ok {
		t.Fatal("decode failed")
	}
	if in.Nodes < 2 || in.Nodes > 9 {
		t.Fatalf("nodes = %d outside [2,9]", in.Nodes)
	}
	for _, e := range in.Edges {
		if e.From == e.To || e.From >= in.Nodes || e.To >= in.Nodes || e.Cap < 0 || e.Cap > 15 || e.Cost < 0 || e.Cost > 31 {
			t.Fatalf("edge out of bounds: %+v", e)
		}
	}
}
