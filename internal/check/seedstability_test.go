package check_test

import "testing"

// Seed-stability goldens: the replay digests of the standard verified
// scenario (PhysicalTestbed, P3, 6 s horizon, LC 40/s, BE 15/s) for two
// seeds, captured before the solver hot path was rewritten around the
// pooled workspace and warm starts. The refactor's contract is that it
// changed the architecture, not the behavior: the index-based heap
// replicates container/heap's sift order exactly and a warm-started
// solve replays the memoized first Dijkstra pass bit-for-bit, so the
// digests must stay byte-identical. If an intentional behavior change
// ever lands, recapture with `go test -run TestSeedStabilityGoldens -v
// -args -update` semantics: update these constants in the same commit
// that justifies the change.
// Report goldens recaptured when the live-telemetry plane added the
// deterministic tango_slo_phi / tango_slo_rolling_phi / tango_solver_*
// gauges to the collector scrape, and again when the sharded scheduling
// layer landed: the warm-start memo became a per-(cluster,type,phase)
// table (multi-commodity batches now warm-hit every commodity instead
// of only the last one solved, moving tango_solver_warm_hits_total /
// warm_hit_rate) and the run config gained the lc_shards key. The trace
// stream is untouched by all of it — keyed memo replays are
// bit-identical to cold solves — so the stream goldens predate these
// changes and still hold.
var seedGoldens = map[int64]struct{ stream, report string }{
	42: {
		stream: "7ac3ae96964454da0b52a10b2f9d1e267877e1200c1d3285324fa59e55b22ad3",
		report: "f0d08fb105a73b822b02dc1e22fea3899d1a4579e8ddefab24b1aea181e270aa",
	},
	7: {
		stream: "cd4820b5572b8075354dcaf1f66a93f2400ccb63c7a4cfabffafe08c941c4496",
		report: "06bbf3524ae5547517421dd42264b699e9242075e82bd1b8a69a4659bed7ad90",
	},
}

func TestSeedStabilityGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("replay runs are slow under -short")
	}
	for seed, want := range seedGoldens {
		stream, report, violations := replayRun(t, seed)
		if violations != nil {
			t.Fatalf("seed %d: verifier violations: %v", seed, violations)
		}
		t.Logf("seed %d: stream=%s report=%s", seed, stream, report)
		if stream != want.stream {
			t.Errorf("seed %d: stream digest drifted:\n  golden %s\n  got    %s", seed, want.stream, stream)
		}
		if report != want.report {
			t.Errorf("seed %d: report digest drifted:\n  golden %s\n  got    %s", seed, want.report, report)
		}
	}
}
