package check_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Perf instrumentation measures the host, not the simulation, so the
// replay-digest contract must be blind to it: a profiled run and an
// unprofiled run of the same scenario+seed produce identical stream AND
// report digests, and two profiled runs agree with each other.

func perfReplayRun(t *testing.T, seed int64, profiled bool) (stream, report string, prof *perf.Profiler) {
	t.Helper()
	tp := topo.PhysicalTestbed()
	var clusters []topo.ClusterID
	for _, c := range tp.Clusters {
		clusters = append(clusters, c.ID)
	}
	gen := trace.DefaultGenConfig(clusters, trace.P3, replayHorizon, seed)
	gen.LCRatePerSec = 40
	gen.BERatePerSec = 15
	reqs := trace.Generate(gen)

	opts := core.Tango(tp, seed)
	ds := obs.NewDigestSink(nil)
	opts.TraceSink = ds
	opts.TraceTag = "replay"
	if profiled {
		prof = perf.New()
		opts.Profiler = prof
	}
	sys := core.New(opts)
	sys.Inject(reqs)
	sys.Run(replayHorizon + 2*time.Second)
	rep := sys.Report("tango", 0)
	if profiled {
		if rep.Perf == nil {
			t.Fatal("profiled run report lacks the perf section")
		}
		if len(rep.Perf.Runtime) == 0 {
			t.Fatal("profiled run report lacks runtime samples")
		}
	} else if rep.Perf != nil {
		t.Fatal("unprofiled run report has a perf section")
	}
	return ds.Sum(), obs.ReportDigest(rep), prof
}

func TestPerfInstrumentationPreservesReplayDigests(t *testing.T) {
	sOff, rOff, _ := perfReplayRun(t, 42, false)
	sOn, rOn, prof := perfReplayRun(t, 42, true)
	sOn2, rOn2, _ := perfReplayRun(t, 42, true)

	if sOn != sOff {
		t.Fatalf("profiling changed the stream digest:\n  off %s\n  on  %s", sOff, sOn)
	}
	if rOn != rOff {
		t.Fatalf("profiling changed the report digest:\n  off %s\n  on  %s", rOff, rOn)
	}
	if sOn != sOn2 || rOn != rOn2 {
		t.Fatal("two profiled runs disagree with each other")
	}
	// The profiler actually measured the run it rode along on.
	if prof.Stats(perf.PhaseEngineDispatch).Calls == 0 {
		t.Fatal("profiled run recorded no dispatch rounds")
	}
	if prof.Stats(perf.PhaseSolveMCNF).Calls == 0 {
		t.Fatal("profiled run recorded no MCNF solves")
	}
}

// The profiled run's report must surface solver, engine and cgroup
// phase rows plus perf_* registry series, and every perf-derived key
// must wear the digest-exclusion prefix.
func TestPerfReportContents(t *testing.T) {
	tp := topo.PhysicalTestbed()
	var clusters []topo.ClusterID
	for _, c := range tp.Clusters {
		clusters = append(clusters, c.ID)
	}
	gen := trace.DefaultGenConfig(clusters, trace.P3, 4*time.Second, 7)
	reqs := trace.Generate(gen)
	opts := core.Tango(tp, 7)
	opts.TraceSink = obs.NullSink{}
	opts.Profiler = perf.New()
	sys := core.New(opts)
	sys.Inject(reqs)
	sys.Run(5 * time.Second)
	rep := sys.Report("tango", 0)

	if rep.Perf == nil {
		t.Fatal("no perf section")
	}
	phases := map[string]obs.PhasePerf{}
	for _, p := range rep.Perf.Phases {
		phases[p.Phase] = p
	}
	// All subsystems present (cgroup as a zero row in tango mode, where
	// D-VPA cost is modeled as ScaleLatency rather than cgroup writes).
	for _, want := range []string{"solve/mcnf", "solve/dijkstra", "engine/dispatch",
		"engine/admission", "engine/collect", "cgroup/reconcile"} {
		if _, ok := phases[want]; !ok {
			t.Fatalf("perf section missing phase %q", want)
		}
	}
	for _, busy := range []string{"solve/mcnf", "engine/dispatch", "engine/admission", "engine/collect"} {
		if phases[busy].Calls == 0 || phases[busy].TotalNs <= 0 {
			t.Fatalf("phase %q not measured: %+v", busy, phases[busy])
		}
	}
	if phases["engine/dispatch"].AllocBytes == 0 {
		t.Fatal("dispatch phase recorded no allocations")
	}
	for k := range rep.Perf.Runtime {
		if !strings.HasPrefix(k, obs.PerfMetricPrefix) {
			t.Fatalf("runtime key %q lacks the %q prefix", k, obs.PerfMetricPrefix)
		}
	}
	if _, ok := rep.Series[obs.PerfMetricPrefix+"goroutines"]; !ok {
		t.Fatal("perf_goroutines series missing from report")
	}
}
