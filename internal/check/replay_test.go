package check_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/topo"
	"repro/internal/trace"
)

// The deterministic-replay contract: two runs of the same scenario
// configuration and seed must produce byte-identical trace streams
// (events, spans and decisions, in emission order) and run reports
// normalized over wall-clock fields. tango-sim -digest prints the same
// two digests; scripts/replay_smoke.sh asserts them end-to-end.

const replayHorizon = 6 * time.Second

func replayRun(t *testing.T, seed int64) (stream, report string, violations error) {
	t.Helper()
	tp := topo.PhysicalTestbed()
	var clusters []topo.ClusterID
	for _, c := range tp.Clusters {
		clusters = append(clusters, c.ID)
	}
	gen := trace.DefaultGenConfig(clusters, trace.P3, replayHorizon, seed)
	gen.LCRatePerSec = 40
	gen.BERatePerSec = 15
	reqs := trace.Generate(gen)

	opts := core.Tango(tp, seed)
	ds := obs.NewDigestSink(nil)
	opts.TraceSink = ds
	opts.TraceTag = "replay"
	opts.Verify = true
	sys := core.New(opts)
	sys.Inject(reqs)
	sys.Run(replayHorizon + 2*time.Second)
	rep := sys.Report("tango", 0)
	if ds.Records() == 0 {
		t.Fatal("replay run emitted no trace records")
	}
	return ds.Sum(), obs.ReportDigest(rep), sys.Verifier.Err()
}

func TestReplayDigestsIdentical(t *testing.T) {
	s1, r1, v1 := replayRun(t, 42)
	s2, r2, v2 := replayRun(t, 42)
	if v1 != nil || v2 != nil {
		t.Fatalf("verifier violations during replay runs: %v / %v", v1, v2)
	}
	if s1 != s2 {
		t.Fatalf("same seed, different stream digests:\n  %s\n  %s", s1, s2)
	}
	if r1 != r2 {
		t.Fatalf("same seed, different report digests:\n  %s\n  %s", r1, r2)
	}
}

func TestReplayDigestSeedSensitive(t *testing.T) {
	s1, r1, _ := replayRun(t, 42)
	s2, r2, _ := replayRun(t, 43)
	if s1 == s2 {
		t.Fatal("different seeds produced identical stream digests")
	}
	if r1 == r2 {
		t.Fatal("different seeds produced identical report digests")
	}
}

// The in-situ verification layer must stay clean over a longer, denser
// run that exercises preemption, reassurance and overflow routing.
func TestVerifiedTangoRunClean(t *testing.T) {
	tp := topo.PhysicalTestbed()
	var clusters []topo.ClusterID
	for _, c := range tp.Clusters {
		clusters = append(clusters, c.ID)
	}
	gen := trace.DefaultGenConfig(clusters, trace.Diurnal, 10*time.Second, 7)
	gen.LCRatePerSec = 120
	gen.BERatePerSec = 40
	reqs := trace.Generate(gen)

	opts := core.Tango(tp, 7)
	opts.Verify = true
	sys := core.New(opts)
	sys.Inject(reqs)
	sys.Run(12 * time.Second)
	if err := sys.Verifier.Err(); err != nil {
		t.Fatalf("verifier: %v (checks=%d)", err, sys.Verifier.Checks)
	}
	if sys.Verifier.Checks < 10 {
		t.Fatalf("verifier barely ran: %d checks", sys.Verifier.Checks)
	}
}
