package check

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cgroup"
	"repro/internal/engine"
	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/res"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

func testEngine(t *testing.T) (*sim.Simulator, *engine.Engine) {
	t.Helper()
	s := sim.New()
	b := topo.NewBuilder()
	b.AddCluster(31, 121, res.V(8000, 16384, 1000), []res.Vector{
		res.V(4000, 8192, 500), res.V(4000, 8192, 500),
	})
	e := engine.New(engine.Config{
		Sim: s, Topo: b.Build(), Catalog: trace.DefaultCatalog(), Policy: engine.GreedyPolicy{},
	})
	return s, e
}

func TestVerifierSweepsClean(t *testing.T) {
	s, e := testEngine(t)
	v := NewVerifier(s.Now)
	cat := trace.DefaultCatalog()
	for i := int64(1); i <= 8; i++ {
		e.Dispatch(e.NewRequest(trace.Request{ID: i, Type: 1, Class: cat.Type(1).Class}), 1)
	}
	s.Every(10*time.Millisecond, func() { v.SweepEngine(e) })
	s.RunFor(300 * time.Millisecond)
	if err := v.Err(); err != nil {
		t.Fatalf("clean run reported violations: %v", err)
	}
	if v.Checks == 0 {
		t.Fatal("no checks executed")
	}

	h := cgroup.NewHierarchy(res.V(4000, 8192, 500))
	v.SweepCgroup(h)
	a := obs.NewSLOAccountant(obs.SLOConfig{})
	a.Observe(1, "svc", "LC", time.Second, 10, true, true)
	a.Finalize()
	v.SweepSLO(a)
	if err := v.Err(); err != nil {
		t.Fatalf("clean cgroup/slo sweeps reported violations: %v", err)
	}
}

func TestVerifierRecordsViolationsWithCap(t *testing.T) {
	now := 5 * time.Millisecond
	v := NewVerifier(func() time.Duration { return now })
	v.Max = 3
	a := obs.NewSLOAccountant(obs.SLOConfig{Gap: 100 * time.Millisecond})
	// Two violations 1s apart form two episodes; sane by construction,
	// so corrupt the counter instead to trip the invariant.
	a.Observe(1, "svc", "LC", time.Second, 900, true, false)
	a.Finalize()
	svc := a.Services()[0]
	svc.Satisfied = 5 // now satisfied+violated != resolved
	for i := 0; i < 6; i++ {
		v.SweepSLO(a)
	}
	if v.Total != 6 {
		t.Fatalf("total = %d, want 6", v.Total)
	}
	if len(v.Violations) != 3 {
		t.Fatalf("retained = %d, want cap 3", len(v.Violations))
	}
	if v.Violations[0].At != now || v.Violations[0].Rule != "slo" {
		t.Fatalf("violation stamp wrong: %+v", v.Violations[0])
	}
	err := v.Err()
	if err == nil || !strings.Contains(err.Error(), "6 violation(s)") {
		t.Fatalf("Err() = %v", err)
	}
}

func TestSLOInvariantsEpisodeChecks(t *testing.T) {
	mk := func() *obs.SLOAccountant {
		a := obs.NewSLOAccountant(obs.SLOConfig{Gap: 100 * time.Millisecond})
		a.Observe(1, "svc", "LC", 1*time.Second, 900, true, false)
		a.Observe(1, "svc", "LC", 3*time.Second, 900, true, false)
		a.Finalize()
		return a
	}
	if a := mk(); len(a.Services()[0].Episodes) != 2 {
		t.Fatalf("setup: %d episodes, want 2", len(mk().Services()[0].Episodes))
	}
	if err := SLOInvariants(mk()); err != nil {
		t.Fatalf("well-formed episodes rejected: %v", err)
	}

	a := mk()
	a.Services()[0].Episodes[1].Start = 500 * time.Millisecond // overlaps episode 0
	if err := SLOInvariants(a); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("overlap not detected: %v", err)
	}

	a = mk()
	a.Services()[0].Episodes[0].End = 0 // ends before start
	if err := SLOInvariants(a); err == nil || !strings.Contains(err.Error(), "before start") {
		t.Fatalf("inverted interval not detected: %v", err)
	}

	a = mk()
	a.Services()[0].Episodes[0].Violations = 0
	if err := SLOInvariants(a); err == nil || !strings.Contains(err.Error(), "violations") {
		t.Fatalf("empty episode not detected: %v", err)
	}
}

func TestFlowHookConfirmsSolves(t *testing.T) {
	v := NewVerifier(nil)
	hook := v.FlowHook()
	in := Instance{Nodes: 3, Src: 0, Sink: 2, Edges: []RefEdge{{0, 1, 5, 2}, {1, 2, 5, 0}}}
	g, _ := in.Graph()
	r := g.MinCostFlow(0, 2, 10)
	hook(g, 0, 2, r)
	if err := v.Err(); err != nil {
		t.Fatalf("valid solve flagged: %v", err)
	}
	// A negative result must be flagged even without touching the graph.
	hook(g, 0, 2, flow.Result{Flow: -1})
	if v.Total != 1 {
		t.Fatalf("negative result not flagged, total=%d", v.Total)
	}
}
