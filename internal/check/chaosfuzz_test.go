package check_test

import (
	"testing"

	"repro/internal/chaos"
)

// FuzzChaosProgram drives the survival oracle with fuzzer-chosen fault
// mixes and seeds: whatever program the fuzzer draws, the run must
// never lose or duplicate a request, and the engine/cgroup self-checks
// must be green after every revive (`make fuzz-smoke` gives it a slice
// of the native fuzz budget).
func FuzzChaosProgram(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(1), uint8(1), uint8(1), uint8(1), uint8(1))
	f.Add(int64(99), uint8(3), uint8(0), uint8(2), uint8(0), uint8(1), uint8(0))
	f.Add(int64(-7), uint8(0), uint8(1), uint8(0), uint8(2), uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, churn, kill, parts, storms, flash, stalls uint8) {
		rc := chaos.RandConfig{
			NodeChurn:   int(churn % 4),
			ClusterKill: int(kill % 2),
			Partitions:  int(parts % 3),
			RTTStorms:   int(storms % 3),
			FlashCrowds: int(flash % 2),
			Stalls:      int(stalls % 2),
		}
		r := chaosRun(t, seed, rc)
		if r.err != nil {
			t.Fatalf("chaos oracle violated (seed %d, cfg %+v): %v\nstats %+v", seed, rc, r.err, r.stats)
		}
	})
}
