// Chaos differential survival oracle (ROADMAP item 3): after a run
// under a fault-injection program, every accepted request must resolve
// to exactly one outcome (no losses, no duplicates — conservation holds
// across node churn, cluster kills and live migrations), the engine's
// resource accounting must balance, the in-situ verifier (which sweeps
// after every revive) must be clean, and the SLO accountant's episode
// invariants must hold. The chaos sweep test drives this over a seed
// range and additionally pins digest-identical replays.
package check

import (
	"errors"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/obs"
)

// ChaosDiffStats summarizes what the oracle saw; returned alongside the
// verdict so sweeps can report attribution and migration activity.
type ChaosDiffStats struct {
	Arrived    int64 // requests accepted by the system (trace + injected)
	Resolved   int64 // distinct request IDs that produced an outcome
	Duplicates int64 // outcome events beyond the first per request
	Migrations int64 // live migrations started
	// AttributedEpisodes of TotalEpisodes overlap at least one fault
	// window (violations explained by an active fault).
	AttributedEpisodes int
	TotalEpisodes      int
}

// ChaosDiff runs the survival oracle over a finished chaos run.
// outcomes maps request ID to how many outcome events it produced;
// arrived counts accepted requests. inj and v may be nil (the
// corresponding checks are skipped — useful for the no-chaos control
// arm of a differential pair).
func ChaosDiff(e *engine.Engine, inj *chaos.Injector, v *Verifier,
	acct *obs.SLOAccountant, arrived int64, outcomes map[int64]int) (ChaosDiffStats, error) {

	st := ChaosDiffStats{Arrived: arrived, Migrations: e.Migrations}
	var errs []error
	for id, n := range outcomes {
		st.Resolved++
		if n > 1 {
			st.Duplicates += int64(n - 1)
			if len(errs) < 4 {
				errs = append(errs, fmt.Errorf("request %d produced %d outcomes", id, n))
			}
		}
	}
	if st.Resolved != arrived {
		errs = append(errs, fmt.Errorf("conservation: %d requests arrived, %d resolved (%+d lost)",
			arrived, st.Resolved, arrived-st.Resolved))
	}
	if err := e.SelfCheck(); err != nil {
		errs = append(errs, fmt.Errorf("engine self-check: %w", err))
	}
	if v != nil {
		if err := v.Err(); err != nil {
			errs = append(errs, fmt.Errorf("verifier: %w", err))
		}
	}
	if acct != nil {
		if err := SLOInvariants(acct); err != nil {
			errs = append(errs, fmt.Errorf("slo invariants: %w", err))
		}
		if inj != nil {
			st.AttributedEpisodes, st.TotalEpisodes = inj.AttributedEpisodes(acct)
		}
	}
	return st, errors.Join(errs...)
}
