package check

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dsslc"
	"repro/internal/engine"
	"repro/internal/res"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Sharded-vs-global differential: the sharded scheduling layer
// (internal/shard) restricts each DSS-LC solve to its shard's region
// and re-routes overflow across shards, so its placements may diverge
// from the single global solve — but only within a bounded quality
// loss, and not at all in single-shard mode. ShardDiff builds one
// seeded instance (random topology, random per-cluster LC batches),
// schedules it both ways on twin engines, and compares: every request
// must be placed by both, the sharded dispatch cost (Σ per-request
// master→worker RTT, the Eq. 3 objective DSS-LC minimizes) must stay
// within `bound`× the global cost, and with k=1 every per-request
// placement must be exactly the global one. The seeded-instance sweep
// in shardcheck_test.go runs this over 256+ seeds.

// ShardDiffResult summarizes one differential instance.
type ShardDiffResult struct {
	Clusters      int
	Requests      int
	GlobalCostUS  int64
	ShardedCostUS int64
	Overflow      int64 // requests routed by the cross-shard pass
}

// shardDiffInstance builds the instance's shared request descriptors.
func shardDiffInstance(rng *rand.Rand, tp *topo.Topology) []trace.Request {
	var reqs []trace.Request
	id := int64(0)
	for _, c := range tp.Clusters {
		n := 10 + rng.Intn(80)
		for i := 0; i < n; i++ {
			reqs = append(reqs, trace.Request{
				ID: id, Type: trace.TypeID(rng.Intn(5)), Class: trace.LC, Cluster: c.ID,
			})
			id++
		}
	}
	return reqs
}

func shardDiffCost(tp *topo.Topology, reqs []trace.Request, a dsslc.Assignment) (int64, error) {
	var cost int64
	for _, r := range reqs {
		nid, ok := a[r.ID]
		if !ok {
			return 0, fmt.Errorf("request %d (cluster %d) unassigned", r.ID, r.Cluster)
		}
		cost += int64(tp.RTT(tp.Cluster(r.Cluster).Master, nid) / time.Microsecond)
	}
	return cost, nil
}

// ShardDiff runs one seeded sharded-vs-global differential instance
// with k shards and the given quality bound (sharded cost must not
// exceed bound × global cost). bound is ignored for k=1, where the
// check is exact placement equality.
func ShardDiff(seed int64, k int, bound float64) (ShardDiffResult, error) {
	rng := rand.New(rand.NewSource(seed))
	cfg := topo.DefaultGenConfig(8 + rng.Intn(9))
	// Small workers and heavy batches (below) push a good fraction of
	// instances into Algorithm 2's case 2, so the sweep exercises the
	// cross-shard overflow pass, not just shard-local routing.
	cfg.MinWorkers, cfg.MaxWorkers = 3, 8
	cfg.WorkerCapMin = res.V(1000, 2048, 100)
	cfg.WorkerCapMax = res.V(4000, 8192, 300)
	tp := topo.Generate(cfg, rng)
	reqs := shardDiffInstance(rng, tp)

	newEngine := func() *engine.Engine {
		return engine.New(engine.Config{
			Sim: sim.New(), Topo: tp, Catalog: trace.DefaultCatalog(), Policy: engine.GreedyPolicy{},
		})
	}

	res := ShardDiffResult{Clusters: len(tp.Clusters), Requests: len(reqs)}

	// Global pass: one unrestricted DSS-LC over every cluster batch,
	// exactly as the unsharded dispatcher drives it.
	eg := newEngine()
	global := dsslc.New(eg, seed)
	ga := make(dsslc.Assignment, len(reqs))
	byCluster := make(map[topo.ClusterID][]*engine.Request)
	for _, r := range reqs {
		byCluster[r.Cluster] = append(byCluster[r.Cluster], eg.NewRequest(r))
	}
	for _, c := range tp.Clusters {
		if q := byCluster[c.ID]; len(q) > 0 {
			global.ScheduleBatchInto(c.ID, q, ga)
		}
	}

	// Sharded pass on the twin engine.
	es := newEngine()
	sh := shard.New(es, seed, k, 2)
	var batches []shard.Batch
	for _, c := range tp.Clusters {
		b := shard.Batch{Cluster: c.ID}
		for _, r := range reqs {
			if r.Cluster == c.ID {
				b.Reqs = append(b.Reqs, es.NewRequest(r))
			}
		}
		if len(b.Reqs) > 0 {
			batches = append(batches, b)
		}
	}
	sa := make(dsslc.Assignment, len(reqs))
	sh.ScheduleRound(batches, sa, nil)
	res.Overflow = sh.OverflowRouted

	var err error
	if res.GlobalCostUS, err = shardDiffCost(tp, reqs, ga); err != nil {
		return res, fmt.Errorf("global: %w", err)
	}
	if res.ShardedCostUS, err = shardDiffCost(tp, reqs, sa); err != nil {
		return res, fmt.Errorf("sharded(k=%d): %w", k, err)
	}
	if k == 1 {
		for _, r := range reqs {
			if ga[r.ID] != sa[r.ID] {
				return res, fmt.Errorf("k=1 not bit-identical: request %d -> node %d sharded, node %d global",
					r.ID, sa[r.ID], ga[r.ID])
			}
		}
		return res, nil
	}
	if float64(res.ShardedCostUS) > bound*float64(res.GlobalCostUS) {
		return res, fmt.Errorf("k=%d dispatch cost %dµs exceeds %.2fx global %dµs",
			k, res.ShardedCostUS, bound, res.GlobalCostUS)
	}
	return res, nil
}
