// Package check is the differential-verification layer: runtime
// invariant sweeps, cross-checking oracles for the min-cost-flow
// optimizer, and the deterministic-replay contract's reference
// machinery. The repo substitutes simulation for a physical testbed
// everywhere, so reproducibility and internal consistency are the
// correctness story; this package makes both checkable:
//
//   - Verifier collects invariant violations during a run. core.New
//     wires one up behind Options.Verify: it sweeps engine accounting
//     (engine.SelfCheck), cgroup tree limits (cgroup.SelfCheck) and SLO
//     episode disjointness on every collection tick, and cross-checks
//     every DSS-LC min-cost-flow solve via the dsslc.OnSolve hook.
//   - RefGraph (refflow.go) is a deliberately naive Bellman-Ford /
//     Edmonds-Karp reference implementation of min-cost max-flow, used
//     by the differential tests and fuzz targets to corroborate the
//     production SSP+Johnson and Dinic solvers on random instances.
//
// The replay-digest half of the contract lives in internal/obs
// (DigestSink, ReportDigest); the replay tests here tie it together.
package check

import (
	"fmt"
	"time"

	"repro/internal/cgroup"
	"repro/internal/engine"
	"repro/internal/flow"
	"repro/internal/obs"
)

// Violation is one recorded invariant breach.
type Violation struct {
	At     time.Duration // virtual time of the sweep that caught it
	Rule   string        // "engine", "slo", "cgroup", "flow"
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%v] %s: %s", v.At, v.Rule, v.Detail)
}

// Verifier records invariant violations instead of panicking, so a
// verification run surfaces every breach (up to Max retained) rather
// than dying on the first. Single-threaded like the simulation it
// observes.
type Verifier struct {
	now func() time.Duration

	// Max caps retained Violations (default 64); Total stays exact.
	Max        int
	Total      int64
	Checks     int64 // individual invariant checks executed
	Violations []Violation
}

// NewVerifier builds a verifier; now supplies virtual time for stamping
// violations (nil falls back to zero).
func NewVerifier(now func() time.Duration) *Verifier {
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &Verifier{now: now, Max: 64}
}

func (v *Verifier) fail(rule string, err error) {
	v.Total++
	if len(v.Violations) < v.Max {
		v.Violations = append(v.Violations, Violation{At: v.now(), Rule: rule, Detail: err.Error()})
	}
}

// Err summarizes the run: nil when no invariant was violated, otherwise
// an error quoting the first retained violation and the total count.
func (v *Verifier) Err() error {
	if v.Total == 0 {
		return nil
	}
	return fmt.Errorf("check: %d violation(s), first: %s", v.Total, v.Violations[0])
}

// SweepEngine validates the engine's internal accounting (used/usedLC
// aggregates vs. running allocations, capacity bounds, down-node
// emptiness, queue class membership).
func (v *Verifier) SweepEngine(e *engine.Engine) {
	v.Checks++
	if err := e.SelfCheck(); err != nil {
		v.fail("engine", err)
	}
}

// SweepCgroup validates one node's cgroup tree against the §4.2
// parent-bound invariant.
func (v *Verifier) SweepCgroup(h *cgroup.Hierarchy) {
	v.Checks++
	if err := h.SelfCheck(); err != nil {
		v.fail("cgroup", err)
	}
}

// SweepSLO validates the accountant's closed episodes.
func (v *Verifier) SweepSLO(a *obs.SLOAccountant) {
	v.Checks++
	if err := SLOInvariants(a); err != nil {
		v.fail("slo", err)
	}
}

// FlowHook returns a dsslc.Scheduler.OnSolve callback that cross-checks
// every production min-cost-flow solve in situ: the routed flow must be
// conserved at interior nodes and both flow and cost must be
// nonnegative (edge costs are nonnegative by construction).
func (v *Verifier) FlowHook() func(g *flow.Graph, src, sink int, r flow.Result) {
	return func(g *flow.Graph, src, sink int, r flow.Result) {
		v.Checks++
		if r.Flow < 0 || r.Cost < 0 {
			v.fail("flow", fmt.Errorf("solve returned negative result %+v", r))
			return
		}
		if err := g.Conservation(src, sink); err != nil {
			v.fail("flow", err)
		}
	}
}

// SLOInvariants checks the accountant's per-service closed episodes:
// intervals well-formed (Start ≤ End) and strictly disjoint in time
// order, each episode holds at least one violation with the retained
// decision list never exceeding the exact total, and the resolved
// outcome counters are mutually consistent. Exported standalone so
// tests can probe it without a Verifier.
func SLOInvariants(a *obs.SLOAccountant) error {
	for _, s := range a.Services() {
		if s.Satisfied+s.Violated != s.Resolved {
			return fmt.Errorf("slo %s: satisfied %d + violated %d != resolved %d",
				s.Name, s.Satisfied, s.Violated, s.Resolved)
		}
		if s.Completed > s.Resolved {
			return fmt.Errorf("slo %s: completed %d > resolved %d", s.Name, s.Completed, s.Resolved)
		}
		var prevEnd time.Duration
		for i, ep := range s.Episodes {
			if ep.End < ep.Start {
				return fmt.Errorf("slo %s: episode %d ends %v before start %v", s.Name, i, ep.End, ep.Start)
			}
			if ep.Violations < 1 {
				return fmt.Errorf("slo %s: episode %d has %d violations", s.Name, i, ep.Violations)
			}
			if int64(len(ep.Decisions)) > ep.DecisionTotal {
				return fmt.Errorf("slo %s: episode %d retains %d decisions of total %d",
					s.Name, i, len(ep.Decisions), ep.DecisionTotal)
			}
			if i > 0 && ep.Start <= prevEnd {
				return fmt.Errorf("slo %s: episode %d [%v,%v] overlaps previous end %v",
					s.Name, i, ep.Start, ep.End, prevEnd)
			}
			prevEnd = ep.End
		}
	}
	return nil
}
