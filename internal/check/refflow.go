package check

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/flow"
)

// Naive reference solvers for differential testing of internal/flow.
//
// RefGraph implements min-cost max-flow by successive shortest paths
// found with Bellman-Ford (no potentials, no heap — O(V·E) per
// augmentation) and plain max-flow with Edmonds-Karp BFS. Both are slow
// and obviously correct, which is the point: on small random instances
// the production SSP+Johnson solver, the Dinic solver and these must
// all agree on max-flow value, and SSP's cost must match the reference
// optimum.

const refUnbounded = math.MaxInt64 / 4

// RefEdge is one directed edge of a reference instance.
type RefEdge struct {
	From, To  int
	Cap, Cost int64
}

// RefGraph is an edge-list flow network for the reference solvers.
type RefGraph struct {
	N     int
	Edges []RefEdge
}

type refArc struct {
	to        int
	cap, cost int64
	rev       int // index of the reverse arc in adj[to]
}

func (g *RefGraph) residual() [][]refArc {
	adj := make([][]refArc, g.N)
	for _, e := range g.Edges {
		adj[e.From] = append(adj[e.From], refArc{to: e.To, cap: e.Cap, cost: e.Cost, rev: len(adj[e.To])})
		adj[e.To] = append(adj[e.To], refArc{to: e.From, cap: 0, cost: -e.Cost, rev: len(adj[e.From]) - 1})
	}
	return adj
}

// MinCostMaxFlow routes up to limit units from src to sink along
// successively cheapest augmenting paths (Bellman-Ford over the
// residual network) and returns the total flow and its cost.
func (g *RefGraph) MinCostMaxFlow(src, sink int, limit int64) (int64, int64) {
	adj := g.residual()
	const inf = int64(math.MaxInt64 / 2)
	var totalFlow, totalCost int64
	prevNode := make([]int, g.N)
	prevArc := make([]int, g.N)
	for totalFlow < limit {
		dist := make([]int64, g.N)
		for i := range dist {
			dist[i] = inf
		}
		dist[src] = 0
		// SSP residual networks hold no negative cycles, so at most N-1
		// relaxation rounds reach a fixpoint.
		for round := 0; round < g.N; round++ {
			changed := false
			for u := range adj {
				if dist[u] == inf {
					continue
				}
				for ai, a := range adj[u] {
					if a.cap > 0 && dist[u]+a.cost < dist[a.to] {
						dist[a.to] = dist[u] + a.cost
						prevNode[a.to] = u
						prevArc[a.to] = ai
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
		if dist[sink] == inf {
			break
		}
		push := limit - totalFlow
		for v := sink; v != src; v = prevNode[v] {
			if c := adj[prevNode[v]][prevArc[v]].cap; c < push {
				push = c
			}
		}
		for v := sink; v != src; v = prevNode[v] {
			a := &adj[prevNode[v]][prevArc[v]]
			a.cap -= push
			adj[v][a.rev].cap += push
		}
		totalFlow += push
		totalCost += push * dist[sink]
	}
	return totalFlow, totalCost
}

// MaxFlow computes the maximum src→sink flow with Edmonds-Karp
// (BFS-shortest augmenting paths), ignoring costs.
func (g *RefGraph) MaxFlow(src, sink int) int64 {
	adj := g.residual()
	prevNode := make([]int, g.N)
	prevArc := make([]int, g.N)
	var total int64
	for {
		for i := range prevNode {
			prevNode[i] = -1
		}
		prevNode[src] = src
		queue := []int{src}
		for len(queue) > 0 && prevNode[sink] == -1 {
			u := queue[0]
			queue = queue[1:]
			for ai, a := range adj[u] {
				if a.cap > 0 && prevNode[a.to] == -1 {
					prevNode[a.to] = u
					prevArc[a.to] = ai
					queue = append(queue, a.to)
				}
			}
		}
		if prevNode[sink] == -1 {
			return total
		}
		push := int64(refUnbounded)
		for v := sink; v != src; v = prevNode[v] {
			if c := adj[prevNode[v]][prevArc[v]].cap; c < push {
				push = c
			}
		}
		for v := sink; v != src; v = prevNode[v] {
			a := &adj[prevNode[v]][prevArc[v]]
			a.cap -= push
			adj[v][a.rev].cap += push
		}
		total += push
	}
}

// Instance is one MCNF problem buildable both as a production
// flow.Graph and as a RefGraph.
type Instance struct {
	Nodes     int
	Src, Sink int
	Edges     []RefEdge
}

// RandomInstance draws a bounded random instance: 2..maxNodes nodes, up
// to maxEdges edges (self-loops skipped, parallel edges allowed),
// capacities in [0,maxCap] (zero-capacity edges are kept deliberately)
// and costs in [0,maxCost].
func RandomInstance(rng *rand.Rand, maxNodes, maxEdges int, maxCap, maxCost int64) Instance {
	n := 2 + rng.Intn(maxNodes-1)
	m := rng.Intn(maxEdges + 1)
	in := Instance{Nodes: n, Src: 0, Sink: n - 1}
	for i := 0; i < m; i++ {
		from, to := rng.Intn(n), rng.Intn(n)
		if from == to {
			continue
		}
		in.Edges = append(in.Edges, RefEdge{
			From: from, To: to,
			Cap: rng.Int63n(maxCap + 1), Cost: rng.Int63n(maxCost + 1),
		})
	}
	return in
}

// DecodeInstance parses arbitrary fuzz bytes into a bounded instance:
// byte 0 picks the node count (2..9), each following 4-byte chunk is
// one (from, to, cap, cost) edge. Always total; ok is false only when
// the input is too short to name a node count.
func DecodeInstance(data []byte) (Instance, bool) {
	if len(data) < 1 {
		return Instance{}, false
	}
	n := 2 + int(data[0]%8)
	in := Instance{Nodes: n, Src: 0, Sink: n - 1}
	for rest := data[1:]; len(rest) >= 4 && len(in.Edges) < 24; rest = rest[4:] {
		from, to := int(rest[0])%n, int(rest[1])%n
		if from == to {
			continue
		}
		in.Edges = append(in.Edges, RefEdge{
			From: from, To: to,
			Cap: int64(rest[2] % 16), Cost: int64(rest[3] % 32),
		})
	}
	return in, true
}

// Graph builds the production graph for the instance, returning the
// edge IDs in Edges order.
func (in Instance) Graph() (*flow.Graph, []flow.EdgeID) {
	g := flow.NewGraph()
	g.AddNodes(in.Nodes)
	ids := make([]flow.EdgeID, len(in.Edges))
	for i, e := range in.Edges {
		ids[i] = g.AddEdge(e.From, e.To, e.Cap, e.Cost)
	}
	return g, ids
}

// Ref builds the reference graph for the instance.
func (in Instance) Ref() *RefGraph {
	return &RefGraph{N: in.Nodes, Edges: append([]RefEdge(nil), in.Edges...)}
}

// DiffCheck runs the production solvers and the reference solvers over
// one instance and returns an error describing the first disagreement:
//
//   - SSP, Dinic, Edmonds-Karp and reference-SSP must agree on the
//     max-flow value, and SSP's cost must equal the reference optimum;
//   - the SSP solution must be conserved with every per-edge flow in
//     [0, cap] and a source outflow equal to the reported value;
//   - solving for half the max flow must route exactly that much at the
//     reference cost for that amount (SSP optimality per flow value);
//   - Reset must restore the graph to byte-for-byte re-solvability.
func DiffCheck(in Instance) error {
	g, ids := in.Graph()
	r := g.MinCostFlow(in.Src, in.Sink, refUnbounded)
	if err := g.Conservation(in.Src, in.Sink); err != nil {
		return err
	}
	var srcOut int64
	for i, e := range in.Edges {
		f := g.Flow(ids[i])
		if f < 0 || f > e.Cap {
			return fmt.Errorf("edge %d (%d->%d): flow %d outside [0,%d]", i, e.From, e.To, f, e.Cap)
		}
		if e.From == in.Src {
			srcOut += f
		}
		if e.To == in.Src {
			srcOut -= f
		}
	}
	if srcOut != r.Flow {
		return fmt.Errorf("source net outflow %d != reported flow %d", srcOut, r.Flow)
	}

	gd, _ := in.Graph()
	dinic := gd.MaxFlowDinic(in.Src, in.Sink)
	refFlow, refCost := in.Ref().MinCostMaxFlow(in.Src, in.Sink, refUnbounded)
	ek := in.Ref().MaxFlow(in.Src, in.Sink)
	if r.Flow != dinic || r.Flow != refFlow || r.Flow != ek {
		return fmt.Errorf("max-flow disagreement: ssp=%d dinic=%d ref-ssp=%d edmonds-karp=%d",
			r.Flow, dinic, refFlow, ek)
	}
	if r.Cost != refCost {
		return fmt.Errorf("cost disagreement at flow %d: ssp=%d ref=%d", r.Flow, r.Cost, refCost)
	}

	// Limited-flow optimality: routing half the max must cost exactly the
	// reference optimum for that amount.
	if half := r.Flow / 2; half > 0 {
		gh, _ := in.Graph()
		rh := gh.MinCostFlow(in.Src, in.Sink, half)
		refHalfFlow, refHalfCost := in.Ref().MinCostMaxFlow(in.Src, in.Sink, half)
		if rh.Flow != half || refHalfFlow != half {
			return fmt.Errorf("limited solve routed %d (ref %d), want %d", rh.Flow, refHalfFlow, half)
		}
		if rh.Cost != refHalfCost {
			return fmt.Errorf("limited-solve cost disagreement: ssp=%d ref=%d", rh.Cost, refHalfCost)
		}
	}

	// Reset restores capacities: a re-solve must reproduce the result and
	// the per-edge flows exactly.
	before := make([]int64, len(ids))
	for i := range ids {
		before[i] = g.Flow(ids[i])
	}
	g.Reset()
	r2 := g.MinCostFlow(in.Src, in.Sink, refUnbounded)
	if r2 != r {
		return fmt.Errorf("re-solve after Reset: %+v, first solve %+v", r2, r)
	}
	for i := range ids {
		if f := g.Flow(ids[i]); f != before[i] {
			return fmt.Errorf("edge %d: flow %d after Reset re-solve, was %d", i, f, before[i])
		}
	}

	return warmCheck(in, r, before)
}

// warmCheck is the warm-start half of the oracle: a workspace-backed
// graph must produce bit-identical results — same Result, same per-edge
// flows — whether the first Dijkstra pass is computed cold or replayed
// from the memo, across Reset, across a Clear+rebuild period boundary,
// and across capacity-magnitude changes that keep the open-arc pattern.
func warmCheck(in Instance, cold flow.Result, coldFlows []int64) error {
	gw, ids := in.Graph()
	ws := flow.NewWorkspace()
	gw.SetWorkspace(ws)
	if gw.Warmed(in.Src) {
		return fmt.Errorf("fresh workspace claims warm")
	}
	// First WarmStart is necessarily cold and captures the memo.
	w1 := gw.WarmStart(in.Src, in.Sink, refUnbounded)
	if w1 != cold {
		return fmt.Errorf("workspace cold solve %+v != plain solve %+v", w1, cold)
	}
	for i := range ids {
		if f := gw.Flow(ids[i]); f != coldFlows[i] {
			return fmt.Errorf("edge %d: workspace cold flow %d, plain %d", i, f, coldFlows[i])
		}
	}
	replay := func(stage string, g *flow.Graph, eids []flow.EdgeID, want flow.Result, wantFlows []int64, wantHits uint64) error {
		if !g.Warmed(in.Src) {
			return fmt.Errorf("%s: graph not warmed", stage)
		}
		r := g.WarmStart(in.Src, in.Sink, refUnbounded)
		if ws.WarmHits != wantHits {
			return fmt.Errorf("%s: WarmHits = %d, want %d", stage, ws.WarmHits, wantHits)
		}
		if r != want {
			return fmt.Errorf("%s: warm solve %+v != cold %+v", stage, r, want)
		}
		for i := range eids {
			if f := g.Flow(eids[i]); f != wantFlows[i] {
				return fmt.Errorf("%s: edge %d warm flow %d, cold %d", stage, i, f, wantFlows[i])
			}
		}
		return nil
	}
	// Reset keeps the memo valid: same shape, same source.
	gw.Reset()
	if err := replay("reset", gw, ids, cold, coldFlows, 1); err != nil {
		return err
	}
	// Period boundary: Clear, rebuild the same instance inside the
	// retained arenas, and the memo must still replay.
	gw.Clear()
	gw.AddNodes(in.Nodes)
	for i, e := range in.Edges {
		if id := gw.AddEdge(e.From, e.To, e.Cap, e.Cost); id != ids[i] {
			return fmt.Errorf("rebuild edge %d: id %d, want %d", i, id, ids[i])
		}
	}
	if err := replay("rebuild", gw, ids, cold, coldFlows, 2); err != nil {
		return err
	}
	// Capacity magnitudes may drift between periods without invalidating
	// the memo — only the open/closed pattern keys it. The warm solve of
	// the grown instance must match a cold solve of that same instance.
	mod := Instance{Nodes: in.Nodes, Src: in.Src, Sink: in.Sink,
		Edges: append([]RefEdge(nil), in.Edges...)}
	for i := range mod.Edges {
		if mod.Edges[i].Cap > 0 {
			mod.Edges[i].Cap = 2*mod.Edges[i].Cap + int64(i%3)
		}
	}
	gm, mids := mod.Graph()
	rm := gm.MinCostFlow(in.Src, in.Sink, refUnbounded)
	modFlows := make([]int64, len(mids))
	for i := range mids {
		modFlows[i] = gm.Flow(mids[i])
	}
	gw.Clear()
	gw.AddNodes(mod.Nodes)
	for _, e := range mod.Edges {
		gw.AddEdge(e.From, e.To, e.Cap, e.Cost)
	}
	if err := replay("capacity drift", gw, ids, rm, modFlows, 3); err != nil {
		return err
	}
	// A shape change (one edge's open/closed state flips) must fall back
	// to a cold solve, not replay a stale memo.
	if len(in.Edges) > 0 {
		alt := Instance{Nodes: in.Nodes, Src: in.Src, Sink: in.Sink,
			Edges: append([]RefEdge(nil), in.Edges...)}
		if alt.Edges[0].Cap > 0 {
			alt.Edges[0].Cap = 0
		} else {
			alt.Edges[0].Cap = 1
		}
		gw.Clear()
		gw.AddNodes(alt.Nodes)
		for _, e := range alt.Edges {
			gw.AddEdge(e.From, e.To, e.Cap, e.Cost)
		}
		if gw.Warmed(in.Src) {
			return fmt.Errorf("shape change: graph still claims warm")
		}
		ga, aids := alt.Graph()
		ra := ga.MinCostFlow(in.Src, in.Sink, refUnbounded)
		wa := gw.WarmStart(in.Src, in.Sink, refUnbounded)
		if ws.WarmHits != 3 {
			return fmt.Errorf("shape change: WarmHits = %d, want 3 (must not replay)", ws.WarmHits)
		}
		if wa != ra {
			return fmt.Errorf("shape change: warm-path solve %+v != cold %+v", wa, ra)
		}
		for i := range aids {
			if f1, f2 := gw.Flow(aids[i]), ga.Flow(aids[i]); f1 != f2 {
				return fmt.Errorf("shape change: edge %d flow %d, cold %d", i, f1, f2)
			}
		}
	}
	if ws.Solves < 4 {
		return fmt.Errorf("workspace counted %d solves, want >= 4", ws.Solves)
	}
	return nil
}
