package check_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/topo"
	"repro/internal/trace"
)

// The sampling half of the replay contract: a rate-1.0 sampler is
// byte-identical to no sampler at all, sampled runs are reproducible
// per seed, and a TeeSink in the chain never perturbs the stream it
// forwards.

func sampledRun(t *testing.T, seed int64, rate float64, tee bool) (stream, report string, records uint64) {
	t.Helper()
	tp := topo.PhysicalTestbed()
	var clusters []topo.ClusterID
	for _, c := range tp.Clusters {
		clusters = append(clusters, c.ID)
	}
	gen := trace.DefaultGenConfig(clusters, trace.P3, replayHorizon, seed)
	gen.LCRatePerSec = 40
	gen.BERatePerSec = 15
	reqs := trace.Generate(gen)

	opts := core.Tango(tp, seed)
	ds := obs.NewDigestSink(nil)
	opts.TraceSink = ds
	if tee {
		opts.TraceSink = obs.NewTeeSink(ds, 128)
	}
	opts.TraceTag = "replay"
	opts.SpanSampleRate = rate
	sys := core.New(opts)
	sys.Inject(reqs)
	sys.Run(replayHorizon + 2*time.Second)
	rep := sys.Report("tango", 0)
	return ds.Sum(), obs.ReportDigest(rep), ds.Records()
}

func TestSamplingRateOneMatchesUnsampled(t *testing.T) {
	s0, r0, n0 := sampledRun(t, 42, 0, false) // no sampler installed
	s1, r1, n1 := sampledRun(t, 42, 1.0, false)
	if s0 != s1 {
		t.Fatalf("rate 1.0 changed the stream digest:\n  %s\n  %s", s0, s1)
	}
	if r0 != r1 {
		t.Fatalf("rate 1.0 changed the report digest:\n  %s\n  %s", r0, r1)
	}
	if n0 != n1 {
		t.Fatalf("rate 1.0 changed the record count: %d vs %d", n0, n1)
	}
}

func TestSamplingDeterministicPerSeed(t *testing.T) {
	s1, r1, n1 := sampledRun(t, 42, 0.5, false)
	s2, r2, n2 := sampledRun(t, 42, 0.5, false)
	if s1 != s2 || r1 != r2 || n1 != n2 {
		t.Fatalf("same seed+rate diverged: %s/%s, %s/%s, %d/%d", s1, s2, r1, r2, n1, n2)
	}
	// A different seed keeps a different subset.
	s3, _, _ := sampledRun(t, 43, 0.5, false)
	if s1 == s3 {
		t.Fatal("different seeds produced identical sampled streams")
	}
}

func TestSamplingDropsSpansOnly(t *testing.T) {
	_, _, full := sampledRun(t, 42, 1.0, false)
	_, _, half := sampledRun(t, 42, 0.5, false)
	if half >= full {
		t.Fatalf("rate 0.5 did not shrink the stream: %d vs %d records", half, full)
	}
	// Events and decisions are never sampled, so well over half the
	// stream must survive even at rate 0.5.
	if half*2 < full {
		t.Fatalf("rate 0.5 dropped more than the span share: %d of %d", half, full)
	}
}

func TestTeeSinkDigestInvariant(t *testing.T) {
	s0, r0, n0 := sampledRun(t, 42, 0, false)
	s1, r1, n1 := sampledRun(t, 42, 0, true)
	if s0 != s1 || r0 != r1 || n0 != n1 {
		t.Fatalf("tee in the chain perturbed the stream: %s vs %s (%d vs %d records)", s0, s1, n0, n1)
	}
}
