package check_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/topo"
	"repro/internal/trace"
)

// shardDiffBound is the stated quality bound of the sharded scheduler:
// over the seeded instance sweep, sharded dispatch cost stays within
// 2.5x the global solve's. The divergence is real, not noise: when a
// shard saturates, the overflow pass pays WAN RTTs to neighbor shards
// where the global solve would queue on the local cluster's λ-scaled
// Ĝ'_k — the sharded layer trades dispatch cost for actually spreading
// the load. Measured distribution over this sweep: most instances land
// under 2.0x, worst observed 2.24x. Single-shard mode is exact.
const shardDiffBound = 2.5

// TestShardDifferentialSweep is the acceptance sweep: 256 seeded
// instances across shard counts, exact in single-shard mode, bounded
// divergence otherwise.
func TestShardDifferentialSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("256-instance sweep is slow under -short")
	}
	shardCounts := []int{1, 2, 3, 4}
	var worst float64
	var overflowed int
	for seed := int64(0); seed < 256; seed++ {
		k := shardCounts[seed%int64(len(shardCounts))]
		res, err := check.ShardDiff(seed, k, shardDiffBound)
		if err != nil {
			t.Fatalf("seed %d k=%d: %v", seed, k, err)
		}
		if res.Overflow > 0 {
			overflowed++
		}
		if k > 1 && res.GlobalCostUS > 0 {
			if r := float64(res.ShardedCostUS) / float64(res.GlobalCostUS); r > worst {
				worst = r
			}
		}
	}
	t.Logf("worst sharded/global cost ratio: %.3f (bound %.2f); instances with cross-shard overflow: %d/256",
		worst, shardDiffBound, overflowed)
	if overflowed == 0 {
		t.Error("no instance exercised the cross-shard overflow pass; sweep load too light to be meaningful")
	}
}

// shardedReplayRun is replayRun on a generated 24-cluster topology with
// the sharded LC dispatcher.
func shardedReplayRun(t *testing.T, seed int64, shards int) (stream, report string, violations error) {
	t.Helper()
	tp := topo.Generate(topo.DefaultGenConfig(24), rand.New(rand.NewSource(99)))
	var clusters []topo.ClusterID
	for _, c := range tp.Clusters {
		clusters = append(clusters, c.ID)
	}
	gen := trace.DefaultGenConfig(clusters, trace.P3, replayHorizon, seed)
	gen.LCRatePerSec = 60
	gen.BERatePerSec = 15
	reqs := trace.Generate(gen)

	opts := core.Tango(tp, seed)
	opts.LCShards = shards
	opts.LCShardWorkers = 3
	ds := obs.NewDigestSink(nil)
	opts.TraceSink = ds
	opts.TraceTag = "replay-sharded"
	opts.Verify = true
	sys := core.New(opts)
	sys.Inject(reqs)
	sys.Run(replayHorizon + 2*time.Second)
	rep := sys.Report("tango", 0)
	if ds.Records() == 0 {
		t.Fatal("sharded replay run emitted no trace records")
	}
	return ds.Sum(), obs.ReportDigest(rep), sys.Verifier.Err()
}

// TestShardedReplayDeterministic: with sharding enabled (concurrent
// shard solves), same scenario + seed must still produce byte-identical
// stream and report digests — determinism survives the worker pool.
func TestShardedReplayDeterministic(t *testing.T) {
	s1, r1, v1 := shardedReplayRun(t, 42, 4)
	s2, r2, v2 := shardedReplayRun(t, 42, 4)
	if v1 != nil || v2 != nil {
		t.Fatalf("verifier violations during sharded replay: %v / %v", v1, v2)
	}
	if s1 != s2 {
		t.Fatalf("sharded runs, same seed, different stream digests:\n  %s\n  %s", s1, s2)
	}
	if r1 != r2 {
		t.Fatalf("sharded runs, same seed, different report digests:\n  %s\n  %s", r1, r2)
	}
}

// TestSingleShardSystemDigestsMatchUnsharded: a full system run driven
// through the sharded dispatcher with K=1 must be bit-identical to the
// plain DSS-LC dispatcher — same trace stream, same report.
func TestSingleShardSystemDigestsMatchUnsharded(t *testing.T) {
	run := func(mk func(e *engine.Engine, seed int64) any) (string, string, error) {
		tp := topo.PhysicalTestbed()
		var clusters []topo.ClusterID
		for _, c := range tp.Clusters {
			clusters = append(clusters, c.ID)
		}
		gen := trace.DefaultGenConfig(clusters, trace.P3, replayHorizon, 42)
		gen.LCRatePerSec = 40
		gen.BERatePerSec = 15
		reqs := trace.Generate(gen)

		opts := core.Tango(tp, 42)
		opts.MakeLC = mk
		ds := obs.NewDigestSink(nil)
		opts.TraceSink = ds
		opts.TraceTag = "replay"
		opts.Verify = true
		sys := core.New(opts)
		sys.Inject(reqs)
		sys.Run(replayHorizon + 2*time.Second)
		return ds.Sum(), obs.ReportDigest(sys.Report("tango", 0)), sys.Verifier.Err()
	}
	su, ru, vu := run(nil) // default DSS-LC
	ss, rs, vs := run(func(e *engine.Engine, seed int64) any { return shard.New(e, seed, 1, 2) })
	if vu != nil || vs != nil {
		t.Fatalf("verifier violations: unsharded %v / sharded %v", vu, vs)
	}
	if su != ss {
		t.Fatalf("K=1 sharded stream digest diverges from unsharded:\n  %s\n  %s", su, ss)
	}
	if ru != rs {
		t.Fatalf("K=1 sharded report digest diverges from unsharded:\n  %s\n  %s", ru, rs)
	}
}
