package check_test

import (
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/topo"
	"repro/internal/trace"
)

// The chaos survival scenario: the physical testbed under a modest load
// with a seed-randomized fault program (churn, cluster kill, partition,
// RTT storm, flash crowd, stalls) and the defragmenter running. Short
// enough that a 128-seed sweep stays in CI budget.
const (
	chaosHorizon = 2400 * time.Millisecond
	chaosDrain   = 1600 * time.Millisecond
)

type chaosRunResult struct {
	stream, report string
	progDigest     string
	stats          check.ChaosDiffStats
	err            error
}

func chaosRun(t testing.TB, seed int64, rc chaos.RandConfig) chaosRunResult {
	t.Helper()
	tp := topo.PhysicalTestbed()
	var clusters []topo.ClusterID
	for _, c := range tp.Clusters {
		clusters = append(clusters, c.ID)
	}
	gen := trace.DefaultGenConfig(clusters, trace.P3, chaosHorizon, seed)
	gen.LCRatePerSec = 30
	gen.BERatePerSec = 10
	reqs := trace.Generate(gen)
	prog := chaos.Random(tp, chaosHorizon, seed, rc)

	opts := core.Tango(tp, seed)
	ds := obs.NewDigestSink(nil)
	opts.TraceSink = ds
	opts.TraceTag = "chaos"
	opts.Verify = true
	opts.Chaos = &prog
	opts.Defrag = &chaos.DefragConfig{}
	outcomes := map[int64]int{}
	opts.OnOutcome = func(o engine.Outcome) { outcomes[o.Req.ID]++ }
	sys := core.New(opts)
	sys.Inject(reqs)
	sys.Run(chaosHorizon + chaosDrain)
	rep := sys.Report("tango-chaos", 0) // finalizes SLO episodes
	arrived := sys.Metrics.LC.Arrived + sys.Metrics.BE.Arrived
	stats, err := check.ChaosDiff(sys.Engine, sys.Chaos, sys.Verifier, sys.SLO, arrived, outcomes)
	return chaosRunResult{
		stream:     ds.Sum(),
		report:     obs.ReportDigest(rep),
		progDigest: prog.Digest(),
		stats:      stats,
		err:        err,
	}
}

// Satellite: chaos replay determinism — the same scenario, program and
// seed must reproduce byte-identical trace streams and reports even
// with every fault kind and the defragmenter active.
func TestChaosReplayDeterministic(t *testing.T) {
	a := chaosRun(t, 42, chaos.DefaultRandConfig())
	if a.err != nil {
		t.Fatalf("chaos oracle: %v (stats %+v)", a.err, a.stats)
	}
	b := chaosRun(t, 42, chaos.DefaultRandConfig())
	if a.stream != b.stream {
		t.Fatalf("same chaos seed, different stream digests:\n  %s\n  %s", a.stream, b.stream)
	}
	if a.report != b.report {
		t.Fatalf("same chaos seed, different report digests:\n  %s\n  %s", a.report, b.report)
	}
	if a.stats.Migrations == 0 {
		t.Log("note: seed 42 run performed no migrations")
	}
}

// Golden fault-schedule digests, mirroring the replay-digest goldens in
// seedstability_test.go: the Random program drawn for a seed over the
// physical testbed is part of the replay contract. If chaos.Random ever
// changes its drawing order, these change — recapture in the same
// commit that justifies it.
var chaosProgramGoldens = map[int64]string{
	42: "92451c0259f301891b0242e61e74d3aa782d4da57f43a913d7598b614b138664",
	7:  "a730abca1cfbca32eb19b1dbd7f3e1457507d30d1ce03985300311c4399ef215",
}

func TestChaosProgramGoldens(t *testing.T) {
	tp := topo.PhysicalTestbed()
	for seed, want := range chaosProgramGoldens {
		p := chaos.Random(tp, chaosHorizon, seed, chaos.DefaultRandConfig())
		if got := p.Digest(); got != want {
			t.Errorf("seed %d: fault-schedule digest drifted:\n  golden %s\n  got    %s", seed, want, got)
		}
	}
}

// The 128-seed survival sweep: every seed's run must satisfy the
// conservation oracle, and periodic seeds are re-run to assert the
// digests are identical across reruns.
func TestChaosDiffSweep(t *testing.T) {
	seeds := 128
	if testing.Short() {
		seeds = 16
	}
	for seed := 0; seed < seeds; seed++ {
		r := chaosRun(t, int64(seed), chaos.DefaultRandConfig())
		if r.err != nil {
			t.Errorf("seed %d: %v (stats %+v)", seed, r.err, r.stats)
			continue
		}
		if seed%16 == 0 {
			r2 := chaosRun(t, int64(seed), chaos.DefaultRandConfig())
			if r.stream != r2.stream || r.report != r2.report {
				t.Errorf("seed %d: rerun digests differ (stream %v, report %v)",
					seed, r.stream == r2.stream, r.report == r2.report)
			}
		}
	}
}
