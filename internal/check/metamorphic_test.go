package check_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dsslc"
	"repro/internal/engine"
	"repro/internal/res"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Metamorphic properties of the DSS-LC scheduler (Algorithm 2): the
// chosen assignment — as per-(type,node) counts; requests of one type
// are interchangeable — must be invariant under (a) permuting the batch
// order and (b) scaling every Eq. 3 transmission-delay cost by a
// positive constant. Both transformations preserve every comparison the
// min-cost-flow solver makes, so a changed assignment would expose
// order- or scale-dependence sneaking into the hot path.

// metaTopo builds three co-located clusters (distance 0, so every WAN
// RTT is exactly WANBaseRTT) and scales the base RTTs by k: with no
// distance term, all Eq. 3 costs scale exactly by k.
func metaTopo(k time.Duration) *topo.Topology {
	b := topo.NewBuilder()
	caps := [][]res.Vector{
		{res.V(4000, 8192, 500), res.V(2000, 4096, 250)},
		{res.V(8000, 16384, 1000)},
		{res.V(4000, 8192, 500), res.V(4000, 8192, 500), res.V(2000, 4096, 250)},
	}
	for _, wc := range caps {
		b.AddCluster(31, 121, res.V(8000, 16384, 1000), wc)
	}
	tp := b.Build()
	tp.LANRTT *= k
	tp.WANBaseRTT *= k
	return tp
}

// metaBatch builds n LC requests over the catalog's LC types, in an
// order drawn from seed.
func metaBatch(e *engine.Engine, n int, seed int64) []*engine.Request {
	rng := rand.New(rand.NewSource(seed))
	lc := trace.DefaultCatalog().LCTypes()
	out := make([]*engine.Request, n)
	for i := range out {
		t := lc[rng.Intn(len(lc))]
		out[i] = e.NewRequest(trace.Request{
			ID: int64(i + 1), Type: t, Class: trace.LC, Cluster: 0,
		})
	}
	return out
}

// assignCounts reduces an assignment to per-(type,node) counts.
func assignCounts(reqs []*engine.Request, a dsslc.Assignment) map[string]int {
	types := map[int64]trace.TypeID{}
	for _, r := range reqs {
		types[r.ID] = r.Type
	}
	out := map[string]int{}
	for id, node := range a {
		out[fmt.Sprintf("t%d@n%d", types[id], node)]++
	}
	return out
}

func scheduleCounts(t *testing.T, rttScale time.Duration, batchSeed int64, permute bool, n int) map[string]int {
	t.Helper()
	s := sim.New()
	e := engine.New(engine.Config{
		Sim: s, Topo: metaTopo(rttScale), Catalog: trace.DefaultCatalog(), Policy: engine.GreedyPolicy{},
	})
	sched := dsslc.New(e, 99)
	reqs := metaBatch(e, n, batchSeed)
	if permute {
		rng := rand.New(rand.NewSource(batchSeed + 7))
		rng.Shuffle(len(reqs), func(i, j int) { reqs[i], reqs[j] = reqs[j], reqs[i] })
	}
	a := sched.ScheduleBatch(0, reqs)
	if len(a) != n {
		t.Fatalf("assigned %d of %d requests", len(a), n)
	}
	return assignCounts(reqs, a)
}

func diffCounts(t *testing.T, label string, a, b map[string]int) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %v vs %v", label, a, b)
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("%s: key %s has %d vs %d\n%v\n%v", label, k, v, b[k], a, b)
		}
	}
}

func TestSchedulerPermutationInvariance(t *testing.T) {
	// Small batch exercises Case 1 (capacity covers demand); the large
	// batch overflows capacity and exercises Case 2's two-phase routing.
	for _, n := range []int{12, 400} {
		for seed := int64(1); seed <= 5; seed++ {
			base := scheduleCounts(t, 1, seed, false, n)
			perm := scheduleCounts(t, 1, seed, true, n)
			diffCounts(t, fmt.Sprintf("n=%d seed=%d", n, seed), base, perm)
		}
	}
}

func TestSchedulerCostScalingInvariance(t *testing.T) {
	for _, n := range []int{12, 400} {
		for seed := int64(1); seed <= 5; seed++ {
			base := scheduleCounts(t, 1, seed, false, n)
			for _, k := range []time.Duration{2, 5} {
				scaled := scheduleCounts(t, k, seed, false, n)
				diffCounts(t, fmt.Sprintf("n=%d seed=%d k=%d", n, seed, k), base, scaled)
			}
		}
	}
}
