// Package res models the edge-cloud resource dimensions used throughout
// Tango: CPU (millicores), memory (MiB) and network bandwidth (Mbps).
//
// Following §4.1 of the paper, resources are classified as compressible
// (CPU, bandwidth — shares can be transferred to LC services without
// killing the holder) or incompressible (memory, disk — reclaiming them
// requires evicting and later restarting the BE service that holds them).
package res

import "fmt"

// Kind identifies one resource dimension.
type Kind int

const (
	CPU Kind = iota // millicores
	Memory
	Bandwidth
	numKinds
)

// Kinds lists every resource dimension in canonical order.
var Kinds = [...]Kind{CPU, Memory, Bandwidth}

// String returns the conventional short name for the resource kind.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "cpu"
	case Memory:
		return "memory"
	case Bandwidth:
		return "bandwidth"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Compressible reports whether shares of the resource can be transferred
// between running containers without terminating the loser (§4.1).
func (k Kind) Compressible() bool { return k == CPU || k == Bandwidth }

// Vector is an amount of each resource. CPU is in millicores, Memory in
// MiB, Bandwidth in Mbps. The zero Vector is empty.
type Vector struct {
	MilliCPU  int64
	MemoryMiB int64
	BWMbps    int64
}

// V is shorthand for constructing a Vector.
func V(milliCPU, memoryMiB, bwMbps int64) Vector {
	return Vector{MilliCPU: milliCPU, MemoryMiB: memoryMiB, BWMbps: bwMbps}
}

// Get returns the amount of one dimension.
func (v Vector) Get(k Kind) int64 {
	switch k {
	case CPU:
		return v.MilliCPU
	case Memory:
		return v.MemoryMiB
	case Bandwidth:
		return v.BWMbps
	}
	panic(fmt.Sprintf("res: unknown kind %d", int(k)))
}

// Set returns a copy of v with dimension k replaced by amount.
func (v Vector) Set(k Kind, amount int64) Vector {
	switch k {
	case CPU:
		v.MilliCPU = amount
	case Memory:
		v.MemoryMiB = amount
	case Bandwidth:
		v.BWMbps = amount
	default:
		panic(fmt.Sprintf("res: unknown kind %d", int(k)))
	}
	return v
}

// Add returns v + w.
func (v Vector) Add(w Vector) Vector {
	return Vector{v.MilliCPU + w.MilliCPU, v.MemoryMiB + w.MemoryMiB, v.BWMbps + w.BWMbps}
}

// Sub returns v - w. The result may be negative; use Fits to test
// admissibility first.
func (v Vector) Sub(w Vector) Vector {
	return Vector{v.MilliCPU - w.MilliCPU, v.MemoryMiB - w.MemoryMiB, v.BWMbps - w.BWMbps}
}

// Scale returns v scaled by a rational factor num/den, rounding toward zero.
func (v Vector) Scale(num, den int64) Vector {
	if den == 0 {
		panic("res: Scale by zero denominator")
	}
	return Vector{v.MilliCPU * num / den, v.MemoryMiB * num / den, v.BWMbps * num / den}
}

// ScaleFloat returns v scaled by f, rounding each dimension to nearest.
func (v Vector) ScaleFloat(f float64) Vector {
	round := func(x float64) int64 {
		if x >= 0 {
			return int64(x + 0.5)
		}
		return int64(x - 0.5)
	}
	return Vector{
		round(float64(v.MilliCPU) * f),
		round(float64(v.MemoryMiB) * f),
		round(float64(v.BWMbps) * f),
	}
}

// Fits reports whether w can be carved out of v, i.e. w <= v in every
// dimension.
func (v Vector) Fits(w Vector) bool {
	return w.MilliCPU <= v.MilliCPU && w.MemoryMiB <= v.MemoryMiB && w.BWMbps <= v.BWMbps
}

// IsZero reports whether every dimension is zero.
func (v Vector) IsZero() bool { return v == Vector{} }

// Nonnegative reports whether every dimension is >= 0.
func (v Vector) Nonnegative() bool {
	return v.MilliCPU >= 0 && v.MemoryMiB >= 0 && v.BWMbps >= 0
}

// Max returns the element-wise maximum of v and w.
func (v Vector) Max(w Vector) Vector {
	return Vector{max64(v.MilliCPU, w.MilliCPU), max64(v.MemoryMiB, w.MemoryMiB), max64(v.BWMbps, w.BWMbps)}
}

// Min returns the element-wise minimum of v and w.
func (v Vector) Min(w Vector) Vector {
	return Vector{min64(v.MilliCPU, w.MilliCPU), min64(v.MemoryMiB, w.MemoryMiB), min64(v.BWMbps, w.BWMbps)}
}

// Clamp returns v limited to [lo, hi] element-wise.
func (v Vector) Clamp(lo, hi Vector) Vector { return v.Max(lo).Min(hi) }

// DominantShare returns the largest ratio v[k]/cap[k] over dimensions where
// cap[k] > 0. This is the "dominant resource" load measure used by the
// load-greedy baseline and by DCG-BE's short-term reward.
func (v Vector) DominantShare(capacity Vector) float64 {
	share := 0.0
	for _, k := range Kinds {
		c := capacity.Get(k)
		if c <= 0 {
			continue
		}
		if s := float64(v.Get(k)) / float64(c); s > share {
			share = s
		}
	}
	return share
}

// CapacityCount returns how many requests demanding `demand` fit inside v,
// i.e. min over dimensions of floor(v[k]/demand[k]) for demand[k] > 0
// (Eq. 2 of the paper, without the sign convention). Returns 0 if any
// demanded dimension exceeds what is available, and a large number if the
// demand is zero in every dimension.
func (v Vector) CapacityCount(demand Vector) int64 {
	const unbounded = int64(1) << 40
	count := unbounded
	for _, k := range Kinds {
		d := demand.Get(k)
		if d <= 0 {
			continue
		}
		have := v.Get(k)
		if have < 0 {
			have = 0
		}
		if c := have / d; c < count {
			count = c
		}
	}
	return count
}

// String formats the vector compactly, e.g. "cpu=2000m mem=4096Mi bw=100Mbps".
func (v Vector) String() string {
	return fmt.Sprintf("cpu=%dm mem=%dMi bw=%dMbps", v.MilliCPU, v.MemoryMiB, v.BWMbps)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
