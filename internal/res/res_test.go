package res

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{CPU: "cpu", Memory: "memory", Bandwidth: "bandwidth"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestCompressible(t *testing.T) {
	if !CPU.Compressible() {
		t.Error("CPU should be compressible")
	}
	if !Bandwidth.Compressible() {
		t.Error("Bandwidth should be compressible")
	}
	if Memory.Compressible() {
		t.Error("Memory should be incompressible")
	}
}

func TestGetSet(t *testing.T) {
	v := V(100, 200, 300)
	if v.Get(CPU) != 100 || v.Get(Memory) != 200 || v.Get(Bandwidth) != 300 {
		t.Fatalf("Get mismatch: %v", v)
	}
	w := v.Set(Memory, 999)
	if w.Get(Memory) != 999 || v.Get(Memory) != 200 {
		t.Fatal("Set must return a copy and not mutate")
	}
}

func TestAddSub(t *testing.T) {
	a, b := V(1, 2, 3), V(10, 20, 30)
	if got := a.Add(b); got != V(11, 22, 33) {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); got != V(9, 18, 27) {
		t.Fatalf("Sub = %v", got)
	}
}

func TestFits(t *testing.T) {
	node := V(4000, 8192, 1000)
	if !node.Fits(V(4000, 8192, 1000)) {
		t.Error("exact fit should pass")
	}
	if !node.Fits(Vector{}) {
		t.Error("zero demand should fit")
	}
	if node.Fits(V(4001, 0, 0)) {
		t.Error("CPU overflow should fail")
	}
	if node.Fits(V(0, 9000, 0)) {
		t.Error("memory overflow should fail")
	}
}

func TestScale(t *testing.T) {
	v := V(1000, 2048, 100)
	if got := v.Scale(1, 2); got != V(500, 1024, 50) {
		t.Fatalf("Scale(1/2) = %v", got)
	}
	if got := v.Scale(3, 1); got != V(3000, 6144, 300) {
		t.Fatalf("Scale(3) = %v", got)
	}
}

func TestScaleFloatRounds(t *testing.T) {
	v := V(3, 3, 3)
	if got := v.ScaleFloat(0.5); got != V(2, 2, 2) {
		t.Fatalf("ScaleFloat(0.5) = %v, want rounding to nearest", got)
	}
	if got := V(-3, 0, 0).ScaleFloat(0.5); got.MilliCPU != -2 {
		t.Fatalf("negative rounding = %v", got)
	}
}

func TestScalePanicsOnZeroDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scale(_,0) did not panic")
		}
	}()
	V(1, 1, 1).Scale(1, 0)
}

func TestMinMaxClamp(t *testing.T) {
	a, b := V(1, 20, 3), V(10, 2, 30)
	if got := a.Max(b); got != V(10, 20, 30) {
		t.Fatalf("Max = %v", got)
	}
	if got := a.Min(b); got != V(1, 2, 3) {
		t.Fatalf("Min = %v", got)
	}
	if got := V(5, 5, 5).Clamp(V(0, 6, 0), V(4, 10, 10)); got != V(4, 6, 5) {
		t.Fatalf("Clamp = %v", got)
	}
}

func TestDominantShare(t *testing.T) {
	capV := V(1000, 1000, 1000)
	if got := V(500, 250, 100).DominantShare(capV); got != 0.5 {
		t.Fatalf("DominantShare = %v, want 0.5", got)
	}
	if got := (Vector{}).DominantShare(capV); got != 0 {
		t.Fatalf("zero usage share = %v", got)
	}
	// zero-capacity dimensions are ignored
	if got := V(500, 9999, 0).DominantShare(V(1000, 0, 0)); got != 0.5 {
		t.Fatalf("zero-cap dimension not ignored: %v", got)
	}
}

func TestCapacityCount(t *testing.T) {
	node := V(4000, 8192, 0)
	demand := V(500, 1024, 0)
	if got := node.CapacityCount(demand); got != 8 {
		t.Fatalf("CapacityCount = %d, want 8", got)
	}
	// memory is the bottleneck
	if got := V(4000, 1024, 0).CapacityCount(demand); got != 1 {
		t.Fatalf("CapacityCount = %d, want 1", got)
	}
	// zero demand is unbounded-ish
	if got := node.CapacityCount(Vector{}); got < 1<<30 {
		t.Fatalf("zero-demand capacity = %d", got)
	}
	// negative availability counts as zero
	if got := V(-100, 8192, 0).CapacityCount(demand); got != 0 {
		t.Fatalf("negative availability capacity = %d, want 0", got)
	}
}

func TestNonnegativeIsZero(t *testing.T) {
	if !(Vector{}).IsZero() {
		t.Error("zero vector should be IsZero")
	}
	if V(1, 0, 0).IsZero() {
		t.Error("nonzero vector reported IsZero")
	}
	if !V(0, 0, 0).Nonnegative() || V(-1, 0, 0).Nonnegative() {
		t.Error("Nonnegative misbehaves")
	}
}

func TestString(t *testing.T) {
	got := V(2000, 4096, 100).String()
	want := "cpu=2000m mem=4096Mi bw=100Mbps"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func randVec(r *rand.Rand) Vector {
	return V(int64(r.Intn(10000)), int64(r.Intn(10000)), int64(r.Intn(10000)))
}

// Property: Add is commutative and associative; Sub inverts Add.
func TestQuickAddSubAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randVec(r), randVec(r), randVec(r)
		if a.Add(b) != b.Add(a) {
			return false
		}
		if a.Add(b).Add(c) != a.Add(b.Add(c)) {
			return false
		}
		return a.Add(b).Sub(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Fits(w) implies Sub(w).Nonnegative() and vice versa.
func TestQuickFitsSubEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v, w := randVec(r), randVec(r)
		return v.Fits(w) == v.Sub(w).Nonnegative()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CapacityCount * demand always fits; (count+1)*demand never does
// (when demand has at least one positive dimension and count is bounded).
func TestQuickCapacityCountTight(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		node := randVec(r)
		demand := V(int64(r.Intn(500)+1), int64(r.Intn(500)+1), int64(r.Intn(500)+1))
		n := node.CapacityCount(demand)
		if !node.Fits(demand.Scale(n, 1)) {
			return false
		}
		return !node.Fits(demand.Scale(n+1, 1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Min/Max are lattice ops (idempotent, commutative, absorbing).
func TestQuickMinMaxLattice(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVec(r), randVec(r)
		if a.Max(a) != a || a.Min(a) != a {
			return false
		}
		if a.Max(b) != b.Max(a) || a.Min(b) != b.Min(a) {
			return false
		}
		return a.Max(a.Min(b)) == a && a.Min(a.Max(b)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
