// Package perf is the performance-observability layer: where internal/obs
// answers "what did the system decide", perf answers "where did the time
// and the allocations go while deciding it".
//
// The centerpiece is the Profiler, a stack of nestable phase timers over
// a fixed enum of instrumented phases (the DSS-LC solve stages, the
// engine loop stages and the cgroup write path). Each Enter/Exit pair
// charges wall time and heap-allocation deltas (via runtime/metrics) to
// the phase; nesting is explicit, so a phase's *self* cost excludes its
// children while its *total* cost includes them, and re-entrant phases
// (a phase nested under itself) are counted once, not twice.
//
// Everything here measures the host, not the simulation: values are
// wall-clock and allocator facts that legitimately differ between two
// replays of the same scenario+seed. The replay-digest contract
// therefore excludes all perf data — the Profiler emits no obs events
// (nothing reaches obs.DigestSink) and every report field or registry
// metric derived from this package carries the obs.PerfMetricPrefix that
// obs.ReportDigest strips.
//
// A nil *Profiler is a valid disabled profiler, mirroring obs.Tracer:
// every method is a nil-check no-op, so instrumentation stays compiled
// into the hot paths at zero cost when profiling is off.
package perf

import (
	"context"
	"fmt"
	"runtime/metrics"
	"runtime/pprof"
	"time"

	"repro/internal/obs"
)

// PhaseID names one instrumented phase. The enum is fixed so the hot
// path indexes arrays instead of hashing strings.
type PhaseID uint8

const (
	// DSS-LC solve stages (internal/dsslc + internal/flow).
	PhaseSolveGraphBuild PhaseID = iota // MCNF graph construction in dsslc.route
	PhaseSolveMCNF                      // whole flow.MinCostFlow call
	PhaseSolveDijkstra                  // Johnson-potential Dijkstra searches inside MinCostFlow
	PhaseSolveAugment                   // SSP augmentation (potential update + path apply)
	PhaseSolveDinic                     // flow.MaxFlowDinic
	// Engine loop stages (internal/core + internal/engine).
	PhaseEngineDispatch  // one dispatcher round over all LC/BE queues
	PhaseEngineAdmission // Policy.Admit calls (arrival + drain)
	PhaseEngineCollect   // the 800 ms collection tick
	// Cgroup write path (internal/cgroup).
	PhaseCgroupReconcile // Hierarchy.SetLimits (D-VPA / kubelet writes)

	PhaseCount // sentinel
)

var phaseNames = [PhaseCount]string{
	PhaseSolveGraphBuild: "solve/graph-build",
	PhaseSolveMCNF:       "solve/mcnf",
	PhaseSolveDijkstra:   "solve/dijkstra",
	PhaseSolveAugment:    "solve/augment",
	PhaseSolveDinic:      "solve/dinic",
	PhaseEngineDispatch:  "engine/dispatch",
	PhaseEngineAdmission: "engine/admission",
	PhaseEngineCollect:   "engine/collect",
	PhaseCgroupReconcile: "cgroup/reconcile",
}

// String returns the stable phase name (also the pprof label value).
func (p PhaseID) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseStats is the cumulative account of one phase.
type PhaseStats struct {
	// Calls counts Enter/Exit pairs, including re-entrant ones.
	Calls uint64
	// TotalNs is inclusive wall time: children are included, re-entrant
	// nesting of the same phase is counted once (outermost frame only).
	TotalNs int64
	// SelfNs is exclusive wall time: time in the phase minus time in
	// phases nested under it (any phase, including itself).
	SelfNs int64
	// AllocBytes / AllocObjects are exclusive heap-allocation deltas,
	// attributed like SelfNs. They are process-global allocator counters,
	// so concurrent goroutines' allocations land in whatever phase is
	// open; the simulation is single-threaded, which keeps them honest.
	AllocBytes   uint64
	AllocObjects uint64
}

// frame is one open Enter on the stack.
type frame struct {
	id      PhaseID
	start   time.Time
	allocB  uint64 // allocator counters at Enter
	allocO  uint64
	childNs int64 // time charged to nested frames
	childB  uint64
	childO  uint64
	prevCtx context.Context // pprof label context to restore on Exit
}

// Profiler accumulates PhaseStats. It is not safe for concurrent use;
// like the Tracer it relies on the simulation being single-threaded.
type Profiler struct {
	stats [PhaseCount]PhaseStats
	depth [PhaseCount]int // re-entrancy depth per phase
	outer [PhaseCount]time.Time
	stack []frame

	allocBuf []metrics.Sample // reused; keeps Enter/Exit allocation-free

	labels bool
	ctxs   [PhaseCount]context.Context
	base   context.Context
}

// New returns an enabled profiler.
func New() *Profiler {
	p := &Profiler{
		stack: make([]frame, 0, 16),
		allocBuf: []metrics.Sample{
			{Name: "/gc/heap/allocs:bytes"},
			{Name: "/gc/heap/allocs:objects"},
		},
		base: context.Background(),
	}
	return p
}

// SetLabels toggles runtime/pprof goroutine labels: while a phase is
// open, CPU-profile samples of the goroutine carry phase=<name>, so
// `go tool pprof -tagfocus` attributes samples by phase. Costs one
// SetGoroutineLabels syscall-free runtime call per Enter/Exit.
func (p *Profiler) SetLabels(on bool) {
	if p == nil {
		return
	}
	p.labels = on
	if on && p.ctxs[0] == nil {
		for i := PhaseID(0); i < PhaseCount; i++ {
			p.ctxs[i] = pprof.WithLabels(p.base, pprof.Labels("phase", i.String()))
		}
	}
}

// Enabled reports whether the profiler is live. Safe on nil.
func (p *Profiler) Enabled() bool { return p != nil }

// readAllocs returns the cumulative heap allocation counters.
func (p *Profiler) readAllocs() (bytes, objects uint64) {
	metrics.Read(p.allocBuf)
	return p.allocBuf[0].Value.Uint64(), p.allocBuf[1].Value.Uint64()
}

// Enter opens a phase. Phases nest: every Enter must be matched by an
// Exit of the same phase in LIFO order (Exit panics otherwise). Safe on
// a nil receiver (no-op).
func (p *Profiler) Enter(id PhaseID) {
	if p == nil {
		return
	}
	if id >= PhaseCount {
		panic(fmt.Sprintf("perf: unknown phase %d", id))
	}
	now := time.Now()
	if p.depth[id] == 0 {
		p.outer[id] = now
	}
	p.depth[id]++
	ab, ao := p.readAllocs()
	f := frame{id: id, start: now, allocB: ab, allocO: ao}
	if p.labels {
		if len(p.stack) > 0 {
			f.prevCtx = p.ctxs[p.stack[len(p.stack)-1].id]
		} else {
			f.prevCtx = p.base
		}
		pprof.SetGoroutineLabels(p.ctxs[id])
	}
	p.stack = append(p.stack, f)
}

// Exit closes the innermost open phase, which must be id. Safe on a nil
// receiver (no-op).
func (p *Profiler) Exit(id PhaseID) {
	if p == nil {
		return
	}
	if len(p.stack) == 0 {
		panic(fmt.Sprintf("perf: Exit(%s) with no open phase", id))
	}
	f := p.stack[len(p.stack)-1]
	if f.id != id {
		panic(fmt.Sprintf("perf: Exit(%s) but innermost open phase is %s", id, f.id))
	}
	p.stack = p.stack[:len(p.stack)-1]
	now := time.Now()
	ab, ao := p.readAllocs()
	elapsed := now.Sub(f.start).Nanoseconds()
	db, do := ab-f.allocB, ao-f.allocO

	st := &p.stats[id]
	st.Calls++
	st.SelfNs += elapsed - f.childNs
	st.AllocBytes += db - f.childB
	st.AllocObjects += do - f.childO
	p.depth[id]--
	if p.depth[id] == 0 {
		// Inclusive time is charged on the outermost exit only, so a
		// phase re-entered under itself is not double-counted.
		st.TotalNs += now.Sub(p.outer[id]).Nanoseconds()
	}
	if len(p.stack) > 0 {
		parent := &p.stack[len(p.stack)-1]
		parent.childNs += elapsed
		parent.childB += db
		parent.childO += do
	}
	if p.labels {
		pprof.SetGoroutineLabels(f.prevCtx)
	}
}

// Stats returns the cumulative stats of one phase.
func (p *Profiler) Stats(id PhaseID) PhaseStats {
	if p == nil || id >= PhaseCount {
		return PhaseStats{}
	}
	return p.stats[id]
}

// OpenDepth returns how many frames are currently open (0 when
// balanced); tests use it to assert Enter/Exit discipline.
func (p *Profiler) OpenDepth() int {
	if p == nil {
		return 0
	}
	return len(p.stack)
}

// PhaseSnapshot is one row of Snapshot.
type PhaseSnapshot struct {
	Phase string
	PhaseStats
}

// Snapshot renders every phase in enum order, including phases that were
// never entered (zero rows), so consumers always see the full breakdown
// for the solver, engine and cgroup subsystems.
func (p *Profiler) Snapshot() []PhaseSnapshot {
	out := make([]PhaseSnapshot, PhaseCount)
	for i := PhaseID(0); i < PhaseCount; i++ {
		out[i] = PhaseSnapshot{Phase: i.String()}
		if p != nil {
			out[i].PhaseStats = p.stats[i]
		}
	}
	return out
}

// ReportPhases renders the snapshot as the run report's perf section
// rows (obs.PhasePerf).
func (p *Profiler) ReportPhases() []obs.PhasePerf {
	snap := p.Snapshot()
	out := make([]obs.PhasePerf, len(snap))
	for i, s := range snap {
		out[i] = obs.PhasePerf{
			Phase: s.Phase, Calls: s.Calls,
			TotalNs: s.TotalNs, SelfNs: s.SelfNs,
			AllocBytes: s.AllocBytes, AllocObjects: s.AllocObjects,
		}
	}
	return out
}
