package perf

import (
	"testing"
	"time"
)

func TestNilProfilerIsNoOp(t *testing.T) {
	var p *Profiler
	if p.Enabled() {
		t.Fatal("nil profiler reports enabled")
	}
	// None of these may panic.
	p.Enter(PhaseSolveMCNF)
	p.Exit(PhaseSolveMCNF)
	p.SetLabels(true)
	if got := p.Stats(PhaseSolveMCNF); got != (PhaseStats{}) {
		t.Fatalf("nil profiler stats = %+v", got)
	}
	if p.OpenDepth() != 0 {
		t.Fatal("nil profiler has open frames")
	}
	snap := p.Snapshot()
	if len(snap) != int(PhaseCount) {
		t.Fatalf("nil snapshot has %d rows, want %d", len(snap), PhaseCount)
	}
}

func spin(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

func TestNestingSelfExcludesChild(t *testing.T) {
	p := New()
	p.Enter(PhaseEngineDispatch)
	spin(2 * time.Millisecond)
	p.Enter(PhaseSolveMCNF)
	spin(4 * time.Millisecond)
	p.Exit(PhaseSolveMCNF)
	p.Exit(PhaseEngineDispatch)

	if p.OpenDepth() != 0 {
		t.Fatalf("open depth %d after balanced Enter/Exit", p.OpenDepth())
	}
	disp := p.Stats(PhaseEngineDispatch)
	mcnf := p.Stats(PhaseSolveMCNF)
	if disp.Calls != 1 || mcnf.Calls != 1 {
		t.Fatalf("calls = %d/%d, want 1/1", disp.Calls, mcnf.Calls)
	}
	if mcnf.TotalNs < (3 * time.Millisecond).Nanoseconds() {
		t.Fatalf("child total %dns, want >= ~4ms", mcnf.TotalNs)
	}
	// Parent total includes the child; parent self excludes it.
	if disp.TotalNs < disp.SelfNs+mcnf.TotalNs-int64(time.Millisecond) {
		t.Fatalf("parent total %dns < self %dns + child %dns", disp.TotalNs, disp.SelfNs, mcnf.TotalNs)
	}
	if disp.SelfNs > disp.TotalNs-mcnf.TotalNs+int64(time.Millisecond) {
		t.Fatalf("parent self %dns does not exclude child %dns (total %dns)",
			disp.SelfNs, mcnf.TotalNs, disp.TotalNs)
	}
}

func TestReentrantPhaseCountedOnce(t *testing.T) {
	p := New()
	start := time.Now()
	p.Enter(PhaseCgroupReconcile)
	spin(time.Millisecond)
	p.Enter(PhaseCgroupReconcile) // e.g. ResizePodAndContainer -> SetLimits
	spin(time.Millisecond)
	p.Exit(PhaseCgroupReconcile)
	spin(time.Millisecond)
	p.Exit(PhaseCgroupReconcile)
	elapsed := time.Since(start).Nanoseconds()

	st := p.Stats(PhaseCgroupReconcile)
	if st.Calls != 2 {
		t.Fatalf("calls = %d, want 2", st.Calls)
	}
	// Inclusive time must be wall time of the outermost pair — roughly
	// elapsed, and critically NOT ~elapsed+1ms (double-counted inner).
	if st.TotalNs > elapsed {
		t.Fatalf("reentrant total %dns exceeds wall %dns (double count)", st.TotalNs, elapsed)
	}
	if st.TotalNs < (2 * time.Millisecond).Nanoseconds() {
		t.Fatalf("reentrant total %dns, want >= ~3ms", st.TotalNs)
	}
	// Self time still covers the whole span (self of both frames).
	if st.SelfNs > st.TotalNs {
		t.Fatalf("self %dns > total %dns", st.SelfNs, st.TotalNs)
	}
}

func TestExitMismatchPanics(t *testing.T) {
	p := New()
	p.Enter(PhaseSolveMCNF)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Exit of wrong phase did not panic")
			}
		}()
		p.Exit(PhaseSolveDinic)
	}()
	p.Exit(PhaseSolveMCNF)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Exit with empty stack did not panic")
			}
		}()
		p.Exit(PhaseSolveMCNF)
	}()
}

func TestAllocationDeltaAttribution(t *testing.T) {
	p := New()
	var sink [][]byte
	p.Enter(PhaseEngineDispatch)
	p.Enter(PhaseSolveMCNF)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 16*1024))
	}
	p.Exit(PhaseSolveMCNF)
	p.Exit(PhaseEngineDispatch)
	_ = sink

	mcnf := p.Stats(PhaseSolveMCNF)
	disp := p.Stats(PhaseEngineDispatch)
	// runtime/metrics allocation counters may lag by up to one mcache
	// flush, so assert slightly under the 1 MiB actually allocated.
	if mcnf.AllocBytes < 60*16*1024 {
		t.Fatalf("child alloc bytes %d, want >= ~1MiB", mcnf.AllocBytes)
	}
	if mcnf.AllocObjects < 60 {
		t.Fatalf("child alloc objects %d, want >= ~64", mcnf.AllocObjects)
	}
	// The parent allocated (nearly) nothing itself: the child's MiB must
	// not leak into the parent's exclusive account.
	if disp.AllocBytes > 64*1024 {
		t.Fatalf("parent self alloc bytes %d, child's allocations leaked upward", disp.AllocBytes)
	}
}

func TestSnapshotListsEveryPhaseInOrder(t *testing.T) {
	p := New()
	p.Enter(PhaseSolveDinic)
	p.Exit(PhaseSolveDinic)
	snap := p.Snapshot()
	if len(snap) != int(PhaseCount) {
		t.Fatalf("snapshot rows = %d, want %d", len(snap), PhaseCount)
	}
	for i, row := range snap {
		if row.Phase != PhaseID(i).String() {
			t.Fatalf("row %d is %q, want %q", i, row.Phase, PhaseID(i).String())
		}
	}
	if snap[PhaseSolveDinic].Calls != 1 {
		t.Fatalf("dinic row calls = %d, want 1", snap[PhaseSolveDinic].Calls)
	}
	if snap[PhaseEngineCollect].Calls != 0 {
		t.Fatal("untouched phase has nonzero calls")
	}
	rep := p.ReportPhases()
	if len(rep) != int(PhaseCount) {
		t.Fatalf("report rows = %d, want %d", len(rep), PhaseCount)
	}
	if rep[PhaseSolveDinic].Phase != "solve/dinic" || rep[PhaseSolveDinic].Calls != 1 {
		t.Fatalf("report dinic row = %+v", rep[PhaseSolveDinic])
	}
}

func TestLabelsSmoke(t *testing.T) {
	p := New()
	p.SetLabels(true)
	p.Enter(PhaseEngineDispatch)
	p.Enter(PhaseSolveMCNF)
	p.Exit(PhaseSolveMCNF)
	p.Exit(PhaseEngineDispatch)
	if st := p.Stats(PhaseSolveMCNF); st.Calls != 1 {
		t.Fatalf("labeled run calls = %d, want 1", st.Calls)
	}
	if p.OpenDepth() != 0 {
		t.Fatal("labels left frames open")
	}
}
