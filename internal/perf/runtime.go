package perf

import (
	"math"
	"runtime/metrics"
)

// Harvester samples the Go runtime's own health metrics — heap size,
// allocation totals, GC activity and pauses, goroutine count and
// scheduler latency — so the 800 ms collector can record the *host*
// cost of a run next to the simulated workload series. Like every perf
// value, harvested samples are wall-clock facts and are excluded from
// the replay digests (they are published under obs.PerfMetricPrefix).
type Harvester struct {
	buf []metrics.Sample
}

// Harvested runtime metric keys, in buf order.
const (
	hHeapLive = iota
	hAllocBytes
	hAllocObjects
	hGoroutines
	hGCCycles
	hGCPauses
	hSchedLat
	hCount
)

// NewHarvester prepares the sample buffer once; Sample then performs a
// single allocation-free metrics.Read per call.
func NewHarvester() *Harvester {
	buf := make([]metrics.Sample, hCount)
	buf[hHeapLive].Name = "/memory/classes/heap/objects:bytes"
	buf[hAllocBytes].Name = "/gc/heap/allocs:bytes"
	buf[hAllocObjects].Name = "/gc/heap/allocs:objects"
	buf[hGoroutines].Name = "/sched/goroutines:goroutines"
	buf[hGCCycles].Name = "/gc/cycles/total:gc-cycles"
	buf[hGCPauses].Name = "/gc/pauses:seconds"
	buf[hSchedLat].Name = "/sched/latencies:seconds"
	return &Harvester{buf: buf}
}

// RuntimeSample is one point-in-time reading. Counter-like fields
// (AllocBytes, AllocObjects, GCCycles, GCPauseCount) are cumulative
// since process start.
type RuntimeSample struct {
	HeapLiveBytes uint64 // live heap occupied by objects
	AllocBytes    uint64 // cumulative allocated bytes
	AllocObjects  uint64 // cumulative allocated objects
	Goroutines    int64
	GCCycles      uint64
	GCPauseCount  uint64  // cumulative stop-the-world pauses
	GCPauseP99Ns  float64 // p99 over all pauses so far
	SchedLatP99Ns float64 // p99 goroutine scheduling latency so far
}

// Sample reads the runtime metrics once.
func (h *Harvester) Sample() RuntimeSample {
	metrics.Read(h.buf)
	s := RuntimeSample{
		HeapLiveBytes: h.buf[hHeapLive].Value.Uint64(),
		AllocBytes:    h.buf[hAllocBytes].Value.Uint64(),
		AllocObjects:  h.buf[hAllocObjects].Value.Uint64(),
		Goroutines:    int64(h.buf[hGoroutines].Value.Uint64()),
		GCCycles:      h.buf[hGCCycles].Value.Uint64(),
	}
	if ph := h.buf[hGCPauses].Value.Float64Histogram(); ph != nil {
		s.GCPauseCount = histCount(ph)
		s.GCPauseP99Ns = histQuantile(ph, 0.99) * 1e9
	}
	if lh := h.buf[hSchedLat].Value.Float64Histogram(); lh != nil {
		s.SchedLatP99Ns = histQuantile(lh, 0.99) * 1e9
	}
	return s
}

// Map renders the sample keyed by the registry/report metric names
// (prefixed so obs.ReportDigest can strip them).
func (s RuntimeSample) Map() map[string]float64 {
	return map[string]float64{
		"perf_heap_live_bytes":      float64(s.HeapLiveBytes),
		"perf_alloc_bytes_total":    float64(s.AllocBytes),
		"perf_alloc_objects_total":  float64(s.AllocObjects),
		"perf_goroutines":           float64(s.Goroutines),
		"perf_gc_cycles_total":      float64(s.GCCycles),
		"perf_gc_pauses_total":      float64(s.GCPauseCount),
		"perf_gc_pause_p99_ns":      s.GCPauseP99Ns,
		"perf_sched_latency_p99_ns": s.SchedLatP99Ns,
	}
}

func histCount(h *metrics.Float64Histogram) uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// histQuantile estimates the q-th quantile of a runtime
// Float64Histogram by linear interpolation within the containing
// bucket. Buckets may open with -Inf and close with +Inf; those edges
// clamp to the nearest finite bound. Returns 0 for an empty histogram.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	total := histCount(h)
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range h.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			return 0
		case math.IsInf(lo, -1):
			return hi
		case math.IsInf(hi, 1):
			return lo
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	// Numerical edge: fall back to the largest finite bound.
	for i := len(h.Buckets) - 1; i >= 0; i-- {
		if !math.IsInf(h.Buckets[i], 1) {
			return h.Buckets[i]
		}
	}
	return 0
}
