package perf

import (
	"math"
	"runtime/metrics"
	"strings"
	"testing"
)

func TestHarvesterSampleSanity(t *testing.T) {
	h := NewHarvester()
	s1 := h.Sample()
	if s1.HeapLiveBytes == 0 {
		t.Fatal("heap live bytes = 0 in a running process")
	}
	if s1.Goroutines < 1 {
		t.Fatalf("goroutines = %d, want >= 1", s1.Goroutines)
	}
	// Allocate and re-sample: cumulative counters must be monotonic and
	// must have moved past ~1MiB of fresh garbage.
	var sink [][]byte
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 16*1024))
	}
	_ = sink
	s2 := h.Sample()
	if s2.AllocBytes < s1.AllocBytes+60*16*1024 {
		t.Fatalf("alloc bytes %d -> %d, want growth >= ~1MiB", s1.AllocBytes, s2.AllocBytes)
	}
	if s2.AllocObjects < s1.AllocObjects {
		t.Fatal("alloc objects went backwards")
	}
	if s2.GCCycles < s1.GCCycles || s2.GCPauseCount < s1.GCPauseCount {
		t.Fatal("GC counters went backwards")
	}
	if s2.GCPauseP99Ns < 0 || s2.SchedLatP99Ns < 0 {
		t.Fatalf("negative p99: pause=%g sched=%g", s2.GCPauseP99Ns, s2.SchedLatP99Ns)
	}
}

func TestRuntimeSampleMapKeysArePrefixed(t *testing.T) {
	m := RuntimeSample{HeapLiveBytes: 1, Goroutines: 2}.Map()
	if len(m) != 8 {
		t.Fatalf("map has %d keys, want 8", len(m))
	}
	for k := range m {
		if !strings.HasPrefix(k, "perf_") {
			t.Fatalf("key %q lacks the perf_ digest-exclusion prefix", k)
		}
	}
	if m["perf_heap_live_bytes"] != 1 || m["perf_goroutines"] != 2 {
		t.Fatalf("map values wrong: %v", m)
	}
}

func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{0, 10, 10, 0},
		Buckets: []float64{math.Inf(-1), 0, 1, 2, math.Inf(1)},
	}
	if got := histQuantile(h, 0.5); got != 1 {
		t.Fatalf("p50 = %g, want 1 (exact boundary)", got)
	}
	if got := histQuantile(h, 0.25); got != 0.5 {
		t.Fatalf("p25 = %g, want 0.5 (mid first bucket)", got)
	}
	if got := histQuantile(h, 1); got != 2 {
		t.Fatalf("p100 = %g, want 2", got)
	}
	// Mass in the +Inf bucket clamps to the last finite bound.
	tail := &metrics.Float64Histogram{
		Counts:  []uint64{1, 1},
		Buckets: []float64{0, 1, math.Inf(1)},
	}
	if got := histQuantile(tail, 0.99); got != 1 {
		t.Fatalf("p99 with +Inf bucket = %g, want clamp to 1", got)
	}
	empty := &metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}
	if got := histQuantile(empty, 0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %g, want 0", got)
	}
}
