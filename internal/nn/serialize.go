package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the on-wire form of a parameter set.
type snapshot struct {
	Names  []string
	Shapes [][2]int
	Data   [][]float64
}

// SaveParams serializes parameter values (not gradients) to w. The
// parameter order and shapes define the schema; LoadParams validates
// them on restore.
func SaveParams(w io.Writer, params []*Param) error {
	s := snapshot{}
	for _, p := range params {
		s.Names = append(s.Names, p.Name)
		s.Shapes = append(s.Shapes, [2]int{p.Val.R, p.Val.C})
		d := make([]float64, len(p.Val.Data))
		copy(d, p.Val.Data)
		s.Data = append(s.Data, d)
	}
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("nn: save params: %w", err)
	}
	return nil
}

// LoadParams restores values saved by SaveParams into params, which must
// have the same count, names and shapes.
func LoadParams(r io.Reader, params []*Param) error {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("nn: load params: %w", err)
	}
	if len(s.Names) != len(params) {
		return fmt.Errorf("nn: snapshot has %d params, model has %d", len(s.Names), len(params))
	}
	for i, p := range params {
		if s.Names[i] != p.Name {
			return fmt.Errorf("nn: param %d is %q in snapshot, %q in model", i, s.Names[i], p.Name)
		}
		if s.Shapes[i] != [2]int{p.Val.R, p.Val.C} {
			return fmt.Errorf("nn: param %q shape %v != model %dx%d",
				p.Name, s.Shapes[i], p.Val.R, p.Val.C)
		}
		if len(s.Data[i]) != len(p.Val.Data) {
			return fmt.Errorf("nn: param %q data length mismatch", p.Name)
		}
	}
	// Validate-then-commit: no partial restores.
	for i, p := range params {
		copy(p.Val.Data, s.Data[i])
	}
	return nil
}
