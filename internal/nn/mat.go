// Package nn is the neural-network substrate replacing PyTorch for the
// learning components of Tango (DCG-BE's GraphSAGE encoder and A2C
// actor/critic, plus the GNN-SAC and GCN/GAT ablation baselines). It
// provides dense matrices, fully-connected layers with manual
// backpropagation, ReLU/Tanh activations, row-wise softmax with action
// masking, Xavier initialization and the Adam optimizer with the paper's
// hyperparameters (lr = 2e-4).
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a dense row-major matrix.
type Mat struct {
	R, C int
	Data []float64
}

// NewMat allocates an R×C zero matrix.
func NewMat(r, c int) *Mat {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("nn: invalid matrix shape %dx%d", r, c))
	}
	return &Mat{R: r, C: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data (len r*c) in a matrix without copying.
func FromSlice(r, c int, data []float64) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("nn: FromSlice %dx%d with %d values", r, c, len(data)))
	}
	return &Mat{R: r, C: c, Data: data}
}

// At returns element (i,j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns element (i,j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Row returns a view of row i.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.R, m.C)
	copy(out.Data, m.Data)
	return out
}

// Zero clears the matrix in place.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatMul returns a × b.
func MatMul(a, b *Mat) *Mat {
	if a.C != b.R {
		panic(fmt.Sprintf("nn: matmul %dx%d by %dx%d", a.R, a.C, b.R, b.C))
	}
	out := NewMat(a.R, b.C)
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransA returns aᵀ × b.
func MatMulTransA(a, b *Mat) *Mat {
	if a.R != b.R {
		panic(fmt.Sprintf("nn: matmulTA %dx%d by %dx%d", a.R, a.C, b.R, b.C))
	}
	out := NewMat(a.C, b.C)
	for k := 0; k < a.R; k++ {
		arow, brow := a.Row(k), b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransB returns a × bᵀ.
func MatMulTransB(a, b *Mat) *Mat {
	if a.C != b.C {
		panic(fmt.Sprintf("nn: matmulTB %dx%d by %dx%d", a.R, a.C, b.R, b.C))
	}
	out := NewMat(a.R, b.R)
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.R; j++ {
			brow := b.Row(j)
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// AddInPlace adds b into a element-wise.
func AddInPlace(a, b *Mat) {
	if a.R != b.R || a.C != b.C {
		panic("nn: AddInPlace shape mismatch")
	}
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// ScaleInPlace multiplies every element by s.
func ScaleInPlace(a *Mat, s float64) {
	for i := range a.Data {
		a.Data[i] *= s
	}
}

// MeanRows returns the 1×C mean of the rows of m.
func MeanRows(m *Mat) *Mat {
	out := NewMat(1, m.C)
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j] += v
		}
	}
	inv := 1.0 / float64(m.R)
	for j := range out.Data {
		out.Data[j] *= inv
	}
	return out
}

// ConcatCols returns [a | b] column-wise (same row count).
func ConcatCols(a, b *Mat) *Mat {
	if a.R != b.R {
		panic("nn: ConcatCols row mismatch")
	}
	out := NewMat(a.R, a.C+b.C)
	for i := 0; i < a.R; i++ {
		copy(out.Row(i)[:a.C], a.Row(i))
		copy(out.Row(i)[a.C:], b.Row(i))
	}
	return out
}

// SoftmaxRow computes a numerically-stable softmax of one logit row.
// mask (optional) zeroes out entries where mask[i] == false before
// normalization — the "policy context filtering" mechanism of §5.3.2.
// If every entry is masked, the result is uniform over all entries.
func SoftmaxRow(logits []float64, mask []bool) []float64 {
	out := make([]float64, len(logits))
	maxv := math.Inf(-1)
	any := false
	for i, v := range logits {
		if mask != nil && !mask[i] {
			continue
		}
		any = true
		if v > maxv {
			maxv = v
		}
	}
	if !any {
		u := 1.0 / float64(len(logits))
		for i := range out {
			out[i] = u
		}
		return out
	}
	sum := 0.0
	for i, v := range logits {
		if mask != nil && !mask[i] {
			continue
		}
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// L2Norm returns the Euclidean norm of all elements.
func (m *Mat) L2Norm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// XavierInit fills m with Uniform(-a, a), a = sqrt(6/(fanIn+fanOut)).
func XavierInit(m *Mat, rng *rand.Rand) {
	a := math.Sqrt(6.0 / float64(m.R+m.C))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * a
	}
}
