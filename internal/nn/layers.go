package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Name string
	Val  *Mat
	Grad *Mat
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is one differentiable stage: Forward caches what Backward needs;
// Backward consumes dOut (∂L/∂output) and returns ∂L/∂input while
// accumulating parameter gradients.
type Layer interface {
	Forward(x *Mat) *Mat
	Backward(dOut *Mat) *Mat
	Params() []*Param
}

// Dense is a fully-connected layer: y = xW + b.
type Dense struct {
	W, B *Param
	x    *Mat // cached input
}

// NewDense creates a Dense layer with Xavier-initialized weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	w := NewMat(in, out)
	XavierInit(w, rng)
	return &Dense{
		W: &Param{Name: fmt.Sprintf("dense%dx%d.W", in, out), Val: w, Grad: NewMat(in, out)},
		B: &Param{Name: fmt.Sprintf("dense%dx%d.b", in, out), Val: NewMat(1, out), Grad: NewMat(1, out)},
	}
}

// Forward computes xW + b for a batch x (rows = samples).
func (d *Dense) Forward(x *Mat) *Mat {
	d.x = x
	out := MatMul(x, d.W.Val)
	for i := 0; i < out.R; i++ {
		row := out.Row(i)
		for j, b := range d.B.Val.Data {
			row[j] += b
		}
	}
	return out
}

// Backward accumulates dW = xᵀ·dOut, dB = Σrows dOut, returns dOut·Wᵀ.
func (d *Dense) Backward(dOut *Mat) *Mat {
	if d.x == nil {
		panic("nn: Dense.Backward before Forward")
	}
	AddInPlace(d.W.Grad, MatMulTransA(d.x, dOut))
	for i := 0; i < dOut.R; i++ {
		row := dOut.Row(i)
		for j, v := range row {
			d.B.Grad.Data[j] += v
		}
	}
	return MatMulTransB(dOut, d.W.Val)
}

// Params returns the layer's trainables.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// Forward zeroes negatives and remembers the active mask.
func (r *ReLU) Forward(x *Mat) *Mat {
	out := x.Clone()
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out
}

// Backward gates the gradient by the forward mask.
func (r *ReLU) Backward(dOut *Mat) *Mat {
	out := dOut.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// Params returns nil (no trainables).
func (r *ReLU) Params() []*Param { return nil }

// Tanh activation (used by the SAC baseline's squashing).
type Tanh struct {
	y *Mat
}

// Forward applies tanh element-wise.
func (t *Tanh) Forward(x *Mat) *Mat {
	out := x.Clone()
	for i, v := range out.Data {
		out.Data[i] = math.Tanh(v)
	}
	t.y = out
	return out
}

// Backward multiplies by 1 - y².
func (t *Tanh) Backward(dOut *Mat) *Mat {
	out := dOut.Clone()
	for i := range out.Data {
		y := t.y.Data[i]
		out.Data[i] *= 1 - y*y
	}
	return out
}

// Params returns nil.
func (t *Tanh) Params() []*Param { return nil }

// MLP is a feed-forward stack: Dense→ReLU repeated, final Dense linear.
// The paper's actor and critic are MLPs with hidden sizes 256/128/32.
type MLP struct {
	layers []Layer
}

// NewMLP builds an MLP with the given layer sizes, e.g.
// NewMLP(rng, 16, 256, 128, 32, 4) for the paper's 3-hidden-layer nets.
func NewMLP(rng *rand.Rand, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		m.layers = append(m.layers, NewDense(sizes[i], sizes[i+1], rng))
		if i+2 < len(sizes) {
			m.layers = append(m.layers, &ReLU{})
		}
	}
	return m
}

// Forward runs the stack.
func (m *MLP) Forward(x *Mat) *Mat {
	for _, l := range m.layers {
		x = l.Forward(x)
	}
	return x
}

// Backward runs the stack in reverse, returning ∂L/∂input.
func (m *MLP) Backward(dOut *Mat) *Mat {
	for i := len(m.layers) - 1; i >= 0; i-- {
		dOut = m.layers[i].Backward(dOut)
	}
	return dOut
}

// Params collects all trainables.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears all parameter gradients.
func (m *MLP) ZeroGrad() {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer with the paper's defaults
// (lr 2e-4, β1 0.9, β2 0.999, ε 1e-8).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param][]float64
}

// NewAdam creates an optimizer with learning rate lr.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Param][]float64{}, v: map[*Param][]float64{}}
}

// Step applies one Adam update to the params from their gradients, then
// leaves gradients untouched (callers usually ZeroGrad afterwards).
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.Val.Data))
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = make([]float64, len(p.Val.Data))
			a.v[p] = v
		}
		for i, g := range p.Grad.Data {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			p.Val.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// ClipGrads scales all gradients so their global L2 norm is at most c.
func ClipGrads(params []*Param, c float64) {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm <= c || norm == 0 {
		return
	}
	s := c / norm
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] *= s
		}
	}
}
