package nn

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, 4, 8, 2)
	x := FromSlice(1, 4, []float64{1, -2, 3, -4})
	before := m.Forward(x).Clone()

	var buf bytes.Buffer
	if err := SaveParams(&buf, m.Params()); err != nil {
		t.Fatal(err)
	}
	// Scramble the model, then restore.
	for _, p := range m.Params() {
		for i := range p.Val.Data {
			p.Val.Data[i] = rng.NormFloat64()
		}
	}
	if err := LoadParams(&buf, m.Params()); err != nil {
		t.Fatal(err)
	}
	after := m.Forward(x)
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatalf("output changed after round trip: %v vs %v", before.Data, after.Data)
		}
	}
}

func TestLoadRejectsMismatchedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := NewMLP(rng, 4, 8, 2)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	// Wrong shape.
	other := NewMLP(rng, 4, 9, 2)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), other.Params()); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	// Wrong count.
	deep := NewMLP(rng, 4, 8, 8, 2)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), deep.Params()); err == nil {
		t.Fatal("count mismatch accepted")
	}
	// Garbage input.
	if err := LoadParams(bytes.NewReader([]byte("junk")), src.Params()); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadIsAtomic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, 3, 4, 1)
	orig := make([]float64, len(m.Params()[0].Val.Data))
	copy(orig, m.Params()[0].Val.Data)
	// Snapshot from a different-shaped model must leave m untouched.
	other := NewMLP(rng, 3, 5, 1)
	var buf bytes.Buffer
	if err := SaveParams(&buf, other.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, m.Params()); err == nil {
		t.Fatal("mismatch accepted")
	}
	for i, v := range orig {
		if m.Params()[0].Val.Data[i] != v {
			t.Fatal("failed load modified the model")
		}
	}
}
