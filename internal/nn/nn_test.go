package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatBasics(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 || m.At(0, 0) != 0 {
		t.Fatal("At/Set broken")
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 5 {
		t.Fatal("Row broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone aliases data")
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Fatal("Zero broken")
	}
}

func TestFromSlice(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if m.At(1, 0) != 3 {
		t.Fatal("FromSlice layout wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(2, 2, []float64{1})
}

func TestMatMul(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulTranspose(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(2, 2, []float64{1, 0, 0, 1})
	// aᵀ b where b is identity: result = aᵀ.
	c := MatMulTransA(a, b)
	if c.R != 3 || c.C != 2 || c.At(0, 1) != 4 || c.At(2, 0) != 3 {
		t.Fatalf("MatMulTransA = %+v", c)
	}
	// a bᵀ with identity: a itself.
	d := MatMulTransB(a, FromSlice(3, 3, []float64{1, 0, 0, 0, 1, 0, 0, 0, 1}))
	for i := range a.Data {
		if d.Data[i] != a.Data[i] {
			t.Fatal("MatMulTransB with identity not identity")
		}
	}
}

func TestShapePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"newmat":   func() { NewMat(0, 1) },
		"matmul":   func() { MatMul(NewMat(2, 3), NewMat(2, 3)) },
		"add":      func() { AddInPlace(NewMat(1, 2), NewMat(2, 1)) },
		"concat":   func() { ConcatCols(NewMat(1, 2), NewMat(2, 2)) },
		"mlp tiny": func() { NewMLP(rand.New(rand.NewSource(1)), 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMeanRows(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 3, 3, 5})
	mean := MeanRows(m)
	if mean.At(0, 0) != 2 || mean.At(0, 1) != 4 {
		t.Fatalf("MeanRows = %v", mean.Data)
	}
}

func TestConcatCols(t *testing.T) {
	a := FromSlice(2, 1, []float64{1, 2})
	b := FromSlice(2, 2, []float64{3, 4, 5, 6})
	c := ConcatCols(a, b)
	if c.C != 3 || c.At(0, 0) != 1 || c.At(0, 2) != 4 || c.At(1, 1) != 5 {
		t.Fatalf("ConcatCols = %v", c.Data)
	}
}

func TestSoftmaxRow(t *testing.T) {
	p := SoftmaxRow([]float64{1, 1, 1, 1}, nil)
	for _, v := range p {
		if math.Abs(v-0.25) > 1e-12 {
			t.Fatalf("uniform softmax = %v", p)
		}
	}
	p = SoftmaxRow([]float64{1000, 0}, nil) // stability
	if p[0] < 0.999 || math.IsNaN(p[1]) {
		t.Fatalf("large-logit softmax = %v", p)
	}
}

func TestSoftmaxMasking(t *testing.T) {
	p := SoftmaxRow([]float64{5, 1, 100}, []bool{true, true, false})
	if p[2] != 0 {
		t.Fatalf("masked entry has probability %v", p[2])
	}
	if math.Abs(p[0]+p[1]-1) > 1e-12 {
		t.Fatalf("masked softmax does not normalize: %v", p)
	}
	// Everything masked -> uniform fallback.
	p = SoftmaxRow([]float64{1, 2}, []bool{false, false})
	if p[0] != 0.5 || p[1] != 0.5 {
		t.Fatalf("all-masked fallback = %v", p)
	}
}

func TestDenseForwardKnown(t *testing.T) {
	d := NewDense(2, 2, rand.New(rand.NewSource(1)))
	copy(d.W.Val.Data, []float64{1, 2, 3, 4})
	copy(d.B.Val.Data, []float64{10, 20})
	y := d.Forward(FromSlice(1, 2, []float64{1, 1}))
	if y.At(0, 0) != 14 || y.At(0, 1) != 26 {
		t.Fatalf("Dense forward = %v", y.Data)
	}
}

func TestDenseBackwardBeforeForwardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewDense(2, 2, rand.New(rand.NewSource(1))).Backward(NewMat(1, 2))
}

// numericalGrad estimates dL/dp for a scalar loss via central differences.
func numericalGrad(loss func() float64, data []float64, i int) float64 {
	const h = 1e-6
	orig := data[i]
	data[i] = orig + h
	lp := loss()
	data[i] = orig - h
	lm := loss()
	data[i] = orig
	return (lp - lm) / (2 * h)
}

// TestGradCheckMLP verifies backprop against numerical gradients on a
// small MLP with a quadratic loss.
func TestGradCheckMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewMLP(rng, 3, 5, 4, 2)
	x := NewMat(2, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	target := NewMat(2, 2)
	for i := range target.Data {
		target.Data[i] = rng.NormFloat64()
	}
	loss := func() float64 {
		y := m.Forward(x)
		s := 0.0
		for i := range y.Data {
			d := y.Data[i] - target.Data[i]
			s += 0.5 * d * d
		}
		return s
	}
	// Analytic gradients.
	m.ZeroGrad()
	y := m.Forward(x)
	dOut := NewMat(y.R, y.C)
	for i := range y.Data {
		dOut.Data[i] = y.Data[i] - target.Data[i]
	}
	m.Backward(dOut)
	for _, p := range m.Params() {
		for i := 0; i < len(p.Val.Data); i += 3 { // sample every 3rd param
			want := numericalGrad(loss, p.Val.Data, i)
			got := p.Grad.Data[i]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: grad %g, numerical %g", p.Name, i, got, want)
			}
		}
	}
}

// TestGradCheckTanh verifies the Tanh layer's backward pass.
func TestGradCheckTanh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDense(2, 3, rng)
	tanh := &Tanh{}
	x := FromSlice(1, 2, []float64{0.3, -0.7})
	loss := func() float64 {
		y := tanh.Forward(d.Forward(x))
		s := 0.0
		for _, v := range y.Data {
			s += v * v
		}
		return s
	}
	d.W.Grad.Zero()
	d.B.Grad.Zero()
	y := tanh.Forward(d.Forward(x))
	dOut := NewMat(1, 3)
	for i, v := range y.Data {
		dOut.Data[i] = 2 * v
	}
	d.Backward(tanh.Backward(dOut))
	for i := range d.W.Val.Data {
		want := numericalGrad(loss, d.W.Val.Data, i)
		if math.Abs(d.W.Grad.Data[i]-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("tanh grad check failed at %d: %g vs %g", i, d.W.Grad.Data[i], want)
		}
	}
}

// TestAdamConvergesOnRegression trains a small MLP to fit y = 2x1 - x2
// and checks the loss drops by >100x.
func TestAdamConvergesOnRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, 2, 16, 1)
	opt := NewAdam(0.01)
	var first, last float64
	for step := 0; step < 400; step++ {
		x := NewMat(16, 2)
		target := NewMat(16, 1)
		for i := 0; i < 16; i++ {
			a, b := rng.NormFloat64(), rng.NormFloat64()
			x.Set(i, 0, a)
			x.Set(i, 1, b)
			target.Set(i, 0, 2*a-b)
		}
		m.ZeroGrad()
		y := m.Forward(x)
		lossV := 0.0
		dOut := NewMat(16, 1)
		for i := range y.Data {
			d := y.Data[i] - target.Data[i]
			lossV += d * d / 16
			dOut.Data[i] = 2 * d / 16
		}
		m.Backward(dOut)
		opt.Step(m.Params())
		if step == 0 {
			first = lossV
		}
		last = lossV
	}
	if last > first/100 {
		t.Fatalf("Adam did not converge: first %g, last %g", first, last)
	}
}

func TestClipGrads(t *testing.T) {
	p := &Param{Val: NewMat(1, 2), Grad: FromSlice(1, 2, []float64{3, 4})}
	ClipGrads([]*Param{p}, 1)
	norm := math.Hypot(p.Grad.Data[0], p.Grad.Data[1])
	if math.Abs(norm-1) > 1e-12 {
		t.Fatalf("clipped norm = %g", norm)
	}
	// Under the cap: untouched.
	q := &Param{Val: NewMat(1, 1), Grad: FromSlice(1, 1, []float64{0.5})}
	ClipGrads([]*Param{q}, 1)
	if q.Grad.Data[0] != 0.5 {
		t.Fatal("grad under cap was modified")
	}
}

func TestXavierInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMat(100, 100)
	XavierInit(m, rng)
	bound := math.Sqrt(6.0 / 200)
	nonzero := 0
	for _, v := range m.Data {
		if v < -bound || v > bound {
			t.Fatalf("value %g outside ±%g", v, bound)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 9000 {
		t.Fatal("init left most weights zero")
	}
}

func TestMLPDeterministicForSeed(t *testing.T) {
	a := NewMLP(rand.New(rand.NewSource(5)), 4, 8, 2)
	b := NewMLP(rand.New(rand.NewSource(5)), 4, 8, 2)
	x := FromSlice(1, 4, []float64{1, 2, 3, 4})
	ya, yb := a.Forward(x), b.Forward(x)
	for i := range ya.Data {
		if ya.Data[i] != yb.Data[i] {
			t.Fatal("same seed gave different networks")
		}
	}
}

// Property: softmax output is a probability distribution and respects
// masks for random logits.
func TestQuickSoftmaxDistribution(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%10) + 2
		logits := make([]float64, k)
		mask := make([]bool, k)
		anyValid := false
		for i := range logits {
			logits[i] = rng.NormFloat64() * 10
			mask[i] = rng.Intn(2) == 0
			anyValid = anyValid || mask[i]
		}
		p := SoftmaxRow(logits, mask)
		sum := 0.0
		for i, v := range p {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			if anyValid && !mask[i] && v != 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatMul distributes over addition: (A+B)C = AC + BC.
func TestQuickMatMulLinear(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := rng.Intn(4)+1, rng.Intn(4)+1, rng.Intn(4)+1
		mk := func() *Mat {
			m := NewMat(r, k)
			for i := range m.Data {
				m.Data[i] = rng.NormFloat64()
			}
			return m
		}
		a, b := mk(), mk()
		cm := NewMat(k, c)
		for i := range cm.Data {
			cm.Data[i] = rng.NormFloat64()
		}
		sum := a.Clone()
		AddInPlace(sum, b)
		left := MatMul(sum, cm)
		right := MatMul(a, cm)
		AddInPlace(right, MatMul(b, cm))
		for i := range left.Data {
			if math.Abs(left.Data[i]-right.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMLPForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, 32, 256, 128, 32, 8)
	x := NewMat(1, 32)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}
