package chaos

import (
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/res"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// env builds two 2-worker clusters with an engine, mirroring the
// engine-side migration tests: workers 1,2 (cluster 0) and 4,5
// (cluster 1).
func env(t testing.TB) (*sim.Simulator, *engine.Engine, *topo.Topology) {
	t.Helper()
	s := sim.New()
	b := topo.NewBuilder()
	caps := []res.Vector{res.V(4000, 8192, 500), res.V(4000, 8192, 500)}
	b.AddCluster(31.2, 121.5, res.V(8000, 16384, 1000), caps)
	b.AddCluster(32.1, 118.8, res.V(8000, 16384, 1000), caps)
	tp := b.Build()
	e := engine.New(engine.Config{
		Sim: s, Topo: tp, Catalog: trace.DefaultCatalog(), Policy: engine.GreedyPolicy{},
		OnDisplaced: func([]*engine.Request) {}, LCAbandonFactor: 1,
	})
	return s, e, tp
}

func TestRandomProgramDeterministic(t *testing.T) {
	_, _, tp := env(t)
	a := Random(tp, 10*time.Second, 42, DefaultRandConfig())
	b := Random(tp, 10*time.Second, 42, DefaultRandConfig())
	if a.Digest() != b.Digest() {
		t.Fatalf("same seed, different programs:\n%s\n%s", a.Digest(), b.Digest())
	}
	c := Random(tp, 10*time.Second, 43, DefaultRandConfig())
	if a.Digest() == c.Digest() {
		t.Fatal("different seeds produced identical programs")
	}
	for i := 1; i < len(a.Faults); i++ {
		if a.Faults[i].At < a.Faults[i-1].At {
			t.Fatal("Random program not sorted by time")
		}
	}
	horizon := 10 * time.Second
	for _, f := range a.Faults {
		if f.At < horizon/8 || f.At > horizon*3/4 {
			t.Fatalf("fault at %v outside [%v, %v]", f.At, horizon/8, horizon*3/4)
		}
		if f.Span <= 0 {
			t.Fatalf("Random produced an open-ended fault: %v", f)
		}
	}
}

func TestPresets(t *testing.T) {
	_, _, tp := env(t)
	for _, name := range []string{"churn", "partition", "flash", "all"} {
		p, err := Preset(name, tp, 10*time.Second, 1)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if len(p.Faults) == 0 || p.Name != name {
			t.Fatalf("preset %s: %d faults, name %q", name, len(p.Faults), p.Name)
		}
	}
	if _, err := Preset("bogus", tp, 10*time.Second, 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestInjectorNodeKillWindow(t *testing.T) {
	s, e, tp := env(t)
	revives := 0
	p := Program{Name: "t", Faults: []Fault{
		{At: 100 * time.Millisecond, Kind: NodeKill, Node: 1, Span: 200 * time.Millisecond},
	}}
	inj := NewInjector(p, InjectorConfig{
		Sim: s, Engine: e, Topo: tp,
		OnRevive: func() { revives++ },
	})
	inj.Arm()
	s.RunFor(150 * time.Millisecond)
	if !e.Node(1).Down() {
		t.Fatal("node 1 not down inside the fault window")
	}
	if inj.Applied != 1 || inj.Active != 1 {
		t.Fatalf("applied=%d active=%d, want 1/1", inj.Applied, inj.Active)
	}
	s.Run()
	if e.Node(1).Down() {
		t.Fatal("node 1 still down after the window")
	}
	if inj.Cleared != 1 || inj.Active != 0 || revives != 1 {
		t.Fatalf("cleared=%d active=%d revives=%d, want 1/0/1", inj.Cleared, inj.Active, revives)
	}
	w := inj.Windows()
	if len(w) != 1 || w[0].Start != 100*time.Millisecond || w[0].End != 300*time.Millisecond {
		t.Fatalf("windows = %+v", w)
	}
}

func TestInjectorPartitionAndStormWindows(t *testing.T) {
	s, e, tp := env(t)
	p := Program{Faults: []Fault{
		{At: 50 * time.Millisecond, Kind: Partition, Cluster: 0, Peer: 1, Span: 100 * time.Millisecond},
		{At: 60 * time.Millisecond, Kind: RTTInflate, Cluster: 0, Peer: 1, Span: 100 * time.Millisecond, Factor: 3},
	}}
	NewInjector(p, InjectorConfig{Sim: s, Engine: e, Topo: tp}).Arm()
	base := tp.ClusterRTT(0, 1)
	s.RunFor(70 * time.Millisecond)
	if tp.Reachable(0, 1) {
		t.Fatal("clusters reachable inside the partition window")
	}
	if got := tp.ClusterRTT(0, 1); got != topo.PartitionRTT {
		t.Fatalf("RTT under partition = %v, want %v", got, topo.PartitionRTT)
	}
	s.RunFor(85 * time.Millisecond) // now=155ms: partition healed, storm active
	if !tp.Reachable(0, 1) {
		t.Fatal("partition not healed")
	}
	if got := tp.ClusterRTT(0, 1); got != 3*base {
		t.Fatalf("RTT under storm = %v, want %v", got, 3*base)
	}
	s.Run()
	if got := tp.ClusterRTT(0, 1); got != base {
		t.Fatalf("RTT after all windows = %v, want %v", got, base)
	}
}

func TestInjectorFlashCrowd(t *testing.T) {
	s, e, tp := env(t)
	var burst []trace.Request
	p := Program{Seed: 9, Faults: []Fault{
		{At: 200 * time.Millisecond, Kind: FlashCrowd, Cluster: 1, Span: 400 * time.Millisecond, Factor: 3},
	}}
	gen := trace.DefaultGenConfig([]topo.ClusterID{0, 1}, trace.P3, 0, 0)
	gen.LCRatePerSec, gen.BERatePerSec = 60, 25
	inj := NewInjector(p, InjectorConfig{
		Sim: s, Engine: e, Topo: tp, Gen: gen,
		Inject: func(rs []trace.Request) { burst = append(burst, rs...) },
	})
	inj.Arm()
	s.Run()
	if len(burst) == 0 {
		t.Fatal("flash crowd injected nothing")
	}
	if inj.Injected != int64(len(burst)) {
		t.Fatalf("Injected=%d, delivered %d", inj.Injected, len(burst))
	}
	for _, r := range burst {
		if r.ID < FlashIDBase {
			t.Fatalf("burst ID %d below FlashIDBase", r.ID)
		}
		if r.Cluster != 1 {
			t.Fatalf("burst request landed on cluster %d, want 1", r.Cluster)
		}
		if r.Arrival < 200*time.Millisecond || r.Arrival > 600*time.Millisecond {
			t.Fatalf("burst arrival %v outside the fault window", r.Arrival)
		}
	}
	// Replays are byte-identical: rebuild and compare.
	s2, e2, tp2 := env(t)
	var burst2 []trace.Request
	NewInjector(p, InjectorConfig{
		Sim: s2, Engine: e2, Topo: tp2, Gen: gen,
		Inject: func(rs []trace.Request) { burst2 = append(burst2, rs...) },
	}).Arm()
	s2.Run()
	if len(burst2) != len(burst) {
		t.Fatalf("replay burst size %d != %d", len(burst2), len(burst))
	}
	for i := range burst {
		if burst[i] != burst2[i] {
			t.Fatalf("burst[%d] differs across replays: %+v vs %+v", i, burst[i], burst2[i])
		}
	}
}

func TestInjectorStallsAndEvents(t *testing.T) {
	s, e, tp := env(t)
	tr := obs.NewTracer(s.Now, obs.NullSink{})
	var masterUntil, collUntil time.Duration
	var masterClu topo.ClusterID
	p := Program{Faults: []Fault{
		{At: 10 * time.Millisecond, Kind: MasterStall, Cluster: 1, Span: 50 * time.Millisecond},
		{At: 20 * time.Millisecond, Kind: CollectorStall, Span: 40 * time.Millisecond},
	}}
	NewInjector(p, InjectorConfig{
		Sim: s, Engine: e, Topo: tp, Tracer: tr,
		StallMaster:    func(c topo.ClusterID, until time.Duration) { masterClu, masterUntil = c, until },
		StallCollector: func(until time.Duration) { collUntil = until },
	}).Arm()
	s.Run()
	if masterClu != 1 || masterUntil != 60*time.Millisecond {
		t.Fatalf("master stall = c%d until %v", masterClu, masterUntil)
	}
	if collUntil != 60*time.Millisecond {
		t.Fatalf("collector stall until %v", collUntil)
	}
	if got := tr.Count(obs.EvChaos); got != 2 {
		t.Fatalf("EvChaos events = %d, want 2 (stalls self-expire, no clear event)", got)
	}
}

func TestOverlappingWindows(t *testing.T) {
	s, e, tp := env(t)
	inj := NewInjector(Program{Faults: []Fault{
		{At: 100 * time.Millisecond, Kind: NodeKill, Node: 1, Span: 100 * time.Millisecond},
	}}, InjectorConfig{Sim: s, Engine: e, Topo: tp})
	inj.Arm()
	s.Run()
	if !inj.Overlapping(150*time.Millisecond, 160*time.Millisecond) {
		t.Fatal("interval inside the window not attributed")
	}
	if inj.Overlapping(300*time.Millisecond, 400*time.Millisecond) {
		t.Fatal("interval after the window attributed")
	}
}
