package chaos

import (
	"testing"
	"time"

	"repro/internal/trace"
)

func TestDefragNoopOnCompactFleet(t *testing.T) {
	s, e, _ := env(t)
	// One BE per node: every node is far below HotUtil.
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 1, Type: 6, Class: trace.BE, Cluster: 0}), 1)
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 2, Type: 6, Class: trace.BE, Cluster: 0}), 2)
	d := NewDefragmenter(e, DefragConfig{})
	if got := d.Score(); got != 0 {
		t.Fatalf("Score on compact fleet = %d, want 0", got)
	}
	if moved := d.Run(); moved != 0 {
		t.Fatalf("Run on compact fleet moved %d, want 0", moved)
	}
	if e.Migrations != 0 {
		t.Fatalf("migrations = %d on a compact fleet", e.Migrations)
	}
	s.Run()
	if e.Completed != 2 {
		t.Fatalf("completed = %d, want 2", e.Completed)
	}
}

func TestDefragMovesBEOffHotNode(t *testing.T) {
	s, e, _ := env(t)
	// Four type-6 BE requests fill worker 1's 4000 mCPU: utilization 1.0.
	for id := int64(1); id <= 4; id++ {
		e.DispatchLocal(e.NewRequest(trace.Request{ID: id, Type: 6, Class: trace.BE, Cluster: 0}), 1)
	}
	d := NewDefragmenter(e, DefragConfig{})
	if got := d.Score(); got != 1 {
		t.Fatalf("Score = %d, want 1 hot donor", got)
	}
	if moved := d.Run(); moved != 1 {
		t.Fatalf("Run moved %d, want 1 (newest BE off the hot node)", moved)
	}
	if e.Migrations != 1 {
		t.Fatalf("engine migrations = %d, want 1", e.Migrations)
	}
	if d.Passes != 1 || d.Moves != 1 {
		t.Fatalf("passes=%d moves=%d, want 1/1", d.Passes, d.Moves)
	}
	s.Run()
	if e.Completed != 4 {
		t.Fatalf("completed = %d, want 4", e.Completed)
	}
	if err := e.SelfCheck(); err != nil {
		t.Fatalf("self-check after defrag: %v", err)
	}
}

func TestDefragRespectsPartition(t *testing.T) {
	s, e, tp := env(t)
	for id := int64(1); id <= 4; id++ {
		e.DispatchLocal(e.NewRequest(trace.Request{ID: id, Type: 6, Class: trace.BE, Cluster: 0}), 1)
	}
	// Fill worker 2 too so the only cold receivers are across the WAN.
	for id := int64(5); id <= 8; id++ {
		e.DispatchLocal(e.NewRequest(trace.Request{ID: id, Type: 6, Class: trace.BE, Cluster: 0}), 2)
	}
	tp.Net().Partition(0, 1)
	d := NewDefragmenter(e, DefragConfig{})
	if moved := d.Run(); moved != 0 {
		t.Fatalf("defrag crossed a partition: moved %d", moved)
	}
	tp.Net().Heal(0, 1)
	if moved := d.Run(); moved == 0 {
		t.Fatal("defrag moved nothing after heal")
	}
	s.Run()
	if e.Completed != 8 {
		t.Fatalf("completed = %d, want 8", e.Completed)
	}
}

// Satellite: the defrag scoring pass must stay allocation-free — it
// runs every period even on a healthy fleet.
func TestDefragScoreAllocFree(t *testing.T) {
	_, e, _ := env(t)
	for id := int64(1); id <= 4; id++ {
		e.DispatchLocal(e.NewRequest(trace.Request{ID: id, Type: 6, Class: trace.BE, Cluster: 0}), 1)
	}
	d := NewDefragmenter(e, DefragConfig{})
	if allocs := testing.AllocsPerRun(100, func() { d.Score() }); allocs != 0 {
		t.Fatalf("Score allocates %.1f per run, want 0", allocs)
	}
}

func BenchmarkDefragScore(b *testing.B) {
	s, e, _ := env(b)
	for id := int64(1); id <= 4; id++ {
		e.DispatchLocal(e.NewRequest(trace.Request{ID: id, Type: 6, Class: trace.BE, Cluster: 0}), 1)
	}
	_ = s
	d := NewDefragmenter(e, DefragConfig{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Score()
	}
}

func TestDefragPeriodDefaults(t *testing.T) {
	_, e, _ := env(t)
	d := NewDefragmenter(e, DefragConfig{})
	c := d.Config()
	if c.Every != 800*time.Millisecond || c.MaxMoves != 4 || c.HotUtil != 0.75 || c.ColdUtil != 0.60 {
		t.Fatalf("defaults not filled: %+v", c)
	}
	d2 := NewDefragmenter(e, DefragConfig{Every: time.Second, MaxMoves: 1, HotUtil: 0.5, ColdUtil: 0.4})
	if d2.Period() != time.Second || d2.Config().MaxMoves != 1 {
		t.Fatalf("overrides lost: %+v", d2.Config())
	}
}
