package chaos

import (
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/topo"
)

// DefragConfig tunes the periodic defragmentation pass. Zero values
// take the defaults below.
type DefragConfig struct {
	// Every is the pass period (default 800ms).
	Every time.Duration
	// MaxMoves caps migrations per pass (default 4) so a pass never
	// floods the WAN with checkpoints.
	MaxMoves int
	// HotUtil marks donors: nodes at or above this dominant-share
	// utilization shed their newest BE work (default 0.75).
	HotUtil float64
	// ColdUtil marks receivers: only nodes below this utilization accept
	// migrated work (default 0.60), keeping the pass monotone — a
	// receiver can never become a donor within the same pass.
	ColdUtil float64
}

func (c DefragConfig) withDefaults() DefragConfig {
	if c.Every <= 0 {
		c.Every = 800 * time.Millisecond
	}
	if c.MaxMoves <= 0 {
		c.MaxMoves = 4
	}
	if c.HotUtil <= 0 {
		c.HotUtil = 0.75
	}
	if c.ColdUtil <= 0 {
		c.ColdUtil = 0.60
	}
	return c
}

// Defragmenter periodically batch-migrates BE pods off pressured nodes
// onto cold reachable ones (KubeDSM-style descheduling, built on
// engine.Migrate so every move replays deterministically).
type Defragmenter struct {
	cfg DefragConfig
	eng *engine.Engine
	tp  *topo.Topology
	tr  *obs.Tracer

	// nodes is cached in topology order at construction; Score and Run
	// iterate it without allocating.
	nodes []*engine.Node

	// Counters feeding the tango_defrag_* gauges.
	Passes int64
	Moves  int64
}

// NewDefragmenter builds a defragmenter over the engine's workers.
func NewDefragmenter(e *engine.Engine, cfg DefragConfig) *Defragmenter {
	return &Defragmenter{
		cfg:   cfg.withDefaults(),
		eng:   e,
		tp:    e.Topology(),
		tr:    e.Tracer(),
		nodes: e.Nodes(),
	}
}

// Config returns the effective (default-filled) configuration.
func (d *Defragmenter) Config() DefragConfig { return d.cfg }

// Period returns the pass period.
func (d *Defragmenter) Period() time.Duration { return d.cfg.Every }

// hot reports whether a node is a donor candidate.
func (d *Defragmenter) hot(n *engine.Node) bool {
	return !n.Down() && n.Utilization() >= d.cfg.HotUtil && n.RunningBECount() > 0
}

// Score counts donor candidates — hot nodes with migratable BE work.
// A compact fleet scores 0 and Run becomes a no-op. The scan is
// allocation-free (BenchmarkDefragScore pins this down): it is the part
// of the pass that runs even when nothing is wrong.
func (d *Defragmenter) Score() int {
	hot := 0
	for _, n := range d.nodes {
		if d.hot(n) {
			hot++
		}
	}
	return hot
}

// Run performs one defragmentation pass: greedily migrate the newest
// BE request of each hot donor to the coldest reachable receiver that
// fits it, up to MaxMoves. Returns the number of migrations started.
func (d *Defragmenter) Run() int {
	d.Passes++
	if d.Score() == 0 {
		return 0
	}
	moves := 0
	donors := int64(0)
	for _, src := range d.nodes {
		if moves >= d.cfg.MaxMoves {
			break
		}
		if !d.hot(src) {
			continue
		}
		donors++
		id, typ, ok := src.NewestBE()
		if !ok {
			continue
		}
		var best *engine.Node
		for _, dst := range d.nodes {
			if dst == src || dst.Down() {
				continue
			}
			if dst.Utilization() >= d.cfg.ColdUtil {
				continue
			}
			if !d.tp.Reachable(src.Cluster, dst.Cluster) {
				continue
			}
			if !dst.Free().Sub(dst.InTransit()).Fits(dst.EffectiveDemand(typ)) {
				continue
			}
			if best == nil || dst.Utilization() < best.Utilization() {
				best = dst
			}
		}
		if best == nil {
			continue
		}
		if !d.eng.Migrate(src.ID, best.ID, id) {
			// A refusal here means the fleet changed under us (e.g. the
			// request finished this tick); stop rather than thrash.
			break
		}
		moves++
	}
	d.Moves += int64(moves)
	if moves > 0 && d.tr.Enabled() {
		d.tr.Emit(obs.Ev(obs.EvDefrag).Val(float64(moves)).Au(donors))
	}
	return moves
}
