// Package chaos is the deterministic fault-injection subsystem
// (ROADMAP item 3): scripted or seed-randomized programs of node and
// cluster churn, WAN partitions, RTT storms, flash crowds and
// master/collector stalls, plus a periodic defragmentation pass that
// live-migrates BE work off pressured nodes (defrag.go).
//
// Every fault is applied — and, for windowed faults, cleared — by an
// ordinary sim event scheduled at Arm time, so a chaos run replays
// byte-identically under the same program and seed: the replay-digest
// contract of internal/check extends to faulty runs unchanged. The
// fault schedule itself hashes to a stable digest (Program.Digest),
// which the golden seed-stability tests pin.
package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/topo"
)

// Kind enumerates the fault types a program can schedule.
type Kind uint8

const (
	// NodeKill takes one worker down (Node); Span > 0 revives it after
	// the window, draining nothing — its work displaces immediately.
	NodeKill Kind = iota
	// ClusterKill takes every worker of a cluster down (Cluster).
	ClusterKill
	// Partition severs the WAN link between Cluster and Peer.
	Partition
	// RTTInflate multiplies the WAN RTT between Cluster and Peer by
	// Factor for the window (an "RTT storm").
	RTTInflate
	// FlashCrowd injects a burst trace at Cluster: the base workload
	// rates scaled by Factor over the window, shaped by the wavy/normal
	// generators.
	FlashCrowd
	// MasterStall pauses Cluster's LC dispatch rounds for the window
	// (queues keep filling; the backlog drains after).
	MasterStall
	// CollectorStall pauses the metrics collector for the window
	// (periods are skipped, not deferred).
	CollectorStall

	kindCount
)

var kindNames = [kindCount]string{
	NodeKill:       "node-kill",
	ClusterKill:    "cluster-kill",
	Partition:      "partition",
	RTTInflate:     "rtt-inflate",
	FlashCrowd:     "flash-crowd",
	MasterStall:    "master-stall",
	CollectorStall: "collector-stall",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Fault is one scripted event of a program.
type Fault struct {
	At   time.Duration
	Kind Kind
	// Node targets NodeKill; Cluster targets the cluster-scoped kinds;
	// Peer is the far side of Partition / RTTInflate.
	Node    topo.NodeID
	Cluster topo.ClusterID
	Peer    topo.ClusterID
	// Span is the fault window: the injector schedules the clearing
	// action (revive, heal, restore) Span after At. Span <= 0 means the
	// fault holds to the end of the run (stalls and flash crowds require
	// a positive Span).
	Span time.Duration
	// Factor scales RTTInflate (multiplier > 1) and FlashCrowd (rate
	// multiplier).
	Factor float64
}

// String renders the canonical one-line form hashed by Digest.
func (f Fault) String() string {
	return fmt.Sprintf("%d %s n%d c%d p%d %d %.4g",
		f.At.Microseconds(), f.Kind, f.Node, f.Cluster, f.Peer, f.Span.Microseconds(), f.Factor)
}

// Program is a named, ordered fault schedule.
type Program struct {
	Name string
	// Seed derives the flash-crowd burst traces (independent of the
	// scenario seed so the same program can ride different workloads).
	Seed   int64
	Faults []Fault
}

// Normalize sorts the faults by time (stable, so equal-time faults keep
// their scripted order).
func (p *Program) Normalize() {
	sort.SliceStable(p.Faults, func(i, j int) bool { return p.Faults[i].At < p.Faults[j].At })
}

// Digest hashes the canonical fault schedule — the golden fault-schedule
// tests pin it per seed, mirroring the replay-digest goldens.
func (p *Program) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s %d\n", p.Name, p.Seed)
	for _, f := range p.Faults {
		fmt.Fprintln(h, f.String())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RandConfig bounds Random's program generation: how many faults of
// each kind to draw.
type RandConfig struct {
	NodeChurn   int // worker kill+revive windows
	ClusterKill int // whole-cluster churn windows
	Partitions  int // WAN partition windows
	RTTStorms   int // RTT inflation windows
	FlashCrowds int // burst-injection windows
	Stalls      int // master stalls (plus one collector stall when > 0)
}

// DefaultRandConfig exercises every fault kind once or twice.
func DefaultRandConfig() RandConfig {
	return RandConfig{NodeChurn: 2, ClusterKill: 1, Partitions: 1, RTTStorms: 1, FlashCrowds: 1, Stalls: 1}
}

// Random draws a deterministic fault program over a topology: fault
// times land in the first three quarters of the horizon, windows span
// 10–30% of it (stalls 5–12%), so every window closes before the drain
// ends. Same (topology shape, horizon, seed, cfg) ⇒ same program.
func Random(t *topo.Topology, horizon time.Duration, seed int64, cfg RandConfig) Program {
	rng := rand.New(rand.NewSource(seed))
	p := Program{Name: fmt.Sprintf("random-%d", seed), Seed: seed}

	var workers []topo.NodeID
	for _, n := range t.Nodes {
		if n.Role == topo.Worker {
			workers = append(workers, n.ID)
		}
	}
	at := func() time.Duration {
		return horizon/8 + time.Duration(rng.Int63n(int64(horizon)*5/8))
	}
	span := func() time.Duration {
		return horizon/10 + time.Duration(rng.Int63n(int64(horizon)/5))
	}
	shortSpan := func() time.Duration {
		return horizon/20 + time.Duration(rng.Int63n(int64(horizon)*7/100))
	}
	cluster := func() topo.ClusterID {
		return t.Clusters[rng.Intn(len(t.Clusters))].ID
	}
	pair := func() (topo.ClusterID, topo.ClusterID) {
		a := cluster()
		b := cluster()
		for b == a && len(t.Clusters) > 1 {
			b = cluster()
		}
		return a, b
	}

	for i := 0; i < cfg.NodeChurn && len(workers) > 0; i++ {
		p.Faults = append(p.Faults, Fault{
			At: at(), Kind: NodeKill, Node: workers[rng.Intn(len(workers))], Span: span(),
		})
	}
	for i := 0; i < cfg.ClusterKill; i++ {
		p.Faults = append(p.Faults, Fault{At: at(), Kind: ClusterKill, Cluster: cluster(), Span: span()})
	}
	if len(t.Clusters) > 1 {
		for i := 0; i < cfg.Partitions; i++ {
			a, b := pair()
			p.Faults = append(p.Faults, Fault{At: at(), Kind: Partition, Cluster: a, Peer: b, Span: span()})
		}
		for i := 0; i < cfg.RTTStorms; i++ {
			a, b := pair()
			p.Faults = append(p.Faults, Fault{
				At: at(), Kind: RTTInflate, Cluster: a, Peer: b, Span: span(),
				Factor: 2 + 4*rng.Float64(),
			})
		}
	}
	for i := 0; i < cfg.FlashCrowds; i++ {
		sp := span()
		if sp < 200*time.Millisecond {
			sp = 200 * time.Millisecond // at least two generator slots
		}
		p.Faults = append(p.Faults, Fault{
			At: at(), Kind: FlashCrowd, Cluster: cluster(), Span: sp,
			Factor: 2 + 3*rng.Float64(),
		})
	}
	for i := 0; i < cfg.Stalls; i++ {
		p.Faults = append(p.Faults, Fault{At: at(), Kind: MasterStall, Cluster: cluster(), Span: shortSpan()})
	}
	if cfg.Stalls > 0 {
		p.Faults = append(p.Faults, Fault{At: at(), Kind: CollectorStall, Span: shortSpan()})
	}
	p.Normalize()
	return p
}

// Preset builds one of the named CLI programs over a topology. Known
// names: churn (node+cluster kills), partition (WAN cuts + RTT storms),
// flash (flash crowds + stalls), all (everything, the DefaultRandConfig
// shape scaled up).
func Preset(name string, t *topo.Topology, horizon time.Duration, seed int64) (Program, error) {
	var cfg RandConfig
	switch name {
	case "churn":
		cfg = RandConfig{NodeChurn: 3, ClusterKill: 1}
	case "partition":
		cfg = RandConfig{Partitions: 2, RTTStorms: 2}
	case "flash":
		cfg = RandConfig{FlashCrowds: 2, Stalls: 1}
	case "all":
		cfg = RandConfig{NodeChurn: 3, ClusterKill: 1, Partitions: 2, RTTStorms: 1, FlashCrowds: 1, Stalls: 1}
	default:
		return Program{}, fmt.Errorf("chaos: unknown preset %q (churn|partition|flash|all)", name)
	}
	p := Random(t, horizon, seed, cfg)
	p.Name = name
	return p, nil
}
