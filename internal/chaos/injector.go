package chaos

import (
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Flash-crowd request IDs live far above any main-trace ID (traces
// number sequentially from 0) so burst requests never collide in the
// engine's per-node running maps or the span-ID space.
const (
	FlashIDBase   int64 = 1 << 40
	FlashIDStride int64 = 1 << 28
)

// InjectorConfig wires an Injector into a running system without the
// chaos package importing core (core imports chaos): the system hands
// in its primitives plus callbacks for the pieces only it can do.
type InjectorConfig struct {
	Sim    *sim.Simulator
	Engine *engine.Engine
	Topo   *topo.Topology
	// Tracer may be nil (events are then skipped, like everywhere else).
	Tracer *obs.Tracer
	// Gen is the flash-crowd template: bursts copy it, scale its rates by
	// the fault Factor, restrict it to the fault's cluster and window,
	// and stamp collision-free IDs.
	Gen trace.GenConfig
	// Inject delivers flash-crowd arrivals (core.System.Inject).
	Inject func([]trace.Request)
	// StallMaster pauses one cluster's LC dispatch until the given
	// virtual time.
	StallMaster func(c topo.ClusterID, until time.Duration)
	// StallCollector pauses the metrics collector until the given time.
	StallCollector func(until time.Duration)
	// OnRevive runs after every node/cluster revival — the differential
	// oracle hooks its engine/cgroup self-check sweeps here.
	OnRevive func()
}

// Window is one closed fault interval, kept for SLO attribution.
type Window struct {
	Kind  Kind
	Start time.Duration
	End   time.Duration // open-ended faults extend to the end of the run
}

// Injector arms a Program against a live system.
type Injector struct {
	prog Program
	cfg  InjectorConfig

	// Counters feeding the tango_chaos_* gauges.
	Applied  int64 // faults applied so far
	Cleared  int64 // windowed faults cleared so far
	Active   int64 // currently-open fault windows
	Injected int64 // flash-crowd requests injected

	windows []Window
}

// NewInjector binds a program to a system. Call Arm before Start.
func NewInjector(p Program, cfg InjectorConfig) *Injector {
	p.Normalize()
	return &Injector{prog: p, cfg: cfg}
}

// Program returns the armed program.
func (inj *Injector) Program() Program { return inj.prog }

// Windows lists every fault window applied so far (closed by
// construction: End = At + Span, or the maximum duration for
// open-ended faults).
func (inj *Injector) Windows() []Window { return inj.windows }

// Arm schedules every fault (and windowed clear) as ordinary sim
// events. Must be called before the clock starts moving for absolute
// fault times to land where the program says.
func (inj *Injector) Arm() {
	for i := range inj.prog.Faults {
		i := i
		inj.cfg.Sim.ScheduleAt(inj.prog.Faults[i].At, func() { inj.apply(i) })
	}
}

// hasClear reports whether a kind needs an explicit clearing action at
// window end (stalls and flash crowds expire on their own).
func hasClear(k Kind) bool {
	switch k {
	case NodeKill, ClusterKill, Partition, RTTInflate:
		return true
	}
	return false
}

func (inj *Injector) apply(i int) {
	f := inj.prog.Faults[i]
	inj.Applied++
	inj.Active++
	end := f.At + f.Span
	if f.Span <= 0 {
		end = 1<<63 - 1
	}
	inj.windows = append(inj.windows, Window{Kind: f.Kind, Start: f.At, End: end})
	inj.emit(f, 1)
	switch f.Kind {
	case NodeKill:
		inj.cfg.Engine.Node(f.Node).Fail()
	case ClusterKill:
		inj.cfg.Engine.FailCluster(f.Cluster)
	case Partition:
		inj.cfg.Topo.Net().Partition(f.Cluster, f.Peer)
	case RTTInflate:
		inj.cfg.Topo.Net().SetRTTFactor(f.Cluster, f.Peer, f.Factor)
	case FlashCrowd:
		inj.flash(i, f)
	case MasterStall:
		if inj.cfg.StallMaster != nil && f.Span > 0 {
			inj.cfg.StallMaster(f.Cluster, f.At+f.Span)
		}
	case CollectorStall:
		if inj.cfg.StallCollector != nil && f.Span > 0 {
			inj.cfg.StallCollector(f.At + f.Span)
		}
	}
	if f.Span > 0 {
		if hasClear(f.Kind) {
			inj.cfg.Sim.Schedule(f.Span, func() { inj.clear(i) })
		} else {
			// Self-expiring kinds only decrement the active gauge.
			inj.cfg.Sim.Schedule(f.Span, func() { inj.Active-- })
		}
	}
}

func (inj *Injector) clear(i int) {
	f := inj.prog.Faults[i]
	inj.Cleared++
	inj.Active--
	inj.emit(f, 0)
	switch f.Kind {
	case NodeKill:
		inj.cfg.Engine.Node(f.Node).Recover()
		inj.revived()
	case ClusterKill:
		inj.cfg.Engine.RecoverCluster(f.Cluster)
		inj.revived()
	case Partition:
		inj.cfg.Topo.Net().Heal(f.Cluster, f.Peer)
	case RTTInflate:
		inj.cfg.Topo.Net().ClearRTTFactor(f.Cluster, f.Peer)
	}
}

func (inj *Injector) revived() {
	if inj.cfg.OnRevive != nil {
		inj.cfg.OnRevive()
	}
}

func (inj *Injector) emit(f Fault, applied int64) {
	tr := inj.cfg.Tracer
	if !tr.Enabled() {
		return
	}
	tr.Emit(obs.Ev(obs.EvChaos).Node(int(f.Node)).Clu(int(f.Cluster)).
		Note(f.Kind.String()).Val(float64(f.Span) / float64(time.Millisecond)).Au(applied))
}

// flash generates and injects one burst. The burst trace derives from
// the program seed and the fault index only, so it is identical across
// replays of the same program regardless of when other faults fire.
func (inj *Injector) flash(i int, f Fault) {
	gen := inj.cfg.Gen
	gen.Seed = inj.prog.Seed*1_000_003 + int64(i)
	gen.FirstID = FlashIDBase + int64(i)*FlashIDStride
	gen.Start = f.At
	gen.Duration = f.Span
	gen.PeriodicCycle = f.Span // one full wave/bell per burst window
	gen.LCRatePerSec *= f.Factor
	gen.BERatePerSec *= f.Factor
	gen.Clusters = []topo.ClusterID{f.Cluster}
	gen.ClusterWeights = []float64{1}
	if i%2 == 0 {
		gen.Pattern = trace.Wavy
	} else {
		gen.Pattern = trace.Normal
	}
	burst := trace.Generate(gen)
	inj.Injected += int64(len(burst))
	if inj.cfg.Inject != nil {
		inj.cfg.Inject(burst)
	}
}

// Overlapping reports whether any fault window overlaps [start, end].
func (inj *Injector) Overlapping(start, end time.Duration) bool {
	for _, w := range inj.windows {
		if w.Start <= end && start <= w.End {
			return true
		}
	}
	return false
}

// AttributedEpisodes counts, over every service in the accountant, the
// closed violation episodes that overlap at least one fault window —
// the "SLO episodes attribute violations to active faults" half of the
// ChaosDiff oracle. Returns (attributed, total).
func (inj *Injector) AttributedEpisodes(acct *obs.SLOAccountant) (attributed, total int) {
	for _, s := range acct.Services() {
		for _, ep := range s.Episodes {
			total++
			if inj.Overlapping(ep.Start, ep.End) {
				attributed++
			}
		}
	}
	return attributed, total
}
