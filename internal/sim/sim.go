// Package sim provides a deterministic discrete-event simulation engine.
//
// All of the Tango reproduction runs on virtual time supplied by this
// package: the edge-cloud clusters, the behaviour-level Kubernetes model,
// the request execution engine and the traffic dispatchers all schedule
// their work as events on a single Simulator. Events with equal timestamps
// fire in the order they were scheduled, so a run is bit-reproducible for
// a fixed seed.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. The zero Event is invalid; events are
// created through Simulator.Schedule and friends.
type Event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	index     int // heap index, -1 when popped or cancelled
	period    time.Duration
	sim       *Simulator
	cancelled bool
	done      bool // one-shot that has fired
}

// At returns the virtual time at which the event fires (or fired).
func (e *Event) At() time.Duration { return e.at }

// Cancel prevents the event from firing again. For a one-shot event that
// already fired, or an already-cancelled event, Cancel is a no-op and
// returns false. Cancelling a periodic event from inside its own callback
// stops further repetitions and returns true.
func (e *Event) Cancel() bool {
	if e == nil || e.cancelled || e.done {
		return false
	}
	if e.index >= 0 && e.sim != nil {
		heap.Remove(&e.sim.queue, e.index)
		e.index = -1
	} else if e.period == 0 {
		return false // one-shot currently executing; too late
	}
	e.cancelled = true
	return true
}

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulator owns the virtual clock and the pending event queue.
// It is not safe for concurrent use; the simulation model is
// single-threaded by design so results are deterministic.
type Simulator struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	stopped bool
	fired   uint64
}

// New returns a Simulator with the clock at zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule queues fn to run after delay. A negative delay is treated as
// zero. The returned Event may be used to cancel the callback.
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Event {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	if delay < 0 {
		delay = 0
	}
	e := &Event{at: s.now + delay, seq: s.seq, fn: fn, sim: s}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// ScheduleAt queues fn at an absolute virtual time. Times in the past are
// clamped to now.
func (s *Simulator) ScheduleAt(at time.Duration, fn func()) *Event {
	return s.Schedule(at-s.now, fn)
}

// Every schedules fn to run now+period, then every period thereafter,
// until the returned Event is cancelled. period must be positive.
func (s *Simulator) Every(period time.Duration, fn func()) *Event {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every with non-positive period %v", period))
	}
	e := &Event{at: s.now + period, seq: s.seq, sim: s, period: period}
	s.seq++
	e.fn = func() {
		fn()
		if e.cancelled {
			return
		}
		// Re-arm in place so the caller's handle keeps working.
		e.at = s.now + period
		e.seq = s.seq
		s.seq++
		heap.Push(&s.queue, e)
	}
	heap.Push(&s.queue, e)
	return e
}

// Stop makes Run return after the current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Step executes the single earliest pending event and returns true.
// It returns false when the queue is empty.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	if e.at < s.now {
		panic("sim: event queue time went backwards")
	}
	s.now = e.at
	fn := e.fn
	if e.period == 0 {
		e.done = true
		e.fn = nil
	}
	s.fired++
	if fn != nil {
		fn()
	}
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline and then advances
// the clock to exactly deadline.
func (s *Simulator) RunUntil(deadline time.Duration) {
	s.stopped = false
	for !s.stopped && len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the simulation by d of virtual time.
func (s *Simulator) RunFor(d time.Duration) { s.RunUntil(s.now + d) }
