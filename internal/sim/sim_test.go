package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", s.Now())
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO at %d: got %d", i, v)
		}
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	s := New()
	fired := false
	s.Schedule(-time.Second, func() { fired = true })
	if s.queue[0].at != 0 {
		t.Fatalf("negative delay scheduled at %v, want 0", s.queue[0].at)
	}
	s.Run()
	if !fired {
		t.Fatal("event with negative delay never fired")
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(time.Millisecond, func() { fired = true })
	if !e.Pending() {
		t.Fatal("event should be pending before run")
	}
	if !e.Cancel() {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel() {
		t.Fatal("second Cancel should return false")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := New()
	var got []int
	var evs []*Event
	for i := 0; i < 10; i++ {
		i := i
		evs = append(evs, s.Schedule(time.Duration(i)*time.Millisecond, func() { got = append(got, i) }))
	}
	evs[4].Cancel()
	evs[7].Cancel()
	s.Run()
	want := []int{0, 1, 2, 3, 5, 6, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestScheduleAt(t *testing.T) {
	s := New()
	var at time.Duration
	s.Schedule(10*time.Millisecond, func() {
		s.ScheduleAt(25*time.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 25*time.Millisecond {
		t.Fatalf("ScheduleAt fired at %v, want 25ms", at)
	}
}

func TestScheduleAtPastClampsToNow(t *testing.T) {
	s := New()
	var at time.Duration = -1
	s.Schedule(10*time.Millisecond, func() {
		s.ScheduleAt(5*time.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 10*time.Millisecond {
		t.Fatalf("past ScheduleAt fired at %v, want clamped 10ms", at)
	}
}

func TestEvery(t *testing.T) {
	s := New()
	count := 0
	var ev *Event
	ev = s.Every(10*time.Millisecond, func() {
		count++
		if count == 5 {
			ev.Cancel()
		}
	})
	s.RunUntil(time.Second)
	if count != 5 {
		t.Fatalf("periodic fired %d times, want 5", count)
	}
	if s.Now() != time.Second {
		t.Fatalf("RunUntil left clock at %v", s.Now())
	}
}

func TestEveryTickSpacing(t *testing.T) {
	s := New()
	var ticks []time.Duration
	s.Every(100*time.Millisecond, func() { ticks = append(ticks, s.Now()) })
	s.RunUntil(550 * time.Millisecond)
	want := []time.Duration{100, 200, 300, 400, 500}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v", ticks)
	}
	for i, w := range want {
		if ticks[i] != w*time.Millisecond {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], w*time.Millisecond)
		}
	}
}

func TestEveryPanicsOnZeroPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	New().Every(0, func() {})
}

func TestSchedulePanicsOnNilFn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	New().Schedule(time.Second, nil)
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 0; i < 10; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt run: count=%d", count)
	}
	s.Run() // resumes
	if count != 10 {
		t.Fatalf("resume after Stop: count=%d", count)
	}
}

func TestRunUntilDoesNotRunFutureEvents(t *testing.T) {
	s := New()
	fired := false
	s.Schedule(100*time.Millisecond, func() { fired = true })
	s.RunUntil(99 * time.Millisecond)
	if fired {
		t.Fatal("event beyond deadline fired")
	}
	if s.Now() != 99*time.Millisecond {
		t.Fatalf("clock = %v", s.Now())
	}
	s.RunFor(time.Millisecond)
	if !fired {
		t.Fatal("event at deadline should fire")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 50 {
			s.Schedule(time.Millisecond, rec)
		}
	}
	s.Schedule(0, rec)
	s.Run()
	if depth != 50 {
		t.Fatalf("depth = %d, want 50", depth)
	}
	if s.Now() != 49*time.Millisecond {
		t.Fatalf("clock = %v, want 49ms", s.Now())
	}
}

func TestFiredCounter(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.Schedule(time.Duration(i), func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", s.Fired())
	}
}

// Property: for any random batch of delays, events fire in nondecreasing
// time order and the clock ends at the max delay.
func TestQuickEventOrder(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		k := int(n%64) + 1
		delays := make([]time.Duration, k)
		var fireTimes []time.Duration
		for i := 0; i < k; i++ {
			d := time.Duration(rng.Intn(1000)) * time.Millisecond
			delays[i] = d
			s.Schedule(d, func() { fireTimes = append(fireTimes, s.Now()) })
		}
		s.Run()
		if len(fireTimes) != k {
			return false
		}
		if !sort.SliceIsSorted(fireTimes, func(i, j int) bool { return fireTimes[i] < fireTimes[j] }) {
			return false
		}
		max := time.Duration(0)
		for _, d := range delays {
			if d > max {
				max = d
			}
		}
		return s.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the others fired.
func TestQuickCancelSubset(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		k := int(n%40) + 2
		fired := make([]bool, k)
		evs := make([]*Event, k)
		for i := 0; i < k; i++ {
			i := i
			evs[i] = s.Schedule(time.Duration(rng.Intn(100))*time.Millisecond, func() { fired[i] = true })
		}
		cancelled := make([]bool, k)
		for i := 0; i < k; i++ {
			if rng.Intn(2) == 0 {
				cancelled[i] = evs[i].Cancel()
			}
		}
		s.Run()
		for i := 0; i < k; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCancelAfterFired(t *testing.T) {
	s := New()
	e := s.Schedule(time.Millisecond, func() {})
	s.Run()
	if e.Pending() {
		t.Fatal("fired event still pending")
	}
	if e.Cancel() {
		t.Fatal("Cancel on an already-fired one-shot returned true")
	}
	if e.Cancel() {
		t.Fatal("second Cancel returned true")
	}
}

func TestCancelOneShotFromOwnCallback(t *testing.T) {
	s := New()
	var e *Event
	var got bool
	e = s.Schedule(time.Millisecond, func() { got = e.Cancel() })
	s.Run()
	if got {
		t.Fatal("one-shot cancelling itself mid-fire returned true")
	}
	if e.Cancel() {
		t.Fatal("Cancel after the callback returned true")
	}
}

func TestEveryCancelFromOwnCallback(t *testing.T) {
	s := New()
	var e *Event
	runs := 0
	e = s.Every(10*time.Millisecond, func() {
		runs++
		if runs == 3 {
			if !e.Cancel() {
				t.Error("periodic self-cancel returned false")
			}
		}
	})
	s.RunUntil(time.Second)
	if runs != 3 {
		t.Fatalf("periodic event ran %d times after self-cancel at 3", runs)
	}
	if e.Pending() {
		t.Fatal("cancelled periodic event still pending")
	}
	if e.Cancel() {
		t.Fatal("Cancel after self-cancel returned true")
	}
}

func TestEveryHandlerCallsStop(t *testing.T) {
	s := New()
	runs := 0
	s.Every(10*time.Millisecond, func() {
		runs++
		if runs == 2 {
			s.Stop()
		}
	})
	other := 0
	s.Schedule(time.Hour, func() { other++ })
	s.Run()
	if runs != 2 {
		t.Fatalf("ticker ran %d times, want 2 (Stop at the second tick)", runs)
	}
	if s.Now() != 20*time.Millisecond {
		t.Fatalf("clock = %v, want 20ms (stopped mid-queue)", s.Now())
	}
	if other != 0 {
		t.Fatal("event after Stop fired")
	}
	// The ticker re-armed itself before Stop took effect; resuming the
	// run picks it back up.
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2 (re-armed ticker + far event)", s.Pending())
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			s.Schedule(time.Duration(j%97)*time.Millisecond, func() {})
		}
		s.Run()
	}
}
