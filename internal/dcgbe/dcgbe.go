// Package dcgbe implements DCG-BE, the Deep-reinforcement-learning
// Customized algorithm based on Graph neural networks for centralized BE
// request scheduling (§5.3, Algorithm 3).
//
// The scheduler runs on the central cluster's master. For every BE
// request it builds the global graph state (per-node features: available
// CPU/memory, total CPU/memory, current slack score, and the request's
// CPU/memory demand; per-edge: transmission latency and capacity, folded
// into the topology graph), encodes it with a GraphSAGE network (L = 2
// aggregations, p-neighbour sampling), and lets an A2C agent choose the
// target node. A policy context-filtering mask zeroes the probability of
// nodes whose free resources cannot host the request. The reward is
// r = r_short + η·r_long (η = 1): the short-term term penalizes queue
// pressure at the chosen node (e^-max(ΣCPU/cap, Σmem/cap)); the
// long-term term rewards completed BE work across the fleet since the
// previous training interval (1 − e^−Σ(...)).
//
// Swapping the encoder (GCN / GAT / Native) or the agent (discrete SAC)
// reproduces the ablations of Figure 11(c,d).
package dcgbe

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/engine"
	"repro/internal/gnn"
	"repro/internal/nn"
	"repro/internal/res"
	"repro/internal/rl"
	"repro/internal/topo"
	"repro/internal/trace"
)

// FeatureDim is the per-node state size (§5.3.1).
const FeatureDim = 7

// EmbDim is the encoder output width.
const EmbDim = 32

// Agent abstracts A2C vs SAC for the pairing experiments.
type Agent interface {
	Probs(g *gnn.Graph, x *nn.Mat, mask []bool) []float64
	Update(batch []rl.Transition) rl.Stats
}

// Scheduler is the centralized BE dispatcher policy.
type Scheduler struct {
	Engine *engine.Engine
	Agent  Agent
	// Eta weighs the long-term reward (η = 1 in the paper).
	Eta float64
	// TrainEvery is N̂, the number of actions between training intervals.
	TrainEvery int
	// SlackFn supplies the per-node slack score feature (wired to the
	// QoS re-assurer by core; defaults to zero).
	SlackFn func(topo.NodeID) float64
	// Explore: sample from the policy (true, training) or act greedily.
	Explore bool
	// OnPick, when set, observes every scheduling decision (telemetry).
	OnPick func(topo.NodeID)
	// AllowFn, when set, restricts the candidate set before the context
	// filter (e.g. the DSACO baseline limits LC offloading to geo-nearby
	// clusters). Nodes with AllowFn == false are masked out.
	AllowFn func(r *engine.Request, n *engine.Node) bool
	// DisableMasking turns off policy context filtering (ablation
	// bench): the agent may pick nodes that cannot host the request.
	DisableMasking bool
	// MaxTrainBatch bounds the transitions used per training interval;
	// larger intervals are stride-subsampled. This keeps the per-decision
	// training cost constant at scale (the paper trains on GPU; this
	// reproduction runs the networks on the CPU).
	MaxTrainBatch int

	name    string
	graph   *gnn.Graph
	nodes   []*engine.Node
	index   map[topo.NodeID]int
	buffer  []rl.Transition
	pending []pendingReward
	// completedWork accumulates Σ (cpu/cap + mem/cap) of BE completions
	// since the last training interval (the r_long numerator).
	completedWork float64
	maxCPU        float64
	maxMem        float64
	// Updates counts trainings; Decisions counts scheduling actions;
	// CacheHits counts decisions served from the round cache.
	Updates   int64
	Decisions int64
	CacheHits int64

	// Round cache: within one dispatch round (same virtual instant) the
	// fleet state barely changes between consecutive picks of the same
	// request type, so the policy distribution is reused. Keyed by
	// (type, cluster) and cleared whenever the clock advances.
	cacheAt  time.Duration
	cacheMap map[cacheKey]*cacheEntry
	rng      *rand.Rand
}

type cacheKey struct {
	t trace.TypeID
	c topo.ClusterID
}

type cacheEntry struct {
	probs []float64
}

type pendingReward struct {
	tr     rl.Transition
	rShort float64
}

// Variant selects encoder/agent combinations.
type Variant struct {
	Encoder string // "sage" (default), "gcn", "gat", "native"
	Agent   string // "a2c" (default), "sac"
}

// New builds DCG-BE with the paper's configuration (GraphSAGE + A2C,
// p = 3 sampled neighbours, η = 1, 256/128/32 heads).
func New(e *engine.Engine, seed int64) *Scheduler {
	return NewVariant(e, Variant{}, seed)
}

// NewVariant builds a DCG-BE ablation variant.
func NewVariant(e *engine.Engine, v Variant, seed int64) *Scheduler {
	rng := rand.New(rand.NewSource(seed))
	var enc gnn.Encoder
	switch v.Encoder {
	case "", "sage":
		enc = gnn.NewSAGE(rng, 3, FeatureDim, EmbDim, EmbDim)
	case "gcn":
		enc = gnn.NewGCN(rng, FeatureDim, EmbDim, EmbDim)
	case "gat":
		enc = gnn.NewGAT(rng, FeatureDim, EmbDim, EmbDim)
	case "native":
		enc = gnn.NewNative(rng, FeatureDim, EmbDim, EmbDim)
	default:
		panic(fmt.Sprintf("dcgbe: unknown encoder %q", v.Encoder))
	}
	var ag Agent
	agName := v.Agent
	switch v.Agent {
	case "", "a2c":
		ag = rl.NewA2C(enc, EmbDim, rng)
		agName = "a2c"
	case "sac":
		ag = rl.NewSAC(enc, EmbDim, rng)
	default:
		panic(fmt.Sprintf("dcgbe: unknown agent %q", v.Agent))
	}
	name := "DCG-BE"
	if agName == "sac" {
		name = "GNN-SAC"
	} else if v.Encoder != "" && v.Encoder != "sage" {
		name = fmt.Sprintf("DCG-BE/%s", v.Encoder)
	}

	s := &Scheduler{
		Engine: e, Agent: ag, Eta: 1, TrainEvery: 32, MaxTrainBatch: 32,
		Explore: true,
		name:    name,
		index:   map[topo.NodeID]int{},
		rng:     rand.New(rand.NewSource(seed + 7)),
	}
	s.nodes = e.Nodes()
	// Scale-adaptive cadence: on large fleets, train over longer
	// intervals (subsampled) so per-decision training cost stays flat.
	if n := len(s.nodes); n > 32 {
		s.TrainEvery = 4 * n
	}
	for i, n := range s.nodes {
		s.index[n.ID] = i
		if c := float64(n.Capacity.MilliCPU); c > s.maxCPU {
			s.maxCPU = c
		}
		if m := float64(n.Capacity.MemoryMiB); m > s.maxMem {
			s.maxMem = m
		}
	}
	s.graph = buildGraph(e.Topology(), s.nodes, s.index)
	return s
}

// buildGraph connects workers within a cluster pairwise (LAN) and links
// clusters within the 500 km neighbourhood through their first workers
// (WAN), giving GraphSAGE a topology that mirrors the LAN/WAN structure.
func buildGraph(t *topo.Topology, nodes []*engine.Node, index map[topo.NodeID]int) *gnn.Graph {
	var edges [][2]int
	for _, c := range t.Clusters {
		ws := c.Workers
		for i := 0; i < len(ws); i++ {
			for j := i + 1; j < len(ws); j++ {
				edges = append(edges, [2]int{index[ws[i]], index[ws[j]]})
			}
		}
	}
	for _, c := range t.Clusters {
		if len(c.Workers) == 0 {
			continue
		}
		for _, nc := range t.NeighborClusters(c.ID, 500) {
			if nc <= c.ID {
				continue // undirected: add once
			}
			other := t.Cluster(nc)
			if len(other.Workers) == 0 {
				continue
			}
			edges = append(edges, [2]int{index[c.Workers[0]], index[other.Workers[0]]})
		}
	}
	return gnn.NewGraph(len(nodes), edges)
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return s.name }

// stateFeatures builds the N×7 state matrix for a request demand.
func (s *Scheduler) stateFeatures(cpuDem, memDem int64) *nn.Mat {
	x := nn.NewMat(len(s.nodes), FeatureDim)
	for i, n := range s.nodes {
		// "Available" resources net of queued and in-transit commitments
		// — the state the paper's Prometheus/state-storage pipeline
		// reports, rather than the instantaneous cgroup reading.
		free := n.Free().Sub(n.InTransit()).Sub(n.QueuedDemand()).Max(res.Vector{})
		row := x.Row(i)
		row[0] = float64(free.MilliCPU) / s.maxCPU
		row[1] = float64(free.MemoryMiB) / s.maxMem
		row[2] = float64(n.Capacity.MilliCPU) / s.maxCPU
		row[3] = float64(n.Capacity.MemoryMiB) / s.maxMem
		if s.SlackFn != nil {
			row[4] = s.SlackFn(n.ID)
		}
		row[5] = float64(cpuDem) / s.maxCPU
		row[6] = float64(memDem) / s.maxMem
	}
	return x
}

// Pick implements sched.Scheduler: it chooses the target node for one BE
// request, records the transition, and trains every TrainEvery actions.
func (s *Scheduler) Pick(r *engine.Request, _ []*engine.Node) (topo.NodeID, bool) {
	if len(s.nodes) == 0 {
		return 0, false
	}
	x, mask, ok := s.buildState(r)
	if !ok {
		return 0, false
	}
	probs := s.probsCached(now(s), cacheKey{t: r.Type, c: r.Cluster}, x, mask)
	return s.record(x, mask, s.choose(probs))
}

// buildState assembles the feature matrix and the context-filter mask.
// ok is false when no node may take the request at all.
func (s *Scheduler) buildState(r *engine.Request) (*nn.Mat, []bool, bool) {
	demand := r.SType.MinDemand
	x := s.stateFeatures(demand.MilliCPU, demand.MemoryMiB)
	if s.DisableMasking {
		return x, nil, true
	}
	// Policy context filtering: mask nodes that cannot host the request.
	mask := make([]bool, len(s.nodes))
	anyValid := false
	for i, n := range s.nodes {
		if n.Down() {
			continue
		}
		if s.AllowFn != nil && !s.AllowFn(r, n) {
			continue
		}
		if n.Free().Fits(n.EffectiveDemand(r.Type)) {
			mask[i] = true
			anyValid = true
		}
	}
	if !anyValid {
		if s.AllowFn != nil {
			// Keep the geographic restriction even when everything is
			// busy: allowed nodes only, ignoring the fit filter.
			anyAllowed := false
			for i, n := range s.nodes {
				if !n.Down() && s.AllowFn(r, n) {
					mask[i] = true
					anyAllowed = true
				}
			}
			if !anyAllowed {
				return nil, nil, false
			}
		} else {
			// Fall back to "any live node"; the request will queue there.
			anyUp := false
			for i, n := range s.nodes {
				if !n.Down() {
					mask[i] = true
					anyUp = true
				}
			}
			if !anyUp {
				return nil, nil, false
			}
		}
	}
	return x, mask, true
}

func now(s *Scheduler) time.Duration { return s.Engine.Sim().Now() }

// cached looks up the policy distribution computed earlier in the same
// dispatch round for this (type, cluster) key. AllowFn masks depend only
// on the request's cluster, so the key covers them.
func (s *Scheduler) cached(at time.Duration, k cacheKey) (*cacheEntry, bool) {
	if s.cacheAt != at || s.cacheMap == nil {
		s.cacheAt = at
		s.cacheMap = map[cacheKey]*cacheEntry{}
		return nil, false
	}
	e, ok := s.cacheMap[k]
	return e, ok
}

// probsCached returns the policy distribution, reusing the one computed
// for the same (type, cluster) at the same virtual instant.
func (s *Scheduler) probsCached(at time.Duration, k cacheKey, x *nn.Mat, mask []bool) []float64 {
	if e, ok := s.cached(at, k); ok {
		s.CacheHits++
		return e.probs
	}
	probs := s.Agent.Probs(s.graph, x, mask)
	s.cacheMap[k] = &cacheEntry{probs: probs}
	return probs
}

// choose samples from (or greedily maximizes over) the distribution.
func (s *Scheduler) choose(probs []float64) int {
	if !s.Explore {
		best, bi := -1.0, 0
		for i, p := range probs {
			if p > best {
				best, bi = p, i
			}
		}
		return bi
	}
	xv := s.rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if xv < acc {
			return i
		}
	}
	return len(probs) - 1
}

// record books the transition, trains on schedule, and returns the pick.
func (s *Scheduler) record(x *nn.Mat, mask []bool, a int) (topo.NodeID, bool) {
	s.Decisions++
	chosen := s.nodes[a]
	s.pending = append(s.pending, pendingReward{
		tr:     rl.Transition{Graph: s.graph, X: x, Mask: mask, Action: a},
		rShort: s.shortReward(chosen),
	})
	if len(s.pending) >= s.TrainEvery {
		s.train()
	}
	if s.OnPick != nil {
		s.OnPick(chosen.ID)
	}
	return chosen.ID, true
}

// shortReward is e^-max(Σ cpu_q / cap, Σ mem_q / cap) over the requests
// waiting at node i (§5.3.1).
func (s *Scheduler) shortReward(n *engine.Node) float64 {
	var cpuSum, memSum float64
	// Waiting queue pressure; running requests count toward usage too,
	// which the exponent folds in through free-resource depletion.
	lcq, beq := n.QueueLen()
	queued := lcq + beq
	// Approximate queue demand with the node's average demand per queued
	// request (per-type queue contents are engine-internal).
	if queued > 0 {
		cat := s.Engine.Catalog()
		var c, m int64
		for _, t := range cat.Types {
			c += t.MinDemand.MilliCPU
			m += t.MinDemand.MemoryMiB
		}
		avgC := float64(c) / float64(len(cat.Types))
		avgM := float64(m) / float64(len(cat.Types))
		cpuSum = avgC * float64(queued)
		memSum = avgM * float64(queued)
	}
	cpuSum += float64(n.Used().MilliCPU)
	memSum += float64(n.Used().MemoryMiB)
	load := math.Max(cpuSum/float64(n.Capacity.MilliCPU), memSum/float64(n.Capacity.MemoryMiB))
	return math.Exp(-load)
}

// NotifyOutcome feeds BE completions into the long-term reward
// accumulator. Wire it into the engine's outcome fan-out.
func (s *Scheduler) NotifyOutcome(o engine.Outcome) {
	if o.Req.Class != trace.BE || !o.Completed || o.Req.Target < 0 {
		return
	}
	n := s.Engine.Node(o.Req.Target)
	d := o.Req.SType.MinDemand
	s.completedWork += float64(d.MilliCPU)/float64(n.Capacity.MilliCPU) +
		float64(d.MemoryMiB)/float64(n.Capacity.MemoryMiB)
}

// train finalizes rewards for the pending interval and updates the agent.
func (s *Scheduler) train() {
	if len(s.pending) == 0 {
		return
	}
	rLong := 1 - math.Exp(-s.completedWork)
	s.completedWork = 0
	src := s.pending
	if s.MaxTrainBatch > 0 && len(src) > s.MaxTrainBatch {
		// Stride-subsample the interval to bound the training cost.
		stride := float64(len(src)) / float64(s.MaxTrainBatch)
		sampled := make([]pendingReward, 0, s.MaxTrainBatch)
		for i := 0; i < s.MaxTrainBatch; i++ {
			sampled = append(sampled, src[int(float64(i)*stride)])
		}
		src = sampled
	}
	batch := make([]rl.Transition, len(src))
	for i, p := range src {
		p.tr.Reward = p.rShort + s.Eta*rLong
		batch[i] = p.tr
	}
	s.pending = s.pending[:0]
	s.Agent.Update(batch)
	s.Updates++
}

// Flush trains on any remaining pending transitions (end of experiment).
func (s *Scheduler) Flush() { s.train() }
