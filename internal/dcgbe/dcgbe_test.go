package dcgbe

import (
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/res"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

func env(clusters int) (*sim.Simulator, *engine.Engine, *topo.Topology) {
	s := sim.New()
	b := topo.NewBuilder()
	for i := 0; i < clusters; i++ {
		w := []res.Vector{res.V(4000, 8192, 500), res.V(4000, 8192, 500)}
		b.AddCluster(30+float64(i)*0.3, 120, res.V(8000, 16384, 1000), w)
	}
	tp := b.Build()
	e := engine.New(engine.Config{Sim: s, Topo: tp, Catalog: trace.DefaultCatalog(), Policy: engine.GreedyPolicy{}})
	return s, e, tp
}

func beReq(e *engine.Engine, id int64) *engine.Request {
	return e.NewRequest(trace.Request{ID: id, Type: 5, Class: trace.BE, Cluster: 0})
}

func TestVariantsConstruct(t *testing.T) {
	_, e, _ := env(2)
	wantNames := map[string]Variant{
		"DCG-BE":        {},
		"GNN-SAC":       {Agent: "sac"},
		"DCG-BE/gcn":    {Encoder: "gcn"},
		"DCG-BE/gat":    {Encoder: "gat"},
		"DCG-BE/native": {Encoder: "native"},
	}
	for name, v := range wantNames {
		s := NewVariant(e, v, 1)
		if s.Name() != name {
			t.Errorf("variant %+v name = %q, want %q", v, s.Name(), name)
		}
	}
}

func TestUnknownVariantPanics(t *testing.T) {
	_, e, _ := env(1)
	for _, v := range []Variant{{Encoder: "xxx"}, {Agent: "yyy"}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("variant %+v did not panic", v)
				}
			}()
			NewVariant(e, v, 1)
		}()
	}
}

func TestPickReturnsValidWorker(t *testing.T) {
	_, e, _ := env(3)
	s := New(e, 1)
	seen := map[topo.NodeID]bool{}
	for i := int64(0); i < 30; i++ {
		id, ok := s.Pick(beReq(e, i), nil)
		if !ok {
			t.Fatal("pick failed")
		}
		if e.Node(id) == nil {
			t.Fatal("picked non-worker")
		}
		seen[id] = true
	}
	if len(seen) < 2 {
		t.Fatalf("policy degenerate: only %d distinct nodes", len(seen))
	}
	if s.Decisions != 30 {
		t.Fatalf("decisions = %d", s.Decisions)
	}
}

func TestMaskingAvoidsFullNodes(t *testing.T) {
	_, e, tp := env(2)
	s := New(e, 2)
	// Fill every worker of cluster 0 completely with BE work.
	for _, w := range tp.Cluster(0).Workers {
		for i := int64(0); i < 4; i++ {
			e.DispatchLocal(e.NewRequest(trace.Request{ID: 100 + i, Type: 6, Class: trace.BE, Cluster: 0}), w)
		}
	}
	// All picks must land on cluster 1 (the only nodes passing the
	// context filter).
	for i := int64(0); i < 20; i++ {
		id, _ := s.Pick(beReq(e, i), nil)
		if e.Node(id).Cluster != 1 {
			t.Fatalf("picked full node %d on cluster %d", id, e.Node(id).Cluster)
		}
	}
}

func TestAllFullFallsBackUnmasked(t *testing.T) {
	_, e, tp := env(1)
	s := New(e, 3)
	for _, w := range tp.Cluster(0).Workers {
		for i := int64(0); i < 4; i++ {
			e.DispatchLocal(e.NewRequest(trace.Request{ID: 200 + i + int64(w)*10, Type: 6, Class: trace.BE, Cluster: 0}), w)
		}
	}
	if _, ok := s.Pick(beReq(e, 1), nil); !ok {
		t.Fatal("pick should still succeed when everything is full")
	}
}

func TestTrainingHappensEveryN(t *testing.T) {
	_, e, _ := env(2)
	s := New(e, 4)
	s.TrainEvery = 8
	for i := int64(0); i < 17; i++ {
		s.Pick(beReq(e, i), nil)
	}
	if s.Updates != 2 {
		t.Fatalf("updates = %d, want 2", s.Updates)
	}
	s.Flush()
	if s.Updates != 3 {
		t.Fatalf("updates after flush = %d, want 3", s.Updates)
	}
	s.Flush() // idempotent on empty buffer
	if s.Updates != 3 {
		t.Fatal("flush on empty buffer trained")
	}
}

func TestShortRewardDecreasesWithLoad(t *testing.T) {
	_, e, tp := env(1)
	s := New(e, 5)
	n := e.Node(tp.Cluster(0).Workers[0])
	idle := s.shortReward(n)
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 1, Type: 6, Class: trace.BE, Cluster: 0}), n.ID)
	loaded := s.shortReward(n)
	if loaded >= idle {
		t.Fatalf("reward did not fall with load: %g -> %g", idle, loaded)
	}
	if idle > 1 || loaded <= 0 {
		t.Fatalf("rewards out of range: %g %g", idle, loaded)
	}
}

func TestLongRewardAccumulatesFromOutcomes(t *testing.T) {
	_, e, tp := env(1)
	s := New(e, 6)
	w := tp.Cluster(0).Workers[0]
	o := engine.Outcome{
		Req: &engine.Request{
			ID: 1, Type: 6, Class: trace.BE, Target: w,
			SType: trace.DefaultCatalog().Type(6),
		},
		Completed: true,
	}
	s.NotifyOutcome(o)
	if s.completedWork <= 0 {
		t.Fatal("completed work not accumulated")
	}
	// LC outcomes and failures are ignored.
	before := s.completedWork
	s.NotifyOutcome(engine.Outcome{Req: &engine.Request{ID: 2, Type: 1, Class: trace.LC, Target: w}, Completed: true})
	s.NotifyOutcome(engine.Outcome{Req: &engine.Request{ID: 3, Type: 6, Class: trace.BE, Target: w}, Completed: false})
	if s.completedWork != before {
		t.Fatal("non-BE or failed outcome changed the accumulator")
	}
}

func TestSlackFnWiredIntoFeatures(t *testing.T) {
	_, e, _ := env(1)
	s := New(e, 7)
	s.SlackFn = func(id topo.NodeID) float64 { return 0.42 }
	x := s.stateFeatures(100, 100)
	for i := 0; i < x.R; i++ {
		if x.At(i, 4) != 0.42 {
			t.Fatalf("slack feature = %v", x.At(i, 4))
		}
	}
}

func TestGraphMirrorsTopology(t *testing.T) {
	_, e, tp := env(3) // clusters 0.3° apart: all within 500km chain
	s := New(e, 8)
	if s.graph.N != len(e.Nodes()) {
		t.Fatalf("graph nodes = %d", s.graph.N)
	}
	// Workers of one cluster are mutually connected.
	w := tp.Cluster(0).Workers
	i0, i1 := s.index[w[0]], s.index[w[1]]
	found := false
	for _, nb := range s.graph.Neigh[i0] {
		if nb == i1 {
			found = true
		}
	}
	if !found {
		t.Fatal("LAN edge missing")
	}
	// Inter-cluster edge exists between first workers of nearby clusters.
	o := tp.Cluster(1).Workers[0]
	io := s.index[o]
	found = false
	for _, nb := range s.graph.Neigh[i0] {
		if nb == io {
			found = true
		}
	}
	if !found {
		t.Fatal("WAN edge missing")
	}
}

// End-to-end: after training on a skewed topology (one big idle cluster,
// one tiny busy one), DCG-BE should route more BE work to the big
// cluster than round-robin would.
func TestLearnsToAvoidOverloadedCluster(t *testing.T) {
	s0 := sim.New()
	b := topo.NewBuilder()
	b.AddCluster(30, 120, res.V(8000, 16384, 1000), []res.Vector{res.V(1000, 2048, 100)}) // tiny
	b.AddCluster(30.3, 120, res.V(8000, 16384, 1000), []res.Vector{
		res.V(16000, 32768, 1000), res.V(16000, 32768, 1000),
	}) // big
	tp := b.Build()
	var done int
	e := engine.New(engine.Config{
		Sim: s0, Topo: tp, Catalog: trace.DefaultCatalog(), Policy: engine.GreedyPolicy{},
		OnOutcome: func(o engine.Outcome) {
			if o.Completed {
				done++
			}
		},
	})
	s := New(e, 9)
	s.TrainEvery = 16
	var picks []topo.NodeID
	s.OnPick = func(id topo.NodeID) { picks = append(picks, id) }
	// Stream BE requests; the engine runs so queues and completions are real.
	id := int64(0)
	ev := s0.Every(40*time.Millisecond, func() {
		r := beReq(e, id)
		id++
		if nid, ok := s.Pick(r, nil); ok {
			e.Dispatch(r, nid)
		}
	})
	s0.RunUntil(60 * time.Second)
	ev.Cancel()
	// Count final distribution over the last 200 picks.
	tiny := tp.Cluster(0).Workers[0]
	if len(picks) < 300 {
		t.Fatalf("not enough picks: %d", len(picks))
	}
	tail := picks[len(picks)-200:]
	tinyCount := 0
	for _, nid := range tail {
		if nid == tiny {
			tinyCount++
		}
	}
	frac := float64(tinyCount) / float64(len(tail))
	t.Logf("tiny-node fraction of recent picks: %.2f (uniform would be 0.33)", frac)
	if frac > 0.34 {
		t.Fatalf("DCG-BE still overloads the tiny node: %.2f", frac)
	}
}
