// Package flow is the network-flow optimization substrate that replaces
// Google OR-Tools in DSS-LC (§5.2). It provides an exact min-cost
// max-flow solver using successive shortest augmenting paths with
// Johnson potentials (Dijkstra search), which is exact for graphs with
// integral capacities and nonnegative arc costs — precisely the shape of
// the per-request-type MCNF graphs DSS-LC constructs (unit request flows,
// latency costs).
//
// The solver is built for reuse: a Graph's node and edge arenas survive
// Clear for the next period's rebuild, a Workspace (workspace.go) pools
// all per-solve scratch so a warmed solver allocates nothing, and
// WarmStart replays the memoized first Dijkstra pass when the rebuilt
// graph has the same shape as the previous period's — producing
// bit-identical results to a cold solve while skipping its most
// expensive search.
package flow

import (
	"fmt"
	"math"

	"repro/internal/perf"
)

// EdgeID identifies an added edge for flow queries.
type EdgeID int

type arc struct {
	to   int
	cap  int64 // residual capacity
	cost int64
	rev  int // index of the reverse arc in adj[to]
}

// Graph is a directed flow network. Nodes are dense ints from AddNode.
type Graph struct {
	adj   [][]arc
	edges []struct{ from, idx int } // maps EdgeID -> arc location
	prof  *perf.Profiler
	ws    *Workspace

	// pristine is true while every arc still holds its original
	// capacity (after build, Clear or Reset; false once a solve pushes
	// flow). The warm-start memo is captured from and replayed onto
	// pristine graphs only.
	pristine bool
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{pristine: true} }

// SetProfiler attaches a phase profiler: subsequent solves charge their
// Dijkstra searches, augmentations and Dinic passes to the solve/*
// phases. A nil profiler (the default) costs nothing.
func (g *Graph) SetProfiler(p *perf.Profiler) { g.prof = p }

// SetWorkspace attaches a reusable solver workspace. With a workspace,
// solves draw their scratch state from its pooled buffers (zero
// steady-state allocations) and pristine solves feed the warm-start
// memo. Without one, each solve uses a throwaway workspace.
func (g *Graph) SetWorkspace(ws *Workspace) { g.ws = ws }

// AddNode creates a node and returns its index.
func (g *Graph) AddNode() int {
	if n := len(g.adj); n < cap(g.adj) {
		// Re-extend into the arena kept by Clear: the previous inner
		// slice is truncated in place so its capacity is reused.
		g.adj = g.adj[:n+1]
		g.adj[n] = g.adj[n][:0]
		return n
	}
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddNodes creates n nodes and returns the index of the first.
func (g *Graph) AddNodes(n int) int {
	first := len(g.adj)
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	return first
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// AddEdge adds a directed edge with the given capacity and nonnegative
// cost, returning an EdgeID usable with Flow after solving.
func (g *Graph) AddEdge(from, to int, capacity, cost int64) EdgeID {
	if from < 0 || from >= len(g.adj) || to < 0 || to >= len(g.adj) {
		panic(fmt.Sprintf("flow: edge %d->%d out of range (n=%d)", from, to, len(g.adj)))
	}
	if capacity < 0 {
		panic("flow: negative capacity")
	}
	if cost < 0 {
		panic("flow: negative cost (not supported by Dijkstra-based solver)")
	}
	g.adj[from] = append(g.adj[from], arc{to: to, cap: capacity, cost: cost, rev: len(g.adj[to])})
	g.adj[to] = append(g.adj[to], arc{to: from, cap: 0, cost: -cost, rev: len(g.adj[from]) - 1})
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, struct{ from, idx int }{from, len(g.adj[from]) - 1})
	return id
}

// Flow returns the amount of flow routed on edge id after a solve.
func (g *Graph) Flow(id EdgeID) int64 {
	if int(id) < 0 || int(id) >= len(g.edges) {
		panic(fmt.Sprintf("flow: edge id %d out of range", id))
	}
	e := g.edges[id]
	a := g.adj[e.from][e.idx]
	// flow = reverse arc residual capacity
	return g.adj[a.to][a.rev].cap
}

// Result summarizes a solve.
type Result struct {
	Flow int64 // total flow routed
	Cost int64 // total cost of the routed flow
}

// MinCostFlow routes up to maxFlow units from source to sink, minimizing
// total cost. Pass math.MaxInt64 as maxFlow for a min-cost max-flow.
// The graph retains the flow assignment for Flow queries.
func (g *Graph) MinCostFlow(source, sink int, maxFlow int64) Result {
	var m *memo
	if g.ws != nil {
		m = &g.ws.def
	}
	return g.solve(source, sink, maxFlow, false, m)
}

// WarmStart is MinCostFlow with a cross-period warm start: when the
// graph is pristine and its shape (node count, arc order, costs and
// positive-capacity pattern) matches the workspace's memo from a
// previous solve with the same source, the first Dijkstra pass is
// replayed from the memo instead of recomputed. The replayed labels are
// exactly what the cold pass would produce — capacity magnitudes do not
// enter a Dijkstra over open arcs — so the solve trajectory, the
// Result and every per-edge flow are identical to MinCostFlow's. When
// the memo does not apply, WarmStart degrades to a cold solve (and
// refreshes the memo for the next period).
func (g *Graph) WarmStart(source, sink int, maxFlow int64) Result {
	var m *memo
	if g.ws != nil {
		m = &g.ws.def
	}
	return g.solve(source, sink, maxFlow, true, m)
}

// WarmStartAt is WarmStart against the workspace's keyed memo table
// instead of the single default entry: solves with the same key share
// one memo, solves with different keys never evict each other. A
// scheduler interleaving many commodities per period keys each solve by
// its (cluster, type, phase) identity so every commodity warm-starts
// from its own previous period — with the single-entry memo, rebuilding
// a different commodity's graph shape between periods would miss every
// time. Results are bit-identical to MinCostFlow, as with WarmStart.
// Without a workspace attached it degrades to a cold solve.
func (g *Graph) WarmStartAt(key uint64, source, sink int, maxFlow int64) Result {
	var m *memo
	if g.ws != nil {
		m = g.ws.memoAt(key)
	}
	return g.solve(source, sink, maxFlow, true, m)
}

// Warmed reports whether a WarmStart solve from source would currently
// replay the memoized first pass rather than run a cold Dijkstra.
func (g *Graph) Warmed(source int) bool {
	return g.ws != nil && g.pristine && g.ws.def.matches(g, source)
}

// WarmedAt is Warmed for a keyed memo entry.
func (g *Graph) WarmedAt(key uint64, source int) bool {
	return g.ws != nil && g.pristine && g.ws.table[key].matches(g, source)
}

func (g *Graph) solve(source, sink int, maxFlow int64, warm bool, m *memo) Result {
	n := len(g.adj)
	if source < 0 || source >= n || sink < 0 || sink >= n {
		panic("flow: source/sink out of range")
	}
	if source == sink {
		return Result{}
	}
	prof := g.prof
	prof.Enter(perf.PhaseSolveMCNF)
	defer prof.Exit(perf.PhaseSolveMCNF)
	const inf = math.MaxInt64 / 4

	ws := g.ws
	if ws == nil {
		ws = &Workspace{}
	}
	ws.grow(n)
	ws.Solves++
	dist, potential := ws.dist[:n], ws.potential[:n]
	prevNode, prevArc := ws.prevNode[:n], ws.prevArc[:n]
	for i := range potential {
		potential[i] = 0
	}
	// The memo applies to the first iteration only: every later Dijkstra
	// runs on a residual network the memo knows nothing about. Capture,
	// conversely, happens on the first cold pass of a pristine solve
	// when a persistent workspace is attached.
	useMemo := warm && g.pristine && m.matches(g, source)
	capture := g.ws != nil && g.pristine && !useMemo
	first := true
	var total Result

	for total.Flow < maxFlow {
		// Dijkstra on reduced costs (the Johnson-potential search).
		prof.Enter(perf.PhaseSolveDijkstra)
		if first && useMemo {
			copy(dist, m.dist[:n])
			copy(prevNode, m.prevNode[:n])
			copy(prevArc, m.prevArc[:n])
			ws.WarmHits++
		} else {
			for i := range dist {
				dist[i] = inf
				prevNode[i] = -1
			}
			dist[source] = 0
			ws.heap = ws.heap[:0]
			pqPush(&ws.heap, pqItem{source, 0})
			for len(ws.heap) > 0 {
				it := pqPop(&ws.heap)
				if it.dist > dist[it.node] {
					continue
				}
				u := it.node
				for ai := range g.adj[u] {
					a := &g.adj[u][ai]
					if a.cap <= 0 {
						continue
					}
					nd := dist[u] + a.cost + potential[u] - potential[a.to]
					if nd < dist[a.to] {
						dist[a.to] = nd
						prevNode[a.to] = u
						prevArc[a.to] = ai
						pqPush(&ws.heap, pqItem{a.to, nd})
					}
				}
			}
			if first && capture {
				m.capture(g, source, dist, prevNode, prevArc)
			}
		}
		first = false
		prof.Exit(perf.PhaseSolveDijkstra)
		if dist[sink] >= inf {
			break // no augmenting path
		}
		// SSP augmentation: fold distances into the potentials, find the
		// bottleneck and push flow along the shortest path.
		prof.Enter(perf.PhaseSolveAugment)
		for i := 0; i < n; i++ {
			if dist[i] < inf {
				potential[i] += dist[i]
			}
		}
		// Find bottleneck along the path.
		push := maxFlow - total.Flow
		for v := sink; v != source; v = prevNode[v] {
			a := g.adj[prevNode[v]][prevArc[v]]
			if a.cap < push {
				push = a.cap
			}
		}
		// Apply.
		for v := sink; v != source; v = prevNode[v] {
			u := prevNode[v]
			a := &g.adj[u][prevArc[v]]
			a.cap -= push
			g.adj[v][a.rev].cap += push
			total.Cost += push * a.cost
		}
		total.Flow += push
		prof.Exit(perf.PhaseSolveAugment)
	}
	if total.Flow > 0 {
		g.pristine = false
	}
	return total
}

// MaxFlow computes a plain max flow (costs ignored as zero during the
// search — since all costs are nonnegative this still terminates with a
// maximum flow because augmentation continues until no path remains).
func (g *Graph) MaxFlow(source, sink int) int64 {
	return g.MinCostFlow(source, sink, math.MaxInt64/4).Flow
}

// Reset clears all flow, restoring original capacities. The warm-start
// memo survives: a Reset graph is pristine again, so the next WarmStart
// with an unchanged shape replays the memoized first pass.
func (g *Graph) Reset() {
	for _, e := range g.edges {
		a := &g.adj[e.from][e.idx]
		r := &g.adj[a.to][a.rev]
		a.cap += r.cap
		r.cap = 0
	}
	g.pristine = true
}

// Clear empties the graph for the next period's rebuild while retaining
// the node and edge arenas: the outer adjacency slice, every node's arc
// slice and the edge table keep their capacity, so rebuilding the same
// topology allocates nothing in steady state.
func (g *Graph) Clear() {
	g.adj = g.adj[:0]
	g.edges = g.edges[:0]
	g.pristine = true
}

// Excess verification helpers (used by tests and callers that assert
// solution validity).

// Conservation checks that at every node other than source and sink,
// inflow equals outflow.
func (g *Graph) Conservation(source, sink int) error {
	n := len(g.adj)
	net := make([]int64, n)
	for _, e := range g.edges {
		a := g.adj[e.from][e.idx]
		f := g.adj[a.to][a.rev].cap
		net[e.from] -= f
		net[a.to] += f
	}
	for i := 0; i < n; i++ {
		if i == source || i == sink {
			continue
		}
		if net[i] != 0 {
			return fmt.Errorf("flow: conservation violated at node %d (net %d)", i, net[i])
		}
	}
	return nil
}
