package flow

import "repro/internal/perf"

// Dinic's algorithm: a faster pure max-flow solver used when costs do
// not matter (e.g. the feasibility probe "can this batch be placed at
// all?" before a full min-cost solve). It operates on the same Graph and
// leaves the flow assignment readable through Flow.

// MaxFlowDinic computes a maximum flow from source to sink with Dinic's
// blocking-flow algorithm. Costs are ignored. The graph retains the flow
// for Flow queries (call Reset first if the graph was already solved).
func (g *Graph) MaxFlowDinic(source, sink int) int64 {
	n := len(g.adj)
	if source < 0 || source >= n || sink < 0 || sink >= n {
		panic("flow: source/sink out of range")
	}
	if source == sink {
		return 0
	}
	prof := g.prof
	prof.Enter(perf.PhaseSolveDinic)
	defer prof.Exit(perf.PhaseSolveDinic)
	level := make([]int, n)
	iter := make([]int, n)
	queue := make([]int, 0, n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[source] = 0
		queue = queue[:0]
		queue = append(queue, source)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, a := range g.adj[u] {
				if a.cap > 0 && level[a.to] < 0 {
					level[a.to] = level[u] + 1
					queue = append(queue, a.to)
				}
			}
		}
		return level[sink] >= 0
	}

	var dfs func(u int, limit int64) int64
	dfs = func(u int, limit int64) int64 {
		if u == sink {
			return limit
		}
		for ; iter[u] < len(g.adj[u]); iter[u]++ {
			a := &g.adj[u][iter[u]]
			if a.cap <= 0 || level[a.to] != level[u]+1 {
				continue
			}
			push := limit
			if a.cap < push {
				push = a.cap
			}
			got := dfs(a.to, push)
			if got > 0 {
				a.cap -= got
				g.adj[a.to][a.rev].cap += got
				return got
			}
			// Dead end: do not retry this arc in the current phase.
		}
		return 0
	}

	const inf = int64(1) << 60
	var total int64
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(source, inf)
			if f == 0 {
				break
			}
			total += f
		}
	}
	if total > 0 {
		g.pristine = false
	}
	return total
}
