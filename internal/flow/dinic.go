package flow

import "repro/internal/perf"

// Dinic's algorithm: a faster pure max-flow solver used when costs do
// not matter (e.g. the feasibility probe "can this batch be placed at
// all?" before a full min-cost solve). It operates on the same Graph and
// leaves the flow assignment readable through Flow.

// MaxFlowDinic computes a maximum flow from source to sink with Dinic's
// blocking-flow algorithm. Costs are ignored. The graph retains the flow
// for Flow queries (call Reset first if the graph was already solved).
// With a Workspace attached, the level/iterator/queue scratch is pooled
// there and steady-state calls perform zero heap allocations (asserted
// in workspace_test.go); without one, a throwaway workspace is used.
func (g *Graph) MaxFlowDinic(source, sink int) int64 {
	n := len(g.adj)
	if source < 0 || source >= n || sink < 0 || sink >= n {
		panic("flow: source/sink out of range")
	}
	if source == sink {
		return 0
	}
	prof := g.prof
	prof.Enter(perf.PhaseSolveDinic)
	defer prof.Exit(perf.PhaseSolveDinic)
	ws := g.ws
	if ws == nil {
		ws = &Workspace{}
	}
	ws.growDinic(n)
	level, iter := ws.level[:n], ws.iter[:n]

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[source] = 0
		queue := ws.queue[:0]
		queue = append(queue, source)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, a := range g.adj[u] {
				if a.cap > 0 && level[a.to] < 0 {
					level[a.to] = level[u] + 1
					queue = append(queue, a.to)
				}
			}
		}
		ws.queue = queue[:0]
		return level[sink] >= 0
	}

	const inf = int64(1) << 60
	var total int64
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := g.dinicDFS(level, iter, sink, source, inf)
			if f == 0 {
				break
			}
			total += f
		}
	}
	if total > 0 {
		g.pristine = false
	}
	return total
}

// dinicDFS pushes one blocking-flow augmentation along the level graph.
// A method rather than a recursive closure: the closure's self-reference
// forced it onto the heap, making every MaxFlowDinic call allocate even
// with pooled slices.
func (g *Graph) dinicDFS(level, iter []int, sink, u int, limit int64) int64 {
	if u == sink {
		return limit
	}
	for ; iter[u] < len(g.adj[u]); iter[u]++ {
		a := &g.adj[u][iter[u]]
		if a.cap <= 0 || level[a.to] != level[u]+1 {
			continue
		}
		push := limit
		if a.cap < push {
			push = a.cap
		}
		got := g.dinicDFS(level, iter, sink, a.to, push)
		if got > 0 {
			a.cap -= got
			g.adj[a.to][a.rev].cap += got
			return got
		}
		// Dead end: do not retry this arc in the current phase.
	}
	return 0
}
