package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimplePath(t *testing.T) {
	g := NewGraph()
	s, a, d := g.AddNode(), g.AddNode(), g.AddNode()
	e1 := g.AddEdge(s, a, 5, 2)
	e2 := g.AddEdge(a, d, 3, 4)
	r := g.MinCostFlow(s, d, math.MaxInt64/4)
	if r.Flow != 3 {
		t.Fatalf("flow = %d, want 3", r.Flow)
	}
	if r.Cost != 3*2+3*4 {
		t.Fatalf("cost = %d, want 18", r.Cost)
	}
	if g.Flow(e1) != 3 || g.Flow(e2) != 3 {
		t.Fatalf("edge flows %d %d", g.Flow(e1), g.Flow(e2))
	}
}

func TestChoosesCheaperPath(t *testing.T) {
	g := NewGraph()
	s, a, b, d := g.AddNode(), g.AddNode(), g.AddNode(), g.AddNode()
	cheap1 := g.AddEdge(s, a, 10, 1)
	cheap2 := g.AddEdge(a, d, 10, 1)
	exp1 := g.AddEdge(s, b, 10, 100)
	exp2 := g.AddEdge(b, d, 10, 100)
	r := g.MinCostFlow(s, d, 5)
	if r.Flow != 5 || r.Cost != 10 {
		t.Fatalf("flow=%d cost=%d, want 5/10", r.Flow, r.Cost)
	}
	if g.Flow(cheap1) != 5 || g.Flow(cheap2) != 5 {
		t.Fatal("cheap path unused")
	}
	if g.Flow(exp1) != 0 || g.Flow(exp2) != 0 {
		t.Fatal("expensive path used unnecessarily")
	}
}

func TestSpillsToExpensivePath(t *testing.T) {
	g := NewGraph()
	s, a, b, d := g.AddNode(), g.AddNode(), g.AddNode(), g.AddNode()
	g.AddEdge(s, a, 3, 1)
	g.AddEdge(a, d, 3, 1)
	g.AddEdge(s, b, 10, 5)
	g.AddEdge(b, d, 10, 5)
	r := g.MinCostFlow(s, d, 7)
	if r.Flow != 7 {
		t.Fatalf("flow = %d", r.Flow)
	}
	if r.Cost != 3*2+4*10 {
		t.Fatalf("cost = %d, want 46", r.Cost)
	}
}

func TestMaxFlowClassic(t *testing.T) {
	// CLRS-style diamond with a cross edge.
	g := NewGraph()
	s := g.AddNode()
	v1, v2, v3, v4 := g.AddNode(), g.AddNode(), g.AddNode(), g.AddNode()
	d := g.AddNode()
	g.AddEdge(s, v1, 16, 0)
	g.AddEdge(s, v2, 13, 0)
	g.AddEdge(v1, v3, 12, 0)
	g.AddEdge(v2, v1, 4, 0)
	g.AddEdge(v3, v2, 9, 0)
	g.AddEdge(v2, v4, 14, 0)
	g.AddEdge(v4, v3, 7, 0)
	g.AddEdge(v3, d, 20, 0)
	g.AddEdge(v4, d, 4, 0)
	if got := g.MaxFlow(s, d); got != 23 {
		t.Fatalf("max flow = %d, want 23", got)
	}
}

func TestMaxFlowRequiresResidualEdges(t *testing.T) {
	// The classic case where augmenting must cancel flow on a middle edge.
	g := NewGraph()
	s, a, b, d := g.AddNode(), g.AddNode(), g.AddNode(), g.AddNode()
	g.AddEdge(s, a, 1, 0)
	g.AddEdge(s, b, 1, 0)
	g.AddEdge(a, b, 1, 0)
	g.AddEdge(a, d, 1, 0)
	g.AddEdge(b, d, 1, 0)
	if got := g.MaxFlow(s, d); got != 2 {
		t.Fatalf("max flow = %d, want 2", got)
	}
}

func TestFlowLimit(t *testing.T) {
	g := NewGraph()
	s, d := g.AddNode(), g.AddNode()
	g.AddEdge(s, d, 100, 3)
	r := g.MinCostFlow(s, d, 7)
	if r.Flow != 7 || r.Cost != 21 {
		t.Fatalf("limited flow = %+v", r)
	}
}

func TestDisconnected(t *testing.T) {
	g := NewGraph()
	s, d := g.AddNode(), g.AddNode()
	_ = g.AddNodes(3)
	r := g.MinCostFlow(s, d, 10)
	if r.Flow != 0 || r.Cost != 0 {
		t.Fatalf("disconnected result %+v", r)
	}
}

func TestSourceEqualsSink(t *testing.T) {
	g := NewGraph()
	s := g.AddNode()
	r := g.MinCostFlow(s, s, 10)
	if r.Flow != 0 {
		t.Fatalf("self flow %+v", r)
	}
}

func TestReset(t *testing.T) {
	g := NewGraph()
	s, d := g.AddNode(), g.AddNode()
	e := g.AddEdge(s, d, 5, 1)
	g.MinCostFlow(s, d, 5)
	if g.Flow(e) != 5 {
		t.Fatal("setup")
	}
	g.Reset()
	if g.Flow(e) != 0 {
		t.Fatalf("flow after reset = %d", g.Flow(e))
	}
	r := g.MinCostFlow(s, d, 3)
	if r.Flow != 3 {
		t.Fatalf("re-solve flow = %d", r.Flow)
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"edge range":    func() { NewGraph().AddEdge(0, 1, 1, 1) },
		"negative cap":  func() { g := NewGraph(); g.AddNodes(2); g.AddEdge(0, 1, -1, 1) },
		"negative cost": func() { g := NewGraph(); g.AddNodes(2); g.AddEdge(0, 1, 1, -1) },
		"bad edge id":   func() { g := NewGraph(); g.AddNodes(2); g.Flow(3) },
		"bad source":    func() { g := NewGraph(); g.AddNodes(2); g.MinCostFlow(-1, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// referenceMinCostFlow is an independent SPFA (Bellman-Ford queue) based
// implementation used to cross-check the Dijkstra solver on random graphs.
func referenceMinCostFlow(n int, edges [][4]int64, source, sink int, maxFlow int64) (int64, int64) {
	type rarc struct {
		to, rev   int
		cap, cost int64
	}
	adj := make([][]rarc, n)
	addEdge := func(u, v int, c, w int64) {
		adj[u] = append(adj[u], rarc{v, len(adj[v]), c, w})
		adj[v] = append(adj[v], rarc{u, len(adj[u]) - 1, 0, -w})
	}
	for _, e := range edges {
		addEdge(int(e[0]), int(e[1]), e[2], e[3])
	}
	var flow, cost int64
	for flow < maxFlow {
		dist := make([]int64, n)
		inq := make([]bool, n)
		pv := make([]int, n)
		pe := make([]int, n)
		const inf = math.MaxInt64 / 4
		for i := range dist {
			dist[i] = inf
			pv[i] = -1
		}
		dist[source] = 0
		queue := []int{source}
		inq[source] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			inq[u] = false
			for ai, a := range adj[u] {
				if a.cap > 0 && dist[u]+a.cost < dist[a.to] {
					dist[a.to] = dist[u] + a.cost
					pv[a.to], pe[a.to] = u, ai
					if !inq[a.to] {
						queue = append(queue, a.to)
						inq[a.to] = true
					}
				}
			}
		}
		if dist[sink] >= inf {
			break
		}
		push := maxFlow - flow
		for v := sink; v != source; v = pv[v] {
			if c := adj[pv[v]][pe[v]].cap; c < push {
				push = c
			}
		}
		for v := sink; v != source; v = pv[v] {
			a := &adj[pv[v]][pe[v]]
			a.cap -= push
			adj[v][a.rev].cap += push
			cost += push * a.cost
		}
		flow += push
	}
	return flow, cost
}

// Property: the Dijkstra+potentials solver matches the independent SPFA
// solver in both max flow and min cost on random graphs, and satisfies
// conservation.
func TestQuickMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 3
		m := rng.Intn(20) + 3
		g := NewGraph()
		g.AddNodes(n)
		var edges [][4]int64
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c, w := int64(rng.Intn(10)+1), int64(rng.Intn(20))
			g.AddEdge(u, v, c, w)
			edges = append(edges, [4]int64{int64(u), int64(v), c, w})
		}
		source, sink := 0, n-1
		limit := int64(rng.Intn(15) + 1)
		got := g.MinCostFlow(source, sink, limit)
		wantF, wantC := referenceMinCostFlow(n, edges, source, sink, limit)
		if got.Flow != wantF || got.Cost != wantC {
			t.Logf("seed %d: got %+v want flow=%d cost=%d", seed, got, wantF, wantC)
			return false
		}
		return g.Conservation(source, sink) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: edge flows never exceed capacities and total cost equals the
// sum of per-edge flow*cost.
func TestQuickFlowWithinCapacityAndCostConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 3
		g := NewGraph()
		g.AddNodes(n)
		type einfo struct {
			id        EdgeID
			cap, cost int64
		}
		var infos []einfo
		for i := 0; i < rng.Intn(25)+3; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c, w := int64(rng.Intn(10)+1), int64(rng.Intn(20))
			infos = append(infos, einfo{g.AddEdge(u, v, c, w), c, w})
		}
		r := g.MinCostFlow(0, n-1, math.MaxInt64/4)
		var cost int64
		for _, e := range infos {
			f := g.Flow(e.id)
			if f < 0 || f > e.cap {
				return false
			}
			cost += f * e.cost
		}
		return cost == r.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMinCostFlow1000Nodes(b *testing.B) {
	build := func() (*Graph, int, int) {
		rng := rand.New(rand.NewSource(1))
		g := NewGraph()
		n := 1000
		g.AddNodes(n + 2)
		s, d := n, n+1
		for i := 0; i < n; i++ {
			g.AddEdge(s, i, int64(rng.Intn(4)+1), 0)
			g.AddEdge(i, d, int64(rng.Intn(4)+1), int64(rng.Intn(50)))
		}
		for i := 0; i < 3000; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, int64(rng.Intn(5)+1), int64(rng.Intn(100)))
			}
		}
		return g, s, d
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, s, d := build()
		g.MinCostFlow(s, d, math.MaxInt64/4)
	}
}
