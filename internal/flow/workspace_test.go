package flow

import (
	"math"
	"testing"
)

// Tests for the solver workspace: the zero-allocation budget of warmed
// solves, warm-start replay correctness at the unit level (the heavy
// differential artillery lives in internal/check), and the memo
// life-cycle across Clear/Reset/shape changes.

const unbounded = math.MaxInt64 / 4

// rebuildDiamond rebuilds the standard two-path graph inside g's
// retained arenas without materializing anything itself (the edge IDs
// are always 0..3, in AddEdge order).
func rebuildDiamond(g *Graph) {
	g.Clear()
	g.AddNodes(4)
	g.AddEdge(0, 1, 2, 1)
	g.AddEdge(1, 3, 2, 0)
	g.AddEdge(0, 2, 3, 5)
	g.AddEdge(2, 3, 3, 0)
}

// buildDiamond is rebuildDiamond returning the edge IDs.
func buildDiamond(g *Graph) []EdgeID {
	rebuildDiamond(g)
	return []EdgeID{0, 1, 2, 3}
}

func TestWarmStartReplaysMemo(t *testing.T) {
	g := NewGraph()
	ws := NewWorkspace()
	g.SetWorkspace(ws)
	ids := buildDiamond(g)
	if g.Warmed(0) {
		t.Fatal("fresh workspace claims warm")
	}
	r1 := g.WarmStart(0, 3, unbounded)
	if r1.Flow != 5 || r1.Cost != 17 {
		t.Fatalf("cold warm-start solve = %+v, want flow 5 cost 17", r1)
	}
	if ws.WarmHits != 0 {
		t.Fatalf("WarmHits = %d after first solve, want 0", ws.WarmHits)
	}
	flows := make([]int64, len(ids))
	for i, id := range ids {
		flows[i] = g.Flow(id)
	}
	// Reset: memo replays.
	g.Reset()
	if !g.Warmed(0) {
		t.Fatal("not warmed after Reset")
	}
	if r := g.WarmStart(0, 3, unbounded); r != r1 {
		t.Fatalf("warm solve after Reset = %+v, cold = %+v", r, r1)
	}
	if ws.WarmHits != 1 {
		t.Fatalf("WarmHits = %d, want 1", ws.WarmHits)
	}
	// Clear+rebuild: memo survives the period boundary.
	ids = buildDiamond(g)
	if !g.Warmed(0) {
		t.Fatal("not warmed after Clear+rebuild of the same shape")
	}
	if r := g.WarmStart(0, 3, unbounded); r != r1 {
		t.Fatalf("warm solve after rebuild = %+v, cold = %+v", r, r1)
	}
	for i, id := range ids {
		if f := g.Flow(id); f != flows[i] {
			t.Fatalf("edge %d: warm flow %d, cold %d", i, f, flows[i])
		}
	}
	if ws.WarmHits != 2 || ws.Solves != 3 {
		t.Fatalf("counters = %d hits / %d solves, want 2/3", ws.WarmHits, ws.Solves)
	}
	// A different source must not replay the memo.
	g.Reset()
	if g.Warmed(1) {
		t.Fatal("warmed for a different source")
	}
}

func TestWarmStartInvalidatedByShapeChange(t *testing.T) {
	g := NewGraph()
	g.SetWorkspace(NewWorkspace())
	buildDiamond(g)
	g.WarmStart(0, 3, unbounded)
	// Change one cost: shape mismatch, cold fallback, memo refreshed.
	g.Clear()
	g.AddNodes(4)
	g.AddEdge(0, 1, 2, 2) // cost 1 -> 2
	g.AddEdge(1, 3, 2, 0)
	g.AddEdge(0, 2, 3, 5)
	g.AddEdge(2, 3, 3, 0)
	if g.Warmed(0) {
		t.Fatal("warmed despite cost change")
	}
	r := g.WarmStart(0, 3, unbounded)
	if r.Flow != 5 || r.Cost != 2*2+3*5 {
		t.Fatalf("solve after cost change = %+v, want flow 5 cost 19", r)
	}
	// The fallback captured a fresh memo for the new shape.
	g.Reset()
	if !g.Warmed(0) {
		t.Fatal("memo not refreshed by the cold fallback")
	}
}

func TestWarmStartCapacityDriftKeepsMemo(t *testing.T) {
	g := NewGraph()
	ws := NewWorkspace()
	g.SetWorkspace(ws)
	buildDiamond(g)
	g.WarmStart(0, 3, unbounded)
	// Next period: same shape, larger capacities. Memo still applies and
	// the warm result matches a cold solve of the grown graph.
	g.Clear()
	g.AddNodes(4)
	g.AddEdge(0, 1, 4, 1)
	g.AddEdge(1, 3, 4, 0)
	g.AddEdge(0, 2, 6, 5)
	g.AddEdge(2, 3, 6, 0)
	if !g.Warmed(0) {
		t.Fatal("capacity drift invalidated the memo")
	}
	r := g.WarmStart(0, 3, unbounded)
	if ws.WarmHits != 1 {
		t.Fatalf("WarmHits = %d, want 1", ws.WarmHits)
	}
	if r.Flow != 10 || r.Cost != 4*1+6*5 {
		t.Fatalf("warm solve of grown graph = %+v, want flow 10 cost 34", r)
	}
}

// TestClearRetainsArenas pins the allocation contract of the rebuild
// path: after the first build, Clear+rebuild of the same topology
// allocates nothing.
func TestClearRetainsArenas(t *testing.T) {
	g := NewGraph()
	g.SetWorkspace(NewWorkspace())
	buildDiamond(g)
	g.WarmStart(0, 3, unbounded)
	allocs := testing.AllocsPerRun(100, func() {
		rebuildDiamond(g)
	})
	if allocs != 0 {
		t.Fatalf("Clear+rebuild allocates %.1f/op, want 0", allocs)
	}
}

// TestWarmedSolveAllocFree is the tentpole's allocation budget: a
// workspace-backed solve — warm replay or cold Dijkstra — performs zero
// steady-state heap allocations. The same budget is enforced end to end
// on the bench side by `tango-bench -compare -alloc-threshold`.
func TestWarmedSolveAllocFree(t *testing.T) {
	g := NewGraph()
	g.SetWorkspace(NewWorkspace())
	buildDiamond(g)
	g.WarmStart(0, 3, unbounded) // grow scratch, capture memo

	warm := testing.AllocsPerRun(100, func() {
		g.Reset()
		g.WarmStart(0, 3, unbounded)
	})
	if warm != 0 {
		t.Fatalf("warm Reset+WarmStart allocates %.1f/op, want 0", warm)
	}
	cold := testing.AllocsPerRun(100, func() {
		rebuildDiamond(g)
		g.MinCostFlow(0, 3, unbounded)
	})
	if cold != 0 {
		t.Fatalf("pooled cold Clear+rebuild+MinCostFlow allocates %.1f/op, want 0", cold)
	}
	dinic := testing.AllocsPerRun(100, func() {
		g.Reset()
		g.MaxFlowDinic(0, 3)
	})
	// Dinic still builds its own level/iter scratch; it is off the
	// DSS-LC hot path, so its budget is merely "bounded", not zero.
	if dinic > 8 {
		t.Fatalf("Dinic allocates %.1f/op, want <= 8", dinic)
	}
}
