package flow

import (
	"math"
	"testing"
)

// Tests for the solver workspace: the zero-allocation budget of warmed
// solves, warm-start replay correctness at the unit level (the heavy
// differential artillery lives in internal/check), and the memo
// life-cycle across Clear/Reset/shape changes.

const unbounded = math.MaxInt64 / 4

// rebuildDiamond rebuilds the standard two-path graph inside g's
// retained arenas without materializing anything itself (the edge IDs
// are always 0..3, in AddEdge order).
func rebuildDiamond(g *Graph) {
	g.Clear()
	g.AddNodes(4)
	g.AddEdge(0, 1, 2, 1)
	g.AddEdge(1, 3, 2, 0)
	g.AddEdge(0, 2, 3, 5)
	g.AddEdge(2, 3, 3, 0)
}

// buildDiamond is rebuildDiamond returning the edge IDs.
func buildDiamond(g *Graph) []EdgeID {
	rebuildDiamond(g)
	return []EdgeID{0, 1, 2, 3}
}

func TestWarmStartReplaysMemo(t *testing.T) {
	g := NewGraph()
	ws := NewWorkspace()
	g.SetWorkspace(ws)
	ids := buildDiamond(g)
	if g.Warmed(0) {
		t.Fatal("fresh workspace claims warm")
	}
	r1 := g.WarmStart(0, 3, unbounded)
	if r1.Flow != 5 || r1.Cost != 17 {
		t.Fatalf("cold warm-start solve = %+v, want flow 5 cost 17", r1)
	}
	if ws.WarmHits != 0 {
		t.Fatalf("WarmHits = %d after first solve, want 0", ws.WarmHits)
	}
	flows := make([]int64, len(ids))
	for i, id := range ids {
		flows[i] = g.Flow(id)
	}
	// Reset: memo replays.
	g.Reset()
	if !g.Warmed(0) {
		t.Fatal("not warmed after Reset")
	}
	if r := g.WarmStart(0, 3, unbounded); r != r1 {
		t.Fatalf("warm solve after Reset = %+v, cold = %+v", r, r1)
	}
	if ws.WarmHits != 1 {
		t.Fatalf("WarmHits = %d, want 1", ws.WarmHits)
	}
	// Clear+rebuild: memo survives the period boundary.
	ids = buildDiamond(g)
	if !g.Warmed(0) {
		t.Fatal("not warmed after Clear+rebuild of the same shape")
	}
	if r := g.WarmStart(0, 3, unbounded); r != r1 {
		t.Fatalf("warm solve after rebuild = %+v, cold = %+v", r, r1)
	}
	for i, id := range ids {
		if f := g.Flow(id); f != flows[i] {
			t.Fatalf("edge %d: warm flow %d, cold %d", i, f, flows[i])
		}
	}
	if ws.WarmHits != 2 || ws.Solves != 3 {
		t.Fatalf("counters = %d hits / %d solves, want 2/3", ws.WarmHits, ws.Solves)
	}
	// A different source must not replay the memo.
	g.Reset()
	if g.Warmed(1) {
		t.Fatal("warmed for a different source")
	}
}

func TestWarmStartInvalidatedByShapeChange(t *testing.T) {
	g := NewGraph()
	g.SetWorkspace(NewWorkspace())
	buildDiamond(g)
	g.WarmStart(0, 3, unbounded)
	// Change one cost: shape mismatch, cold fallback, memo refreshed.
	g.Clear()
	g.AddNodes(4)
	g.AddEdge(0, 1, 2, 2) // cost 1 -> 2
	g.AddEdge(1, 3, 2, 0)
	g.AddEdge(0, 2, 3, 5)
	g.AddEdge(2, 3, 3, 0)
	if g.Warmed(0) {
		t.Fatal("warmed despite cost change")
	}
	r := g.WarmStart(0, 3, unbounded)
	if r.Flow != 5 || r.Cost != 2*2+3*5 {
		t.Fatalf("solve after cost change = %+v, want flow 5 cost 19", r)
	}
	// The fallback captured a fresh memo for the new shape.
	g.Reset()
	if !g.Warmed(0) {
		t.Fatal("memo not refreshed by the cold fallback")
	}
}

func TestWarmStartCapacityDriftKeepsMemo(t *testing.T) {
	g := NewGraph()
	ws := NewWorkspace()
	g.SetWorkspace(ws)
	buildDiamond(g)
	g.WarmStart(0, 3, unbounded)
	// Next period: same shape, larger capacities. Memo still applies and
	// the warm result matches a cold solve of the grown graph.
	g.Clear()
	g.AddNodes(4)
	g.AddEdge(0, 1, 4, 1)
	g.AddEdge(1, 3, 4, 0)
	g.AddEdge(0, 2, 6, 5)
	g.AddEdge(2, 3, 6, 0)
	if !g.Warmed(0) {
		t.Fatal("capacity drift invalidated the memo")
	}
	r := g.WarmStart(0, 3, unbounded)
	if ws.WarmHits != 1 {
		t.Fatalf("WarmHits = %d, want 1", ws.WarmHits)
	}
	if r.Flow != 10 || r.Cost != 4*1+6*5 {
		t.Fatalf("warm solve of grown graph = %+v, want flow 10 cost 34", r)
	}
}

// TestClearRetainsArenas pins the allocation contract of the rebuild
// path: after the first build, Clear+rebuild of the same topology
// allocates nothing.
func TestClearRetainsArenas(t *testing.T) {
	g := NewGraph()
	g.SetWorkspace(NewWorkspace())
	buildDiamond(g)
	g.WarmStart(0, 3, unbounded)
	allocs := testing.AllocsPerRun(100, func() {
		rebuildDiamond(g)
	})
	if allocs != 0 {
		t.Fatalf("Clear+rebuild allocates %.1f/op, want 0", allocs)
	}
}

// TestWarmedSolveAllocFree is the tentpole's allocation budget: a
// workspace-backed solve — warm replay or cold Dijkstra — performs zero
// steady-state heap allocations. The same budget is enforced end to end
// on the bench side by `tango-bench -compare -alloc-threshold`.
func TestWarmedSolveAllocFree(t *testing.T) {
	g := NewGraph()
	g.SetWorkspace(NewWorkspace())
	buildDiamond(g)
	g.WarmStart(0, 3, unbounded) // grow scratch, capture memo

	warm := testing.AllocsPerRun(100, func() {
		g.Reset()
		g.WarmStart(0, 3, unbounded)
	})
	if warm != 0 {
		t.Fatalf("warm Reset+WarmStart allocates %.1f/op, want 0", warm)
	}
	cold := testing.AllocsPerRun(100, func() {
		rebuildDiamond(g)
		g.MinCostFlow(0, 3, unbounded)
	})
	if cold != 0 {
		t.Fatalf("pooled cold Clear+rebuild+MinCostFlow allocates %.1f/op, want 0", cold)
	}
	g.Reset()
	g.MaxFlowDinic(0, 3) // grow the Dinic scratch
	dinic := testing.AllocsPerRun(100, func() {
		g.Reset()
		g.MaxFlowDinic(0, 3)
	})
	// Dinic scratch is pooled in the workspace and the blocking-flow DFS
	// is a method, not a heap-escaping closure: zero allocations, same
	// budget as the SSP path.
	if dinic != 0 {
		t.Fatalf("pooled Dinic allocates %.1f/op, want 0", dinic)
	}
}

// TestDinicWithoutWorkspaceStillCorrect pins the fallback path: a graph
// with no workspace attached builds throwaway scratch and must agree
// with the pooled solve.
func TestDinicWithoutWorkspaceStillCorrect(t *testing.T) {
	bare := NewGraph()
	buildDiamond(bare)
	pooled := NewGraph()
	pooled.SetWorkspace(NewWorkspace())
	buildDiamond(pooled)
	if b, p := bare.MaxFlowDinic(0, 3), pooled.MaxFlowDinic(0, 3); b != p || b != 5 {
		t.Fatalf("bare dinic %d, pooled %d, want 5", b, p)
	}
}

// TestWarmStartAtKeyedMemos is the per-commodity memo table: two
// interleaved graph shapes keyed separately both warm-hit every period,
// where the single-entry WarmStart memo would evict on every alternation.
func TestWarmStartAtKeyedMemos(t *testing.T) {
	g := NewGraph()
	ws := NewWorkspace()
	g.SetWorkspace(ws)

	// Shape A: the diamond. Shape B: same nodes, different costs.
	buildA := func() { rebuildDiamond(g) }
	buildB := func() {
		g.Clear()
		g.AddNodes(4)
		g.AddEdge(0, 1, 2, 7)
		g.AddEdge(1, 3, 2, 0)
		g.AddEdge(0, 2, 3, 2)
		g.AddEdge(2, 3, 3, 0)
	}

	buildA()
	ra := g.WarmStartAt(1, 0, 3, unbounded)
	buildB()
	rb := g.WarmStartAt(2, 0, 3, unbounded)
	if ws.WarmHits != 0 {
		t.Fatalf("WarmHits = %d after capture round, want 0", ws.WarmHits)
	}
	if ws.MemoEntries() != 2 {
		t.Fatalf("MemoEntries = %d, want 2", ws.MemoEntries())
	}
	// Every later period warm-hits both keys, and results stay identical
	// to the capture round.
	for period := 0; period < 3; period++ {
		buildA()
		if !g.WarmedAt(1, 0) {
			t.Fatalf("period %d: key 1 not warmed", period)
		}
		if g.WarmedAt(2, 0) {
			t.Fatalf("period %d: key 2 claims warm for shape A", period)
		}
		if r := g.WarmStartAt(1, 0, 3, unbounded); r != ra {
			t.Fatalf("period %d: keyed warm solve %+v, cold %+v", period, r, ra)
		}
		buildB()
		if r := g.WarmStartAt(2, 0, 3, unbounded); r != rb {
			t.Fatalf("period %d: keyed warm solve %+v, cold %+v", period, r, rb)
		}
	}
	if ws.WarmHits != 6 {
		t.Fatalf("WarmHits = %d, want 6 (every post-capture solve)", ws.WarmHits)
	}
	// The single-entry path alternating the same two shapes through
	// WarmStart would never hit: each build evicts the other's memo.
	ws2 := NewWorkspace()
	g2 := NewGraph()
	g2.SetWorkspace(ws2)
	g2.Clear()
	g2.AddNodes(4)
	g2.AddEdge(0, 1, 2, 1)
	g2.AddEdge(1, 3, 2, 0)
	g2.AddEdge(0, 2, 3, 5)
	g2.AddEdge(2, 3, 3, 0)
	g2.WarmStart(0, 3, unbounded)
	for period := 0; period < 3; period++ {
		g2.Clear()
		g2.AddNodes(4)
		g2.AddEdge(0, 1, 2, 7)
		g2.AddEdge(1, 3, 2, 0)
		g2.AddEdge(0, 2, 3, 2)
		g2.AddEdge(2, 3, 3, 0)
		g2.WarmStart(0, 3, unbounded)
		g2.Clear()
		g2.AddNodes(4)
		g2.AddEdge(0, 1, 2, 1)
		g2.AddEdge(1, 3, 2, 0)
		g2.AddEdge(0, 2, 3, 5)
		g2.AddEdge(2, 3, 3, 0)
		g2.WarmStart(0, 3, unbounded)
	}
	if ws2.WarmHits != 0 {
		t.Fatalf("single-entry alternation WarmHits = %d, want 0", ws2.WarmHits)
	}
}

// TestWarmStartAtAllocFree extends the zero-allocation budget to the
// keyed path: after the capture round, Clear+rebuild+WarmStartAt
// allocates nothing (map reads of an existing key are free).
func TestWarmStartAtAllocFree(t *testing.T) {
	g := NewGraph()
	g.SetWorkspace(NewWorkspace())
	buildDiamond(g)
	g.WarmStartAt(7, 0, 3, unbounded)
	allocs := testing.AllocsPerRun(100, func() {
		rebuildDiamond(g)
		g.WarmStartAt(7, 0, 3, unbounded)
	})
	if allocs != 0 {
		t.Fatalf("keyed warm rebuild+solve allocates %.1f/op, want 0", allocs)
	}
}

// TestWarmStartAtWithoutWorkspace pins the degraded mode: no workspace,
// keyed warm start is just a cold solve.
func TestWarmStartAtWithoutWorkspace(t *testing.T) {
	g := NewGraph()
	buildDiamond(g)
	if r := g.WarmStartAt(3, 0, 3, unbounded); r.Flow != 5 || r.Cost != 17 {
		t.Fatalf("workspace-free WarmStartAt = %+v, want flow 5 cost 17", r)
	}
	if g.WarmedAt(3, 0) {
		t.Fatal("workspace-free graph claims warmed")
	}
}
