package flow_test

import (
	"testing"

	"repro/internal/check"
)

// FuzzMinCostFlow decodes arbitrary bytes into a bounded flow instance
// and runs the full differential oracle: the production SSP and Dinic
// solvers must agree with the naive Bellman-Ford/Edmonds-Karp
// references on max-flow value, SSP's cost must be the reference
// optimum, conservation plus Reset round-tripping must hold, and
// workspace-backed warm starts (memo replay across Reset, Clear+rebuild
// and capacity drift) must be bit-identical to cold solves.
// Run continuously with `make fuzz-smoke` (or `go test -fuzz`).
func FuzzMinCostFlow(f *testing.F) {
	// Seed corpus: trivial, diamond, parallel/zero-cap edges, a dense
	// mesh, and a backwards edge into the source.
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{2, 0, 1, 5, 1, 1, 3, 5, 0, 0, 2, 4, 9, 2, 3, 4, 0})
	f.Add([]byte{1, 0, 1, 3, 1, 0, 1, 3, 7, 0, 2, 0, 1, 1, 2, 8, 2})
	f.Add([]byte{7, 0, 8, 15, 31, 8, 1, 7, 0, 1, 2, 3, 4, 2, 8, 9, 9, 8, 0, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		in, ok := check.DecodeInstance(data)
		if !ok {
			return
		}
		if err := check.DiffCheck(in); err != nil {
			t.Fatalf("%v\ninstance: %+v", err, in)
		}
	})
}
