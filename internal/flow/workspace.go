package flow

// The solver workspace: pooled scratch state that makes the MCNF hot
// path steady-state allocation-free and carries the cross-period
// warm-start memos.
//
// Every MinCostFlow/WarmStart solve needs four node-indexed scratch
// arrays (Johnson potentials, tentative distances, and the shortest-path
// tree) plus a priority queue. Before the workspace, each solve built
// them from scratch and the queue was a container/heap with `any`
// boxing — four slice allocations plus one boxed item per heap push,
// all of it GC pressure inside the per-period DSS-LC solve loop. A
// Workspace owns those buffers and grows them monotonically, so a
// warmed solver performs zero heap allocations per solve (asserted by
// testing.AllocsPerRun in workspace_test.go and gated by
// `tango-bench -compare -alloc-threshold`). Dinic's level/iterator/BFS
// scratch lives here too, so the feasibility probe shares the same
// zero-allocation contract.
//
// The warm-start memo exploits a structural fact of the SSP solver: the
// first Dijkstra pass runs on the pristine graph with all-zero
// potentials, so its labels depend only on the graph shape — node
// count, arc order, arc costs and which arcs have positive capacity —
// and the source. Capacity *magnitudes* only matter later, during
// augmentation. Scheduling periods rebuild the same topology-shaped
// graph with fresh capacities, so the memoized first pass from the
// previous period can be replayed verbatim, skipping the most expensive
// Dijkstra of the solve. Because the replay restores the exact labels
// the cold solve would have computed, every subsequent augmentation and
// search is bit-identical: warm and cold solves return the same
// Result and the same per-edge flows (the differential sweep in
// internal/check proves this over hundreds of seeded graphs).
//
// A workspace holds one *default* memo (fed by WarmStart) plus a keyed
// memo table (fed by WarmStartAt). A scheduler interleaving solves for
// many (cluster, type) commodities per period rebuilds a different
// graph shape per commodity; with a single memo entry each rebuild
// evicts the previous commodity's first pass and the warm-hit rate
// collapses to the single-commodity case. Keying the memo by the
// caller's commodity identity gives every commodity its own entry, so
// each one replays its own previous period. Table entries are created
// on first sight of a key and reused forever after; steady-state keyed
// solves allocate nothing.

// pqItem is one entry of the solver's priority queue.
type pqItem struct {
	node int
	dist int64
}

// memoEdge is one arc of a warm-start memo's shape snapshot. `open`
// records whether the arc had positive capacity at capture time: the
// first Dijkstra pass sees only open arcs, so capacities may change
// magnitude between periods without invalidating the memo as long as
// the open/closed pattern is stable.
type memoEdge struct {
	from, to int32
	cost     int64
	open     bool
}

// memo is one memoized first Dijkstra pass: the shape snapshot that
// keys it and the labels that replay it.
type memo struct {
	valid    bool
	src      int
	n        int
	shape    []memoEdge
	dist     []int64
	prevNode []int
	prevArc  []int
}

// capture memoizes the first Dijkstra pass of a pristine solve.
func (m *memo) capture(g *Graph, src int, dist []int64, prevNode, prevArc []int) {
	m.src, m.n = src, len(g.adj)
	m.shape = m.shape[:0]
	for _, e := range g.edges {
		a := &g.adj[e.from][e.idx]
		m.shape = append(m.shape, memoEdge{
			from: int32(e.from), to: int32(a.to), cost: a.cost, open: a.cap > 0,
		})
	}
	m.dist = append(m.dist[:0], dist...)
	m.prevNode = append(m.prevNode[:0], prevNode...)
	m.prevArc = append(m.prevArc[:0], prevArc...)
	m.valid = true
}

// matches reports whether the memo's shape snapshot is exactly the
// graph's current (pristine) shape with the same source. A full
// structural compare, not a hash: O(E) against the Dijkstra it saves,
// and immune to collisions.
func (m *memo) matches(g *Graph, src int) bool {
	if m == nil || !m.valid || m.src != src || m.n != len(g.adj) || len(m.shape) != len(g.edges) {
		return false
	}
	for i, e := range g.edges {
		a := &g.adj[e.from][e.idx]
		me := m.shape[i]
		if int(me.from) != e.from || int(me.to) != a.to || me.cost != a.cost || me.open != (a.cap > 0) {
			return false
		}
	}
	return true
}

// Workspace pools the solver's scratch state across solves and across
// graphs. Attach one to a Graph with SetWorkspace; a single workspace
// must not be shared by concurrently-solving graphs (the sharded
// scheduler gives every shard its own graph + workspace pair for
// exactly this reason).
type Workspace struct {
	dist      []int64
	potential []int64
	prevNode  []int
	prevArc   []int
	heap      []pqItem

	// Dinic scratch (level graph, per-node arc iterators, BFS queue).
	level []int
	iter  []int
	queue []int

	// def is the default warm-start memo (WarmStart); table holds the
	// keyed memos (WarmStartAt), created lazily per key.
	def   memo
	table map[uint64]*memo

	// Solves counts solves routed through this workspace; WarmHits the
	// subset that replayed a memo instead of running the first
	// Dijkstra. Exposed so tests and benchmarks can assert the warm
	// path is actually taken.
	Solves   uint64
	WarmHits uint64
}

// NewWorkspace returns an empty workspace; buffers are grown on first
// use and retained forever after.
func NewWorkspace() *Workspace { return &Workspace{} }

// grow ensures the node-indexed scratch arrays can hold n entries.
func (ws *Workspace) grow(n int) {
	if cap(ws.dist) >= n {
		return
	}
	ws.dist = make([]int64, n)
	ws.potential = make([]int64, n)
	ws.prevNode = make([]int, n)
	ws.prevArc = make([]int, n)
}

// growDinic ensures the Dinic scratch arrays can hold n entries.
func (ws *Workspace) growDinic(n int) {
	if cap(ws.level) >= n {
		ws.level = ws.level[:n]
		ws.iter = ws.iter[:n]
		return
	}
	ws.level = make([]int, n)
	ws.iter = make([]int, n)
	ws.queue = make([]int, 0, n)
}

// memoAt returns the keyed memo entry, creating it on first use. The
// map read on the steady-state path is allocation-free; only a key's
// first appearance allocates its entry.
func (ws *Workspace) memoAt(key uint64) *memo {
	if m, ok := ws.table[key]; ok {
		return m
	}
	if ws.table == nil {
		ws.table = make(map[uint64]*memo)
	}
	m := &memo{}
	ws.table[key] = m
	return m
}

// MemoEntries reports how many keyed memo entries the workspace holds
// (the default WarmStart memo is not counted).
func (ws *Workspace) MemoEntries() int { return len(ws.table) }

// The priority queue is a hand-rolled index-based binary heap over the
// workspace's pqItem slice. It replicates container/heap's exact sift
// order (Push = append + sift-up; Pop = swap root/last + sift-down over
// the shrunk prefix), so the solver's pop sequence — and therefore its
// tie-breaking, per-edge flows and the replay digests — is unchanged
// from the container/heap implementation it replaces. What changed is
// the cost: no interface boxing, no `any` round-trips, no per-push
// allocation.

func pqPush(h *[]pqItem, it pqItem) {
	*h = append(*h, it)
	s := *h
	j := len(s) - 1
	for j > 0 {
		parent := (j - 1) / 2
		if s[j].dist >= s[parent].dist {
			break
		}
		s[parent], s[j] = s[j], s[parent]
		j = parent
	}
}

func pqPop(h *[]pqItem) pqItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s[j2].dist < s[j].dist {
			j = j2
		}
		if s[j].dist >= s[i].dist {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	it := s[n]
	*h = s[:n]
	return it
}
