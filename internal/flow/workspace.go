package flow

// The solver workspace: pooled scratch state that makes the MCNF hot
// path steady-state allocation-free and carries the cross-period
// warm-start memo.
//
// Every MinCostFlow/WarmStart solve needs four node-indexed scratch
// arrays (Johnson potentials, tentative distances, and the shortest-path
// tree) plus a priority queue. Before the workspace, each solve built
// them from scratch and the queue was a container/heap with `any`
// boxing — four slice allocations plus one boxed item per heap push,
// all of it GC pressure inside the per-period DSS-LC solve loop. A
// Workspace owns those buffers and grows them monotonically, so a
// warmed solver performs zero heap allocations per solve (asserted by
// testing.AllocsPerRun in workspace_test.go and gated by
// `tango-bench -compare -alloc-threshold`).
//
// The warm-start memo exploits a structural fact of the SSP solver: the
// first Dijkstra pass runs on the pristine graph with all-zero
// potentials, so its labels depend only on the graph shape — node
// count, arc order, arc costs and which arcs have positive capacity —
// and the source. Capacity *magnitudes* only matter later, during
// augmentation. Scheduling periods rebuild the same topology-shaped
// graph with fresh capacities, so the memoized first pass from the
// previous period can be replayed verbatim, skipping the most expensive
// Dijkstra of the solve. Because the replay restores the exact labels
// the cold solve would have computed, every subsequent augmentation and
// search is bit-identical: warm and cold solves return the same
// Result and the same per-edge flows (the differential sweep in
// internal/check proves this over hundreds of seeded graphs).

// pqItem is one entry of the solver's priority queue.
type pqItem struct {
	node int
	dist int64
}

// memoEdge is one arc of the warm-start memo's shape snapshot. `open`
// records whether the arc had positive capacity at capture time: the
// first Dijkstra pass sees only open arcs, so capacities may change
// magnitude between periods without invalidating the memo as long as
// the open/closed pattern is stable.
type memoEdge struct {
	from, to int32
	cost     int64
	open     bool
}

// Workspace pools the solver's scratch state across solves and across
// graphs. Attach one to a Graph with SetWorkspace; a single workspace
// must not be shared by concurrently-solving graphs (the simulation is
// single-threaded, like the rest of the repo's hot path).
type Workspace struct {
	dist      []int64
	potential []int64
	prevNode  []int
	prevArc   []int
	heap      []pqItem

	// Warm-start memo: the first Dijkstra pass of the most recent solve
	// that started from a pristine graph, keyed by source and shape.
	memoValid    bool
	memoSrc      int
	memoN        int
	memoShape    []memoEdge
	memoDist     []int64
	memoPrevNode []int
	memoPrevArc  []int

	// Solves counts solves routed through this workspace; WarmHits the
	// subset that replayed the memo instead of running the first
	// Dijkstra. Exposed so tests and benchmarks can assert the warm
	// path is actually taken.
	Solves   uint64
	WarmHits uint64
}

// NewWorkspace returns an empty workspace; buffers are grown on first
// use and retained forever after.
func NewWorkspace() *Workspace { return &Workspace{} }

// grow ensures the node-indexed scratch arrays can hold n entries.
func (ws *Workspace) grow(n int) {
	if cap(ws.dist) >= n {
		return
	}
	ws.dist = make([]int64, n)
	ws.potential = make([]int64, n)
	ws.prevNode = make([]int, n)
	ws.prevArc = make([]int, n)
}

// capture memoizes the first Dijkstra pass of a pristine solve: the
// shape snapshot that keys it and the labels that replay it.
func (ws *Workspace) capture(g *Graph, src int, dist []int64, prevNode, prevArc []int) {
	ws.memoSrc, ws.memoN = src, len(g.adj)
	ws.memoShape = ws.memoShape[:0]
	for _, e := range g.edges {
		a := &g.adj[e.from][e.idx]
		ws.memoShape = append(ws.memoShape, memoEdge{
			from: int32(e.from), to: int32(a.to), cost: a.cost, open: a.cap > 0,
		})
	}
	ws.memoDist = append(ws.memoDist[:0], dist...)
	ws.memoPrevNode = append(ws.memoPrevNode[:0], prevNode...)
	ws.memoPrevArc = append(ws.memoPrevArc[:0], prevArc...)
	ws.memoValid = true
}

// matches reports whether the memo's shape snapshot is exactly the
// graph's current (pristine) shape with the same source. A full
// structural compare, not a hash: O(E) against the Dijkstra it saves,
// and immune to collisions.
func (ws *Workspace) matches(g *Graph, src int) bool {
	if !ws.memoValid || ws.memoSrc != src || ws.memoN != len(g.adj) || len(ws.memoShape) != len(g.edges) {
		return false
	}
	for i, e := range g.edges {
		a := &g.adj[e.from][e.idx]
		m := ws.memoShape[i]
		if int(m.from) != e.from || int(m.to) != a.to || m.cost != a.cost || m.open != (a.cap > 0) {
			return false
		}
	}
	return true
}

// The priority queue is a hand-rolled index-based binary heap over the
// workspace's pqItem slice. It replicates container/heap's exact sift
// order (Push = append + sift-up; Pop = swap root/last + sift-down over
// the shrunk prefix), so the solver's pop sequence — and therefore its
// tie-breaking, per-edge flows and the replay digests — is unchanged
// from the container/heap implementation it replaces. What changed is
// the cost: no interface boxing, no `any` round-trips, no per-push
// allocation.

func pqPush(h *[]pqItem, it pqItem) {
	*h = append(*h, it)
	s := *h
	j := len(s) - 1
	for j > 0 {
		parent := (j - 1) / 2
		if s[j].dist >= s[parent].dist {
			break
		}
		s[parent], s[j] = s[j], s[parent]
		j = parent
	}
}

func pqPop(h *[]pqItem) pqItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s[j2].dist < s[j].dist {
			j = j2
		}
		if s[j].dist >= s[i].dist {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	it := s[n]
	*h = s[:n]
	return it
}
