package flow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDinicSimple(t *testing.T) {
	g := NewGraph()
	s, a, d := g.AddNode(), g.AddNode(), g.AddNode()
	g.AddEdge(s, a, 5, 0)
	e := g.AddEdge(a, d, 3, 0)
	if got := g.MaxFlowDinic(s, d); got != 3 {
		t.Fatalf("dinic = %d", got)
	}
	if g.Flow(e) != 3 {
		t.Fatalf("edge flow = %d", g.Flow(e))
	}
}

func TestDinicClassic(t *testing.T) {
	g := NewGraph()
	s := g.AddNode()
	v1, v2, v3, v4 := g.AddNode(), g.AddNode(), g.AddNode(), g.AddNode()
	d := g.AddNode()
	g.AddEdge(s, v1, 16, 0)
	g.AddEdge(s, v2, 13, 0)
	g.AddEdge(v1, v3, 12, 0)
	g.AddEdge(v2, v1, 4, 0)
	g.AddEdge(v3, v2, 9, 0)
	g.AddEdge(v2, v4, 14, 0)
	g.AddEdge(v4, v3, 7, 0)
	g.AddEdge(v3, d, 20, 0)
	g.AddEdge(v4, d, 4, 0)
	if got := g.MaxFlowDinic(s, d); got != 23 {
		t.Fatalf("dinic = %d, want 23", got)
	}
}

func TestDinicEdgeCases(t *testing.T) {
	g := NewGraph()
	s := g.AddNode()
	if g.MaxFlowDinic(s, s) != 0 {
		t.Fatal("self flow")
	}
	d := g.AddNode()
	if g.MaxFlowDinic(s, d) != 0 {
		t.Fatal("disconnected flow")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad source")
		}
	}()
	g.MaxFlowDinic(-1, 0)
}

// Property: Dinic and the SSP solver agree on max flow for random graphs.
func TestQuickDinicMatchesSSP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 3
		type e struct {
			u, v int
			c    int64
		}
		var edges []e
		for i := 0; i < rng.Intn(30)+3; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, e{u, v, int64(rng.Intn(10) + 1)})
			}
		}
		build := func() *Graph {
			g := NewGraph()
			g.AddNodes(n)
			for _, ed := range edges {
				g.AddEdge(ed.u, ed.v, ed.c, 0)
			}
			return g
		}
		a := build().MaxFlowDinic(0, n-1)
		b := build().MaxFlow(0, n-1)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDinicVsSSP(b *testing.B) {
	build := func() (*Graph, int, int) {
		rng := rand.New(rand.NewSource(1))
		g := NewGraph()
		n := 500
		g.AddNodes(n + 2)
		s, d := n, n+1
		for i := 0; i < n; i++ {
			g.AddEdge(s, i, int64(rng.Intn(4)+1), 0)
			g.AddEdge(i, d, int64(rng.Intn(4)+1), 0)
		}
		for i := 0; i < 2000; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, int64(rng.Intn(5)+1), 0)
			}
		}
		return g, s, d
	}
	b.Run("dinic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, s, d := build()
			g.MaxFlowDinic(s, d)
		}
	})
	b.Run("ssp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, s, d := build()
			g.MaxFlow(s, d)
		}
	})
}
