package flow

import (
	"math"
	"testing"
)

// Coverage for Reset and MaxFlow: reuse-after-reset equivalence and the
// capacity edge cases (zero-cap edges, disconnected sink) the scheduler
// never produces but the solver must still handle.

// diamond builds the standard two-path test graph and returns the graph
// and its edge IDs: cheap narrow path 0→1→3 (cap 2, cost 1), expensive
// wide path 0→2→3 (cap 3, cost 5).
func diamond() (*Graph, []EdgeID) {
	g := NewGraph()
	g.AddNodes(4)
	ids := []EdgeID{
		g.AddEdge(0, 1, 2, 1), g.AddEdge(1, 3, 2, 0),
		g.AddEdge(0, 2, 3, 5), g.AddEdge(2, 3, 3, 0),
	}
	return g, ids
}

func TestResetReuseEquivalence(t *testing.T) {
	g, ids := diamond()
	r1 := g.MinCostFlow(0, 3, math.MaxInt64/4)
	if r1.Flow != 5 || r1.Cost != 17 {
		t.Fatalf("first solve = %+v, want flow 5 cost 17", r1)
	}
	flows := make([]int64, len(ids))
	for i, id := range ids {
		flows[i] = g.Flow(id)
	}
	// After Reset, every edge must carry zero flow again...
	g.Reset()
	for i, id := range ids {
		if f := g.Flow(id); f != 0 {
			t.Fatalf("edge %d: flow %d after Reset, want 0", i, f)
		}
	}
	// ...and a re-solve must reproduce the result and per-edge flows.
	r2 := g.MinCostFlow(0, 3, math.MaxInt64/4)
	if r2 != r1 {
		t.Fatalf("re-solve = %+v, first = %+v", r2, r1)
	}
	for i, id := range ids {
		if f := g.Flow(id); f != flows[i] {
			t.Fatalf("edge %d: flow %d after re-solve, was %d", i, f, flows[i])
		}
	}
	// Reset also bridges solver families: Dinic on the reset graph must
	// find the same max flow.
	g.Reset()
	if f := g.MaxFlowDinic(0, 3); f != r1.Flow {
		t.Fatalf("Dinic after Reset = %d, want %d", f, r1.Flow)
	}
}

func TestResetAfterPartialSolve(t *testing.T) {
	g, _ := diamond()
	if r := g.MinCostFlow(0, 3, 2); r.Flow != 2 || r.Cost != 2 {
		t.Fatalf("partial solve = %+v, want flow 2 cost 2", r)
	}
	g.Reset()
	if r := g.MinCostFlow(0, 3, math.MaxInt64/4); r.Flow != 5 || r.Cost != 17 {
		t.Fatalf("full solve after partial+Reset = %+v", r)
	}
}

func TestMaxFlowZeroCapEdges(t *testing.T) {
	g := NewGraph()
	g.AddNodes(3)
	dead := g.AddEdge(0, 1, 0, 1) // zero capacity: present but unusable
	live := g.AddEdge(0, 1, 4, 1)
	out := g.AddEdge(1, 2, 3, 0)
	if f := g.MaxFlow(0, 2); f != 3 {
		t.Fatalf("max flow = %d, want 3", f)
	}
	if f := g.Flow(dead); f != 0 {
		t.Fatalf("zero-cap edge carries %d", f)
	}
	if g.Flow(live) != 3 || g.Flow(out) != 3 {
		t.Fatalf("flows: live=%d out=%d, want 3/3", g.Flow(live), g.Flow(out))
	}
	if err := g.Conservation(0, 2); err != nil {
		t.Fatal(err)
	}
}

func TestMaxFlowDisconnectedSink(t *testing.T) {
	g := NewGraph()
	g.AddNodes(4)
	g.AddEdge(0, 1, 5, 1)
	g.AddEdge(1, 0, 5, 1) // cycle off to the side; sink 3 unreachable
	if f := g.MaxFlow(0, 3); f != 0 {
		t.Fatalf("max flow to disconnected sink = %d, want 0", f)
	}
	if f := g.MaxFlowDinic(0, 3); f != 0 {
		t.Fatalf("Dinic to disconnected sink = %d, want 0", f)
	}
	if r := g.MinCostFlow(0, 3, 10); r != (Result{}) {
		t.Fatalf("min-cost flow to disconnected sink = %+v, want zero", r)
	}
	if err := g.Conservation(0, 3); err != nil {
		t.Fatal(err)
	}
}

func TestMaxFlowAgreesWithDinic(t *testing.T) {
	build := func() *Graph {
		g := NewGraph()
		g.AddNodes(6)
		g.AddEdge(0, 1, 10, 1)
		g.AddEdge(0, 2, 10, 2)
		g.AddEdge(1, 3, 4, 1)
		g.AddEdge(1, 4, 8, 3)
		g.AddEdge(2, 4, 9, 1)
		g.AddEdge(3, 5, 10, 0)
		g.AddEdge(4, 5, 10, 0)
		return g
	}
	ssp := build().MaxFlow(0, 5)
	din := build().MaxFlowDinic(0, 5)
	if ssp != din || ssp != 14 {
		t.Fatalf("ssp=%d dinic=%d, want 14", ssp, din)
	}
}
