package obs

// Deterministic head-based span sampling.
//
// At 1M-request scale always-on span tracing writes ~7 span lines per
// request; head-based sampling keeps a reproducible subset instead of
// throttling blindly. The decision is made once per request — at root
// span reservation — from a pure hash of (ReqID, seed), so:
//
//   - every span of a request is kept or dropped atomically (no broken
//     span trees, the tiling contract holds for every sampled request);
//   - the same scenario+seed replays the same sample set byte-for-byte
//     (the replay-digest contract extends to sampled streams);
//   - rate 1.0 keeps everything and the emitted stream is byte-identical
//     to a run without any sampler attached.
//
// Point events and decision audit records are never sampled: they are
// what the metrics/φ accounting is built from and are far cheaper than
// span trees.

// Sampler decides, per request, whether its span tree is recorded.
type Sampler struct {
	rate float64
	// keep is the inclusive upper bound on the 64-bit request hash; a
	// request is sampled when hash <= keep.
	keep uint64
	seed uint64
}

// NewSampler builds a head-based sampler keeping approximately `rate`
// (clamped to [0,1]) of requests, keyed by a hash of the request ID and
// the run seed. rate >= 1 keeps everything, rate <= 0 nothing.
func NewSampler(rate float64, seed int64) *Sampler {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	s := &Sampler{rate: rate, seed: uint64(seed)}
	if rate > 0 {
		// rate*2^64-1 without float overflow at rate 1.0.
		s.keep = uint64(rate * float64(1<<32) * float64(1<<32))
		if rate == 1 {
			s.keep = ^uint64(0)
		}
	}
	return s
}

// Rate returns the configured sampling rate after clamping.
func (s *Sampler) Rate() float64 {
	if s == nil {
		return 1
	}
	return s.rate
}

// Sampled reports whether the request's spans are recorded. Pure in
// (reqID, seed), so replays and re-asks agree. Nil-safe (true: no
// sampler means keep everything).
func (s *Sampler) Sampled(reqID int64) bool {
	if s == nil || s.rate >= 1 {
		return true
	}
	if s.rate <= 0 {
		return false
	}
	return mix64(uint64(reqID)^(s.seed*0x9E3779B97F4A7C15)) <= s.keep
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mix so consecutive request IDs map to independent sample decisions.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
