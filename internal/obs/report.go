package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
)

// ReportSchema identifies the run-report document version.
const ReportSchema = "tango.run-report/v1"

// ClassStats summarizes one request class for the report.
type ClassStats struct {
	Arrived   int64 `json:"arrived"`
	Completed int64 `json:"completed"`
	Satisfied int64 `json:"satisfied"`
	Abandoned int64 `json:"abandoned"`
}

// MetricSample is one registry sample in the report.
type MetricSample struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// Report is the one-JSON-document-per-run summary written by
// cmd/tango-sim (and, per experiment system, by cmd/tango-bench) behind
// the -report flag. Phi and the lc-p95-ms series are taken from the same
// collectors that feed the printed tables, so the two always agree.
type Report struct {
	Schema       string            `json:"schema"`
	System       string            `json:"system"`
	Tag          string            `json:"tag,omitempty"`
	ConfigDigest string            `json:"config_digest"`
	Config       map[string]string `json:"config"`

	VirtualMs float64 `json:"virtual_ms"` // simulated horizon
	PeriodMs  float64 `json:"period_ms"`  // collection period
	WallMs    float64 `json:"wall_ms"`    // real time spent simulating

	Phi             float64            `json:"phi"` // QoS satisfaction rate, Eq. 1
	LC              ClassStats         `json:"lc"`
	BE              ClassStats         `json:"be"`
	BEThroughput    int64              `json:"be_throughput"`
	MeanUtilization float64            `json:"mean_utilization"`
	MeanLCLatencyMs float64            `json:"mean_lc_latency_ms"`
	TailLatencyMs   map[string]float64 `json:"tail_latency_ms"` // p50/p90/p95/p99 over completed LC

	Series      map[string][]float64 `json:"series"`       // per-period collector series
	Metrics     []MetricSample       `json:"metrics"`      // final registry scrape
	EventCounts map[string]uint64    `json:"event_counts"` // tracer per-kind totals

	SLO  []SLOReport `json:"slo,omitempty"`  // per-service SLO accounting
	Sink *SinkStats  `json:"sink,omitempty"` // trace-sink health

	// Perf is the performance-observability section (internal/perf):
	// per-phase wall time and allocation breakdowns plus a final Go
	// runtime sample. Everything in it is host-measured, so it is
	// normalized away by ReportDigest (see PerfMetricPrefix).
	Perf *PerfSection `json:"perf,omitempty"`
}

// PerfMetricPrefix marks registry metrics (and therefore report series)
// that carry wall-clock or allocator measurements of the host. They are
// allowed to differ between replays of the same scenario+seed, so
// ReportDigest strips every metric and series whose name starts with
// this prefix, alongside the Perf section itself.
const PerfMetricPrefix = "perf_"

// PhasePerf is one row of the per-phase breakdown: cumulative wall time
// (inclusive and exclusive of nested phases) and exclusive heap
// allocation deltas for one instrumented phase.
type PhasePerf struct {
	Phase        string `json:"phase"`
	Calls        uint64 `json:"calls"`
	TotalNs      int64  `json:"total_ns"`
	SelfNs       int64  `json:"self_ns"`
	AllocBytes   uint64 `json:"alloc_bytes"`
	AllocObjects uint64 `json:"alloc_objects"`
}

// PerfSection is the run report's perf section. Phases always lists the
// full phase enum (solver, engine and cgroup phases) so the breakdown
// shape is stable; Runtime is the final Go runtime sample keyed by the
// perf_* metric names whose per-period series appear under Series.
type PerfSection struct {
	Phases  []PhasePerf        `json:"phases,omitempty"`
	Runtime map[string]float64 `json:"runtime,omitempty"`
}

// SinkStats reports trace-sink health: how much was recorded and, for
// writer-backed sinks, whether anything was lost to I/O errors.
type SinkStats struct {
	Events    uint64 `json:"events"`
	Spans     uint64 `json:"spans,omitempty"`
	Decisions uint64 `json:"decisions,omitempty"`
	Lines     uint64 `json:"lines,omitempty"`   // NDJSON lines written
	Dropped   uint64 `json:"dropped,omitempty"` // records lost to write errors
	Error     string `json:"error,omitempty"`   // first write error, if any
}

// ConfigDigest hashes a flat config map into a stable hex digest
// (FNV-1a over sorted key=value lines), so two runs are comparable by
// digest equality regardless of map iteration order.
func ConfigDigest(cfg map[string]string) string {
	keys := make([]string, 0, len(cfg))
	for k := range cfg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\n", k, cfg[k])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Write serializes the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	if r.Schema == "" {
		r.Schema = ReportSchema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// SamplesToReport converts a registry scrape for embedding in a report.
func SamplesToReport(samples []Sample) []MetricSample {
	out := make([]MetricSample, len(samples))
	for i, s := range samples {
		out[i] = MetricSample{Name: s.Name, Labels: s.Labels.String(), Value: s.Value}
	}
	return out
}
