package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func fixedClock(at time.Duration) func() time.Duration {
	return func() time.Duration { return at }
}

func TestKindNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Kinds() {
		n := k.String()
		if n == "" || n == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[n] {
			t.Fatalf("duplicate kind name %q", n)
		}
		seen[n] = true
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind should render unknown")
	}
}

func TestEvSentinelsAndChaining(t *testing.T) {
	ev := Ev(EvStart)
	if ev.ReqID != -1 || ev.NodeID != -1 || ev.Cluster != -1 || ev.Svc != -1 {
		t.Fatalf("sentinels not set: %+v", ev)
	}
	ev = ev.Req(7).Node(3).Clu(1).Service(2).Cls("LC").Val(2.5).Au(9).Note("x")
	if ev.ReqID != 7 || ev.NodeID != 3 || ev.Cluster != 1 || ev.Svc != 2 ||
		ev.Class != "LC" || ev.Value != 2.5 || ev.Aux != 9 || ev.Detail != "x" {
		t.Fatalf("chaining lost fields: %+v", ev)
	}
}

func TestAppendJSONParses(t *testing.T) {
	ev := Ev(EvFinish).Req(42).Node(3).Clu(1).Service(4).Cls("LC").Val(123.5).Au(1)
	ev.Seq = 9
	ev.At = 1500 * time.Microsecond
	ev.Tag = `q"uo\te`
	ev.Detail = "line\nbreak"
	var m map[string]any
	if err := json.Unmarshal(AppendJSON(nil, *ev), &m); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, AppendJSON(nil, *ev))
	}
	if m["kind"] != "finish" || m["req"] != 42.0 || m["at_us"] != 1500.0 {
		t.Fatalf("wrong fields: %v", m)
	}
	if m["tag"] != `q"uo\te` || m["detail"] != "line\nbreak" {
		t.Fatalf("escaping broken: %v", m)
	}
}

func TestAppendJSONOmitsSentinels(t *testing.T) {
	out := string(AppendJSON(nil, *Ev(EvNodeFail)))
	for _, forbidden := range []string{`"req"`, `"node"`, `"cluster"`, `"service"`, `"class"`, `"value"`, `"aux"`, `"detail"`, `"tag"`} {
		if strings.Contains(out, forbidden) {
			t.Fatalf("sentinel field %s encoded: %s", forbidden, out)
		}
	}
}

func TestRingSinkWraps(t *testing.T) {
	s := NewRingSink(3)
	for i := 0; i < 5; i++ {
		ev := Ev(EvArrival)
		ev.Seq = uint64(i)
		s.Record(*ev)
	}
	evs := s.Events()
	if s.Total() != 5 || len(evs) != 3 {
		t.Fatalf("total=%d len=%d", s.Total(), len(evs))
	}
	for i, want := range []uint64{2, 3, 4} {
		if evs[i].Seq != want {
			t.Fatalf("ring order: got %d want %d", evs[i].Seq, want)
		}
	}
}

func TestWriterSinkNDJSON(t *testing.T) {
	var buf bytes.Buffer
	sink := NewWriterSink(&buf)
	tr := NewTracer(fixedClock(time.Second), sink)
	tr.Emit(Ev(EvArrival).Req(1).Clu(0).Cls("LC"))
	tr.Emit(Ev(EvDispatch).Req(1).Node(2).Val(0.8))
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d invalid: %v", lines, err)
		}
		if m["at_us"] != 1e6 {
			t.Fatalf("clock not stamped: %v", m)
		}
		lines++
	}
	if lines != 2 || sink.Lines != 2 {
		t.Fatalf("lines=%d sink.Lines=%d", lines, sink.Lines)
	}
}

func TestTracerCountsAndTag(t *testing.T) {
	ring := NewRingSink(10)
	tr := NewTracer(fixedClock(0), ring)
	tr.SetTag("sysA")
	tr.Emit(Ev(EvStart))
	tr.Emit(Ev(EvStart))
	tr.Emit(Ev(EvFinish))
	if tr.Count(EvStart) != 2 || tr.Count(EvFinish) != 1 || tr.Emitted() != 3 {
		t.Fatalf("counts wrong: %v", tr.Counts())
	}
	c := tr.Counts()
	if c["start"] != 2 || c["finish"] != 1 || len(c) != 2 {
		t.Fatalf("Counts map: %v", c)
	}
	evs := ring.Events()
	if evs[0].Tag != "sysA" || evs[0].Seq != 0 || evs[2].Seq != 2 {
		t.Fatalf("stamping wrong: %+v", evs)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	tr.Emit(Ev(EvStart)) // must not panic
	if tr.Count(EvStart) != 0 || tr.Emitted() != 0 || tr.Counts() != nil {
		t.Fatal("nil tracer accumulated state")
	}
}

func TestNilSinkFallsBackToNull(t *testing.T) {
	tr := NewTracer(fixedClock(0), nil)
	tr.Emit(Ev(EvStart))
	if tr.Count(EvStart) != 1 {
		t.Fatal("counting broken with nil sink")
	}
}

// TestNullSinkZeroAlloc pins the tentpole's hot-path contract: emitting
// through a live tracer with the null sink performs no heap allocation.
func TestNullSinkZeroAlloc(t *testing.T) {
	tr := NewTracer(fixedClock(5*time.Millisecond), NullSink{})
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Ev(EvStart).Req(17).Node(3).Clu(1).Service(2).Cls("LC").Val(500).Au(12))
	})
	if allocs != 0 {
		t.Fatalf("null-sink emit allocates %.1f per op, want 0", allocs)
	}
}

// TestWriterSinkSteadyStateAllocs verifies the NDJSON encoder reuses its
// scratch buffer once warmed up.
func TestWriterSinkSteadyStateAllocs(t *testing.T) {
	sink := NewWriterSink(&countingWriter{})
	tr := NewTracer(fixedClock(0), sink)
	tr.Emit(Ev(EvFinish).Req(1).Node(2).Val(123.456)) // warm the scratch buffer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Ev(EvFinish).Req(1).Node(2).Val(123.456))
	})
	if allocs > 0.5 {
		t.Fatalf("writer sink steady state allocates %.1f per op", allocs)
	}
}

// countingWriter discards writes without buffering (so bufio flushes
// don't hit a growing buffer).
type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }

func BenchmarkEmitNullSink(b *testing.B) {
	tr := NewTracer(fixedClock(0), NullSink{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Ev(EvStart).Req(int64(i)).Node(3).Val(500))
	}
}

func BenchmarkEmitWriterSink(b *testing.B) {
	tr := NewTracer(fixedClock(0), NewWriterSink(&countingWriter{}))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Ev(EvFinish).Req(int64(i)).Node(3).Val(123.5).Au(1))
	}
}
