package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSpanBuilderSentinelsAndChaining(t *testing.T) {
	sp := Sp(SpanExec, time.Millisecond, 5*time.Millisecond)
	if sp.ReqID != -1 || sp.NodeID != -1 || sp.Cluster != -1 || sp.Svc != -1 || sp.Decision != -1 {
		t.Fatalf("sentinels not set: %+v", sp)
	}
	sp = sp.Req(7).Node(3).Clu(1).Service(2).Cls("LC").Child(9).Dec(4).Note("x").WithID(11)
	if sp.ReqID != 7 || sp.NodeID != 3 || sp.Cluster != 1 || sp.Svc != 2 ||
		sp.Class != "LC" || sp.Parent != 9 || sp.Decision != 4 || sp.Detail != "x" || sp.ID != 11 {
		t.Fatalf("chaining lost fields: %+v", sp)
	}
	if sp.Duration() != 4*time.Millisecond {
		t.Fatalf("duration %v", sp.Duration())
	}
}

func TestEmitSpanAssignsIDsAndCounts(t *testing.T) {
	ring := NewRingSink(8)
	tr := NewTracer(fixedClock(0), ring)
	tr.SetTag("sysA")
	root := tr.NewSpanID()
	tr.EmitSpan(Sp(SpanSched, 0, time.Millisecond).Child(root).Req(1))
	tr.EmitSpan(Sp(SpanRequest, 0, time.Millisecond).WithID(root).Req(1))
	if tr.SpanCount() != 2 {
		t.Fatalf("span count %d", tr.SpanCount())
	}
	spans := ring.Spans()
	if len(spans) != 2 || ring.SpanTotal() != 2 {
		t.Fatalf("ring: %d/%d", len(spans), ring.SpanTotal())
	}
	if spans[0].ID == 0 || spans[0].ID == root || spans[0].Parent != root {
		t.Fatalf("child ids wrong: %+v", spans[0])
	}
	if spans[1].ID != root || spans[1].Tag != "sysA" {
		t.Fatalf("root id/tag wrong: %+v", spans[1])
	}
}

func TestEmitDecisionStampsAndLinks(t *testing.T) {
	ring := NewRingSink(8)
	tr := NewTracer(fixedClock(3*time.Millisecond), ring)
	d := Decision{Algo: "DSS-LC", Cluster: 0, Svc: 1, Batch: 4, Routed: 4}
	tr.EmitDecision(&d)
	if d.ID != 1 || d.At != 3*time.Millisecond {
		t.Fatalf("not stamped: %+v", d)
	}
	d2 := Decision{Algo: "DSS-LC", Cluster: 0, Svc: 2}
	tr.EmitDecision(&d2)
	if d2.ID != 2 || tr.DecisionCount() != 2 {
		t.Fatalf("sequencing: id=%d count=%d", d2.ID, tr.DecisionCount())
	}
	if len(ring.Decisions()) != 2 {
		t.Fatalf("ring decisions: %d", len(ring.Decisions()))
	}
}

func TestNilTracerSpansSafe(t *testing.T) {
	var tr *Tracer
	if tr.NewSpanID() != 0 {
		t.Fatal("nil tracer issued a span ID")
	}
	tr.EmitSpan(Sp(SpanExec, 0, 1)) // must not panic
	d := Decision{Algo: "x"}
	tr.EmitDecision(&d)
	if d.ID != 0 || tr.SpanCount() != 0 || tr.DecisionCount() != 0 {
		t.Fatal("nil tracer accumulated state")
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	sp := *Sp(SpanSched, 1500*time.Microsecond, 2500*time.Microsecond).
		Req(42).Clu(1).Node(3).Service(4).Cls("LC").Dec(7).Child(9).Note("d").WithID(10)
	sp.Tag = "t"
	var m map[string]any
	if err := json.Unmarshal(AppendSpanJSON(nil, sp), &m); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, AppendSpanJSON(nil, sp))
	}
	want := map[string]any{
		"span": 10.0, "parent": 9.0, "name": "sched",
		"start_us": 1500.0, "end_us": 2500.0, "tag": "t",
		"req": 42.0, "cluster": 1.0, "node": 3.0, "service": 4.0,
		"class": "LC", "decision": 7.0, "detail": "d",
	}
	for k, v := range want {
		if m[k] != v {
			t.Fatalf("field %s = %v, want %v (%v)", k, m[k], v, m)
		}
	}
}

func TestSpanJSONOmitsSentinels(t *testing.T) {
	out := string(AppendSpanJSON(nil, *Sp(SpanExec, 0, time.Millisecond).WithID(1)))
	for _, forbidden := range []string{`"req"`, `"node"`, `"cluster"`, `"service"`, `"class"`, `"decision"`, `"detail"`, `"parent"`, `"tag"`} {
		if strings.Contains(out, forbidden) {
			t.Fatalf("sentinel field %s encoded: %s", forbidden, out)
		}
	}
}

func TestDecisionJSONRoundTrip(t *testing.T) {
	d := Decision{
		ID: 5, At: 2 * time.Millisecond, Algo: "DSS-LC", Phase: PhaseOverflow,
		Cluster: 1, Svc: 2, Batch: 10, Routed: 8, GraphNodes: 7, GraphEdges: 9,
		Candidates: []Candidate{
			{Node: 3, Capacity: 4, CostUS: 150, LinkCap: 10, Flow: 8},
			{Node: 4, Capacity: 0, Reject: RejectNoCapacity},
		},
	}
	var m map[string]any
	if err := json.Unmarshal(AppendDecisionJSON(nil, d), &m); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, AppendDecisionJSON(nil, d))
	}
	if m["decision"] != 5.0 || m["algo"] != "DSS-LC" || m["phase"] != "overflow" ||
		m["at_us"] != 2000.0 || m["graph_nodes"] != 7.0 {
		t.Fatalf("fields: %v", m)
	}
	cands := m["cands"].([]any)
	if len(cands) != 2 {
		t.Fatalf("cands: %v", cands)
	}
	c1 := cands[1].(map[string]any)
	if c1["reject"] != RejectNoCapacity {
		t.Fatalf("reject: %v", c1)
	}
}

// TestSpanNullSinkZeroAlloc pins the acceptance criterion: span
// begin/end through a live tracer with the NullSink allocates nothing.
func TestSpanNullSinkZeroAlloc(t *testing.T) {
	tr := NewTracer(fixedClock(0), NullSink{})
	allocs := testing.AllocsPerRun(1000, func() {
		id := tr.NewSpanID()
		tr.EmitSpan(Sp(SpanSched, 0, time.Millisecond).Child(id).Req(17).
			Node(3).Clu(1).Service(2).Cls("LC").Dec(4))
		tr.EmitSpan(Sp(SpanRequest, 0, time.Millisecond).WithID(id).Req(17).Cls("LC"))
	})
	if allocs != 0 {
		t.Fatalf("null-sink span emit allocates %.1f per op, want 0", allocs)
	}
}

func TestWriterSinkSpanNDJSON(t *testing.T) {
	var buf bytes.Buffer
	sink := NewWriterSink(&buf)
	tr := NewTracer(fixedClock(0), sink)
	tr.EmitSpan(Sp(SpanExec, 0, time.Millisecond).Req(1).Node(2))
	d := Decision{Algo: "DSS-LC", Cluster: 0, Svc: 1}
	tr.EmitDecision(&d)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d invalid: %v", lines, err)
		}
		lines++
	}
	if lines != 2 || sink.Lines != 2 || sink.Dropped != 0 {
		t.Fatalf("lines=%d sink.Lines=%d dropped=%d", lines, sink.Lines, sink.Dropped)
	}
}

// failingWriter fails every write after the first n bytes.
type failingWriter struct{ budget int }

var errDisk = errors.New("disk full")

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.budget <= 0 {
		return 0, errDisk
	}
	if len(p) > w.budget {
		n := w.budget
		w.budget = 0
		return n, errDisk
	}
	w.budget -= len(p)
	return len(p), nil
}

// TestWriterSinkSurfacesWriteErrors pins the satellite fix: write
// failures are counted and surfaced, not silently dropped.
func TestWriterSinkSurfacesWriteErrors(t *testing.T) {
	sink := NewWriterSink(&failingWriter{budget: 0})
	tr := NewTracer(fixedClock(0), sink)
	for i := 0; i < 5; i++ {
		tr.Emit(Ev(EvStart).Req(int64(i)))
	}
	// The bufio layer absorbs writes until its buffer fills, so force
	// the flush path to observe the error deterministically.
	if err := sink.Flush(); err == nil {
		t.Fatal("flush swallowed the write error")
	}
	if sink.Err() == nil {
		t.Fatal("Err() lost the write error")
	}
	tr.Emit(Ev(EvStart).Req(99))
	if err := sink.Flush(); err == nil {
		t.Fatal("error must be sticky across flushes")
	}
	if sink.Dropped == 0 {
		t.Fatalf("dropped counter not incremented: %+v", sink.Dropped)
	}
	if sink.Lines >= 6 {
		t.Fatalf("failed records still counted as written lines: %d", sink.Lines)
	}
}
