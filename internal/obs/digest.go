package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"strings"
)

// Replay digests.
//
// The deterministic-replay contract of the simulator (internal/check)
// states that two runs of the same scenario configuration and seed must
// produce byte-identical observable output. This file supplies the two
// halves of the evidence:
//
//   - DigestSink hashes the canonical NDJSON rendering of every event,
//     span and decision a Tracer emits, in emission order, so the hash
//     covers ordering as well as content. Virtual timestamps and
//     sequence numbers are included — they are part of the contract.
//   - ReportDigest hashes a run report after normalizing the fields
//     that legitimately differ between replays (wall-clock time, sink
//     health counters that depend on which sink was attached).
//
// Both digests are SHA-256 rendered as lowercase hex.

// DigestSink hashes every record's canonical NDJSON line into a running
// SHA-256. It can optionally tee records into a second sink (e.g. a
// WriterSink) so a run can be digested and exported at once. Like the
// other sinks it reuses one scratch buffer, so steady-state recording
// does not allocate.
type DigestSink struct {
	h       hash.Hash
	scratch []byte
	records uint64

	next     Sink
	nextSpan SpanSink
	nextDec  DecisionSink
}

// NewDigestSink builds a digesting sink. next may be nil; when non-nil
// every record is forwarded to it after hashing, with span/decision
// capabilities resolved once here (same discipline as the Tracer).
func NewDigestSink(next Sink) *DigestSink {
	s := &DigestSink{h: sha256.New(), scratch: make([]byte, 0, 256), next: next}
	if next != nil {
		if ss, ok := next.(SpanSink); ok {
			s.nextSpan = ss
		}
		if ds, ok := next.(DecisionSink); ok {
			s.nextDec = ds
		}
	}
	return s
}

func (s *DigestSink) hashLine() {
	s.scratch = append(s.scratch, '\n')
	s.h.Write(s.scratch)
	s.records++
}

// Record implements Sink.
func (s *DigestSink) Record(ev Event) {
	s.scratch = AppendJSON(s.scratch[:0], ev)
	s.hashLine()
	if s.next != nil {
		s.next.Record(ev)
	}
}

// RecordSpan implements SpanSink.
func (s *DigestSink) RecordSpan(sp Span) {
	s.scratch = AppendSpanJSON(s.scratch[:0], sp)
	s.hashLine()
	if s.nextSpan != nil {
		s.nextSpan.RecordSpan(sp)
	}
}

// RecordDecision implements DecisionSink.
func (s *DigestSink) RecordDecision(d Decision) {
	s.scratch = AppendDecisionJSON(s.scratch[:0], d)
	s.hashLine()
	if s.nextDec != nil {
		s.nextDec.RecordDecision(d)
	}
}

// Records returns how many records (events + spans + decisions) were
// hashed so far.
func (s *DigestSink) Records() uint64 { return s.records }

// Sum returns the hex digest over everything recorded so far. It does
// not reset the running hash, so it may be read mid-stream.
func (s *DigestSink) Sum() string { return hex.EncodeToString(s.h.Sum(nil)) }

// ReportDigest hashes a run report into a stable hex digest after
// normalizing the fields that are allowed to differ between replays of
// the same scenario+seed: WallMs measures host speed, SinkStats
// describe the sink that happened to be attached, and the entire perf
// surface (the Perf section plus every PerfMetricPrefix-ed metric and
// series) measures the host's clock and allocator, not the run.
// Everything else — Phi, class stats, series, registry samples, event
// counts, SLO accounting — must be byte-identical for the digest to
// match, which is exactly the replay contract. A run profiled with
// internal/perf therefore digests identically to an unprofiled one.
func ReportDigest(r *Report) string {
	cp := *r
	cp.WallMs = 0
	cp.Sink = nil
	cp.Perf = nil
	cp.Series = stripPerfSeries(cp.Series)
	cp.Metrics = stripPerfMetrics(cp.Metrics)
	if cp.Schema == "" {
		cp.Schema = ReportSchema
	}
	b, err := json.Marshal(&cp)
	if err != nil {
		// A Report is plain data; marshalling cannot fail unless the
		// struct grows an unmarshalable field, which tests would catch.
		panic(fmt.Sprintf("obs: report digest marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// stripPerfSeries returns the series map without PerfMetricPrefix-ed
// keys, copying only when something must be removed (the input is the
// live report's map and must not be mutated).
func stripPerfSeries(in map[string][]float64) map[string][]float64 {
	drop := 0
	for k := range in {
		if strings.HasPrefix(k, PerfMetricPrefix) {
			drop++
		}
	}
	if drop == 0 {
		return in
	}
	out := make(map[string][]float64, len(in)-drop)
	for k, v := range in {
		if !strings.HasPrefix(k, PerfMetricPrefix) {
			out[k] = v
		}
	}
	return out
}

// stripPerfMetrics filters PerfMetricPrefix-ed samples out of the final
// registry scrape, preserving order.
func stripPerfMetrics(in []MetricSample) []MetricSample {
	keep := true
	for _, m := range in {
		if strings.HasPrefix(m.Name, PerfMetricPrefix) {
			keep = false
			break
		}
	}
	if keep {
		return in
	}
	out := make([]MetricSample, 0, len(in))
	for _, m := range in {
		if !strings.HasPrefix(m.Name, PerfMetricPrefix) {
			out = append(out, m)
		}
	}
	return out
}
