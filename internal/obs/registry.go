package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels identifies one time series within a metric family, mirroring
// the cluster/node/service label set the paper's Prometheus deployment
// scrapes. Empty fields are omitted from the rendered label string, so
// Labels is usable as a comparable map key at any granularity.
type Labels struct {
	Cluster string
	Node    string
	Shard   string
	Service string
}

// String renders the labels Prometheus-style: {cluster="c0",node="3"}.
// Empty label sets render as "". This allocates; scrape paths use the
// per-member key cached at series creation instead (see Sample.Key).
func (l Labels) String() string {
	if l == (Labels{}) {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	sep := ""
	add := func(k, v string) {
		if v == "" {
			return
		}
		b.WriteString(sep)
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(v)
		b.WriteByte('"')
		sep = ","
	}
	add("cluster", l.Cluster)
	add("node", l.Node)
	add("shard", l.Shard)
	add("service", l.Service)
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing value. It is safe for
// concurrent use: the simulation mutates it while a telemetry scrape
// reads it (float64 bits behind one atomic word, lock-free).
type Counter struct{ bits atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (must be nonnegative).
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic("obs: counter decreased")
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down. Like Counter it is safe
// for concurrent scrape-vs-emit access.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefLatencyBuckets are the default histogram bounds in milliseconds,
// bracketing the paper's ~200–400 ms LC QoS targets.
var DefLatencyBuckets = []float64{1, 2.5, 5, 10, 25, 50, 100, 200, 300, 400, 600, 1000, 2500}

// Histogram accumulates observations into fixed buckets (upper bounds,
// ascending) plus an implicit +Inf bucket. A mutex makes Observe safe
// against a concurrent scrape; the simulation hot path pays one
// uncontended lock per observation.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1, last is +Inf
	sum    float64
	n      uint64
	nans   uint64 // NaN observations dropped (they would corrupt sum)
}

// NewHistogram builds a standalone histogram (registry-free users like
// the SLO accountant). Nil bounds select DefLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value. NaN observations are dropped (counted in
// NaNs) instead of corrupting sum and the bucket layout.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	if math.IsNaN(v) {
		h.nans++
		h.mu.Unlock()
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// NaNs returns how many NaN observations were dropped.
func (h *Histogram) NaNs() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.nans
}

// Mean returns sum/count (NaN when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.n)
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the containing bucket, the way Prometheus'
// histogram_quantile does. An empty histogram or a NaN q yields NaN
// explicitly — never a panic or a fabricated 0. Observations beyond the
// last bound clamp to it.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.n == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(h.bounds) { // +Inf bucket: clamp to the last bound
			if len(h.bounds) == 0 {
				return math.NaN()
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		return lo + (h.bounds[i]-lo)*(rank-prev)/float64(c)
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is one histogram's state frozen at snapshot time.
// Counts are per-bucket (not cumulative); the last entry is +Inf.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// snapshot copies the histogram state under its lock. countsBuf is
// reused when large enough.
func (h *Histogram) snapshot(countsBuf []uint64) HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	counts := countsBuf
	if cap(counts) < len(h.counts) {
		counts = make([]uint64, len(h.counts))
	}
	counts = counts[:len(h.counts)]
	copy(counts, h.counts)
	return HistogramSnapshot{Bounds: h.bounds, Counts: counts, Sum: h.sum, Count: h.n}
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// kindName maps metricKind to its OpenMetrics type string.
var kindName = [...]string{kindCounter: "counter", kindGauge: "gauge", kindHistogram: "histogram"}

// member is one series of a family. The rendered label string and the
// fully composed sample keys are cached at creation, so a scrape costs
// zero allocations per pre-existing series (satisfying the AllocsPerRun
// gate in registry_test.go).
type member struct {
	labels   Labels
	labelStr string
	m        any
	// keys are the Gather sample keys: one entry for counters/gauges,
	// three (count/sum/p95) for histograms.
	keys [3]string
}

type family struct {
	name    string
	kind    metricKind
	members map[Labels]*member
	order   []*member // insertion order for deterministic Gather
	// hname caches the expanded histogram sample names
	// (name_count/name_sum/name_p95) so Gather never concatenates.
	hname [3]string
}

// Registry holds metric families keyed by name. Writes from the
// simulation and reads from a telemetry scrape may race: structure
// (family/member creation, Gather, Snapshot) is guarded by a mutex and
// the values themselves are atomic (or lock-guarded for histograms).
// Handles returned by Counter/Gauge/Histogram are stable and should be
// cached by hot-path callers so per-event cost is one atomic update,
// not a map lookup under lock.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
	sorted   []string // cached sort of order; nil when stale
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

func (r *Registry) family(name string, k metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: k, members: map[Labels]*member{}}
		if k == kindHistogram {
			f.hname = [3]string{name + "_count", name + "_sum", name + "_p95"}
		}
		r.families[name] = f
		r.order = append(r.order, name)
		r.sorted = nil
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
	}
	return f
}

func (f *family) member(l Labels, mk func() any) *member {
	m, ok := f.members[l]
	if !ok {
		m = &member{labels: l, labelStr: l.String(), m: mk()}
		switch f.kind {
		case kindHistogram:
			m.keys[0] = f.name + "_count" + m.labelStr
			m.keys[1] = f.name + "_sum" + m.labelStr
			m.keys[2] = f.name + "_p95" + m.labelStr
		default:
			m.keys[0] = f.name + m.labelStr
		}
		f.members[l] = m
		f.order = append(f.order, m)
	}
	return m
}

// Counter returns (creating on first use) the counter name{l}.
func (r *Registry) Counter(name string, l Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.family(name, kindCounter).member(l, func() any { return &Counter{} }).m.(*Counter)
}

// Gauge returns (creating on first use) the gauge name{l}.
func (r *Registry) Gauge(name string, l Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.family(name, kindGauge).member(l, func() any { return &Gauge{} }).m.(*Gauge)
}

// Histogram returns (creating on first use) the histogram name{l} with
// the given bucket bounds (DefLatencyBuckets when nil). Bounds are fixed
// at creation; later calls may pass nil.
func (r *Registry) Histogram(name string, l Labels, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.family(name, kindHistogram).member(l, func() any {
		return NewHistogram(bounds)
	}).m.(*Histogram)
}

// Sample is one gathered value.
type Sample struct {
	Name   string
	Labels Labels
	Value  float64

	// key is the cached full series name; empty for hand-built Samples.
	key string
}

// Key returns the full series name: name + rendered labels. Samples
// produced by Gather carry the key pre-rendered (cached on the family
// member), so calling it costs nothing; hand-built samples fall back to
// rendering.
func (s Sample) Key() string {
	if s.key != "" {
		return s.key
	}
	return s.Name + s.Labels.String()
}

// sortedNames returns the family names sorted, rebuilding the cache
// only when a family was added. Caller holds r.mu.
func (r *Registry) sortedNames() []string {
	if r.sorted == nil {
		r.sorted = append(make([]string, 0, len(r.order)), r.order...)
		sort.Strings(r.sorted)
	}
	return r.sorted
}

// Gather flattens the registry into samples, families sorted by name and
// members in creation order. Histograms expand into three samples:
// <name>_count, <name>_sum and <name>_p95 (the paper's tail statistic;
// 0 while the histogram is empty, so reports stay finite).
func (r *Registry) Gather() []Sample { return r.GatherAppend(nil) }

// GatherAppend appends the gathered samples to dst and returns it.
// Steady-state scrapes that reuse dst perform zero heap allocations:
// every sample key is cached on its family member and the family sort
// order is cached until a new family appears.
func (r *Registry) GatherAppend(dst []Sample) []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.sortedNames() {
		f := r.families[name]
		for _, mb := range f.order {
			switch m := mb.m.(type) {
			case *Counter:
				dst = append(dst, Sample{name, mb.labels, m.Value(), mb.keys[0]})
			case *Gauge:
				dst = append(dst, Sample{name, mb.labels, m.Value(), mb.keys[0]})
			case *Histogram:
				m.mu.Lock()
				count, sum := m.n, m.sum
				p95 := m.quantileLocked(0.95)
				m.mu.Unlock()
				if count == 0 {
					p95 = 0
				}
				dst = append(dst,
					Sample{f.hname[0], mb.labels, float64(count), mb.keys[0]},
					Sample{f.hname[1], mb.labels, sum, mb.keys[1]},
					Sample{f.hname[2], mb.labels, p95, mb.keys[2]},
				)
			}
		}
	}
	return dst
}

// MemberSnapshot is one series frozen at snapshot time. Hist is non-nil
// only for histogram families (Value then holds the sum).
type MemberSnapshot struct {
	Labels   Labels
	LabelStr string
	Value    float64
	Hist     *HistogramSnapshot
}

// FamilySnapshot is one metric family frozen at snapshot time.
type FamilySnapshot struct {
	Name    string
	Kind    string // "counter" | "gauge" | "histogram"
	Members []MemberSnapshot
}

// Snapshot freezes the whole registry: families sorted by name, members
// in creation order, values copied out under the registry lock so a
// telemetry scrape can safely race the running simulation. Unlike
// Gather it preserves metric kinds and full histogram bucket vectors,
// which is what the OpenMetrics encoder needs.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FamilySnapshot, 0, len(r.families))
	for _, name := range r.sortedNames() {
		f := r.families[name]
		fs := FamilySnapshot{Name: name, Kind: kindName[f.kind],
			Members: make([]MemberSnapshot, 0, len(f.order))}
		for _, mb := range f.order {
			ms := MemberSnapshot{Labels: mb.labels, LabelStr: mb.labelStr}
			switch m := mb.m.(type) {
			case *Counter:
				ms.Value = m.Value()
			case *Gauge:
				ms.Value = m.Value()
			case *Histogram:
				h := m.snapshot(nil)
				ms.Hist = &h
				ms.Value = h.Sum
			}
			fs.Members = append(fs.Members, ms)
		}
		out = append(out, fs)
	}
	return out
}
