package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Labels identifies one time series within a metric family, mirroring
// the cluster/node/service label set the paper's Prometheus deployment
// scrapes. Empty fields are omitted from the rendered label string, so
// Labels is usable as a comparable map key at any granularity.
type Labels struct {
	Cluster string
	Node    string
	Service string
}

// String renders the labels Prometheus-style: {cluster="c0",node="3"}.
// Empty label sets render as "".
func (l Labels) String() string {
	if l == (Labels{}) {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	sep := ""
	add := func(k, v string) {
		if v == "" {
			return
		}
		b.WriteString(sep)
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(v)
		b.WriteByte('"')
		sep = ","
	}
	add("cluster", l.Cluster)
	add("node", l.Node)
	add("service", l.Service)
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing value.
type Counter struct{ v float64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds d (must be nonnegative).
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic("obs: counter decreased")
	}
	c.v += d
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v }

// Gauge is a value that can go up and down.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add shifts the value by d.
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// DefLatencyBuckets are the default histogram bounds in milliseconds,
// bracketing the paper's ~200–400 ms LC QoS targets.
var DefLatencyBuckets = []float64{1, 2.5, 5, 10, 25, 50, 100, 200, 300, 400, 600, 1000, 2500}

// Histogram accumulates observations into fixed buckets (upper bounds,
// ascending) plus an implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1, last is +Inf
	sum    float64
	n      uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns sum/count (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the containing bucket, the way Prometheus'
// histogram_quantile does. Returns 0 when empty; observations beyond the
// last bound clamp to it.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(h.bounds) { // +Inf bucket: clamp to the last bound
			if len(h.bounds) == 0 {
				return 0
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		return lo + (h.bounds[i]-lo)*(rank-prev)/float64(c)
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type family struct {
	name    string
	kind    metricKind
	members map[Labels]any
	order   []Labels // insertion order for deterministic Gather
}

// Registry holds metric families keyed by name. Like the simulator it is
// single-threaded by design; handles returned by Counter/Gauge/Histogram
// are stable and should be cached by hot-path callers so per-event cost
// is one field update, not a map lookup.
type Registry struct {
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

func (r *Registry) family(name string, k metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: k, members: map[Labels]any{}}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
	}
	return f
}

func (f *family) member(l Labels, mk func() any) any {
	m, ok := f.members[l]
	if !ok {
		m = mk()
		f.members[l] = m
		f.order = append(f.order, l)
	}
	return m
}

// Counter returns (creating on first use) the counter name{l}.
func (r *Registry) Counter(name string, l Labels) *Counter {
	return r.family(name, kindCounter).member(l, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns (creating on first use) the gauge name{l}.
func (r *Registry) Gauge(name string, l Labels) *Gauge {
	return r.family(name, kindGauge).member(l, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns (creating on first use) the histogram name{l} with
// the given bucket bounds (DefLatencyBuckets when nil). Bounds are fixed
// at creation; later calls may pass nil.
func (r *Registry) Histogram(name string, l Labels, bounds []float64) *Histogram {
	return r.family(name, kindHistogram).member(l, func() any {
		if bounds == nil {
			bounds = DefLatencyBuckets
		}
		return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	}).(*Histogram)
}

// Sample is one gathered value.
type Sample struct {
	Name   string
	Labels Labels
	Value  float64
}

// Key returns the full series name: name + rendered labels.
func (s Sample) Key() string { return s.Name + s.Labels.String() }

// Gather flattens the registry into samples, families sorted by name and
// members in creation order. Histograms expand into three samples:
// <name>_count, <name>_sum and <name>_p95 (the paper's tail statistic).
func (r *Registry) Gather() []Sample {
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	var out []Sample
	for _, name := range names {
		f := r.families[name]
		for _, l := range f.order {
			switch m := f.members[l].(type) {
			case *Counter:
				out = append(out, Sample{name, l, m.Value()})
			case *Gauge:
				out = append(out, Sample{name, l, m.Value()})
			case *Histogram:
				out = append(out,
					Sample{name + "_count", l, float64(m.Count())},
					Sample{name + "_sum", l, m.Sum()},
					Sample{name + "_p95", l, m.Quantile(0.95)},
				)
			}
		}
	}
	return out
}
