package obs

import (
	"strconv"
	"time"
)

// Causal spans and scheduling-decision audit records.
//
// Events (obs.go) are flat points; a Span is an interval with an ID and
// a parent ID, so a request's end-to-end latency decomposes into named
// child intervals: sched (master queue + scheduling decision), transit
// (master→worker network), queue (worker queue wait), exec (processing,
// including the D-VPA scale latency), return (worker→user response
// transit). The engine emits children that exactly tile
// [Arrival, completion], so for every finished request
//
//	Σ child durations == root "request" span duration
//
// which is the contract internal/tanalysis and the tango-trace CLI
// build on. Spans carry the sentinel convention of Event (-1 / 0 means
// "not applicable") and the same zero-alloc discipline: emitting a span
// through the NullSink performs no heap allocation, so span hooks stay
// compiled-in at zero cost when tracing is off.
//
// A Decision is the audit record of one scheduling solve: which
// candidate workers were considered, the per-candidate cost terms
// (capacity slots per Eq. 2, transmission-delay cost per Eq. 3, link
// caps per Eq. 4, projected load for the one-shot baselines), how much
// flow each candidate received and why losers were rejected. Requests
// routed by a decision carry its ID in their "sched" span, which is how
// a QoS regression is attributed to the decision that caused it.

// Span names the engine emits. Exported so analysis code matches on
// identifiers instead of string literals.
const (
	SpanRequest     = "request" // root: arrival → user-perceived completion
	SpanSched       = "sched"   // master queue wait + scheduling decision
	SpanTransit     = "transit" // master → worker dispatch transit
	SpanQueue       = "queue"   // worker queue wait
	SpanExec        = "exec"    // processing (includes scale latency)
	SpanReturn      = "return"  // worker → user response transit
	SpanInterrupted = "interrupted"
	SpanEvicted     = "evicted"
	SpanMigrate     = "migrate" // live-migration transfer window
	SpanDVPA        = "dvpa-resize"
)

// Span is one closed interval of a request's (or component's) life.
// Build with Sp, chain the setters, then Tracer.EmitSpan.
type Span struct {
	ID     uint64 // unique per run; 0 lets EmitSpan assign one
	Parent uint64 // 0 = root
	Name   string
	Start  time.Duration // virtual time
	End    time.Duration
	Tag    string // stamped by the Tracer

	ReqID    int64 // -1 when not request-scoped
	Cluster  int   // -1 unknown
	NodeID   int   // -1 unknown
	Svc      int   // -1 unknown
	Class    string
	Decision int64  // linked scheduling decision, -1 none
	Detail   string // e.g. "abandoned", "displaced", cgroup path
}

// Duration returns End-Start.
func (s *Span) Duration() time.Duration { return s.End - s.Start }

// Sp returns a Span over [start, end] with all identifiers set to their
// sentinels. Like Ev, the builder mutates in place and the span never
// escapes (EmitSpan copies it into the sink), so the chain compiles to
// stack writes.
func Sp(name string, start, end time.Duration) *Span {
	return &Span{Name: name, Start: start, End: end,
		ReqID: -1, Cluster: -1, NodeID: -1, Svc: -1, Decision: -1}
}

// Req sets the request ID.
func (s *Span) Req(id int64) *Span { s.ReqID = id; return s }

// Node sets the worker node ID.
func (s *Span) Node(id int) *Span { s.NodeID = id; return s }

// Clu sets the cluster ID.
func (s *Span) Clu(id int) *Span { s.Cluster = id; return s }

// Service sets the service type ID.
func (s *Span) Service(id int) *Span { s.Svc = id; return s }

// Cls sets the request class name.
func (s *Span) Cls(c string) *Span { s.Class = c; return s }

// Child links the span under parent.
func (s *Span) Child(parent uint64) *Span { s.Parent = parent; return s }

// Dec links the scheduling decision that produced this span.
func (s *Span) Dec(id int64) *Span { s.Decision = id; return s }

// Note sets the detail string. Hot-path callers must pass pre-existing
// strings (no formatting) to stay allocation-free.
func (s *Span) Note(d string) *Span { s.Detail = d; return s }

// WithID forces a specific span ID (the engine pre-assigns a request's
// root ID at dispatch so children can link to it before it is emitted).
func (s *Span) WithID(id uint64) *Span { s.ID = id; return s }

// Candidate is one worker considered by a scheduling decision.
type Candidate struct {
	Node     int     `json:"node"`
	Capacity int64   `json:"cap"`                // request slots t_i^k (Eq. 2)
	CostUS   int64   `json:"cost_us,omitempty"`  // transmission-delay cost (Eq. 3)
	LinkCap  int64   `json:"link_cap,omitempty"` // link capacity bound (Eq. 4)
	Util     float64 `json:"util,omitempty"`     // projected load (one-shot baselines)
	Flow     int64   `json:"flow,omitempty"`     // requests routed here
	Reject   string  `json:"reject,omitempty"`   // why nothing was routed here
}

// Decision phases (Algorithm 2's two routing graphs).
const (
	PhaseImmediate = "immediate" // Ĝ_k: availability-capacity graph
	PhaseOverflow  = "overflow"  // Ĝ'_k: λ-scaled total-capacity graph
)

// Candidate rejection reasons.
const (
	RejectNoCapacity  = "no-capacity"  // zero availability under Eq. 2
	RejectLinkLimited = "link-limited" // link cap clamped the node below its slots
	RejectNotChosen   = "not-chosen"   // had capacity, solver preferred others
)

// Decision is the audit record of one scheduling solve. Not a hot-path
// type: one is built per batch solve (DSS-LC) or per baseline pick, and
// only when tracing or SLO accounting wants it.
type Decision struct {
	ID         int64         `json:"decision"` // unique per run; 0 lets EmitDecision assign
	At         time.Duration `json:"-"`
	Tag        string        `json:"tag,omitempty"`
	Algo       string        `json:"algo"`            // "DSS-LC", "k8s-native", ...
	Phase      string        `json:"phase,omitempty"` // "immediate" | "overflow" (Algorithm 2)
	Cluster    int           `json:"cluster"`
	Svc        int           `json:"service"`     // -1 for mixed batches
	Batch      int           `json:"batch"`       // requests offered to the solve
	Routed     int           `json:"routed"`      // requests assigned by the solve
	GraphNodes int           `json:"graph_nodes"` // MCNF graph size (0 for baselines)
	GraphEdges int           `json:"graph_edges"` //
	Candidates []Candidate   `json:"cands,omitempty"`
}

// SpanSink receives emitted spans; DecisionSink receives decision audit
// records. Every Sink shipped by this package implements both, and the
// Tracer resolves the capability once at construction, so hot-path
// emission is a nil check plus an interface call.
type SpanSink interface {
	RecordSpan(Span)
}

// DecisionSink receives scheduling-decision audit records.
type DecisionSink interface {
	RecordDecision(Decision)
}

// RecordSpan implements SpanSink.
func (NullSink) RecordSpan(Span) {}

// RecordDecision implements DecisionSink.
func (NullSink) RecordDecision(Decision) {}

// RecordSpan implements SpanSink: spans share the ring capacity with a
// second ring of their own.
func (s *RingSink) RecordSpan(sp Span) {
	if cap(s.spans) == 0 {
		s.spans = make([]Span, 0, cap(s.buf))
	}
	if len(s.spans) < cap(s.spans) {
		s.spans = append(s.spans, sp)
	} else {
		s.spans[s.spanNext] = sp
	}
	s.spanNext = (s.spanNext + 1) % cap(s.spans)
	s.spanTotal++
}

// RecordDecision implements DecisionSink (kept unbounded: decisions are
// batch-scale, not request-scale).
func (s *RingSink) RecordDecision(d Decision) { s.decisions = append(s.decisions, d) }

// SpanTotal returns how many spans were recorded (including overwritten).
func (s *RingSink) SpanTotal() uint64 { return s.spanTotal }

// Spans returns the retained spans in emission order.
func (s *RingSink) Spans() []Span {
	if len(s.spans) < cap(s.spans) || cap(s.spans) == 0 {
		out := make([]Span, len(s.spans))
		copy(out, s.spans)
		return out
	}
	out := make([]Span, 0, len(s.spans))
	out = append(out, s.spans[s.spanNext:]...)
	out = append(out, s.spans[:s.spanNext]...)
	return out
}

// Decisions returns every recorded decision in emission order.
func (s *RingSink) Decisions() []Decision { return s.decisions }

// RecordSpan implements SpanSink: one NDJSON line per span.
func (s *WriterSink) RecordSpan(sp Span) {
	s.scratch = AppendSpanJSON(s.scratch[:0], sp)
	s.scratch = append(s.scratch, '\n')
	s.write()
}

// RecordDecision implements DecisionSink: one NDJSON line per decision.
func (s *WriterSink) RecordDecision(d Decision) {
	s.scratch = AppendDecisionJSON(s.scratch[:0], d)
	s.scratch = append(s.scratch, '\n')
	s.write()
}

// AppendSpanJSON appends the span's JSON object (no trailing newline) to
// dst. Sentinel identifiers (-1, parent 0) and empty strings are
// omitted; times are virtual microseconds. A span line is distinguished
// from an event line by the presence of "span" and "name".
func AppendSpanJSON(dst []byte, sp Span) []byte {
	dst = append(dst, `{"span":`...)
	dst = strconv.AppendUint(dst, sp.ID, 10)
	if sp.Parent != 0 {
		dst = append(dst, `,"parent":`...)
		dst = strconv.AppendUint(dst, sp.Parent, 10)
	}
	dst = append(dst, `,"name":"`...)
	dst = append(dst, sp.Name...)
	dst = append(dst, `","start_us":`...)
	dst = strconv.AppendInt(dst, int64(sp.Start/time.Microsecond), 10)
	dst = append(dst, `,"end_us":`...)
	dst = strconv.AppendInt(dst, int64(sp.End/time.Microsecond), 10)
	if sp.Tag != "" {
		dst = appendStrField(dst, "tag", sp.Tag)
	}
	if sp.ReqID >= 0 {
		dst = append(dst, `,"req":`...)
		dst = strconv.AppendInt(dst, sp.ReqID, 10)
	}
	if sp.Cluster >= 0 {
		dst = append(dst, `,"cluster":`...)
		dst = strconv.AppendInt(dst, int64(sp.Cluster), 10)
	}
	if sp.NodeID >= 0 {
		dst = append(dst, `,"node":`...)
		dst = strconv.AppendInt(dst, int64(sp.NodeID), 10)
	}
	if sp.Svc >= 0 {
		dst = append(dst, `,"service":`...)
		dst = strconv.AppendInt(dst, int64(sp.Svc), 10)
	}
	if sp.Class != "" {
		dst = appendStrField(dst, "class", sp.Class)
	}
	if sp.Decision >= 0 {
		dst = append(dst, `,"decision":`...)
		dst = strconv.AppendInt(dst, sp.Decision, 10)
	}
	if sp.Detail != "" {
		dst = appendStrField(dst, "detail", sp.Detail)
	}
	return append(dst, '}')
}

// AppendDecisionJSON appends the decision's JSON object (no trailing
// newline) to dst. A decision line is distinguished by "decision" plus
// "algo".
func AppendDecisionJSON(dst []byte, d Decision) []byte {
	dst = append(dst, `{"decision":`...)
	dst = strconv.AppendInt(dst, d.ID, 10)
	dst = append(dst, `,"at_us":`...)
	dst = strconv.AppendInt(dst, int64(d.At/time.Microsecond), 10)
	dst = appendStrField(dst, "algo", d.Algo)
	if d.Phase != "" {
		dst = appendStrField(dst, "phase", d.Phase)
	}
	if d.Tag != "" {
		dst = appendStrField(dst, "tag", d.Tag)
	}
	if d.Cluster >= 0 {
		dst = append(dst, `,"cluster":`...)
		dst = strconv.AppendInt(dst, int64(d.Cluster), 10)
	}
	if d.Svc >= 0 {
		dst = append(dst, `,"service":`...)
		dst = strconv.AppendInt(dst, int64(d.Svc), 10)
	}
	dst = append(dst, `,"batch":`...)
	dst = strconv.AppendInt(dst, int64(d.Batch), 10)
	dst = append(dst, `,"routed":`...)
	dst = strconv.AppendInt(dst, int64(d.Routed), 10)
	if d.GraphNodes > 0 {
		dst = append(dst, `,"graph_nodes":`...)
		dst = strconv.AppendInt(dst, int64(d.GraphNodes), 10)
		dst = append(dst, `,"graph_edges":`...)
		dst = strconv.AppendInt(dst, int64(d.GraphEdges), 10)
	}
	if len(d.Candidates) > 0 {
		dst = append(dst, `,"cands":[`...)
		for i, c := range d.Candidates {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"node":`...)
			dst = strconv.AppendInt(dst, int64(c.Node), 10)
			dst = append(dst, `,"cap":`...)
			dst = strconv.AppendInt(dst, c.Capacity, 10)
			if c.CostUS != 0 {
				dst = append(dst, `,"cost_us":`...)
				dst = strconv.AppendInt(dst, c.CostUS, 10)
			}
			if c.LinkCap != 0 {
				dst = append(dst, `,"link_cap":`...)
				dst = strconv.AppendInt(dst, c.LinkCap, 10)
			}
			if c.Util != 0 {
				dst = append(dst, `,"util":`...)
				dst = strconv.AppendFloat(dst, c.Util, 'g', -1, 64)
			}
			if c.Flow != 0 {
				dst = append(dst, `,"flow":`...)
				dst = strconv.AppendInt(dst, c.Flow, 10)
			}
			if c.Reject != "" {
				dst = appendStrField(dst, "reject", c.Reject)
			}
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	return append(dst, '}')
}

// NewSpanID reserves a span ID without emitting anything (the engine
// pre-assigns a request's root span ID so children emitted earlier can
// link to it). Safe on a nil receiver (returns 0, the "no span"
// sentinel).
func (t *Tracer) NewSpanID() uint64 {
	if t == nil {
		return 0
	}
	t.spanSeq++
	return t.spanSeq
}

// RequestSpanID reserves the root span ID for a request, honoring the
// installed head-based sampler: an unsampled request gets 0 (the "no
// span" sentinel every child-span emission site already guards on), so
// its whole span tree is skipped atomically. Deterministic — re-asking
// for the same request returns the same decision — and with no sampler
// (or rate 1.0) it is exactly NewSpanID, so unsampled runs emit
// byte-identical streams. Safe on a nil receiver.
func (t *Tracer) RequestSpanID(reqID int64) uint64 {
	if t == nil {
		return 0
	}
	if !t.sampler.Sampled(reqID) {
		return 0
	}
	t.spanSeq++
	return t.spanSeq
}

// EmitSpan stamps the span (ID when unset, tag), bumps the span counter
// and forwards a copy to the sink when it understands spans. Safe on a
// nil receiver. Like Emit, the pointer parameter does not escape.
func (t *Tracer) EmitSpan(sp *Span) {
	if t == nil {
		return
	}
	if sp.ID == 0 {
		t.spanSeq++
		sp.ID = t.spanSeq
	}
	sp.Tag = t.tag
	t.spans++
	if t.spanSink != nil {
		t.spanSink.RecordSpan(*sp)
	}
}

// EmitDecision stamps the decision (ID when unset, virtual time, tag),
// bumps the decision counter and forwards a copy to the sink. The
// assigned ID is left in d.ID so callers can link it to request spans.
// Safe on a nil receiver (d.ID is then left at 0).
func (t *Tracer) EmitDecision(d *Decision) {
	if t == nil {
		return
	}
	if d.ID == 0 {
		t.decSeq++
		d.ID = t.decSeq
	}
	d.At = t.now()
	d.Tag = t.tag
	t.decisions++
	if t.decSink != nil {
		t.decSink.RecordDecision(*d)
	}
}

// SpanCount returns the number of emitted spans. Nil-safe.
func (t *Tracer) SpanCount() uint64 {
	if t == nil {
		return 0
	}
	return t.spans
}

// DecisionCount returns the number of emitted decisions. Nil-safe.
func (t *Tracer) DecisionCount() uint64 {
	if t == nil {
		return 0
	}
	return t.decisions
}
