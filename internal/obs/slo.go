package obs

import (
	"math"
	"sort"
	"time"
)

// finiteOrZero maps the NaN an empty Histogram quantile reports to 0,
// keeping JSON report documents finite.
func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Per-service SLO accounting: rolling Φ over a sliding window, run-level
// latency percentiles from a Histogram, and violation episodes — maximal
// stretches of QoS-violating outcomes — annotated with the scheduling
// decisions active around them. This is the in-process half of the
// explainability layer; the tango-trace CLI recomputes the same
// episodes offline from the NDJSON stream.

// SLOConfig shapes the accountant. Zero values select the defaults.
type SLOConfig struct {
	// Window is the rolling-Φ sliding window (default 5 s).
	Window time.Duration
	// Gap closes an episode when the next violation is further away
	// than this (default 1 s).
	Gap time.Duration
	// Lookback attributes decisions made up to this long before an
	// episode's first violation (default 1 s): the decision that routed
	// a request precedes its violating completion.
	Lookback time.Duration
	// MaxEpisodeDecisions caps the decision IDs retained per episode
	// (default 64); the total count is always exact.
	MaxEpisodeDecisions int
}

func (c *SLOConfig) defaults() {
	if c.Window <= 0 {
		c.Window = 5 * time.Second
	}
	if c.Gap <= 0 {
		c.Gap = time.Second
	}
	if c.Lookback <= 0 {
		c.Lookback = time.Second
	}
	if c.MaxEpisodeDecisions <= 0 {
		c.MaxEpisodeDecisions = 64
	}
}

// Episode is one violation episode: Start/End bound the violating
// outcomes, Violations counts them, Decisions lists the scheduling
// decisions issued in [Start-Lookback, End] (capped; DecisionTotal is
// exact).
type Episode struct {
	Start         time.Duration
	End           time.Duration
	Violations    int64
	Decisions     []int64
	DecisionTotal int64
}

type satSample struct {
	at  time.Duration
	sat bool
}

type decisionStamp struct {
	id int64
	at time.Duration
}

// ServiceSLO is the per-service accounting state.
type ServiceSLO struct {
	Service int
	Name    string
	Class   string

	Resolved  int64 // completed + abandoned LC outcomes observed
	Completed int64
	Satisfied int64
	Violated  int64 // resolved - satisfied

	Latency  *Histogram // completed-outcome latency, ms
	Episodes []Episode

	roll     []satSample
	open     bool
	epStart  time.Duration
	epLast   time.Duration
	epCount  int64
	epDecs   []int64
	epDecTot int64
	epMaxDec int64 // highest decision ID already attributed
}

// Phi returns the cumulative satisfaction rate over resolved outcomes
// (1 when nothing resolved).
func (s *ServiceSLO) Phi() float64 {
	if s.Resolved == 0 {
		return 1
	}
	return float64(s.Satisfied) / float64(s.Resolved)
}

// RollingPhi returns the satisfaction rate over the sliding window as
// of the last observation (1 when the window is empty).
func (s *ServiceSLO) RollingPhi() float64 {
	if len(s.roll) == 0 {
		return 1
	}
	sat := 0
	for _, x := range s.roll {
		if x.sat {
			sat++
		}
	}
	return float64(sat) / float64(len(s.roll))
}

// SLOAccountant tracks every service's SLO state. Single-threaded like
// the rest of the stack.
type SLOAccountant struct {
	cfg      SLOConfig
	services map[int]*ServiceSLO
	order    []int
	recent   []decisionStamp // recent decisions, pruned by time
}

// NewSLOAccountant builds an accountant (cfg zero value = defaults).
func NewSLOAccountant(cfg SLOConfig) *SLOAccountant {
	cfg.defaults()
	return &SLOAccountant{cfg: cfg, services: map[int]*ServiceSLO{}}
}

func (a *SLOAccountant) service(svc int, name, class string) *ServiceSLO {
	s, ok := a.services[svc]
	if !ok {
		s = &ServiceSLO{Service: svc, Name: name, Class: class,
			Latency: NewHistogram(nil)}
		a.services[svc] = s
		a.order = append(a.order, svc)
	}
	return s
}

// NoteDecision records a scheduling decision for later episode
// attribution. IDs must be nondecreasing (the Tracer's are).
func (a *SLOAccountant) NoteDecision(id int64, at time.Duration) {
	a.recent = append(a.recent, decisionStamp{id, at})
	// Prune anything no open or future episode could still reference.
	cut := at - a.cfg.Gap - a.cfg.Lookback
	i := 0
	for i < len(a.recent) && a.recent[i].at < cut {
		i++
	}
	if i > 0 {
		a.recent = append(a.recent[:0], a.recent[i:]...)
	}
	// Feed open episodes immediately so attribution survives pruning.
	for _, svc := range a.order {
		if s := a.services[svc]; s.open {
			a.attribute(s, at)
		}
	}
}

// attribute appends to s.epDecs every recent decision not yet counted
// whose time falls inside the episode's attribution window ending at
// `until`.
func (a *SLOAccountant) attribute(s *ServiceSLO, until time.Duration) {
	from := s.epStart - a.cfg.Lookback
	for _, d := range a.recent {
		if d.id <= s.epMaxDec || d.at < from || d.at > until {
			continue
		}
		s.epMaxDec = d.id
		s.epDecTot++
		if len(s.epDecs) < a.cfg.MaxEpisodeDecisions {
			s.epDecs = append(s.epDecs, d.id)
		}
	}
}

// Observe feeds one resolved LC outcome. satisfied=false covers both
// QoS-violating completions and abandonments; completed gates the
// latency histogram (abandonment ages would skew the tail).
func (a *SLOAccountant) Observe(svc int, name, class string, at time.Duration, latencyMs float64, completed, satisfied bool) {
	s := a.service(svc, name, class)
	s.Resolved++
	if completed {
		s.Completed++
		s.Latency.Observe(latencyMs)
	}
	if satisfied {
		s.Satisfied++
	} else {
		s.Violated++
		a.violation(s, at)
	}
	// Rolling window.
	s.roll = append(s.roll, satSample{at, satisfied})
	cut := at - a.cfg.Window
	i := 0
	for i < len(s.roll) && s.roll[i].at <= cut {
		i++
	}
	if i > 0 {
		s.roll = append(s.roll[:0], s.roll[i:]...)
	}
}

func (a *SLOAccountant) violation(s *ServiceSLO, at time.Duration) {
	if s.open && at-s.epLast > a.cfg.Gap {
		a.close(s)
	}
	if !s.open {
		s.open = true
		s.epStart = at
		s.epCount = 0
		s.epDecs = nil
		s.epDecTot = 0
		s.epMaxDec = 0
	}
	s.epLast = at
	s.epCount++
	a.attribute(s, at)
}

func (a *SLOAccountant) close(s *ServiceSLO) {
	if !s.open {
		return
	}
	a.attribute(s, s.epLast)
	s.Episodes = append(s.Episodes, Episode{
		Start: s.epStart, End: s.epLast,
		Violations: s.epCount,
		Decisions:  s.epDecs, DecisionTotal: s.epDecTot,
	})
	s.open = false
	s.epDecs = nil
}

// Finalize closes every open episode (call once at end of run).
func (a *SLOAccountant) Finalize() {
	for _, svc := range a.order {
		a.close(a.services[svc])
	}
}

// Services returns the per-service state in first-seen order.
func (a *SLOAccountant) Services() []*ServiceSLO {
	out := make([]*ServiceSLO, 0, len(a.order))
	for _, svc := range a.order {
		out = append(out, a.services[svc])
	}
	return out
}

// EpisodeReport is the JSON shape of one violation episode.
type EpisodeReport struct {
	StartMs       float64 `json:"start_ms"`
	EndMs         float64 `json:"end_ms"`
	Violations    int64   `json:"violations"`
	Decisions     []int64 `json:"decisions,omitempty"`
	DecisionTotal int64   `json:"decision_total,omitempty"`
}

// SLOReport is the JSON shape of one service's SLO accounting.
type SLOReport struct {
	Service    string          `json:"service"`
	Class      string          `json:"class,omitempty"`
	Resolved   int64           `json:"resolved"`
	Completed  int64           `json:"completed"`
	Satisfied  int64           `json:"satisfied"`
	Violated   int64           `json:"violated"`
	Phi        float64         `json:"phi"`
	RollingPhi float64         `json:"rolling_phi"`
	P95Ms      float64         `json:"p95_ms"`
	P99Ms      float64         `json:"p99_ms"`
	Episodes   []EpisodeReport `json:"episodes,omitempty"`
}

// Snapshot renders the accounting for the run report, services sorted
// by name for stable output. Call Finalize first.
func (a *SLOAccountant) Snapshot() []SLOReport {
	out := make([]SLOReport, 0, len(a.services))
	for _, svc := range a.order {
		s := a.services[svc]
		r := SLOReport{
			Service: s.Name, Class: s.Class,
			Resolved: s.Resolved, Completed: s.Completed,
			Satisfied: s.Satisfied, Violated: s.Violated,
			Phi: s.Phi(), RollingPhi: s.RollingPhi(),
			P95Ms: finiteOrZero(s.Latency.Quantile(0.95)),
			P99Ms: finiteOrZero(s.Latency.Quantile(0.99)),
		}
		for _, ep := range s.Episodes {
			r.Episodes = append(r.Episodes, EpisodeReport{
				StartMs:    float64(ep.Start) / float64(time.Millisecond),
				EndMs:      float64(ep.End) / float64(time.Millisecond),
				Violations: ep.Violations,
				Decisions:  ep.Decisions, DecisionTotal: ep.DecisionTotal,
			})
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Service < out[j].Service })
	return out
}
