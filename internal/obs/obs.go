// Package obs is the observability substrate of the reproduction: a
// simulation-time tracer emitting structured lifecycle events, a labeled
// metric registry the 800 ms collection loop scrapes, and the run-report
// document written at the end of a simulation.
//
// The tracer stands in for the per-request logging a production
// deployment would ship to a tracing backend. Every major decision point
// of the stack — request arrival, dispatch, queueing, admission,
// completion, abandonment, BE compression/eviction/boost, D-VPA cgroup
// writes, DSS-LC flow solves, QoS re-assurance adjustments, node
// failures and pod lifecycle transitions — emits one Event. Spans are
// reconstructed by joining events on the request ID: arrival → dispatch
// → queue → start → finish/abandon share ReqID, and the At timestamps
// give the per-stage dwell times.
//
// Events are timestamped with *virtual* time from the simulator clock,
// so traces are bit-reproducible for a fixed seed.
//
// Sinks are pluggable: NullSink discards (and must stay allocation-free
// on the hot path — the engine benchmarks enforce this), RingSink keeps
// the most recent events in memory, WriterSink streams NDJSON.
package obs

import (
	"bufio"
	"io"
	"strconv"
	"time"
)

// Kind enumerates the event types the stack emits.
type Kind uint8

const (
	// Request lifecycle (engine + core).
	EvArrival  Kind = iota // request accepted at its cluster master
	EvDispatch             // routed to a worker (Value = transit delay ms)
	EvQueue                // not admitted, parked in a node queue (Aux = queue length)
	EvStart                // admitted and running (Value = alloc mCPU, Aux = wait µs)
	EvFinish               // completed (Value = latency ms, Aux = 1 if QoS satisfied)
	EvAbandon              // LC abandoned before starting (Value = age ms)
	// HRM preemption / boost mechanics (§4.1).
	EvCompress // BE victim compressed (Value = mCPU cut, Aux = BW cut)
	EvEvict    // BE evicted and requeued for restart (Value = MiB freed, Aux = restarts)
	EvBoost    // BE granted idle CPU (Value = mCPU granted)
	// Control-plane decisions.
	EvFlowSolve // DSS-LC batch solve (Aux = batch size, Value = routed count)
	EvReassure  // QoS re-assurance override change (Value = slack δ, Aux = new mCPU)
	EvCgroup    // cgroup limit write (Detail = path, Value = mCPU quota, Aux = MiB)
	EvPod       // K8s pod lifecycle transition (Detail = "EVENT/Phase pod-name")
	// Topology faults.
	EvNodeFail    // worker failure (Aux = displaced requests)
	EvNodeRecover // worker recovery
	// Chaos and migration (internal/chaos). Appended at the end of the
	// enum so chaos-free runs keep their event numbering — and therefore
	// their replay digests — unchanged.
	EvChaos   // fault applied/cleared (Detail = fault kind, Aux = 1 apply / 0 clear)
	EvMigrate // live migration departs (Node = source, Aux = destination, Value = transfer ms)
	EvDefrag  // defragmentation pass (Value = pods moved, Aux = donor nodes)

	kindCount // sentinel
)

var kindNames = [kindCount]string{
	EvArrival:     "arrival",
	EvDispatch:    "dispatch",
	EvQueue:       "queue",
	EvStart:       "start",
	EvFinish:      "finish",
	EvAbandon:     "abandon",
	EvCompress:    "be-compress",
	EvEvict:       "be-evict",
	EvBoost:       "be-boost",
	EvFlowSolve:   "flow-solve",
	EvReassure:    "reassure",
	EvCgroup:      "cgroup-write",
	EvPod:         "pod",
	EvNodeFail:    "node-fail",
	EvNodeRecover: "node-recover",
	EvChaos:       "chaos",
	EvMigrate:     "migrate",
	EvDefrag:      "defrag",
}

// String returns the stable NDJSON name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Kinds lists every event kind in declaration order.
func Kinds() []Kind {
	out := make([]Kind, kindCount)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Event is one trace record. Identifier fields use -1 for "not
// applicable"; build events with Ev so the sentinels are set, then chain
// the value-receiver setters. The struct is plain data and is passed by
// value everywhere, so emitting with the null sink performs no heap
// allocation.
type Event struct {
	Seq     uint64        // stamped by the Tracer, unique per run
	At      time.Duration // virtual time, stamped by the Tracer
	Kind    Kind
	Tag     string  // run tag (distinguishes systems sharing one sink)
	ReqID   int64   // request ID, -1 when not request-scoped
	Cluster int     // cluster ID, -1 when unknown
	NodeID  int     // worker node ID, -1 when unknown
	Svc     int     // service type ID, -1 when unknown
	Class   string  // "LC" / "BE" / ""
	Value   float64 // kind-specific measurement (see Kind docs)
	Aux     int64   // kind-specific auxiliary integer
	Detail  string  // kind-specific note (cgroup path, grow/shrink, ...)
}

// Ev returns an Event of the given kind with all identifier fields set
// to the -1 sentinel. The pointer-receiver builder mutates in place: the
// event never escapes (Emit copies it into the sink), so the whole chain
// compiles to stack writes rather than repeated struct copies — that, not
// style, is why the setters are pointer methods.
func Ev(k Kind) *Event {
	return &Event{Kind: k, ReqID: -1, Cluster: -1, NodeID: -1, Svc: -1}
}

// Req sets the request ID.
func (e *Event) Req(id int64) *Event { e.ReqID = id; return e }

// Node sets the worker node ID.
func (e *Event) Node(id int) *Event { e.NodeID = id; return e }

// Clu sets the cluster ID.
func (e *Event) Clu(id int) *Event { e.Cluster = id; return e }

// Service sets the service type ID.
func (e *Event) Service(id int) *Event { e.Svc = id; return e }

// Cls sets the request class name.
func (e *Event) Cls(c string) *Event { e.Class = c; return e }

// Val sets the kind-specific measurement.
func (e *Event) Val(v float64) *Event { e.Value = v; return e }

// Au sets the kind-specific auxiliary integer.
func (e *Event) Au(v int64) *Event { e.Aux = v; return e }

// Note sets the kind-specific detail string. Hot-path callers must pass
// only pre-existing strings (no formatting) to stay allocation-free.
func (e *Event) Note(s string) *Event { e.Detail = s; return e }

// Sink receives every emitted event. Implementations must not retain
// pointers into the event (it is a value) and are called synchronously
// from the simulation loop.
type Sink interface {
	Record(Event)
}

// NullSink discards every event. Recording through it is allocation-free,
// so tracing hooks can stay compiled-in at zero cost (the
// BenchmarkEngine* harness pins this down).
type NullSink struct{}

// Record implements Sink.
func (NullSink) Record(Event) {}

// RingSink keeps the most recent events in a fixed-capacity ring, plus
// a second ring of spans and every decision record (span.go).
type RingSink struct {
	buf   []Event
	next  int
	total uint64

	spans     []Span
	spanNext  int
	spanTotal uint64
	decisions []Decision
}

// NewRingSink creates a ring holding up to capacity events.
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		capacity = 1
	}
	return &RingSink{buf: make([]Event, 0, capacity)}
}

// Record implements Sink.
func (s *RingSink) Record(ev Event) {
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, ev)
	} else {
		s.buf[s.next] = ev
	}
	s.next = (s.next + 1) % cap(s.buf)
	s.total++
}

// Total returns how many events were recorded (including overwritten).
func (s *RingSink) Total() uint64 { return s.total }

// Events returns the retained events in emission order.
func (s *RingSink) Events() []Event {
	if len(s.buf) < cap(s.buf) {
		out := make([]Event, len(s.buf))
		copy(out, s.buf)
		return out
	}
	out := make([]Event, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// WriterSink streams events as NDJSON: one JSON object per line. It
// buffers internally and reuses one scratch buffer per line, so steady-
// state emission does not allocate. Write failures do not stop the
// simulation: the line is dropped, Dropped is incremented and the first
// error is retained for Err — callers surface both in the run report.
type WriterSink struct {
	w       *bufio.Writer
	scratch []byte
	err     error
	// Lines counts records written; Dropped counts records lost to
	// write errors (disk full, closed pipe, ...).
	Lines   uint64
	Dropped uint64
}

// NewWriterSink wraps w in a buffered NDJSON encoder. Call Flush before
// inspecting the output.
func NewWriterSink(w io.Writer) *WriterSink {
	return &WriterSink{w: bufio.NewWriterSize(w, 64<<10), scratch: make([]byte, 0, 256)}
}

// Record implements Sink.
func (s *WriterSink) Record(ev Event) {
	s.scratch = AppendJSON(s.scratch[:0], ev)
	s.scratch = append(s.scratch, '\n')
	s.write()
}

// write flushes the scratch line to the buffered writer, accounting
// drops instead of silently ignoring errors (bufio errors are sticky,
// so after the first failure every subsequent record counts as
// dropped).
func (s *WriterSink) write() {
	if _, err := s.w.Write(s.scratch); err != nil {
		s.Dropped++
		if s.err == nil {
			s.err = err
		}
		return
	}
	s.Lines++
}

// Err returns the first write error encountered (nil if none).
func (s *WriterSink) Err() error { return s.err }

// Flush drains the internal buffer to the underlying writer.
func (s *WriterSink) Flush() error {
	if err := s.w.Flush(); err != nil {
		if s.err == nil {
			s.err = err
		}
		return err
	}
	return s.err
}

// AppendJSON appends the event's JSON object (no trailing newline) to
// dst and returns the extended slice. Identifier fields equal to the -1
// sentinel and empty strings are omitted; at_us is virtual time in
// microseconds.
func AppendJSON(dst []byte, ev Event) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, ev.Seq, 10)
	dst = append(dst, `,"at_us":`...)
	dst = strconv.AppendInt(dst, int64(ev.At/time.Microsecond), 10)
	dst = append(dst, `,"kind":"`...)
	dst = append(dst, ev.Kind.String()...)
	dst = append(dst, '"')
	if ev.Tag != "" {
		dst = appendStrField(dst, "tag", ev.Tag)
	}
	if ev.ReqID >= 0 {
		dst = append(dst, `,"req":`...)
		dst = strconv.AppendInt(dst, ev.ReqID, 10)
	}
	if ev.Cluster >= 0 {
		dst = append(dst, `,"cluster":`...)
		dst = strconv.AppendInt(dst, int64(ev.Cluster), 10)
	}
	if ev.NodeID >= 0 {
		dst = append(dst, `,"node":`...)
		dst = strconv.AppendInt(dst, int64(ev.NodeID), 10)
	}
	if ev.Svc >= 0 {
		dst = append(dst, `,"service":`...)
		dst = strconv.AppendInt(dst, int64(ev.Svc), 10)
	}
	if ev.Class != "" {
		dst = appendStrField(dst, "class", ev.Class)
	}
	if ev.Value != 0 {
		dst = append(dst, `,"value":`...)
		dst = strconv.AppendFloat(dst, ev.Value, 'g', -1, 64)
	}
	if ev.Aux != 0 {
		dst = append(dst, `,"aux":`...)
		dst = strconv.AppendInt(dst, ev.Aux, 10)
	}
	if ev.Detail != "" {
		dst = appendStrField(dst, "detail", ev.Detail)
	}
	return append(dst, '}')
}

func appendStrField(dst []byte, name, v string) []byte {
	dst = append(dst, ',', '"')
	dst = append(dst, name...)
	dst = append(dst, `":"`...)
	for i := 0; i < len(v); i++ {
		c := v[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c < 0x20:
			dst = append(dst, `\u00`...)
			const hex = "0123456789abcdef"
			dst = append(dst, hex[c>>4], hex[c&0xf])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

// Tracer stamps, counts and forwards events to its sink. A nil *Tracer
// is a valid disabled tracer: Enabled reports false and Emit is a no-op,
// so call sites read
//
//	if tr := e.tracer; tr.Enabled() {
//		tr.Emit(obs.Ev(obs.EvStart).Req(id)...)
//	}
//
// and compile to a nil check when tracing is off. Tracer is not safe for
// concurrent use; the simulation is single-threaded by design.
type Tracer struct {
	now    func() time.Duration
	sink   Sink
	tag    string
	seq    uint64
	counts [kindCount]uint64

	// Span/decision support (span.go). The sink's capabilities are
	// resolved once here so EmitSpan/EmitDecision cost a nil check, not
	// a per-call type assertion.
	spanSink  SpanSink
	decSink   DecisionSink
	spanSeq   uint64
	decSeq    int64
	spans     uint64
	decisions uint64

	// sampler, when set, gates root span reservation per request
	// (RequestSpanID in span.go). Nil keeps every span.
	sampler *Sampler
}

// SetSampler installs a head-based span sampler (nil keeps every
// span). Safe on a nil receiver.
func (t *Tracer) SetSampler(s *Sampler) {
	if t != nil {
		t.sampler = s
	}
}

// Sampler returns the installed span sampler (nil when unsampled).
func (t *Tracer) Sampler() *Sampler {
	if t == nil {
		return nil
	}
	return t.sampler
}

// NewTracer builds a tracer over a virtual clock and a sink. A nil sink
// falls back to NullSink (events are still counted for the run report).
func NewTracer(now func() time.Duration, sink Sink) *Tracer {
	if now == nil {
		panic("obs: NewTracer requires a clock")
	}
	if sink == nil {
		sink = NullSink{}
	}
	t := &Tracer{now: now, sink: sink}
	if ss, ok := sink.(SpanSink); ok {
		t.spanSink = ss
	}
	if ds, ok := sink.(DecisionSink); ok {
		t.decSink = ds
	}
	return t
}

// SetTag stamps every subsequent event with tag (used when multiple
// systems share one sink, e.g. tango-bench suites).
func (t *Tracer) SetTag(tag string) { t.tag = tag }

// Enabled reports whether the tracer is live. Safe on a nil receiver.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit stamps sequence number, virtual time and tag, bumps the per-kind
// counter and forwards a copy to the sink. Safe on a nil receiver
// (no-op). The pointer parameter does not escape, so events built inline
// with Ev(...) stay on the caller's stack.
func (t *Tracer) Emit(ev *Event) {
	if t == nil {
		return
	}
	ev.Seq = t.seq
	t.seq++
	ev.At = t.now()
	ev.Tag = t.tag
	if int(ev.Kind) < len(t.counts) {
		t.counts[ev.Kind]++
	}
	t.sink.Record(*ev)
}

// Count returns how many events of kind k were emitted.
func (t *Tracer) Count(k Kind) uint64 {
	if t == nil || int(k) >= len(t.counts) {
		return 0
	}
	return t.counts[k]
}

// Emitted returns the total number of emitted events.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	return t.seq
}

// Counts returns the per-kind event counts keyed by kind name, omitting
// zero entries. Nil-safe (returns nil).
func (t *Tracer) Counts() map[string]uint64 {
	if t == nil {
		return nil
	}
	out := map[string]uint64{}
	for k, c := range t.counts {
		if c > 0 {
			out[Kind(k).String()] = c
		}
	}
	return out
}
