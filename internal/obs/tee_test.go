package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func teeEvent(seq uint64) Event {
	ev := *Ev(EvArrival).Req(int64(seq)).Clu(0)
	ev.Seq = seq
	ev.At = time.Duration(seq) * time.Millisecond
	return ev
}

func TestTeeSinkForwardsAndStreams(t *testing.T) {
	ring := NewRingSink(16)
	tee := NewTeeSink(ring, 0)
	sub := tee.Subscribe(16, false)

	tee.Record(teeEvent(1))
	tee.RecordSpan(Span{ID: 7, Name: "request", ReqID: 1, Cluster: -1, NodeID: -1, Svc: -1})
	tee.RecordDecision(Decision{ID: 3, Algo: "DSS-LC", Cluster: -1, Svc: -1})

	// Primary sink saw everything (tee must not perturb the chain).
	if got := len(ring.Events()); got != 1 {
		t.Fatalf("ring events = %d, want 1", got)
	}
	if got := len(ring.Spans()); got != 1 {
		t.Fatalf("ring spans = %d, want 1", got)
	}

	// Subscriber got one valid NDJSON line per record.
	sub.Close()
	var lines [][]byte
	for line := range sub.Lines() {
		lines = append(lines, line)
	}
	if len(lines) != 3 {
		t.Fatalf("subscriber lines = %d, want 3", len(lines))
	}
	for i, line := range lines {
		if !bytes.HasSuffix(line, []byte("\n")) {
			t.Fatalf("line %d not newline-terminated: %q", i, line)
		}
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("line %d invalid JSON: %v (%q)", i, err, line)
		}
	}
	if tee.Lines() != 3 || tee.Dropped() != 0 {
		t.Fatalf("lines/dropped = %d/%d, want 3/0", tee.Lines(), tee.Dropped())
	}
}

func TestTeeSinkSlowReaderDropsNotStalls(t *testing.T) {
	tee := NewTeeSink(nil, 0)
	sub := tee.Subscribe(4, false) // tiny buffer, nobody reading

	const n = 100
	done := make(chan struct{})
	go func() {
		for i := uint64(0); i < n; i++ {
			tee.Record(teeEvent(i))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("emitter stalled behind a slow subscriber")
	}

	if got := sub.Dropped(); got != n-4 {
		t.Fatalf("subscriber dropped = %d, want %d", got, n-4)
	}
	if got := tee.Dropped(); got != n-4 {
		t.Fatalf("aggregate dropped = %d, want %d", got, n-4)
	}
	sub.Close()
	got := 0
	for range sub.Lines() {
		got++
	}
	if got != 4 {
		t.Fatalf("delivered lines = %d, want 4", got)
	}
}

func TestTeeSinkBacklogReplay(t *testing.T) {
	tee := NewTeeSink(nil, 8)
	for i := uint64(0); i < 20; i++ {
		tee.Record(teeEvent(i))
	}
	// Late subscriber asking for backlog sees the most recent 8 lines,
	// oldest first.
	sub := tee.Subscribe(16, true)
	sub.Close()
	var seqs []uint64
	for line := range sub.Lines() {
		var m struct {
			Seq uint64 `json:"seq"`
		}
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, m.Seq)
	}
	if len(seqs) != 8 {
		t.Fatalf("backlog lines = %d, want 8", len(seqs))
	}
	for i, s := range seqs {
		if want := uint64(12 + i); s != want {
			t.Fatalf("backlog[%d] seq = %d, want %d", i, s, want)
		}
	}

	// A subscriber without backlog starts empty.
	fresh := tee.Subscribe(16, false)
	fresh.Close()
	for range fresh.Lines() {
		t.Fatal("no-backlog subscriber received history")
	}
}

func TestTeeSinkCloseIdempotentAndCounts(t *testing.T) {
	tee := NewTeeSink(nil, 0)
	a := tee.Subscribe(4, false)
	b := tee.Subscribe(4, false)
	if got := tee.Subscribers(); got != 2 {
		t.Fatalf("subscribers = %d, want 2", got)
	}
	a.Close()
	a.Close() // must not panic or double-close the channel
	if got := tee.Subscribers(); got != 1 {
		t.Fatalf("subscribers after close = %d, want 1", got)
	}
	tee.Record(teeEvent(1))
	b.Close()
	got := 0
	for range b.Lines() {
		got++
	}
	if got != 1 {
		t.Fatalf("surviving subscriber lines = %d, want 1", got)
	}
}

// TestTeeSinkConcurrent hammers Record against Subscribe/read/Close
// under the race detector.
func TestTeeSinkConcurrent(t *testing.T) {
	tee := NewTeeSink(NewRingSink(64), 32)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
				tee.Record(teeEvent(i))
			}
		}
	}()

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sub := tee.Subscribe(8, i%2 == 0)
				for drained := 0; drained < 20; drained++ {
					select { // never block: the emitter may already be done
					case _, ok := <-sub.Lines():
						if !ok {
							drained = 20
						}
					default:
					}
				}
				sub.Close()
			}
		}()
	}

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if tee.Subscribers() != 0 {
		t.Fatalf("leaked subscribers: %d", tee.Subscribers())
	}
}
