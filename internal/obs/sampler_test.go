package obs

import (
	"math"
	"testing"
)

func TestSamplerCorners(t *testing.T) {
	var nilS *Sampler
	if !nilS.Sampled(42) || nilS.Rate() != 1 {
		t.Fatal("nil sampler must keep everything at rate 1")
	}
	all := NewSampler(1.0, 7)
	none := NewSampler(0.0, 7)
	for id := int64(0); id < 1000; id++ {
		if !all.Sampled(id) {
			t.Fatalf("rate 1.0 dropped request %d", id)
		}
		if none.Sampled(id) {
			t.Fatalf("rate 0.0 kept request %d", id)
		}
	}
	if r := NewSampler(2.5, 0).Rate(); r != 1 {
		t.Fatalf("rate not clamped high: %v", r)
	}
	if r := NewSampler(-0.5, 0).Rate(); r != 0 {
		t.Fatalf("rate not clamped low: %v", r)
	}
}

func TestSamplerDeterministicPerSeed(t *testing.T) {
	a := NewSampler(0.3, 12345)
	b := NewSampler(0.3, 12345)
	c := NewSampler(0.3, 54321)
	same, diff := 0, 0
	for id := int64(0); id < 4096; id++ {
		if a.Sampled(id) != b.Sampled(id) {
			t.Fatalf("same seed disagrees on request %d", id)
		}
		if a.Sampled(id) == c.Sampled(id) {
			same++
		} else {
			diff++
		}
	}
	// Different seeds must produce a genuinely different sample set.
	if diff == 0 {
		t.Fatal("different seeds produced identical decisions")
	}
	_ = same
}

func TestSamplerFractionApproximatesRate(t *testing.T) {
	for _, rate := range []float64{0.1, 0.5, 0.9} {
		s := NewSampler(rate, 99)
		const n = 20000
		kept := 0
		for id := int64(0); id < n; id++ {
			if s.Sampled(id) {
				kept++
			}
		}
		got := float64(kept) / n
		if math.Abs(got-rate) > 0.02 {
			t.Fatalf("rate %v kept fraction %v (off by > 2%%)", rate, got)
		}
	}
}
