package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestLabelsString(t *testing.T) {
	if s := (Labels{}).String(); s != "" {
		t.Fatalf("empty labels rendered %q", s)
	}
	l := Labels{Cluster: "c1", Service: "lc-video"}
	if got := l.String(); got != `{cluster="c1",service="lc-video"}` {
		t.Fatalf("got %q", got)
	}
	if got := (Labels{Node: "3"}).String(); got != `{node="3"}` {
		t.Fatalf("got %q", got)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", Labels{Cluster: "c0"})
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %v", c.Value())
	}
	if r.Counter("requests_total", Labels{Cluster: "c0"}) != c {
		t.Fatal("get-or-create returned a new counter")
	}
	g := r.Gauge("util", Labels{Node: "1"})
	g.Set(0.5)
	g.Add(-0.2)
	if math.Abs(g.Value()-0.3) > 1e-12 {
		t.Fatalf("gauge = %v", g.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter add should panic")
		}
	}()
	c.Add(-1)
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", Labels{})
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering as gauge should panic")
		}
	}()
	r.Gauge("m", Labels{})
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", Labels{Service: "lc-audio"}, []float64{10, 20, 40})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i % 40)) // uniform over [0,40)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if m := h.Mean(); math.Abs(m-17.5) > 0.5 {
		t.Fatalf("mean = %v", m)
	}
	q50 := h.Quantile(0.5)
	if q50 < 10 || q50 > 30 {
		t.Fatalf("q50 = %v", q50)
	}
	// Values beyond the last bound clamp to it.
	h.Observe(1e9)
	if q := h.Quantile(1); q != 40 {
		t.Fatalf("q100 = %v, want clamp to 40", q)
	}
	if q := (&Histogram{}).Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("empty histogram quantile = %v, want NaN", q)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	mk := func() *Histogram {
		r := NewRegistry()
		return r.Histogram("lat_ms", Labels{}, []float64{10, 20, 40})
	}

	// Empty histogram: every quantile is explicitly NaN — never a panic,
	// never a fabricated 0 — including out-of-range q.
	empty := mk()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if v := empty.Quantile(q); !math.IsNaN(v) {
			t.Fatalf("empty Quantile(%v) = %v, want NaN", q, v)
		}
	}
	if v := empty.Mean(); !math.IsNaN(v) {
		t.Fatalf("empty Mean = %v, want NaN", v)
	}

	// q <= 0 clamps to the lower edge of the first occupied bucket,
	// q > 1 clamps to q=1.
	h := mk()
	for i := 0; i < 4; i++ {
		h.Observe(15) // all in the (10,20] bucket
	}
	if v := h.Quantile(0); v != 10 {
		t.Fatalf("Quantile(0) = %v, want bucket floor 10", v)
	}
	if v := h.Quantile(-0.3); v != 10 {
		t.Fatalf("Quantile(-0.3) = %v, want clamp to 10", v)
	}
	if v, v1 := h.Quantile(7), h.Quantile(1); v != v1 {
		t.Fatalf("Quantile(7) = %v, want clamp to Quantile(1) = %v", v, v1)
	}

	// Single occupied bucket: linear interpolation inside (10,20].
	// rank(q=0.5) = 2 of 4 observations → 10 + 10*2/4 = 15.
	if v := h.Quantile(0.5); v != 15 {
		t.Fatalf("single-bucket Quantile(0.5) = %v, want 15", v)
	}
	if v := h.Quantile(0.25); v != 12.5 {
		t.Fatalf("single-bucket Quantile(0.25) = %v, want 12.5", v)
	}
	if v := h.Quantile(1); v != 20 {
		t.Fatalf("single-bucket Quantile(1) = %v, want 20", v)
	}

	// All observations in the +Inf overflow bucket: quantiles clamp to
	// the last finite bound rather than extrapolating.
	over := mk()
	for i := 0; i < 3; i++ {
		over.Observe(1e6)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if v := over.Quantile(q); v != 40 {
			t.Fatalf("overflow-only Quantile(%v) = %v, want clamp to 40", q, v)
		}
	}
}

func TestHistogramNaNObserve(t *testing.T) {
	h := NewHistogram([]float64{10, 20})
	h.Observe(5)
	h.Observe(math.NaN())
	h.Observe(15)
	h.Observe(math.NaN())
	if got := h.Count(); got != 2 {
		t.Fatalf("count = %d, want 2 (NaN observations must not count)", got)
	}
	if got := h.Sum(); got != 20 {
		t.Fatalf("sum = %v, want 20 (NaN observations must not corrupt sum)", got)
	}
	if got := h.NaNs(); got != 2 {
		t.Fatalf("NaNs = %d, want 2", got)
	}
	if q := h.Quantile(math.NaN()); !math.IsNaN(q) {
		t.Fatalf("Quantile(NaN) = %v, want NaN", q)
	}
	if q := h.Quantile(0.5); math.IsNaN(q) {
		t.Fatalf("Quantile(0.5) = NaN after NaN observes, want finite")
	}
}

func TestGatherAppendZeroAllocSteadyState(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", Labels{Cluster: "c0"})
	g := r.Gauge("util", Labels{Node: "1"})
	h := r.Histogram("lat", Labels{Service: "lc"}, []float64{1, 2, 4})
	c.Inc()
	g.Set(0.4)
	h.Observe(1.5)

	buf := r.GatherAppend(nil)
	want := r.Gather()
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Observe(2.5)
		buf = r.GatherAppend(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("GatherAppend steady state allocates %.1f/op, want 0", allocs)
	}
	if len(buf) != len(want) {
		t.Fatalf("reused-buffer gather lost samples: %d vs %d", len(buf), len(want))
	}
	for i := range buf {
		if buf[i].Key() != want[i].Key() {
			t.Fatalf("sample %d key %q != %q", i, buf[i].Key(), want[i].Key())
		}
	}
}

func TestSampleKeyCached(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", Labels{Cluster: "c0", Service: "lc"}).Inc()
	s := r.Gather()[0]
	allocs := testing.AllocsPerRun(100, func() {
		if s.Key() == "" {
			t.Fatal("empty key")
		}
	})
	if allocs != 0 {
		t.Fatalf("cached Sample.Key allocates %.1f/op, want 0", allocs)
	}
	// Hand-built samples still render on demand.
	hand := Sample{Name: "x", Labels: Labels{Node: "2"}}
	if got := hand.Key(); got != `x{node="2"}` {
		t.Fatalf("fallback key = %q", got)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", Labels{Cluster: "c0"}).Add(3)
	r.Gauge("a_util", Labels{Node: "1"}).Set(0.25)
	h := r.Histogram("lat", Labels{Service: "lc"}, []float64{10, 20})
	h.Observe(5)
	h.Observe(15)
	h.Observe(100)

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("families = %d, want 3", len(snap))
	}
	if snap[0].Name != "a_util" || snap[0].Kind != "gauge" {
		t.Fatalf("family 0 = %s/%s", snap[0].Name, snap[0].Kind)
	}
	if snap[1].Name != "b_total" || snap[1].Kind != "counter" {
		t.Fatalf("family 1 = %s/%s", snap[1].Name, snap[1].Kind)
	}
	if snap[1].Members[0].Value != 3 || snap[1].Members[0].LabelStr != `{cluster="c0"}` {
		t.Fatalf("counter member = %+v", snap[1].Members[0])
	}
	lat := snap[2]
	if lat.Name != "lat" || lat.Kind != "histogram" || lat.Members[0].Hist == nil {
		t.Fatalf("histogram family = %+v", lat)
	}
	hs := lat.Members[0].Hist
	if hs.Count != 3 || hs.Sum != 120 {
		t.Fatalf("hist snapshot count/sum = %d/%v", hs.Count, hs.Sum)
	}
	if len(hs.Counts) != 3 || hs.Counts[0] != 1 || hs.Counts[1] != 1 || hs.Counts[2] != 1 {
		t.Fatalf("hist buckets = %v", hs.Counts)
	}
	// Snapshot is a copy: later observations must not leak in.
	h.Observe(1)
	if hs.Count != 3 {
		t.Fatal("snapshot aliases live histogram state")
	}
}

// TestConcurrentScrapeVsEmit exercises the scrape-races-engine contract
// under the race detector: writers hammer counters/gauges/histograms
// (and create new series) while readers Gather and Snapshot.
func TestConcurrentScrapeVsEmit(t *testing.T) {
	r := NewRegistry()
	const writers, iters = 4, 2000
	var writerWG, scraperWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			c := r.Counter("reqs_total", Labels{Cluster: "c0"})
			g := r.Gauge("util", Labels{Node: "0"})
			h := r.Histogram("lat", Labels{}, nil)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 100))
				if i%500 == 0 { // structural churn: new series mid-scrape
					r.Gauge("late", Labels{Node: string(rune('a' + w))}).Set(float64(i))
				}
			}
		}(w)
	}
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		var buf []Sample
		for {
			select {
			case <-stop:
				return
			default:
			}
			buf = r.GatherAppend(buf[:0])
			_ = r.Snapshot()
		}
	}()

	writerWG.Wait()
	close(stop)
	scraperWG.Wait()

	if got := r.Counter("reqs_total", Labels{Cluster: "c0"}).Value(); got != writers*iters {
		t.Fatalf("counter = %v, want %d (lost updates under contention)", got, writers*iters)
	}
	if got := r.Histogram("lat", Labels{}, nil).Count(); got != writers*iters {
		t.Fatalf("histogram count = %v, want %d", got, writers*iters)
	}
}

func TestGatherDeterministicAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", Labels{Cluster: "c1"}).Inc()
	r.Counter("b_total", Labels{Cluster: "c0"}).Add(2)
	r.Gauge("a_util", Labels{Node: "0"}).Set(0.7)
	r.Histogram("lat", Labels{}, []float64{1, 2}).Observe(1.5)

	got := r.Gather()
	keys := make([]string, len(got))
	for i, s := range got {
		keys[i] = s.Key()
	}
	want := []string{
		`a_util{node="0"}`,
		`b_total{cluster="c1"}`, // member creation order within a family
		`b_total{cluster="c0"}`,
		"lat_count", "lat_sum", "lat_p95",
	}
	if strings.Join(keys, "|") != strings.Join(want, "|") {
		t.Fatalf("gather order:\n got %v\nwant %v", keys, want)
	}
	// A second Gather must be identical (determinism).
	again := r.Gather()
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("gather not deterministic at %d: %v vs %v", i, got[i], again[i])
		}
	}
}

func TestConfigDigestStable(t *testing.T) {
	a := ConfigDigest(map[string]string{"seed": "1", "system": "tango"})
	b := ConfigDigest(map[string]string{"system": "tango", "seed": "1"})
	if a != b {
		t.Fatalf("digest depends on map order: %s vs %s", a, b)
	}
	c := ConfigDigest(map[string]string{"system": "tango", "seed": "2"})
	if a == c {
		t.Fatal("digest ignores values")
	}
	if len(a) != 16 {
		t.Fatalf("digest %q not 16 hex chars", a)
	}
}

func TestReportWriteRoundTrip(t *testing.T) {
	rep := &Report{
		System:       "tango",
		ConfigDigest: "abc",
		Config:       map[string]string{"seed": "1"},
		Phi:          0.97,
		Series:       map[string][]float64{"qos-rate": {1, 0.9}},
		EventCounts:  map[string]uint64{"start": 10},
		TailLatencyMs: map[string]float64{
			"p95": 210,
		},
		Metrics: SamplesToReport([]Sample{{Name: "x", Labels: Labels{Node: "1"}, Value: 3}}),
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema {
		t.Fatalf("schema not defaulted: %q", back.Schema)
	}
	if back.Phi != 0.97 || back.EventCounts["start"] != 10 || back.Metrics[0].Labels != `{node="1"}` {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
