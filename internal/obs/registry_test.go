package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestLabelsString(t *testing.T) {
	if s := (Labels{}).String(); s != "" {
		t.Fatalf("empty labels rendered %q", s)
	}
	l := Labels{Cluster: "c1", Service: "lc-video"}
	if got := l.String(); got != `{cluster="c1",service="lc-video"}` {
		t.Fatalf("got %q", got)
	}
	if got := (Labels{Node: "3"}).String(); got != `{node="3"}` {
		t.Fatalf("got %q", got)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", Labels{Cluster: "c0"})
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %v", c.Value())
	}
	if r.Counter("requests_total", Labels{Cluster: "c0"}) != c {
		t.Fatal("get-or-create returned a new counter")
	}
	g := r.Gauge("util", Labels{Node: "1"})
	g.Set(0.5)
	g.Add(-0.2)
	if math.Abs(g.Value()-0.3) > 1e-12 {
		t.Fatalf("gauge = %v", g.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter add should panic")
		}
	}()
	c.Add(-1)
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", Labels{})
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering as gauge should panic")
		}
	}()
	r.Gauge("m", Labels{})
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", Labels{Service: "lc-audio"}, []float64{10, 20, 40})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i % 40)) // uniform over [0,40)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if m := h.Mean(); math.Abs(m-17.5) > 0.5 {
		t.Fatalf("mean = %v", m)
	}
	q50 := h.Quantile(0.5)
	if q50 < 10 || q50 > 30 {
		t.Fatalf("q50 = %v", q50)
	}
	// Values beyond the last bound clamp to it.
	h.Observe(1e9)
	if q := h.Quantile(1); q != 40 {
		t.Fatalf("q100 = %v, want clamp to 40", q)
	}
	if q := (&Histogram{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v", q)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	mk := func() *Histogram {
		r := NewRegistry()
		return r.Histogram("lat_ms", Labels{}, []float64{10, 20, 40})
	}

	// Empty histogram: every quantile is 0, including out-of-range q.
	empty := mk()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if v := empty.Quantile(q); v != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, v)
		}
	}

	// q <= 0 clamps to the lower edge of the first occupied bucket,
	// q > 1 clamps to q=1.
	h := mk()
	for i := 0; i < 4; i++ {
		h.Observe(15) // all in the (10,20] bucket
	}
	if v := h.Quantile(0); v != 10 {
		t.Fatalf("Quantile(0) = %v, want bucket floor 10", v)
	}
	if v := h.Quantile(-0.3); v != 10 {
		t.Fatalf("Quantile(-0.3) = %v, want clamp to 10", v)
	}
	if v, v1 := h.Quantile(7), h.Quantile(1); v != v1 {
		t.Fatalf("Quantile(7) = %v, want clamp to Quantile(1) = %v", v, v1)
	}

	// Single occupied bucket: linear interpolation inside (10,20].
	// rank(q=0.5) = 2 of 4 observations → 10 + 10*2/4 = 15.
	if v := h.Quantile(0.5); v != 15 {
		t.Fatalf("single-bucket Quantile(0.5) = %v, want 15", v)
	}
	if v := h.Quantile(0.25); v != 12.5 {
		t.Fatalf("single-bucket Quantile(0.25) = %v, want 12.5", v)
	}
	if v := h.Quantile(1); v != 20 {
		t.Fatalf("single-bucket Quantile(1) = %v, want 20", v)
	}

	// All observations in the +Inf overflow bucket: quantiles clamp to
	// the last finite bound rather than extrapolating.
	over := mk()
	for i := 0; i < 3; i++ {
		over.Observe(1e6)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if v := over.Quantile(q); v != 40 {
			t.Fatalf("overflow-only Quantile(%v) = %v, want clamp to 40", q, v)
		}
	}
}

func TestGatherDeterministicAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", Labels{Cluster: "c1"}).Inc()
	r.Counter("b_total", Labels{Cluster: "c0"}).Add(2)
	r.Gauge("a_util", Labels{Node: "0"}).Set(0.7)
	r.Histogram("lat", Labels{}, []float64{1, 2}).Observe(1.5)

	got := r.Gather()
	keys := make([]string, len(got))
	for i, s := range got {
		keys[i] = s.Key()
	}
	want := []string{
		`a_util{node="0"}`,
		`b_total{cluster="c1"}`, // member creation order within a family
		`b_total{cluster="c0"}`,
		"lat_count", "lat_sum", "lat_p95",
	}
	if strings.Join(keys, "|") != strings.Join(want, "|") {
		t.Fatalf("gather order:\n got %v\nwant %v", keys, want)
	}
	// A second Gather must be identical (determinism).
	again := r.Gather()
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("gather not deterministic at %d: %v vs %v", i, got[i], again[i])
		}
	}
}

func TestConfigDigestStable(t *testing.T) {
	a := ConfigDigest(map[string]string{"seed": "1", "system": "tango"})
	b := ConfigDigest(map[string]string{"system": "tango", "seed": "1"})
	if a != b {
		t.Fatalf("digest depends on map order: %s vs %s", a, b)
	}
	c := ConfigDigest(map[string]string{"system": "tango", "seed": "2"})
	if a == c {
		t.Fatal("digest ignores values")
	}
	if len(a) != 16 {
		t.Fatalf("digest %q not 16 hex chars", a)
	}
}

func TestReportWriteRoundTrip(t *testing.T) {
	rep := &Report{
		System:       "tango",
		ConfigDigest: "abc",
		Config:       map[string]string{"seed": "1"},
		Phi:          0.97,
		Series:       map[string][]float64{"qos-rate": {1, 0.9}},
		EventCounts:  map[string]uint64{"start": 10},
		TailLatencyMs: map[string]float64{
			"p95": 210,
		},
		Metrics: SamplesToReport([]Sample{{Name: "x", Labels: Labels{Node: "1"}, Value: 3}}),
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema {
		t.Fatalf("schema not defaulted: %q", back.Schema)
	}
	if back.Phi != 0.97 || back.EventCounts["start"] != 10 || back.Metrics[0].Labels != `{node="1"}` {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
