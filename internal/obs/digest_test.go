package obs

import (
	"strings"
	"testing"
	"time"
)

func digestEvent() Event {
	ev := *Ev(EvArrival).Req(1).Service(2).Note("x")
	ev.At = 3 * time.Millisecond
	ev.Seq = 1
	return ev
}

func feedDigest(s *DigestSink) {
	s.Record(digestEvent())
	s.RecordSpan(Span{ID: 7, ReqID: 1, Name: SpanExec, Start: time.Millisecond, End: 2 * time.Millisecond})
	s.RecordDecision(Decision{ID: 1, At: time.Millisecond, Algo: "dss-lc", Routed: 4})
}

func TestDigestSinkDeterministicAndOrderSensitive(t *testing.T) {
	a, b := NewDigestSink(nil), NewDigestSink(nil)
	feedDigest(a)
	feedDigest(b)
	if a.Sum() != b.Sum() {
		t.Fatalf("same records, different digests: %s vs %s", a.Sum(), b.Sum())
	}
	if a.Records() != 3 {
		t.Fatalf("records = %d, want 3", a.Records())
	}
	// Same records in a different order must change the digest: emission
	// order is part of the replay contract.
	c := NewDigestSink(nil)
	c.RecordDecision(Decision{ID: 1, At: time.Millisecond, Algo: "dss-lc", Routed: 4})
	c.Record(digestEvent())
	c.RecordSpan(Span{ID: 7, ReqID: 1, Name: SpanExec, Start: time.Millisecond, End: 2 * time.Millisecond})
	if c.Sum() == a.Sum() {
		t.Fatal("reordered records produced the same digest")
	}
	if len(a.Sum()) != 64 || strings.ToLower(a.Sum()) != a.Sum() {
		t.Fatalf("digest not lowercase sha256 hex: %q", a.Sum())
	}
}

// eventOnlySink has the base capability only, to prove the digest sink
// tolerates forwarding targets without span/decision support.
type eventOnlySink struct{ n int }

func (s *eventOnlySink) Record(Event) { s.n++ }

func TestDigestSinkForwards(t *testing.T) {
	eo := &eventOnlySink{}
	s := NewDigestSink(eo)
	feedDigest(s)
	if eo.n != 1 {
		t.Fatalf("forwarded events = %d, want 1", eo.n)
	}
	if s.Records() != 3 {
		t.Fatalf("records = %d, want 3", s.Records())
	}
	// A writer sink has all three capabilities: every record forwards.
	var sb strings.Builder
	ws := NewWriterSink(&sb)
	s2 := NewDigestSink(ws)
	feedDigest(s2)
	if err := ws.Flush(); err != nil {
		t.Fatal(err)
	}
	if ws.Lines != 3 {
		t.Fatalf("writer lines = %d, want 3", ws.Lines)
	}
	if got := strings.Count(sb.String(), "\n"); got != 3 {
		t.Fatalf("NDJSON lines = %d, want 3", got)
	}
	if s2.Sum() != s.Sum() {
		t.Fatal("digest must not depend on the forwarding sink")
	}
}

func TestReportDigestNormalizesWallClock(t *testing.T) {
	mk := func(wall float64, sink *SinkStats) *Report {
		return &Report{
			System: "tango", ConfigDigest: "abc",
			Config:    map[string]string{"seed": "1"},
			VirtualMs: 1000, WallMs: wall,
			Phi:         0.97,
			Series:      map[string][]float64{"phi": {1, 0.97}},
			EventCounts: map[string]uint64{"arrival": 10},
			Sink:        sink,
		}
	}
	d1 := ReportDigest(mk(12.5, nil))
	d2 := ReportDigest(mk(9000, &SinkStats{Events: 10, Lines: 10}))
	if d1 != d2 {
		t.Fatalf("wall-clock fields leaked into report digest: %s vs %s", d1, d2)
	}
	// A behavioural difference must change the digest.
	r3 := mk(12.5, nil)
	r3.Phi = 0.5
	if ReportDigest(r3) == d1 {
		t.Fatal("phi change did not change report digest")
	}
}

func TestReportDigestStripsPerfData(t *testing.T) {
	mk := func() *Report {
		return &Report{
			System: "tango", ConfigDigest: "abc",
			VirtualMs: 1000, Phi: 0.97,
			Series:      map[string][]float64{"phi": {1, 0.97}},
			Metrics:     []MetricSample{{Name: "tango_requests_arrived_total", Value: 10}},
			EventCounts: map[string]uint64{"arrival": 10},
		}
	}
	base := ReportDigest(mk())

	// Perf section, perf_-prefixed metrics and perf_-prefixed series are
	// host wall-clock facts: none may perturb the digest.
	r := mk()
	r.Perf = &PerfSection{
		Phases:  []PhasePerf{{Phase: "solve/mcnf", Calls: 3, TotalNs: 12345}},
		Runtime: map[string]float64{"perf_goroutines": 9},
	}
	r.Series[PerfMetricPrefix+"heap_live_bytes"] = []float64{1, 2, 3}
	r.Metrics = append(r.Metrics, MetricSample{Name: PerfMetricPrefix + "goroutines", Value: 9})
	if got := ReportDigest(r); got != base {
		t.Fatalf("perf data leaked into report digest: %s vs %s", got, base)
	}
	// Stripping must not mutate the live report.
	if r.Perf == nil || len(r.Series) != 2 || len(r.Metrics) != 2 {
		t.Fatal("ReportDigest mutated the report it was given")
	}
	// A non-perf metric still changes the digest.
	r2 := mk()
	r2.Metrics = append(r2.Metrics, MetricSample{Name: "tango_lc_satisfied_total", Value: 1})
	if ReportDigest(r2) == base {
		t.Fatal("non-perf metric change did not change report digest")
	}
}
