package obs

import (
	"sync"
	"sync/atomic"
)

// TeeSink fans the trace stream out to live subscribers without ever
// stalling the simulation hot path.
//
// It forwards every record synchronously to a primary sink first (the
// WriterSink/DigestSink/NullSink the run was configured with — so
// replay digests and trace files are byte-identical with or without a
// tee in the chain), then encodes the record once into its canonical
// NDJSON line and offers the line to every subscriber's bounded
// channel. A subscriber that cannot keep up loses lines — counted, per
// subscriber and in aggregate, never blocked on — which is the contract
// that lets an HTTP trace tail hang off a running engine.
//
// A small backlog ring of recent lines is retained so a subscriber that
// attaches late (e.g. curling /trace/tail after a burst) still sees
// recent history.
type TeeSink struct {
	next     Sink
	nextSpan SpanSink
	nextDec  DecisionSink

	mu      sync.Mutex
	subs    []*TailSub
	scratch []byte

	ring     [][]byte
	ringNext int
	ringLen  int

	lines   atomic.Uint64
	dropped atomic.Uint64
}

// TailSub is one live subscription to a TeeSink's NDJSON stream.
type TailSub struct {
	ch      chan []byte
	dropped atomic.Uint64
	sink    *TeeSink
	closed  bool
}

// NewTeeSink wraps next (nil falls back to NullSink) with a fan-out
// stage retaining up to backlog recent lines for late subscribers.
func NewTeeSink(next Sink, backlog int) *TeeSink {
	if next == nil {
		next = NullSink{}
	}
	s := &TeeSink{next: next, scratch: make([]byte, 0, 256)}
	if backlog > 0 {
		s.ring = make([][]byte, backlog)
	}
	if ss, ok := next.(SpanSink); ok {
		s.nextSpan = ss
	}
	if ds, ok := next.(DecisionSink); ok {
		s.nextDec = ds
	}
	return s
}

// Record implements Sink.
func (s *TeeSink) Record(ev Event) {
	s.scratch = AppendJSON(s.scratch[:0], ev)
	s.fanout()
	s.next.Record(ev)
}

// RecordSpan implements SpanSink.
func (s *TeeSink) RecordSpan(sp Span) {
	s.scratch = AppendSpanJSON(s.scratch[:0], sp)
	s.fanout()
	if s.nextSpan != nil {
		s.nextSpan.RecordSpan(sp)
	}
}

// RecordDecision implements DecisionSink.
func (s *TeeSink) RecordDecision(d Decision) {
	s.scratch = AppendDecisionJSON(s.scratch[:0], d)
	s.fanout()
	if s.nextDec != nil {
		s.nextDec.RecordDecision(d)
	}
}

// fanout copies the scratch line (newline-terminated) into the backlog
// ring and every subscriber channel. Non-blocking by construction: a
// full subscriber channel counts a drop and moves on.
func (s *TeeSink) fanout() {
	line := make([]byte, len(s.scratch)+1)
	copy(line, s.scratch)
	line[len(s.scratch)] = '\n'
	s.lines.Add(1)
	s.mu.Lock()
	if len(s.ring) > 0 {
		s.ring[s.ringNext] = line
		s.ringNext = (s.ringNext + 1) % len(s.ring)
		if s.ringLen < len(s.ring) {
			s.ringLen++
		}
	}
	for _, sub := range s.subs {
		select {
		case sub.ch <- line:
		default:
			sub.dropped.Add(1)
			s.dropped.Add(1)
		}
	}
	s.mu.Unlock()
}

// Subscribe opens a bounded subscription (buf <= 0 selects 1024). When
// withBacklog is set the retained recent lines are queued first, oldest
// to newest.
func (s *TeeSink) Subscribe(buf int, withBacklog bool) *TailSub {
	if buf <= 0 {
		buf = 1024
	}
	sub := &TailSub{ch: make(chan []byte, buf), sink: s}
	s.mu.Lock()
	if withBacklog && s.ringLen > 0 {
		start := s.ringNext - s.ringLen
		if start < 0 {
			start += len(s.ring)
		}
		for i := 0; i < s.ringLen; i++ {
			line := s.ring[(start+i)%len(s.ring)]
			select {
			case sub.ch <- line:
			default:
				sub.dropped.Add(1)
				s.dropped.Add(1)
			}
		}
	}
	s.subs = append(s.subs, sub)
	s.mu.Unlock()
	return sub
}

// Lines returns the channel of NDJSON lines (each newline-terminated;
// the slice must not be mutated — it may be shared with other
// subscribers). Closed by TailSub.Close.
func (sub *TailSub) Lines() <-chan []byte { return sub.ch }

// Dropped returns how many lines this subscriber lost to backpressure.
func (sub *TailSub) Dropped() uint64 { return sub.dropped.Load() }

// Close detaches the subscription and closes its channel. Idempotent.
func (sub *TailSub) Close() {
	s := sub.sink
	s.mu.Lock()
	defer s.mu.Unlock()
	if sub.closed {
		return
	}
	sub.closed = true
	for i, x := range s.subs {
		if x == sub {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			break
		}
	}
	close(sub.ch)
}

// Lines returns how many NDJSON lines the tee has encoded.
func (s *TeeSink) Lines() uint64 { return s.lines.Load() }

// Dropped returns the aggregate lines lost across all subscribers
// (including ones that have since closed).
func (s *TeeSink) Dropped() uint64 { return s.dropped.Load() }

// Subscribers returns the number of live subscriptions.
func (s *TeeSink) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}
