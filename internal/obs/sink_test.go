package obs

import (
	"strings"
	"testing"
)

// TestWriterSinkShortWriteMidEvent drives the bufio layer past its
// buffer with oversized events against a writer that accepts a partial
// write and then fails: the error must surface during Record (not only
// at Flush), every subsequent record must count as dropped, and the
// first error must stay sticky.
func TestWriterSinkShortWriteMidEvent(t *testing.T) {
	sink := NewWriterSink(&failingWriter{budget: 100})
	tr := NewTracer(fixedClock(0), sink)
	big := strings.Repeat("x", 8<<10)
	for i := 0; i < 20; i++ { // ~160 KiB total: forces mid-run flushes
		tr.Emit(Ev(EvStart).Req(int64(i)).Note(big))
	}
	if sink.Err() == nil {
		t.Fatal("short write mid-stream not surfaced before Flush")
	}
	if sink.Dropped == 0 {
		t.Fatal("short write did not count dropped records")
	}

	// Write-after-error: the bufio error is sticky, so every further
	// record is dropped and accounted — none silently vanish.
	dropsAtErr, linesAtErr := sink.Dropped, sink.Lines
	for i := 0; i < 3; i++ {
		tr.Emit(Ev(EvStart).Req(int64(100 + i)))
	}
	if sink.Dropped != dropsAtErr+3 {
		t.Fatalf("post-error drops = %d, want %d", sink.Dropped, dropsAtErr+3)
	}
	if sink.Lines != linesAtErr {
		t.Fatalf("post-error records counted as written: %d -> %d", linesAtErr, sink.Lines)
	}
	if err := sink.Flush(); err == nil {
		t.Fatal("Flush after failure must keep returning the error")
	}
}

// TestRingSinkOrderingAfterMultipleWraps pins Events() emission order
// through several full wraparounds, including the exact-boundary case.
func TestRingSinkOrderingAfterMultipleWraps(t *testing.T) {
	s := NewRingSink(4)
	rec := func(n int) {
		for i := 0; i < n; i++ {
			ev := Ev(EvArrival)
			ev.Seq = s.Total()
			s.Record(*ev)
		}
	}

	rec(11) // 2 wraps + 3: retained must be 7,8,9,10
	evs := s.Events()
	if s.Total() != 11 || len(evs) != 4 {
		t.Fatalf("total=%d len=%d", s.Total(), len(evs))
	}
	for i, want := range []uint64{7, 8, 9, 10} {
		if evs[i].Seq != want {
			t.Fatalf("after 2.75 wraps: evs[%d].Seq = %d, want %d", i, evs[i].Seq, want)
		}
	}

	rec(1) // lands exactly on a wrap boundary: retained 8,9,10,11
	evs = s.Events()
	for i, want := range []uint64{8, 9, 10, 11} {
		if evs[i].Seq != want {
			t.Fatalf("at boundary: evs[%d].Seq = %d, want %d", i, evs[i].Seq, want)
		}
	}

	// The span ring wraps independently with the same ordering contract.
	for i := 0; i < 10; i++ {
		s.RecordSpan(Span{ID: uint64(i + 1), Name: "request"})
	}
	sps := s.Spans()
	if len(sps) != 4 {
		t.Fatalf("span ring len = %d, want 4", len(sps))
	}
	for i, want := range []uint64{7, 8, 9, 10} {
		if sps[i].ID != want {
			t.Fatalf("span ring: sps[%d].ID = %d, want %d", i, sps[i].ID, want)
		}
	}
}
