package baselines

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/topo"
	"repro/internal/trace"
)

func testTrace(t *topo.Topology, dur time.Duration, seed int64) []trace.Request {
	var cs []topo.ClusterID
	for _, c := range t.Clusters {
		cs = append(cs, c.ID)
	}
	cfg := trace.DefaultGenConfig(cs, trace.P3, dur, seed)
	cfg.LCRatePerSec = 30
	cfg.BERatePerSec = 12
	return trace.Generate(cfg)
}

func TestK8sNativeRuns(t *testing.T) {
	tp := topo.PhysicalTestbed()
	reqs := testTrace(tp, 6*time.Second, 1)
	sys := core.New(K8sNative(tp, reqs, 1))
	sys.Inject(reqs)
	sys.Run(10 * time.Second)
	if sys.LCSchedulerName() != "k8s-native" || sys.BESchedulerName() != "k8s-native" {
		t.Fatalf("schedulers %s/%s", sys.LCSchedulerName(), sys.BESchedulerName())
	}
	if sys.Metrics.LC.Completed == 0 {
		t.Fatal("k8s-native completed nothing")
	}
}

func TestCERESStaysLocal(t *testing.T) {
	tp := topo.PhysicalTestbed()
	sys := core.New(CERES(tp, 2))
	// Track every dispatched request's target cluster via outcomes.
	reqs := testTrace(tp, 6*time.Second, 2)
	sys.Inject(reqs)
	sys.Run(10 * time.Second)
	if sys.LCSchedulerName() != "local-load-greedy" {
		t.Fatalf("LC sched = %s", sys.LCSchedulerName())
	}
	if sys.Metrics.LC.Completed == 0 || sys.Metrics.BE.Completed == 0 {
		t.Fatal("CERES completed nothing")
	}
}

func TestLocalOnlyPicksWithinCluster(t *testing.T) {
	tp := topo.PhysicalTestbed()
	sys := core.New(CERES(tp, 3))
	e := sys.Engine
	lo := &LocalOnly{Engine: e, Inner: pickFirst{}}
	for c := 0; c < 4; c++ {
		r := e.NewRequest(trace.Request{ID: int64(c), Type: 1, Class: trace.LC, Cluster: topo.ClusterID(c)})
		id, ok := lo.Pick(r, nil)
		if !ok {
			t.Fatal("pick failed")
		}
		if e.Node(id).Cluster != topo.ClusterID(c) {
			t.Fatalf("request from cluster %d dispatched to cluster %d", c, e.Node(id).Cluster)
		}
	}
	if lo.Name() != "local-first" {
		t.Fatalf("name = %s", lo.Name())
	}
}

type pickFirst struct{}

func (pickFirst) Name() string { return "first" }
func (pickFirst) Pick(r *engine.Request, cands []*engine.Node) (topo.NodeID, bool) {
	if len(cands) == 0 {
		return 0, false
	}
	return cands[0].ID, true
}

func TestDSACORuns(t *testing.T) {
	tp := topo.PhysicalTestbed()
	sys := core.New(DSACO(tp, 4))
	reqs := testTrace(tp, 6*time.Second, 4)
	sys.Inject(reqs)
	sys.Run(10 * time.Second)
	if sys.LCSchedulerName() != "GNN-SAC" {
		t.Fatalf("LC sched = %s", sys.LCSchedulerName())
	}
	if sys.Metrics.LC.Completed == 0 || sys.Metrics.BE.Completed == 0 {
		t.Fatal("DSACO completed nothing")
	}
}

// Tango must beat the baselines on the combined objective (Fig. 13's
// shape): higher utilization than CERES, higher QoS than DSACO, higher
// throughput than CERES.
func TestTangoBeatsBaselinesOnShape(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison run is slow")
	}
	tp := topo.PhysicalTestbed()
	dur := 20 * time.Second
	reqs := testTrace(tp, dur, 5)
	run := func(o core.Options) core.Summary {
		sys := core.New(o)
		sys.Inject(reqs)
		sys.Run(dur + 5*time.Second)
		return sys.Summarize("x")
	}
	tango := run(core.Tango(tp, 5))
	ceres := run(CERES(tp, 5))
	dsaco := run(DSACO(tp, 5))
	t.Logf("tango: %+v", tango)
	t.Logf("ceres: %+v", ceres)
	t.Logf("dsaco: %+v", dsaco)
	if tango.QoSRate < dsaco.QoSRate-0.02 {
		t.Errorf("Tango QoS %.3f below DSACO %.3f", tango.QoSRate, dsaco.QoSRate)
	}
	if tango.Throughput < ceres.Throughput {
		t.Errorf("Tango throughput %d below CERES %d", tango.Throughput, ceres.Throughput)
	}
}
