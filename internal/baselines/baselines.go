// Package baselines configures the comparison systems of §7.3 as
// core.System options:
//
//   - K8sNative — vanilla Kubernetes co-location: static per-class
//     resource partitions (sized from the trace usage ratio, §7.1) and
//     round-robin traffic scheduling for both classes.
//   - CERES [40] — a container-based elastic resource management system:
//     it gets the same elastic local allocation machinery as Tango
//     (regulations + idle-maximizing boost through D-VPA-style resizing)
//     but only a local resource management scheme — requests are served
//     inside their arrival cluster, so distributed, heterogeneous edge
//     resources go unused ("CERES only provides a local resource
//     management scheme, which cannot effectively utilize distributed
//     and heterogeneous edge resources").
//   - DSACO [34] — a distributed scheduling framework based on Soft
//     Actor-Critic: intelligent offloading across clusters (SAC agents
//     with geo-bounded actions for LC, global for BE) but no
//     mixed-workload resource management — nodes run the unordered
//     greedy allocation of native co-location.
package baselines

import (
	"repro/internal/core"
	"repro/internal/dcgbe"
	"repro/internal/engine"
	"repro/internal/hrm"
	"repro/internal/sched"
	"repro/internal/topo"
	"repro/internal/trace"
)

// LocalOnly restricts any inner scheduler to the request's own cluster —
// the CERES behaviour of managing resources locally only.
type LocalOnly struct {
	Engine *engine.Engine
	Inner  sched.Scheduler
}

// Name implements sched.Scheduler.
func (l *LocalOnly) Name() string { return "local-" + l.Inner.Name() }

// Pick implements sched.Scheduler, ignoring the offered candidates and
// using only the arrival cluster's workers.
func (l *LocalOnly) Pick(r *engine.Request, _ []*engine.Node) (topo.NodeID, bool) {
	var cands []*engine.Node
	for _, w := range l.Engine.Topology().WorkersOf(r.Cluster) {
		cands = append(cands, l.Engine.Node(w))
	}
	return l.Inner.Pick(r, cands)
}

// K8sNative returns the vanilla-K8s configuration. The static partition
// is sized from the workload trace, as in §7.1.
func K8sNative(t *topo.Topology, reqs []trace.Request, seed int64) core.Options {
	return core.Options{
		Topo: t, Seed: seed,
		Policy:    hrm.NewStaticPartition(trace.DefaultCatalog(), reqs),
		MakeLC:    func(e *engine.Engine, seed int64) any { return &sched.RoundRobin{} },
		MakeBE:    func(e *engine.Engine, seed int64) any { return &sched.RoundRobin{} },
		Reassure:  false,
		Boost:     false,
		CentralBE: false,
	}
}

// CERES returns the CERES configuration: elastic local management,
// local-only dispatch.
func CERES(t *topo.Topology, seed int64) core.Options {
	return core.Options{
		Topo: t, Seed: seed,
		Policy: hrm.NewRegulations(),
		MakeLC: func(e *engine.Engine, seed int64) any {
			return &LocalOnly{Engine: e, Inner: sched.LoadGreedy{}}
		},
		MakeBE: func(e *engine.Engine, seed int64) any {
			return &LocalOnly{Engine: e, Inner: sched.LoadGreedy{}}
		},
		Reassure:     false,
		Boost:        true,
		CentralBE:    false,
		ScaleLatency: hrm.DVPAOpLatency,
	}
}

// DSACO returns the DSACO configuration: SAC-driven offloading without
// mixed-service resource management.
func DSACO(t *topo.Topology, seed int64) core.Options {
	return core.Options{
		Topo: t, Seed: seed,
		Policy: engine.GreedyPolicy{},
		MakeLC: func(e *engine.Engine, seed int64) any {
			s := dcgbe.NewVariant(e, dcgbe.Variant{Agent: "sac"}, seed)
			s.AllowFn = geoAllow(e, 500)
			return s
		},
		MakeBE: func(e *engine.Engine, seed int64) any {
			return dcgbe.NewVariant(e, dcgbe.Variant{Agent: "sac"}, seed)
		},
		Reassure:  false,
		Boost:     false,
		CentralBE: false,
	}
}

// geoAllow permits nodes whose cluster is the request's own or within
// radiusKm of it.
func geoAllow(e *engine.Engine, radiusKm float64) func(*engine.Request, *engine.Node) bool {
	t := e.Topology()
	return func(r *engine.Request, n *engine.Node) bool {
		if n.Cluster == r.Cluster {
			return true
		}
		return t.DistanceKm(r.Cluster, n.Cluster) <= radiusKm
	}
}
