package k8s

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topo"
)

// ReplicaSetController is a watch-driven reconciler: it observes pod
// events from the Store and keeps the number of live pods matching a
// label selector at the desired count, recreating pods that terminate
// (e.g. after a native-VPA delete or a node failure). This mirrors how
// the real kube-controller-manager maintains ReplicaSets, and is the
// control-loop machinery Tango's backward-compatible design leaves in
// place (§3).
type ReplicaSetController struct {
	Name     string
	Selector map[string]string
	Desired  int
	Template PodSpec

	sim       *sim.Simulator
	store     *Store
	scheduler *Scheduler
	kubelets  map[topo.NodeID]*Kubelet
	serial    int
	// Reconciles counts reconcile passes; CreateFailures counts pods the
	// controller wanted but could not place.
	Reconciles     int64
	CreateFailures int64
	pending        bool
	reconciling    bool
}

// NewReplicaSetController builds and registers the controller on the
// store's watch stream.
func NewReplicaSetController(name string, selector map[string]string, desired int,
	tmpl PodSpec, s *sim.Simulator, store *Store, sched *Scheduler,
	kubelets map[topo.NodeID]*Kubelet) *ReplicaSetController {
	c := &ReplicaSetController{
		Name: name, Selector: selector, Desired: desired, Template: tmpl,
		sim: s, store: store, scheduler: sched, kubelets: kubelets,
	}
	store.Watch(func(e Event) {
		// Ignore the controller's own mutations (including the
		// create-then-delete of a placement failure), otherwise a full
		// cluster would loop create/fail/delete forever.
		if c.reconciling || !c.matches(e.Pod) {
			return
		}
		// Coalesce: schedule one reconcile per event burst.
		if !c.pending {
			c.pending = true
			s.Schedule(0, func() {
				c.pending = false
				c.Reconcile()
			})
		}
	})
	return c
}

func (c *ReplicaSetController) matches(p *Pod) bool {
	for k, v := range c.Selector {
		if p.Spec.Labels[k] != v {
			return false
		}
	}
	return true
}

// Live returns the matching pods that are running or being created.
func (c *ReplicaSetController) Live() []*Pod {
	return c.store.Pods(func(p *Pod) bool {
		if !c.matches(p) {
			return false
		}
		return p.Phase == PodPending || p.Phase == PodCreating || p.Phase == PodRunning
	})
}

// Reconcile drives the live count toward Desired.
func (c *ReplicaSetController) Reconcile() {
	c.reconciling = true
	defer func() { c.reconciling = false }()
	c.Reconciles++
	live := c.Live()
	for len(live) < c.Desired {
		if !c.createOne() {
			return
		}
		live = c.Live()
	}
	for len(live) > c.Desired {
		victim := live[len(live)-1]
		live = live[:len(live)-1]
		if kl, ok := c.kubelets[victim.Spec.Node]; ok && (victim.Phase == PodRunning || victim.Phase == PodCreating) {
			name := victim.Spec.Name
			_ = kl.StopPod(victim, func() { _ = c.store.DeletePod(name) })
		} else {
			_ = c.store.DeletePod(victim.Spec.Name)
		}
	}
}

func (c *ReplicaSetController) createOne() bool {
	c.serial++
	spec := c.Template
	spec.Name = fmt.Sprintf("%s-%d", c.Name, c.serial)
	if spec.Labels == nil {
		spec.Labels = map[string]string{}
	}
	for k, v := range c.Selector {
		spec.Labels[k] = v
	}
	p, err := c.store.CreatePod(spec)
	if err != nil {
		c.CreateFailures++
		return false
	}
	node, err := c.scheduler.Schedule(p)
	if err != nil {
		_ = c.store.DeletePod(spec.Name)
		c.CreateFailures++
		return false
	}
	kl, ok := c.kubelets[node.ID]
	if !ok {
		_ = c.store.DeletePod(spec.Name)
		c.CreateFailures++
		return false
	}
	if err := kl.RunPod(p, nil); err != nil {
		_ = c.store.DeletePod(spec.Name)
		c.CreateFailures++
		return false
	}
	return true
}
