package k8s

import (
	"testing"
	"time"

	"repro/internal/cgroup"
	"repro/internal/res"
	"repro/internal/sim"
	"repro/internal/topo"
)

func rsEnv(t *testing.T) (*sim.Simulator, *Store, *ReplicaSetController, map[topo.NodeID]*Kubelet) {
	t.Helper()
	s := sim.New()
	st := NewStore(s)
	k1 := NewKubelet(s, st, 1, res.V(4000, 8192, 0))
	k2 := NewKubelet(s, st, 2, res.V(4000, 8192, 0))
	kls := map[topo.NodeID]*Kubelet{1: k1, 2: k2}
	sch := NewScheduler([]*NodeState{k1.Node(), k2.Node()})
	tmpl := PodSpec{
		QoS:     cgroup.Burstable,
		Request: res.V(1000, 1024, 0), Limit: res.V(1000, 1024, 0),
	}
	c := NewReplicaSetController("web", map[string]string{"app": "web"}, 3, tmpl, s, st, sch, kls)
	return s, st, c, kls
}

func TestReplicaSetReconcilesToDesired(t *testing.T) {
	s, st, c, _ := rsEnv(t)
	c.Reconcile()
	s.Run()
	running := st.Pods(func(p *Pod) bool { return p.Phase == PodRunning })
	if len(running) != 3 {
		t.Fatalf("running = %d, want 3", len(running))
	}
	for _, p := range running {
		if p.Spec.Labels["app"] != "web" {
			t.Fatal("selector labels not applied")
		}
	}
}

func TestReplicaSetReplacesDeletedPod(t *testing.T) {
	s, st, c, kls := rsEnv(t)
	c.Reconcile()
	s.Run()
	victim := st.Pods(func(p *Pod) bool { return p.Phase == PodRunning })[0]
	// Kill the pod the way a native-VPA delete or crash would.
	name := victim.Spec.Name
	if err := kls[victim.Spec.Node].StopPod(victim, func() { _ = st.DeletePod(name) }); err != nil {
		t.Fatal(err)
	}
	s.Run()
	running := st.Pods(func(p *Pod) bool { return p.Phase == PodRunning })
	if len(running) != 3 {
		t.Fatalf("controller did not replace the pod: running = %d", len(running))
	}
	if c.Reconciles < 2 {
		t.Fatalf("reconciles = %d", c.Reconciles)
	}
}

func TestReplicaSetScalesDown(t *testing.T) {
	s, st, c, _ := rsEnv(t)
	c.Reconcile()
	s.Run()
	c.Desired = 1
	c.Reconcile()
	s.Run()
	live := c.Live()
	if len(live) != 1 {
		t.Fatalf("live = %d after scale down", len(live))
	}
	// Terminated pods eventually deleted from the store.
	if got := len(st.Pods(nil)); got != 1 {
		t.Fatalf("store pods = %d", got)
	}
}

func TestReplicaSetIgnoresForeignPods(t *testing.T) {
	s, st, c, kls := rsEnv(t)
	c.Reconcile()
	s.Run()
	before := c.Reconciles
	// A pod without matching labels must not trigger reconciliation.
	p, err := st.CreatePod(PodSpec{Name: "other", QoS: cgroup.BestEffort,
		Request: res.V(100, 128, 0), Limit: res.V(100, 128, 0), Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := kls[1].RunPod(p, nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if c.Reconciles != before {
		t.Fatalf("foreign pod triggered reconcile (%d -> %d)", before, c.Reconciles)
	}
}

func TestReplicaSetCreateFailureWhenFull(t *testing.T) {
	s, _, c, _ := rsEnv(t)
	// 2 nodes x 4000m, 1000m per pod => at most 8 pods.
	c.Desired = 10
	c.Reconcile()
	s.Run()
	if len(c.Live()) != 8 {
		t.Fatalf("live = %d, want 8 (capacity)", len(c.Live()))
	}
	if c.CreateFailures == 0 {
		t.Fatal("no create failures recorded")
	}
}

func TestReconcileCoalescesEvents(t *testing.T) {
	s, _, c, _ := rsEnv(t)
	c.Reconcile() // creates 3 pods -> 3 ADDED + phase updates
	before := c.Reconciles
	s.RunFor(10 * time.Second)
	// Event bursts coalesce: far fewer reconciles than events.
	if c.Reconciles-before > 10 {
		t.Fatalf("reconciles exploded: %d", c.Reconciles-before)
	}
}
