package k8s

import (
	"fmt"
	"time"

	"repro/internal/topo"
)

// MigratePod live-migrates a running pod between two kubelets: graceful
// stop at the source, checkpoint transfer over the WAN latency model
// (half an RTT plus the dirty memory — 1/64 of the limit, the same
// fraction the engine's request-level migration prices — over the link
// bandwidth), then a restore-start at the destination. Returns the
// expected end-to-end duration (stop + transfer + start); onRunning
// fires when the pod reaches Running on the destination.
//
// The pod keeps its identity (UID, name) across the move — watchers see
// Terminating/Terminated on the source node, then Pending/Creating/
// Running on the destination, which is exactly the event sequence a
// CRIU-style external migrator produces against a real API server.
func MigratePod(tp *topo.Topology, src, dst *Kubelet, p *Pod, onRunning func()) (time.Duration, error) {
	if src.node.ID == dst.node.ID {
		return 0, fmt.Errorf("k8s: migrate %s onto its own node %d", p.Spec.Name, src.node.ID)
	}
	if p.Spec.Node != src.node.ID {
		return 0, fmt.Errorf("k8s: pod %s bound to node %d, not source %d", p.Spec.Name, p.Spec.Node, src.node.ID)
	}
	if p.Phase != PodRunning {
		return 0, fmt.Errorf("k8s: cannot migrate pod %s in phase %s", p.Spec.Name, p.Phase)
	}
	a, b := tp.Node(src.node.ID).Cluster, tp.Node(dst.node.ID).Cluster
	if !tp.Reachable(a, b) {
		return 0, fmt.Errorf("k8s: clusters %d and %d are partitioned", a, b)
	}
	if !dst.node.Free().Fits(p.Spec.Request) {
		return 0, fmt.Errorf("k8s: node %d lacks resources for %s (free %v, need %v)",
			dst.node.ID, p.Spec.Name, dst.node.Free(), p.Spec.Request)
	}
	stateKB := p.Spec.Limit.MemoryMiB * 16
	bw := tp.LinkBandwidth(src.node.ID, dst.node.ID)
	transfer := tp.RTT(src.node.ID, dst.node.ID)/2 +
		time.Duration(float64(stateKB*8)/float64(bw)*float64(time.Millisecond))
	if err := src.StopPod(p, func() {
		src.sim.Schedule(transfer, func() {
			p.Spec.Node = dst.node.ID
			p.Phase = PodPending
			src.store.UpdatePod(p)
			// A destination that filled up (or died) during the transfer
			// leaves the pod Terminated — the controller layer re-creates
			// it like any other lost replica.
			if err := dst.RunPod(p, onRunning); err != nil {
				p.Phase = PodTerminated
				src.store.UpdatePod(p)
			}
		})
	}); err != nil {
		return 0, err
	}
	return src.StopLatency + transfer + dst.StartLatency, nil
}
