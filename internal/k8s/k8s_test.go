package k8s

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cgroup"
	"repro/internal/res"
	"repro/internal/sim"
	"repro/internal/topo"
)

func env() (*sim.Simulator, *Store) {
	s := sim.New()
	return s, NewStore(s)
}

func spec(name string, node topo.NodeID, req res.Vector) PodSpec {
	return PodSpec{Name: name, QoS: cgroup.Burstable, Request: req, Limit: req, Node: node}
}

func TestPodPhaseStrings(t *testing.T) {
	want := map[PodPhase]string{
		PodPending: "Pending", PodCreating: "ContainerCreating", PodRunning: "Running",
		PodTerminating: "Terminating", PodTerminated: "Terminated",
	}
	for p, w := range want {
		if p.String() != w {
			t.Fatalf("%d = %q", int(p), p.String())
		}
	}
	if EventAdded.String() != "ADDED" || EventDeleted.String() != "DELETED" || EventModified.String() != "MODIFIED" {
		t.Fatal("event type strings")
	}
}

func TestStoreCRUDAndWatch(t *testing.T) {
	_, st := env()
	var events []Event
	st.Watch(func(e Event) { events = append(events, e) })
	p, err := st.CreatePod(spec("a", 0, res.V(100, 128, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if p.UID == "" || p.Phase != PodPending {
		t.Fatalf("pod %+v", p)
	}
	if _, err := st.CreatePod(spec("a", 0, res.V(1, 1, 0))); err == nil {
		t.Fatal("duplicate create allowed")
	}
	if _, err := st.CreatePod(PodSpec{}); err == nil {
		t.Fatal("nameless create allowed")
	}
	got, err := st.GetPod("a")
	if err != nil || got != p {
		t.Fatalf("GetPod: %v %v", got, err)
	}
	st.UpdatePod(p)
	if err := st.DeletePod("a"); err != nil {
		t.Fatal(err)
	}
	if err := st.DeletePod("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
	if _, err := st.GetPod("a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("pod still visible after delete")
	}
	if len(events) != 3 { // ADDED, MODIFIED, DELETED
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Type != EventAdded || events[1].Type != EventModified || events[2].Type != EventDeleted {
		t.Fatalf("event order %v %v %v", events[0].Type, events[1].Type, events[2].Type)
	}
}

func TestPodsFilterPreservesOrder(t *testing.T) {
	_, st := env()
	for _, n := range []string{"c", "a", "b"} {
		if _, err := st.CreatePod(spec(n, 0, res.V(1, 1, 0))); err != nil {
			t.Fatal(err)
		}
	}
	all := st.Pods(nil)
	if len(all) != 3 || all[0].Spec.Name != "c" || all[2].Spec.Name != "b" {
		t.Fatal("creation order not preserved")
	}
	some := st.Pods(func(p *Pod) bool { return p.Spec.Name != "a" })
	if len(some) != 2 {
		t.Fatalf("filtered = %d", len(some))
	}
}

func TestKubeletLifecycle(t *testing.T) {
	s, st := env()
	kl := NewKubelet(s, st, 3, res.V(4000, 8192, 0))
	p, _ := st.CreatePod(spec("web", 3, res.V(1000, 1024, 0)))
	ran := false
	if err := kl.RunPod(p, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if p.Phase != PodCreating {
		t.Fatalf("phase = %v immediately after RunPod", p.Phase)
	}
	if kl.Node().Free() != res.V(3000, 7168, 0) {
		t.Fatalf("free = %v", kl.Node().Free())
	}
	s.RunFor(kl.StartLatency - time.Millisecond)
	if p.Phase != PodCreating || ran {
		t.Fatal("pod running before start latency elapsed")
	}
	s.RunFor(2 * time.Millisecond)
	if p.Phase != PodRunning || !ran {
		t.Fatalf("phase = %v after start latency", p.Phase)
	}
	if p.StartedAt != kl.StartLatency {
		t.Fatalf("StartedAt = %v", p.StartedAt)
	}
	if p.ContainerGroup == nil || p.PodGroup == nil {
		t.Fatal("cgroups not created")
	}
	if p.ContainerGroup.Path() != "kubepods/burstable/"+p.UID+"/"+p.UID+"-c0" {
		t.Fatalf("cgroup path = %q", p.ContainerGroup.Path())
	}

	// Stop and verify reclamation.
	if err := kl.StopPod(p, nil); err != nil {
		t.Fatal(err)
	}
	if p.Phase != PodTerminating {
		t.Fatalf("phase = %v after StopPod", p.Phase)
	}
	s.RunFor(kl.StopLatency + time.Millisecond)
	if p.Phase != PodTerminated {
		t.Fatalf("phase = %v", p.Phase)
	}
	if kl.Node().Free() != res.V(4000, 8192, 0) {
		t.Fatalf("resources leaked: free = %v", kl.Node().Free())
	}
	if _, err := kl.Node().CGroups.Lookup("kubepods/burstable/" + p.UID); err == nil {
		t.Fatal("cgroup not removed")
	}
}

func TestKubeletRejectsWrongNodeAndOverflow(t *testing.T) {
	s, st := env()
	kl := NewKubelet(s, st, 1, res.V(1000, 1024, 0))
	p, _ := st.CreatePod(spec("x", 2, res.V(100, 100, 0)))
	if err := kl.RunPod(p, nil); err == nil {
		t.Fatal("wrong-node pod accepted")
	}
	p2, _ := st.CreatePod(spec("big", 1, res.V(2000, 100, 0)))
	if err := kl.RunPod(p2, nil); err == nil {
		t.Fatal("oversized pod accepted")
	}
	p3, _ := st.CreatePod(spec("ok", 1, res.V(1000, 1024, 0)))
	if err := kl.RunPod(p3, nil); err != nil {
		t.Fatal(err)
	}
	p4, _ := st.CreatePod(spec("nofit", 1, res.V(1, 1, 0)))
	if err := kl.RunPod(p4, nil); err == nil {
		t.Fatal("pod accepted with no free resources")
	}
}

func TestStopPodInvalidPhase(t *testing.T) {
	s, st := env()
	kl := NewKubelet(s, st, 1, res.V(1000, 1024, 0))
	p, _ := st.CreatePod(spec("x", 1, res.V(100, 100, 0)))
	if err := kl.StopPod(p, nil); err == nil {
		t.Fatal("stopping a Pending pod should fail")
	}
	_ = s
}

func TestSchedulerFilterAndScore(t *testing.T) {
	idle := &NodeState{ID: 1, Allocatable: res.V(4000, 8192, 0)}
	busy := &NodeState{ID: 2, Allocatable: res.V(4000, 8192, 0), Reserved: res.V(3500, 7000, 0)}
	tiny := &NodeState{ID: 3, Allocatable: res.V(100, 128, 0)}
	sch := NewScheduler([]*NodeState{busy, idle, tiny})
	p := &Pod{Spec: spec("p", -1, res.V(1000, 1024, 0))}
	n, err := sch.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if n.ID != 1 {
		t.Fatalf("scheduled to %d, want idle node 1", n.ID)
	}
	if p.Spec.Node != 1 {
		t.Fatal("spec.Node not set")
	}
	huge := &Pod{Spec: spec("huge", -1, res.V(99999, 1, 0))}
	if _, err := sch.Schedule(huge); err == nil {
		t.Fatal("unschedulable pod got a node")
	}
}

func TestRoundRobinProxyCycles(t *testing.T) {
	p := NewRoundRobinProxy([]topo.NodeID{5, 6, 7})
	var got []topo.NodeID
	for i := 0; i < 6; i++ {
		id, err := p.Pick()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, id)
	}
	want := []topo.NodeID{5, 6, 7, 5, 6, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence = %v", got)
		}
	}
	empty := NewRoundRobinProxy(nil)
	if _, err := empty.Pick(); err == nil {
		t.Fatal("empty proxy did not error")
	}
}

func TestNativeVPADowntimeAndRestart(t *testing.T) {
	s, st := env()
	kl := NewKubelet(s, st, 1, res.V(4000, 8192, 0))
	p, _ := st.CreatePod(spec("svc", 1, res.V(1000, 1024, 0)))
	if err := kl.RunPod(p, nil); err != nil {
		t.Fatal(err)
	}
	s.RunFor(kl.StartLatency + time.Millisecond)
	if p.Phase != PodRunning {
		t.Fatal("setup: pod not running")
	}

	vpa := &NativeVPA{Kubelet: kl, Store: st}
	rebuilt := false
	start := s.Now()
	downtime, err := vpa.Resize(p, res.V(2000, 2048, 0), func() { rebuilt = true })
	if err != nil {
		t.Fatal(err)
	}
	if downtime != kl.StopLatency+kl.StartLatency {
		t.Fatalf("downtime = %v", downtime)
	}
	// The delete-and-rebuild approach takes ~100x longer than D-VPA's 23ms.
	if downtime < 100*23*time.Millisecond {
		t.Fatalf("native VPA downtime %v should be >= 100x 23ms", downtime)
	}
	s.Run()
	if !rebuilt {
		t.Fatal("replacement pod never became Running")
	}
	np, err := st.GetPod("svc")
	if err != nil {
		t.Fatal(err)
	}
	if np == p {
		t.Fatal("pod object was not rebuilt")
	}
	if np.Spec.Limit != res.V(2000, 2048, 0) {
		t.Fatalf("new limit = %v", np.Spec.Limit)
	}
	if np.Restarts != 1 {
		t.Fatalf("restarts = %d", np.Restarts)
	}
	if got := s.Now() - start; got < downtime {
		t.Fatalf("wall downtime %v < reported %v", got, downtime)
	}

	// Resizing a non-running pod fails.
	pending, _ := st.CreatePod(spec("p2", 1, res.V(1, 1, 0)))
	if _, err := vpa.Resize(pending, res.V(2, 2, 0), nil); err == nil {
		t.Fatal("resize of pending pod allowed")
	}
}

func deployEnv(t *testing.T) (*sim.Simulator, *Store, *Deployment) {
	t.Helper()
	s, st := env()
	k1 := NewKubelet(s, st, 1, res.V(4000, 8192, 0))
	k2 := NewKubelet(s, st, 2, res.V(4000, 8192, 0))
	sch := NewScheduler([]*NodeState{k1.Node(), k2.Node()})
	tmpl := spec("", -1, res.V(1000, 1024, 0))
	d := NewDeployment("web", tmpl, st, sch, map[topo.NodeID]*Kubelet{1: k1, 2: k2})
	return s, st, d
}

func TestDeploymentScaleUpDown(t *testing.T) {
	s, st, d := deployEnv(t)
	if err := d.Scale(4); err != nil {
		t.Fatal(err)
	}
	s.Run()
	running := st.Pods(func(p *Pod) bool { return p.Phase == PodRunning })
	if len(running) != 4 {
		t.Fatalf("running = %d, want 4", len(running))
	}
	// Replicas spread across both nodes by the scheduler.
	nodes := map[topo.NodeID]int{}
	for _, p := range running {
		nodes[p.Spec.Node]++
	}
	if nodes[1] != 2 || nodes[2] != 2 {
		t.Fatalf("spread = %v", nodes)
	}
	if err := d.Scale(1); err != nil {
		t.Fatal(err)
	}
	s.Run()
	left := st.Pods(nil)
	if len(left) != 1 {
		t.Fatalf("pods after scale down = %d", len(left))
	}
	if err := d.Scale(-1); err == nil {
		t.Fatal("negative scale allowed")
	}
}

func TestDeploymentScaleFailsWhenFull(t *testing.T) {
	s, _, d := deployEnv(t)
	// 2 nodes x 4000m / pod 1000m => max 8 replicas.
	if err := d.Scale(8); err != nil {
		t.Fatal(err)
	}
	if err := d.Scale(9); err == nil {
		t.Fatal("overcommit scale succeeded")
	}
	s.Run()
}

func TestHPAScalesTowardTarget(t *testing.T) {
	s, _, d := deployEnv(t)
	if err := d.Scale(1); err != nil {
		t.Fatal(err)
	}
	s.Run()
	util := 0.9
	h := NewHPA(d, 1, 6, 0.5, func() float64 { return util })
	n, err := h.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 { // ceil(1 * 0.9/0.5) = 2
		t.Fatalf("replicas = %d, want 2", n)
	}
	util = 0.1
	s.Run()
	n, err = h.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 { // ceil(2 * 0.1/0.5) = 1
		t.Fatalf("replicas = %d, want 1", n)
	}
	s.Run()
}

func TestSortNodesByFree(t *testing.T) {
	a := &NodeState{ID: 1, Allocatable: res.V(1000, 0, 0), Reserved: res.V(900, 0, 0)}
	b := &NodeState{ID: 2, Allocatable: res.V(1000, 0, 0)}
	c := &NodeState{ID: 3, Allocatable: res.V(1000, 0, 0)}
	nodes := []*NodeState{a, c, b}
	SortNodesByFree(nodes)
	if nodes[0].ID != 2 || nodes[1].ID != 3 || nodes[2].ID != 1 {
		t.Fatalf("order = %v %v %v", nodes[0].ID, nodes[1].ID, nodes[2].ID)
	}
}

func TestDeletedWhileCreatingDoesNotRun(t *testing.T) {
	s, st := env()
	kl := NewKubelet(s, st, 1, res.V(4000, 8192, 0))
	p, _ := st.CreatePod(spec("ghost", 1, res.V(1000, 1024, 0)))
	if err := kl.RunPod(p, func() { t.Fatal("onRunning fired for stopped pod") }); err != nil {
		t.Fatal(err)
	}
	// Stop while still creating.
	if err := kl.StopPod(p, nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if p.Phase != PodTerminated {
		t.Fatalf("phase = %v", p.Phase)
	}
	if kl.Node().Free() != res.V(4000, 8192, 0) {
		t.Fatalf("leak: free = %v", kl.Node().Free())
	}
}
