package k8s

import (
	"testing"
	"time"

	"repro/internal/res"
	"repro/internal/sim"
	"repro/internal/topo"
)

// migTopo builds two single-worker clusters: workers 1 and 3.
func migTopo() *topo.Topology {
	b := topo.NewBuilder()
	caps := []res.Vector{res.V(4000, 8192, 500)}
	b.AddCluster(31.2, 121.5, res.V(8000, 16384, 1000), caps)
	b.AddCluster(32.1, 118.8, res.V(8000, 16384, 1000), caps)
	return b.Build()
}

func migSetup(t *testing.T) (*sim.Simulator, *Store, *topo.Topology, *Kubelet, *Kubelet, *Pod) {
	t.Helper()
	s := sim.New()
	st := NewStore(s)
	tp := migTopo()
	src := NewKubelet(s, st, 1, res.V(4000, 8192, 500))
	dst := NewKubelet(s, st, 3, res.V(4000, 8192, 500))
	p, err := st.CreatePod(spec("svc", 1, res.V(1000, 512, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := src.RunPod(p, nil); err != nil {
		t.Fatal(err)
	}
	s.RunFor(src.StartLatency + time.Millisecond)
	if p.Phase != PodRunning {
		t.Fatalf("setup: pod phase %s", p.Phase)
	}
	return s, st, tp, src, dst, p
}

func TestMigratePodMovesAcrossKubelets(t *testing.T) {
	s, _, tp, src, dst, p := migSetup(t)
	running := false
	start := s.Now()
	total, err := MigratePod(tp, src, dst, p, func() { running = true })
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !running || p.Phase != PodRunning || p.Spec.Node != 3 {
		t.Fatalf("after migration: running=%v phase=%s node=%d", running, p.Phase, p.Spec.Node)
	}
	if got := s.Now() - start; got != total {
		t.Fatalf("migration took %v, MigratePod predicted %v", got, total)
	}
	// The source released everything; the destination holds the pod.
	if !src.Node().Reserved.IsZero() {
		t.Fatalf("source still reserves %v", src.Node().Reserved)
	}
	if dst.Node().Reserved != p.Spec.Request {
		t.Fatalf("destination reserves %v, want %v", dst.Node().Reserved, p.Spec.Request)
	}
	// Cost model: stop + half RTT + dirty-state serialization + start.
	stateKB := p.Spec.Limit.MemoryMiB * 16
	ser := time.Duration(float64(stateKB*8) / float64(tp.LinkBandwidth(1, 3)) * float64(time.Millisecond))
	want := src.StopLatency + tp.RTT(1, 3)/2 + ser + dst.StartLatency
	if total != want {
		t.Fatalf("predicted %v, want %v", total, want)
	}
}

func TestMigratePodRefusals(t *testing.T) {
	_, _, tp, src, dst, p := migSetup(t)
	if _, err := MigratePod(tp, src, src, p, nil); err == nil {
		t.Fatal("self-migration accepted")
	}
	if _, err := MigratePod(tp, dst, src, p, nil); err == nil {
		t.Fatal("migration from a kubelet that does not own the pod accepted")
	}
	tp.Net().Partition(0, 1)
	if _, err := MigratePod(tp, src, dst, p, nil); err == nil {
		t.Fatal("migration crossed a partitioned WAN link")
	}
	tp.Net().Heal(0, 1)
	if _, err := MigratePod(tp, src, dst, p, nil); err != nil {
		t.Fatalf("migration refused after heal: %v", err)
	}
	// Now Terminating: a second migration must be refused.
	if _, err := MigratePod(tp, src, dst, p, nil); err == nil {
		t.Fatal("double migration accepted")
	}
}
