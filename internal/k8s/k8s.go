// Package k8s is a behaviour-level model of the Kubernetes machinery
// Tango extends (§2.1, §3): an API-server object store with watches, pods
// whose containers take seconds to start, kubelets that materialize pods
// into per-node cgroup hierarchies, the default scheduler's
// filter-and-score node selection, the native Vertical Pod Autoscaler
// (which performs delete-and-rebuild resizes and therefore interrupts the
// container — the pain point D-VPA removes), a Horizontal Pod Autoscaler
// and the round-robin service proxy that the paper uses as the
// "K8s-native" traffic baseline.
//
// The model reproduces the control-plane behaviour and latencies that
// matter to the paper's experiments; it does not run real containers,
// exactly like the paper's own "K8s API behaviour-level simulation of
// edge clouds" (Figure 8).
package k8s

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cgroup"
	"repro/internal/obs"
	"repro/internal/res"
	"repro/internal/sim"
	"repro/internal/topo"
)

// PodPhase is the pod lifecycle state.
type PodPhase int

const (
	PodPending PodPhase = iota
	PodCreating
	PodRunning
	PodTerminating
	PodTerminated
)

func (p PodPhase) String() string {
	switch p {
	case PodPending:
		return "Pending"
	case PodCreating:
		return "ContainerCreating"
	case PodRunning:
		return "Running"
	case PodTerminating:
		return "Terminating"
	case PodTerminated:
		return "Terminated"
	default:
		return fmt.Sprintf("PodPhase(%d)", int(p))
	}
}

// PodSpec is the desired state of a pod. Each pod models one container
// (the paper's services are single-container applications, §6.2).
type PodSpec struct {
	Name    string
	Labels  map[string]string
	QoS     cgroup.QoSClass
	Request res.Vector // scheduler reservation
	Limit   res.Vector // cgroup limit
	Node    topo.NodeID
}

// Pod is a pod object tracked by the store.
type Pod struct {
	UID       string
	Spec      PodSpec
	Phase     PodPhase
	StartedAt time.Duration // virtual time the container became Running
	Restarts  int

	// cgroup bindings, populated by the kubelet when Running.
	PodGroup       *cgroup.Group
	ContainerGroup *cgroup.Group
}

// EventType enumerates store watch events.
type EventType int

const (
	EventAdded EventType = iota
	EventModified
	EventDeleted
)

func (e EventType) String() string {
	switch e {
	case EventAdded:
		return "ADDED"
	case EventModified:
		return "MODIFIED"
	case EventDeleted:
		return "DELETED"
	default:
		return fmt.Sprintf("EventType(%d)", int(e))
	}
}

// Event is delivered to watchers on every pod mutation.
type Event struct {
	Type EventType
	Pod  *Pod
}

// ErrNotFound is returned for unknown object names.
var ErrNotFound = errors.New("k8s: not found")

// Store is the API-server object store.
type Store struct {
	sim      *sim.Simulator
	pods     map[string]*Pod
	order    []string // insertion order for deterministic iteration
	watchers []func(Event)
	uidSeq   int
	trc      *obs.Tracer
}

// SetTracer attaches a tracer; every subsequent pod mutation emits a pod
// event (Detail = "EVENT/Phase pod-name", Node = bound worker).
func (s *Store) SetTracer(t *obs.Tracer) { s.trc = t }

// NewStore creates an empty object store on the given simulator.
func NewStore(s *sim.Simulator) *Store {
	return &Store{sim: s, pods: map[string]*Pod{}}
}

// Watch registers fn to receive every subsequent pod event.
func (s *Store) Watch(fn func(Event)) { s.watchers = append(s.watchers, fn) }

func (s *Store) notify(e Event) {
	if tr := s.trc; tr.Enabled() {
		tr.Emit(obs.Ev(obs.EvPod).Node(int(e.Pod.Spec.Node)).
			Note(e.Type.String() + "/" + e.Pod.Phase.String() + " " + e.Pod.Spec.Name))
	}
	for _, w := range s.watchers {
		w(e)
	}
}

// CreatePod adds a pod in Pending phase and returns it.
func (s *Store) CreatePod(spec PodSpec) (*Pod, error) {
	if spec.Name == "" {
		return nil, errors.New("k8s: pod needs a name")
	}
	if _, dup := s.pods[spec.Name]; dup {
		return nil, fmt.Errorf("k8s: pod %q already exists", spec.Name)
	}
	s.uidSeq++
	p := &Pod{UID: fmt.Sprintf("pod%06x", s.uidSeq), Spec: spec, Phase: PodPending}
	s.pods[spec.Name] = p
	s.order = append(s.order, spec.Name)
	s.notify(Event{EventAdded, p})
	return p, nil
}

// GetPod returns the pod with the given name.
func (s *Store) GetPod(name string) (*Pod, error) {
	p, ok := s.pods[name]
	if !ok {
		return nil, fmt.Errorf("%w: pod %q", ErrNotFound, name)
	}
	return p, nil
}

// UpdatePod records a mutation of the pod and notifies watchers.
func (s *Store) UpdatePod(p *Pod) { s.notify(Event{EventModified, p}) }

// DeletePod removes a pod from the store.
func (s *Store) DeletePod(name string) error {
	p, ok := s.pods[name]
	if !ok {
		return fmt.Errorf("%w: pod %q", ErrNotFound, name)
	}
	delete(s.pods, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.notify(Event{EventDeleted, p})
	return nil
}

// Pods returns all pods in creation order, optionally filtered.
func (s *Store) Pods(filter func(*Pod) bool) []*Pod {
	var out []*Pod
	for _, name := range s.order {
		p := s.pods[name]
		if filter == nil || filter(p) {
			out = append(out, p)
		}
	}
	return out
}

// NodeState tracks what a kubelet knows about its node.
type NodeState struct {
	ID          topo.NodeID
	Allocatable res.Vector
	Reserved    res.Vector // sum of requests of pods bound here
	CGroups     *cgroup.Hierarchy
}

// Free returns allocatable minus reserved.
func (n *NodeState) Free() res.Vector { return n.Allocatable.Sub(n.Reserved) }

// Kubelet materializes pods on one node: it creates the pod- and
// container-level cgroups and walks the pod through
// Pending→ContainerCreating→Running with a realistic start-up latency
// (the reason horizontal scaling is too slow for millisecond LC traffic).
type Kubelet struct {
	sim   *sim.Simulator
	store *Store
	node  *NodeState
	// StartLatency is container image pull + start time.
	StartLatency time.Duration
	// StopLatency is graceful termination time.
	StopLatency time.Duration
}

// DefaultStartLatency is the container start-up time; ~2.3 s makes the
// native VPA's delete-and-rebuild about 100× slower than D-VPA's 23 ms
// cgroup write, matching §7.1.
const DefaultStartLatency = 2300 * time.Millisecond

// DefaultStopLatency is the pod termination time.
const DefaultStopLatency = 100 * time.Millisecond

// NewKubelet creates the kubelet for one worker node.
func NewKubelet(s *sim.Simulator, store *Store, id topo.NodeID, allocatable res.Vector) *Kubelet {
	return &Kubelet{
		sim:   s,
		store: store,
		node: &NodeState{
			ID:          id,
			Allocatable: allocatable,
			CGroups:     cgroup.NewHierarchy(allocatable),
		},
		StartLatency: DefaultStartLatency,
		StopLatency:  DefaultStopLatency,
	}
}

// Node returns the kubelet's node state.
func (k *Kubelet) Node() *NodeState { return k.node }

// RunPod starts a pod bound to this node. onRunning (optional) fires when
// the container reaches Running.
func (k *Kubelet) RunPod(p *Pod, onRunning func()) error {
	if p.Spec.Node != k.node.ID {
		return fmt.Errorf("k8s: pod %s bound to node %d, kubelet on %d", p.Spec.Name, p.Spec.Node, k.node.ID)
	}
	if !k.node.Free().Fits(p.Spec.Request) {
		return fmt.Errorf("k8s: node %d lacks resources for %s (free %v, need %v)",
			k.node.ID, p.Spec.Name, k.node.Free(), p.Spec.Request)
	}
	k.node.Reserved = k.node.Reserved.Add(p.Spec.Request)
	p.Phase = PodCreating
	k.store.UpdatePod(p)
	k.sim.Schedule(k.StartLatency, func() {
		if p.Phase != PodCreating { // deleted while creating
			return
		}
		pg, err := k.node.CGroups.CreatePod(p.Spec.QoS, p.UID, cgroup.FromVector(p.Spec.Limit))
		if err != nil {
			// Roll back the reservation; surface as a terminated pod.
			k.node.Reserved = k.node.Reserved.Sub(p.Spec.Request)
			p.Phase = PodTerminated
			k.store.UpdatePod(p)
			return
		}
		cgp, err := k.node.CGroups.CreateContainer(pg, p.UID+"-c0", cgroup.FromVector(p.Spec.Limit))
		if err != nil {
			_ = k.node.CGroups.Remove(pg)
			k.node.Reserved = k.node.Reserved.Sub(p.Spec.Request)
			p.Phase = PodTerminated
			k.store.UpdatePod(p)
			return
		}
		p.PodGroup, p.ContainerGroup = pg, cgp
		p.Phase = PodRunning
		p.StartedAt = k.sim.Now()
		k.store.UpdatePod(p)
		if onRunning != nil {
			onRunning()
		}
	})
	return nil
}

// StopPod terminates a pod on this node, freeing its reservation and
// cgroups after StopLatency. onStopped (optional) fires when done.
func (k *Kubelet) StopPod(p *Pod, onStopped func()) error {
	switch p.Phase {
	case PodRunning, PodCreating:
	default:
		return fmt.Errorf("k8s: cannot stop pod %s in phase %s", p.Spec.Name, p.Phase)
	}
	prev := p.Phase
	p.Phase = PodTerminating
	k.store.UpdatePod(p)
	k.sim.Schedule(k.StopLatency, func() {
		if prev == PodRunning && p.PodGroup != nil {
			_ = k.node.CGroups.Remove(p.PodGroup)
			p.PodGroup, p.ContainerGroup = nil, nil
		}
		k.node.Reserved = k.node.Reserved.Sub(p.Spec.Request)
		p.Phase = PodTerminated
		k.store.UpdatePod(p)
		if onStopped != nil {
			onStopped()
		}
	})
	return nil
}

// Scheduler implements the default kube-scheduler behaviour: filter nodes
// with insufficient free resources, score the rest with LeastRequested +
// BalancedResourceAllocation, bind to the best.
type Scheduler struct {
	nodes []*NodeState
}

// NewScheduler creates a scheduler over the given nodes.
func NewScheduler(nodes []*NodeState) *Scheduler { return &Scheduler{nodes: nodes} }

// Schedule picks a node for the pod and sets spec.Node. It returns the
// chosen node state or an error when no node fits.
func (s *Scheduler) Schedule(p *Pod) (*NodeState, error) {
	var best *NodeState
	bestScore := -1.0
	for _, n := range s.nodes {
		if !n.Free().Fits(p.Spec.Request) {
			continue
		}
		score := scoreNode(n, p.Spec.Request)
		if score > bestScore {
			bestScore, best = score, n
		}
	}
	if best == nil {
		return nil, fmt.Errorf("k8s: no node fits pod %s (request %v)", p.Spec.Name, p.Spec.Request)
	}
	p.Spec.Node = best.ID
	return best, nil
}

// scoreNode mirrors LeastRequestedPriority (favour idle nodes) combined
// with BalancedResourceAllocation (favour even CPU/memory usage).
func scoreNode(n *NodeState, req res.Vector) float64 {
	after := n.Reserved.Add(req)
	cpuFrac := frac(after.MilliCPU, n.Allocatable.MilliCPU)
	memFrac := frac(after.MemoryMiB, n.Allocatable.MemoryMiB)
	least := (1-cpuFrac)/2 + (1-memFrac)/2
	diff := cpuFrac - memFrac
	if diff < 0 {
		diff = -diff
	}
	balanced := 1 - diff
	return least*10 + balanced*10
}

func frac(used, capacity int64) float64 {
	if capacity <= 0 {
		return 1
	}
	f := float64(used) / float64(capacity)
	if f > 1 {
		f = 1
	}
	return f
}

// RoundRobinProxy is the kube-proxy round-robin endpoint picker — the
// paper's "K8s-native" traffic scheduling baseline [9].
type RoundRobinProxy struct {
	endpoints []topo.NodeID
	next      int
}

// NewRoundRobinProxy creates a proxy over a fixed endpoint list.
func NewRoundRobinProxy(endpoints []topo.NodeID) *RoundRobinProxy {
	cp := make([]topo.NodeID, len(endpoints))
	copy(cp, endpoints)
	return &RoundRobinProxy{endpoints: cp}
}

// Pick returns the next endpoint, cycling.
func (r *RoundRobinProxy) Pick() (topo.NodeID, error) {
	if len(r.endpoints) == 0 {
		return 0, errors.New("k8s: proxy has no endpoints")
	}
	id := r.endpoints[r.next%len(r.endpoints)]
	r.next++
	return id, nil
}

// NativeVPA models the upstream Vertical Pod Autoscaler plugin [11]: to
// change a pod's resources it deletes the pod and recreates it with the
// new limits, which interrupts the container for the whole delete +
// reschedule + restart window. Resize reports that downtime.
type NativeVPA struct {
	Kubelet *Kubelet
	Store   *Store
}

// Resize performs the delete-and-rebuild resize. onRunning fires when the
// replacement pod is Running. It returns the modelled downtime.
func (v *NativeVPA) Resize(p *Pod, newLimit res.Vector, onRunning func()) (time.Duration, error) {
	if p.Phase != PodRunning {
		return 0, fmt.Errorf("k8s: native VPA can only resize Running pods (%s is %s)", p.Spec.Name, p.Phase)
	}
	downtime := v.Kubelet.StopLatency + v.Kubelet.StartLatency
	oldName := p.Spec.Name
	err := v.Kubelet.StopPod(p, func() {
		spec := p.Spec
		spec.Name = oldName // reuse the name once the old object is gone
		spec.Limit = newLimit
		spec.Request = spec.Request.Min(newLimit)
		_ = v.Store.DeletePod(oldName)
		np, err := v.Store.CreatePod(spec)
		if err != nil {
			return
		}
		np.Restarts = p.Restarts + 1
		_ = v.Kubelet.RunPod(np, onRunning)
	})
	if err != nil {
		return 0, err
	}
	return downtime, nil
}

// Deployment is a minimal replica-set controller used by the HPA model.
type Deployment struct {
	Name     string
	Template PodSpec
	Replicas int

	store     *Store
	scheduler *Scheduler
	kubelets  map[topo.NodeID]*Kubelet
	serial    int
	pods      []*Pod
}

// NewDeployment creates a deployment that can place replicas through the
// given scheduler and kubelets.
func NewDeployment(name string, tmpl PodSpec, store *Store, sched *Scheduler, kubelets map[topo.NodeID]*Kubelet) *Deployment {
	return &Deployment{Name: name, Template: tmpl, store: store, scheduler: sched, kubelets: kubelets}
}

// Pods returns the current replica pods.
func (d *Deployment) Pods() []*Pod { return d.pods }

// Scale reconciles the replica count to n, creating or deleting pods.
func (d *Deployment) Scale(n int) error {
	if n < 0 {
		return fmt.Errorf("k8s: negative replica count %d", n)
	}
	for len(d.pods) < n {
		d.serial++
		spec := d.Template
		spec.Name = fmt.Sprintf("%s-%d", d.Name, d.serial)
		p, err := d.store.CreatePod(spec)
		if err != nil {
			return err
		}
		node, err := d.scheduler.Schedule(p)
		if err != nil {
			_ = d.store.DeletePod(spec.Name)
			return err
		}
		kl, ok := d.kubelets[node.ID]
		if !ok {
			_ = d.store.DeletePod(spec.Name)
			return fmt.Errorf("k8s: no kubelet for node %d", node.ID)
		}
		if err := kl.RunPod(p, nil); err != nil {
			_ = d.store.DeletePod(spec.Name)
			return err
		}
		d.pods = append(d.pods, p)
	}
	for len(d.pods) > n {
		p := d.pods[len(d.pods)-1]
		d.pods = d.pods[:len(d.pods)-1]
		if kl, ok := d.kubelets[p.Spec.Node]; ok && (p.Phase == PodRunning || p.Phase == PodCreating) {
			name := p.Spec.Name
			_ = kl.StopPod(p, func() { _ = d.store.DeletePod(name) })
		} else {
			_ = d.store.DeletePod(p.Spec.Name)
		}
	}
	d.Replicas = n
	return nil
}

// HPA is the Horizontal Pod Autoscaler [3]: it scales a deployment toward
// ceil(current * utilization / target), clamped to [Min, Max]. Horizontal
// scaling reacts at pod-start-up granularity, which is why it cannot help
// millisecond-level LC traffic (§2.1).
type HPA struct {
	Deployment  *Deployment
	Min, Max    int
	TargetUtil  float64 // e.g. 0.6 = 60% CPU
	utilization func() float64
}

// NewHPA builds an HPA; utilization returns the deployment's current mean
// CPU utilization in [0,1].
func NewHPA(d *Deployment, min, max int, target float64, utilization func() float64) *HPA {
	return &HPA{Deployment: d, Min: min, Max: max, TargetUtil: target, utilization: utilization}
}

// Tick performs one reconcile step and returns the chosen replica count.
func (h *HPA) Tick() (int, error) {
	cur := h.Deployment.Replicas
	if cur == 0 {
		cur = 1
	}
	u := h.utilization()
	want := int(float64(cur)*u/h.TargetUtil + 0.999999)
	if want < h.Min {
		want = h.Min
	}
	if want > h.Max {
		want = h.Max
	}
	if want != h.Deployment.Replicas {
		if err := h.Deployment.Scale(want); err != nil {
			return h.Deployment.Replicas, err
		}
	}
	return want, nil
}

// SortNodesByFree orders node states by descending free CPU then ID; used
// by tests and baselines needing a deterministic "most idle first" view.
func SortNodesByFree(nodes []*NodeState) {
	sort.Slice(nodes, func(i, j int) bool {
		fi, fj := nodes[i].Free().MilliCPU, nodes[j].Free().MilliCPU
		if fi != fj {
			return fi > fj
		}
		return nodes[i].ID < nodes[j].ID
	})
}
