package rl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gnn"
	"repro/internal/nn"
)

// banditEnv is a contextual bandit over a small graph: each node has a
// hidden "goodness" encoded in its first feature; picking the best node
// yields reward 1, others proportionally less. It exercises the full
// encoder+policy pipeline.
type banditEnv struct {
	g    *gnn.Graph
	rng  *rand.Rand
	best int
	x    *nn.Mat
}

func newBandit(rng *rand.Rand, n int) *banditEnv {
	var edges [][2]int
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return &banditEnv{g: gnn.NewGraph(n, edges), rng: rng}
}

func (b *banditEnv) reset() {
	n := b.g.N
	b.x = nn.NewMat(n, 3)
	b.best = b.rng.Intn(n)
	for i := 0; i < n; i++ {
		if i == b.best {
			b.x.Set(i, 0, 1)
		}
		b.x.Set(i, 1, b.rng.Float64()*0.1)
		b.x.Set(i, 2, 1)
	}
}

func (b *banditEnv) reward(a int) float64 {
	if a == b.best {
		return 1
	}
	return 0
}

func TestA2CLearnsContextualBandit(t *testing.T) {
	// Native encoder: the bandit's "which node holds the flag" task is
	// unambiguous per-node, so the agent should become near-perfect.
	// (Mean-aggregating encoders blur the flag over neighbours; their
	// integration is covered by TestA2CWithSAGEImproves.)
	rng := rand.New(rand.NewSource(1))
	enc := gnn.NewNative(rng, 3, 16, 16)
	agent := NewA2C(enc, 16, rng)
	agent.Gamma = 0 // bandit: no bootstrapping across episodes
	agent.SetLR(2e-3)
	env := newBandit(rng, 6)

	score := func(trials int, greedy bool) float64 {
		hits := 0
		for i := 0; i < trials; i++ {
			env.reset()
			var a int
			if greedy {
				a = agent.GreedyAction(env.g, env.x, nil)
			} else {
				a = agent.SelectAction(env.g, env.x, nil)
			}
			if a == env.best {
				hits++
			}
		}
		return float64(hits) / float64(trials)
	}

	before := score(200, true)
	for epoch := 0; epoch < 150; epoch++ {
		var batch []Transition
		for i := 0; i < 16; i++ {
			env.reset()
			a := agent.SelectAction(env.g, env.x, nil)
			batch = append(batch, Transition{Graph: env.g, X: env.x, Action: a, Reward: env.reward(a)})
		}
		agent.Update(batch)
	}
	after := score(200, true)
	if after < 0.9 {
		t.Fatalf("A2C accuracy %.2f -> %.2f, want >= 0.9", before, after)
	}
}

func TestA2CWithSAGEImproves(t *testing.T) {
	// With a GraphSAGE encoder the flag is smeared over neighbours, so
	// demand a large improvement over the uniform-random 1/6 baseline
	// rather than near-perfect accuracy.
	rng := rand.New(rand.NewSource(17))
	enc := gnn.NewSAGE(rng, 0, 3, 16, 16)
	agent := NewA2C(enc, 16, rng)
	agent.Gamma = 0
	agent.SetLR(2e-3)
	env := newBandit(rng, 6)
	for epoch := 0; epoch < 150; epoch++ {
		var batch []Transition
		for i := 0; i < 16; i++ {
			env.reset()
			a := agent.SelectAction(env.g, env.x, nil)
			batch = append(batch, Transition{Graph: env.g, X: env.x, Action: a, Reward: env.reward(a)})
		}
		agent.Update(batch)
	}
	hits := 0
	for i := 0; i < 300; i++ {
		env.reset()
		if agent.GreedyAction(env.g, env.x, nil) == env.best {
			hits++
		}
	}
	if float64(hits)/300 < 0.45 { // >2.5x better than random (1/6)
		t.Fatalf("A2C+SAGE greedy accuracy %d/300", hits)
	}
}

func TestA2CMaskingForbidsInvalidActions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	enc := gnn.NewSAGE(rng, 0, 3, 8, 8)
	agent := NewA2C(enc, 8, rng)
	env := newBandit(rng, 5)
	env.reset()
	mask := []bool{false, false, true, false, false}
	for i := 0; i < 50; i++ {
		if a := agent.SelectAction(env.g, env.x, mask); a != 2 {
			t.Fatalf("masked selection returned %d", a)
		}
	}
	p := agent.Probs(env.g, env.x, mask)
	for i, v := range p {
		if i != 2 && v != 0 {
			t.Fatalf("masked prob[%d] = %g", i, v)
		}
	}
	if math.Abs(p[2]-1) > 1e-12 {
		t.Fatalf("valid prob = %g", p[2])
	}
}

func TestA2CUpdateEmptyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	agent := NewA2C(gnn.NewNative(rng, 3, 8, 8), 8, rng)
	st := agent.Update(nil)
	if st.PolicyLoss != 0 || st.ValueLoss != 0 {
		t.Fatal("empty update should be a no-op")
	}
}

func TestA2CPanicsOnBadAction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	enc := gnn.NewNative(rng, 3, 8, 8)
	agent := NewA2C(enc, 8, rng)
	env := newBandit(rng, 4)
	env.reset()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range action")
		}
	}()
	agent.Update([]Transition{{Graph: env.g, X: env.x, Action: 99, Reward: 0}})
}

func TestA2CValueTracksReturns(t *testing.T) {
	// With constant reward 1 and gamma 0.5, returns converge to 2;
	// the critic should approach that after training.
	rng := rand.New(rand.NewSource(5))
	enc := gnn.NewNative(rng, 3, 8, 8)
	agent := NewA2C(enc, 8, rng)
	agent.Gamma = 0.5
	env := newBandit(rng, 4)
	env.reset()
	for epoch := 0; epoch < 300; epoch++ {
		var batch []Transition
		for i := 0; i < 8; i++ {
			a := agent.SelectAction(env.g, env.x, nil)
			batch = append(batch, Transition{Graph: env.g, X: env.x, Action: a, Reward: 1})
		}
		agent.Update(batch)
	}
	v := agent.Value(env.g, env.x)
	if math.Abs(v-2) > 0.5 {
		t.Fatalf("critic value %g, want ~2", v)
	}
}

func TestSampleDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := []float64{0.1, 0.7, 0.2}
	counts := make([]int, 3)
	for i := 0; i < 10000; i++ {
		counts[sample(rng, p)]++
	}
	if counts[1] < 6500 || counts[1] > 7500 {
		t.Fatalf("sample counts %v", counts)
	}
	if counts[0] < 700 || counts[0] > 1300 {
		t.Fatalf("sample counts %v", counts)
	}
}

func TestSACLearnsContextualBandit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	enc := gnn.NewSAGE(rng, 0, 3, 16, 16)
	agent := NewSAC(enc, 16, rng)
	agent.Gamma = 0
	env := newBandit(rng, 5)

	for epoch := 0; epoch < 200; epoch++ {
		var batch []Transition
		for i := 0; i < 16; i++ {
			env.reset()
			a := agent.SelectAction(env.g, env.x, nil)
			batch = append(batch, Transition{Graph: env.g, X: env.x, Action: a, Reward: env.reward(a)})
		}
		agent.Update(batch)
	}
	hits := 0
	for i := 0; i < 200; i++ {
		env.reset()
		p := agent.Probs(env.g, env.x, nil)
		best, bi := -1.0, 0
		for j, v := range p {
			if v > best {
				best, bi = v, j
			}
		}
		if bi == env.best {
			hits++
		}
	}
	if hits < 140 { // SAC keeps more entropy; 70% greedy accuracy is plenty
		t.Fatalf("SAC greedy accuracy %d/200", hits)
	}
}

func TestSACMasking(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	enc := gnn.NewNative(rng, 3, 8, 8)
	agent := NewSAC(enc, 8, rng)
	env := newBandit(rng, 4)
	env.reset()
	mask := []bool{false, true, false, false}
	for i := 0; i < 20; i++ {
		if a := agent.SelectAction(env.g, env.x, mask); a != 1 {
			t.Fatalf("masked SAC picked %d", a)
		}
	}
}

func TestSACTargetNetworksTrackSlowly(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	enc := gnn.NewNative(rng, 3, 8, 8)
	agent := NewSAC(enc, 8, rng)
	// Targets start equal to Q networks.
	q := agent.Q1.Params()[0].Val.Data
	tgt := agent.T1.Params()[0].Val.Data
	for i := range q {
		if q[i] != tgt[i] {
			t.Fatal("target not initialized to Q")
		}
	}
	env := newBandit(rng, 4)
	env.reset()
	agent.Update([]Transition{{Graph: env.g, X: env.x, Action: 0, Reward: 1}})
	// After one update, Q moved but target only moved tau of the way.
	moved, lag := 0.0, 0.0
	for i := range q {
		moved += math.Abs(q[i] - tgt[i])
		lag += math.Abs(tgt[i])
	}
	if moved == 0 {
		t.Fatal("Q network did not move")
	}
}

func TestA2CEntropyRegularizationKeepsExploration(t *testing.T) {
	// With a huge entropy bonus, the policy should stay near uniform even
	// when one action always pays.
	rng := rand.New(rand.NewSource(10))
	enc := gnn.NewNative(rng, 3, 8, 8)
	agent := NewA2C(enc, 8, rng)
	agent.Entropy = 5
	agent.Gamma = 0
	env := newBandit(rng, 4)
	env.reset()
	for epoch := 0; epoch < 100; epoch++ {
		var batch []Transition
		for i := 0; i < 8; i++ {
			a := agent.SelectAction(env.g, env.x, nil)
			r := 0.0
			if a == 0 {
				r = 1
			}
			batch = append(batch, Transition{Graph: env.g, X: env.x, Action: a, Reward: r})
		}
		agent.Update(batch)
	}
	p := agent.Probs(env.g, env.x, nil)
	for _, v := range p {
		if v < 0.1 {
			t.Fatalf("entropy-regularized policy collapsed: %v", p)
		}
	}
}
