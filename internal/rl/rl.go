// Package rl implements the deep-reinforcement-learning substrate of
// DCG-BE (§5.3.2): Advantage Actor-Critic (A2C) with the paper's network
// shapes (three ReLU layers of 256/128/32 hidden units for both actor and
// critic, Adam with lr 2e-4), action masking ("policy context filtering"
// — invalid nodes get zero probability), and a discrete Soft Actor-Critic
// used by the GNN-SAC comparison baseline.
//
// Both agents act over a variable-size node set: the actor scores each
// node embedding with shared weights, so the same parameters work for any
// topology size — matching GraphSAGE's inductive encoding.
package rl

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/gnn"
	"repro/internal/nn"
)

// LearningRate is the paper's Adam learning rate.
const LearningRate = 2e-4

// Transition is one step of experience for training.
type Transition struct {
	Graph  *gnn.Graph
	X      *nn.Mat // node features at decision time
	Mask   []bool  // valid actions (policy context filtering)
	Action int
	Reward float64
}

// A2C is the advantage actor-critic agent.
type A2C struct {
	Enc     gnn.Encoder
	Actor   *nn.MLP // per-node embedding -> logit (shared weights)
	Critic  *nn.MLP // mean-pooled embedding -> state value
	Gamma   float64
	Entropy float64 // entropy bonus coefficient

	opt *nn.Adam
	rng *rand.Rand
}

// NewA2C builds the agent for embDim-sized encoder outputs.
func NewA2C(enc gnn.Encoder, embDim int, rng *rand.Rand) *A2C {
	return &A2C{
		Enc:     enc,
		Actor:   nn.NewMLP(rng, embDim, 256, 128, 32, 1),
		Critic:  nn.NewMLP(rng, embDim, 256, 128, 32, 1),
		Gamma:   0.95,
		Entropy: 0.01,
		opt:     nn.NewAdam(LearningRate),
		rng:     rng,
	}
}

// SetLR overrides the optimizer learning rate (tests and ablations; the
// paper's experiments use the default 2e-4).
func (a *A2C) SetLR(lr float64) { a.opt.LR = lr }

// params returns all trainables (encoder + heads).
func (a *A2C) params() []*nn.Param {
	ps := a.Enc.Params()
	ps = append(ps, a.Actor.Params()...)
	ps = append(ps, a.Critic.Params()...)
	return ps
}

// Logits computes masked per-node action logits for the state.
func (a *A2C) logits(g *gnn.Graph, x *nn.Mat) []float64 {
	emb := a.Enc.Forward(g, x)
	out := a.Actor.Forward(emb)
	logits := make([]float64, g.N)
	for i := 0; i < g.N; i++ {
		logits[i] = out.At(i, 0)
	}
	return logits
}

// Probs returns the masked action distribution π(a|s).
func (a *A2C) Probs(g *gnn.Graph, x *nn.Mat, mask []bool) []float64 {
	return nn.SoftmaxRow(a.logits(g, x), mask)
}

// SelectAction samples from the masked policy.
func (a *A2C) SelectAction(g *gnn.Graph, x *nn.Mat, mask []bool) int {
	p := a.Probs(g, x, mask)
	return sample(a.rng, p)
}

// GreedyAction returns argmax of the masked policy.
func (a *A2C) GreedyAction(g *gnn.Graph, x *nn.Mat, mask []bool) int {
	p := a.Probs(g, x, mask)
	best, bi := -1.0, 0
	for i, v := range p {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Value estimates V(s) from the mean-pooled embedding.
func (a *A2C) Value(g *gnn.Graph, x *nn.Mat) float64 {
	emb := a.Enc.Forward(g, x)
	return a.Critic.Forward(nn.MeanRows(emb)).At(0, 0)
}

// Stats summarizes one update.
type Stats struct {
	PolicyLoss float64
	ValueLoss  float64
	Entropy    float64
}

// Update performs one A2C step over a trajectory of transitions using
// discounted Monte-Carlo returns bootstrapped from the critic's value of
// the final state. It trains encoder, actor and critic jointly.
func (a *A2C) Update(batch []Transition) Stats {
	if len(batch) == 0 {
		return Stats{}
	}
	// Compute returns back-to-front, bootstrapping with the value of the
	// last state (continuing task).
	returns := make([]float64, len(batch))
	last := batch[len(batch)-1]
	run := a.Value(last.Graph, last.X)
	for i := len(batch) - 1; i >= 0; i-- {
		run = batch[i].Reward + a.Gamma*run
		returns[i] = run
	}

	for _, p := range a.params() {
		p.Grad.Zero()
	}
	var st Stats
	for i, tr := range batch {
		if tr.Action < 0 || tr.Action >= tr.Graph.N {
			panic(fmt.Sprintf("rl: action %d out of range %d", tr.Action, tr.Graph.N))
		}
		// Forward pass (fresh caches for this transition).
		emb := a.Enc.Forward(tr.Graph, tr.X)
		logitsM := a.Actor.Forward(emb)
		logits := make([]float64, tr.Graph.N)
		for j := range logits {
			logits[j] = logitsM.At(j, 0)
		}
		probs := nn.SoftmaxRow(logits, tr.Mask)

		pooled := nn.MeanRows(emb)
		v := a.Critic.Forward(pooled).At(0, 0)
		adv := returns[i] - v

		// Critic gradient: d/dv of (ret - v)^2 = -2 adv.
		dV := nn.FromSlice(1, 1, []float64{-2 * adv / float64(len(batch))})
		dPooled := a.Critic.Backward(dV)

		// Actor gradient: policy-gradient through masked softmax plus
		// entropy bonus. dL/dlogit_j = (π_j − 1{j=a})·A − β·dH/dlogit_j,
		// with dH/dlogit_j = −π_j (log π_j + H).
		ent := 0.0
		for _, p := range probs {
			if p > 0 {
				ent -= p * math.Log(p)
			}
		}
		st.Entropy += ent
		dLogits := nn.NewMat(tr.Graph.N, 1)
		scale := 1.0 / float64(len(batch))
		for j, p := range probs {
			if tr.Mask != nil && !tr.Mask[j] {
				continue // masked logits receive no gradient
			}
			g := p * adv
			if j == tr.Action {
				g -= adv
			}
			// entropy derivative
			if p > 0 {
				g += a.Entropy * p * (math.Log(p) + ent)
			}
			dLogits.Set(j, 0, g*scale)
		}
		dEmbActor := a.Actor.Backward(dLogits)

		// Combine embedding gradients: actor path + critic pooled path.
		dEmb := dEmbActor.Clone()
		inv := 1.0 / float64(emb.R)
		for r := 0; r < emb.R; r++ {
			row := dEmb.Row(r)
			for c := range row {
				row[c] += dPooled.At(0, c) * inv
			}
		}
		a.Enc.Backward(dEmb)

		if probs[tr.Action] > 0 {
			st.PolicyLoss += -math.Log(probs[tr.Action]) * adv * scale
		}
		st.ValueLoss += adv * adv * scale
	}
	nn.ClipGrads(a.params(), 5)
	a.opt.Step(a.params())
	st.Entropy /= float64(len(batch))
	return st
}

func sample(rng *rand.Rand, probs []float64) int {
	x := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if x < acc {
			return i
		}
	}
	return len(probs) - 1
}

// SAC is a discrete Soft Actor-Critic agent: twin Q heads, entropy
// temperature, and target networks with polyak averaging. It backs the
// GNN-SAC baseline of Figure 11(c). The paper notes SAC "struggles to
// calculate strategy differences" versus A2C's advantage mechanism.
type SAC struct {
	Enc         gnn.Encoder
	Actor       *nn.MLP
	Q1, Q2      *nn.MLP
	T1, T2      *nn.MLP // target copies of Q1/Q2
	Gamma       float64
	Alpha       float64 // entropy temperature
	Tau         float64 // polyak factor
	optPi, optQ *nn.Adam
	rng         *rand.Rand
}

// NewSAC builds a discrete SAC agent over embDim encoder outputs.
func NewSAC(enc gnn.Encoder, embDim int, rng *rand.Rand) *SAC {
	mk := func() *nn.MLP { return nn.NewMLP(rng, embDim, 256, 128, 32, 1) }
	s := &SAC{
		Enc: enc, Actor: mk(), Q1: mk(), Q2: mk(),
		Gamma: 0.95, Alpha: 0.05, Tau: 0.05,
		optPi: nn.NewAdam(LearningRate), optQ: nn.NewAdam(LearningRate),
		rng: rng,
	}
	s.T1 = cloneMLP(s.Q1, embDim, rng)
	s.T2 = cloneMLP(s.Q2, embDim, rng)
	copyParams(s.T1, s.Q1)
	copyParams(s.T2, s.Q2)
	return s
}

func cloneMLP(src *nn.MLP, embDim int, rng *rand.Rand) *nn.MLP {
	return nn.NewMLP(rng, embDim, 256, 128, 32, 1)
}

func copyParams(dst, src *nn.MLP) {
	dp, sp := dst.Params(), src.Params()
	for i := range dp {
		copy(dp[i].Val.Data, sp[i].Val.Data)
	}
}

func polyak(dst, src *nn.MLP, tau float64) {
	dp, sp := dst.Params(), src.Params()
	for i := range dp {
		for j := range dp[i].Val.Data {
			dp[i].Val.Data[j] = (1-tau)*dp[i].Val.Data[j] + tau*sp[i].Val.Data[j]
		}
	}
}

// Probs returns the masked SAC policy.
func (s *SAC) Probs(g *gnn.Graph, x *nn.Mat, mask []bool) []float64 {
	emb := s.Enc.Forward(g, x)
	out := s.Actor.Forward(emb)
	logits := make([]float64, g.N)
	for i := range logits {
		logits[i] = out.At(i, 0)
	}
	return nn.SoftmaxRow(logits, mask)
}

// SelectAction samples from the masked policy.
func (s *SAC) SelectAction(g *gnn.Graph, x *nn.Mat, mask []bool) int {
	return sample(s.rng, s.Probs(g, x, mask))
}

// Update performs one SAC step over consecutive transitions (each next
// state is the following transition's state; the last bootstraps from
// itself).
func (s *SAC) Update(batch []Transition) Stats {
	if len(batch) == 0 {
		return Stats{}
	}
	var st Stats
	// --- Q update ---
	qparams := append(append(s.Enc.Params(), s.Q1.Params()...), s.Q2.Params()...)
	for _, p := range qparams {
		p.Grad.Zero()
	}
	scale := 1.0 / float64(len(batch))
	for i, tr := range batch {
		next := tr
		if i+1 < len(batch) {
			next = batch[i+1]
		}
		// Target: r + γ Σ_a' π(a'|s') (minQ'(s',a') − α log π(a'|s')).
		nextEmb := s.Enc.Forward(next.Graph, next.X)
		nextOut := s.Actor.Forward(nextEmb)
		nl := make([]float64, next.Graph.N)
		for j := range nl {
			nl[j] = nextOut.At(j, 0)
		}
		np := nn.SoftmaxRow(nl, next.Mask)
		t1 := s.T1.Forward(nextEmb)
		t2 := s.T2.Forward(nextEmb)
		target := 0.0
		for j, p := range np {
			if p <= 0 {
				continue
			}
			q := math.Min(t1.At(j, 0), t2.At(j, 0))
			target += p * (q - s.Alpha*math.Log(p))
		}
		y := tr.Reward + s.Gamma*target

		emb := s.Enc.Forward(tr.Graph, tr.X)
		q1 := s.Q1.Forward(emb)
		q2 := s.Q2.Forward(emb)
		d1 := q1.At(tr.Action, 0) - y
		d2 := q2.At(tr.Action, 0) - y
		st.ValueLoss += (d1*d1 + d2*d2) * scale

		dq1 := nn.NewMat(emb.R, 1)
		dq1.Set(tr.Action, 0, 2*d1*scale)
		dq2 := nn.NewMat(emb.R, 1)
		dq2.Set(tr.Action, 0, 2*d2*scale)
		dEmb := s.Q1.Backward(dq1)
		nn.AddInPlace(dEmb, s.Q2.Backward(dq2))
		s.Enc.Backward(dEmb)
	}
	nn.ClipGrads(qparams, 5)
	s.optQ.Step(qparams)

	// --- policy update ---
	piparams := s.Actor.Params()
	for _, p := range piparams {
		p.Grad.Zero()
	}
	for _, tr := range batch {
		emb := s.Enc.Forward(tr.Graph, tr.X)
		out := s.Actor.Forward(emb)
		logits := make([]float64, tr.Graph.N)
		for j := range logits {
			logits[j] = out.At(j, 0)
		}
		probs := nn.SoftmaxRow(logits, tr.Mask)
		q1 := s.Q1.Forward(emb)
		q2 := s.Q2.Forward(emb)
		// L = Σ_a π(a)(α log π(a) − minQ(a)); dL/dlogit via softmax chain.
		// g_j = π_j [ (α log π_j − q_j) − Σ_k π_k (α log π_k − q_k) + α ]
		// minus the same for the baseline; compact form below.
		mean := 0.0
		vals := make([]float64, tr.Graph.N)
		for j, p := range probs {
			if p <= 0 {
				continue
			}
			vals[j] = s.Alpha*math.Log(p) - math.Min(q1.At(j, 0), q2.At(j, 0))
			mean += p * vals[j]
			st.PolicyLoss += p * vals[j] * scale
		}
		dLogits := nn.NewMat(tr.Graph.N, 1)
		for j, p := range probs {
			if tr.Mask != nil && !tr.Mask[j] {
				continue
			}
			if p <= 0 {
				continue
			}
			g := p * (vals[j] - mean + s.Alpha)
			dLogits.Set(j, 0, g*scale)
		}
		s.Actor.Backward(dLogits)
	}
	nn.ClipGrads(piparams, 5)
	s.optPi.Step(piparams)

	polyak(s.T1, s.Q1, s.Tau)
	polyak(s.T2, s.Q2, s.Tau)
	return st
}
