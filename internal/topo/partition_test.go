package topo

import (
	"math/rand"
	"testing"

	"repro/internal/res"
)

func partitionCounts(assign []int, k int) []int {
	counts := make([]int, k)
	for _, s := range assign {
		counts[s]++
	}
	return counts
}

func TestPartitionSingleShard(t *testing.T) {
	tp := Generate(DefaultGenConfig(20), rand.New(rand.NewSource(1)))
	for _, k := range []int{0, 1} {
		for _, s := range tp.PartitionClusters(k) {
			if s != 0 {
				t.Fatalf("k=%d: cluster assigned to shard %d, want 0", k, s)
			}
		}
	}
}

func TestPartitionCoversAllShardsAndClusters(t *testing.T) {
	tp := Generate(DefaultGenConfig(64), rand.New(rand.NewSource(7)))
	for _, k := range []int{2, 3, 4, 8, 16} {
		assign := tp.PartitionClusters(k)
		if len(assign) != len(tp.Clusters) {
			t.Fatalf("k=%d: assignment covers %d clusters, want %d", k, len(assign), len(tp.Clusters))
		}
		for cid, s := range assign {
			if s < 0 || s >= k {
				t.Fatalf("k=%d: cluster %d in shard %d, out of range [0,%d)", k, cid, s, k)
			}
		}
		// With 64 spread-out clusters every shard should be populated.
		for s, n := range partitionCounts(assign, k) {
			if n == 0 {
				t.Fatalf("k=%d: shard %d empty with %d clusters", k, s, len(tp.Clusters))
			}
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	tp := Generate(DefaultGenConfig(100), rand.New(rand.NewSource(3)))
	a := tp.PartitionClusters(8)
	b := tp.PartitionClusters(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cluster %d: shard %d then %d across identical calls", i, a[i], b[i])
		}
	}
}

func TestPartitionBalancesWorkerWeight(t *testing.T) {
	tp := Generate(DefaultGenConfig(200), rand.New(rand.NewSource(11)))
	const k = 4
	assign := tp.PartitionClusters(k)
	weights := make([]int, k)
	total := 0
	for cid, s := range assign {
		w := len(tp.Cluster(ClusterID(cid)).Workers)
		weights[s] += w
		total += w
	}
	// Weighted bisection should keep every shard within 2x of the even
	// share (clusters are indivisible, so perfect balance is impossible).
	even := total / k
	for s, w := range weights {
		if w < even/2 || w > even*2 {
			t.Fatalf("shard %d holds %d workers, even share is %d", s, w, even)
		}
	}
}

func TestPartitionGeographicCoherence(t *testing.T) {
	// Two well-separated groups of clusters must not be mixed: with k=2
	// the partition should fall on the geographic gap.
	b := NewBuilder()
	caps := []res.Vector{res.V(4000, 8192, 500)}
	for i := 0; i < 4; i++ {
		b.AddCluster(30+float64(i)*0.1, 110, res.V(8000, 16384, 1000), caps)
	}
	for i := 0; i < 4; i++ {
		b.AddCluster(30+float64(i)*0.1, 125, res.V(8000, 16384, 1000), caps)
	}
	tp := b.Build()
	assign := tp.PartitionClusters(2)
	for i := 1; i < 4; i++ {
		if assign[i] != assign[0] {
			t.Fatalf("west group split: cluster %d in shard %d, cluster 0 in %d", i, assign[i], assign[0])
		}
		if assign[4+i] != assign[4] {
			t.Fatalf("east group split: cluster %d in shard %d, cluster 4 in %d", 4+i, assign[4+i], assign[4])
		}
	}
	if assign[0] == assign[4] {
		t.Fatal("west and east groups share a shard")
	}
}

func TestPartitionMoreShardsThanClusters(t *testing.T) {
	b := NewBuilder()
	caps := []res.Vector{res.V(4000, 8192, 500)}
	for i := 0; i < 3; i++ {
		b.AddCluster(30+float64(i), 110, res.V(8000, 16384, 1000), caps)
	}
	tp := b.Build()
	// k=8 with 3 clusters: indices stay within [0,8), some shards are
	// simply empty — the scheduler skips them.
	assign := tp.PartitionClusters(8)
	seen := map[int]bool{}
	for cid, s := range assign {
		if s < 0 || s >= 8 {
			t.Fatalf("cluster %d in shard %d, out of range", cid, s)
		}
		if seen[s] {
			t.Fatalf("two of three clusters share shard %d with 8 shards requested", s)
		}
		seen[s] = true
	}
}

func TestPartitionCoLocatedClustersDeterministicTieBreak(t *testing.T) {
	// All clusters at the same point: splits degenerate to ClusterID
	// order, which must still be deterministic and in-range.
	b := NewBuilder()
	caps := []res.Vector{res.V(4000, 8192, 500)}
	for i := 0; i < 6; i++ {
		b.AddCluster(30, 110, res.V(8000, 16384, 1000), caps)
	}
	tp := b.Build()
	a := tp.PartitionClusters(3)
	c := tp.PartitionClusters(3)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("co-located tie-break unstable at cluster %d: %d vs %d", i, a[i], c[i])
		}
		if a[i] < 0 || a[i] >= 3 {
			t.Fatalf("cluster %d in shard %d, out of range", i, a[i])
		}
	}
}
