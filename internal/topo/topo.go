// Package topo models the distributed edge-cloud topology of §5.1.1:
// a set of edge-cloud clusters B, each with one master node (the edge
// access point, eAP) and several worker nodes. Nodes inside a cluster are
// connected by LAN; clusters are connected by WAN. Geographic coordinates
// drive the WAN round-trip-time model, replacing the Linux tc emulation
// the paper uses on its testbed.
package topo

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/res"
)

// Role distinguishes master (eAP, controller) from worker nodes.
type Role int

const (
	Master Role = iota
	Worker
)

func (r Role) String() string {
	if r == Master {
		return "master"
	}
	return "worker"
}

// NodeID identifies a node globally. IDs are dense, starting at 0, in
// creation order, so they can index slices.
type NodeID int

// ClusterID identifies an edge-cloud cluster.
type ClusterID int

// Node is one edge-cloud machine.
type Node struct {
	ID       NodeID
	Cluster  ClusterID
	Role     Role
	Capacity res.Vector // total hardware resources
}

// Cluster is one edge-cloud cluster: a master plus workers on a LAN.
type Cluster struct {
	ID      ClusterID
	Master  NodeID
	Workers []NodeID
	// Lat/Lon locate the cluster for the WAN RTT model (degrees).
	Lat, Lon float64
	// Central marks the cluster chosen for centralized BE scheduling
	// (geographically central and resource-rich, per footnote 2).
	Central bool
}

// Topology is the full edge-cloud system graph.
type Topology struct {
	Nodes    []*Node
	Clusters []*Cluster

	// LANRTT is the intra-cluster round-trip time.
	LANRTT time.Duration
	// LANBandwidthMbps caps intra-cluster transfers.
	LANBandwidthMbps int64
	// WANBandwidthMbps caps inter-cluster transfers.
	WANBandwidthMbps int64
	// KmPerMsRTT converts geographic distance to WAN RTT: every this many
	// km adds 1 ms of round-trip time on top of WANBaseRTT.
	KmPerMsRTT float64
	// WANBaseRTT is the floor RTT between distinct clusters.
	WANBaseRTT time.Duration

	// net is the lazily-created WAN fault overlay (see net.go); nil on a
	// pristine topology, keeping healthy runs bit-identical to builds
	// that predate the overlay.
	net *NetOverlay
}

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(t.Nodes) {
		panic(fmt.Sprintf("topo: node %d out of range [0,%d)", id, len(t.Nodes)))
	}
	return t.Nodes[id]
}

// Cluster returns the cluster with the given ID.
func (t *Topology) Cluster(id ClusterID) *Cluster {
	if int(id) < 0 || int(id) >= len(t.Clusters) {
		panic(fmt.Sprintf("topo: cluster %d out of range [0,%d)", id, len(t.Clusters)))
	}
	return t.Clusters[id]
}

// CentralCluster returns the cluster marked Central, or the first cluster
// if none is marked.
func (t *Topology) CentralCluster() *Cluster {
	for _, c := range t.Clusters {
		if c.Central {
			return c
		}
	}
	return t.Clusters[0]
}

// DistanceKm returns the great-circle distance between two clusters.
func (t *Topology) DistanceKm(a, b ClusterID) float64 {
	if a == b {
		return 0
	}
	ca, cb := t.Cluster(a), t.Cluster(b)
	return haversineKm(ca.Lat, ca.Lon, cb.Lat, cb.Lon)
}

// RTT returns the round-trip time between two nodes: LANRTT within a
// cluster (zero to self), or the distance-derived WAN RTT across clusters.
func (t *Topology) RTT(a, b NodeID) time.Duration {
	if a == b {
		return 0
	}
	na, nb := t.Node(a), t.Node(b)
	if na.Cluster == nb.Cluster {
		return t.LANRTT
	}
	return t.ClusterRTT(na.Cluster, nb.Cluster)
}

// ClusterRTT returns the WAN RTT between two clusters (LANRTT if
// equal), after any fault-overlay adjustment: a severed link reads as
// PartitionRTT, an RTT storm multiplies the healthy figure.
func (t *Topology) ClusterRTT(a, b ClusterID) time.Duration {
	if a == b {
		return t.LANRTT
	}
	km := t.DistanceKm(a, b)
	extra := time.Duration(km/t.KmPerMsRTT*float64(time.Millisecond) + 0.5)
	return t.wanAdjust(a, b, t.WANBaseRTT+extra)
}

// LinkBandwidth returns the transfer capacity between two nodes in Mbps.
func (t *Topology) LinkBandwidth(a, b NodeID) int64 {
	if a == b {
		return math.MaxInt64 / 4
	}
	if t.Node(a).Cluster == t.Node(b).Cluster {
		return t.LANBandwidthMbps
	}
	return t.WANBandwidthMbps
}

// NeighborClusters returns the clusters within maxKm of c (excluding c),
// implementing the paper's footnote 4: LC requests may only be dispatched
// to local or geo-nearby clusters (500 km in the production dataset).
func (t *Topology) NeighborClusters(c ClusterID, maxKm float64) []ClusterID {
	return t.NeighborClustersInto(nil, c, maxKm)
}

// NeighborClustersInto is NeighborClusters appending into buf, so
// callers that query the (static) neighbor list every period can reuse
// one slice instead of allocating per call.
func (t *Topology) NeighborClustersInto(buf []ClusterID, c ClusterID, maxKm float64) []ClusterID {
	for _, other := range t.Clusters {
		if other.ID == c {
			continue
		}
		if t.DistanceKm(c, other.ID) <= maxKm {
			buf = append(buf, other.ID)
		}
	}
	return buf
}

// WorkersOf returns the worker node IDs of a cluster.
func (t *Topology) WorkersOf(c ClusterID) []NodeID { return t.Cluster(c).Workers }

// TotalCapacity sums the capacity of every worker node in the system.
func (t *Topology) TotalCapacity() res.Vector {
	var total res.Vector
	for _, n := range t.Nodes {
		if n.Role == Worker {
			total = total.Add(n.Capacity)
		}
	}
	return total
}

func haversineKm(lat1, lon1, lat2, lon2 float64) float64 {
	const earthRadiusKm = 6371.0
	rad := math.Pi / 180
	dLat := (lat2 - lat1) * rad
	dLon := (lon2 - lon1) * rad
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1*rad)*math.Cos(lat2*rad)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// Builder incrementally constructs a Topology.
type Builder struct {
	t *Topology
}

// NewBuilder returns a Builder with the default latency/bandwidth model:
// 1 ms LAN RTT, 1 Gbps LAN, 200 Mbps WAN, a 40 ms WAN base RTT and 1 ms
// of RTT per 20 km. The paper's production dataset reports edge→central
// RTTs exceeding 97 ms; under this model clusters ~1000 km apart reach
// that figure, and the ~300 km testbed spacing costs ~55 ms — enough
// that traffic scheduling locality genuinely matters, as in §5.2.
func NewBuilder() *Builder {
	return &Builder{t: &Topology{
		LANRTT:           1 * time.Millisecond,
		LANBandwidthMbps: 1000,
		WANBandwidthMbps: 200,
		KmPerMsRTT:       20,
		WANBaseRTT:       40 * time.Millisecond,
	}}
}

// AddCluster creates a cluster with one master and the given worker
// capacities, located at (lat, lon). It returns the new cluster's ID.
func (b *Builder) AddCluster(lat, lon float64, masterCap res.Vector, workerCaps []res.Vector) ClusterID {
	cid := ClusterID(len(b.t.Clusters))
	c := &Cluster{ID: cid, Lat: lat, Lon: lon}
	m := &Node{ID: NodeID(len(b.t.Nodes)), Cluster: cid, Role: Master, Capacity: masterCap}
	b.t.Nodes = append(b.t.Nodes, m)
	c.Master = m.ID
	for _, wc := range workerCaps {
		w := &Node{ID: NodeID(len(b.t.Nodes)), Cluster: cid, Role: Worker, Capacity: wc}
		b.t.Nodes = append(b.t.Nodes, w)
		c.Workers = append(c.Workers, w.ID)
	}
	b.t.Clusters = append(b.t.Clusters, c)
	return cid
}

// MarkCentral designates the BE-scheduling cluster.
func (b *Builder) MarkCentral(c ClusterID) {
	for _, cl := range b.t.Clusters {
		cl.Central = false
	}
	b.t.Cluster(c).Central = true
}

// Build finalizes the topology. If no cluster is marked central, the one
// minimizing the sum of distances to all others (ties broken toward more
// total capacity) is chosen, per footnote 2 of the paper.
func (b *Builder) Build() *Topology {
	t := b.t
	if len(t.Clusters) == 0 {
		panic("topo: Build with no clusters")
	}
	hasCentral := false
	for _, c := range t.Clusters {
		if c.Central {
			hasCentral = true
		}
	}
	if !hasCentral {
		bestIdx, bestScore := 0, math.Inf(1)
		for i, c := range t.Clusters {
			sum := 0.0
			for _, o := range t.Clusters {
				sum += t.DistanceKm(c.ID, o.ID)
			}
			// Resource-rich clusters win ties: subtract a small capacity bonus.
			capSum := int64(0)
			for _, w := range c.Workers {
				capSum += t.Node(w).Capacity.MilliCPU
			}
			score := sum - float64(capSum)/1e6
			if score < bestScore {
				bestScore, bestIdx = score, i
			}
		}
		t.Clusters[bestIdx].Central = true
	}
	return t
}

// GenConfig parameterizes the random heterogeneous topology generator.
type GenConfig struct {
	Clusters        int
	MinWorkers      int // workers per cluster, uniform in [Min,Max]
	MaxWorkers      int
	MasterCap       res.Vector
	WorkerCapMin    res.Vector // per-dimension uniform between Min and Max
	WorkerCapMax    res.Vector
	RegionSpreadDeg float64 // clusters scattered in a box this many degrees wide
	CenterLat       float64
	CenterLon       float64
}

// DefaultGenConfig mirrors the paper's virtual environment: clusters of
// 3–20 heterogeneous workers (4–16 CPUs, 8–32 GB) scattered over a region.
func DefaultGenConfig(clusters int) GenConfig {
	return GenConfig{
		Clusters:        clusters,
		MinWorkers:      3,
		MaxWorkers:      20,
		MasterCap:       res.V(8000, 16384, 1000),
		WorkerCapMin:    res.V(4000, 8192, 200),
		WorkerCapMax:    res.V(16000, 32768, 1000),
		RegionSpreadDeg: 8, // ~900 km box
		CenterLat:       32.0,
		CenterLon:       118.0,
	}
}

// Generate builds a random heterogeneous topology from cfg using rng.
func Generate(cfg GenConfig, rng *rand.Rand) *Topology {
	if cfg.Clusters <= 0 {
		panic("topo: Generate with no clusters")
	}
	if cfg.MaxWorkers < cfg.MinWorkers {
		panic("topo: MaxWorkers < MinWorkers")
	}
	b := NewBuilder()
	for i := 0; i < cfg.Clusters; i++ {
		lat := cfg.CenterLat + (rng.Float64()-0.5)*cfg.RegionSpreadDeg
		lon := cfg.CenterLon + (rng.Float64()-0.5)*cfg.RegionSpreadDeg
		n := cfg.MinWorkers
		if cfg.MaxWorkers > cfg.MinWorkers {
			n += rng.Intn(cfg.MaxWorkers - cfg.MinWorkers + 1)
		}
		caps := make([]res.Vector, n)
		for j := range caps {
			caps[j] = lerpVec(cfg.WorkerCapMin, cfg.WorkerCapMax, rng.Float64())
		}
		b.AddCluster(lat, lon, cfg.MasterCap, caps)
	}
	return b.Build()
}

func lerpVec(lo, hi res.Vector, f float64) res.Vector {
	l := func(a, b int64) int64 { return a + int64(f*float64(b-a)) }
	return res.Vector{
		MilliCPU:  l(lo.MilliCPU, hi.MilliCPU),
		MemoryMiB: l(lo.MemoryMiB, hi.MemoryMiB),
		BWMbps:    l(lo.BWMbps, hi.BWMbps),
	}
}

// PhysicalTestbed reproduces the paper's physical space: four clusters,
// each one master (8 CPU / 16 GB) plus four workers (4 CPU / 8 GB),
// placed ~100–400 km apart.
func PhysicalTestbed() *Topology {
	b := NewBuilder()
	locs := [][2]float64{{31.2, 121.5}, {32.1, 118.8}, {30.3, 120.2}, {31.8, 117.2}}
	for _, loc := range locs {
		workers := make([]res.Vector, 4)
		for i := range workers {
			workers[i] = res.V(4000, 8192, 500)
		}
		b.AddCluster(loc[0], loc[1], res.V(8000, 16384, 1000), workers)
	}
	return b.Build()
}

// DualSpace reproduces the paper's hybrid environment: the 4-cluster
// physical testbed plus `virtual` generated clusters (default 100) for a
// total of 1000+ nodes.
func DualSpace(virtual int, seed int64) *Topology {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	locs := [][2]float64{{31.2, 121.5}, {32.1, 118.8}, {30.3, 120.2}, {31.8, 117.2}}
	for _, loc := range locs {
		workers := make([]res.Vector, 4)
		for i := range workers {
			workers[i] = res.V(4000, 8192, 500)
		}
		b.AddCluster(loc[0], loc[1], res.V(8000, 16384, 1000), workers)
	}
	cfg := DefaultGenConfig(virtual)
	for i := 0; i < virtual; i++ {
		lat := cfg.CenterLat + (rng.Float64()-0.5)*cfg.RegionSpreadDeg
		lon := cfg.CenterLon + (rng.Float64()-0.5)*cfg.RegionSpreadDeg
		n := cfg.MinWorkers + rng.Intn(cfg.MaxWorkers-cfg.MinWorkers+1)
		caps := make([]res.Vector, n)
		for j := range caps {
			caps[j] = lerpVec(cfg.WorkerCapMin, cfg.WorkerCapMax, rng.Float64())
		}
		b.AddCluster(lat, lon, cfg.MasterCap, caps)
	}
	return b.Build()
}
