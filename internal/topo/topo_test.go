package topo

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/res"
)

func small() *Topology {
	b := NewBuilder()
	b.AddCluster(31.0, 121.0, res.V(8000, 16384, 1000), []res.Vector{
		res.V(4000, 8192, 500), res.V(4000, 8192, 500),
	})
	b.AddCluster(32.0, 122.0, res.V(8000, 16384, 1000), []res.Vector{
		res.V(4000, 8192, 500),
	})
	return b.Build()
}

func TestBuilderStructure(t *testing.T) {
	tp := small()
	if len(tp.Clusters) != 2 {
		t.Fatalf("clusters = %d", len(tp.Clusters))
	}
	if len(tp.Nodes) != 5 {
		t.Fatalf("nodes = %d", len(tp.Nodes))
	}
	c0 := tp.Cluster(0)
	if tp.Node(c0.Master).Role != Master {
		t.Fatal("cluster 0 master has wrong role")
	}
	if len(c0.Workers) != 2 {
		t.Fatalf("cluster 0 workers = %d", len(c0.Workers))
	}
	for _, w := range c0.Workers {
		if tp.Node(w).Role != Worker || tp.Node(w).Cluster != 0 {
			t.Fatal("worker metadata wrong")
		}
	}
}

func TestRoleString(t *testing.T) {
	if Master.String() != "master" || Worker.String() != "worker" {
		t.Fatal("Role.String wrong")
	}
}

func TestRTTModel(t *testing.T) {
	tp := small()
	if tp.RTT(0, 0) != 0 {
		t.Fatal("self RTT should be 0")
	}
	if tp.RTT(0, 1) != tp.LANRTT {
		t.Fatalf("intra-cluster RTT = %v, want LAN %v", tp.RTT(0, 1), tp.LANRTT)
	}
	wan := tp.RTT(0, 3) // cluster 0 master -> cluster 1 master
	if wan <= tp.WANBaseRTT {
		t.Fatalf("WAN RTT %v should exceed base %v", wan, tp.WANBaseRTT)
	}
	if tp.RTT(0, 3) != tp.RTT(3, 0) {
		t.Fatal("RTT must be symmetric")
	}
}

func TestClusterRTTMonotoneInDistance(t *testing.T) {
	b := NewBuilder()
	var caps []res.Vector
	caps = append(caps, res.V(4000, 8192, 500))
	b.AddCluster(30, 120, res.V(8000, 16384, 1000), caps)
	b.AddCluster(30.5, 120, res.V(8000, 16384, 1000), caps) // ~55km
	b.AddCluster(35, 120, res.V(8000, 16384, 1000), caps)   // ~555km
	tp := b.Build()
	near := tp.ClusterRTT(0, 1)
	far := tp.ClusterRTT(0, 2)
	if near >= far {
		t.Fatalf("RTT not monotone: near=%v far=%v", near, far)
	}
	// The paper's production dataset reports >97ms edge->central RTT;
	// the default model should produce tens-of-ms RTTs at ~500km.
	if far < 20*time.Millisecond || far > 200*time.Millisecond {
		t.Fatalf("far RTT %v outside plausible envelope", far)
	}
}

func TestLinkBandwidth(t *testing.T) {
	tp := small()
	if tp.LinkBandwidth(0, 1) != tp.LANBandwidthMbps {
		t.Fatal("LAN bandwidth wrong")
	}
	if tp.LinkBandwidth(0, 3) != tp.WANBandwidthMbps {
		t.Fatal("WAN bandwidth wrong")
	}
	if tp.LinkBandwidth(2, 2) < tp.LANBandwidthMbps {
		t.Fatal("self bandwidth should be effectively unlimited")
	}
}

func TestCentralSelection(t *testing.T) {
	// Three clusters in a line: the middle one must be chosen central.
	b := NewBuilder()
	caps := []res.Vector{res.V(4000, 8192, 500)}
	b.AddCluster(30, 118, res.V(8000, 16384, 1000), caps)
	b.AddCluster(30, 120, res.V(8000, 16384, 1000), caps)
	b.AddCluster(30, 122, res.V(8000, 16384, 1000), caps)
	tp := b.Build()
	if tp.CentralCluster().ID != 1 {
		t.Fatalf("central = %d, want middle cluster 1", tp.CentralCluster().ID)
	}
}

func TestMarkCentralOverrides(t *testing.T) {
	b := NewBuilder()
	caps := []res.Vector{res.V(4000, 8192, 500)}
	b.AddCluster(30, 118, res.V(8000, 16384, 1000), caps)
	b.AddCluster(30, 120, res.V(8000, 16384, 1000), caps)
	b.MarkCentral(0)
	tp := b.Build()
	if tp.CentralCluster().ID != 0 {
		t.Fatal("MarkCentral ignored")
	}
}

func TestNeighborClusters(t *testing.T) {
	b := NewBuilder()
	caps := []res.Vector{res.V(4000, 8192, 500)}
	b.AddCluster(30, 120, res.V(8000, 16384, 1000), caps)
	b.AddCluster(30.5, 120, res.V(8000, 16384, 1000), caps) // ~55km away
	b.AddCluster(40, 120, res.V(8000, 16384, 1000), caps)   // ~1100km away
	tp := b.Build()
	near := tp.NeighborClusters(0, 500)
	if len(near) != 1 || near[0] != 1 {
		t.Fatalf("NeighborClusters(500km) = %v, want [1]", near)
	}
	all := tp.NeighborClusters(0, 5000)
	if len(all) != 2 {
		t.Fatalf("NeighborClusters(5000km) = %v", all)
	}
}

func TestTotalCapacityCountsWorkersOnly(t *testing.T) {
	tp := small()
	want := res.V(4000*3, 8192*3, 500*3)
	if got := tp.TotalCapacity(); got != want {
		t.Fatalf("TotalCapacity = %v, want %v", got, want)
	}
}

func TestHaversineKnownDistance(t *testing.T) {
	// Shanghai (31.2, 121.5) to Nanjing (32.1, 118.8) is ~270km.
	d := haversineKm(31.2, 121.5, 32.1, 118.8)
	if d < 230 || d > 310 {
		t.Fatalf("Shanghai-Nanjing distance = %.0f km, want ~270", d)
	}
	if haversineKm(10, 20, 10, 20) != 0 {
		t.Fatal("identical points should be 0 km apart")
	}
}

func TestPhysicalTestbed(t *testing.T) {
	tp := PhysicalTestbed()
	if len(tp.Clusters) != 4 {
		t.Fatalf("clusters = %d, want 4", len(tp.Clusters))
	}
	if len(tp.Nodes) != 4*5 {
		t.Fatalf("nodes = %d, want 20", len(tp.Nodes))
	}
	for _, c := range tp.Clusters {
		if len(c.Workers) != 4 {
			t.Fatalf("cluster %d workers = %d, want 4", c.ID, len(c.Workers))
		}
		if tp.Node(c.Master).Capacity != res.V(8000, 16384, 1000) {
			t.Fatal("master capacity wrong")
		}
	}
}

func TestDualSpaceScale(t *testing.T) {
	tp := DualSpace(100, 42)
	if len(tp.Clusters) != 104 {
		t.Fatalf("clusters = %d, want 104", len(tp.Clusters))
	}
	workers := 0
	for _, n := range tp.Nodes {
		if n.Role == Worker {
			workers++
		}
	}
	// 16 physical + 100 virtual clusters of 3-20 workers each.
	if workers < 16+100*3 || workers > 16+100*20 {
		t.Fatalf("workers = %d outside [316, 2016]", workers)
	}
}

func TestDualSpaceDeterministic(t *testing.T) {
	a := DualSpace(20, 7)
	b := DualSpace(20, 7)
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatal("same seed produced different node counts")
	}
	for i := range a.Nodes {
		if a.Nodes[i].Capacity != b.Nodes[i].Capacity {
			t.Fatal("same seed produced different capacities")
		}
	}
	c := DualSpace(20, 8)
	same := len(a.Nodes) == len(c.Nodes)
	if same {
		identical := true
		for i := range a.Nodes {
			if a.Nodes[i].Capacity != c.Nodes[i].Capacity {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced identical topologies")
		}
	}
}

func TestGenerateHeterogeneity(t *testing.T) {
	cfg := DefaultGenConfig(30)
	tp := Generate(cfg, rand.New(rand.NewSource(1)))
	sizes := map[int]bool{}
	caps := map[int64]bool{}
	for _, c := range tp.Clusters {
		sizes[len(c.Workers)] = true
		for _, w := range c.Workers {
			caps[tp.Node(w).Capacity.MilliCPU] = true
			cv := tp.Node(w).Capacity
			if cv.MilliCPU < cfg.WorkerCapMin.MilliCPU || cv.MilliCPU > cfg.WorkerCapMax.MilliCPU {
				t.Fatalf("worker CPU %d outside [%d,%d]", cv.MilliCPU, cfg.WorkerCapMin.MilliCPU, cfg.WorkerCapMax.MilliCPU)
			}
		}
	}
	if len(sizes) < 3 {
		t.Fatalf("cluster sizes not heterogeneous: %v", sizes)
	}
	if len(caps) < 10 {
		t.Fatalf("worker capacities not heterogeneous: %d distinct", len(caps))
	}
}

func TestGeneratePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no clusters": func() { Generate(GenConfig{Clusters: 0, MinWorkers: 1, MaxWorkers: 1}, rand.New(rand.NewSource(1))) },
		"bad workers": func() { Generate(GenConfig{Clusters: 1, MinWorkers: 5, MaxWorkers: 2}, rand.New(rand.NewSource(1))) },
		"empty build": func() { NewBuilder().Build() },
		"bad node":    func() { small().Node(99) },
		"bad cluster": func() { small().Cluster(99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: RTT is a symmetric, nonnegative function with RTT(a,a)=0, and
// intra-cluster pairs always have RTT <= inter-cluster pairs.
func TestQuickRTTMetricProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tp := Generate(DefaultGenConfig(5), rng)
		n := len(tp.Nodes)
		for trial := 0; trial < 20; trial++ {
			a := NodeID(rng.Intn(n))
			b := NodeID(rng.Intn(n))
			if tp.RTT(a, b) != tp.RTT(b, a) {
				return false
			}
			if tp.RTT(a, a) != 0 {
				return false
			}
			if tp.RTT(a, b) < 0 {
				return false
			}
			if a != b && tp.Node(a).Cluster != tp.Node(b).Cluster && tp.RTT(a, b) < tp.LANRTT {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
