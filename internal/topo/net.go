// WAN fault overlay: partitions and RTT inflation layered over the
// static latency model, so the chaos injector can degrade inter-cluster
// links mid-run without touching the topology itself. A pristine
// topology (overlay never created) behaves bit-identically to one
// without this file — the replay-digest contract for chaos-free runs.
package topo

import "time"

// PartitionRTT is the effective round-trip time across a partitioned
// WAN link. It is deliberately finite (not an error) so that anything
// that slips past the reachability guards still terminates: a stray
// cross-partition transfer just takes absurdly long, it does not hang
// the simulation.
const PartitionRTT = 10 * time.Second

// linkKey is a symmetric cluster pair (smaller ID first).
type linkKey struct{ a, b ClusterID }

func keyOf(a, b ClusterID) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// NetOverlay holds the mutable WAN fault state of a topology: severed
// links and per-link RTT inflation factors. All methods treat links as
// symmetric.
type NetOverlay struct {
	cut       map[linkKey]bool
	rttFactor map[linkKey]float64
}

// Net returns the topology's fault overlay, creating it on first use.
// Callers that only read should prefer Reachable/NetActive, which do
// not materialize the overlay.
func (t *Topology) Net() *NetOverlay {
	if t.net == nil {
		t.net = &NetOverlay{
			cut:       map[linkKey]bool{},
			rttFactor: map[linkKey]float64{},
		}
	}
	return t.net
}

// NetActive reports whether any WAN fault is currently applied. The
// dispatch paths use it to skip reachability filtering entirely on
// healthy (and chaos-free) runs.
func (t *Topology) NetActive() bool {
	return t.net != nil && (len(t.net.cut) > 0 || len(t.net.rttFactor) > 0)
}

// Reachable reports whether the WAN link between two clusters is up.
// Intra-cluster traffic is always reachable.
func (t *Topology) Reachable(a, b ClusterID) bool {
	if a == b || t.net == nil {
		return true
	}
	return !t.net.cut[keyOf(a, b)]
}

// Partition severs the WAN link between two clusters (no-op for a==b).
func (o *NetOverlay) Partition(a, b ClusterID) {
	if a == b {
		return
	}
	o.cut[keyOf(a, b)] = true
}

// Heal restores a severed WAN link.
func (o *NetOverlay) Heal(a, b ClusterID) {
	delete(o.cut, keyOf(a, b))
}

// SetRTTFactor inflates the WAN RTT between two clusters by the given
// factor (>1 degrades, <=0 or 1 clears).
func (o *NetOverlay) SetRTTFactor(a, b ClusterID, f float64) {
	if a == b {
		return
	}
	if f <= 0 || f == 1 {
		o.ClearRTTFactor(a, b)
		return
	}
	o.rttFactor[keyOf(a, b)] = f
}

// ClearRTTFactor removes the RTT inflation on a link.
func (o *NetOverlay) ClearRTTFactor(a, b ClusterID) {
	delete(o.rttFactor, keyOf(a, b))
}

// Cuts returns the number of currently severed links.
func (o *NetOverlay) Cuts() int { return len(o.cut) }

// Storms returns the number of links with active RTT inflation.
func (o *NetOverlay) Storms() int { return len(o.rttFactor) }

// wanAdjust applies the overlay to a computed WAN RTT.
func (t *Topology) wanAdjust(a, b ClusterID, rtt time.Duration) time.Duration {
	if t.net == nil {
		return rtt
	}
	k := keyOf(a, b)
	if t.net.cut[k] {
		return PartitionRTT
	}
	if f, ok := t.net.rttFactor[k]; ok {
		return time.Duration(float64(rtt) * f)
	}
	return rtt
}
