package topo

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := PhysicalTestbed()
	var b strings.Builder
	if err := orig.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Clusters) != len(orig.Clusters) || len(got.Nodes) != len(orig.Nodes) {
		t.Fatalf("shape changed: %d/%d clusters, %d/%d nodes",
			len(got.Clusters), len(orig.Clusters), len(got.Nodes), len(orig.Nodes))
	}
	for i := range orig.Nodes {
		if got.Nodes[i].Capacity != orig.Nodes[i].Capacity {
			t.Fatalf("node %d capacity differs", i)
		}
		if got.Nodes[i].Role != orig.Nodes[i].Role {
			t.Fatalf("node %d role differs", i)
		}
	}
	if got.CentralCluster().ID != orig.CentralCluster().ID {
		t.Fatalf("central cluster changed: %d vs %d", got.CentralCluster().ID, orig.CentralCluster().ID)
	}
	if got.LANRTT != orig.LANRTT || got.WANBaseRTT != orig.WANBaseRTT || got.KmPerMsRTT != orig.KmPerMsRTT {
		t.Fatal("latency model not preserved")
	}
	// RTTs identical for a few pairs.
	if got.RTT(0, 7) != orig.RTT(0, 7) {
		t.Fatal("RTT differs after round trip")
	}
}

func TestReadJSONHandAuthored(t *testing.T) {
	in := `{
	  "lan_rtt_ms": 2,
	  "wan_base_rtt_ms": 50,
	  "clusters": [
	    {"lat": 30, "lon": 120,
	     "master": {"milli_cpu": 8000, "memory_mib": 16384, "bw_mbps": 1000},
	     "workers": [{"milli_cpu": 4000, "memory_mib": 8192, "bw_mbps": 500}]},
	    {"lat": 31, "lon": 121, "central": true,
	     "master": {"milli_cpu": 8000, "memory_mib": 16384, "bw_mbps": 1000},
	     "workers": [{"milli_cpu": 2000, "memory_mib": 4096, "bw_mbps": 200},
	                 {"milli_cpu": 6000, "memory_mib": 12288, "bw_mbps": 800}]}
	  ]
	}`
	tp, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tp.LANRTT != 2*time.Millisecond || tp.WANBaseRTT != 50*time.Millisecond {
		t.Fatalf("latency model: %v %v", tp.LANRTT, tp.WANBaseRTT)
	}
	if tp.CentralCluster().ID != 1 {
		t.Fatalf("central = %d", tp.CentralCluster().ID)
	}
	if len(tp.Cluster(1).Workers) != 2 {
		t.Fatal("worker count wrong")
	}
	// Defaults preserved for unset fields.
	if tp.LANBandwidthMbps != 1000 {
		t.Fatalf("default LAN bandwidth = %d", tp.LANBandwidthMbps)
	}
}

func TestReadJSONRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"garbage":        "not json",
		"no clusters":    `{"clusters": []}`,
		"no workers":     `{"clusters": [{"lat":0,"lon":0,"master":{"milli_cpu":1,"memory_mib":1},"workers":[]}]}`,
		"zero cpu":       `{"clusters": [{"lat":0,"lon":0,"master":{"milli_cpu":1,"memory_mib":1},"workers":[{"milli_cpu":0,"memory_mib":1}]}]}`,
		"no master cpu":  `{"clusters": [{"lat":0,"lon":0,"master":{"milli_cpu":0,"memory_mib":1},"workers":[{"milli_cpu":1,"memory_mib":1}]}]}`,
		"unknown field":  `{"bogus": 1, "clusters": []}`,
		"double central": `{"clusters": [{"lat":0,"lon":0,"central":true,"master":{"milli_cpu":1,"memory_mib":1},"workers":[{"milli_cpu":1,"memory_mib":1}]},{"lat":1,"lon":1,"central":true,"master":{"milli_cpu":1,"memory_mib":1},"workers":[{"milli_cpu":1,"memory_mib":1}]}]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Property: WriteJSON∘ReadJSON preserves every generated topology.
func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		tp := DualSpace(int(seed%5)+1, seed)
		var b strings.Builder
		if err := tp.WriteJSON(&b); err != nil {
			return false
		}
		got, err := ReadJSON(strings.NewReader(b.String()))
		if err != nil || len(got.Nodes) != len(tp.Nodes) {
			return false
		}
		for i := range tp.Nodes {
			if got.Nodes[i].Capacity != tp.Nodes[i].Capacity {
				return false
			}
		}
		return got.CentralCluster().ID == tp.CentralCluster().ID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
