package topo

import "sort"

// Geographic shard partitioning for the sharded scheduler: split the
// cluster set into k contiguous regions so that each shard's DSS-LC
// instance solves a small, geographically coherent MCNF. Because the LC
// dispatch radius (footnote 4) is geographic, clusters that can serve
// each other's overflow tend to land in the same shard, which keeps the
// cross-shard overflow pass small.
//
// The partitioner is a recursive weighted coordinate bisection: at each
// step the current region is split along its wider axis (latitude or
// longitude extent) at the point that balances the summed worker counts
// of the two halves, and the shard budget k is divided between the
// halves proportionally. It is deterministic — clusters at the same
// coordinate are ordered by ClusterID — and cheap (O(C log C log k)),
// so it can run once at startup even for 100k-node topologies.

// PartitionClusters assigns every cluster to one of k shards and
// returns the assignment indexed by ClusterID. Shard indices are dense
// in [0, k); a shard may be empty when k exceeds the cluster count (the
// caller skips empty shards). k <= 1 puts every cluster in shard 0.
func (t *Topology) PartitionClusters(k int) []int {
	assign := make([]int, len(t.Clusters))
	if k <= 1 || len(t.Clusters) <= 1 {
		return assign
	}
	if k > len(t.Clusters) {
		k = len(t.Clusters)
	}
	ids := make([]ClusterID, len(t.Clusters))
	for i := range ids {
		ids[i] = ClusterID(i)
	}
	t.bisect(ids, k, 0, assign)
	return assign
}

// bisect recursively splits ids into k shards, writing shard indices
// starting at base into assign.
func (t *Topology) bisect(ids []ClusterID, k, base int, assign []int) {
	if k <= 1 || len(ids) <= 1 {
		for _, id := range ids {
			assign[id] = base
		}
		return
	}
	// Pick the wider axis of the region's bounding box. Longitude extent
	// is compared in raw degrees — for regional edge-cloud footprints
	// (a few degrees across, mid latitudes) the distortion is benign and
	// keeping it projection-free keeps the split deterministic.
	minLat, maxLat := t.Cluster(ids[0]).Lat, t.Cluster(ids[0]).Lat
	minLon, maxLon := t.Cluster(ids[0]).Lon, t.Cluster(ids[0]).Lon
	for _, id := range ids[1:] {
		c := t.Cluster(id)
		if c.Lat < minLat {
			minLat = c.Lat
		}
		if c.Lat > maxLat {
			maxLat = c.Lat
		}
		if c.Lon < minLon {
			minLon = c.Lon
		}
		if c.Lon > maxLon {
			maxLon = c.Lon
		}
	}
	byLat := maxLat-minLat >= maxLon-minLon
	sort.Slice(ids, func(i, j int) bool {
		a, b := t.Cluster(ids[i]), t.Cluster(ids[j])
		var ka, kb float64
		if byLat {
			ka, kb = a.Lat, b.Lat
		} else {
			ka, kb = a.Lon, b.Lon
		}
		if ka != kb {
			return ka < kb
		}
		return ids[i] < ids[j] // deterministic tie-break
	})
	// Split the shard budget (floor/ceil halves) and find the cut point
	// that divides the worker-count weight in the same proportion.
	kLeft := k / 2
	kRight := k - kLeft
	total := int64(0)
	for _, id := range ids {
		total += int64(len(t.Cluster(id).Workers))
	}
	target := total * int64(kLeft) / int64(k)
	cut, acc := 0, int64(0)
	for cut < len(ids)-1 {
		w := int64(len(t.Cluster(ids[cut]).Workers))
		// Stop when adding the next cluster overshoots the target more
		// than stopping short undershoots it.
		if acc+w > target && acc+w-target > target-acc {
			break
		}
		acc += w
		cut++
	}
	if cut == 0 {
		cut = 1 // both halves must be non-empty
	}
	t.bisect(ids[:cut], kLeft, base, assign)
	t.bisect(ids[cut:], kRight, base+kLeft, assign)
}
