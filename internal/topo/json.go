package topo

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/res"
)

// jsonTopology is the serialized form of a Topology. Worker/master
// membership is reconstructed from the cluster layout, so the file stays
// human-editable: operators can describe a deployment by hand and load
// it into tango-sim.
type jsonTopology struct {
	LANRTTMs         float64       `json:"lan_rtt_ms"`
	LANBandwidthMbps int64         `json:"lan_bandwidth_mbps"`
	WANBandwidthMbps int64         `json:"wan_bandwidth_mbps"`
	KmPerMsRTT       float64       `json:"km_per_ms_rtt"`
	WANBaseRTTMs     float64       `json:"wan_base_rtt_ms"`
	Clusters         []jsonCluster `json:"clusters"`
}

type jsonCluster struct {
	Lat     float64    `json:"lat"`
	Lon     float64    `json:"lon"`
	Central bool       `json:"central,omitempty"`
	Master  jsonNode   `json:"master"`
	Workers []jsonNode `json:"workers"`
}

type jsonNode struct {
	MilliCPU  int64 `json:"milli_cpu"`
	MemoryMiB int64 `json:"memory_mib"`
	BWMbps    int64 `json:"bw_mbps"`
}

func toJSONNode(v res.Vector) jsonNode {
	return jsonNode{MilliCPU: v.MilliCPU, MemoryMiB: v.MemoryMiB, BWMbps: v.BWMbps}
}

func (n jsonNode) vector() res.Vector { return res.V(n.MilliCPU, n.MemoryMiB, n.BWMbps) }

// WriteJSON serializes the topology.
func (t *Topology) WriteJSON(w io.Writer) error {
	jt := jsonTopology{
		LANRTTMs:         float64(t.LANRTT) / float64(time.Millisecond),
		LANBandwidthMbps: t.LANBandwidthMbps,
		WANBandwidthMbps: t.WANBandwidthMbps,
		KmPerMsRTT:       t.KmPerMsRTT,
		WANBaseRTTMs:     float64(t.WANBaseRTT) / float64(time.Millisecond),
	}
	for _, c := range t.Clusters {
		jc := jsonCluster{
			Lat: c.Lat, Lon: c.Lon, Central: c.Central,
			Master: toJSONNode(t.Node(c.Master).Capacity),
		}
		for _, w := range c.Workers {
			jc.Workers = append(jc.Workers, toJSONNode(t.Node(w).Capacity))
		}
		jt.Clusters = append(jt.Clusters, jc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jt); err != nil {
		return fmt.Errorf("topo: write json: %w", err)
	}
	return nil
}

// ReadJSON parses a topology written by WriteJSON (or authored by hand).
func ReadJSON(r io.Reader) (*Topology, error) {
	var jt jsonTopology
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jt); err != nil {
		return nil, fmt.Errorf("topo: read json: %w", err)
	}
	if len(jt.Clusters) == 0 {
		return nil, fmt.Errorf("topo: json topology has no clusters")
	}
	b := NewBuilder()
	if jt.LANRTTMs > 0 {
		b.t.LANRTT = time.Duration(jt.LANRTTMs * float64(time.Millisecond))
	}
	if jt.LANBandwidthMbps > 0 {
		b.t.LANBandwidthMbps = jt.LANBandwidthMbps
	}
	if jt.WANBandwidthMbps > 0 {
		b.t.WANBandwidthMbps = jt.WANBandwidthMbps
	}
	if jt.KmPerMsRTT > 0 {
		b.t.KmPerMsRTT = jt.KmPerMsRTT
	}
	if jt.WANBaseRTTMs > 0 {
		b.t.WANBaseRTT = time.Duration(jt.WANBaseRTTMs * float64(time.Millisecond))
	}
	var central ClusterID = -1
	for i, jc := range jt.Clusters {
		if len(jc.Workers) == 0 {
			return nil, fmt.Errorf("topo: cluster %d has no workers", i)
		}
		if jc.Master.MilliCPU <= 0 {
			return nil, fmt.Errorf("topo: cluster %d master has no CPU", i)
		}
		caps := make([]res.Vector, len(jc.Workers))
		for j, w := range jc.Workers {
			if w.MilliCPU <= 0 || w.MemoryMiB <= 0 {
				return nil, fmt.Errorf("topo: cluster %d worker %d has non-positive capacity", i, j)
			}
			caps[j] = w.vector()
		}
		id := b.AddCluster(jc.Lat, jc.Lon, jc.Master.vector(), caps)
		if jc.Central {
			if central >= 0 {
				return nil, fmt.Errorf("topo: multiple central clusters (%d and %d)", central, id)
			}
			central = id
		}
	}
	if central >= 0 {
		b.MarkCentral(central)
	}
	return b.Build(), nil
}
