package shard_test

import (
	"math/rand"
	"testing"

	"repro/internal/dsslc"
	"repro/internal/engine"
	"repro/internal/res"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

func newEngine(tp *topo.Topology) *engine.Engine {
	return engine.New(engine.Config{
		Sim: sim.New(), Topo: tp, Catalog: trace.DefaultCatalog(), Policy: engine.GreedyPolicy{},
	})
}

// makeBatches builds one LC batch per cluster with perReq requests
// each, with globally unique IDs and types cycling over the LC catalog.
func makeBatches(e *engine.Engine, tp *topo.Topology, perReq int) []shard.Batch {
	var out []shard.Batch
	id := int64(0)
	for _, c := range tp.Clusters {
		b := shard.Batch{Cluster: c.ID}
		for i := 0; i < perReq; i++ {
			b.Reqs = append(b.Reqs, e.NewRequest(trace.Request{
				ID: id, Type: trace.TypeID(int(id) % 5), Class: trace.LC, Cluster: c.ID,
			}))
			id++
		}
		out = append(out, b)
	}
	return out
}

func scaleTopo(clusters int, seed int64) *topo.Topology {
	cfg := topo.DefaultGenConfig(clusters)
	return topo.Generate(cfg, rand.New(rand.NewSource(seed)))
}

// TestSingleShardBitIdentical: K=1 must reproduce the unsharded DSS-LC
// dispatcher exactly — same rng stream, same solves, same assignment
// for every request.
func TestSingleShardBitIdentical(t *testing.T) {
	tp := scaleTopo(24, 5)
	const seed = 42
	// Heavy load so several clusters hit Algorithm 2's case 2 and
	// consume rng via the ρ-shuffle.
	e1, e2 := newEngine(tp), newEngine(tp)
	b1 := makeBatches(e1, tp, 40)
	b2 := makeBatches(e2, tp, 40)

	global := dsslc.New(e1, seed)
	want := make(dsslc.Assignment)
	tmp := make(dsslc.Assignment)
	for _, b := range b1 {
		clear(tmp)
		global.ScheduleBatchInto(b.Cluster, b.Reqs, tmp)
		for id, nid := range tmp {
			want[id] = nid
		}
	}

	sh := shard.New(e2, seed, 1, 4)
	got := make(dsslc.Assignment)
	sh.ScheduleRound(b2, got, nil)

	if len(got) != len(want) {
		t.Fatalf("sharded assigned %d requests, unsharded %d", len(got), len(want))
	}
	for id, nid := range want {
		if got[id] != nid {
			t.Fatalf("request %d: sharded -> node %d, unsharded -> node %d", id, got[id], nid)
		}
	}
}

// TestMultiShardDeterministic: identical setups with different worker
// counts (1 vs 4 goroutines) must produce identical assignments —
// results cannot depend on goroutine interleaving.
func TestMultiShardDeterministic(t *testing.T) {
	tp := scaleTopo(32, 9)
	const seed, k = 7, 4
	run := func(workers int) dsslc.Assignment {
		e := newEngine(tp)
		batches := makeBatches(e, tp, 30)
		sh := shard.New(e, seed, k, workers)
		sh.GeoRadiusKm = 1e9
		out := make(dsslc.Assignment)
		sh.ScheduleRound(batches, out, nil)
		return out
	}
	a, b := run(1), run(4)
	if len(a) != len(b) {
		t.Fatalf("1-worker run assigned %d, 4-worker run %d", len(a), len(b))
	}
	for id, nid := range a {
		if b[id] != nid {
			t.Fatalf("request %d: node %d with 1 worker, node %d with 4", id, nid, b[id])
		}
	}
}

// TestAllRequestsAssigned: sharding must preserve global feasibility —
// every request gets a placement, shard-local or via the overflow pass.
func TestAllRequestsAssigned(t *testing.T) {
	tp := scaleTopo(40, 3)
	e := newEngine(tp)
	batches := makeBatches(e, tp, 50)
	total := 0
	for _, b := range batches {
		total += len(b.Reqs)
	}
	sh := shard.New(e, 11, 4, 2)
	sh.GeoRadiusKm = 1e9
	out := make(dsslc.Assignment)
	sh.ScheduleRound(batches, out, nil)
	if len(out) != total {
		t.Fatalf("assigned %d of %d requests", len(out), total)
	}
}

// TestEmptyShards: more shards than clusters leaves some shards with no
// clusters; the round must still place everything and report stats for
// every shard.
func TestEmptyShards(t *testing.T) {
	b := topo.NewBuilder()
	caps := []res.Vector{res.V(8000, 16384, 500)}
	for i := 0; i < 3; i++ {
		b.AddCluster(30+float64(i)*0.5, 110, res.V(8000, 16384, 1000), caps)
	}
	tp := b.Build()
	e := newEngine(tp)
	batches := makeBatches(e, tp, 10)
	sh := shard.New(e, 1, 8, 4)
	if sh.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", sh.NumShards())
	}
	out := make(dsslc.Assignment)
	sh.ScheduleRound(batches, out, nil)
	if len(out) != 30 {
		t.Fatalf("assigned %d of 30 requests", len(out))
	}
	stats := sh.Stats()
	if len(stats) != 8 {
		t.Fatalf("Stats() returned %d shards, want 8", len(stats))
	}
	populated, empty := 0, 0
	for _, st := range stats {
		if st.Clusters == 0 {
			empty++
			if st.Solves != 0 {
				t.Fatalf("empty shard %d reports %d solves", st.Shard, st.Solves)
			}
		} else {
			populated++
		}
	}
	if populated != 3 || empty != 5 {
		t.Fatalf("populated/empty = %d/%d, want 3/5", populated, empty)
	}
}

// chainTopo builds three cluster groups on a west→east line: a starved
// origin group, a middle group with little headroom, and a far group
// holding nearly all capacity. With K=3 the bisection puts each group
// in its own shard.
func chainTopo() *topo.Topology {
	b := topo.NewBuilder()
	tiny := []res.Vector{res.V(600, 1024, 50)}   // ~1 request of type 0
	small := []res.Vector{res.V(1100, 1536, 50)} // ~2 requests
	big := make([]res.Vector, 6)
	for i := range big {
		big[i] = res.V(16000, 32768, 1000)
	}
	b.AddCluster(31.0, 110.0, res.V(8000, 16384, 1000), tiny) // shard 0 (origin)
	b.AddCluster(31.1, 110.2, res.V(8000, 16384, 1000), tiny)
	b.AddCluster(31.0, 112.0, res.V(8000, 16384, 1000), small) // shard 1 (middle)
	b.AddCluster(31.1, 112.2, res.V(8000, 16384, 1000), small)
	b.AddCluster(31.0, 114.0, res.V(8000, 16384, 1000), big) // shard 2 (far)
	b.AddCluster(31.1, 114.2, res.V(8000, 16384, 1000), big)
	return b.Build()
}

// TestOverflowCrossesMultipleShardBoundaries: a batch that swamps its
// origin shard, with the adjacent shard too small to absorb it, must
// spill through the overflow pass into the far shard — an overflow
// chain crossing two shard boundaries.
func TestOverflowCrossesMultipleShardBoundaries(t *testing.T) {
	tp := chainTopo()
	e := newEngine(tp)
	sh := shard.New(e, 17, 3, 3)
	sh.GeoRadiusKm = 1e9

	origin := tp.Clusters[0].ID
	farShard := sh.ShardOf(tp.Clusters[4].ID)
	if sh.ShardOf(origin) == farShard || sh.ShardOf(tp.Clusters[2].ID) == farShard {
		t.Fatalf("partition did not separate the three groups: shards %d/%d/%d",
			sh.ShardOf(origin), sh.ShardOf(tp.Clusters[2].ID), farShard)
	}

	var reqs []*engine.Request
	for i := 0; i < 60; i++ {
		reqs = append(reqs, e.NewRequest(trace.Request{
			ID: int64(i), Type: 0, Class: trace.LC, Cluster: origin,
		}))
	}
	out := make(dsslc.Assignment)
	sh.ScheduleRound([]shard.Batch{{Cluster: origin, Reqs: reqs}}, out, nil)

	if len(out) != len(reqs) {
		t.Fatalf("assigned %d of %d requests", len(out), len(reqs))
	}
	if sh.OverflowRouted == 0 {
		t.Fatal("no requests took the cross-shard overflow pass")
	}
	far := 0
	for _, nid := range out {
		if sh.ShardOf(e.Node(nid).Cluster) == farShard {
			far++
		}
	}
	if far == 0 {
		t.Fatal("overflow never crossed more than one shard boundary: far shard got nothing")
	}
}

// TestShardStatsAndTotals: per-shard solver counters surface through
// Stats and aggregate through SolverTotals.
func TestShardStatsAndTotals(t *testing.T) {
	tp := scaleTopo(16, 21)
	e := newEngine(tp)
	sh := shard.New(e, 5, 4, 2)
	sh.GeoRadiusKm = 1e9
	out := make(dsslc.Assignment)
	for round := 0; round < 3; round++ {
		clear(out)
		sh.ScheduleRound(makeBatches(e, tp, 8), out, nil)
	}
	var sum uint64
	for _, st := range sh.Stats() {
		sum += st.Solves
	}
	solves, warm := sh.SolverTotals()
	if solves == 0 {
		t.Fatal("no solves recorded")
	}
	if solves < sum {
		t.Fatalf("SolverTotals solves %d < per-shard sum %d", solves, sum)
	}
	// Identical rebuilds across rounds: rounds 2 and 3 should warm-hit.
	if warm == 0 {
		t.Fatal("no warm hits across repeated rounds")
	}
	if sh.Rounds != 3 {
		t.Fatalf("Rounds = %d, want 3", sh.Rounds)
	}
}

// TestDeliverOrder: deliver must fire once per batch, in the original
// batch order, in both modes.
func TestDeliverOrder(t *testing.T) {
	tp := scaleTopo(12, 2)
	for _, k := range []int{1, 3} {
		e := newEngine(tp)
		batches := makeBatches(e, tp, 4)
		sh := shard.New(e, 1, k, 2)
		sh.GeoRadiusKm = 1e9
		out := make(dsslc.Assignment)
		var order []topo.ClusterID
		sh.ScheduleRound(batches, out, func(b shard.Batch) {
			order = append(order, b.Cluster)
		})
		if len(order) != len(batches) {
			t.Fatalf("k=%d: deliver fired %d times for %d batches", k, len(order), len(batches))
		}
		for i, b := range batches {
			if order[i] != b.Cluster {
				t.Fatalf("k=%d: deliver %d for cluster %d, want %d", k, i, order[i], b.Cluster)
			}
		}
	}
}
