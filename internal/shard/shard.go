// Package shard is the region-sharded parallel scheduling layer over
// DSS-LC (ROADMAP item 2: partition the global MCNF along the topo
// geography and solve shards concurrently). The paper evaluates Tango
// at 1000 nodes; reaching production edge-cloud scale (100k+) with one
// global solve per period is hopeless — the MCNF candidate set, and so
// the solve cost, grows with the whole topology. Sharding cuts the
// topology into geographically coherent regions (topo.PartitionClusters
// — weighted coordinate bisection), gives every shard its own complete
// DSS-LC instance with a private flow.Graph + flow.Workspace + keyed
// warm-start memo (the PR-7 zero-alloc contract holds per shard), and
// solves the shards concurrently on a bounded worker pool.
//
// Shard solves are restricted: a shard's scheduler only sees candidate
// workers inside its own region (dsslc.Scheduler.Restrict), so each
// solve's graph is ~1/K of the global one. That restriction can starve
// a hot shard that its neighbors could absorb, so Algorithm 2's
// spillover is preserved globally: each type's ρ-shuffled overflow set
// is intercepted (dsslc.Scheduler.OverflowSink) and re-routed in a
// sequential cross-shard overflow pass by an unrestricted DSS-LC
// instance whose geo-nearby candidates (topo.NeighborClustersInto) may
// cross shard boundaries — so global feasibility matches the unsharded
// scheduler's.
//
// Determinism: shard solves run concurrently but share no mutable
// state — each shard writes its own assignment map and its own
// partition of the pending-resource table (candidates never leave the
// shard, so the index sets are disjoint) — and results are merged on
// the driving goroutine in fixed shard order after the join. Every
// source of randomness (each shard's ρ-shuffle rng, the overflow
// pass's rng) is seeded from the run seed and consumed in a fixed
// order, so a given (scenario, seed, K) replays byte-identically
// regardless of goroutine interleaving. With K=1 the layer degenerates
// to a plain sequential DSS-LC pass-through — same rng stream, same
// solve interleave, same trace events — and is bit-identical to the
// unsharded scheduler (asserted in internal/check).
package shard

import (
	"runtime"
	"sync"

	"repro/internal/dsslc"
	"repro/internal/engine"
	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/res"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Batch is one cluster's LC queue for this dispatcher round.
type Batch struct {
	Cluster topo.ClusterID
	Reqs    []*engine.Request
}

// overflowGroup records one (cluster, type) overflow set captured from a
// shard solve, as offsets into the shard's overflow arena.
type overflowGroup struct {
	c          topo.ClusterID
	svc        trace.TypeID
	start, end int
}

// shardState is one shard's private scheduling state. Everything here
// is touched only by the goroutine currently running the shard (and by
// the driver before fan-out / after join).
type shardState struct {
	idx      int
	clusters int
	inner    *dsslc.Scheduler
	assign   dsslc.Assignment
	batches  []Batch
	ovReqs   []*engine.Request
	ovGroups []overflowGroup
	touched  []topo.NodeID
	overflow int64
}

// Scheduler coordinates the sharded round. It is driven from a single
// goroutine (the simulator's dispatcher); the internal worker pool is
// joined before ScheduleRound returns.
type Scheduler struct {
	Engine *engine.Engine
	// GeoRadiusKm bounds candidate clusters per solve (footnote 4),
	// propagated into every shard's scheduler and the overflow pass.
	GeoRadiusKm float64

	// Observers, wired per round. In single-shard mode they attach to
	// the inner scheduler directly (full per-decision audit, exactly as
	// unsharded). In multi-shard mode per-decision tracing inside the
	// concurrent solves is disabled — emission order would depend on
	// goroutine interleaving — and the layer instead emits one
	// EvFlowSolve per batch after the join, in batch order; OnSolve is
	// serialized through a mutex so internal/check's flow oracles still
	// observe every solve; the sequential overflow pass gets the full
	// observer set.
	Tracer     *obs.Tracer
	OnDecision func(obs.Decision)
	OnSolve    func(g *flow.Graph, src, sink int, r flow.Result)
	Prof       *perf.Profiler

	// Rounds counts ScheduleRound calls; OverflowRouted the requests
	// that crossed shards through the overflow pass.
	Rounds         int64
	OverflowRouted int64

	shards  []*shardState
	shardOf []int // ClusterID -> shard index
	workers int

	ov        *dsslc.Scheduler // cross-shard overflow pass
	ovAssign  dsslc.Assignment
	ovTouched []topo.NodeID

	// pending[n] is resource demand assigned toward node n this round
	// but not yet dispatched into the engine. Shards read and write
	// only their own region's entries during the parallel phase; the
	// overflow pass (sequential) reads and writes any entry.
	pending []res.Vector
}

// New builds a sharded scheduler with k shards solving on up to
// `workers` concurrent goroutines (workers <= 0 means GOMAXPROCS).
// Seeds derive from seed so that k=1 consumes the exact rng stream the
// unsharded dsslc.New(e, seed) would.
func New(e *engine.Engine, seed int64, k, workers int) *Scheduler {
	if k < 1 {
		k = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	t := e.Topology()
	s := &Scheduler{
		Engine:      e,
		GeoRadiusKm: 500,
		shardOf:     t.PartitionClusters(k),
		workers:     workers,
		pending:     make([]res.Vector, len(t.Nodes)),
		ovAssign:    make(dsslc.Assignment),
	}
	counts := make([]int, k)
	for _, sh := range s.shardOf {
		counts[sh]++
	}
	for i := 0; i < k; i++ {
		st := &shardState{
			idx:      i,
			clusters: counts[i],
			inner:    dsslc.New(e, seed+int64(i)),
			assign:   make(dsslc.Assignment),
		}
		if k > 1 {
			st.inner.Restrict = func(c topo.ClusterID) bool { return s.shardOf[c] == st.idx }
			st.inner.Pending = s.pendingAt
			st.inner.OverflowSink = func(c topo.ClusterID, svc trace.TypeID, rs []*engine.Request) {
				// rs aliases the inner scheduler's pooled buffer: copy now.
				start := len(st.ovReqs)
				st.ovReqs = append(st.ovReqs, rs...)
				st.ovGroups = append(st.ovGroups, overflowGroup{c, svc, start, len(st.ovReqs)})
			}
		}
		s.shards = append(s.shards, st)
	}
	// The overflow pass's rng is distinct from every shard's; the offset
	// keeps it clear of the seed+i range for any practical k.
	s.ov = dsslc.New(e, seed+1_000_003)
	s.ov.Pending = s.pendingAt
	return s
}

// Name implements the scheduler naming convention. Single-shard mode
// IS the unsharded algorithm — same rng stream, same solves, same
// placements — so it reports the plain name and stays report-identical
// to the unsharded dispatcher.
func (s *Scheduler) Name() string {
	if len(s.shards) == 1 {
		return "DSS-LC"
	}
	return "DSS-LC/sharded"
}

// NumShards returns the shard count.
func (s *Scheduler) NumShards() int { return len(s.shards) }

// ShardOf returns the shard index a cluster belongs to.
func (s *Scheduler) ShardOf(c topo.ClusterID) int { return s.shardOf[c] }

func (s *Scheduler) pendingAt(n topo.NodeID) res.Vector { return s.pending[n] }

// ScheduleRound routes one dispatcher round: every cluster's LC batch,
// scheduled shard-parallel, merged into out. deliver (optional) is
// invoked once per batch after that batch's assignments are in out —
// in single-shard mode immediately after each batch solves (the exact
// unsharded interleave of solve and dispatch), in multi-shard mode for
// all batches in their original order after the join and the overflow
// pass.
func (s *Scheduler) ScheduleRound(batches []Batch, out dsslc.Assignment, deliver func(Batch)) {
	s.Rounds++
	if len(s.shards) == 1 {
		s.roundSequential(batches, out, deliver)
		return
	}
	s.roundParallel(batches, out, deliver)
}

// roundSequential is the K=1 degenerate mode: a pass-through to one
// unrestricted DSS-LC instance, bit-identical to the unsharded path.
func (s *Scheduler) roundSequential(batches []Batch, out dsslc.Assignment, deliver func(Batch)) {
	st := s.shards[0]
	in := st.inner
	in.GeoRadiusKm = s.GeoRadiusKm
	in.Tracer, in.OnDecision, in.OnSolve, in.Prof = s.Tracer, s.OnDecision, s.OnSolve, s.Prof
	for _, b := range batches {
		// A fresh map per batch keeps the inner scheduler's trace event
		// (whose Value is the assignment-map size) identical to the
		// unsharded dispatcher, which clears its map per cluster.
		clear(st.assign)
		in.ScheduleBatchInto(b.Cluster, b.Reqs, st.assign)
		for id, nid := range st.assign {
			out[id] = nid
		}
		if deliver != nil {
			deliver(b)
		}
	}
}

func (s *Scheduler) roundParallel(batches []Batch, out dsslc.Assignment, deliver func(Batch)) {
	// Fan out: group batches per shard in arrival order and reset
	// per-round state.
	for _, st := range s.shards {
		st.batches = st.batches[:0]
		st.ovReqs = st.ovReqs[:0]
		st.ovGroups = st.ovGroups[:0]
		st.touched = st.touched[:0]
		clear(st.assign)
	}
	for _, b := range batches {
		st := s.shards[s.shardOf[b.Cluster]]
		st.batches = append(st.batches, b)
	}
	var solveMu sync.Mutex
	for _, st := range s.shards {
		in := st.inner
		in.GeoRadiusKm = s.GeoRadiusKm
		in.Tracer, in.OnDecision, in.Prof, in.OnSolve = nil, nil, nil, nil
		if h := s.OnSolve; h != nil {
			in.OnSolve = func(g *flow.Graph, src, sink int, r flow.Result) {
				solveMu.Lock()
				defer solveMu.Unlock()
				h(g, src, sink, r)
			}
		}
	}
	// Parallel phase on a bounded pool. Shards with no work are skipped
	// (empty shards exist when K approaches the cluster count).
	jobs := make(chan *shardState)
	var wg sync.WaitGroup
	nw := s.workers
	if nw > len(s.shards) {
		nw = len(s.shards)
	}
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for st := range jobs {
				s.runShard(st)
			}
		}()
	}
	for _, st := range s.shards {
		if len(st.batches) > 0 {
			jobs <- st
		}
	}
	close(jobs)
	wg.Wait()

	// Join: merge shard assignments in fixed shard order (key sets are
	// disjoint — every request belongs to exactly one batch and every
	// batch to exactly one shard — so the merged content is
	// deterministic).
	for _, st := range s.shards {
		for id, nid := range st.assign {
			out[id] = nid
		}
	}
	// Cross-shard overflow pass: sequential, shard order then capture
	// order, with the full observer set (it runs on the driving
	// goroutine). The unrestricted instance sees every geo-nearby
	// cluster, so overflow crosses shard boundaries — and chains across
	// several when a neighbor shard is itself saturated, via the
	// λ-scaled Ĝ'_k of its own case-2 split.
	ov := s.ov
	ov.GeoRadiusKm = s.GeoRadiusKm
	ov.Tracer, ov.OnDecision, ov.OnSolve, ov.Prof = s.Tracer, s.OnDecision, s.OnSolve, s.Prof
	for _, st := range s.shards {
		for _, gr := range st.ovGroups {
			rs := st.ovReqs[gr.start:gr.end]
			st.overflow += int64(len(rs))
			s.OverflowRouted += int64(len(rs))
			clear(s.ovAssign)
			ov.ScheduleBatchInto(gr.c, rs, s.ovAssign)
			for _, r := range rs {
				if nid, ok := s.ovAssign[r.ID]; ok {
					out[r.ID] = nid
					s.book(&s.ovTouched, nid, r.Type)
				}
			}
		}
	}
	// One flow-solve trace event per batch, in batch order, after the
	// join — deterministic regardless of solve interleaving.
	if tr := s.Tracer; tr.Enabled() {
		for _, b := range batches {
			assigned := 0
			for _, r := range b.Reqs {
				if _, ok := out[r.ID]; ok {
					assigned++
				}
			}
			tr.Emit(obs.Ev(obs.EvFlowSolve).Clu(int(b.Cluster)).Au(int64(len(b.Reqs))).Val(float64(assigned)))
		}
	}
	if deliver != nil {
		for _, b := range batches {
			deliver(b)
		}
	}
	// The engine now carries the booked demand as in-transit state;
	// drop the round's pending entries.
	for _, st := range s.shards {
		for _, nid := range st.touched {
			s.pending[nid] = res.Vector{}
		}
	}
	for _, nid := range s.ovTouched {
		s.pending[nid] = res.Vector{}
	}
	s.ovTouched = s.ovTouched[:0]
}

// runShard solves one shard's batches sequentially on a pool worker.
// After each batch the assigned demand is booked into the pending
// table so the shard's later batches (and the overflow pass) do not
// double-book capacity the engine has not seen dispatched yet.
func (s *Scheduler) runShard(st *shardState) {
	for _, b := range st.batches {
		st.inner.ScheduleBatchInto(b.Cluster, b.Reqs, st.assign)
		for _, r := range b.Reqs {
			if nid, ok := st.assign[r.ID]; ok {
				s.book(&st.touched, nid, r.Type)
			}
		}
	}
}

// book adds one request's effective demand to the pending table,
// recording first touches for end-of-round clearing.
func (s *Scheduler) book(touched *[]topo.NodeID, nid topo.NodeID, t trace.TypeID) {
	if s.pending[nid].IsZero() {
		*touched = append(*touched, nid)
	}
	s.pending[nid] = s.pending[nid].Add(s.Engine.Node(nid).EffectiveDemand(t))
}

// Stat is one shard's solver counters for the telemetry plane.
type Stat struct {
	Shard    int
	Clusters int
	Solves   uint64
	WarmHits uint64
	Overflow int64
}

// Stats snapshots per-shard counters (workspaces are nil until a
// shard's first solve; such shards report zero).
func (s *Scheduler) Stats() []Stat {
	out := make([]Stat, len(s.shards))
	for i, st := range s.shards {
		out[i] = Stat{Shard: i, Clusters: st.clusters, Overflow: st.overflow}
		if ws := st.inner.Workspace(); ws != nil {
			out[i].Solves, out[i].WarmHits = ws.Solves, ws.WarmHits
		}
	}
	return out
}

// SolverTotals aggregates solves and warm hits across shards and the
// overflow pass.
func (s *Scheduler) SolverTotals() (solves, warmHits uint64) {
	for _, st := range s.shards {
		if ws := st.inner.Workspace(); ws != nil {
			solves += ws.Solves
			warmHits += ws.WarmHits
		}
	}
	if ws := s.ov.Workspace(); ws != nil {
		solves += ws.Solves
		warmHits += ws.WarmHits
	}
	return solves, warmHits
}
