// Package hrm implements Harmonious Resource Management (§4), the
// resource-allocation half of Tango:
//
//   - Regulations — the §4.1 resource-usage regulations as an engine
//     Policy: LC services take priority, drawing first on idle resources
//     and then preempting BE services (CPU/bandwidth shares are
//     transferred without stopping the BE container; memory is reclaimed
//     by evicting and later restarting BE requests). BE services may only
//     use idle resources, but maximize them via the Booster.
//   - DVPA — the §4.2 dynamic vertical pod autoscaler: resizes pod- and
//     container-level cgroups in the kernel-safe order with a ~23 ms
//     per-operation latency and no container restart, in contrast to the
//     native K8s VPA's delete-and-rebuild.
//   - ReAssurer — the §4.3 QoS re-assurance mechanism (Algorithm 1):
//     every 100 ms window it computes the slack score δ = 1 − ξ/γ from
//     the p95 tail latency ξ and QoS target γ of each LC service on each
//     node, increasing the minimum requested resources when δ < α and
//     decreasing them when δ > β, in small steps to avoid perturbation.
//   - StaticPartition — the "K8s-native" allocation baseline: fixed
//     per-class resource partitions sized from the trace's usage ratio.
package hrm

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cgroup"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/res"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// DVPAOpLatency is the measured cost of one dynamic scaling operation
// (§7.1: "average time taken to perform a single scaling operation ...
// 23ms").
const DVPAOpLatency = 23 * time.Millisecond

// Regulations is the HRM admission/preemption policy (§4.1).
type Regulations struct {
	// MinKeepFrac is the fraction of a BE request's demand that
	// compression must leave it (compressible resources only).
	MinKeepFrac float64
	// DisablePreemption turns off BE preemption (ablation).
	DisablePreemption bool
}

// NewRegulations returns the default HRM policy.
func NewRegulations() *Regulations { return &Regulations{MinKeepFrac: 0.25} }

// Name implements engine.Policy.
func (p *Regulations) Name() string { return "hrm" }

// Admit implements engine.Policy.
func (p *Regulations) Admit(n *engine.Node, r *engine.Request) (res.Vector, bool) {
	d := n.EffectiveDemand(r.Type)
	if r.Class == trace.BE {
		if n.Free().Fits(d) {
			return d, true
		}
		// Reclaim boost headroom from running BE peers (keep their full
		// demand) so a waiting BE request is not starved by boosted ones.
		need := d.Sub(n.Free()).Max(res.Vector{})
		if need.MemoryMiB == 0 && (need.MilliCPU > 0 || need.BWMbps > 0) {
			n.CompressBE(need, 1.0)
			if n.Free().Fits(d) {
				return d, true
			}
		}
		return res.Vector{}, false
	}
	// Latency-critical: idle first.
	if n.Free().Fits(d) {
		return d, true
	}
	if p.DisablePreemption {
		return res.Vector{}, false
	}
	// Preemption is allowed when idle+BE-held resources cover the demand.
	if !n.AvailableForLC().Fits(d) {
		return res.Vector{}, false
	}
	// First transfer compressible shares (CPU, bandwidth) from running BE
	// requests without stopping them.
	free := n.Free()
	needCPU := d.MilliCPU - free.MilliCPU
	needBW := d.BWMbps - free.BWMbps
	if needCPU > 0 || needBW > 0 {
		var want res.Vector
		if needCPU > 0 {
			want.MilliCPU = needCPU
		}
		if needBW > 0 {
			want.BWMbps = needBW
		}
		n.CompressBE(want, p.MinKeepFrac)
	}
	if n.Free().Fits(d) {
		return d, true
	}
	// Compression was not enough (incompressible memory, or compression
	// floors): evict-and-restart BE until the demand fits. Because
	// AvailableForLC fits, evicting every BE is guaranteed sufficient,
	// so admission always succeeds here and queue draining progresses.
	if n.EvictBEUntil(d) {
		return d, true
	}
	return res.Vector{}, false
}

// StaticPartition is the native-K8s baseline: each class owns a fixed
// slice of every node (initialized "according to the total resource
// usage ratio in the trace", §7.1) and requests never cross it.
type StaticPartition struct {
	// LCFraction of each node's capacity reserved for LC services.
	LCFraction float64
}

// NewStaticPartition sizes the LC partition from a trace's aggregate
// CPU-work ratio.
func NewStaticPartition(cat *trace.Catalog, reqs []trace.Request) *StaticPartition {
	var lcWork, total float64
	for _, r := range reqs {
		w := float64(cat.Type(r.Type).Work)
		total += w
		if r.Class == trace.LC {
			lcWork += w
		}
	}
	f := 0.5
	if total > 0 {
		f = lcWork / total
	}
	if f < 0.1 {
		f = 0.1
	}
	if f > 0.9 {
		f = 0.9
	}
	return &StaticPartition{LCFraction: f}
}

// Name implements engine.Policy.
func (p *StaticPartition) Name() string { return "k8s-static" }

// Admit implements engine.Policy.
func (p *StaticPartition) Admit(n *engine.Node, r *engine.Request) (res.Vector, bool) {
	d := n.EffectiveDemand(r.Type)
	if !n.Free().Fits(d) {
		return res.Vector{}, false
	}
	if r.Class == trace.LC {
		lcCap := n.Capacity.ScaleFloat(p.LCFraction)
		if !lcCap.Fits(n.UsedByLC().Add(d)) {
			return res.Vector{}, false
		}
		return d, true
	}
	beCap := n.Capacity.ScaleFloat(1 - p.LCFraction)
	if !beCap.Fits(n.UsedByBE().Add(d)) {
		return res.Vector{}, false
	}
	return d, true
}

// Booster periodically grants idle CPU to running BE requests so they
// "maximize the use of idle resources" (Figure 4(a)). LC admissions later
// claw the boost back through compression.
type Booster struct {
	Engine   *engine.Engine
	Interval time.Duration
	// ReserveFrac of each node's CPU is left unboosted as headroom for
	// arriving LC requests.
	ReserveFrac float64
}

// NewBooster creates a booster with 200 ms cadence and 10% headroom.
func NewBooster(e *engine.Engine) *Booster {
	return &Booster{Engine: e, Interval: 200 * time.Millisecond, ReserveFrac: 0.1}
}

// Start registers the periodic boost on the simulator; cancel via the
// returned event.
func (b *Booster) Start(s *sim.Simulator) *sim.Event {
	return s.Every(b.Interval, b.Tick)
}

// Tick performs one boost pass over all nodes.
func (b *Booster) Tick() {
	for _, n := range b.Engine.Nodes() {
		reserve := int64(float64(n.Capacity.MilliCPU) * b.ReserveFrac)
		spare := n.Free().MilliCPU - reserve
		if spare <= 0 {
			continue
		}
		ids := n.RunningBE()
		if len(ids) == 0 {
			continue
		}
		per := spare / int64(len(ids))
		if per <= 0 {
			continue
		}
		for _, id := range ids {
			n.GrantBE(id, per)
		}
	}
}

// DVPA is the dynamic vertical pod autoscaler component (§4.2). It
// resizes the pod- and container-level cgroups through the ordered
// protocol of Figure 5 and accounts one OpLatency per operation; the
// container keeps running throughout (no delete-and-rebuild).
type DVPA struct {
	OpLatency time.Duration
	Ops       int64
	// Tracer and Now, when both set, emit one "dvpa-resize" span per
	// operation covering [Now, Now+OpLatency] with the container path.
	Tracer *obs.Tracer
	Now    func() time.Duration
}

// NewDVPA returns a D-VPA with the measured 23 ms operation latency.
func NewDVPA() *DVPA { return &DVPA{OpLatency: DVPAOpLatency} }

// Resize applies the ordered two-level resize and returns the operation
// latency the caller should account (the container is NOT interrupted).
func (d *DVPA) Resize(h *cgroup.Hierarchy, pod, container *cgroup.Group, target res.Vector) (time.Duration, error) {
	l := cgroup.FromVector(target)
	if err := h.ResizePodAndContainer(pod, container, l, l); err != nil {
		return 0, fmt.Errorf("hrm: d-vpa resize: %w", err)
	}
	d.Ops++
	if tr := d.Tracer; tr.Enabled() && d.Now != nil {
		at := d.Now()
		tr.EmitSpan(obs.Sp(obs.SpanDVPA, at, at+d.OpLatency).Note(container.Path()))
	}
	return d.OpLatency, nil
}

// ReAssurer implements Algorithm 1. It observes LC request outcomes,
// keeps a 100 ms tail-latency window per (node, service), and adjusts
// each node's AllocOverride between the catalog minimum and MaxFactor
// times it.
type ReAssurer struct {
	Engine *engine.Engine
	// Alpha and Beta are the slack thresholds (α < β) separating poor /
	// stable / excellent quality (§4.3).
	Alpha, Beta float64
	// StepFrac is the small adjustment proportion per tick.
	StepFrac float64
	// MaxFactor bounds the override at MaxFactor × MinDemand.
	MaxFactor float64
	// Window is the collection window (100 ms in the paper).
	Window time.Duration

	windows map[topo.NodeID]map[trace.TypeID]*metrics.Window
	// Adjustments counts override changes (for reporting).
	Adjustments int64
	// Tracer, when set, receives one reassure event per override change
	// (Value = slack δ, Aux = new minimum mCPU, Detail = grow/shrink).
	Tracer *obs.Tracer
}

// NewReAssurer returns the mechanism with the paper-shaped defaults:
// α = 0.1 (poor below 10% slack), β = 0.5 (excellent above 50% slack),
// 10% steps, override capped at 3× the minimum demand.
func NewReAssurer(e *engine.Engine) *ReAssurer {
	return &ReAssurer{
		Engine: e, Alpha: 0.1, Beta: 0.5, StepFrac: 0.1, MaxFactor: 3,
		Window:  100 * time.Millisecond,
		windows: map[topo.NodeID]map[trace.TypeID]*metrics.Window{},
	}
}

// Observe feeds one LC outcome into the windows. Call it from the
// engine's outcome fan-out.
func (ra *ReAssurer) Observe(o engine.Outcome) {
	if o.Req.Class != trace.LC || o.Req.Target < 0 {
		return
	}
	byType, ok := ra.windows[o.Req.Target]
	if !ok {
		byType = map[trace.TypeID]*metrics.Window{}
		ra.windows[o.Req.Target] = byType
	}
	w, ok := byType[o.Req.Type]
	if !ok {
		w = metrics.NewWindow(ra.Window)
		byType[o.Req.Type] = w
	}
	w.Observe(o.FinishedAt, float64(o.Latency)/float64(time.Millisecond))
}

// Slack returns δ_k(n_i) = 1 − ξ/γ for a node and service, and false if
// there are no samples in the window.
func (ra *ReAssurer) Slack(node topo.NodeID, t trace.TypeID) (float64, bool) {
	byType, ok := ra.windows[node]
	if !ok {
		return 0, false
	}
	w, ok := byType[t]
	if !ok {
		return 0, false
	}
	p95, ok := w.Percentile(95)
	if !ok {
		return 0, false
	}
	gamma := float64(ra.Engine.Catalog().Type(t).QoSTarget) / float64(time.Millisecond)
	if gamma <= 0 {
		return 0, false
	}
	return 1 - p95/gamma, true
}

// Start registers the periodic adjustment tick.
func (ra *ReAssurer) Start(s *sim.Simulator) *sim.Event {
	return s.Every(ra.Window, ra.Tick)
}

// Tick runs one pass of Algorithm 1 over every (node, LC service) pair.
// Pairs are visited in sorted (node, service) order: the adjustments
// commute, but the emitted EvReassure events are part of the trace
// stream, and the replay contract (internal/check) requires the stream
// to be byte-identical across same-seed runs — map order is not.
func (ra *ReAssurer) Tick() {
	nodeIDs := make([]topo.NodeID, 0, len(ra.windows))
	for id := range ra.windows {
		nodeIDs = append(nodeIDs, id)
	}
	sort.Slice(nodeIDs, func(i, j int) bool { return nodeIDs[i] < nodeIDs[j] })
	for _, nodeID := range nodeIDs {
		byType := ra.windows[nodeID]
		n := ra.Engine.Node(nodeID)
		types := make([]trace.TypeID, 0, len(byType))
		for t := range byType {
			types = append(types, t)
		}
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		for _, t := range types {
			slack, ok := ra.Slack(nodeID, t)
			if !ok {
				continue
			}
			min := ra.Engine.Catalog().Type(t).MinDemand
			cur := n.EffectiveDemand(t)
			// Only the compressible CPU dimension is adjusted: granting
			// more memory cannot speed a request up, it only reduces
			// concurrency.
			step := int64(float64(min.MilliCPU)*ra.StepFrac + 0.5)
			switch {
			case slack < ra.Alpha: // poor: grant more resources
				// Growing per-request allocations on a saturated node
				// only deepens queueing; grant more only while the node
				// has headroom (the re-assurer tunes processing speed,
				// not admission).
				if n.Utilization() > 0.85 {
					continue
				}
				next := cur
				next.MilliCPU += step
				if maxCPU := int64(float64(min.MilliCPU) * ra.MaxFactor); next.MilliCPU > maxCPU {
					next.MilliCPU = maxCPU
				}
				if next != cur {
					n.AllocOverride[t] = next
					ra.Adjustments++
					if tr := ra.Tracer; tr.Enabled() {
						tr.Emit(obs.Ev(obs.EvReassure).Node(int(nodeID)).Service(int(t)).
							Val(slack).Au(next.MilliCPU).Note("grow"))
					}
				}
			case slack > ra.Beta: // excellent: release resources
				next := cur
				next.MilliCPU -= step
				if next.MilliCPU < min.MilliCPU {
					next.MilliCPU = min.MilliCPU
				}
				if next != cur {
					n.AllocOverride[t] = next
					ra.Adjustments++
					if tr := ra.Tracer; tr.Enabled() {
						tr.Emit(obs.Ev(obs.EvReassure).Node(int(nodeID)).Service(int(t)).
							Val(slack).Au(next.MilliCPU).Note("shrink"))
					}
				}
			}
		}
	}
}
