package hrm

import (
	"testing"
	"time"

	"repro/internal/cgroup"
	"repro/internal/engine"
	"repro/internal/res"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

func env(p engine.Policy, onOut func(engine.Outcome)) (*sim.Simulator, *engine.Engine) {
	s := sim.New()
	b := topo.NewBuilder()
	b.AddCluster(31, 121, res.V(8000, 16384, 1000), []res.Vector{res.V(4000, 8192, 500)})
	tp := b.Build()
	e := engine.New(engine.Config{
		Sim: s, Topo: tp, Catalog: trace.DefaultCatalog(), Policy: p,
		OnOutcome: onOut, LCAbandonFactor: 1, ScaleLatency: DVPAOpLatency,
	})
	return s, e
}

func req(e *engine.Engine, id int64, t trace.TypeID, at time.Duration) *engine.Request {
	cat := trace.DefaultCatalog()
	return e.NewRequest(trace.Request{ID: id, Type: t, Class: cat.Type(t).Class, Arrival: at, Cluster: 0})
}

func TestRegulationsLCPreemptsBECompressible(t *testing.T) {
	pol := NewRegulations()
	s, e := env(pol, nil)
	n := e.Node(1)
	// Two BE analytics jobs (500m/1024Mi each), boosted to soak all CPU;
	// memory stays plentiful so only compression is needed.
	for i := int64(0); i < 2; i++ {
		e.DispatchLocal(req(e, i, 5, 0), 1)
		n.GrantBE(i, 1500)
	}
	if n.Free().MilliCPU != 0 {
		t.Fatalf("setup: free = %v", n.Free())
	}
	// LC request must be admitted by compressing BE CPU.
	e.DispatchLocal(req(e, 100, 3, 0), 1) // needs 1000m/1024Mi
	if n.RunningCount() != 3 {
		t.Fatalf("running = %d, want 3 (LC admitted via compression)", n.RunningCount())
	}
	lcq, _ := n.QueueLen()
	if lcq != 0 {
		t.Fatal("LC queued despite available BE resources")
	}
	s.Run()
	if e.Completed != 3 {
		t.Fatalf("completed = %d", e.Completed)
	}
}

func TestRegulationsLCEvictsBEForMemory(t *testing.T) {
	pol := NewRegulations()
	s, e := env(pol, nil)
	n := e.Node(1)
	// Four BE training jobs: 4x2048Mi = 8192Mi — all memory gone.
	for i := int64(0); i < 4; i++ {
		e.DispatchLocal(req(e, i, 6, 0), 1)
	}
	if n.Free().MemoryMiB != 0 {
		t.Fatalf("setup: free mem = %d", n.Free().MemoryMiB)
	}
	// LC needs 1024Mi: a BE must be evicted (memory is incompressible).
	e.DispatchLocal(req(e, 100, 3, 0), 1)
	if n.RunningCount() != 4 { // 3 BE + 1 LC
		t.Fatalf("running = %d", n.RunningCount())
	}
	_, beq := n.QueueLen()
	if beq != 1 {
		t.Fatalf("evicted BE should be queued: %d", beq)
	}
	s.Run()
	if e.Completed != 5 {
		t.Fatalf("completed = %d", e.Completed)
	}
}

func TestRegulationsBEOnlyUsesIdle(t *testing.T) {
	pol := NewRegulations()
	_, e := env(pol, nil)
	n := e.Node(1)
	// LC fills CPU: 4 AR-inference at 1000m.
	for i := int64(0); i < 4; i++ {
		e.DispatchLocal(req(e, i, 3, 0), 1)
	}
	// BE must queue, not preempt LC.
	e.DispatchLocal(req(e, 100, 5, 0), 1)
	if n.RunningCount() != 4 {
		t.Fatalf("BE should not preempt LC: running = %d", n.RunningCount())
	}
	_, beq := n.QueueLen()
	if beq != 1 {
		t.Fatalf("BE queue = %d", beq)
	}
}

func TestRegulationsBEReclaimsBoostFromPeers(t *testing.T) {
	pol := NewRegulations()
	_, e := env(pol, nil)
	n := e.Node(1)
	e.DispatchLocal(req(e, 1, 5, 0), 1) // be-analytics 500m
	n.GrantBE(1, 3500)                  // boosted to the whole node
	if n.Free().MilliCPU != 0 {
		t.Fatal("setup: node should be fully boosted")
	}
	// A second BE (500m) must be admitted by reclaiming boost only.
	e.DispatchLocal(req(e, 2, 5, 0), 1)
	if n.RunningCount() != 2 {
		t.Fatalf("running = %d, want 2", n.RunningCount())
	}
}

func TestRegulationsDisablePreemptionAblation(t *testing.T) {
	pol := NewRegulations()
	pol.DisablePreemption = true
	_, e := env(pol, nil)
	n := e.Node(1)
	for i := int64(0); i < 4; i++ {
		e.DispatchLocal(req(e, i, 6, 0), 1)
	}
	e.DispatchLocal(req(e, 100, 3, 0), 1)
	if n.RunningCount() != 4 {
		t.Fatal("preemption happened despite ablation flag")
	}
	lcq, _ := n.QueueLen()
	if lcq != 1 {
		t.Fatalf("LC queue = %d", lcq)
	}
}

func TestStaticPartitionSeparatesClasses(t *testing.T) {
	pol := &StaticPartition{LCFraction: 0.5}
	_, e := env(pol, nil)
	n := e.Node(1)
	// LC partition = 2000m/4096Mi. Two type-3 (1000m) fill it.
	for i := int64(0); i < 3; i++ {
		e.DispatchLocal(req(e, i, 3, 0), 1)
	}
	if n.RunningCount() != 2 {
		t.Fatalf("LC running = %d, want 2 (partition full)", n.RunningCount())
	}
	// BE partition still takes BE work even though LC is queued.
	e.DispatchLocal(req(e, 100, 6, 0), 1)
	if n.RunningCount() != 3 {
		t.Fatalf("BE not admitted to its partition: %d", n.RunningCount())
	}
	// BE partition = 2000m: second training job (1000m) fits, third not.
	e.DispatchLocal(req(e, 101, 6, 0), 1)
	e.DispatchLocal(req(e, 102, 6, 0), 1)
	if n.RunningCount() != 4 {
		t.Fatalf("running = %d, want 4", n.RunningCount())
	}
}

func TestNewStaticPartitionFromTrace(t *testing.T) {
	cat := trace.DefaultCatalog()
	// All-LC trace -> capped at 0.9; all-BE -> floored at 0.1.
	lcReqs := []trace.Request{{Type: 0, Class: trace.LC}, {Type: 1, Class: trace.LC}}
	if p := NewStaticPartition(cat, lcReqs); p.LCFraction != 0.9 {
		t.Fatalf("all-LC fraction = %v", p.LCFraction)
	}
	beReqs := []trace.Request{{Type: 6, Class: trace.BE}}
	if p := NewStaticPartition(cat, beReqs); p.LCFraction != 0.1 {
		t.Fatalf("all-BE fraction = %v", p.LCFraction)
	}
	// Enough LC work to land between the clamps.
	var mixed []trace.Request
	for i := 0; i < 10; i++ {
		mixed = append(mixed, trace.Request{Type: 3, Class: trace.LC})
	}
	mixed = append(mixed, beReqs...)
	p := NewStaticPartition(cat, mixed)
	if p.LCFraction <= 0.1 || p.LCFraction >= 0.9 {
		t.Fatalf("mixed fraction = %v", p.LCFraction)
	}
	if q := NewStaticPartition(cat, nil); q.LCFraction != 0.5 {
		t.Fatalf("empty trace fraction = %v", q.LCFraction)
	}
}

func TestBoosterExpandsBEIntoIdle(t *testing.T) {
	pol := NewRegulations()
	s, e := env(pol, nil)
	n := e.Node(1)
	e.DispatchLocal(req(e, 1, 6, 0), 1) // 1000m of 4000m
	b := NewBooster(e)
	b.Start(s)
	s.RunFor(250 * time.Millisecond)
	// After one boost tick the BE should hold ~90% of the node's CPU.
	if n.Used().MilliCPU < 3000 {
		t.Fatalf("BE not boosted: used = %v", n.Used())
	}
	// And the reserve headroom is respected.
	if n.Free().MilliCPU < 400-10 {
		t.Fatalf("reserve not kept: free = %v", n.Free())
	}
}

func TestBoostedBEYieldsToLC(t *testing.T) {
	pol := NewRegulations()
	s, e := env(pol, nil)
	n := e.Node(1)
	e.DispatchLocal(req(e, 1, 6, 0), 1)
	boost := NewBooster(e).Start(s)
	s.RunFor(250 * time.Millisecond)
	used := n.Used().MilliCPU
	if used < 3000 {
		t.Fatalf("setup: boost failed (used %d)", used)
	}
	// LC arrives needing 1000m; compression must free it instantly.
	e.DispatchLocal(req(e, 2, 3, s.Now()), 1)
	if n.RunningCount() != 2 {
		t.Fatal("LC not admitted after boost")
	}
	boost.Cancel()
	s.Run()
	if e.Completed != 2 {
		t.Fatalf("completed = %d", e.Completed)
	}
}

func TestDVPAResizeFastAndNonDisruptive(t *testing.T) {
	h := cgroup.NewHierarchy(res.V(4000, 8192, 0))
	pod, err := h.CreatePod(cgroup.Burstable, "pod67f7df", cgroup.FromVector(res.V(1000, 1024, 0)))
	if err != nil {
		t.Fatal(err)
	}
	c, err := h.CreateContainer(pod, "cc13fc77c", cgroup.FromVector(res.V(1000, 1024, 0)))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDVPA()
	lat, err := d.Resize(h, pod, c, res.V(2000, 2048, 0))
	if err != nil {
		t.Fatal(err)
	}
	if lat != 23*time.Millisecond {
		t.Fatalf("latency = %v", lat)
	}
	if d.Ops != 1 {
		t.Fatalf("ops = %d", d.Ops)
	}
	if c.Limits().CPUQuota != 2000 {
		t.Fatalf("container limit = %+v", c.Limits())
	}
	// ~100x faster than delete-and-rebuild (2.3s+).
	if lat*100 > 4*time.Second {
		t.Fatal("D-VPA not ~100x faster than rebuild")
	}
	// Failure path: resize beyond node capacity.
	if _, err := d.Resize(h, pod, c, res.V(99999, 1024, 0)); err == nil {
		t.Fatal("oversized resize succeeded")
	}
}

func TestReAssurerIncreasesAllocationOnPoorQoS(t *testing.T) {
	pol := NewRegulations()
	s, e := env(pol, nil)
	ra := NewReAssurer(e)
	n := e.Node(1)
	st := trace.DefaultCatalog().Type(1) // 200ms target
	// Feed outcomes with latency way above target (poor: slack < alpha).
	for i := 0; i < 20; i++ {
		ra.Observe(engine.Outcome{
			Req:        &engine.Request{ID: int64(i), Type: 1, Class: trace.LC, Target: 1},
			Completed:  true,
			Latency:    st.QoSTarget * 2,
			FinishedAt: s.Now(),
		})
	}
	before := n.EffectiveDemand(1)
	ra.Tick()
	after := n.EffectiveDemand(1)
	if after.MilliCPU <= before.MilliCPU {
		t.Fatalf("allocation not increased: %v -> %v", before, after)
	}
	if ra.Adjustments == 0 {
		t.Fatal("no adjustment recorded")
	}
}

func TestReAssurerDecreasesAllocationOnExcellentQoS(t *testing.T) {
	pol := NewRegulations()
	s, e := env(pol, nil)
	ra := NewReAssurer(e)
	n := e.Node(1)
	st := trace.DefaultCatalog().Type(1)
	// Start from an elevated override.
	n.AllocOverride[1] = st.MinDemand.ScaleFloat(2)
	for i := 0; i < 20; i++ {
		ra.Observe(engine.Outcome{
			Req:        &engine.Request{ID: int64(i), Type: 1, Class: trace.LC, Target: 1},
			Completed:  true,
			Latency:    st.QoSTarget / 10, // slack 0.9 > beta
			FinishedAt: s.Now(),
		})
	}
	before := n.EffectiveDemand(1)
	ra.Tick()
	after := n.EffectiveDemand(1)
	if after.MilliCPU >= before.MilliCPU {
		t.Fatalf("allocation not decreased: %v -> %v", before, after)
	}
	// Never below the catalog minimum.
	for i := 0; i < 50; i++ {
		ra.Tick()
	}
	if n.EffectiveDemand(1).MilliCPU < st.MinDemand.MilliCPU {
		t.Fatal("override fell below minimum demand")
	}
}

func TestReAssurerStableBandNoChange(t *testing.T) {
	pol := NewRegulations()
	s, e := env(pol, nil)
	ra := NewReAssurer(e)
	st := trace.DefaultCatalog().Type(1)
	// slack = 1 - 0.7 = 0.3, between alpha 0.1 and beta 0.5.
	for i := 0; i < 20; i++ {
		ra.Observe(engine.Outcome{
			Req:        &engine.Request{ID: int64(i), Type: 1, Class: trace.LC, Target: 1},
			Completed:  true,
			Latency:    time.Duration(float64(st.QoSTarget) * 0.7),
			FinishedAt: s.Now(),
		})
	}
	ra.Tick()
	if ra.Adjustments != 0 {
		t.Fatalf("stable band adjusted %d times", ra.Adjustments)
	}
}

func TestReAssurerCapsAtMaxFactor(t *testing.T) {
	pol := NewRegulations()
	s, e := env(pol, nil)
	ra := NewReAssurer(e)
	n := e.Node(1)
	st := trace.DefaultCatalog().Type(1)
	for round := 0; round < 100; round++ {
		ra.Observe(engine.Outcome{
			Req:        &engine.Request{ID: int64(round), Type: 1, Class: trace.LC, Target: 1},
			Completed:  true,
			Latency:    st.QoSTarget * 3,
			FinishedAt: s.Now(),
		})
		ra.Tick()
	}
	max := st.MinDemand.ScaleFloat(ra.MaxFactor)
	if got := n.EffectiveDemand(1); got.MilliCPU > max.MilliCPU {
		t.Fatalf("override %v exceeds cap %v", got, max)
	}
}

func TestReAssurerIgnoresBEAndUntargeted(t *testing.T) {
	pol := NewRegulations()
	s, e := env(pol, nil)
	ra := NewReAssurer(e)
	ra.Observe(engine.Outcome{Req: &engine.Request{ID: 1, Type: 6, Class: trace.BE, Target: 1}, FinishedAt: s.Now()})
	ra.Observe(engine.Outcome{Req: &engine.Request{ID: 2, Type: 1, Class: trace.LC, Target: -1}, FinishedAt: s.Now()})
	if _, ok := ra.Slack(1, 6); ok {
		t.Fatal("BE outcome recorded")
	}
	if _, ok := ra.Slack(1, 1); ok {
		t.Fatal("untargeted outcome recorded")
	}
}

func TestSlackScoreFormula(t *testing.T) {
	pol := NewRegulations()
	s, e := env(pol, nil)
	ra := NewReAssurer(e)
	st := trace.DefaultCatalog().Type(1) // 200ms
	ra.Observe(engine.Outcome{
		Req:        &engine.Request{ID: 1, Type: 1, Class: trace.LC, Target: 1},
		Latency:    100 * time.Millisecond,
		FinishedAt: s.Now(),
	})
	slack, ok := ra.Slack(1, 1)
	if !ok {
		t.Fatal("no slack")
	}
	want := 1 - 100.0/200.0
	if slack != want {
		t.Fatalf("slack = %v, want %v", slack, want)
	}
	_ = st
	// A violation (latency > target) must give negative slack.
	ra.Observe(engine.Outcome{
		Req:        &engine.Request{ID: 2, Type: 1, Class: trace.LC, Target: 1},
		Latency:    400 * time.Millisecond,
		FinishedAt: s.Now(),
	})
	slack, _ = ra.Slack(1, 1)
	if slack >= 0 {
		t.Fatalf("violation slack = %v, want negative", slack)
	}
}

// End-to-end: under a bursty LC load co-located with BE, HRM keeps more
// LC requests satisfied than the static partition while using the same
// resources.
func TestHRMBeatsStaticOnMixedLoad(t *testing.T) {
	run := func(p engine.Policy, boost bool) (qos float64, completedBE int) {
		s := sim.New()
		b := topo.NewBuilder()
		b.AddCluster(31, 121, res.V(8000, 16384, 1000), []res.Vector{res.V(4000, 8192, 500), res.V(4000, 8192, 500)})
		tp := b.Build()
		var lcSat, lcTot, beDone int
		e := engine.New(engine.Config{
			Sim: s, Topo: tp, Catalog: trace.DefaultCatalog(), Policy: p,
			LCAbandonFactor: 1,
			OnOutcome: func(o engine.Outcome) {
				if o.Req.Class == trace.LC {
					lcTot++
					if o.Completed && o.Satisfied {
						lcSat++
					}
				} else if o.Completed {
					beDone++
				}
			},
		})
		if boost {
			NewBooster(e).Start(s)
		}
		reqs := trace.Generate(trace.GenConfig{
			Catalog: trace.DefaultCatalog(), Pattern: trace.P1,
			Duration: 20 * time.Second, LCRatePerSec: 24, BERatePerSec: 10,
			Clusters: []topo.ClusterID{0}, PeriodicCycle: 5 * time.Second, Seed: 42,
		})
		next := 0
		for _, r := range reqs {
			r := r
			s.Schedule(r.Arrival, func() {
				er := e.NewRequest(r)
				// round-robin the two workers
				e.Dispatch(er, tp.Cluster(0).Workers[next%2])
				next++
			})
		}
		// The booster is periodic, so bound the run instead of draining.
		s.RunUntil(60 * time.Second)
		if lcTot == 0 {
			t.Fatal("no LC outcomes")
		}
		return float64(lcSat) / float64(lcTot), beDone
	}
	cat := trace.DefaultCatalog()
	reqs := trace.Generate(trace.GenConfig{Catalog: cat, Pattern: trace.P1, Duration: 20 * time.Second,
		LCRatePerSec: 24, BERatePerSec: 10, Clusters: []topo.ClusterID{0}, PeriodicCycle: 5 * time.Second, Seed: 42})
	hrmQoS, hrmBE := run(NewRegulations(), true)
	natQoS, natBE := run(NewStaticPartition(cat, reqs), false)
	t.Logf("HRM: qos=%.3f be=%d | static: qos=%.3f be=%d", hrmQoS, hrmBE, natQoS, natBE)
	if hrmQoS < natQoS {
		t.Fatalf("HRM QoS %.3f worse than static %.3f", hrmQoS, natQoS)
	}
	if hrmBE < natBE/2 {
		t.Fatalf("HRM starved BE: %d vs %d", hrmBE, natBE)
	}
}
