// Package state implements Tango's state storage (Figure 3 ➋): the
// per-master store that "not only stores the status of nearby
// edge-clouds but also periodically receives metrics, such as resource
// usage, round-trip time, and the QoS, which are pushed by Prometheus
// and the QoS detector". Dispatchers read snapshots from here; between
// syncs the data is stale by up to the sync interval, exactly like a
// Prometheus-scraped deployment.
package state

import (
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/res"
	"repro/internal/sim"
	"repro/internal/topo"
)

// NodeStatus is one snapshot of a worker's condition.
type NodeStatus struct {
	Node      topo.NodeID
	Cluster   topo.ClusterID
	Capacity  res.Vector
	Used      res.Vector
	Free      res.Vector
	QueueLC   int
	QueueBE   int
	Down      bool
	Slack     float64 // worst slack score pushed by the QoS detector
	UpdatedAt time.Duration
}

// Storage holds the most recent snapshot of every worker.
type Storage struct {
	Engine *engine.Engine
	// SyncInterval is the metrics push cadence (100 ms, matching the QoS
	// detector window of §4.3).
	SyncInterval time.Duration
	// SlackFn supplies the QoS detector's slack score per node (optional).
	SlackFn func(topo.NodeID) float64

	sim       *sim.Simulator
	snapshots map[topo.NodeID]NodeStatus
	// Syncs counts refreshes.
	Syncs int64
}

// New creates a storage over the engine with the default 100 ms cadence.
func New(e *engine.Engine) *Storage {
	return &Storage{
		Engine:       e,
		SyncInterval: 100 * time.Millisecond,
		snapshots:    map[topo.NodeID]NodeStatus{},
	}
}

// Start arms the periodic sync and performs one immediately.
func (s *Storage) Start(sm *sim.Simulator) *sim.Event {
	s.sim = sm
	s.Sync()
	return sm.Every(s.SyncInterval, s.Sync)
}

// Sync refreshes every worker snapshot from the live engine state.
func (s *Storage) Sync() {
	now := time.Duration(0)
	if s.sim != nil {
		now = s.sim.Now()
	}
	for _, n := range s.Engine.Nodes() {
		lcq, beq := n.QueueLen()
		st := NodeStatus{
			Node:      n.ID,
			Cluster:   n.Cluster,
			Capacity:  n.Capacity,
			Used:      n.Used(),
			Free:      n.Free(),
			QueueLC:   lcq,
			QueueBE:   beq,
			Down:      n.Down(),
			UpdatedAt: now,
		}
		if s.SlackFn != nil {
			st.Slack = s.SlackFn(n.ID)
		}
		s.snapshots[n.ID] = st
	}
	s.Syncs++
}

// Get returns the latest snapshot for a node.
func (s *Storage) Get(id topo.NodeID) (NodeStatus, bool) {
	st, ok := s.snapshots[id]
	return st, ok
}

// Age returns how stale a node's snapshot is at virtual time now.
func (s *Storage) Age(now time.Duration, id topo.NodeID) time.Duration {
	st, ok := s.snapshots[id]
	if !ok {
		return -1
	}
	return now - st.UpdatedAt
}

// All returns every snapshot sorted by node ID.
func (s *Storage) All() []NodeStatus {
	out := make([]NodeStatus, 0, len(s.snapshots))
	for _, st := range s.snapshots {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// ClusterSummary aggregates the live snapshots of one cluster.
type ClusterSummary struct {
	Cluster    topo.ClusterID
	Workers    int
	DownCount  int
	Free, Used res.Vector
	QueueLC    int
	QueueBE    int
}

// Summarize aggregates snapshots per cluster, sorted by cluster ID.
func (s *Storage) Summarize() []ClusterSummary {
	byCluster := map[topo.ClusterID]*ClusterSummary{}
	for _, st := range s.snapshots {
		cs, ok := byCluster[st.Cluster]
		if !ok {
			cs = &ClusterSummary{Cluster: st.Cluster}
			byCluster[st.Cluster] = cs
		}
		cs.Workers++
		if st.Down {
			cs.DownCount++
			continue
		}
		cs.Free = cs.Free.Add(st.Free)
		cs.Used = cs.Used.Add(st.Used)
		cs.QueueLC += st.QueueLC
		cs.QueueBE += st.QueueBE
	}
	out := make([]ClusterSummary, 0, len(byCluster))
	for _, cs := range byCluster {
		out = append(out, *cs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cluster < out[j].Cluster })
	return out
}
