package state

import (
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/res"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

func env() (*sim.Simulator, *engine.Engine, *topo.Topology) {
	s := sim.New()
	b := topo.NewBuilder()
	w := []res.Vector{res.V(4000, 8192, 500), res.V(4000, 8192, 500)}
	b.AddCluster(30, 120, res.V(8000, 16384, 1000), w)
	b.AddCluster(31, 120, res.V(8000, 16384, 1000), w)
	tp := b.Build()
	e := engine.New(engine.Config{Sim: s, Topo: tp, Catalog: trace.DefaultCatalog(), Policy: engine.GreedyPolicy{}})
	return s, e, tp
}

func TestSyncReflectsEngine(t *testing.T) {
	s, e, tp := env()
	st := New(e)
	ev := st.Start(s)
	defer ev.Cancel()
	w := tp.Cluster(0).Workers[0]
	snap, ok := st.Get(w)
	if !ok {
		t.Fatal("no snapshot after Start")
	}
	if !snap.Used.IsZero() || snap.Free != res.V(4000, 8192, 500) {
		t.Fatalf("fresh snapshot %+v", snap)
	}
	// Occupy the node and sync.
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 1, Type: 6, Class: trace.BE, Cluster: 0}), w)
	s.RunFor(st.SyncInterval + time.Millisecond)
	snap, _ = st.Get(w)
	if snap.Used.MilliCPU != 1000 {
		t.Fatalf("snapshot not refreshed: %+v", snap)
	}
}

func TestStalenessBetweenSyncs(t *testing.T) {
	s, e, tp := env()
	st := New(e)
	ev := st.Start(s)
	defer ev.Cancel()
	w := tp.Cluster(0).Workers[0]
	// Change engine state between syncs: snapshot must NOT see it yet.
	s.RunFor(10 * time.Millisecond)
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 1, Type: 6, Class: trace.BE, Cluster: 0}), w)
	snap, _ := st.Get(w)
	if snap.Used.MilliCPU != 0 {
		t.Fatal("storage observed engine state without a sync (no staleness)")
	}
	if st.Age(s.Now(), w) != 10*time.Millisecond {
		t.Fatalf("age = %v", st.Age(s.Now(), w))
	}
	if st.Age(s.Now(), 9999) != -1 {
		t.Fatal("unknown node should report negative age")
	}
}

func TestDownNodesFlagged(t *testing.T) {
	s, e, tp := env()
	st := New(e)
	ev := st.Start(s)
	defer ev.Cancel()
	w := tp.Cluster(0).Workers[0]
	e.Node(w).Fail()
	st.Sync()
	snap, _ := st.Get(w)
	if !snap.Down {
		t.Fatal("down node not flagged")
	}
	_ = s
}

func TestSlackFnPropagates(t *testing.T) {
	_, e, tp := env()
	st := New(e)
	st.SlackFn = func(id topo.NodeID) float64 { return 0.37 }
	st.Sync()
	snap, _ := st.Get(tp.Cluster(0).Workers[0])
	if snap.Slack != 0.37 {
		t.Fatalf("slack = %v", snap.Slack)
	}
}

func TestAllSortedAndComplete(t *testing.T) {
	_, e, _ := env()
	st := New(e)
	st.Sync()
	all := st.All()
	if len(all) != 4 {
		t.Fatalf("snapshots = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Node < all[i-1].Node {
			t.Fatal("All not sorted")
		}
	}
}

func TestSummarizePerCluster(t *testing.T) {
	_, e, tp := env()
	st := New(e)
	w := tp.Cluster(1).Workers[0]
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 1, Type: 6, Class: trace.BE, Cluster: 1}), w)
	e.Node(tp.Cluster(0).Workers[1]).Fail()
	st.Sync()
	sums := st.Summarize()
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	if sums[0].Cluster != 0 || sums[1].Cluster != 1 {
		t.Fatal("summaries not sorted")
	}
	if sums[0].DownCount != 1 || sums[0].Workers != 2 {
		t.Fatalf("cluster 0 summary %+v", sums[0])
	}
	if sums[1].Used.MilliCPU != 1000 {
		t.Fatalf("cluster 1 summary %+v", sums[1])
	}
	// Down node's resources excluded from Free.
	if sums[0].Free.MilliCPU != 4000 {
		t.Fatalf("cluster 0 free %v should exclude down node", sums[0].Free)
	}
}

func TestSyncCounter(t *testing.T) {
	s, e, _ := env()
	st := New(e)
	ev := st.Start(s)
	s.RunFor(550 * time.Millisecond)
	ev.Cancel()
	// initial sync + 5 periodic at 100ms
	if st.Syncs != 6 {
		t.Fatalf("syncs = %d, want 6", st.Syncs)
	}
}
