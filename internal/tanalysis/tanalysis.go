// Package tanalysis reads the NDJSON trace stream written by
// obs.WriterSink (events, spans, decision audit records) back into
// typed form and answers the post-hoc questions the tango-trace CLI
// exposes: which requests were slowest and where their time went,
// which scheduling decisions were active during QoS-violation
// episodes, and a Chrome trace_event export for Perfetto.
package tanalysis

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// SpanRec is one parsed span line.
type SpanRec struct {
	ID       uint64
	Parent   uint64
	Name     string
	Start    time.Duration
	End      time.Duration
	Tag      string
	Req      int64
	Cluster  int
	Node     int
	Service  int
	Class    string
	Decision int64
	Detail   string
}

// Duration returns End-Start.
func (s *SpanRec) Duration() time.Duration { return s.End - s.Start }

// EventRec is one parsed point-event line.
type EventRec struct {
	Kind    string
	At      time.Duration
	Tag     string
	Req     int64
	Cluster int
	Node    int
	Service int
	Class   string
	Value   float64
	Aux     int64
	Detail  string
}

// DecisionRec is one parsed scheduling-decision audit line.
type DecisionRec struct {
	ID         int64
	At         time.Duration
	Tag        string
	Algo       string
	Phase      string
	Cluster    int
	Service    int
	Batch      int
	Routed     int
	GraphNodes int
	GraphEdges int
	Cands      []obs.Candidate
}

// line is the union shape of one NDJSON line; classification keys:
// "span"+"name" → span, "decision"+"algo" → decision, "kind" → event.
type line struct {
	Span     *uint64 `json:"span"`
	Parent   uint64  `json:"parent"`
	Name     string  `json:"name"`
	StartUS  int64   `json:"start_us"`
	EndUS    int64   `json:"end_us"`
	Kind     string  `json:"kind"`
	AtUS     int64   `json:"at_us"`
	Tag      string  `json:"tag"`
	Req      *int64  `json:"req"`
	Cluster  *int    `json:"cluster"`
	Node     *int    `json:"node"`
	Service  *int    `json:"service"`
	Class    string  `json:"class"`
	Value    float64 `json:"value"`
	Aux      int64   `json:"aux"`
	Detail   string  `json:"detail"`
	Decision *int64  `json:"decision"`

	Algo       string          `json:"algo"`
	Phase      string          `json:"phase"`
	Batch      int             `json:"batch"`
	Routed     int             `json:"routed"`
	GraphNodes int             `json:"graph_nodes"`
	GraphEdges int             `json:"graph_edges"`
	Cands      []obs.Candidate `json:"cands"`
}

func opt[T any](p *T, sentinel T) T {
	if p == nil {
		return sentinel
	}
	return *p
}

// Trace holds one parsed NDJSON stream.
type Trace struct {
	Spans     []SpanRec
	Events    []EventRec
	Decisions []DecisionRec
	// Skipped counts lines that were not valid JSON objects.
	Skipped int
	// TruncatedTail reports that the stream ended mid-line: the final
	// line had no terminating newline and did not parse (a crashed or
	// still-writing producer). The partial line is discarded, not
	// counted in Skipped.
	TruncatedTail bool
}

// Empty reports whether the stream contained no recognizable trace
// records at all (distinct from a valid trace with zero spans).
func (t *Trace) Empty() bool {
	return len(t.Spans) == 0 && len(t.Events) == 0 && len(t.Decisions) == 0
}

// Load parses an NDJSON stream. Unknown-but-valid JSON lines are
// counted in Skipped rather than failing the load, so traces survive
// partial writes and foreign lines.
func Load(r io.Reader) (*Trace, error) {
	t := &Trace{}
	br := bufio.NewReaderSize(r, 1<<20)
	ln := 0
	for {
		raw, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return nil, fmt.Errorf("tanalysis: read line %d: %w", ln+1, rerr)
		}
		atEOF := rerr == io.EOF
		terminated := len(raw) > 0 && raw[len(raw)-1] == '\n'
		raw = bytes.TrimRight(raw, "\n")
		if len(raw) == 0 {
			if atEOF {
				break
			}
			continue
		}
		ln++
		var l line
		if err := json.Unmarshal(raw, &l); err != nil {
			if atEOF && !terminated {
				// A partial trailing line: the producer was cut off (or is
				// still writing). Flag it instead of miscounting it as a
				// foreign line.
				t.TruncatedTail = true
			} else {
				t.Skipped++
			}
			if atEOF {
				break
			}
			continue
		}
		t.classify(l)
		if atEOF {
			break
		}
	}
	return t, nil
}

// classify appends one parsed union line to its record slice (or
// counts it skipped when it matches no known shape).
func (t *Trace) classify(l line) {
	us := func(v int64) time.Duration { return time.Duration(v) * time.Microsecond }
	switch {
	case l.Span != nil && l.Name != "":
		t.Spans = append(t.Spans, SpanRec{
			ID: *l.Span, Parent: l.Parent, Name: l.Name,
			Start: us(l.StartUS), End: us(l.EndUS), Tag: l.Tag,
			Req:     opt(l.Req, -1),
			Cluster: opt(l.Cluster, -1), Node: opt(l.Node, -1),
			Service: opt(l.Service, -1), Class: l.Class,
			Decision: opt(l.Decision, -1), Detail: l.Detail,
		})
	case l.Decision != nil && l.Algo != "":
		t.Decisions = append(t.Decisions, DecisionRec{
			ID: *l.Decision, At: us(l.AtUS), Tag: l.Tag,
			Algo: l.Algo, Phase: l.Phase,
			Cluster: opt(l.Cluster, -1), Service: opt(l.Service, -1),
			Batch: l.Batch, Routed: l.Routed,
			GraphNodes: l.GraphNodes, GraphEdges: l.GraphEdges,
			Cands: l.Cands,
		})
	case l.Kind != "":
		t.Events = append(t.Events, EventRec{
			Kind: l.Kind, At: us(l.AtUS), Tag: l.Tag,
			Req:     opt(l.Req, -1),
			Cluster: opt(l.Cluster, -1), Node: opt(l.Node, -1),
			Service: opt(l.Service, -1), Class: l.Class,
			Value: l.Value, Aux: l.Aux, Detail: l.Detail,
		})
	default:
		t.Skipped++
	}
}

// RequestTrace is one request's span tree: the root "request" span and
// its children in start order.
type RequestTrace struct {
	Root     SpanRec
	Children []SpanRec
}

// ChildSum returns the summed child durations — by the engine's tiling
// contract this equals the root duration for completed requests.
func (rt *RequestTrace) ChildSum() time.Duration {
	var sum time.Duration
	for i := range rt.Children {
		sum += rt.Children[i].Duration()
	}
	return sum
}

// Requests groups spans into per-request trees, ordered by root span ID.
// Spans are matched by (tag, parent ID): span IDs restart per tracer, so
// when several runs share one trace file (tango-bench), the tag keeps
// their trees apart.
func (t *Trace) Requests() []RequestTrace {
	type key struct {
		tag string
		id  uint64
	}
	byParent := map[key][]SpanRec{}
	var roots []SpanRec
	for _, s := range t.Spans {
		if s.Name == obs.SpanRequest {
			roots = append(roots, s)
		} else if s.Parent != 0 {
			k := key{s.Tag, s.Parent}
			byParent[k] = append(byParent[k], s)
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		if roots[i].Tag != roots[j].Tag {
			return roots[i].Tag < roots[j].Tag
		}
		return roots[i].ID < roots[j].ID
	})
	out := make([]RequestTrace, len(roots))
	for i, r := range roots {
		kids := byParent[key{r.Tag, r.ID}]
		sort.Slice(kids, func(a, b int) bool {
			if kids[a].Start != kids[b].Start {
				return kids[a].Start < kids[b].Start
			}
			return kids[a].ID < kids[b].ID
		})
		out[i] = RequestTrace{Root: r, Children: kids}
	}
	return out
}

// TopK returns the k slowest requests (by root span duration), slowest
// first. k <= 0 or beyond the request count returns all of them.
func (t *Trace) TopK(k int) []RequestTrace {
	rts := t.Requests()
	sort.SliceStable(rts, func(i, j int) bool {
		return rts[i].Root.Duration() > rts[j].Root.Duration()
	})
	if k > 0 && k < len(rts) {
		rts = rts[:k]
	}
	return rts
}

// ServiceEpisodes is one service's recomputed violation episodes.
type ServiceEpisodes struct {
	Service  int
	Class    string
	Episodes []obs.Episode
}

// Episodes replays the trace's LC request outcomes and decision records
// through the same obs.SLOAccountant the live system runs, so the
// offline attribution matches the run report. cfg zero value = the
// accountant's defaults.
func (t *Trace) Episodes(cfg obs.SLOConfig) []ServiceEpisodes {
	acc := obs.NewSLOAccountant(cfg)
	// Merge outcomes (request root spans) and decisions into one
	// time-ordered feed: the accountant requires nondecreasing times.
	type feedItem struct {
		at       time.Duration
		decision *DecisionRec
		span     *SpanRec
	}
	var feed []feedItem
	for i := range t.Spans {
		s := &t.Spans[i]
		if s.Name == obs.SpanRequest && s.Class == "LC" {
			feed = append(feed, feedItem{at: s.End, span: s})
		}
	}
	for i := range t.Decisions {
		d := &t.Decisions[i]
		feed = append(feed, feedItem{at: d.At, decision: d})
	}
	sort.SliceStable(feed, func(i, j int) bool { return feed[i].at < feed[j].at })
	for _, f := range feed {
		if f.decision != nil {
			acc.NoteDecision(f.decision.ID, f.at)
			continue
		}
		s := f.span
		completed := s.Detail != "abandoned" && s.Detail != "displaced"
		satisfied := s.Detail == ""
		latMs := float64(s.Duration()) / float64(time.Millisecond)
		acc.Observe(s.Service, fmt.Sprintf("svc%d", s.Service), s.Class,
			s.End, latMs, completed, satisfied)
	}
	acc.Finalize()
	var out []ServiceEpisodes
	for _, s := range acc.Services() {
		if len(s.Episodes) == 0 {
			continue
		}
		out = append(out, ServiceEpisodes{Service: s.Service, Class: s.Class, Episodes: s.Episodes})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Service < out[j].Service })
	return out
}

// Tags returns the distinct run tags present in the trace, sorted.
func (t *Trace) Tags() []string {
	set := map[string]bool{}
	for i := range t.Spans {
		set[t.Spans[i].Tag] = true
	}
	for i := range t.Events {
		set[t.Events[i].Tag] = true
	}
	for i := range t.Decisions {
		set[t.Decisions[i].Tag] = true
	}
	tags := make([]string, 0, len(set))
	for tag := range set {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	return tags
}

// FilterTag returns a new Trace holding only the lines stamped with the
// given run tag. Span and decision IDs are only unique within one run,
// so analyses of multi-run traces should filter first.
func (t *Trace) FilterTag(tag string) *Trace {
	out := &Trace{Skipped: t.Skipped}
	for _, s := range t.Spans {
		if s.Tag == tag {
			out.Spans = append(out.Spans, s)
		}
	}
	for _, e := range t.Events {
		if e.Tag == tag {
			out.Events = append(out.Events, e)
		}
	}
	for _, d := range t.Decisions {
		if d.Tag == tag {
			out.Decisions = append(out.Decisions, d)
		}
	}
	return out
}

// DecisionByID returns the audit record with the given ID, or nil.
func (t *Trace) DecisionByID(id int64) *DecisionRec {
	for i := range t.Decisions {
		if t.Decisions[i].ID == id {
			return &t.Decisions[i]
		}
	}
	return nil
}

// chromeEvent is one Chrome trace_event object. ts/dur are in
// microseconds per the trace-event format spec.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome renders the trace as Chrome trace_event JSON
// ({"traceEvents": [...]}), loadable in Perfetto or about://tracing.
// Spans become complete ("X") events and point events become instants
// ("i"); pid is the cluster and tid the worker node (requests without a
// node — e.g. still in the master queue — land on tid 0).
func (t *Trace) WriteChrome(w io.Writer) error {
	evs := make([]chromeEvent, 0, len(t.Spans)+len(t.Events))
	pid := func(cluster int) int64 {
		if cluster < 0 {
			return 0
		}
		return int64(cluster)
	}
	tid := func(node int) int64 {
		if node < 0 {
			return 0
		}
		return int64(node)
	}
	for _, s := range t.Spans {
		args := map[string]any{"span": s.ID}
		if s.Req >= 0 {
			args["req"] = s.Req
		}
		if s.Decision >= 0 {
			args["decision"] = s.Decision
		}
		if s.Class != "" {
			args["class"] = s.Class
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		name := s.Name
		if s.Service >= 0 {
			name = fmt.Sprintf("%s svc%d", s.Name, s.Service)
		}
		evs = append(evs, chromeEvent{
			Name: name, Ph: "X",
			TS: int64(s.Start / time.Microsecond), Dur: int64(s.Duration() / time.Microsecond),
			PID: pid(s.Cluster), TID: tid(s.Node), Args: args,
		})
	}
	for _, e := range t.Events {
		args := map[string]any{}
		if e.Req >= 0 {
			args["req"] = e.Req
		}
		if e.Value != 0 {
			args["value"] = e.Value
		}
		evs = append(evs, chromeEvent{
			Name: e.Kind, Ph: "i", S: "t",
			TS:  int64(e.At / time.Microsecond),
			PID: pid(e.Cluster), TID: tid(e.Node), Args: args,
		})
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{evs}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// BreakdownLine formats one request's child-span breakdown, e.g.
// "sched 2.1ms | transit 0.4ms | queue 0ms | exec 48ms | return 0.4ms".
func (rt *RequestTrace) BreakdownLine() string {
	parts := make([]string, 0, len(rt.Children))
	for i := range rt.Children {
		c := &rt.Children[i]
		parts = append(parts, fmt.Sprintf("%s %.3gms", c.Name,
			float64(c.Duration())/float64(time.Millisecond)))
	}
	return strings.Join(parts, " | ")
}
