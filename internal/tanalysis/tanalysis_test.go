package tanalysis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func clockAt(at time.Duration) func() time.Duration {
	return func() time.Duration { return at }
}

// buildTrace writes a small but complete NDJSON stream through the real
// WriterSink: two requests with full span trees (one satisfied, one
// violated), a decision, and a few point events.
func buildTrace(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewWriterSink(&buf)
	tr := obs.NewTracer(clockAt(5*time.Millisecond), sink)

	d := obs.Decision{
		Algo: "DSS-LC", Phase: obs.PhaseImmediate, Cluster: 0, Svc: 2,
		Batch: 2, Routed: 2, GraphNodes: 5, GraphEdges: 5,
		Candidates: []obs.Candidate{
			{Node: 3, Capacity: 4, CostUS: 150, LinkCap: 10, Flow: 2},
			{Node: 4, Capacity: 0, CostUS: 900, LinkCap: 10, Reject: obs.RejectNoCapacity},
		},
	}
	tr.EmitDecision(&d)

	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	emitReq := func(req int64, base int, detail string) {
		root := tr.NewSpanID()
		tr.EmitSpan(obs.Sp(obs.SpanSched, ms(base), ms(base+2)).Child(root).Req(req).Clu(0).Node(3).Service(2).Cls("LC").Dec(d.ID))
		tr.EmitSpan(obs.Sp(obs.SpanTransit, ms(base+2), ms(base+3)).Child(root).Req(req).Clu(0).Node(3).Service(2).Cls("LC"))
		tr.EmitSpan(obs.Sp(obs.SpanQueue, ms(base+3), ms(base+4)).Child(root).Req(req).Clu(0).Node(3).Service(2).Cls("LC"))
		tr.EmitSpan(obs.Sp(obs.SpanExec, ms(base+4), ms(base+40)).Child(root).Req(req).Clu(0).Node(3).Service(2).Cls("LC"))
		tr.EmitSpan(obs.Sp(obs.SpanReturn, ms(base+40), ms(base+41)).Child(root).Req(req).Clu(0).Node(3).Service(2).Cls("LC"))
		tr.EmitSpan(obs.Sp(obs.SpanRequest, ms(base), ms(base+41)).WithID(root).Req(req).Clu(0).Node(3).Service(2).Cls("LC").Dec(d.ID).Note(detail))
	}
	emitReq(100, 0, "")
	emitReq(101, 2, "violated")
	tr.Emit(obs.Ev(obs.EvNodeFail).Node(3).Clu(0).Au(2))
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestLoadClassifiesLines(t *testing.T) {
	tr, err := Load(buildTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans) != 12 || len(tr.Decisions) != 1 || len(tr.Events) != 1 || tr.Skipped != 0 {
		t.Fatalf("spans=%d decisions=%d events=%d skipped=%d",
			len(tr.Spans), len(tr.Decisions), len(tr.Events), tr.Skipped)
	}
	d := tr.Decisions[0]
	if d.Algo != "DSS-LC" || d.Phase != obs.PhaseImmediate || len(d.Cands) != 2 {
		t.Fatalf("decision mangled: %+v", d)
	}
	if d.Cands[1].Reject != obs.RejectNoCapacity {
		t.Fatalf("candidate reject lost: %+v", d.Cands[1])
	}
	if tr.Events[0].Kind != "node-fail" {
		t.Fatalf("event kind: %q", tr.Events[0].Kind)
	}
}

func TestRequestsAndTopK(t *testing.T) {
	tr, err := Load(buildTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	rts := tr.Requests()
	if len(rts) != 2 {
		t.Fatalf("requests: %d", len(rts))
	}
	for _, rt := range rts {
		if len(rt.Children) != 5 {
			t.Fatalf("req %d has %d children", rt.Root.Req, len(rt.Children))
		}
		if rt.ChildSum() != rt.Root.Duration() {
			t.Fatalf("req %d: child sum %v != root %v", rt.Root.Req, rt.ChildSum(), rt.Root.Duration())
		}
		if rt.Root.Decision != tr.Decisions[0].ID {
			t.Fatalf("req %d not linked to decision", rt.Root.Req)
		}
	}
	top := tr.TopK(1)
	if len(top) != 1 || top[0].Root.Duration() != 41*time.Millisecond {
		t.Fatalf("topk wrong: %+v", top)
	}
	if !strings.Contains(top[0].BreakdownLine(), "exec 36ms") {
		t.Fatalf("breakdown: %s", top[0].BreakdownLine())
	}
}

func TestEpisodesAttributeDecisions(t *testing.T) {
	tr, err := Load(buildTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	eps := tr.Episodes(obs.SLOConfig{})
	if len(eps) != 1 {
		t.Fatalf("expected one service with episodes, got %d", len(eps))
	}
	se := eps[0]
	if se.Service != 2 || len(se.Episodes) != 1 {
		t.Fatalf("episodes: %+v", se)
	}
	ep := se.Episodes[0]
	if ep.Violations != 1 || ep.DecisionTotal != 1 || len(ep.Decisions) != 1 {
		t.Fatalf("episode: %+v", ep)
	}
	if ep.Decisions[0] != tr.Decisions[0].ID {
		t.Fatalf("episode attributes decision %d, want %d", ep.Decisions[0], tr.Decisions[0].ID)
	}
	if tr.DecisionByID(ep.Decisions[0]) == nil {
		t.Fatal("DecisionByID lookup failed")
	}
}

// TestChromeRoundTrip pins the acceptance criterion: the Chrome export
// is valid trace_event JSON with the required ph/ts/pid/tid fields on
// every entry.
func TestChromeRoundTrip(t *testing.T) {
	tr, err := Load(buildTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := tr.WriteChrome(&out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(tr.Spans)+len(tr.Events) {
		t.Fatalf("trace events: %d, want %d", len(doc.TraceEvents), len(tr.Spans)+len(tr.Events))
	}
	var complete, instant int
	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"ph", "ts", "pid", "tid", "name"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, ev)
			}
		}
		switch ev["ph"] {
		case "X":
			complete++
			if _, ok := ev["dur"]; !ok && ev["name"] != "queue svc2" {
				// zero-duration spans legitimately omit dur
				t.Logf("span without dur: %v", ev)
			}
		case "i":
			instant++
		default:
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
	}
	if complete != len(tr.Spans) || instant != len(tr.Events) {
		t.Fatalf("phases: X=%d i=%d", complete, instant)
	}
	// Timestamps are sorted (Perfetto requirement for unsorted-intolerant
	// consumers is lenient, but we emit sorted anyway).
	var last float64 = -1
	for _, ev := range doc.TraceEvents {
		ts := ev["ts"].(float64)
		if ts < last {
			t.Fatal("trace events not time-sorted")
		}
		last = ts
	}
}

func TestLoadSkipsForeignLines(t *testing.T) {
	in := strings.NewReader(`{"foo": 1}
not json at all
{"span":1,"name":"request","start_us":0,"end_us":1000,"req":5,"class":"LC"}
`)
	tr, err := Load(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans) != 1 || tr.Skipped != 2 {
		t.Fatalf("spans=%d skipped=%d", len(tr.Spans), tr.Skipped)
	}
}

func TestLoadTruncatedTail(t *testing.T) {
	// A valid line followed by a partial line with no trailing newline:
	// the tail is discarded, flagged, and not counted in Skipped.
	in := strings.NewReader(`{"span":1,"name":"request","start_us":0,"end_us":1000,"req":5,"class":"LC"}
{"span":2,"name":"exec","sta`)
	tr, err := Load(in)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.TruncatedTail {
		t.Fatal("TruncatedTail not set for partial final line")
	}
	if len(tr.Spans) != 1 || tr.Skipped != 0 {
		t.Fatalf("spans=%d skipped=%d, want 1/0", len(tr.Spans), tr.Skipped)
	}
}

func TestLoadCompleteFinalLineWithoutNewline(t *testing.T) {
	// A complete JSON line that merely lacks the trailing newline is a
	// normal record, not a truncation.
	in := strings.NewReader(`{"span":1,"name":"request","start_us":0,"end_us":1000,"req":5,"class":"LC"}`)
	tr, err := Load(in)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TruncatedTail {
		t.Fatal("TruncatedTail set for a parseable final line")
	}
	if len(tr.Spans) != 1 || tr.Skipped != 0 {
		t.Fatalf("spans=%d skipped=%d, want 1/0", len(tr.Spans), tr.Skipped)
	}
}

func TestEmpty(t *testing.T) {
	tr, err := Load(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Empty() {
		t.Fatal("empty stream should report Empty()")
	}
	tr, err = Load(strings.NewReader("{\"foo\":1}\nnot json\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Empty() || tr.Skipped != 2 {
		t.Fatalf("foreign-only stream: empty=%v skipped=%d", tr.Empty(), tr.Skipped)
	}
	full, err := Load(buildTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	if full.Empty() {
		t.Fatal("populated trace should not report Empty()")
	}
}
