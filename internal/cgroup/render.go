package cgroup

import (
	"fmt"
	"strings"
)

// Render returns a human-readable tree of the hierarchy with the
// effective limits at every level — the equivalent of walking
// /sys/fs/cgroup by hand when debugging a D-VPA resize.
func (h *Hierarchy) Render() string {
	var b strings.Builder
	var rec func(g *Group, depth int)
	rec = func(g *Group, depth int) {
		indent := strings.Repeat("  ", depth)
		l := g.Limits()
		cpu, mem := "max", "max"
		if l.CPUQuota > 0 {
			cpu = fmt.Sprintf("%dm", l.CPUQuota)
		}
		if l.MemoryMiB > 0 {
			mem = fmt.Sprintf("%dMi", l.MemoryMiB)
		}
		fmt.Fprintf(&b, "%s%s cpu=%s mem=%s shares=%d writes=%d\n",
			indent, g.Name(), cpu, mem, l.CPUShares, g.Writes())
		for _, name := range g.Children() {
			rec(g.children[name], depth+1)
		}
	}
	rec(h.root, 0)
	return b.String()
}

// Stats summarizes the hierarchy for monitoring.
type Stats struct {
	Groups      int
	Pods        int
	Containers  int
	TotalWrites uint64
}

// Stats walks the tree and counts groups by level.
func (h *Hierarchy) Stats() Stats {
	var s Stats
	h.Walk(func(g *Group) {
		s.Groups++
		s.TotalWrites += g.Writes()
		depth := strings.Count(g.Path(), "/")
		switch depth {
		case 2:
			s.Pods++
		case 3:
			s.Containers++
		}
	})
	return s
}
