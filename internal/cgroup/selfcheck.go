package cgroup

import "fmt"

// SelfCheck validates the whole-tree limit invariant that the §4.2
// sequential-modification rule exists to preserve: every group's
// explicit limit must fit inside its parent's effective limit, and no
// limit may be negative. SetLimits and ResizePodAndContainer enforce
// this at each write; the sweep proves no sequence of writes (including
// the two-step pod/container resizes) left the tree in a state the
// kernel would have rejected. Returns the first violation found.
func (h *Hierarchy) SelfCheck() error {
	var walk func(g *Group) error
	walk = func(g *Group) error {
		if g.limits.CPUQuota < 0 || g.limits.CPUShares < 0 || g.limits.MemoryMiB < 0 {
			return fmt.Errorf("cgroup %s: negative limits %+v", g.Path(), g.limits)
		}
		if p := g.parent; p != nil {
			if pcpu := p.effectiveCPU(); pcpu > 0 && g.limits.CPUQuota > pcpu {
				return fmt.Errorf("cgroup %s: cpu %dm exceeds parent effective %dm",
					g.Path(), g.limits.CPUQuota, pcpu)
			}
			if pmem := p.effectiveMemory(); pmem > 0 && g.limits.MemoryMiB > pmem {
				return fmt.Errorf("cgroup %s: memory %dMi exceeds parent effective %dMi",
					g.Path(), g.limits.MemoryMiB, pmem)
			}
		}
		for _, name := range g.Children() {
			if err := walk(g.children[name]); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(h.root)
}
