package cgroup

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/res"
)

func newH() *Hierarchy { return NewHierarchy(res.V(4000, 8192, 0)) }

func mustPod(t *testing.T, h *Hierarchy, q QoSClass, uid string, l Limits) *Group {
	t.Helper()
	g, err := h.CreatePod(q, uid, l)
	if err != nil {
		t.Fatalf("CreatePod(%s): %v", uid, err)
	}
	return g
}

func mustContainer(t *testing.T, h *Hierarchy, pod *Group, id string, l Limits) *Group {
	t.Helper()
	g, err := h.CreateContainer(pod, id, l)
	if err != nil {
		t.Fatalf("CreateContainer(%s): %v", id, err)
	}
	return g
}

func TestHierarchyLayout(t *testing.T) {
	h := newH()
	if h.Root().Name() != "kubepods" {
		t.Fatalf("root = %q", h.Root().Name())
	}
	want := []string{"besteffort", "burstable", "guaranteed"}
	got := h.Root().Children()
	if len(got) != 3 {
		t.Fatalf("children = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("children = %v, want %v", got, want)
		}
	}
}

func TestQoSClassString(t *testing.T) {
	if Guaranteed.String() != "guaranteed" || Burstable.String() != "burstable" || BestEffort.String() != "besteffort" {
		t.Fatal("QoSClass strings wrong")
	}
}

func TestCreateAndLookupPath(t *testing.T) {
	h := newH()
	pod := mustPod(t, h, Burstable, "pod67f7df", FromVector(res.V(1000, 2048, 0)))
	c := mustContainer(t, h, pod, "cc13fc77c", FromVector(res.V(500, 1024, 0)))
	if c.Path() != "kubepods/burstable/pod67f7df/cc13fc77c" {
		t.Fatalf("path = %q", c.Path())
	}
	got, err := h.Lookup("kubepods/burstable/pod67f7df/cc13fc77c")
	if err != nil || got != c {
		t.Fatalf("Lookup: %v %v", got, err)
	}
	if _, err := h.Lookup("kubepods/burstable/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing lookup err = %v", err)
	}
	if _, err := h.Lookup("wrongroot"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("wrong root err = %v", err)
	}
}

func TestDuplicateCreateFails(t *testing.T) {
	h := newH()
	pod := mustPod(t, h, Burstable, "p", Limits{})
	if _, err := h.CreatePod(Burstable, "p", Limits{}); err == nil {
		t.Fatal("duplicate pod allowed")
	}
	mustContainer(t, h, pod, "c", Limits{})
	if _, err := h.CreateContainer(pod, "c", Limits{}); err == nil {
		t.Fatal("duplicate container allowed")
	}
}

func TestCreateExceedingParentFails(t *testing.T) {
	h := newH() // root 4000m / 8192Mi
	if _, err := h.CreatePod(Burstable, "big", FromVector(res.V(5000, 1024, 0))); !errors.Is(err, ErrOrder) {
		t.Fatalf("over-CPU pod err = %v", err)
	}
	if _, err := h.CreatePod(Burstable, "bigmem", FromVector(res.V(1000, 9000, 0))); !errors.Is(err, ErrOrder) {
		t.Fatalf("over-memory pod err = %v", err)
	}
	pod := mustPod(t, h, Burstable, "p", FromVector(res.V(1000, 2048, 0)))
	if _, err := h.CreateContainer(pod, "c", FromVector(res.V(2000, 1024, 0))); !errors.Is(err, ErrOrder) {
		t.Fatalf("container exceeding pod err = %v", err)
	}
}

func TestNegativeLimitsRejected(t *testing.T) {
	h := newH()
	if _, err := h.CreatePod(Burstable, "p", Limits{CPUQuota: -1}); err == nil {
		t.Fatal("negative limits accepted")
	}
}

func TestZeroMeansInherit(t *testing.T) {
	h := newH()
	pod := mustPod(t, h, BestEffort, "p", Limits{}) // unlimited
	c := mustContainer(t, h, pod, "c", Limits{})
	if c.effectiveCPU() != 4000 {
		t.Fatalf("effective CPU = %d, want inherited 4000", c.effectiveCPU())
	}
	if c.effectiveMemory() != 8192 {
		t.Fatalf("effective memory = %d, want inherited 8192", c.effectiveMemory())
	}
}

func TestSetLimitsWrongOrderExpand(t *testing.T) {
	h := newH()
	pod := mustPod(t, h, Burstable, "p", FromVector(res.V(1000, 2048, 0)))
	c := mustContainer(t, h, pod, "c", FromVector(res.V(1000, 2048, 0)))
	// Expanding the container before the pod must fail (kernel rule).
	if err := h.SetLimits(c, FromVector(res.V(2000, 2048, 0))); !errors.Is(err, ErrOrder) {
		t.Fatalf("expand container first err = %v", err)
	}
	// Correct order: pod first, then container.
	if err := h.SetLimits(pod, FromVector(res.V(2000, 2048, 0))); err != nil {
		t.Fatal(err)
	}
	if err := h.SetLimits(c, FromVector(res.V(2000, 2048, 0))); err != nil {
		t.Fatal(err)
	}
}

func TestSetLimitsWrongOrderShrink(t *testing.T) {
	h := newH()
	pod := mustPod(t, h, Burstable, "p", FromVector(res.V(2000, 4096, 0)))
	c := mustContainer(t, h, pod, "c", FromVector(res.V(2000, 4096, 0)))
	// Shrinking the pod below its container must fail.
	if err := h.SetLimits(pod, FromVector(res.V(1000, 4096, 0))); !errors.Is(err, ErrOrder) {
		t.Fatalf("shrink pod first err = %v", err)
	}
	// Correct order: container first, then pod.
	if err := h.SetLimits(c, FromVector(res.V(1000, 4096, 0))); err != nil {
		t.Fatal(err)
	}
	if err := h.SetLimits(pod, FromVector(res.V(1000, 4096, 0))); err != nil {
		t.Fatal(err)
	}
}

func TestResizePodAndContainerExpand(t *testing.T) {
	h := newH()
	pod := mustPod(t, h, Burstable, "p", FromVector(res.V(1000, 2048, 0)))
	c := mustContainer(t, h, pod, "c", FromVector(res.V(1000, 2048, 0)))
	if err := h.ResizePodAndContainer(pod, c, FromVector(res.V(3000, 4096, 0)), FromVector(res.V(3000, 4096, 0))); err != nil {
		t.Fatal(err)
	}
	if pod.Limits().CPUQuota != 3000 || c.Limits().CPUQuota != 3000 {
		t.Fatalf("limits after expand: pod=%+v c=%+v", pod.Limits(), c.Limits())
	}
}

func TestResizePodAndContainerShrink(t *testing.T) {
	h := newH()
	pod := mustPod(t, h, Burstable, "p", FromVector(res.V(3000, 4096, 0)))
	c := mustContainer(t, h, pod, "c", FromVector(res.V(3000, 4096, 0)))
	if err := h.ResizePodAndContainer(pod, c, FromVector(res.V(500, 1024, 0)), FromVector(res.V(500, 1024, 0))); err != nil {
		t.Fatal(err)
	}
	if pod.Limits().MemoryMiB != 1024 || c.Limits().MemoryMiB != 1024 {
		t.Fatalf("limits after shrink: pod=%+v c=%+v", pod.Limits(), c.Limits())
	}
}

func TestResizeMixedDimensions(t *testing.T) {
	h := newH()
	pod := mustPod(t, h, Burstable, "p", FromVector(res.V(2000, 2048, 0)))
	c := mustContainer(t, h, pod, "c", FromVector(res.V(2000, 2048, 0)))
	// CPU grows while memory shrinks: must still succeed via two passes.
	target := FromVector(res.V(3000, 1024, 0))
	if err := h.ResizePodAndContainer(pod, c, target, target); err != nil {
		t.Fatal(err)
	}
	if c.Limits().CPUQuota != 3000 || c.Limits().MemoryMiB != 1024 {
		t.Fatalf("mixed resize result %+v", c.Limits())
	}
}

func TestResizeRejectsForeignContainer(t *testing.T) {
	h := newH()
	p1 := mustPod(t, h, Burstable, "p1", Limits{})
	p2 := mustPod(t, h, Burstable, "p2", Limits{})
	c2 := mustContainer(t, h, p2, "c", Limits{})
	if err := h.ResizePodAndContainer(p1, c2, Limits{}, Limits{}); err == nil {
		t.Fatal("resize with mismatched pod/container allowed")
	}
}

func TestResizeBeyondRootFails(t *testing.T) {
	h := newH()
	pod := mustPod(t, h, Burstable, "p", FromVector(res.V(1000, 1024, 0)))
	c := mustContainer(t, h, pod, "c", FromVector(res.V(1000, 1024, 0)))
	err := h.ResizePodAndContainer(pod, c, FromVector(res.V(9000, 1024, 0)), FromVector(res.V(9000, 1024, 0)))
	if !errors.Is(err, ErrOrder) {
		t.Fatalf("resize beyond node capacity err = %v", err)
	}
}

func TestRemove(t *testing.T) {
	h := newH()
	pod := mustPod(t, h, Burstable, "p", Limits{})
	if err := h.Remove(pod); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Lookup("kubepods/burstable/p"); !errors.Is(err, ErrNotFound) {
		t.Fatal("pod still present after Remove")
	}
	if err := h.Remove(pod); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove err = %v", err)
	}
	if err := h.Remove(h.Root()); err == nil {
		t.Fatal("removing root allowed")
	}
}

func TestWriteAccounting(t *testing.T) {
	h := newH()
	pod := mustPod(t, h, Burstable, "p", FromVector(res.V(1000, 2048, 0)))
	c := mustContainer(t, h, pod, "c", FromVector(res.V(500, 1024, 0)))
	if h.TotalWrites() != 0 {
		t.Fatalf("initial writes = %d", h.TotalWrites())
	}
	if err := h.SetLimits(c, FromVector(res.V(600, 1024, 0))); err != nil {
		t.Fatal(err)
	}
	if c.Writes() != 1 || h.TotalWrites() != 1 {
		t.Fatalf("writes = %d/%d", c.Writes(), h.TotalWrites())
	}
}

func TestWalkVisitsAll(t *testing.T) {
	h := newH()
	pod := mustPod(t, h, Guaranteed, "p", Limits{})
	mustContainer(t, h, pod, "c1", Limits{})
	mustContainer(t, h, pod, "c2", Limits{})
	var paths []string
	h.Walk(func(g *Group) { paths = append(paths, g.Path()) })
	// root + 3 qos + 1 pod + 2 containers
	if len(paths) != 7 {
		t.Fatalf("walk visited %d groups: %v", len(paths), paths)
	}
}

func TestFromVectorRoundTrip(t *testing.T) {
	v := res.V(1500, 3072, 0)
	l := FromVector(v)
	if l.CPUShares != 1536 {
		t.Fatalf("shares = %d, want 1536", l.CPUShares)
	}
	if l.Vector() != v {
		t.Fatalf("round trip = %v, want %v", l.Vector(), v)
	}
}

// Property: after any sequence of successful ResizePodAndContainer calls,
// the invariant child<=parent holds everywhere, and the final limits equal
// the last requested values.
func TestQuickResizeInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHierarchy(res.V(8000, 16384, 0))
		pod, err := h.CreatePod(Burstable, "p", FromVector(res.V(1000, 1024, 0)))
		if err != nil {
			return false
		}
		c, err := h.CreateContainer(pod, "c", FromVector(res.V(1000, 1024, 0)))
		if err != nil {
			return false
		}
		for i := 0; i < 30; i++ {
			cpu := int64(rng.Intn(8000) + 1)
			mem := int64(rng.Intn(16384) + 1)
			l := FromVector(res.V(cpu, mem, 0))
			if err := h.ResizePodAndContainer(pod, c, l, l); err != nil {
				return false
			}
			if pod.Limits().CPUQuota != cpu || c.Limits().CPUQuota != cpu {
				return false
			}
			// Invariant: container effective limits within pod's.
			if c.effectiveCPU() > pod.effectiveCPU() || c.effectiveMemory() > pod.effectiveMemory() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a direct out-of-order write never corrupts state — on error
// the limits are unchanged.
func TestQuickFailedWriteLeavesStateIntact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHierarchy(res.V(4000, 8192, 0))
		pod, _ := h.CreatePod(Burstable, "p", FromVector(res.V(2000, 4096, 0)))
		c, _ := h.CreateContainer(pod, "c", FromVector(res.V(2000, 4096, 0)))
		before := c.Limits()
		beforePod := pod.Limits()
		// Illegal: container beyond pod.
		bad := FromVector(res.V(int64(2001+rng.Intn(2000)), 4096, 0))
		if err := h.SetLimits(c, bad); err == nil {
			return false
		}
		return c.Limits() == before && pod.Limits() == beforePod
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
