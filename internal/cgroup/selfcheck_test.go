package cgroup

import (
	"strings"
	"testing"

	"repro/internal/res"
)

func TestSelfCheckCleanTreeAndResizes(t *testing.T) {
	h := NewHierarchy(res.V(4000, 8192, 500))
	pod, err := h.CreatePod(Burstable, "pod-1", Limits{CPUQuota: 1000, MemoryMiB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := h.CreateContainer(pod, "c1", Limits{CPUQuota: 800, MemoryMiB: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SelfCheck(); err != nil {
		t.Fatalf("fresh tree: %v", err)
	}
	// Grow then shrink through the order-aware resize; the invariant must
	// hold after each.
	if err := h.ResizePodAndContainer(pod, ctr, Limits{CPUQuota: 2000, MemoryMiB: 2048}, Limits{CPUQuota: 1500, MemoryMiB: 1024}); err != nil {
		t.Fatal(err)
	}
	if err := h.SelfCheck(); err != nil {
		t.Fatalf("after grow: %v", err)
	}
	if err := h.ResizePodAndContainer(pod, ctr, Limits{CPUQuota: 600, MemoryMiB: 512}, Limits{CPUQuota: 500, MemoryMiB: 256}); err != nil {
		t.Fatal(err)
	}
	if err := h.SelfCheck(); err != nil {
		t.Fatalf("after shrink: %v", err)
	}
}

func TestSelfCheckDetectsBrokenTree(t *testing.T) {
	build := func() (*Hierarchy, *Group, *Group) {
		h := NewHierarchy(res.V(4000, 8192, 500))
		pod, _ := h.CreatePod(Burstable, "pod-1", Limits{CPUQuota: 1000, MemoryMiB: 1024})
		ctr, _ := h.CreateContainer(pod, "c1", Limits{CPUQuota: 800, MemoryMiB: 512})
		return h, pod, ctr
	}

	// Container CPU raised past the pod limit behind the API's back (the
	// "wrong modification order" state the kernel would reject).
	h, _, ctr := build()
	ctr.limits.CPUQuota = 3000
	if err := h.SelfCheck(); err == nil || !strings.Contains(err.Error(), "cpu") {
		t.Fatalf("cpu violation not detected: %v", err)
	}

	// Pod memory shrunk below the container's.
	h, pod, _ := build()
	pod.limits.MemoryMiB = 256
	if err := h.SelfCheck(); err == nil || !strings.Contains(err.Error(), "memory") {
		t.Fatalf("memory violation not detected: %v", err)
	}

	// Negative limit.
	h, pod, _ = build()
	pod.limits.CPUQuota = -5
	if err := h.SelfCheck(); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative limit not detected: %v", err)
	}
}
