package cgroup

import (
	"testing"

	"repro/internal/perf"
	"repro/internal/res"
)

// Every limit write — including the up-to-four nested writes of one
// ordered two-level resize — lands in the cgroup/reconcile phase, and
// re-entrant nesting under ResizePodAndContainer never double-counts
// inclusive time.
func TestSetLimitsChargesReconcilePhase(t *testing.T) {
	h := NewHierarchy(res.V(16000, 32768, 0))
	p := perf.New()
	h.SetProfiler(p)

	pod, err := h.CreatePod(Burstable, "pod", FromVector(res.V(4000, 4096, 0)))
	if err != nil {
		t.Fatal(err)
	}
	cont, err := h.CreateContainer(pod, "c0", FromVector(res.V(2000, 2048, 0)))
	if err != nil {
		t.Fatal(err)
	}

	if err := h.SetLimits(cont, FromVector(res.V(1000, 1024, 0))); err != nil {
		t.Fatal(err)
	}
	st := p.Stats(perf.PhaseCgroupReconcile)
	if st.Calls != 1 || st.TotalNs <= 0 {
		t.Fatalf("after one SetLimits: %+v", st)
	}

	before := st.Calls
	if err := h.ResizePodAndContainer(pod, cont,
		FromVector(res.V(6000, 6144, 0)), FromVector(res.V(3000, 3072, 0))); err != nil {
		t.Fatal(err)
	}
	st = p.Stats(perf.PhaseCgroupReconcile)
	if st.Calls <= before {
		t.Fatalf("resize recorded no reconcile calls: %+v", st)
	}
	if p.OpenDepth() != 0 {
		t.Fatalf("reconcile frames left open: %d", p.OpenDepth())
	}
	if st.SelfNs > st.TotalNs {
		t.Fatalf("self %dns exceeds total %dns (re-entrant double count)", st.SelfNs, st.TotalNs)
	}
}
