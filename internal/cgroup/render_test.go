package cgroup

import (
	"strings"
	"testing"

	"repro/internal/res"
)

func TestRenderTree(t *testing.T) {
	h := NewHierarchy(res.V(4000, 8192, 0))
	pod, err := h.CreatePod(Burstable, "pod1", FromVector(res.V(1000, 2048, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.CreateContainer(pod, "c0", FromVector(res.V(500, 1024, 0))); err != nil {
		t.Fatal(err)
	}
	out := h.Render()
	for _, want := range []string{"kubepods", "burstable", "pod1", "c0", "cpu=500m", "mem=1024Mi", "cpu=4000m"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Unlimited groups render as max.
	if !strings.Contains(out, "cpu=max") {
		t.Fatalf("qos groups should render as max:\n%s", out)
	}
	// Indentation shows depth: container deeper than pod.
	var podIndent, cIndent int
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimLeft(line, " ")
		if strings.HasPrefix(trimmed, "pod1") {
			podIndent = len(line) - len(trimmed)
		}
		if strings.HasPrefix(trimmed, "c0") {
			cIndent = len(line) - len(trimmed)
		}
	}
	if cIndent <= podIndent {
		t.Fatalf("container not nested under pod (%d vs %d)", cIndent, podIndent)
	}
}

func TestStatsCounts(t *testing.T) {
	h := NewHierarchy(res.V(8000, 16384, 0))
	p1, _ := h.CreatePod(Burstable, "p1", Limits{})
	p2, _ := h.CreatePod(Guaranteed, "p2", Limits{})
	_, _ = h.CreateContainer(p1, "a", Limits{})
	_, _ = h.CreateContainer(p1, "b", Limits{})
	_, _ = h.CreateContainer(p2, "c", Limits{})
	s := h.Stats()
	if s.Pods != 2 {
		t.Fatalf("pods = %d", s.Pods)
	}
	if s.Containers != 3 {
		t.Fatalf("containers = %d", s.Containers)
	}
	// root + 3 qos + 2 pods + 3 containers
	if s.Groups != 9 {
		t.Fatalf("groups = %d", s.Groups)
	}
	if s.TotalWrites != 0 {
		t.Fatalf("writes = %d", s.TotalWrites)
	}
	if err := h.SetLimits(p1, FromVector(res.V(1000, 1024, 0))); err != nil {
		t.Fatal(err)
	}
	if h.Stats().TotalWrites != 1 {
		t.Fatal("write not counted")
	}
}
