// Package cgroup models the Linux control-group hierarchy that Kubernetes
// builds under /sys/fs/cgroup (Figure 5 of the paper): a kubepods root,
// QoS-level groups (guaranteed / burstable / besteffort), pod-level groups
// and container-level groups.
//
// Tango's D-VPA component performs vertical scaling by writing cpu.shares,
// cpu.cfs_quota_us and memory limits directly into this hierarchy instead
// of deleting and re-creating the pod. The kernel requires a child's limit
// to never exceed its parent's, so resizes must be ordered: grow the pod
// group before the container group, shrink the container group before the
// pod group. This package enforces exactly that invariant, which is the
// correctness core of D-VPA (§4.2).
package cgroup

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/res"
)

// QoSClass mirrors the Kubernetes QoS levels that form the second layer
// of the kubepods hierarchy.
type QoSClass int

const (
	Guaranteed QoSClass = iota
	Burstable
	BestEffort
)

func (q QoSClass) String() string {
	switch q {
	case Guaranteed:
		return "guaranteed"
	case Burstable:
		return "burstable"
	case BestEffort:
		return "besteffort"
	default:
		return fmt.Sprintf("QoSClass(%d)", int(q))
	}
}

// ErrNotFound is returned when a path does not name an existing group.
var ErrNotFound = errors.New("cgroup: not found")

// ErrOrder is returned when a resize would violate the parent/child limit
// invariant — the caller applied the expand/shrink steps in the wrong
// order, exactly the failure mode §4.2 warns about.
var ErrOrder = errors.New("cgroup: resize violates parent limit (wrong modification order)")

// Limits are the controls D-VPA writes. CPUQuota is in millicores (the
// model's equivalent of cfs_quota_us/cfs_period_us), CPUShares is the
// relative weight, MemoryMiB the hard memory limit.
type Limits struct {
	CPUQuota  int64 // millicores; 0 means unlimited (inherit)
	CPUShares int64 // relative weight; informational for schedulers
	MemoryMiB int64 // MiB; 0 means unlimited (inherit)
}

// FromVector derives Limits from a resource vector (shares scale with CPU,
// 1024 shares per core as in the kernel default).
func FromVector(v res.Vector) Limits {
	return Limits{CPUQuota: v.MilliCPU, CPUShares: v.MilliCPU * 1024 / 1000, MemoryMiB: v.MemoryMiB}
}

// Vector converts Limits back to a resource vector (bandwidth is not a
// cgroup-controlled resource; it is managed by the traffic dispatchers).
func (l Limits) Vector() res.Vector {
	return res.V(l.CPUQuota, l.MemoryMiB, 0)
}

// Group is one node in the cgroup tree.
type Group struct {
	name     string
	parent   *Group
	children map[string]*Group
	limits   Limits
	writes   uint64 // number of limit modifications, for accounting
}

// Name returns the group's path component.
func (g *Group) Name() string { return g.name }

// Path returns the slash-separated path from the hierarchy root.
func (g *Group) Path() string {
	if g.parent == nil {
		return g.name
	}
	return g.parent.Path() + "/" + g.name
}

// Limits returns the group's current limits.
func (g *Group) Limits() Limits { return g.limits }

// Writes returns how many times the group's limits have been modified.
func (g *Group) Writes() uint64 { return g.writes }

// Children returns the child group names in sorted order.
func (g *Group) Children() []string {
	names := make([]string, 0, len(g.children))
	for n := range g.children {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// effectiveCPU returns the group's CPU limit, inheriting from ancestors
// when unlimited (0).
func (g *Group) effectiveCPU() int64 {
	for n := g; n != nil; n = n.parent {
		if n.limits.CPUQuota > 0 {
			return n.limits.CPUQuota
		}
	}
	return 0 // fully unlimited
}

func (g *Group) effectiveMemory() int64 {
	for n := g; n != nil; n = n.parent {
		if n.limits.MemoryMiB > 0 {
			return n.limits.MemoryMiB
		}
	}
	return 0
}

// Hierarchy is a complete cgroup tree rooted at "kubepods".
type Hierarchy struct {
	root *Group
	trc  *obs.Tracer
	prof *perf.Profiler
}

// SetProfiler attaches a phase profiler; every subsequent limit write
// (validation included) is charged to the cgroup/reconcile phase. Nil
// costs nothing.
func (h *Hierarchy) SetProfiler(p *perf.Profiler) { h.prof = p }

// SetTracer attaches a tracer; every subsequent successful limit write
// emits a cgroup-write event (Detail = group path, Value = mCPU quota,
// Aux = MiB limit) — the D-VPA operation stream of §4.2.
func (h *Hierarchy) SetTracer(t *obs.Tracer) { h.trc = t }

// NewHierarchy creates the kubepods root with one child per QoS class,
// mirroring what kubelet builds at node start-up. rootCap is the node's
// allocatable capacity and becomes the root limit.
func NewHierarchy(rootCap res.Vector) *Hierarchy {
	root := &Group{name: "kubepods", children: map[string]*Group{}, limits: FromVector(rootCap)}
	for _, q := range []QoSClass{Guaranteed, Burstable, BestEffort} {
		root.children[q.String()] = &Group{name: q.String(), parent: root, children: map[string]*Group{}}
	}
	return &Hierarchy{root: root}
}

// Root returns the kubepods group.
func (h *Hierarchy) Root() *Group { return h.root }

// Lookup resolves a path like "kubepods/burstable/pod67f7df/cc13fc77c".
func (h *Hierarchy) Lookup(path string) (*Group, error) {
	parts := strings.Split(path, "/")
	if len(parts) == 0 || parts[0] != h.root.name {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	g := h.root
	for _, p := range parts[1:] {
		child, ok := g.children[p]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, path)
		}
		g = child
	}
	return g, nil
}

// CreatePod adds a pod-level group under the given QoS class and returns it.
func (h *Hierarchy) CreatePod(q QoSClass, podUID string, l Limits) (*Group, error) {
	qg := h.root.children[q.String()]
	if _, exists := qg.children[podUID]; exists {
		return nil, fmt.Errorf("cgroup: pod %q already exists under %s", podUID, q)
	}
	pg := &Group{name: podUID, parent: qg, children: map[string]*Group{}, limits: l}
	if err := checkAgainstParent(pg, l); err != nil {
		return nil, err
	}
	qg.children[podUID] = pg
	return pg, nil
}

// CreateContainer adds a container-level group under a pod group.
func (h *Hierarchy) CreateContainer(pod *Group, containerID string, l Limits) (*Group, error) {
	if _, exists := pod.children[containerID]; exists {
		return nil, fmt.Errorf("cgroup: container %q already exists in %s", containerID, pod.Path())
	}
	cg := &Group{name: containerID, parent: pod, children: map[string]*Group{}, limits: l}
	if err := checkAgainstParent(cg, l); err != nil {
		return nil, err
	}
	pod.children[containerID] = cg
	return cg, nil
}

// Remove deletes a group (and its subtree) from its parent.
func (h *Hierarchy) Remove(g *Group) error {
	if g.parent == nil {
		return errors.New("cgroup: cannot remove root")
	}
	if _, ok := g.parent.children[g.name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, g.Path())
	}
	delete(g.parent.children, g.name)
	return nil
}

// SetLimits writes new limits to a single group, enforcing the kernel's
// parent-bound rule: a group's limit may never exceed its nearest bounded
// ancestor, and lowering a limit below a child's current limit fails.
// Callers performing a pod+container resize must therefore order their
// writes (see ResizePodAndContainer).
func (h *Hierarchy) SetLimits(g *Group, l Limits) error {
	if p := h.prof; p.Enabled() {
		p.Enter(perf.PhaseCgroupReconcile)
		defer p.Exit(perf.PhaseCgroupReconcile)
	}
	if err := checkAgainstParent(g, l); err != nil {
		return err
	}
	// Children must still fit under the new limit.
	for _, c := range g.children {
		if l.CPUQuota > 0 && c.effectiveCPUWith(l, g) > l.CPUQuota {
			return fmt.Errorf("%w: child %s cpu %dm exceeds new limit %dm", ErrOrder, c.Path(), c.limits.CPUQuota, l.CPUQuota)
		}
		if l.MemoryMiB > 0 && c.effectiveMemoryWith(l, g) > l.MemoryMiB {
			return fmt.Errorf("%w: child %s memory %dMi exceeds new limit %dMi", ErrOrder, c.Path(), c.limits.MemoryMiB, l.MemoryMiB)
		}
	}
	g.limits = l
	g.writes++
	if tr := h.trc; tr.Enabled() {
		tr.Emit(obs.Ev(obs.EvCgroup).Note(g.Path()).Val(float64(l.CPUQuota)).Au(l.MemoryMiB))
	}
	return nil
}

// effectiveCPUWith is effectiveCPU but pretending ancestor `anc` had
// limits `l` (used to validate prospective writes).
func (g *Group) effectiveCPUWith(l Limits, anc *Group) int64 {
	for n := g; n != nil; n = n.parent {
		lim := n.limits
		if n == anc {
			lim = l
		}
		if lim.CPUQuota > 0 {
			return lim.CPUQuota
		}
	}
	return 0
}

func (g *Group) effectiveMemoryWith(l Limits, anc *Group) int64 {
	for n := g; n != nil; n = n.parent {
		lim := n.limits
		if n == anc {
			lim = l
		}
		if lim.MemoryMiB > 0 {
			return lim.MemoryMiB
		}
	}
	return 0
}

func checkAgainstParent(g *Group, l Limits) error {
	if l.CPUQuota < 0 || l.MemoryMiB < 0 || l.CPUShares < 0 {
		return fmt.Errorf("cgroup: negative limits %+v", l)
	}
	if g.parent == nil {
		return nil
	}
	// A zero limit inherits the parent's bound and is always allowed.
	if pcpu := g.parent.effectiveCPU(); pcpu > 0 && l.CPUQuota > pcpu {
		return fmt.Errorf("%w: cpu %dm > parent %s %dm", ErrOrder, l.CPUQuota, g.parent.Path(), pcpu)
	}
	if pmem := g.parent.effectiveMemory(); pmem > 0 && l.MemoryMiB > pmem {
		return fmt.Errorf("%w: memory %dMi > parent %s %dMi", ErrOrder, l.MemoryMiB, g.parent.Path(), pmem)
	}
	return nil
}

// ResizePodAndContainer atomically applies D-VPA's ordered two-level
// resize (Figure 5): on expansion the pod group grows first, then the
// container group; on shrink the container shrinks first, then the pod.
// Mixed cases (one dimension grows while another shrinks) are decomposed
// into a grow pass followed by a shrink pass so each pass is ordered
// correctly. The write counters record each underlying modification.
func (h *Hierarchy) ResizePodAndContainer(pod, container *Group, podL, contL Limits) error {
	if container.parent != pod {
		return fmt.Errorf("cgroup: %s is not a child of %s", container.Path(), pod.Path())
	}
	// Pass 1: grow pod-then-container using element-wise max of old/new.
	podGrow := maxLimits(pod.limits, podL)
	contGrow := maxLimits(container.limits, contL)
	if podGrow != pod.limits {
		if err := h.SetLimits(pod, podGrow); err != nil {
			return err
		}
	}
	if contGrow != container.limits {
		if err := h.SetLimits(container, contGrow); err != nil {
			return err
		}
	}
	// Pass 2: shrink container-then-pod down to the targets.
	if contL != container.limits {
		if err := h.SetLimits(container, contL); err != nil {
			return err
		}
	}
	if podL != pod.limits {
		if err := h.SetLimits(pod, podL); err != nil {
			return err
		}
	}
	return nil
}

func maxLimits(a, b Limits) Limits {
	m := func(x, y int64) int64 {
		// 0 means unlimited, which dominates any bound.
		if x == 0 || y == 0 {
			return 0
		}
		if x > y {
			return x
		}
		return y
	}
	return Limits{CPUQuota: m(a.CPUQuota, b.CPUQuota), CPUShares: maxNZ(a.CPUShares, b.CPUShares), MemoryMiB: m(a.MemoryMiB, b.MemoryMiB)}
}

func maxNZ(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Walk visits every group depth-first in sorted child order.
func (h *Hierarchy) Walk(fn func(*Group)) {
	var rec func(*Group)
	rec = func(g *Group) {
		fn(g)
		for _, name := range g.Children() {
			rec(g.children[name])
		}
	}
	rec(h.root)
}

// TotalWrites sums limit modifications across the hierarchy.
func (h *Hierarchy) TotalWrites() uint64 {
	var total uint64
	h.Walk(func(g *Group) { total += g.writes })
	return total
}
