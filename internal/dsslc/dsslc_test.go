package dsslc

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/engine"
	"repro/internal/res"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

func env(workerCPU int64) (*sim.Simulator, *engine.Engine, *topo.Topology) {
	s := sim.New()
	b := topo.NewBuilder()
	w := []res.Vector{res.V(workerCPU, 8192, 500), res.V(workerCPU, 8192, 500)}
	b.AddCluster(30, 120, res.V(8000, 16384, 1000), w)
	b.AddCluster(30.5, 120, res.V(8000, 16384, 1000), w) // ~55km, nearby
	b.AddCluster(45, 120, res.V(8000, 16384, 1000), w)   // far
	tp := b.Build()
	e := engine.New(engine.Config{Sim: s, Topo: tp, Catalog: trace.DefaultCatalog(), Policy: engine.GreedyPolicy{}})
	return s, e, tp
}

func lcReqs(e *engine.Engine, n int, t trace.TypeID) []*engine.Request {
	var out []*engine.Request
	for i := 0; i < n; i++ {
		out = append(out, e.NewRequest(trace.Request{ID: int64(i), Type: t, Class: trace.LC, Cluster: 0}))
	}
	return out
}

func TestSchedulesAllWithinCapacity(t *testing.T) {
	_, e, tp := env(4000)
	s := New(e, 1)
	reqs := lcReqs(e, 8, 3) // type 3: 1000m => 4 per worker, 8 local
	a := s.ScheduleBatch(0, reqs)
	if len(a) != 8 {
		t.Fatalf("assigned %d of 8", len(a))
	}
	// All should fit locally (min transmission delay).
	local := map[topo.NodeID]bool{}
	for _, w := range tp.Cluster(0).Workers {
		local[w] = true
	}
	for id, nid := range a {
		if !local[nid] {
			t.Fatalf("request %d sent to non-local node %d despite local capacity", id, nid)
		}
	}
}

func TestPrefersLocalOverNearby(t *testing.T) {
	_, e, tp := env(4000)
	s := New(e, 1)
	a := s.ScheduleBatch(0, lcReqs(e, 2, 1))
	for _, nid := range a {
		if e.Node(nid).Cluster != 0 {
			t.Fatalf("low load routed off-cluster to %d", nid)
		}
	}
	_ = tp
}

func TestSpillsToNearbyWhenLocalFull(t *testing.T) {
	_, e, tp := env(4000)
	// Fill local workers with LC load (type 3 reserves via usedLC).
	for _, w := range tp.Cluster(0).Workers {
		for i := int64(0); i < 4; i++ {
			e.DispatchLocal(e.NewRequest(trace.Request{ID: 1000 + i, Type: 3, Class: trace.LC, Cluster: 0}), w)
		}
	}
	s := New(e, 1)
	a := s.ScheduleBatch(0, lcReqs(e, 4, 3))
	if len(a) != 4 {
		t.Fatalf("assigned %d", len(a))
	}
	for id, nid := range a {
		c := e.Node(nid).Cluster
		if c == 0 {
			t.Fatalf("request %d stayed on full local cluster", id)
		}
		if c == 2 {
			t.Fatalf("request %d sent beyond the 500km geo radius", id)
		}
	}
}

func TestNeverSchedulesBeyondGeoRadius(t *testing.T) {
	_, e, _ := env(4000)
	s := New(e, 1)
	// Far more requests than local+nearby capacity: 16 slots for type 3.
	a := s.ScheduleBatch(0, lcReqs(e, 60, 3))
	if len(a) != 60 {
		t.Fatalf("assigned %d of 60", len(a))
	}
	for id, nid := range a {
		if e.Node(nid).Cluster == 2 {
			t.Fatalf("request %d escaped the geo radius", id)
		}
	}
}

func TestOverloadSplitsProportionallyToTotalCapacity(t *testing.T) {
	// Heterogeneous workers: one twice the size of the other. Overflow
	// should land ~2:1 by Eq. 7-8.
	sim0 := sim.New()
	b := topo.NewBuilder()
	b.AddCluster(30, 120, res.V(8000, 16384, 1000), []res.Vector{
		res.V(8000, 16384, 500), // big
		res.V(4000, 8192, 500),  // small
	})
	tp := b.Build()
	e := engine.New(engine.Config{Sim: sim0, Topo: tp, Catalog: trace.DefaultCatalog(), Policy: engine.GreedyPolicy{}})
	// Saturate both workers' availability with LC work so avail capacity ~ 0.
	for _, w := range tp.Cluster(0).Workers {
		n := e.Node(w)
		k := n.Capacity.MilliCPU / 1000
		for i := int64(0); i < k; i++ {
			e.DispatchLocal(e.NewRequest(trace.Request{ID: 5000 + int64(w)*100 + i, Type: 3, Class: trace.LC, Cluster: 0}), w)
		}
	}
	s := New(e, 1)
	a := s.ScheduleBatch(0, lcReqs(e, 36, 3))
	if len(a) != 36 {
		t.Fatalf("assigned %d", len(a))
	}
	counts := map[topo.NodeID]int{}
	for _, nid := range a {
		counts[nid]++
	}
	big, small := tp.Cluster(0).Workers[0], tp.Cluster(0).Workers[1]
	if counts[big] <= counts[small] {
		t.Fatalf("overflow not proportional: big=%d small=%d", counts[big], counts[small])
	}
	// λ-scaling: 8:4 ratio → 24 and 12.
	if counts[big] != 24 || counts[small] != 12 {
		t.Fatalf("overflow split %d/%d, want 24/12", counts[big], counts[small])
	}
}

func TestRespectsEffectiveDemandOverrides(t *testing.T) {
	_, e, tp := env(4000)
	// Double type-1 demand on worker 1: its capacity halves.
	w0 := tp.Cluster(0).Workers[0]
	e.Node(w0).AllocOverride[1] = res.V(500, 512, 4)
	s := New(e, 1)
	a := s.ScheduleBatch(0, lcReqs(e, 24, 1)) // 250m default: 16/worker; w0 now 8
	counts := map[topo.NodeID]int{}
	for _, nid := range a {
		counts[nid]++
	}
	w1 := tp.Cluster(0).Workers[1]
	if counts[w0] >= counts[w1] {
		t.Fatalf("override ignored: w0=%d w1=%d", counts[w0], counts[w1])
	}
}

func TestEmptyBatch(t *testing.T) {
	_, e, _ := env(4000)
	s := New(e, 1)
	if a := s.ScheduleBatch(0, nil); len(a) != 0 {
		t.Fatal("nonempty assignment for empty batch")
	}
	if s.Decisions != 0 {
		t.Fatal("empty batch counted as decision")
	}
}

func TestPickSingleRequest(t *testing.T) {
	_, e, _ := env(4000)
	s := New(e, 1)
	r := e.NewRequest(trace.Request{ID: 7, Type: 1, Class: trace.LC, Cluster: 0})
	id, ok := s.Pick(r, nil)
	if !ok {
		t.Fatal("pick failed")
	}
	if e.Node(id).Cluster != 0 {
		t.Fatal("single pick not local under low load")
	}
}

func TestMixedTypesInOneBatch(t *testing.T) {
	_, e, _ := env(4000)
	s := New(e, 1)
	var reqs []*engine.Request
	for i := 0; i < 5; i++ {
		reqs = append(reqs, e.NewRequest(trace.Request{ID: int64(i), Type: trace.TypeID(i % 5), Class: trace.LC, Cluster: 0}))
	}
	a := s.ScheduleBatch(0, reqs)
	if len(a) != 5 {
		t.Fatalf("assigned %d of 5", len(a))
	}
	if s.Decisions != 1 {
		t.Fatalf("decisions = %d", s.Decisions)
	}
}

func TestScaleToSum(t *testing.T) {
	cases := []struct {
		vals []int64
		need int64
	}{
		{[]int64{8, 4}, 36},
		{[]int64{1, 1, 1}, 10},
		{[]int64{5, 0, 5}, 7},
		{[]int64{0, 0}, 4},
		{[]int64{3}, 1},
	}
	for _, c := range cases {
		var tot int64
		for _, v := range c.vals {
			tot += v
		}
		out := scaleToSum(c.vals, tot, c.need)
		var sum int64
		for _, v := range out {
			if v < 0 {
				t.Fatalf("negative share %v", out)
			}
			sum += v
		}
		if sum != c.need {
			t.Fatalf("scaleToSum(%v,%d) = %v (sum %d)", c.vals, c.need, out, sum)
		}
	}
	if out := scaleToSum(nil, 0, 5); len(out) != 0 {
		t.Fatal("nil vals should give empty")
	}
}

// Property: scaleToSum always sums exactly to need and is roughly
// proportional (no element exceeds its fair share by more than 1 unit
// when totSum > 0).
func TestQuickScaleToSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 1
		vals := make([]int64, n)
		var tot int64
		for i := range vals {
			vals[i] = int64(rng.Intn(20))
			tot += vals[i]
		}
		need := int64(rng.Intn(100))
		out := scaleToSum(vals, tot, need)
		var sum int64
		for i, v := range out {
			if v < 0 {
				return false
			}
			sum += v
			if tot > 0 {
				fair := float64(vals[i]) * float64(need) / float64(tot)
				if float64(v) > fair+1 {
					return false
				}
			}
		}
		return sum == need
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every batched request receives an assignment to a worker
// inside the geo radius, for random loads and batch sizes.
func TestQuickAllAssignedWithinRadius(t *testing.T) {
	f := func(seed int64, batch uint8) bool {
		_, e, _ := env(4000)
		s := New(e, seed)
		k := int(batch%50) + 1
		a := s.ScheduleBatch(0, lcReqs(e, k, trace.TypeID(int(seed%5+5)%5)))
		if len(a) != k {
			return false
		}
		for _, nid := range a {
			if e.Node(nid).Cluster == 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// End-to-end: DSS-LC should beat round-robin on QoS when load is uneven.
func TestDSSLCBeatsRoundRobinOnQoS(t *testing.T) {
	run := func(useDSS bool) float64 {
		s := sim.New()
		b := topo.NewBuilder()
		w := []res.Vector{res.V(4000, 8192, 500), res.V(4000, 8192, 500)}
		b.AddCluster(30, 120, res.V(8000, 16384, 1000), w)
		b.AddCluster(30.4, 120, res.V(8000, 16384, 1000), w)
		tp := b.Build()
		var sat, tot int
		e := engine.New(engine.Config{
			Sim: s, Topo: tp, Catalog: trace.DefaultCatalog(), Policy: engine.GreedyPolicy{},
			LCAbandonFactor: 1,
			OnOutcome: func(o engine.Outcome) {
				tot++
				if o.Completed && o.Satisfied {
					sat++
				}
			},
		})
		dss := New(e, 5)
		rrIdx := 0
		reqs := trace.Generate(trace.GenConfig{
			Catalog: trace.DefaultCatalog(), Pattern: trace.P3, Duration: 15 * time.Second,
			LCRatePerSec: 60, BERatePerSec: 0, Clusters: []topo.ClusterID{0},
			ClusterWeights: []float64{1}, Seed: 9,
		})
		var pend []*engine.Request
		for _, r := range reqs {
			r := r
			s.Schedule(r.Arrival, func() { pend = append(pend, e.NewRequest(r)) })
		}
		// Dispatch in 50ms batches.
		drainEv := s.Every(50*time.Millisecond, func() {
			if len(pend) == 0 {
				return
			}
			if useDSS {
				a := dss.ScheduleBatch(0, pend)
				for _, r := range pend {
					e.Dispatch(r, a[r.ID])
				}
			} else {
				locals := tp.Cluster(0).Workers
				for _, r := range pend {
					e.Dispatch(r, locals[rrIdx%len(locals)])
					rrIdx++
				}
			}
			pend = nil
		})
		s.RunUntil(20 * time.Second)
		drainEv.Cancel()
		if tot == 0 {
			t.Fatal("no outcomes")
		}
		return float64(sat) / float64(tot)
	}
	dss := run(true)
	rr := run(false)
	t.Logf("DSS-LC qos=%.3f, round-robin qos=%.3f", dss, rr)
	if dss < rr {
		t.Fatalf("DSS-LC (%.3f) worse than round-robin (%.3f)", dss, rr)
	}
}

// TestScheduleBatchIntoAllocFree pins the scheduler-level allocation
// budget: after warm-up (pooled buffers grown, graph arena built,
// warm-start memo captured), a within-capacity batch schedules with
// zero heap allocations when tracing is off. The same budget is
// enforced end to end by `tango-bench -compare -alloc-threshold`.
func TestScheduleBatchIntoAllocFree(t *testing.T) {
	_, e, _ := env(16000)
	s := New(e, 1)
	// 64 type-3 requests exactly fill local+nearby capacity (4 workers ×
	// 16 slots), so every call takes the within-capacity route.
	reqs := lcReqs(e, 64, 3)
	out := make(Assignment, len(reqs))
	s.ScheduleBatchInto(0, reqs, out)
	if len(out) != 64 {
		t.Fatalf("warm-up assigned %d of 64", len(out))
	}
	allocs := testing.AllocsPerRun(100, func() {
		clear(out)
		s.ScheduleBatchInto(0, reqs, out)
	})
	if allocs != 0 {
		t.Fatalf("warmed ScheduleBatchInto allocates %.1f/op, want 0", allocs)
	}
	ws := s.Workspace()
	if ws == nil || ws.WarmHits == 0 {
		t.Fatal("warm-start memo never replayed across periods")
	}
	t.Logf("workspace: %d solves, %d warm hits", ws.Solves, ws.WarmHits)
}

// Same budget for the overflow path (capacity exceeded, ρ-split and
// λ-scaled second solve): still allocation-free, although the two
// per-batch solves have different graph shapes so the single-entry memo
// cannot replay.
func TestScheduleBatchIntoOverflowAllocFree(t *testing.T) {
	_, e, _ := env(16000)
	s := New(e, 1)
	reqs := lcReqs(e, 100, 3) // 100 > 64 slots: forces the ρ-split
	out := make(Assignment, len(reqs))
	s.ScheduleBatchInto(0, reqs, out)
	if len(out) != 100 {
		t.Fatalf("warm-up assigned %d of 100", len(out))
	}
	allocs := testing.AllocsPerRun(100, func() {
		clear(out)
		s.ScheduleBatchInto(0, reqs, out)
	})
	if allocs != 0 {
		t.Fatalf("warmed overflow ScheduleBatchInto allocates %.1f/op, want 0", allocs)
	}
}

// ScheduleBatchInto and ScheduleBatch must agree: the Into variant is
// the same algorithm writing into a caller-owned map.
func TestScheduleBatchIntoMatchesScheduleBatch(t *testing.T) {
	_, e1, _ := env(4000)
	_, e2, _ := env(4000)
	reqs1 := lcReqs(e1, 30, 3)
	reqs2 := lcReqs(e2, 30, 3)
	a := New(e1, 7).ScheduleBatch(0, reqs1)
	into := make(Assignment, len(reqs2))
	New(e2, 7).ScheduleBatchInto(0, reqs2, into)
	if len(a) != len(into) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(into))
	}
	for id, nid := range a {
		if into[id] != nid {
			t.Fatalf("request %d: ScheduleBatch -> %d, Into -> %d", id, nid, into[id])
		}
	}
}

func BenchmarkScheduleBatch(b *testing.B) {
	_, e, _ := env(16000)
	s := New(e, 1)
	reqs := lcReqs(e, 100, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScheduleBatch(0, reqs)
	}
}

func BenchmarkScheduleBatchInto(b *testing.B) {
	_, e, _ := env(16000)
	s := New(e, 1)
	reqs := lcReqs(e, 100, 3)
	out := make(Assignment, len(reqs))
	s.ScheduleBatchInto(0, reqs, out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(out)
		s.ScheduleBatchInto(0, reqs, out)
	}
}
