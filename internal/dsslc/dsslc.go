// Package dsslc implements DSS-LC, the Distributed Service request
// Scheduling algorithm for LC requests (§5.2, Algorithm 2).
//
// Each master node runs its own instance (distributed scheduling — the
// paper measures >97 ms RTT to the central cluster, which would consume
// ~30% of a typical LC budget). For every LC request type k the
// algorithm builds a Multi-Commodity Network Flow graph over the local
// and geo-nearby clusters (footnote 4: within 500 km):
//
//   - worker capacity t_i^k = -min(r_ava^c/r^c_k, r_ava^m/r^m_k) (Eq. 2),
//     where the available resources follow the §4.1 regulations (idle
//     plus BE-held, since LC may preempt);
//   - edges carry the transmission delay t_delay and capacity c_ij;
//   - Google OR-Tools is replaced by the exact min-cost max-flow solver
//     in internal/flow.
//
// When demand exceeds capacity (Σ t_i^k > 0), requests are split by the
// random sorting function ρ into an immediate set R_k — routed on the
// availability graph Ĝ_k — and an overflow set R'_k routed on Ĝ'_k,
// whose capacities are the nodes' *total* resources scaled by the
// augmentation factor λ (Eq. 7–8), so overflow queues proportionally to
// the heterogeneous total capacity of each node.
package dsslc

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/res"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Scheduler is one master's DSS-LC instance. It implements both the
// batch interface used by Tango's LC traffic dispatcher and (through
// Pick) the one-request sched.Scheduler interface for pairing
// experiments.
type Scheduler struct {
	Engine *engine.Engine
	// GeoRadiusKm bounds candidate clusters (footnote 4; 500 km).
	GeoRadiusKm float64
	rng         *rand.Rand

	// Decisions counts batch solves, LastBatch the requests routed in the
	// most recent one (for the decision-time benchmarks).
	Decisions int64

	// Tracer, when set, receives one flow-solve event per batch
	// (Aux = batch size, Value = routed count) and one Decision audit
	// record per min-cost-flow solve, with the per-candidate Eq. 2–4
	// terms. OnDecision additionally receives each stamped audit record
	// (the SLO accountant subscribes here).
	Tracer     *obs.Tracer
	OnDecision func(obs.Decision)

	// OnSolve, when set, observes every min-cost-flow solve with the
	// solved residual graph still intact. internal/check hangs its
	// differential oracles here (flow conservation, nonnegative flow and
	// cost) so verification runs cross-check the optimizer in situ
	// without the scheduler importing the checker.
	OnSolve func(g *flow.Graph, src, sink int, r flow.Result)

	// Prof, when set, charges MCNF graph construction to the
	// solve/graph-build phase and propagates into each solve graph so
	// the Dijkstra/augmentation split inside flow.MinCostFlow is
	// attributed too. Nil costs nothing.
	Prof *perf.Profiler
}

// New creates a DSS-LC scheduler with the paper's 500 km geo radius.
func New(e *engine.Engine, seed int64) *Scheduler {
	return &Scheduler{Engine: e, GeoRadiusKm: 500, rng: rand.New(rand.NewSource(seed))}
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "DSS-LC" }

// Assignment maps request IDs to chosen workers.
type Assignment map[int64]topo.NodeID

// ScheduleBatch routes every request in the batch (all from cluster c's
// LC queue) and returns the assignment. Requests of each type are
// handled independently (the "multi-commodity" structure); within a
// type the two cases of Algorithm 2 apply.
func (s *Scheduler) ScheduleBatch(c topo.ClusterID, reqs []*engine.Request) Assignment {
	out := Assignment{}
	if len(reqs) == 0 {
		return out
	}
	s.Decisions++
	if tr := s.Tracer; tr.Enabled() {
		defer func() {
			tr.Emit(obs.Ev(obs.EvFlowSolve).Clu(int(c)).Au(int64(len(reqs))).Val(float64(len(out))))
		}()
	}
	workers := s.candidates(c)
	if len(workers) == 0 {
		return out
	}
	byType := map[trace.TypeID][]*engine.Request{}
	for _, r := range reqs {
		byType[r.Type] = append(byType[r.Type], r)
	}
	// Deterministic type order.
	types := make([]trace.TypeID, 0, len(byType))
	for t := range byType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })

	// reserved tracks resources already assigned to earlier commodities
	// (request types) of this batch: the MCNF's node capacities are
	// shared across commodities, so each type sees what the previous
	// ones left behind.
	reserved := make([]res.Vector, len(workers))

	for _, t := range types {
		rs := byType[t]
		demand := make([]res.Vector, len(workers))
		caps := make([]int64, len(workers))
		var capTotal int64
		for i, w := range workers {
			demand[i] = w.EffectiveDemand(t)
			// Availability per §4.1 regulations (idle + BE-held), minus
			// what earlier dispatch rounds queued at or sent toward the
			// node and what this batch already assigned.
			avail := w.AvailableForLC().Sub(w.QueuedLCDemand()).Sub(w.InTransit()).Sub(reserved[i]).Max(res.Vector{})
			caps[i] = avail.CapacityCount(demand[i])
			capTotal += caps[i]
		}
		book := func(counts map[int]int64) {
			for i, n := range counts {
				reserved[i] = reserved[i].Add(demand[i].Scale(n, 1))
			}
		}
		if capTotal >= int64(len(rs)) {
			// Case 1: capacity covers demand; route on Ĝ_k.
			book(s.route(c, t, obs.PhaseImmediate, rs, workers, caps, out))
			continue
		}
		// Case 2: split by the random sorting function ρ(·) — all LC
		// services share one priority in our scenario (§5.2.2).
		s.rng.Shuffle(len(rs), func(i, j int) { rs[i], rs[j] = rs[j], rs[i] })
		immediate := rs[:capTotal]
		overflow := rs[capTotal:]
		if len(immediate) > 0 {
			book(s.route(c, t, obs.PhaseImmediate, immediate, workers, caps, out))
		}
		// Ĝ'_k: total-resource capacities scaled by λ (Eq. 7–8).
		totals := make([]int64, len(workers))
		var totSum int64
		for i, w := range workers {
			totals[i] = w.Capacity.CapacityCount(demand[i])
			totSum += totals[i]
		}
		need := int64(len(overflow))
		scaled := scaleToSum(totals, totSum, need)
		book(s.route(c, t, obs.PhaseOverflow, overflow, workers, scaled, out))
	}
	return out
}

// route solves one min-cost-flow instance: source → master (pending) →
// workers (capacity caps, cost = transmission delay) → sink, then
// assigns requests to workers according to the edge flows. It returns
// the per-worker assignment counts so the caller can book reservations.
func (s *Scheduler) route(c topo.ClusterID, svc trace.TypeID, phase string, rs []*engine.Request, workers []*engine.Node, caps []int64, out Assignment) map[int]int64 {
	t := s.Engine.Topology()
	masterID := t.Cluster(c).Master
	s.Prof.Enter(perf.PhaseSolveGraphBuild)
	g := flow.NewGraph()
	g.SetProfiler(s.Prof)
	src := g.AddNode()
	master := g.AddNode()
	sink := g.AddNode()
	g.AddEdge(src, master, int64(len(rs)), 0)
	edges := make([]flow.EdgeID, len(workers))
	costs := make([]int64, len(workers))
	links := make([]int64, len(workers))
	for i, w := range workers {
		wn := g.AddNode()
		// Transmission delay in microseconds as the cost (Eq. 3).
		delayUS := int64(t.RTT(masterID, w.ID) / time.Microsecond)
		// Link transmission capacity c_ij (Eq. 4): bound the number of
		// requests the link can carry in one scheduling round.
		linkCap := t.LinkBandwidth(masterID, w.ID)
		if linkCap < 1 {
			linkCap = 1
		}
		costs[i], links[i] = delayUS, linkCap
		cap := caps[i]
		if cap > linkCap {
			cap = linkCap
		}
		edges[i] = g.AddEdge(master, wn, cap, delayUS)
		g.AddEdge(wn, sink, cap, 0)
	}
	s.Prof.Exit(perf.PhaseSolveGraphBuild)
	solved := g.MinCostFlow(src, sink, int64(len(rs)))
	if s.OnSolve != nil {
		s.OnSolve(g, src, sink, solved)
	}
	// Distribute requests over workers by flow amounts; any residual
	// (flow < len(rs), e.g. link caps bind) falls back to the local
	// cluster's least-loaded worker.
	counts := map[int]int64{}
	ri := 0
	for i, e := range edges {
		f := g.Flow(e)
		counts[i] += f
		for ; f > 0 && ri < len(rs); f-- {
			out[rs[ri].ID] = workers[i].ID
			ri++
		}
	}
	routed := ri
	for ; ri < len(rs); ri++ {
		out[rs[ri].ID] = s.leastLoadedLocal(c)
	}
	if tr := s.Tracer; tr.Enabled() {
		d := obs.Decision{
			Algo: s.Name(), Phase: phase,
			Cluster: int(c), Svc: int(svc),
			Batch: len(rs), Routed: routed,
			GraphNodes: 3 + len(workers), GraphEdges: 1 + 2*len(workers),
			Candidates: make([]obs.Candidate, len(workers)),
		}
		for i, w := range workers {
			cand := obs.Candidate{Node: int(w.ID), Capacity: caps[i],
				CostUS: costs[i], LinkCap: links[i], Flow: counts[i]}
			switch {
			case counts[i] > 0:
			case caps[i] == 0:
				cand.Reject = obs.RejectNoCapacity
			case links[i] < caps[i]:
				cand.Reject = obs.RejectLinkLimited
			default:
				cand.Reject = obs.RejectNotChosen
			}
			d.Candidates[i] = cand
		}
		tr.EmitDecision(&d)
		// Every request of this solve — flow-routed or fallback — is
		// attributable to it.
		for _, r := range rs {
			r.DecisionID = d.ID
		}
		if s.OnDecision != nil {
			s.OnDecision(d)
		}
	}
	return counts
}

func (s *Scheduler) leastLoadedLocal(c topo.ClusterID) topo.NodeID {
	t := s.Engine.Topology()
	ws := t.WorkersOf(c)
	best, bestU := ws[0], 2.0
	for _, w := range ws {
		n := s.Engine.Node(w)
		if n.Down() {
			continue
		}
		if u := n.Utilization(); u < bestU {
			best, bestU = w, u
		}
	}
	return best
}

func (s *Scheduler) candidates(c topo.ClusterID) []*engine.Node {
	t := s.Engine.Topology()
	var out []*engine.Node
	for _, w := range t.WorkersOf(c) {
		if n := s.Engine.Node(w); !n.Down() {
			out = append(out, n)
		}
	}
	for _, nc := range t.NeighborClusters(c, s.GeoRadiusKm) {
		for _, w := range t.WorkersOf(nc) {
			if n := s.Engine.Node(w); !n.Down() {
				out = append(out, n)
			}
		}
	}
	return out
}

// Pick adapts DSS-LC to the one-request sched.Scheduler interface by
// running a batch of size one.
func (s *Scheduler) Pick(r *engine.Request, cands []*engine.Node) (topo.NodeID, bool) {
	a := s.ScheduleBatch(r.Cluster, []*engine.Request{r})
	id, ok := a[r.ID]
	return id, ok
}

// scaleToSum scales vals (nonnegative, summing to totSum) so they sum to
// need, using the largest-remainder method — the integer realization of
// the augmentation factor λ = need/totSum of Eq. 8.
func scaleToSum(vals []int64, totSum, need int64) []int64 {
	out := make([]int64, len(vals))
	if need <= 0 || len(vals) == 0 {
		return out
	}
	if totSum <= 0 {
		// No capacity information: spread evenly.
		rem := need
		for i := range out {
			out[i] = rem / int64(len(out)-i)
			rem -= out[i]
		}
		return out
	}
	type frac struct {
		i   int
		rem float64
	}
	var fr []frac
	var sum int64
	for i, v := range vals {
		exact := float64(v) * float64(need) / float64(totSum)
		fl := int64(exact)
		out[i] = fl
		sum += fl
		fr = append(fr, frac{i, exact - float64(fl)})
	}
	sort.Slice(fr, func(a, b int) bool {
		if fr[a].rem != fr[b].rem {
			return fr[a].rem > fr[b].rem
		}
		return fr[a].i < fr[b].i
	})
	for k := 0; sum < need; k++ {
		out[fr[k%len(fr)].i]++
		sum++
	}
	return out
}
