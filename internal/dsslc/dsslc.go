// Package dsslc implements DSS-LC, the Distributed Service request
// Scheduling algorithm for LC requests (§5.2, Algorithm 2).
//
// Each master node runs its own instance (distributed scheduling — the
// paper measures >97 ms RTT to the central cluster, which would consume
// ~30% of a typical LC budget). For every LC request type k the
// algorithm builds a Multi-Commodity Network Flow graph over the local
// and geo-nearby clusters (footnote 4: within 500 km):
//
//   - worker capacity t_i^k = -min(r_ava^c/r^c_k, r_ava^m/r^m_k) (Eq. 2),
//     where the available resources follow the §4.1 regulations (idle
//     plus BE-held, since LC may preempt);
//   - edges carry the transmission delay t_delay and capacity c_ij;
//   - Google OR-Tools is replaced by the exact min-cost max-flow solver
//     in internal/flow.
//
// When demand exceeds capacity (Σ t_i^k > 0), requests are split by the
// random sorting function ρ into an immediate set R_k — routed on the
// availability graph Ĝ_k — and an overflow set R'_k routed on Ĝ'_k,
// whose capacities are the nodes' *total* resources scaled by the
// augmentation factor λ (Eq. 7–8), so overflow queues proportionally to
// the heterogeneous total capacity of each node.
//
// The solve loop is the scheduler's hot path, so it is built around one
// reused flow.Graph + flow.Workspace per Scheduler: every route call
// Clears and rebuilds the graph inside the retained arenas, solves with
// flow.WarmStart (replaying the previous period's first Dijkstra pass
// when the topology shape is unchanged), and all per-batch bookkeeping
// draws from pooled slices. ScheduleBatchInto is steady-state
// allocation-free when tracing is off (asserted by testing.AllocsPerRun
// in dsslc_test.go).
package dsslc

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/res"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Scheduler is one master's DSS-LC instance. It implements both the
// batch interface used by Tango's LC traffic dispatcher and (through
// Pick) the one-request sched.Scheduler interface for pairing
// experiments.
type Scheduler struct {
	Engine *engine.Engine
	// GeoRadiusKm bounds candidate clusters (footnote 4; 500 km).
	GeoRadiusKm float64
	rng         *rand.Rand

	// Decisions counts batch solves, LastBatch the requests routed in the
	// most recent one (for the decision-time benchmarks).
	Decisions int64

	// Tracer, when set, receives one flow-solve event per batch
	// (Aux = batch size, Value = routed count) and one Decision audit
	// record per min-cost-flow solve, with the per-candidate Eq. 2–4
	// terms. OnDecision additionally receives each stamped audit record
	// (the SLO accountant subscribes here).
	Tracer     *obs.Tracer
	OnDecision func(obs.Decision)

	// Sharding hooks (internal/shard). Restrict, when set, filters the
	// geo-nearby candidate clusters: only neighbors it accepts
	// contribute workers (the home cluster always does). Pending, when
	// set, reports resources assigned toward a node by other schedulers
	// this period but not yet dispatched into the engine, so concurrent
	// shard solves and the cross-shard overflow pass do not double-book
	// capacity the engine cannot see yet. OverflowSink, when set,
	// receives each type's ρ-shuffled overflow set instead of the
	// scheduler routing it on Ĝ'_k — the shard layer re-routes those
	// requests across shard boundaries. The rs slice aliases a pooled
	// buffer, dead after the next ScheduleBatchInto call: sinks must
	// copy what they keep.
	Restrict     func(topo.ClusterID) bool
	Pending      func(topo.NodeID) res.Vector
	OverflowSink func(c topo.ClusterID, svc trace.TypeID, rs []*engine.Request)

	// OnSolve, when set, observes every min-cost-flow solve with the
	// solved residual graph still intact. internal/check hangs its
	// differential oracles here (flow conservation, nonnegative flow and
	// cost) so verification runs cross-check the optimizer in situ
	// without the scheduler importing the checker.
	OnSolve func(g *flow.Graph, src, sink int, r flow.Result)

	// Prof, when set, charges MCNF graph construction to the
	// solve/graph-build phase and propagates into each solve graph so
	// the Dijkstra/augmentation split inside flow.MinCostFlow is
	// attributed too. Nil costs nothing.
	Prof *perf.Profiler

	// Solver arena: one graph rebuilt in place per solve and one
	// workspace feeding it pooled scratch plus the cross-period
	// warm-start memo.
	g  *flow.Graph
	ws *flow.Workspace

	// Pooled hot-path buffers. All are scratch whose contents are dead
	// between ScheduleBatchInto calls; they grow to the high-water mark
	// of the run and are never released.
	candBuf   []*engine.Node
	grouped   []*engine.Request
	typeOff   []int32 // per-TypeID counts, then running offsets
	reserved  []res.Vector
	demand    []res.Vector
	caps      []int64
	totals    []int64
	scaled    []int64
	counts    []int64
	edges     []flow.EdgeID
	costs     []int64
	links     []int64
	fracs     fracSlice
	neighbors []topo.ClusterID
	// Single-entry cache for the geo-static neighbor-cluster list.
	neighborsFor topo.ClusterID
	neighborsKm  float64
	neighborsOK  bool
}

// New creates a DSS-LC scheduler with the paper's 500 km geo radius.
func New(e *engine.Engine, seed int64) *Scheduler {
	return &Scheduler{Engine: e, GeoRadiusKm: 500, rng: rand.New(rand.NewSource(seed))}
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "DSS-LC" }

// Workspace exposes the scheduler's solver workspace (nil until the
// first solve); benchmarks and tests read its Solves/WarmHits counters.
func (s *Scheduler) Workspace() *flow.Workspace { return s.ws }

// Assignment maps request IDs to chosen workers.
type Assignment map[int64]topo.NodeID

// ScheduleBatch routes every request in the batch (all from cluster c's
// LC queue) and returns a freshly allocated assignment. Requests of
// each type are handled independently (the "multi-commodity"
// structure); within a type the two cases of Algorithm 2 apply.
func (s *Scheduler) ScheduleBatch(c topo.ClusterID, reqs []*engine.Request) Assignment {
	out := make(Assignment, len(reqs))
	s.ScheduleBatchInto(c, reqs, out)
	return out
}

// ScheduleBatchInto is ScheduleBatch writing into a caller-provided
// assignment (existing entries are kept), so a dispatcher draining
// queues every period can reuse one cleared map instead of allocating
// per round. With tracing off this path performs zero steady-state heap
// allocations.
func (s *Scheduler) ScheduleBatchInto(c topo.ClusterID, reqs []*engine.Request, out Assignment) {
	if len(reqs) == 0 {
		return
	}
	s.Decisions++
	if tr := s.Tracer; tr.Enabled() {
		defer func() {
			tr.Emit(obs.Ev(obs.EvFlowSolve).Clu(int(c)).Au(int64(len(reqs))).Val(float64(len(out))))
		}()
	}
	workers := s.candidates(c)
	if len(workers) == 0 {
		return
	}

	// Slice-backed grouping (replaces the old per-batch map + type
	// sort): a counting sort over the dense non-negative TypeID space
	// yields the types in ascending order with arrival order preserved
	// within each type — exactly the old iteration order, without the
	// map, the sort or their allocations.
	maxT := 0
	for _, r := range reqs {
		if int(r.Type) > maxT {
			maxT = int(r.Type)
		}
	}
	if cap(s.typeOff) < maxT+1 {
		s.typeOff = make([]int32, maxT+1)
	}
	off := s.typeOff[:maxT+1]
	for i := range off {
		off[i] = 0
	}
	for _, r := range reqs {
		off[r.Type]++
	}
	var pos int32
	for t := range off {
		n := off[t]
		off[t] = pos
		pos += n
	}
	if cap(s.grouped) < len(reqs) {
		s.grouped = make([]*engine.Request, len(reqs))
	}
	grouped := s.grouped[:len(reqs)]
	for _, r := range reqs {
		grouped[off[r.Type]] = r
		off[r.Type]++ // off[t] ends as the end offset of type t
	}

	// reserved tracks resources already assigned to earlier commodities
	// (request types) of this batch: the MCNF's node capacities are
	// shared across commodities, so each type sees what the previous
	// ones left behind.
	reserved := growVectors(&s.reserved, len(workers))
	demand := growVectors(&s.demand, len(workers))
	caps := growInt64s(&s.caps, len(workers))

	book := func(counts []int64) {
		for i, n := range counts {
			if n != 0 {
				reserved[i] = reserved[i].Add(demand[i].Scale(n, 1))
			}
		}
	}

	var start int32
	for t := 0; t <= maxT; t++ {
		end := off[t]
		if end == start {
			continue
		}
		rs := grouped[start:end]
		start = end
		svc := trace.TypeID(t)

		var capTotal int64
		for i, w := range workers {
			demand[i] = w.EffectiveDemand(svc)
			// Availability per §4.1 regulations (idle + BE-held), minus
			// what earlier dispatch rounds queued at or sent toward the
			// node and what this batch already assigned.
			avail := w.AvailableForLC().Sub(w.QueuedLCDemand()).Sub(w.InTransit()).Sub(reserved[i])
			if s.Pending != nil {
				avail = avail.Sub(s.Pending(w.ID))
			}
			avail = avail.Max(res.Vector{})
			caps[i] = avail.CapacityCount(demand[i])
			capTotal += caps[i]
		}
		if capTotal >= int64(len(rs)) {
			// Case 1: capacity covers demand; route on Ĝ_k.
			book(s.route(c, svc, obs.PhaseImmediate, rs, workers, caps, out))
			continue
		}
		// Case 2: split by the random sorting function ρ(·) — all LC
		// services share one priority in our scenario (§5.2.2).
		s.rng.Shuffle(len(rs), func(i, j int) { rs[i], rs[j] = rs[j], rs[i] })
		immediate := rs[:capTotal]
		overflow := rs[capTotal:]
		if len(immediate) > 0 {
			book(s.route(c, svc, obs.PhaseImmediate, immediate, workers, caps, out))
		}
		if s.OverflowSink != nil {
			// The shard layer takes the overflow across shard boundaries
			// instead of queueing it on the local Ĝ'_k.
			s.OverflowSink(c, svc, overflow)
			continue
		}
		// Ĝ'_k: total-resource capacities scaled by λ (Eq. 7–8).
		totals := growInt64s(&s.totals, len(workers))
		var totSum int64
		for i, w := range workers {
			totals[i] = w.Capacity.CapacityCount(demand[i])
			totSum += totals[i]
		}
		need := int64(len(overflow))
		scaled := growInt64s(&s.scaled, len(workers))
		scaleToSumInto(scaled, &s.fracs, totals, totSum, need)
		book(s.route(c, svc, obs.PhaseOverflow, overflow, workers, scaled, out))
	}
}

// route solves one min-cost-flow instance: source → master (pending) →
// workers (capacity caps, cost = transmission delay) → sink, then
// assigns requests to workers according to the edge flows. It returns
// the per-worker assignment counts (a pooled slice, valid until the
// next route call) so the caller can book reservations.
func (s *Scheduler) route(c topo.ClusterID, svc trace.TypeID, phase string, rs []*engine.Request, workers []*engine.Node, caps []int64, out Assignment) []int64 {
	t := s.Engine.Topology()
	masterID := t.Cluster(c).Master
	s.Prof.Enter(perf.PhaseSolveGraphBuild)
	g := s.g
	if g == nil {
		g = flow.NewGraph()
		s.ws = flow.NewWorkspace()
		g.SetWorkspace(s.ws)
		s.g = g
	}
	g.SetProfiler(s.Prof)
	g.Clear()
	src := g.AddNode()
	master := g.AddNode()
	sink := g.AddNode()
	g.AddEdge(src, master, int64(len(rs)), 0)
	edges := growEdgeIDs(&s.edges, len(workers))
	costs := growInt64s(&s.costs, len(workers))
	links := growInt64s(&s.links, len(workers))
	for i, w := range workers {
		wn := g.AddNode()
		// Transmission delay in microseconds as the cost (Eq. 3).
		delayUS := int64(t.RTT(masterID, w.ID) / time.Microsecond)
		// Link transmission capacity c_ij (Eq. 4): bound the number of
		// requests the link can carry in one scheduling round.
		linkCap := t.LinkBandwidth(masterID, w.ID)
		if linkCap < 1 {
			linkCap = 1
		}
		costs[i], links[i] = delayUS, linkCap
		cap := caps[i]
		if cap > linkCap {
			cap = linkCap
		}
		edges[i] = g.AddEdge(master, wn, cap, delayUS)
		g.AddEdge(wn, sink, cap, 0)
	}
	s.Prof.Exit(perf.PhaseSolveGraphBuild)
	// Warm-started solve: across scheduling periods the rebuilt graph
	// usually has the same shape (same candidate workers, same RTT
	// costs, capacities varying only in magnitude), so the workspace
	// replays the previous period's first Dijkstra pass — results are
	// identical to a cold MinCostFlow either way. The memo is keyed by
	// (cluster, type, phase): a batch interleaves one solve per
	// commodity, and per-commodity entries stop those solves from
	// evicting each other's memos (the single-entry memo only ever
	// warm-hit the last commodity solved).
	key := uint64(c)<<32 | uint64(svc)<<1
	if phase == obs.PhaseOverflow {
		key |= 1
	}
	solved := g.WarmStartAt(key, src, sink, int64(len(rs)))
	if s.OnSolve != nil {
		s.OnSolve(g, src, sink, solved)
	}
	// Distribute requests over workers by flow amounts; any residual
	// (flow < len(rs), e.g. link caps bind) falls back to the local
	// cluster's least-loaded worker. counts is dense, indexed by worker
	// position, so candidate iteration order is explicit.
	counts := growInt64s(&s.counts, len(workers))
	ri := 0
	for i, e := range edges {
		f := g.Flow(e)
		counts[i] = f
		for ; f > 0 && ri < len(rs); f-- {
			out[rs[ri].ID] = workers[i].ID
			ri++
		}
	}
	routed := ri
	for ; ri < len(rs); ri++ {
		out[rs[ri].ID] = s.leastLoadedLocal(c)
	}
	if tr := s.Tracer; tr.Enabled() {
		d := obs.Decision{
			Algo: s.Name(), Phase: phase,
			Cluster: int(c), Svc: int(svc),
			Batch: len(rs), Routed: routed,
			GraphNodes: 3 + len(workers), GraphEdges: 1 + 2*len(workers),
			Candidates: make([]obs.Candidate, len(workers)),
		}
		for i, w := range workers {
			cand := obs.Candidate{Node: int(w.ID), Capacity: caps[i],
				CostUS: costs[i], LinkCap: links[i], Flow: counts[i]}
			switch {
			case counts[i] > 0:
			case caps[i] == 0:
				cand.Reject = obs.RejectNoCapacity
			case links[i] < caps[i]:
				cand.Reject = obs.RejectLinkLimited
			default:
				cand.Reject = obs.RejectNotChosen
			}
			d.Candidates[i] = cand
		}
		tr.EmitDecision(&d)
		// Every request of this solve — flow-routed or fallback — is
		// attributable to it.
		for _, r := range rs {
			r.DecisionID = d.ID
		}
		if s.OnDecision != nil {
			s.OnDecision(d)
		}
	}
	return counts
}

func (s *Scheduler) leastLoadedLocal(c topo.ClusterID) topo.NodeID {
	t := s.Engine.Topology()
	ws := t.WorkersOf(c)
	best, bestU := ws[0], 2.0
	for _, w := range ws {
		n := s.Engine.Node(w)
		if n.Down() {
			continue
		}
		if u := n.Utilization(); u < bestU {
			best, bestU = w, u
		}
	}
	return best
}

func (s *Scheduler) candidates(c topo.ClusterID) []*engine.Node {
	t := s.Engine.Topology()
	out := s.candBuf[:0]
	for _, w := range t.WorkersOf(c) {
		if n := s.Engine.Node(w); !n.Down() {
			out = append(out, n)
		}
	}
	for _, nc := range s.neighborsOf(t, c) {
		if s.Restrict != nil && !s.Restrict(nc) {
			continue
		}
		for _, w := range t.WorkersOf(nc) {
			if n := s.Engine.Node(w); !n.Down() {
				out = append(out, n)
			}
		}
	}
	s.candBuf = out
	return out
}

// neighborsOf caches the geo-nearby cluster list: cluster positions are
// static for the lifetime of a topology, so the list only changes when
// the scheduler is asked about a different cluster or radius.
func (s *Scheduler) neighborsOf(t *topo.Topology, c topo.ClusterID) []topo.ClusterID {
	if s.neighborsOK && s.neighborsFor == c && s.neighborsKm == s.GeoRadiusKm {
		return s.neighbors
	}
	s.neighbors = t.NeighborClustersInto(s.neighbors[:0], c, s.GeoRadiusKm)
	s.neighborsFor, s.neighborsKm, s.neighborsOK = c, s.GeoRadiusKm, true
	return s.neighbors
}

// Pick adapts DSS-LC to the one-request sched.Scheduler interface by
// running a batch of size one.
func (s *Scheduler) Pick(r *engine.Request, cands []*engine.Node) (topo.NodeID, bool) {
	a := s.ScheduleBatch(r.Cluster, []*engine.Request{r})
	id, ok := a[r.ID]
	return id, ok
}

// growInt64s resizes a pooled int64 slice to n, zeroed.
func growInt64s(buf *[]int64, n int) []int64 {
	if cap(*buf) < n {
		*buf = make([]int64, n)
		return *buf
	}
	out := (*buf)[:n]
	for i := range out {
		out[i] = 0
	}
	return out
}

// growVectors resizes a pooled res.Vector slice to n, zeroed.
func growVectors(buf *[]res.Vector, n int) []res.Vector {
	if cap(*buf) < n {
		*buf = make([]res.Vector, n)
		return *buf
	}
	out := (*buf)[:n]
	for i := range out {
		out[i] = res.Vector{}
	}
	return out
}

// growEdgeIDs resizes a pooled EdgeID slice to n (contents overwritten
// by the caller).
func growEdgeIDs(buf *[]flow.EdgeID, n int) []flow.EdgeID {
	if cap(*buf) < n {
		*buf = make([]flow.EdgeID, n)
	}
	return (*buf)[:n]
}

// frac is one worker's fractional remainder in the largest-remainder
// rounding of scaleToSum.
type frac struct {
	i   int
	rem float64
}

// fracSlice sorts by remainder descending, index ascending — a total
// order, so any correct sort yields the same permutation the previous
// sort.Slice-based implementation produced.
type fracSlice []frac

func (f *fracSlice) Len() int      { return len(*f) }
func (f *fracSlice) Swap(i, j int) { (*f)[i], (*f)[j] = (*f)[j], (*f)[i] }
func (f *fracSlice) Less(i, j int) bool {
	a, b := (*f)[i], (*f)[j]
	if a.rem != b.rem {
		return a.rem > b.rem
	}
	return a.i < b.i
}

// scaleToSum scales vals (nonnegative, summing to totSum) so they sum to
// need, using the largest-remainder method — the integer realization of
// the augmentation factor λ = need/totSum of Eq. 8.
func scaleToSum(vals []int64, totSum, need int64) []int64 {
	out := make([]int64, len(vals))
	var fr fracSlice
	scaleToSumInto(out, &fr, vals, totSum, need)
	return out
}

// scaleToSumInto is scaleToSum writing into out (len(out) == len(vals))
// with fr as sorting scratch, so the scheduler's hot path reuses pooled
// buffers instead of allocating per overflow solve.
func scaleToSumInto(out []int64, fr *fracSlice, vals []int64, totSum, need int64) {
	for i := range out {
		out[i] = 0
	}
	if need <= 0 || len(vals) == 0 {
		return
	}
	if totSum <= 0 {
		// No capacity information: spread evenly.
		rem := need
		for i := range out {
			out[i] = rem / int64(len(out)-i)
			rem -= out[i]
		}
		return
	}
	*fr = (*fr)[:0]
	var sum int64
	for i, v := range vals {
		exact := float64(v) * float64(need) / float64(totSum)
		fl := int64(exact)
		out[i] = fl
		sum += fl
		*fr = append(*fr, frac{i, exact - float64(fl)})
	}
	sort.Sort(fr)
	for k := 0; sum < need; k++ {
		out[(*fr)[k%len(*fr)].i]++
		sum++
	}
}
