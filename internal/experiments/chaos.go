package experiments

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topo"
	"repro/internal/trace"
)

// meanRollingPhi averages the SLO accountant's sliding-window
// satisfaction rate over every LC service seen.
func meanRollingPhi(s *core.System) float64 {
	svcs := s.SLO.Services()
	if len(svcs) == 0 {
		return 1
	}
	sum := 0.0
	for _, sv := range svcs {
		sum += sv.RollingPhi()
	}
	return sum / float64(len(svcs))
}

// ChaosMigration is an extension experiment: the same node/cluster
// churn program hits two otherwise-identical Tango systems, one with
// live migration + periodic defragmentation, one without. The SLO
// accountant answers "did migration help φ": under churn, draining BE
// work off pressured survivors onto cold nodes should hold rolling φ at
// or above the no-migration arm.
func ChaosMigration(cfg Config) *Result {
	tp := topo.PhysicalTestbed()
	reqs := cfg.traceLoad(tp, trace.P3, 0.45, 0.3, cfg.Seed+200, 4, 1, 1, 1)
	prog, err := chaos.Preset("churn", tp, cfg.Duration, cfg.Seed)
	if err != nil {
		panic(err)
	}

	runWith := func(tag string, defrag bool) *core.System {
		o := core.Tango(tp, cfg.Seed)
		o.TraceTag = cfg.TraceTag + tag
		p := prog
		o.Chaos = &p
		o.Verify = true
		if defrag {
			o.Defrag = &chaos.DefragConfig{}
		}
		return cfg.run(o, reqs, cfg.Duration+cfg.Drain)
	}

	with := runWith("/migrate", true)
	without := runWith("/nomigrate", false)
	with.SLO.Finalize()
	without.SLO.Finalize()

	phiWith, phiWithout := with.Metrics.LC.Rate(), without.Metrics.LC.Rate()
	rollWith, rollWithout := meanRollingPhi(with), meanRollingPhi(without)
	attributed, total := with.Chaos.AttributedEpisodes(with.SLO)

	tb := metrics.NewTable("Extension — live migration + defrag under churn ("+prog.Name+" program)",
		"scenario", "QoS rate", "rolling phi", "migrations", "abandoned", "BE throughput")
	tb.AddRowF("Tango + migration/defrag", phiWith, rollWith, with.Engine.Migrations,
		with.Metrics.LC.Abandoned, int64(with.Metrics.ThroughputSer.Sum()))
	tb.AddRowF("Tango, no migration", phiWithout, rollWithout, without.Engine.Migrations,
		without.Metrics.LC.Abandoned, int64(without.Metrics.ThroughputSer.Sum()))

	notes := []string{
		fmt.Sprintf("defrag: %d passes, %d moves; %d/%d SLO violation episodes overlap a fault window",
			with.Defrag.Passes, with.Defrag.Moves, attributed, total),
		"extension beyond the paper: KubeDSM-style defragmentation on top of Tango's dispatchers",
	}
	if errv := with.Verifier.Err(); errv != nil {
		notes = append(notes, "VERIFIER VIOLATIONS (migration arm): "+errv.Error())
	}
	if errv := without.Verifier.Err(); errv != nil {
		notes = append(notes, "VERIFIER VIOLATIONS (control arm): "+errv.Error())
	}

	return &Result{
		ID:     "chaos-migration",
		Title:  "Chaos churn with and without live migration",
		Tables: []*metrics.Table{tb},
		Values: map[string]float64{
			"phi_with":         phiWith,
			"phi_without":      phiWithout,
			"rolling_with":     rollWith,
			"rolling_without":  rollWithout,
			"migrations":       float64(with.Engine.Migrations),
			"defrag_moves":     float64(with.Defrag.Moves),
			"episodes_faulted": float64(attributed),
			"episodes_total":   float64(total),
		},
		Notes: notes,
	}
}

// ChaosSurvival runs the full fault mix (partitions, RTT storms, flash
// crowds, stalls on top of churn) against Tango with the conservation
// oracle's bookkeeping surfaced as a table: arrivals vs resolutions,
// fault windows applied/cleared, chaos-attributed SLO episodes.
func ChaosSurvival(cfg Config) *Result {
	tp := topo.PhysicalTestbed()
	reqs := cfg.traceLoad(tp, trace.P3, 0.45, 0.3, cfg.Seed+300, 4, 1, 1, 1)
	prog, err := chaos.Preset("all", tp, cfg.Duration, cfg.Seed)
	if err != nil {
		panic(err)
	}

	o := core.Tango(tp, cfg.Seed)
	o.Chaos = &prog
	o.Defrag = &chaos.DefragConfig{}
	o.Verify = true
	sys := cfg.run(o, reqs, cfg.Duration+cfg.Drain)
	sys.SLO.Finalize()

	arrived := sys.Metrics.LC.Arrived + sys.Metrics.BE.Arrived
	resolved := sys.Metrics.LC.Completed + sys.Metrics.LC.Abandoned + sys.Metrics.BE.Completed
	attributed, total := sys.Chaos.AttributedEpisodes(sys.SLO)

	tb := metrics.NewTable("Extension — chaos survival ("+prog.Name+" program, "+
		fmt.Sprintf("%d faults", len(prog.Faults))+")",
		"measure", "value")
	tb.AddRowF("requests arrived", arrived)
	tb.AddRowF("requests resolved", resolved)
	tb.AddRowF("faults applied", sys.Chaos.Applied)
	tb.AddRowF("faults cleared", sys.Chaos.Cleared)
	tb.AddRowF("flash-crowd injected", sys.Chaos.Injected)
	tb.AddRowF("live migrations", sys.Engine.Migrations)
	tb.AddRowF("QoS rate", sys.Metrics.LC.Rate())

	verdict := "clean"
	if err := sys.Verifier.Err(); err != nil {
		verdict = err.Error()
	}
	return &Result{
		ID:     "chaos-survival",
		Title:  "Full fault mix with the differential survival oracle",
		Tables: []*metrics.Table{tb},
		Values: map[string]float64{
			"arrived":          float64(arrived),
			"phi":              sys.Metrics.LC.Rate(),
			"faults":           float64(sys.Chaos.Applied),
			"migrations":       float64(sys.Engine.Migrations),
			"episodes_faulted": float64(attributed),
			"episodes_total":   float64(total),
		},
		Notes: []string{
			"verifier: " + verdict,
			fmt.Sprintf("fault program digest %s", prog.Digest()[:16]),
		},
	}
}
