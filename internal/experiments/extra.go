package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dsslc"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/res"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Failover is an extension experiment beyond the paper: it injects
// worker failures into the hottest cluster mid-run and compares Tango's
// QoS against native K8s under the same failures. Tango reroutes via
// DSS-LC's capacity graph (dead nodes drop out) and re-dispatches
// displaced requests; native K8s keeps round-robining into the hole
// until the proxy's candidate list refreshes.
func Failover(cfg Config) *Result {
	tp := topo.PhysicalTestbed()
	reqs := cfg.traceLoad(tp, trace.P3, 0.45, 0.3, cfg.Seed+100, 4, 1, 1, 1)
	failAt := cfg.Duration / 3
	recoverAt := 2 * cfg.Duration / 3

	runWith := func(o core.Options) (*core.System, core.Summary) {
		sys := core.New(cfg.apply(o))
		if cfg.OnSystem != nil {
			cfg.OnSystem(sys)
		}
		sys.Inject(reqs)
		for _, v := range tp.Cluster(0).Workers[:2] {
			sys.FailNode(v, failAt)
			sys.RecoverNode(v, recoverAt)
		}
		sys.Run(cfg.Duration + cfg.Drain)
		return sys, sys.Summarize("")
	}

	tangoSys, tango := runWith(core.Tango(tp, cfg.Seed))
	// A Tango system without failures, for the degradation baseline.
	// Its own trace tag keeps the two runs' span IDs apart in the file.
	cleanOpts := core.Tango(tp, cfg.Seed)
	cleanOpts.TraceTag = cfg.TraceTag + "/clean"
	clean := core.New(cfg.apply(cleanOpts))
	if cfg.OnSystem != nil {
		cfg.OnSystem(clean)
	}
	clean.Inject(reqs)
	clean.Run(cfg.Duration + cfg.Drain)

	tb := metrics.NewTable("Extension — failover (2 of 4 hot-cluster workers down for the middle third)",
		"scenario", "QoS rate", "abandoned", "BE throughput")
	tb.AddRowF("Tango, no failures", clean.Metrics.LC.Rate(), clean.Metrics.LC.Abandoned,
		int64(clean.Metrics.ThroughputSer.Sum()))
	tb.AddRowF("Tango, failures", tango.QoSRate, tango.Abandoned, tango.Throughput)

	// QoS trough during the failure window.
	trough := 1.0
	m := tangoSys.Metrics
	startP := int(failAt / m.Period)
	endP := int(recoverAt / m.Period)
	for i := startP; i < endP && i < len(m.QoSRateSeries.Values); i++ {
		if v := m.QoSRateSeries.Values[i]; v < trough {
			trough = v
		}
	}
	return &Result{
		ID:     "failover",
		Title:  "Failure injection and rerouting",
		Tables: []*metrics.Table{tb},
		Values: map[string]float64{
			"qos_clean":    clean.Metrics.LC.Rate(),
			"qos_failures": tango.QoSRate,
			"qos_trough":   trough,
		},
		Notes: []string{
			fmt.Sprintf("worst per-period QoS during the outage: %.3f", trough),
			"extension beyond the paper: exercises displaced-request re-dispatch and dead-node masking",
		},
	}
}

// Scalability sweeps DSS-LC's batch decision time across fleet sizes,
// extending the paper's two-point measurement (500/1000 nodes) into a
// curve, and also reports the per-decision cost of the flow solve.
func Scalability(cfg Config, measure func(func()) time.Duration) *Result {
	tb := metrics.NewTable("Extension — DSS-LC decision-time scaling",
		"nodes", "batch=100 decision time", "per-request µs")
	values := map[string]float64{}
	for _, nodes := range []int{100, 250, 500, 1000, 2000} {
		clusters := nodes / 10
		if clusters < 1 {
			clusters = 1
		}
		tp := topo.Generate(topo.GenConfig{
			Clusters: clusters, MinWorkers: 10, MaxWorkers: 10,
			MasterCap:    res.V(8000, 16384, 1000),
			WorkerCapMin: res.V(4000, 8192, 200), WorkerCapMax: res.V(16000, 32768, 1000),
			RegionSpreadDeg: 3, CenterLat: 32, CenterLon: 118,
		}, rand.New(rand.NewSource(cfg.Seed)))
		s := sim.New()
		e := engine.New(engine.Config{Sim: s, Topo: tp, Catalog: trace.DefaultCatalog(), Policy: engine.GreedyPolicy{}})
		d := dsslc.New(e, cfg.Seed)
		d.GeoRadiusKm = 1e9
		var batch []*engine.Request
		for i := 0; i < 100; i++ {
			batch = append(batch, e.NewRequest(trace.Request{
				ID: int64(i), Type: trace.TypeID(i % 5), Class: trace.LC, Cluster: 0,
			}))
		}
		el := measure(func() { d.ScheduleBatch(0, batch) })
		tb.AddRowF(nodes, el, float64(el)/float64(time.Microsecond)/100)
		values[fmt.Sprintf("ms_%d", nodes)] = float64(el) / float64(time.Millisecond)
	}
	return &Result{
		ID:     "scalability",
		Title:  "DSS-LC decision-time scaling curve",
		Tables: []*metrics.Table{tb},
		Values: values,
		Notes:  []string{"the paper's two points (500→1.99 ms, 1000→3.98 ms) extended to a sweep"},
	}
}
