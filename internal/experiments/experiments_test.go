package experiments

import (
	"strings"
	"testing"
	"time"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	return Config{
		Seed: 1, Duration: 5 * time.Second, Drain: 3 * time.Second,
		LCRate: 25, BERate: 10, VirtualClusters: 2,
	}
}

func TestFig1Shape(t *testing.T) {
	r := Fig1(tiny())
	if r.ID != "fig1" || len(r.Tables) != 1 {
		t.Fatalf("result %+v", r)
	}
	if r.Values["mean_util"] <= 0 || r.Values["mean_util"] > 0.5 {
		t.Fatalf("LC-only utilization %.3f should be low but positive", r.Values["mean_util"])
	}
	if r.Values["mean_latency_ms"] <= 0 {
		t.Fatal("no latency measured")
	}
	if !strings.Contains(r.String(), "Figure 1") {
		t.Fatal("render missing title")
	}
}

func TestFig9HRMImprovesUtilization(t *testing.T) {
	r := Fig9(tiny())
	for _, p := range []string{"P1", "P2", "P3"} {
		hrmU := r.Values[p+"_K8s+HRM_util"]
		natU := r.Values[p+"_K8s-native_util"]
		if hrmU <= 0 || natU <= 0 {
			t.Fatalf("%s: missing utilizations (%v, %v)", p, hrmU, natU)
		}
		if hrmU < natU {
			t.Errorf("%s: HRM util %.3f below native %.3f", p, hrmU, natU)
		}
	}
}

func TestDVPAMicroRatio(t *testing.T) {
	r := DVPAMicro(tiny())
	if r.Values["dvpa_ms"] != 23 {
		t.Fatalf("dvpa latency = %v ms", r.Values["dvpa_ms"])
	}
	if r.Values["ratio"] < 50 {
		t.Fatalf("delete-and-rebuild only %vx slower; paper reports ~100x", r.Values["ratio"])
	}
}

func TestFig10ReassuranceHelps(t *testing.T) {
	r := Fig10(tiny())
	helped := 0
	for _, p := range []string{"P1", "P2", "P3"} {
		if r.Values[p+"_qos_with"] >= r.Values[p+"_qos_without"] {
			helped++
		}
	}
	if helped < 2 {
		t.Fatalf("re-assurance helped only %d/3 patterns: %v", helped, r.Values)
	}
}

func TestFig11abDSSLCWins(t *testing.T) {
	r := Fig11ab(tiny())
	dss := r.Values["DSS-LC_qos"]
	for _, other := range []string{"scoring", "load-greedy", "k8s-native"} {
		if dss+0.02 < r.Values[other+"_qos"] {
			t.Errorf("DSS-LC %.3f below %s %.3f", dss, other, r.Values[other+"_qos"])
		}
	}
}

func TestFig11cDCGBECompetitive(t *testing.T) {
	r := Fig11c(tiny())
	dcg := r.Values["DCG-BE_tput"]
	if dcg <= 0 {
		t.Fatal("DCG-BE throughput missing")
	}
	// The learned scheduler must at least beat blind round-robin.
	if dcg < r.Values["k8s-native_tput"]*0.9 {
		t.Errorf("DCG-BE %v below 0.9x k8s-native %v", dcg, r.Values["k8s-native_tput"])
	}
}

func TestFig11dAllEncodersRun(t *testing.T) {
	r := Fig11d(tiny())
	for _, enc := range []string{"GraphSAGE-A2C", "GCN-A2C", "GAT-A2C", "Native-A2C"} {
		if r.Values[enc] <= 0 {
			t.Errorf("%s produced no throughput", enc)
		}
	}
}

func TestFig12MatrixComplete(t *testing.T) {
	cfg := tiny()
	cfg.Duration = 4 * time.Second // 16 runs; keep small
	r := Fig12(cfg)
	for _, lc := range LCNames {
		for _, be := range BENames {
			if _, ok := r.Values[lc+"+"+be+"_qos"]; !ok {
				t.Fatalf("missing pairing %s+%s", lc, be)
			}
		}
	}
	if len(r.Tables) != 2 {
		t.Fatalf("tables = %d", len(r.Tables))
	}
}

func TestFig13TangoLeads(t *testing.T) {
	r := Fig13(tiny())
	for _, sysName := range []string{"Tango", "CERES", "DSACO"} {
		if r.Values[sysName+"_qos"] <= 0 {
			t.Fatalf("%s missing QoS", sysName)
		}
	}
	if r.Values["Tango_tput"] < r.Values["CERES_tput"] {
		t.Errorf("Tango throughput %v below CERES %v", r.Values["Tango_tput"], r.Values["CERES_tput"])
	}
}

func TestDecisionTimeScalesSubQuadratically(t *testing.T) {
	r := DecisionTime(tiny(), func(f func()) time.Duration {
		start := time.Now()
		f()
		return time.Since(start)
	})
	d500 := r.Values["decision_ms_500"]
	d1000 := r.Values["decision_ms_1000"]
	if d500 <= 0 || d1000 <= 0 {
		t.Fatalf("decision times missing: %v %v", d500, d1000)
	}
	// Paper reports 1.99ms/3.98ms; allow a generous envelope but insist
	// on milliseconds, not seconds.
	if d1000 > 500 {
		t.Fatalf("1000-node decision took %.1f ms", d1000)
	}
}

func TestAblations(t *testing.T) {
	cfg := tiny()
	m := AblationMasking(cfg)
	if m.Values["tput_masking_on"] <= 0 {
		t.Fatal("masking ablation missing data")
	}
	rw := AblationReward(cfg)
	if rw.Values["tput_eta_1"] <= 0 || rw.Values["tput_eta_0"] <= 0 {
		t.Fatal("reward ablation missing data")
	}
	p := AblationPreemption(cfg)
	if p.Values["qos_preempt_on"] < p.Values["qos_preempt_off"] {
		t.Errorf("preemption off should not beat on: %v", p.Values)
	}
}

func TestMakeSchedPanicsOnUnknown(t *testing.T) {
	for _, fn := range []func(){
		func() { MakeLCSched("nope") },
		func() { MakeBESched("nope") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for unknown scheduler")
				}
			}()
			fn()
		}()
	}
}

func TestFailoverExperiment(t *testing.T) {
	r := Failover(tiny())
	if r.Values["qos_failures"] <= 0 || r.Values["qos_clean"] <= 0 {
		t.Fatalf("missing values: %v", r.Values)
	}
	// Failures may cost some QoS but must not collapse the system.
	if r.Values["qos_failures"] < 0.5 {
		t.Fatalf("failover QoS %.3f collapsed", r.Values["qos_failures"])
	}
}

func TestScalabilityMonotoneEnough(t *testing.T) {
	r := Scalability(tiny(), func(f func()) time.Duration {
		start := time.Now()
		f()
		return time.Since(start)
	})
	if r.Values["ms_100"] <= 0 || r.Values["ms_2000"] <= 0 {
		t.Fatalf("missing points: %v", r.Values)
	}
	if r.Values["ms_2000"] > 1000 {
		t.Fatalf("2000-node decision took %.0f ms", r.Values["ms_2000"])
	}
}
