// Package experiments regenerates every table and figure of the paper's
// evaluation (§7). Each Fig* function runs the corresponding experiment
// on the simulated edge-cloud testbed and returns text tables with the
// same rows/series the paper reports, plus a machine-readable value map
// used by EXPERIMENTS.md and the benchmark harness.
//
// The Quick configuration keeps runs laptop-fast; Full stretches the
// traces and the dual-space scale toward the paper's setup.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/baselines"
	"repro/internal/cgroup"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dcgbe"
	"repro/internal/dsslc"
	"repro/internal/engine"
	"repro/internal/hrm"
	"repro/internal/k8s"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/res"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Config scales the experiments.
type Config struct {
	Seed     int64
	Duration time.Duration // workload length
	Drain    time.Duration // extra virtual time after arrivals stop
	LCRate   float64       // system-wide LC requests/second
	BERate   float64       // system-wide BE requests/second
	// VirtualClusters sizes the Figure 13 dual-space run (paper: 100).
	VirtualClusters int
	// TraceSink, when set, receives the lifecycle events of every system
	// the experiment runs (see internal/obs). TraceTag labels the events
	// so runs sharing one sink stay distinguishable.
	TraceSink obs.Sink
	TraceTag  string
	// OnSystem, when set, observes every system right after construction
	// and before any request is injected — the hook a live telemetry
	// server uses to point /metrics at the run currently executing.
	OnSystem func(*core.System)
	// Shards, when >1, partitions LC scheduling by region through the
	// sharded layer (internal/shard). It only affects systems running
	// the default DSS-LC scheduler — baselines that install their own
	// MakeLC are untouched.
	Shards int
	// Chaos, when non-empty, arms a chaos.Preset fault program of that
	// name (churn | partition | flash | all) over every system the
	// experiment runs; ChaosSeed seeds the fault draw (0 = Seed).
	// Defrag adds the periodic BE defragmentation pass. Experiments
	// that manage their own programs (ChaosMigration, ChaosSurvival)
	// keep theirs — apply never overrides an explicit Options.Chaos.
	Chaos     string
	ChaosSeed int64
	Defrag    bool
}

// apply threads the experiment-level observability settings into one
// system's options.
func (c Config) apply(o core.Options) core.Options {
	o.TraceSink = c.TraceSink
	if o.TraceTag == "" {
		o.TraceTag = c.TraceTag
	}
	if c.Shards > 0 {
		o.LCShards = c.Shards
	}
	if c.Chaos != "" && o.Chaos == nil {
		seed := c.ChaosSeed
		if seed == 0 {
			seed = c.Seed
		}
		prog, err := chaos.Preset(c.Chaos, o.Topo, c.Duration, seed)
		if err != nil {
			panic(err)
		}
		o.Chaos = &prog
	}
	if c.Defrag && o.Defrag == nil {
		o.Defrag = &chaos.DefragConfig{}
	}
	return o
}

// Quick returns a configuration that keeps the whole suite fast.
func Quick() Config {
	return Config{
		Seed: 1, Duration: 16 * time.Second, Drain: 8 * time.Second,
		LCRate: 40, BERate: 15, VirtualClusters: 12,
	}
}

// Full returns a configuration closer to the paper's scale.
func Full() Config {
	return Config{
		Seed: 1, Duration: 96 * time.Second, Drain: 16 * time.Second,
		LCRate: 80, BERate: 30, VirtualClusters: 100,
	}
}

// Result is one regenerated figure.
type Result struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	Values map[string]float64
	Notes  []string
}

// String renders the result for terminal output.
func (r *Result) String() string {
	out := fmt.Sprintf("### %s — %s\n", r.ID, r.Title)
	for _, t := range r.Tables {
		out += t.String() + "\n"
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

func (c Config) clustersOf(t *topo.Topology) []topo.ClusterID {
	var out []topo.ClusterID
	for _, cl := range t.Clusters {
		out = append(out, cl.ID)
	}
	return out
}

func (c Config) trace(t *topo.Topology, p trace.Pattern, seed int64) []trace.Request {
	cfg := trace.DefaultGenConfig(c.clustersOf(t), p, c.Duration, seed)
	cfg.LCRatePerSec = c.LCRate
	cfg.BERatePerSec = c.BERate
	return trace.Generate(cfg)
}

// ratesFor converts offered-load fractions of the topology's total CPU
// into arrival rates, using the catalog's mean per-request work. The
// experiments size their workloads this way so the co-location pressure
// matches the paper's regardless of topology scale.
func ratesFor(t *topo.Topology, cat *trace.Catalog, lcFrac, beFrac float64) (lcRate, beRate float64) {
	totalCores := float64(t.TotalCapacity().MilliCPU) / 1000
	var lcWork, beWork float64 // core-seconds per request
	var lcN, beN int
	for _, st := range cat.Types {
		w := float64(st.Work) / 1e6
		if st.Class == trace.LC {
			lcWork += w
			lcN++
		} else {
			beWork += w
			beN++
		}
	}
	if lcN > 0 && lcWork > 0 {
		lcRate = lcFrac * totalCores / (lcWork / float64(lcN))
	}
	if beN > 0 && beWork > 0 {
		beRate = beFrac * totalCores / (beWork / float64(beN))
	}
	return lcRate, beRate
}

// traceLoad generates a trace offering the given fractions of total CPU.
// Optional weights skew the per-cluster arrival mix (geographically
// uneven load, §1); without them the generator draws random weights.
func (c Config) traceLoad(t *topo.Topology, p trace.Pattern, lcFrac, beFrac float64, seed int64, weights ...float64) []trace.Request {
	cat := trace.DefaultCatalog()
	lcR, beR := ratesFor(t, cat, lcFrac, beFrac)
	cfg := trace.DefaultGenConfig(c.clustersOf(t), p, c.Duration, seed)
	cfg.LCRatePerSec = lcR
	cfg.BERatePerSec = beR
	if len(weights) == len(cfg.Clusters) {
		cfg.ClusterWeights = weights
	}
	return trace.Generate(cfg)
}

// run executes one system over a request trace and returns it finished.
func (c Config) run(o core.Options, reqs []trace.Request, until time.Duration) *core.System {
	sys := core.New(c.apply(o))
	if c.OnSystem != nil {
		c.OnSystem(sys)
	}
	sys.Inject(reqs)
	sys.Run(until)
	return sys
}

// ---- scheduler factories for the pairing experiments ----

// LCNames lists the LC algorithms of Figure 11(a,b)/12.
var LCNames = []string{"DSS-LC", "scoring", "load-greedy", "k8s-native"}

// BENames lists the BE algorithms of Figure 11(c)/12.
var BENames = []string{"DCG-BE", "GNN-SAC", "load-greedy", "k8s-native"}

// MakeLCSched returns the factory for a named LC algorithm.
func MakeLCSched(name string) func(e *engine.Engine, seed int64) any {
	switch name {
	case "DSS-LC":
		return func(e *engine.Engine, seed int64) any { return dsslc.New(e, seed) }
	case "scoring":
		return func(e *engine.Engine, seed int64) any { return sched.NewScoring(e.Topology()) }
	case "load-greedy":
		return func(e *engine.Engine, seed int64) any { return sched.LoadGreedy{} }
	case "k8s-native":
		return func(e *engine.Engine, seed int64) any { return &sched.RoundRobin{} }
	}
	panic("experiments: unknown LC scheduler " + name)
}

// MakeBESched returns the factory for a named BE algorithm.
func MakeBESched(name string) func(e *engine.Engine, seed int64) any {
	switch name {
	case "DCG-BE":
		return func(e *engine.Engine, seed int64) any { return dcgbe.New(e, seed) }
	case "GNN-SAC":
		return func(e *engine.Engine, seed int64) any {
			return dcgbe.NewVariant(e, dcgbe.Variant{Agent: "sac"}, seed)
		}
	case "load-greedy":
		return func(e *engine.Engine, seed int64) any { return sched.LoadGreedy{} }
	case "k8s-native":
		return func(e *engine.Engine, seed int64) any { return &sched.RoundRobin{} }
	}
	panic("experiments: unknown BE scheduler " + name)
}

// ---- Figure 1 ----

// Fig1 reproduces the motivating measurement: LC services deployed alone
// on over-provisioned edge-clouds show <20% average utilization while
// responding within ~300 ms targets.
func Fig1(cfg Config) *Result {
	tp := topo.PhysicalTestbed()
	o := core.Tango(tp, cfg.Seed)
	c := trace.DefaultGenConfig(cfg.clustersOf(tp), trace.Diurnal, cfg.Duration, cfg.Seed)
	// LC services deployed alone: provisioned for peak, so the average
	// offered load is a small fraction of capacity.
	lcR, _ := ratesFor(tp, trace.DefaultCatalog(), 0.13, 0)
	c.LCRatePerSec = lcR
	c.BERatePerSec = 0
	c.PeriodicCycle = cfg.Duration // one "day" across the run
	sys := cfg.run(o, trace.Generate(c), cfg.Duration+cfg.Drain)

	util := sys.Metrics.UtilSeries
	tb := metrics.NewTable("Figure 1 — industrial edge-cloud measurement (LC only)",
		"metric", "value")
	tb.AddRowF("mean utilization %", util.Mean()*100)
	maxU, minU := 0.0, 1.0
	for _, v := range util.Values {
		if v > maxU {
			maxU = v
		}
		if v < minU {
			minU = v
		}
	}
	tb.AddRowF("min period util %", minU*100)
	tb.AddRowF("max period util %", maxU*100)
	tb.AddRowF("mean LC latency ms", sys.Metrics.MeanLCLatencyMs())
	tb.AddRowF("QoS satisfaction", sys.Metrics.LC.Rate())

	return &Result{
		ID:     "fig1",
		Title:  "Measurement of industrial edge-clouds",
		Tables: []*metrics.Table{tb},
		Values: map[string]float64{
			"mean_util":       util.Mean(),
			"mean_latency_ms": sys.Metrics.MeanLCLatencyMs(),
		},
		Notes: []string{
			"paper: average utilization below 20%; most LC requests answered within ~300 ms",
		},
	}
}

// ---- Figure 9 ----

// Fig9 compares K8s with Tango's HRM against native K8s under the three
// workload patterns, reporting per-class and overall utilization.
func Fig9(cfg Config) *Result {
	tp := topo.PhysicalTestbed()
	tb := metrics.NewTable("Figure 9 — HRM vs K8s-native utilization",
		"pattern", "system", "LC util %", "BE util %", "overall util %", "QoS rate")
	values := map[string]float64{}
	for _, p := range []trace.Pattern{trace.P1, trace.P2, trace.P3} {
		// Co-location pressure: LC averages a quarter of the CPU, BE
		// offers a standing backlog (~85%) that elasticity can soak.
		reqs := cfg.traceLoad(tp, p, 0.25, 0.85, cfg.Seed+int64(p))
		// K8s with HRM: HRM allocation, default K8s scheduling (§7.1).
		hrmOpts := core.Options{
			Topo: tp, Seed: cfg.Seed,
			Policy:       hrm.NewRegulations(),
			MakeLC:       MakeLCSched("k8s-native"),
			MakeBE:       MakeBESched("k8s-native"),
			Reassure:     true,
			Boost:        true,
			CentralBE:    false,
			ScaleLatency: hrm.DVPAOpLatency,
		}
		hrmSys := cfg.run(hrmOpts, reqs, cfg.Duration+cfg.Drain)
		natSys := cfg.run(baselines.K8sNative(tp, reqs, cfg.Seed), reqs, cfg.Duration+cfg.Drain)
		for _, e := range []struct {
			name string
			sys  *core.System
		}{{"K8s+HRM", hrmSys}, {"K8s-native", natSys}} {
			m := e.sys.Metrics
			tb.AddRowF(p.String(), e.name,
				m.LCUtilSeries.Mean()*100, m.BEUtilSeries.Mean()*100,
				m.UtilSeries.Mean()*100, m.LC.Rate())
			values[fmt.Sprintf("%s_%s_util", p, e.name)] = m.UtilSeries.Mean()
		}
	}
	imp := values["P3_K8s+HRM_util"] / nonzero(values["P3_K8s-native_util"])
	return &Result{
		ID:     "fig9",
		Title:  "HRM effectiveness under workload patterns P1–P3",
		Tables: []*metrics.Table{tb},
		Values: values,
		Notes: []string{
			fmt.Sprintf("P3 overall utilization ratio HRM/native = %.2fx (paper: HRM clearly higher, Fig. 9(d))", imp),
		},
	}
}

// DVPAMicro reproduces the §7.1 scaling micro-measurement: one D-VPA
// operation (~23 ms, no interruption) vs the native VPA delete-and-
// rebuild (~100× slower, with downtime).
func DVPAMicro(cfg Config) *Result {
	s := sim.New()
	store := k8s.NewStore(s)
	kl := k8s.NewKubelet(s, store, 1, res.V(8000, 16384, 0))
	var tr *obs.Tracer
	if cfg.TraceSink != nil {
		tr = obs.NewTracer(s.Now, cfg.TraceSink)
		tr.SetTag(cfg.TraceTag)
		store.SetTracer(tr)
		kl.Node().CGroups.SetTracer(tr)
	}
	pod, err := store.CreatePod(k8s.PodSpec{
		Name: "svc", QoS: cgroup.Burstable,
		Request: res.V(1000, 1024, 0), Limit: res.V(1000, 1024, 0), Node: 1,
	})
	if err != nil {
		panic(err)
	}
	if err := kl.RunPod(pod, nil); err != nil {
		panic(err)
	}
	s.Run()

	vpa := &k8s.NativeVPA{Kubelet: kl, Store: store}
	start := s.Now()
	rebuilt := false
	downtime, err := vpa.Resize(pod, res.V(2000, 2048, 0), func() { rebuilt = true })
	if err != nil {
		panic(err)
	}
	s.Run()
	wall := s.Now() - start
	if !rebuilt {
		panic("experiments: native VPA never rebuilt")
	}

	d := hrm.NewDVPA()
	d.Tracer, d.Now = tr, s.Now
	np, _ := store.GetPod("svc")
	lat, err := d.Resize(kl.Node().CGroups, np.PodGroup, np.ContainerGroup, res.V(1500, 1500, 0))
	if err != nil {
		panic(err)
	}

	tb := metrics.NewTable("§7.1 — single vertical scaling operation",
		"mechanism", "latency", "interrupts container")
	tb.AddRowF("Tango D-VPA", lat, "no")
	tb.AddRowF("K8s VPA (delete-and-rebuild)", downtime, "yes")
	ratio := float64(downtime) / float64(lat)
	return &Result{
		ID:     "dvpa",
		Title:  "D-VPA scaling operation vs native VPA",
		Tables: []*metrics.Table{tb},
		Values: map[string]float64{
			"dvpa_ms":   float64(lat) / float64(time.Millisecond),
			"native_ms": float64(downtime) / float64(time.Millisecond),
			"ratio":     ratio,
		},
		Notes: []string{
			fmt.Sprintf("ratio = %.0fx (paper: 23 ms, ~100x faster than delete-and-rebuild)", ratio),
			fmt.Sprintf("wall downtime measured on the virtual clock: %v", wall),
		},
	}
}

// ---- Figure 10 ----

// Fig10 measures the QoS re-assurance mechanism: QoS rate and BE
// throughput with and without it, under P1–P3.
func Fig10(cfg Config) *Result {
	tp := topo.PhysicalTestbed()
	tb := metrics.NewTable("Figure 10 — QoS re-assurance on/off",
		"pattern", "re-assurance", "QoS rate", "BE throughput", "norm QoS", "norm tput")
	values := map[string]float64{}
	for _, p := range []trace.Pattern{trace.P1, trace.P2, trace.P3} {
		reqs := cfg.traceLoad(tp, p, 0.5, 0.5, cfg.Seed+10+int64(p))
		var qos [2]float64
		var tput [2]float64
		for i, reassure := range []bool{true, false} {
			o := core.Tango(tp, cfg.Seed)
			o.Reassure = reassure
			sys := cfg.run(o, reqs, cfg.Duration+cfg.Drain)
			qos[i] = sys.Metrics.LC.Rate()
			tput[i] = sys.Metrics.ThroughputSer.Sum()
		}
		maxQ := maxf(qos[0], qos[1])
		maxT := maxf(tput[0], tput[1])
		tb.AddRowF(p.String(), "with", qos[0], int64(tput[0]), qos[0]/nonzero(maxQ), tput[0]/nonzero(maxT))
		tb.AddRowF(p.String(), "without", qos[1], int64(tput[1]), qos[1]/nonzero(maxQ), tput[1]/nonzero(maxT))
		values[p.String()+"_qos_with"] = qos[0]
		values[p.String()+"_qos_without"] = qos[1]
	}
	return &Result{
		ID:     "fig10",
		Title:  "QoS-guarantee satisfaction and throughput with/without re-assurance",
		Tables: []*metrics.Table{tb},
		Values: values,
		Notes:  []string{"paper: re-assurance lifts LC QoS across all three patterns at modest BE cost"},
	}
}

// ---- Figure 11(a,b) ----

// Fig11ab compares LC scheduling algorithms (BE fixed to k8s-native):
// QoS rate, tail latency and abandoned requests.
func Fig11ab(cfg Config) *Result {
	tp := topo.PhysicalTestbed()
	reqs := cfg.traceLoad(tp, trace.P3, 0.6, 0.2, cfg.Seed+20)
	tb := metrics.NewTable("Figure 11(a,b) — LC scheduling algorithms",
		"algorithm", "QoS rate", "mean latency ms", "p95 latency ms", "abandoned")
	values := map[string]float64{}
	for _, name := range LCNames {
		o := core.Tango(tp, cfg.Seed)
		o.MakeLC = MakeLCSched(name)
		o.MakeBE = MakeBESched("k8s-native")
		sys := cfg.run(o, reqs, cfg.Duration+cfg.Drain)
		m := sys.Metrics
		p95 := m.TailLatencySer.Mean()
		tb.AddRowF(name, m.LC.Rate(), m.MeanLCLatencyMs(), p95, m.LC.Abandoned)
		values[name+"_qos"] = m.LC.Rate()
		values[name+"_abandoned"] = float64(m.LC.Abandoned)
	}
	return &Result{
		ID:     "fig11ab",
		Title:  "DSS-LC vs load-greedy, k8s-native, scoring",
		Tables: []*metrics.Table{tb},
		Values: values,
		Notes:  []string{"paper: DSS-LC best on all three metrics and most stable"},
	}
}

// DecisionTime measures DSS-LC's batch decision latency at 500 and 1000
// nodes (paper: 1.99 ms and 3.98 ms).
func DecisionTime(cfg Config, measure func(func()) time.Duration) *Result {
	tb := metrics.NewTable("§7.2 — DSS-LC decision time", "nodes", "decision time")
	values := map[string]float64{}
	for _, nodes := range []int{500, 1000} {
		clusters := nodes / 10
		tp := topo.Generate(topo.GenConfig{
			Clusters: clusters, MinWorkers: 10, MaxWorkers: 10,
			MasterCap:    res.V(8000, 16384, 1000),
			WorkerCapMin: res.V(4000, 8192, 200), WorkerCapMax: res.V(16000, 32768, 1000),
			RegionSpreadDeg: 3, CenterLat: 32, CenterLon: 118,
		}, rand.New(rand.NewSource(cfg.Seed)))
		s := sim.New()
		e := engine.New(engine.Config{Sim: s, Topo: tp, Catalog: trace.DefaultCatalog(), Policy: engine.GreedyPolicy{}})
		d := dsslc.New(e, cfg.Seed)
		d.GeoRadiusKm = 1e9 // every node is a candidate: worst case
		var batch []*engine.Request
		for i := 0; i < 100; i++ {
			batch = append(batch, e.NewRequest(trace.Request{
				ID: int64(i), Type: trace.TypeID(i % 5), Class: trace.LC, Cluster: 0,
			}))
		}
		el := measure(func() { d.ScheduleBatch(0, batch) })
		tb.AddRowF(nodes, el)
		values[fmt.Sprintf("decision_ms_%d", nodes)] = float64(el) / float64(time.Millisecond)
	}
	return &Result{
		ID:     "dsslc-decision",
		Title:  "DSS-LC decision time vs node count",
		Tables: []*metrics.Table{tb},
		Values: values,
		Notes:  []string{"paper: 1.99 ms at 500 nodes, 3.98 ms at 1000 nodes (<2% of QoS target)"},
	}
}

// heteroTopo builds the heterogeneous multi-cluster topology used by the
// BE-scheduling experiments: 6 clusters of 3-20 workers with 4-16 CPUs
// (the §6.1 virtual-cluster shape). Capacity-blind baselines overload
// the small nodes here, which is exactly the edge heterogeneity §1
// motivates.
func heteroTopo(seed int64) *topo.Topology {
	return topo.Generate(topo.DefaultGenConfig(6), rand.New(rand.NewSource(seed+300)))
}

var heteroWeights = []float64{5, 3, 2, 1, 1, 1}

// ---- Figure 11(c) ----

// Fig11c compares BE scheduling algorithms (LC fixed to k8s-native):
// long-term BE throughput.
func Fig11c(cfg Config) *Result {
	tp := heteroTopo(cfg.Seed)
	reqs := cfg.traceLoad(tp, trace.P3, 0.5, 1.1, cfg.Seed+30, heteroWeights...)
	tb := metrics.NewTable("Figure 11(c) — BE scheduling algorithms",
		"algorithm", "BE throughput", "normalized")
	values := map[string]float64{}
	best := 0.0
	tputs := map[string]float64{}
	for _, name := range BENames {
		o := core.Tango(tp, cfg.Seed)
		o.MakeLC = MakeLCSched("k8s-native")
		o.MakeBE = MakeBESched(name)
		sys := cfg.run(o, reqs, cfg.Duration+cfg.Drain)
		tputs[name] = sys.Metrics.ThroughputSer.Sum()
		if tputs[name] > best {
			best = tputs[name]
		}
	}
	for _, name := range BENames {
		tb.AddRowF(name, int64(tputs[name]), tputs[name]/nonzero(best))
		values[name+"_tput"] = tputs[name]
	}
	return &Result{
		ID:     "fig11c",
		Title:  "DCG-BE vs GNN-SAC, load-greedy, k8s-native",
		Tables: []*metrics.Table{tb},
		Values: values,
		Notes:  []string{"paper: all beat k8s-native; DCG-BE ~9.3% over GNN-SAC"},
	}
}

// ---- Figure 11(d) ----

// Fig11d ablates the GNN structure inside DCG-BE.
func Fig11d(cfg Config) *Result {
	tp := heteroTopo(cfg.Seed)
	reqs := cfg.traceLoad(tp, trace.P3, 0.5, 1.1, cfg.Seed+40, heteroWeights...)
	encoders := []struct{ label, enc string }{
		{"GraphSAGE-A2C", "sage"}, {"GCN-A2C", "gcn"}, {"GAT-A2C", "gat"}, {"Native-A2C", "native"},
	}
	tb := metrics.NewTable("Figure 11(d) — GNN structures in DCG-BE",
		"encoder", "BE throughput", "normalized")
	values := map[string]float64{}
	best := 0.0
	tputs := map[string]float64{}
	for _, enc := range encoders {
		o := core.Tango(tp, cfg.Seed)
		o.MakeLC = MakeLCSched("k8s-native")
		encName := enc.enc
		o.MakeBE = func(e *engine.Engine, seed int64) any {
			return dcgbe.NewVariant(e, dcgbe.Variant{Encoder: encName}, seed)
		}
		sys := cfg.run(o, reqs, cfg.Duration+cfg.Drain)
		tputs[enc.label] = sys.Metrics.ThroughputSer.Sum()
		if tputs[enc.label] > best {
			best = tputs[enc.label]
		}
	}
	for _, enc := range encoders {
		tb.AddRowF(enc.label, int64(tputs[enc.label]), tputs[enc.label]/nonzero(best))
		values[enc.label] = tputs[enc.label]
	}
	return &Result{
		ID:     "fig11d",
		Title:  "DCG-BE with different GNN structures",
		Tables: []*metrics.Table{tb},
		Values: values,
		Notes:  []string{"paper: GraphSAGE best via inductive representation learning"},
	}
}

// ---- Figure 12 ----

// Fig12 runs the 4×4 algorithm pairing matrix.
func Fig12(cfg Config) *Result {
	tp := heteroTopo(cfg.Seed)
	reqs := cfg.traceLoad(tp, trace.P3, 0.45, 1.0, cfg.Seed+50, heteroWeights...)
	qosT := metrics.NewTable("Figure 12(a) — QoS rate by pairing (rows: LC, cols: BE)",
		append([]string{"LC \\ BE"}, BENames...)...)
	tputT := metrics.NewTable("Figure 12(b) — BE throughput by pairing",
		append([]string{"LC \\ BE"}, BENames...)...)
	values := map[string]float64{}
	for _, lc := range LCNames {
		qrow := []any{lc}
		trow := []any{lc}
		for _, be := range BENames {
			o := core.Tango(tp, cfg.Seed)
			o.MakeLC = MakeLCSched(lc)
			o.MakeBE = MakeBESched(be)
			sys := cfg.run(o, reqs, cfg.Duration+cfg.Drain)
			q := sys.Metrics.LC.Rate()
			tp2 := sys.Metrics.ThroughputSer.Sum()
			qrow = append(qrow, q)
			trow = append(trow, int64(tp2))
			values[lc+"+"+be+"_qos"] = q
			values[lc+"+"+be+"_tput"] = tp2
		}
		qosT.AddRowF(qrow...)
		tputT.AddRowF(trow...)
	}
	return &Result{
		ID:     "fig12",
		Title:  "Algorithm pairing analysis",
		Tables: []*metrics.Table{qosT, tputT},
		Values: values,
		Notes: []string{
			"paper: DSS-LC ~+8.2% QoS over other LC algorithms; DSS-LC+DCG-BE the best pair (+5.9% over DCG-BE+k8s-native)",
		},
	}
}

// ---- Figure 13 ----

// Fig13 runs the large-scale dual-space comparison: Tango vs CERES vs
// DSACO.
func Fig13(cfg Config) *Result {
	tp := topo.DualSpace(cfg.VirtualClusters, cfg.Seed)
	reqs := cfg.traceLoad(tp, trace.Diurnal, 0.4, 0.7, cfg.Seed+60)
	tb := metrics.NewTable("Figure 13 — large-scale hybrid edge-clouds",
		"system", "util %", "QoS rate", "BE throughput", "abandoned")
	type row struct {
		name string
		opts core.Options
	}
	rows := []row{
		{"Tango", core.Tango(tp, cfg.Seed)},
		{"CERES", baselines.CERES(tp, cfg.Seed)},
		{"DSACO", baselines.DSACO(tp, cfg.Seed)},
	}
	values := map[string]float64{}
	for _, r := range rows {
		sys := cfg.run(r.opts, reqs, cfg.Duration+cfg.Drain)
		m := sys.Metrics
		tput := m.ThroughputSer.Sum()
		tb.AddRowF(r.name, m.UtilSeries.Mean()*100, m.LC.Rate(), int64(tput), m.LC.Abandoned)
		values[r.name+"_util"] = m.UtilSeries.Mean()
		values[r.name+"_qos"] = m.LC.Rate()
		values[r.name+"_tput"] = tput
	}
	notes := []string{
		fmt.Sprintf("util: Tango/CERES = %.2fx (paper: +36.9%%)",
			values["Tango_util"]/nonzero(values["CERES_util"])),
		fmt.Sprintf("QoS: Tango-DSACO = %+.1f pp (paper: +11.3%%)",
			100*(values["Tango_qos"]-values["DSACO_qos"])),
		fmt.Sprintf("throughput: Tango/CERES = %.2fx (paper: +47.6%%)",
			values["Tango_tput"]/nonzero(values["CERES_tput"])),
	}
	return &Result{
		ID:     "fig13",
		Title:  "Tango vs CERES vs DSACO at scale",
		Tables: []*metrics.Table{tb},
		Values: values,
		Notes:  notes,
	}
}

// ---- Ablations (DESIGN.md §4) ----

// AblationMasking toggles DCG-BE's policy context filtering.
func AblationMasking(cfg Config) *Result {
	tp := heteroTopo(cfg.Seed)
	reqs := cfg.traceLoad(tp, trace.P3, 0.5, 1.1, cfg.Seed+70, heteroWeights...)
	tb := metrics.NewTable("Ablation — DCG-BE policy context filtering",
		"masking", "BE throughput", "QoS rate")
	values := map[string]float64{}
	for _, masked := range []bool{true, false} {
		o := core.Tango(tp, cfg.Seed)
		m := masked
		o.MakeBE = func(e *engine.Engine, seed int64) any {
			s := dcgbe.New(e, seed)
			s.DisableMasking = !m
			return s
		}
		sys := cfg.run(o, reqs, cfg.Duration+cfg.Drain)
		label := "on"
		if !masked {
			label = "off"
		}
		tb.AddRowF(label, int64(sys.Metrics.ThroughputSer.Sum()), sys.Metrics.LC.Rate())
		values["tput_masking_"+label] = sys.Metrics.ThroughputSer.Sum()
	}
	return &Result{ID: "ablation-masking", Title: "Context filtering ablation",
		Tables: []*metrics.Table{tb}, Values: values}
}

// AblationReward toggles the long-term reward term (η).
func AblationReward(cfg Config) *Result {
	tp := heteroTopo(cfg.Seed)
	reqs := cfg.traceLoad(tp, trace.P3, 0.5, 1.1, cfg.Seed+80, heteroWeights...)
	tb := metrics.NewTable("Ablation — DCG-BE reward split r_short + η·r_long",
		"eta", "BE throughput")
	values := map[string]float64{}
	for _, eta := range []float64{1, 0} {
		o := core.Tango(tp, cfg.Seed)
		etaV := eta
		o.MakeBE = func(e *engine.Engine, seed int64) any {
			s := dcgbe.New(e, seed)
			s.Eta = etaV
			return s
		}
		sys := cfg.run(o, reqs, cfg.Duration+cfg.Drain)
		tb.AddRowF(eta, int64(sys.Metrics.ThroughputSer.Sum()))
		values[fmt.Sprintf("tput_eta_%g", eta)] = sys.Metrics.ThroughputSer.Sum()
	}
	return &Result{ID: "ablation-reward", Title: "Reward split ablation",
		Tables: []*metrics.Table{tb}, Values: values}
}

// AblationPreemption toggles HRM's BE preemption.
func AblationPreemption(cfg Config) *Result {
	tp := topo.PhysicalTestbed()
	reqs := cfg.traceLoad(tp, trace.P1, 0.5, 0.6, cfg.Seed+90)
	tb := metrics.NewTable("Ablation — §4.1 preemption of BE by LC",
		"preemption", "QoS rate", "abandoned")
	values := map[string]float64{}
	for _, on := range []bool{true, false} {
		o := core.Tango(tp, cfg.Seed)
		pol := hrm.NewRegulations()
		pol.DisablePreemption = !on
		o.Policy = pol
		sys := cfg.run(o, reqs, cfg.Duration+cfg.Drain)
		label := "on"
		if !on {
			label = "off"
		}
		tb.AddRowF(label, sys.Metrics.LC.Rate(), sys.Metrics.LC.Abandoned)
		values["qos_preempt_"+label] = sys.Metrics.LC.Rate()
	}
	return &Result{ID: "ablation-preemption", Title: "Preemption ablation",
		Tables: []*metrics.Table{tb}, Values: values}
}

// All runs the complete suite (DecisionTime excluded: it needs a
// wall-clock measurer, see cmd/tango-bench).
func All(cfg Config) []*Result {
	return []*Result{
		Fig1(cfg), Fig9(cfg), DVPAMicro(cfg), Fig10(cfg),
		Fig11ab(cfg), Fig11c(cfg), Fig11d(cfg), Fig12(cfg), Fig13(cfg),
		Failover(cfg),
		AblationMasking(cfg), AblationReward(cfg), AblationPreemption(cfg),
	}
}

func nonzero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
