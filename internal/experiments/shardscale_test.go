package experiments

import (
	"testing"
	"time"
)

// TestShardRoundPoint exercises one tiny scale-suite point per shard
// count: same fleet and request population regardless of K, every
// round completes, and the measure hook sees exactly one invocation
// (the point is defined as a cold round — a second call would ride the
// warm-start memo).
func TestShardRoundPoint(t *testing.T) {
	const nodes = 400 // 20 clusters x 20 workers
	for _, k := range []int{1, 2, 4} {
		calls := 0
		el, reqs, overflow := ShardRound(1, nodes, k, func(fn func()) time.Duration {
			calls++
			start := time.Now()
			fn()
			return time.Since(start)
		})
		if calls != 1 {
			t.Fatalf("k=%d: measure invoked %d times, want 1", k, calls)
		}
		if want := int64(nodes / 20 * 8); reqs != want {
			t.Fatalf("k=%d: %d requests, want %d", k, reqs, want)
		}
		if el <= 0 {
			t.Fatalf("k=%d: non-positive round time %v", k, el)
		}
		if overflow < 0 || overflow > reqs {
			t.Fatalf("k=%d: overflow %d outside [0, %d]", k, overflow, reqs)
		}
	}
}
