package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dsslc"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/res"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// ShardRound is one point of the scale suite: it builds the standard
// large-fleet round — nodes/20 clusters of exactly 20 workers each,
// 8 LC requests per cluster, unrestricted geo radius so an unsharded
// solve really sees the whole fleet — and schedules it once, cold,
// through a K-shard scheduler. It returns the measured round time, the
// number of requests routed, and how many of them the cross-shard
// overflow pass re-routed. Both the shard-scale experiment and the
// tango-bench perf snapshot sweep this same point so their numbers are
// directly comparable.
func ShardRound(seed int64, nodes, k int, measure func(func()) time.Duration) (el time.Duration, reqs, overflow int64) {
	const workersPerCluster, reqsPerCluster = 20, 8
	tp := topo.Generate(topo.GenConfig{
		Clusters: nodes / workersPerCluster, MinWorkers: workersPerCluster, MaxWorkers: workersPerCluster,
		MasterCap:    res.V(8000, 16384, 1000),
		WorkerCapMin: res.V(4000, 8192, 200), WorkerCapMax: res.V(16000, 32768, 1000),
		RegionSpreadDeg: 8, CenterLat: 32, CenterLon: 118,
	}, rand.New(rand.NewSource(seed)))
	// Fresh engine per point: every K schedules the identical cold round,
	// so a sweep isolates the restriction win and no point rides another
	// point's warm-start memo.
	e := engine.New(engine.Config{
		Sim: sim.New(), Topo: tp, Catalog: trace.DefaultCatalog(), Policy: engine.GreedyPolicy{},
	})
	sh := shard.New(e, seed, k, 0)
	sh.GeoRadiusKm = 1e9
	var batches []shard.Batch
	for _, c := range tp.Clusters {
		b := shard.Batch{Cluster: c.ID}
		for i := 0; i < reqsPerCluster; i++ {
			b.Reqs = append(b.Reqs, e.NewRequest(trace.Request{
				ID: reqs, Type: trace.TypeID(i % 5), Class: trace.LC, Cluster: c.ID,
			}))
			reqs++
		}
		batches = append(batches, b)
	}
	out := make(dsslc.Assignment, reqs)
	el = measure(func() { sh.ScheduleRound(batches, out, nil) })
	return el, reqs, sh.OverflowRouted
}

// ShardScale sweeps the sharded scheduling layer's round throughput
// across shard counts on large generated fleets — the scale suite for
// ROADMAP item 2. The expected shape is superlinear single-core gains
// with K: each shard's MCNF candidate set is ~1/K of the fleet, and
// solve cost grows faster than linearly in graph size; a multi-core
// host adds the worker-pool speedup on top.
//
// The quick configuration runs the 10k-node fleet; paper-scale mode
// (VirtualClusters >= 100, the same knob Fig. 13 keys on) adds the
// 100k-node fleet, where shard counts below 8 are omitted — their
// per-batch graphs approach the entire 100k-worker fleet and would
// dominate the suite's wall time without adding information beyond
// the 10k points.
func ShardScale(cfg Config, measure func(func()) time.Duration) *Result {
	type sweep struct {
		nodes  int
		shards []int
	}
	sweeps := []sweep{{10_000, []int{1, 2, 4, 8}}}
	if cfg.VirtualClusters >= 100 {
		sweeps = append(sweeps, sweep{100_000, []int{8, 16, 32}})
	}
	tb := metrics.NewTable("Extension — sharded scheduler round throughput",
		"nodes", "shards", "round time", "requests/s", "cross-shard overflow")
	values := map[string]float64{}
	var notes []string
	for _, sw := range sweeps {
		var base float64
		for _, k := range sw.shards {
			el, reqs, overflow := ShardRound(cfg.Seed, sw.nodes, k, measure)
			rps := float64(reqs) / el.Seconds()
			tb.AddRowF(sw.nodes, k, el.Round(time.Millisecond), rps, overflow)
			values[fmt.Sprintf("rps_%dk_s%d", sw.nodes/1000, k)] = rps
			if base == 0 {
				base = rps
			}
			if k == sw.shards[len(sw.shards)-1] && base > 0 {
				notes = append(notes, fmt.Sprintf(
					"%d nodes: %d shards route %.1fx the requests/s of %d shard(s)",
					sw.nodes, k, rps/base, sw.shards[0]))
			}
		}
	}
	notes = append(notes,
		"single-core gains come from restriction (each shard's candidate graph is ~1/K of the fleet); a multi-core host adds the worker-pool speedup on top")
	return &Result{
		ID:     "shard-scale",
		Title:  "Sharded scheduler round-throughput sweep",
		Tables: []*metrics.Table{tb},
		Values: values,
		Notes:  notes,
	}
}
