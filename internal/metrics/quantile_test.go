package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestP2Bootstrap(t *testing.T) {
	q := NewP2Quantile(0.5)
	if _, ok := q.Value(); ok {
		t.Fatal("empty estimator returned a value")
	}
	q.Observe(3)
	v, ok := q.Value()
	if !ok || v != 3 {
		t.Fatalf("single sample value = %v %v", v, ok)
	}
	for _, x := range []float64{1, 2, 4, 5} {
		q.Observe(x)
	}
	v, _ = q.Value()
	if v != 3 { // exact median of 1..5
		t.Fatalf("5-sample median = %v", v)
	}
	if q.Count() != 5 {
		t.Fatalf("count = %d", q.Count())
	}
}

func TestP2PanicsOnBadQuantile(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%v did not panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}

func TestP2ConvergesOnUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []float64{0.5, 0.9, 0.95} {
		q := NewP2Quantile(p)
		for i := 0; i < 50000; i++ {
			q.Observe(rng.Float64() * 100)
		}
		v, _ := q.Value()
		want := p * 100
		if math.Abs(v-want) > 2 {
			t.Fatalf("p%v estimate %v, want ~%v", p, v, want)
		}
	}
}

func TestP2ConvergesOnNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := NewP2Quantile(0.95)
	var all []float64
	for i := 0; i < 30000; i++ {
		x := rng.NormFloat64()*10 + 50
		all = append(all, x)
		q.Observe(x)
	}
	sort.Float64s(all)
	exact := all[int(0.95*float64(len(all)))]
	v, _ := q.Value()
	if math.Abs(v-exact) > 1 {
		t.Fatalf("p95 estimate %v, exact %v", v, exact)
	}
}

// Property: for any sample stream, the estimate stays within the
// observed min/max envelope.
func TestQuickP2WithinEnvelope(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewP2Quantile(0.95)
		k := int(n%2000) + 1
		min, max := math.Inf(1), math.Inf(-1)
		for i := 0; i < k; i++ {
			x := rng.NormFloat64() * 100
			min = math.Min(min, x)
			max = math.Max(max, x)
			q.Observe(x)
		}
		v, ok := q.Value()
		return ok && v >= min-1e-9 && v <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: on large sorted-insensitive streams, the P² estimate is
// close to the exact percentile (within 10% of the IQR-scale).
func TestQuickP2Accuracy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewP2Quantile(0.9)
		var all []float64
		for i := 0; i < 5000; i++ {
			x := rng.ExpFloat64() * 50 // skewed, like latencies
			all = append(all, x)
			q.Observe(x)
		}
		sort.Float64s(all)
		exact := all[int(0.9*float64(len(all)))]
		v, _ := q.Value()
		return math.Abs(v-exact) < 0.15*exact+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkP2Observe(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	q := NewP2Quantile(0.95)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Observe(rng.Float64())
	}
}
