// Package metrics is the measurement substrate standing in for the
// Prometheus + QoS-detector pipeline of Figure 3. It provides sliding
// latency windows with tail-percentile queries (the paper samples the
// 95th percentile over 100 ms windows), QoS-satisfaction accounting,
// throughput counters and period-indexed time series matching the 800 ms
// collection periods used in §6.2.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Window keeps the samples observed during the most recent span of
// virtual time and answers percentile queries over them. It implements
// the 100 ms collection window of the QoS re-assurance mechanism (§4.3).
type Window struct {
	span    time.Duration
	samples []sample
	// scratch is reused across Percentile calls: the QoS re-assurance
	// loop queries every service's window each 100 ms tick, so a fresh
	// sort buffer per call dominated the collector's allocations.
	scratch []float64
}

type sample struct {
	at time.Duration
	v  float64
}

// NewWindow creates a sliding window covering span of virtual time.
func NewWindow(span time.Duration) *Window {
	if span <= 0 {
		panic("metrics: window span must be positive")
	}
	return &Window{span: span}
}

// Observe records value v at virtual time now. Times must be
// nondecreasing across calls.
func (w *Window) Observe(now time.Duration, v float64) {
	if n := len(w.samples); n > 0 && now < w.samples[n-1].at {
		panic(fmt.Sprintf("metrics: time went backwards: %v < %v", now, w.samples[n-1].at))
	}
	w.samples = append(w.samples, sample{now, v})
	w.evict(now)
}

func (w *Window) evict(now time.Duration) {
	cut := now - w.span
	i := 0
	for i < len(w.samples) && w.samples[i].at <= cut {
		i++
	}
	if i > 0 {
		w.samples = append(w.samples[:0], w.samples[i:]...)
	}
}

// Len returns the number of samples currently in the window (as of the
// last Observe).
func (w *Window) Len() int { return len(w.samples) }

// Percentile returns the p-th percentile (0 < p <= 100) of the samples in
// the window using nearest-rank, and false if the window is empty.
func (w *Window) Percentile(p float64) (float64, bool) {
	if len(w.samples) == 0 {
		return 0, false
	}
	vals := w.scratch[:0]
	for _, s := range w.samples {
		vals = append(vals, s.v)
	}
	w.scratch = vals
	return PercentileInPlace(vals, p), true
}

// PercentileInPlace returns the p-th percentile (0 < p <= 100) of vals
// using the nearest-rank method, sorting vals in place. It is the one
// shared tail-latency kernel: Window.Percentile and the core report
// percentiles all route through it. Returns 0 for an empty slice.
func PercentileInPlace(vals []float64, p float64) float64 {
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of (0,100]", p))
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	return SortedPercentile(vals, p)
}

// SortedPercentile returns the p-th nearest-rank percentile of an
// already ascending-sorted slice. Returns 0 for an empty slice.
func SortedPercentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Mean returns the average of the samples, and false if empty.
func (w *Window) Mean() (float64, bool) {
	if len(w.samples) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, s := range w.samples {
		sum += s.v
	}
	return sum / float64(len(w.samples)), true
}

// QoSCounter tracks the QoS-guarantee satisfaction rate φ of Eq. 1:
// completed LC requests meeting their tail-latency target over all
// arrived LC requests.
type QoSCounter struct {
	Arrived   int64
	Completed int64
	Satisfied int64
	Abandoned int64
}

// Rate returns φ = satisfied/arrived (1 if nothing arrived yet).
func (q *QoSCounter) Rate() float64 {
	if q.Arrived == 0 {
		return 1
	}
	return float64(q.Satisfied) / float64(q.Arrived)
}

// CompletionRate returns completed/arrived.
func (q *QoSCounter) CompletionRate() float64 {
	if q.Arrived == 0 {
		return 1
	}
	return float64(q.Completed) / float64(q.Arrived)
}

// Add merges another counter into q.
func (q *QoSCounter) Add(o QoSCounter) {
	q.Arrived += o.Arrived
	q.Completed += o.Completed
	q.Satisfied += o.Satisfied
	q.Abandoned += o.Abandoned
}

// Series is a period-indexed time series (one value per 800 ms collection
// period in the paper's experiments).
type Series struct {
	Name   string
	Values []float64
}

// Append adds one period's value.
func (s *Series) Append(v float64) { s.Values = append(s.Values, v) }

// Mean returns the series average (0 for empty).
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Last returns the final value (0 for empty).
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// Normalize returns a copy scaled so the maximum is 1 (no-op for empty or
// all-zero series). Paper figures plot normalized values.
func (s *Series) Normalize() *Series {
	out := &Series{Name: s.Name, Values: make([]float64, len(s.Values))}
	max := 0.0
	for _, v := range s.Values {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		copy(out.Values, s.Values)
		return out
	}
	for i, v := range s.Values {
		out.Values[i] = v / max
	}
	return out
}

// Sum returns the series total.
func (s *Series) Sum() float64 {
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum
}

// Table renders rows of labelled values as an aligned text table; the
// benchmark harness prints paper figures through it.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; missing cells are blank. Passing more cells
// than the table has columns is a programming error and panics — the
// figures silently losing columns is exactly the bug this guards
// against (AddRowF forwards every argument here).
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("metrics: table %q has %d columns but row has %d cells",
			t.Title, len(t.Columns), len(cells)))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowF appends a row of formatted values: strings pass through,
// float64 format as %.4g, ints as %d.
func (t *Table) AddRowF(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.4g", v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		case int64:
			row = append(row, fmt.Sprintf("%d", v))
		case time.Duration:
			row = append(row, v.String())
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// String renders the aligned table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
