package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestWindowEviction(t *testing.T) {
	w := NewWindow(100 * time.Millisecond)
	w.Observe(0, 1)
	w.Observe(50*time.Millisecond, 2)
	w.Observe(100*time.Millisecond, 3)
	if w.Len() != 2 { // sample at t=0 is evicted at t=100ms (at <= now-span)
		t.Fatalf("Len = %d, want 2", w.Len())
	}
	w.Observe(200*time.Millisecond, 4)
	if w.Len() != 1 {
		t.Fatalf("Len = %d, want 1", w.Len())
	}
}

func TestWindowPercentile(t *testing.T) {
	w := NewWindow(time.Second)
	for i := 1; i <= 100; i++ {
		w.Observe(time.Duration(i)*time.Millisecond, float64(i))
	}
	p95, ok := w.Percentile(95)
	if !ok || p95 != 95 {
		t.Fatalf("p95 = %v %v, want 95", p95, ok)
	}
	p50, _ := w.Percentile(50)
	if p50 != 50 {
		t.Fatalf("p50 = %v, want 50", p50)
	}
	p100, _ := w.Percentile(100)
	if p100 != 100 {
		t.Fatalf("p100 = %v", p100)
	}
}

func TestWindowEmptyPercentile(t *testing.T) {
	w := NewWindow(time.Second)
	if _, ok := w.Percentile(95); ok {
		t.Fatal("empty window returned a percentile")
	}
	if _, ok := w.Mean(); ok {
		t.Fatal("empty window returned a mean")
	}
}

func TestWindowMean(t *testing.T) {
	w := NewWindow(time.Second)
	w.Observe(0, 10)
	w.Observe(1, 20)
	m, ok := w.Mean()
	if !ok || m != 15 {
		t.Fatalf("mean = %v %v", m, ok)
	}
}

func TestWindowPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero span":      func() { NewWindow(0) },
		"bad percentile": func() { w := NewWindow(time.Second); w.Observe(0, 1); w.Percentile(0) },
		"time backwards": func() { w := NewWindow(time.Second); w.Observe(10, 1); w.Observe(5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestQoSCounter(t *testing.T) {
	q := &QoSCounter{}
	if q.Rate() != 1 || q.CompletionRate() != 1 {
		t.Fatal("empty counter should report rate 1")
	}
	q.Arrived = 10
	q.Completed = 8
	q.Satisfied = 6
	q.Abandoned = 2
	if q.Rate() != 0.6 {
		t.Fatalf("Rate = %v", q.Rate())
	}
	if q.CompletionRate() != 0.8 {
		t.Fatalf("CompletionRate = %v", q.CompletionRate())
	}
	var sum QoSCounter
	sum.Add(*q)
	sum.Add(*q)
	if sum.Arrived != 20 || sum.Satisfied != 12 || sum.Abandoned != 4 {
		t.Fatalf("Add result %+v", sum)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "x"}
	if s.Mean() != 0 || s.Last() != 0 || s.Sum() != 0 {
		t.Fatal("empty series stats should be 0")
	}
	s.Append(1)
	s.Append(3)
	if s.Mean() != 2 || s.Last() != 3 || s.Sum() != 4 {
		t.Fatalf("stats = %v %v %v", s.Mean(), s.Last(), s.Sum())
	}
}

func TestSeriesNormalize(t *testing.T) {
	s := &Series{Values: []float64{2, 4, 8}}
	n := s.Normalize()
	if n.Values[0] != 0.25 || n.Values[2] != 1 {
		t.Fatalf("Normalize = %v", n.Values)
	}
	// original untouched
	if s.Values[0] != 2 {
		t.Fatal("Normalize mutated input")
	}
	z := (&Series{Values: []float64{0, 0}}).Normalize()
	if z.Values[0] != 0 || z.Values[1] != 0 {
		t.Fatal("all-zero normalize should be identity")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "algo", "qos", "tput")
	tb.AddRowF("DSS-LC", 0.95, 123)
	tb.AddRowF("k8s-native", 0.8, int64(99))
	out := tb.String()
	if !strings.Contains(out, "== Fig X ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "DSS-LC") || !strings.Contains(out, "0.95") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// all data lines equal width
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("misaligned header/separator:\n%s", out)
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only")
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Fatal("short row dropped")
	}
}

func TestTableRowOverflowPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"AddRow": func() {
			tb := NewTable("", "a", "b")
			tb.AddRow("x", "y", "overflow")
		},
		"AddRowF": func() {
			tb := NewTable("fig", "a", "b")
			tb.AddRowF("x", 1.0, 2) // third cell must not be silently lost
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: row wider than columns did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTableDurationFormatting(t *testing.T) {
	tb := NewTable("", "op", "lat")
	tb.AddRowF("dvpa", 23*time.Millisecond)
	if !strings.Contains(tb.String(), "23ms") {
		t.Fatalf("duration not formatted: %s", tb.String())
	}
}

// Property: Percentile matches a direct nearest-rank computation over the
// currently retained samples, for random inputs.
func TestQuickPercentileNearestRank(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%100) + 1
		w := NewWindow(time.Hour) // no eviction
		var vals []float64
		for i := 0; i < k; i++ {
			v := rng.Float64() * 1000
			vals = append(vals, v)
			w.Observe(time.Duration(i)*time.Millisecond, v)
		}
		sort.Float64s(vals)
		for _, p := range []float64{1, 25, 50, 95, 99, 100} {
			got, ok := w.Percentile(p)
			if !ok {
				return false
			}
			rank := int((p/100)*float64(k) + 0.9999999)
			if rank < 1 {
				rank = 1
			}
			if rank > k {
				rank = k
			}
			if got != vals[rank-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkWindowPercentile exercises the steady-state query path of the
// QoS re-assurance loop: a full window queried for p95 every tick. The
// reusable scratch buffer makes this 0 allocs/op after the first call
// (previously one fresh []float64 per call).
func BenchmarkWindowPercentile(b *testing.B) {
	w := NewWindow(time.Hour)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1024; i++ {
		w.Observe(time.Duration(i)*time.Millisecond, rng.Float64()*1000)
	}
	w.Percentile(95) // grow the scratch buffer once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := w.Percentile(95); !ok {
			b.Fatal("empty window")
		}
	}
}

func TestWindowPercentileNoSteadyStateAllocs(t *testing.T) {
	w := NewWindow(time.Hour)
	for i := 0; i < 512; i++ {
		w.Observe(time.Duration(i)*time.Millisecond, float64(i%97))
	}
	w.Percentile(95) // warm the scratch buffer
	if avg := testing.AllocsPerRun(100, func() { w.Percentile(95) }); avg != 0 {
		t.Fatalf("Percentile allocates %v per call in steady state, want 0", avg)
	}
}

// Property: the window never retains samples older than span, and always
// retains the newest sample.
func TestQuickWindowRetention(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		span := time.Duration(rng.Intn(100)+1) * time.Millisecond
		w := NewWindow(span)
		now := time.Duration(0)
		for i := 0; i < 200; i++ {
			now += time.Duration(rng.Intn(20)) * time.Millisecond
			w.Observe(now, float64(i))
			if w.Len() < 1 {
				return false
			}
			for _, s := range w.samples {
				if s.at <= now-span {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
