package metrics

import (
	"fmt"
	"sort"
)

// P2Quantile is the Jain & Chlamtac P² streaming quantile estimator: it
// tracks a single quantile (e.g. the p95 tail latency) in O(1) space
// without storing samples — the estimator a long-running QoS detector
// would use where the exact windowed percentile of Window would grow
// unbounded. Estimates converge as samples accumulate.
type P2Quantile struct {
	p       float64
	n       int
	heights [5]float64 // marker heights
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	inc     [5]float64 // desired position increments
	initial []float64
}

// NewP2Quantile creates an estimator for quantile p in (0,1).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("metrics: quantile %v out of (0,1)", p))
	}
	return &P2Quantile{
		p:    p,
		want: [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5},
		inc:  [5]float64{0, p / 2, p, (1 + p) / 2, 1},
	}
}

// Observe feeds one sample.
func (q *P2Quantile) Observe(v float64) {
	q.n++
	if q.n <= 5 {
		q.initial = append(q.initial, v)
		if q.n == 5 {
			sort.Float64s(q.initial)
			for i := 0; i < 5; i++ {
				q.heights[i] = q.initial[i]
				q.pos[i] = float64(i + 1)
			}
			q.initial = nil
		}
		return
	}
	// Locate the cell containing v and clamp extremes.
	var k int
	switch {
	case v < q.heights[0]:
		q.heights[0] = v
		k = 0
	case v >= q.heights[4]:
		q.heights[4] = v
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if v < q.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := 0; i < 5; i++ {
		q.want[i] += q.inc[i]
	}
	// Adjust interior markers.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			// Parabolic (piecewise) prediction.
			h := q.parabolic(i, s)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, s)
			}
			q.pos[i] += s
		}
	}
}

func (q *P2Quantile) parabolic(i int, s float64) float64 {
	return q.heights[i] + s/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+s)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-s)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

func (q *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return q.heights[i] + s*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// Count returns the number of observed samples.
func (q *P2Quantile) Count() int { return q.n }

// Value returns the current estimate and false when fewer than one
// sample has been observed.
func (q *P2Quantile) Value() (float64, bool) {
	if q.n == 0 {
		return 0, false
	}
	if q.n < 5 {
		// Exact for the bootstrap phase.
		cp := make([]float64, len(q.initial))
		copy(cp, q.initial)
		sort.Float64s(cp)
		idx := int(q.p*float64(len(cp)) + 0.9999999)
		if idx < 1 {
			idx = 1
		}
		if idx > len(cp) {
			idx = len(cp)
		}
		return cp[idx-1], true
	}
	return q.heights[2], true
}
