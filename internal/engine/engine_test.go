package engine

import (
	"testing"
	"time"

	"repro/internal/res"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// testEnv builds a 1-cluster, 2-worker engine with the greedy policy.
func testEnv(policy Policy, onOutcome func(Outcome)) (*sim.Simulator, *Engine, *topo.Topology) {
	s := sim.New()
	b := topo.NewBuilder()
	b.AddCluster(31, 121, res.V(8000, 16384, 1000), []res.Vector{
		res.V(4000, 8192, 500),
		res.V(4000, 8192, 500),
	})
	tp := b.Build()
	if policy == nil {
		policy = GreedyPolicy{}
	}
	e := New(Config{
		Sim: s, Topo: tp, Catalog: trace.DefaultCatalog(), Policy: policy,
		OnOutcome: onOutcome, LCAbandonFactor: 1,
	})
	return s, e, tp
}

func mkReq(id int64, t trace.TypeID, at time.Duration) trace.Request {
	cat := trace.DefaultCatalog()
	return trace.Request{ID: id, Type: t, Class: cat.Type(t).Class, Arrival: at, Cluster: 0}
}

func TestSingleRequestCompletes(t *testing.T) {
	var outs []Outcome
	s, e, _ := testEnv(nil, func(o Outcome) { outs = append(outs, o) })
	r := e.NewRequest(mkReq(1, 1, 0)) // lc-audio: 250m, work 25000 -> 100ms at min alloc
	e.Dispatch(r, 1)                  // node 1 is first worker
	s.Run()
	if len(outs) != 1 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	o := outs[0]
	if !o.Completed {
		t.Fatal("request did not complete")
	}
	// latency = transit + processing(100ms) + return transit; LAN so small.
	if o.Latency < 100*time.Millisecond || o.Latency > 150*time.Millisecond {
		t.Fatalf("latency = %v", o.Latency)
	}
	if !o.Satisfied {
		t.Fatalf("should satisfy 200ms target, latency %v", o.Latency)
	}
	if e.Completed != 1 || e.Abandoned != 0 {
		t.Fatalf("counters %d/%d", e.Completed, e.Abandoned)
	}
	// Resources fully reclaimed.
	if !e.Node(1).Used().IsZero() {
		t.Fatalf("leak: used %v", e.Node(1).Used())
	}
}

func TestProcessingSpeedScalesWithAllocation(t *testing.T) {
	// A bigger allocation must complete sooner.
	var done []time.Duration
	bigPolicy := policyFunc(func(n *Node, r *Request) (res.Vector, bool) {
		d := r.SType.MinDemand
		d.MilliCPU *= 2
		if n.Free().Fits(d) {
			return d, true
		}
		return res.Vector{}, false
	})
	s, e, _ := testEnv(bigPolicy, func(o Outcome) { done = append(done, o.Latency) })
	e.Dispatch(e.NewRequest(mkReq(1, 1, 0)), 1)
	s.Run()
	s2, e2, _ := testEnv(nil, func(o Outcome) { done = append(done, o.Latency) })
	e2.Dispatch(e2.NewRequest(mkReq(1, 1, 0)), 1)
	s2.Run()
	if len(done) != 2 || done[0] >= done[1] {
		t.Fatalf("2x CPU not faster: %v", done)
	}
}

type policyFunc func(n *Node, r *Request) (res.Vector, bool)

func (f policyFunc) Admit(n *Node, r *Request) (res.Vector, bool) { return f(n, r) }
func (f policyFunc) Name() string                                 { return "test" }

func TestQueueingWhenFull(t *testing.T) {
	var outs []Outcome
	s, e, _ := testEnv(nil, func(o Outcome) { outs = append(outs, o) })
	// Type 3 needs 1000m; node has 4000m => 4 concurrent (memory 1024Mi*4 fits 8192).
	for i := int64(0); i < 6; i++ {
		e.Dispatch(e.NewRequest(mkReq(i, 3, 0)), 1)
	}
	s.RunFor(30 * time.Millisecond)
	n := e.Node(1)
	if n.RunningCount() != 4 {
		t.Fatalf("running = %d, want 4", n.RunningCount())
	}
	lcq, _ := n.QueueLen()
	if lcq != 2 {
		t.Fatalf("queued = %d, want 2", lcq)
	}
	s.Run()
	completed := 0
	for _, o := range outs {
		if o.Completed {
			completed++
		}
	}
	// type 3: work 175000 / 1000m = 175ms; queued start ~175ms, target 350ms
	// with abandon factor 1 they still start in time.
	if completed != 6 {
		t.Fatalf("completed = %d of 6 (outcomes %d)", completed, len(outs))
	}
}

func TestLCAbandonment(t *testing.T) {
	var outs []Outcome
	s, e, _ := testEnv(nil, func(o Outcome) { outs = append(outs, o) })
	// Saturate the node with long BE work, then send an LC request that
	// can never start within its QoS window under greedy (no preemption).
	for i := int64(0); i < 8; i++ {
		e.DispatchLocal(e.NewRequest(mkReq(i, 6, 0)), 1) // be-training 1000m x 8 > 4000m
	}
	e.Dispatch(e.NewRequest(mkReq(100, 1, 0)), 1) // lc-audio, 200ms target
	s.RunFor(2 * time.Second)
	var lcOut *Outcome
	for i := range outs {
		if outs[i].Req.ID == 100 {
			lcOut = &outs[i]
		}
	}
	if lcOut == nil {
		t.Fatal("LC outcome missing")
	}
	if lcOut.Completed || lcOut.Satisfied {
		t.Fatalf("LC should be abandoned: %+v", lcOut)
	}
	if e.Abandoned != 1 {
		t.Fatalf("abandoned = %d", e.Abandoned)
	}
}

func TestCompressBESpeedsLCPath(t *testing.T) {
	s, e, _ := testEnv(nil, nil)
	n := e.Node(1)
	// Start one BE request, then grant it all idle CPU.
	be := e.NewRequest(mkReq(1, 6, 0)) // be-training: min 1000m
	e.DispatchLocal(be, 1)
	granted := n.GrantBE(1, 3000)
	if granted != 3000 {
		t.Fatalf("granted = %d", granted)
	}
	if n.Free().MilliCPU != 0 {
		t.Fatalf("free CPU = %d", n.Free().MilliCPU)
	}
	// Compress back 2000m for an incoming LC request.
	freed := n.CompressBE(res.V(2000, 0, 0), 0.25)
	if freed.MilliCPU != 2000 {
		t.Fatalf("freed = %v", freed)
	}
	if n.Free().MilliCPU != 2000 {
		t.Fatalf("free after compress = %d", n.Free().MilliCPU)
	}
	s.Run()
	if e.Completed != 1 {
		t.Fatal("compressed BE request never completed")
	}
}

func TestCompressRespectsFloor(t *testing.T) {
	_, e, _ := testEnv(nil, nil)
	n := e.Node(1)
	be := e.NewRequest(mkReq(1, 6, 0)) // min 1000m
	e.DispatchLocal(be, 1)
	// Ask for far more than can be freed: floor = 25% of 1000m = 250m.
	freed := n.CompressBE(res.V(99999, 0, 0), 0.25)
	if freed.MilliCPU != 750 {
		t.Fatalf("freed = %v, want 750m (keep 250m floor)", freed)
	}
}

func TestCompressionDelaysBECompletion(t *testing.T) {
	var outs []Outcome
	s, e, _ := testEnv(nil, func(o Outcome) { outs = append(outs, o) })
	be := e.NewRequest(mkReq(1, 6, 0)) // 900000 mc-ms / 1000m = 900ms
	e.DispatchLocal(be, 1)
	// Let it run 300ms, then halve its CPU.
	s.RunFor(300 * time.Millisecond)
	n := e.Node(1)
	n.CompressBE(res.V(500, 0, 0), 0.25)
	s.Run()
	if len(outs) != 1 {
		t.Fatal("BE did not finish")
	}
	// 300ms at 1000m leaves 600000; at 500m that is 1200ms: total 1500ms.
	got := outs[0].FinishedAt
	want := 1500 * time.Millisecond
	if got < want-10*time.Millisecond || got > want+10*time.Millisecond {
		t.Fatalf("finish at %v, want ~%v", got, want)
	}
}

func TestEvictBERestartsWork(t *testing.T) {
	var outs []Outcome
	s, e, _ := testEnv(nil, func(o Outcome) { outs = append(outs, o) })
	be := e.NewRequest(mkReq(1, 6, 0)) // 2048Mi
	e.DispatchLocal(be, 1)
	s.RunFor(500 * time.Millisecond)
	n := e.Node(1)
	reclaimed := n.EvictBE(1000)
	if reclaimed != 2048 {
		t.Fatalf("reclaimed = %d", reclaimed)
	}
	if be.Restarts != 1 {
		t.Fatalf("restarts = %d", be.Restarts)
	}
	if n.RunningCount() != 0 {
		t.Fatal("evicted BE still running")
	}
	_, beq := n.QueueLen()
	if beq != 1 {
		t.Fatalf("BE queue = %d", beq)
	}
	// Nothing finishes until a drain happens; trigger by a quick LC cycle.
	e.DispatchLocal(e.NewRequest(mkReq(2, 1, s.Now())), 1)
	s.Run()
	if len(outs) != 2 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	// Restarted BE runs its full 900ms again after requeue.
	var beOut Outcome
	for _, o := range outs {
		if o.Req.ID == 1 {
			beOut = o
		}
	}
	if beOut.FinishedAt < 1400*time.Millisecond {
		t.Fatalf("restarted BE finished suspiciously early: %v", beOut.FinishedAt)
	}
}

func TestDrainAfterCompletionStartsQueued(t *testing.T) {
	s, e, _ := testEnv(nil, nil)
	// Fill with 4 CPU-bound type-3 (1000m each), queue 2 more; as each
	// finishes the queue should drain FIFO.
	for i := int64(0); i < 6; i++ {
		e.Dispatch(e.NewRequest(mkReq(i, 3, 0)), 1)
	}
	s.Run()
	if e.Completed != 6 {
		t.Fatalf("completed = %d", e.Completed)
	}
}

func TestTransitDelayLANvsWAN(t *testing.T) {
	s := sim.New()
	b := topo.NewBuilder()
	w := []res.Vector{res.V(4000, 8192, 500)}
	b.AddCluster(30, 120, res.V(8000, 16384, 1000), w)
	b.AddCluster(35, 120, res.V(8000, 16384, 1000), w) // ~555km away
	tp := b.Build()
	e := New(Config{Sim: s, Topo: tp, Catalog: trace.DefaultCatalog(), Policy: GreedyPolicy{}})
	lan := e.TransitDelay(0, 1, 64)
	wan := e.TransitDelay(0, 3, 64)
	if lan >= wan {
		t.Fatalf("LAN %v should beat WAN %v", lan, wan)
	}
	if wan < 10*time.Millisecond {
		t.Fatalf("WAN transit %v implausibly fast", wan)
	}
	// payload size matters
	small := e.TransitDelay(0, 3, 1)
	big := e.TransitDelay(0, 3, 10000)
	if small >= big {
		t.Fatal("payload size ignored")
	}
}

func TestAvailableForLCIncludesBEHoldings(t *testing.T) {
	_, e, _ := testEnv(nil, nil)
	n := e.Node(1)
	e.DispatchLocal(e.NewRequest(mkReq(1, 6, 0)), 1) // BE holds 1000m/2048Mi
	if n.AvailableForLC() != n.Capacity {
		t.Fatalf("AvailableForLC = %v, want full capacity %v", n.AvailableForLC(), n.Capacity)
	}
	e.DispatchLocal(e.NewRequest(mkReq(2, 1, 0)), 1) // LC holds 250m/256Mi
	want := n.Capacity.Sub(res.V(250, 256, 2))
	if n.AvailableForLC() != want {
		t.Fatalf("AvailableForLC = %v, want %v", n.AvailableForLC(), want)
	}
}

func TestAllocOverrideChangesDemand(t *testing.T) {
	_, e, _ := testEnv(nil, nil)
	n := e.Node(1)
	base := n.EffectiveDemand(1)
	if base != trace.DefaultCatalog().Type(1).MinDemand {
		t.Fatal("default demand wrong")
	}
	n.AllocOverride[1] = res.V(999, 999, 9)
	if n.EffectiveDemand(1) != res.V(999, 999, 9) {
		t.Fatal("override ignored")
	}
}

func TestScaleLatencyAddsToProcessing(t *testing.T) {
	var fast, slow time.Duration
	s, e, _ := testEnv(nil, func(o Outcome) { fast = o.Latency })
	e.Dispatch(e.NewRequest(mkReq(1, 1, 0)), 1)
	s.Run()

	s2 := sim.New()
	b := topo.NewBuilder()
	b.AddCluster(31, 121, res.V(8000, 16384, 1000), []res.Vector{res.V(4000, 8192, 500)})
	tp := b.Build()
	e2 := New(Config{Sim: s2, Topo: tp, Catalog: trace.DefaultCatalog(), Policy: GreedyPolicy{},
		OnOutcome: func(o Outcome) { slow = o.Latency }, ScaleLatency: 23 * time.Millisecond})
	e2.Dispatch(e2.NewRequest(mkReq(1, 1, 0)), 1)
	s2.Run()
	diff := slow - fast
	if diff < 20*time.Millisecond || diff > 26*time.Millisecond {
		t.Fatalf("scale latency diff = %v, want ~23ms", diff)
	}
}

func TestUtilizationMetrics(t *testing.T) {
	_, e, _ := testEnv(nil, nil)
	n := e.Node(1)
	if n.Utilization() != 0 || n.CPUUtilization() != 0 {
		t.Fatal("fresh node not idle")
	}
	e.DispatchLocal(e.NewRequest(mkReq(1, 6, 0)), 1) // 1000m of 4000m
	if got := n.CPUUtilization(); got != 0.25 {
		t.Fatalf("cpu util = %v", got)
	}
	if n.Utilization() <= 0 {
		t.Fatal("dominant share should be positive")
	}
}

func TestQueuedOfType(t *testing.T) {
	s, e, _ := testEnv(nil, nil)
	for i := int64(0); i < 8; i++ {
		e.DispatchLocal(e.NewRequest(mkReq(i, 6, 0)), 1) // 4 run, 4 queue
	}
	if got := e.Node(1).QueuedOfType(6); got != 4 {
		t.Fatalf("queued of type 6 = %d", got)
	}
	if got := e.Node(1).QueuedOfType(1); got != 0 {
		t.Fatalf("queued of type 1 = %d", got)
	}
	s.Run()
}

func TestOverCommitPanics(t *testing.T) {
	_, e, _ := testEnv(policyFunc(func(n *Node, r *Request) (res.Vector, bool) {
		return res.V(99999, 0, 0), true // exceeds capacity
	}), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("overcommit did not panic")
		}
	}()
	e.DispatchLocal(e.NewRequest(mkReq(1, 1, 0)), 1)
}

func TestZeroCPUAllocPanics(t *testing.T) {
	_, e, _ := testEnv(policyFunc(func(n *Node, r *Request) (res.Vector, bool) {
		return res.V(0, 10, 0), true
	}), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-CPU alloc did not panic")
		}
	}()
	e.DispatchLocal(e.NewRequest(mkReq(1, 1, 0)), 1)
}

func TestNonWorkerNodePanics(t *testing.T) {
	_, e, _ := testEnv(nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("dispatch to master did not panic")
		}
	}()
	e.Dispatch(e.NewRequest(mkReq(1, 1, 0)), 0) // node 0 is the master
}

func TestNodesOrderStable(t *testing.T) {
	_, e, _ := testEnv(nil, nil)
	ns := e.Nodes()
	if len(ns) != 2 || ns[0].ID != 1 || ns[1].ID != 2 {
		t.Fatalf("nodes = %v", ns)
	}
}
