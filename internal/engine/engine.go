// Package engine is the request-execution substrate: it models worker
// nodes processing LC and BE service requests under a resource policy.
//
// The performance model follows the paper's own virtual-cluster approach
// (§6.1): instead of running containers, each request carries a CPU work
// amount (millicore-milliseconds, calibrated per service type the way the
// paper calibrates with pressure tests) and completes after
// work / allocatedCPU milliseconds. Requests hold their allocation vector
// while running; admission, queuing, preemption (compressing the CPU of
// running BE requests or evicting them to reclaim memory, §4.1) and
// abandonment of hopeless LC requests are all engine mechanics that the
// pluggable Policy drives.
package engine

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/res"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Request is one live request.
type Request struct {
	ID      int64
	Type    trace.TypeID
	Class   trace.Class
	SType   trace.ServiceType
	Arrival time.Duration // arrival at the cluster master (user-perceived start)
	Cluster topo.ClusterID
	Target  topo.NodeID // worker the request was dispatched to
	// Restarts counts BE evict-and-restart cycles (§4.1).
	Restarts int

	// SpanID is the root "request" span, lazily reserved at first
	// dispatch when tracing is on (0 = no span). DecisionID links the
	// scheduling decision that routed the request (-1 = none, e.g.
	// baselines without audit or direct engine drives).
	SpanID     uint64
	DecisionID int64

	enqueuedAt time.Duration
	abandonEv  *sim.Event
	// mark is the start of the current lifecycle stage; each child span
	// covers [mark, now] and advances mark, so the children exactly tile
	// [Arrival, completion].
	mark time.Duration
	// carryWork is the checkpointed remaining work of a live-migrated
	// request (millicore-ms); the next start resumes from it instead of
	// the full SType.Work. Zero means no checkpoint (fresh start).
	carryWork float64
}

// Outcome reports the fate of a request.
type Outcome struct {
	Req        *Request
	Completed  bool // false = abandoned (LC only)
	Latency    time.Duration
	Satisfied  bool // LC: Latency <= QoS target; BE: same as Completed
	FinishedAt time.Duration
}

// running tracks an in-flight request on a node.
type running struct {
	req        *Request
	alloc      res.Vector
	workLeft   float64 // millicore-milliseconds
	lastUpdate time.Duration
	done       *sim.Event
	seq        int64 // admission order, newest-first eviction
}

// Node is one worker's runtime state.
type Node struct {
	ID       topo.NodeID
	Cluster  topo.ClusterID
	Capacity res.Vector

	// AllocOverride lets the QoS re-assurer adjust the effective minimum
	// allocation per service type on this node (§4.3). Nil entries fall
	// back to the catalog MinDemand.
	AllocOverride map[trace.TypeID]res.Vector

	used      res.Vector
	usedLC    res.Vector
	inTransit res.Vector // demand of requests dispatched but not yet arrived
	running   map[int64]*running
	queueLC   []*Request
	queueBE   []*Request
	seq       int64
	eng       *Engine
	down      bool
	ScaleOps  int64 // D-VPA style allocation changes performed here
}

// Policy decides admission: given a request at the head of a queue (or
// newly arrived), return the allocation to run it with and true, or false
// to leave it queued. Policies may invoke the node's preemption mechanics
// (CompressBE / EvictBE) before returning.
type Policy interface {
	Admit(n *Node, r *Request) (res.Vector, bool)
	Name() string
}

// Config assembles an Engine.
type Config struct {
	Sim     *sim.Simulator
	Topo    *topo.Topology
	Catalog *trace.Catalog
	Policy  Policy
	// OnOutcome receives every completion/abandonment.
	OnOutcome func(Outcome)
	// ScaleLatency is the per-admission vertical-scaling latency (23 ms
	// for D-VPA; zero models a static allocation that needs no resize).
	ScaleLatency time.Duration
	// LCAbandonFactor: an LC request that has not started processing
	// within factor × QoSTarget of its arrival is abandoned. Zero
	// disables abandonment.
	LCAbandonFactor float64
	// OnDisplaced receives requests displaced by a node failure (running
	// and queued work of the failed node, and requests dispatched to a
	// node that is down on arrival). When nil, displaced LC requests are
	// emitted as abandoned and BE requests as failed outcomes.
	OnDisplaced func(reqs []*Request)
	// Tracer receives one structured event per engine decision point
	// (dispatch, queue, start, finish, abandon, compress, evict, boost,
	// fail, recover). Nil disables tracing at zero cost.
	Tracer *obs.Tracer
	// Prof, when set, charges every Policy.Admit call (arrival-time and
	// queue-drain) to the engine/admission phase. Nil costs nothing.
	Prof *perf.Profiler
}

// Engine owns all worker-node runtimes.
type Engine struct {
	cfg   Config
	nodes map[topo.NodeID]*Node
	trc   *obs.Tracer
	// counters
	Completed int64
	Abandoned int64
	// Migrations counts live migrations started (tango_migrations_total).
	Migrations int64
}

// New builds the engine with one runtime per worker node.
func New(cfg Config) *Engine {
	if cfg.Sim == nil || cfg.Topo == nil || cfg.Catalog == nil || cfg.Policy == nil {
		panic("engine: Config requires Sim, Topo, Catalog and Policy")
	}
	e := &Engine{cfg: cfg, nodes: map[topo.NodeID]*Node{}, trc: cfg.Tracer}
	for _, n := range cfg.Topo.Nodes {
		if n.Role != topo.Worker {
			continue
		}
		e.nodes[n.ID] = &Node{
			ID:            n.ID,
			Cluster:       n.Cluster,
			Capacity:      n.Capacity,
			AllocOverride: map[trace.TypeID]res.Vector{},
			running:       map[int64]*running{},
			eng:           e,
		}
	}
	return e
}

// Node returns the runtime for a worker node.
func (e *Engine) Node(id topo.NodeID) *Node {
	n, ok := e.nodes[id]
	if !ok {
		panic(fmt.Sprintf("engine: node %d is not a worker", id))
	}
	return n
}

// Nodes iterates worker runtimes in topology order.
func (e *Engine) Nodes() []*Node {
	var out []*Node
	for _, tn := range e.cfg.Topo.Nodes {
		if tn.Role == topo.Worker {
			out = append(out, e.nodes[tn.ID])
		}
	}
	return out
}

// Sim exposes the simulator (for policies needing the clock).
func (e *Engine) Sim() *sim.Simulator { return e.cfg.Sim }

// Tracer returns the engine's tracer (nil when tracing is disabled).
func (e *Engine) Tracer() *obs.Tracer { return e.trc }

// Catalog returns the service catalog the engine was built with.
func (e *Engine) Catalog() *trace.Catalog { return e.cfg.Catalog }

// Topology returns the engine's topology.
func (e *Engine) Topology() *topo.Topology { return e.cfg.Topo }

// Policy returns the active resource policy.
func (e *Engine) Policy() Policy { return e.cfg.Policy }

// NewRequest materializes a trace request into a live engine request.
func (e *Engine) NewRequest(tr trace.Request) *Request {
	return &Request{
		ID:         tr.ID,
		Type:       tr.Type,
		Class:      tr.Class,
		SType:      e.cfg.Catalog.Type(tr.Type),
		Arrival:    tr.Arrival,
		Cluster:    tr.Cluster,
		Target:     -1,
		DecisionID: -1,
		mark:       tr.Arrival,
	}
}

// TransitDelay models dispatching a request from the master of cluster
// `from` to worker `to`: half an RTT plus payload serialization.
func (e *Engine) TransitDelay(from topo.ClusterID, to topo.NodeID, txKB int64) time.Duration {
	t := e.cfg.Topo
	master := t.Cluster(from).Master
	rtt := t.RTT(master, to)
	bw := t.LinkBandwidth(master, to)
	ser := time.Duration(float64(txKB*8) / float64(bw) * float64(time.Millisecond))
	return rtt/2 + ser
}

// Dispatch routes a request to a worker node; it arrives after the
// transit delay and is then offered to the policy. The demand is booked
// as in-transit so load-aware schedulers can see outstanding dispatches
// (the way production load balancers count in-flight requests).
func (e *Engine) Dispatch(r *Request, target topo.NodeID) {
	n := e.Node(target)
	r.Target = target
	d := n.EffectiveDemand(r.Type)
	n.inTransit = n.inTransit.Add(d)
	delay := e.TransitDelay(r.Cluster, target, r.SType.TxKB)
	if tr := e.trc; tr.Enabled() {
		tr.Emit(obs.Ev(obs.EvDispatch).Req(r.ID).Clu(int(r.Cluster)).Node(int(target)).
			Service(int(r.Type)).Cls(r.Class.String()).Val(float64(delay) / float64(time.Millisecond)))
		now := e.cfg.Sim.Now()
		if r.SpanID == 0 {
			// Root-span reservation is the head-based sampling point:
			// RequestSpanID returns 0 for sampled-out requests, which every
			// downstream span site treats as "no tracing for this request".
			r.SpanID = tr.RequestSpanID(r.ID)
		}
		if r.SpanID != 0 {
			tr.EmitSpan(obs.Sp(obs.SpanSched, r.mark, now).Child(r.SpanID).Req(r.ID).
				Clu(int(r.Cluster)).Node(int(target)).Service(int(r.Type)).
				Cls(r.Class.String()).Dec(r.DecisionID))
			r.mark = now
		}
	}
	e.cfg.Sim.Schedule(delay, func() {
		n.inTransit = n.inTransit.Sub(d)
		if tr := e.trc; tr.Enabled() && r.SpanID != 0 {
			now := e.cfg.Sim.Now()
			tr.EmitSpan(obs.Sp(obs.SpanTransit, r.mark, now).Child(r.SpanID).Req(r.ID).
				Clu(int(r.Cluster)).Node(int(target)).Service(int(r.Type)).Cls(r.Class.String()))
			r.mark = now
		}
		n.arrive(r)
	})
}

// DispatchLocal places the request on the node without network delay
// (used when a worker re-queues its own work).
func (e *Engine) DispatchLocal(r *Request, target topo.NodeID) {
	n := e.Node(target)
	r.Target = target
	if tr := e.trc; tr.Enabled() {
		now := e.cfg.Sim.Now()
		if r.SpanID == 0 {
			r.SpanID = tr.RequestSpanID(r.ID)
		}
		if r.SpanID != 0 {
			tr.EmitSpan(obs.Sp(obs.SpanSched, r.mark, now).Child(r.SpanID).Req(r.ID).
				Clu(int(r.Cluster)).Node(int(target)).Service(int(r.Type)).
				Cls(r.Class.String()).Dec(r.DecisionID))
			r.mark = now
		}
	}
	n.arrive(r)
}

// admit runs the policy's admission decision under the engine/admission
// perf phase.
func (n *Node) admit(r *Request) (res.Vector, bool) {
	if p := n.eng.cfg.Prof; p != nil {
		p.Enter(perf.PhaseEngineAdmission)
		alloc, ok := n.eng.cfg.Policy.Admit(n, r)
		p.Exit(perf.PhaseEngineAdmission)
		return alloc, ok
	}
	return n.eng.cfg.Policy.Admit(n, r)
}

func (n *Node) arrive(r *Request) {
	if n.down {
		n.eng.displace([]*Request{r})
		return
	}
	now := n.eng.cfg.Sim.Now()
	r.enqueuedAt = now
	if alloc, ok := n.admit(r); ok {
		n.start(r, alloc)
		return
	}
	if r.Class == trace.LC {
		n.queueLC = append(n.queueLC, r)
		n.armAbandon(r)
	} else {
		n.queueBE = append(n.queueBE, r)
	}
	if tr := n.eng.trc; tr.Enabled() {
		lcq, beq := len(n.queueLC), len(n.queueBE)
		tr.Emit(obs.Ev(obs.EvQueue).Req(r.ID).Node(int(n.ID)).Service(int(r.Type)).
			Cls(r.Class.String()).Au(int64(lcq + beq)))
	}
}

func (n *Node) armAbandon(r *Request) {
	f := n.eng.cfg.LCAbandonFactor
	if f <= 0 || r.SType.QoSTarget <= 0 {
		return
	}
	deadline := r.Arrival + time.Duration(f*float64(r.SType.QoSTarget))
	now := n.eng.cfg.Sim.Now()
	if deadline <= now {
		n.abandon(r)
		return
	}
	r.abandonEv = n.eng.cfg.Sim.Schedule(deadline-now, func() { n.abandon(r) })
}

func (n *Node) abandon(r *Request) {
	for i, q := range n.queueLC {
		if q == r {
			n.queueLC = append(n.queueLC[:i], n.queueLC[i+1:]...)
			break
		}
	}
	n.eng.Abandoned++
	if tr := n.eng.trc; tr.Enabled() {
		now := n.eng.cfg.Sim.Now()
		age := now - r.Arrival
		tr.Emit(obs.Ev(obs.EvAbandon).Req(r.ID).Node(int(n.ID)).Service(int(r.Type)).
			Cls(r.Class.String()).Val(float64(age) / float64(time.Millisecond)))
		if r.SpanID != 0 {
			tr.EmitSpan(obs.Sp(obs.SpanQueue, r.mark, now).Child(r.SpanID).Req(r.ID).
				Clu(int(n.Cluster)).Node(int(n.ID)).Service(int(r.Type)).Cls(r.Class.String()))
			tr.EmitSpan(obs.Sp(obs.SpanRequest, r.Arrival, now).WithID(r.SpanID).Req(r.ID).
				Clu(int(r.Cluster)).Node(int(n.ID)).Service(int(r.Type)).Cls(r.Class.String()).
				Dec(r.DecisionID).Note("abandoned"))
			r.mark = now
		}
	}
	n.eng.emit(Outcome{
		Req: r, Completed: false, Satisfied: false,
		Latency:    n.eng.cfg.Sim.Now() - r.Arrival,
		FinishedAt: n.eng.cfg.Sim.Now(),
	})
}

// start commits resources and schedules completion.
func (n *Node) start(r *Request, alloc res.Vector) {
	if alloc.MilliCPU <= 0 {
		panic(fmt.Sprintf("engine: request %d started with no CPU (%v)", r.ID, alloc))
	}
	if !n.Free().Fits(alloc) {
		panic(fmt.Sprintf("engine: node %d over-committed: free %v, alloc %v", n.ID, n.Free(), alloc))
	}
	if r.abandonEv != nil {
		r.abandonEv.Cancel()
		r.abandonEv = nil
	}
	n.used = n.used.Add(alloc)
	if r.Class == trace.LC {
		n.usedLC = n.usedLC.Add(alloc)
	}
	n.seq++
	n.ScaleOps++
	now := n.eng.cfg.Sim.Now()
	work := float64(r.SType.Work)
	if r.carryWork > 0 {
		// A live-migrated request resumes from its checkpoint; contrast
		// with EvictBE's restart-from-scratch semantics.
		work = r.carryWork
		r.carryWork = 0
	}
	ru := &running{
		req:        r,
		alloc:      alloc,
		workLeft:   work,
		lastUpdate: now,
		seq:        n.seq,
	}
	n.running[r.ID] = ru
	if tr := n.eng.trc; tr.Enabled() {
		tr.Emit(obs.Ev(obs.EvStart).Req(r.ID).Node(int(n.ID)).Service(int(r.Type)).
			Cls(r.Class.String()).Val(float64(alloc.MilliCPU)).
			Au(int64((now - r.enqueuedAt) / time.Microsecond)))
		if r.SpanID != 0 {
			tr.EmitSpan(obs.Sp(obs.SpanQueue, r.mark, now).Child(r.SpanID).Req(r.ID).
				Clu(int(n.Cluster)).Node(int(n.ID)).Service(int(r.Type)).Cls(r.Class.String()))
			r.mark = now
		}
	}
	n.scheduleDone(ru, n.eng.cfg.ScaleLatency)
}

// scheduleDone (re)schedules the completion event from workLeft.
func (n *Node) scheduleDone(ru *running, extra time.Duration) {
	if ru.done != nil {
		ru.done.Cancel()
	}
	ms := ru.workLeft / float64(ru.alloc.MilliCPU)
	d := extra + time.Duration(ms*float64(time.Millisecond))
	ru.done = n.eng.cfg.Sim.Schedule(d, func() { n.finish(ru) })
}

// settle updates workLeft for elapsed time at the current speed.
func (n *Node) settle(ru *running) {
	now := n.eng.cfg.Sim.Now()
	elapsed := now - ru.lastUpdate
	if elapsed > 0 {
		doneWork := float64(elapsed) / float64(time.Millisecond) * float64(ru.alloc.MilliCPU)
		ru.workLeft -= doneWork
		if ru.workLeft < 0 {
			ru.workLeft = 0
		}
	}
	ru.lastUpdate = now
}

func (n *Node) finish(ru *running) {
	r := ru.req
	delete(n.running, r.ID)
	n.used = n.used.Sub(ru.alloc)
	if r.Class == trace.LC {
		n.usedLC = n.usedLC.Sub(ru.alloc)
	}
	now := n.eng.cfg.Sim.Now()
	// Response returns to the user through the master.
	ret := n.eng.TransitDelay(r.Cluster, n.ID, r.SType.TxKB)
	latency := now + ret - r.Arrival
	satisfied := true
	if r.Class == trace.LC && r.SType.QoSTarget > 0 {
		satisfied = latency <= r.SType.QoSTarget
	}
	n.eng.Completed++
	if tr := n.eng.trc; tr.Enabled() {
		var sat int64
		if satisfied {
			sat = 1
		}
		tr.Emit(obs.Ev(obs.EvFinish).Req(r.ID).Node(int(n.ID)).Service(int(r.Type)).
			Cls(r.Class.String()).Val(float64(latency) / float64(time.Millisecond)).Au(sat))
		if r.SpanID != 0 {
			tr.EmitSpan(obs.Sp(obs.SpanExec, r.mark, now).Child(r.SpanID).Req(r.ID).
				Clu(int(n.Cluster)).Node(int(n.ID)).Service(int(r.Type)).Cls(r.Class.String()))
			tr.EmitSpan(obs.Sp(obs.SpanReturn, now, now+ret).Child(r.SpanID).Req(r.ID).
				Clu(int(n.Cluster)).Node(int(n.ID)).Service(int(r.Type)).Cls(r.Class.String()))
			detail := ""
			if !satisfied {
				detail = "violated"
			}
			tr.EmitSpan(obs.Sp(obs.SpanRequest, r.Arrival, now+ret).WithID(r.SpanID).Req(r.ID).
				Clu(int(r.Cluster)).Node(int(n.ID)).Service(int(r.Type)).Cls(r.Class.String()).
				Dec(r.DecisionID).Note(detail))
			r.mark = now
		}
	}
	n.eng.emit(Outcome{Req: r, Completed: true, Satisfied: satisfied, Latency: latency, FinishedAt: now})
	n.drain()
}

// drain offers queued requests (LC first) to the policy until it refuses.
func (n *Node) drain() {
	progress := true
	for progress {
		progress = false
		if len(n.queueLC) > 0 {
			r := n.queueLC[0]
			if alloc, ok := n.admit(r); ok {
				n.queueLC = n.queueLC[1:]
				n.start(r, alloc)
				progress = true
				continue
			}
		}
		if len(n.queueBE) > 0 {
			r := n.queueBE[0]
			if alloc, ok := n.admit(r); ok {
				n.queueBE = n.queueBE[1:]
				n.start(r, alloc)
				progress = true
			}
		}
	}
}

func (e *Engine) emit(o Outcome) {
	if e.cfg.OnOutcome != nil {
		e.cfg.OnOutcome(o)
	}
}

// ---- state accessors (used by policies and schedulers) ----

// Free returns capacity minus all running allocations.
func (n *Node) Free() res.Vector { return n.Capacity.Sub(n.used) }

// Used returns the sum of running allocations.
func (n *Node) Used() res.Vector { return n.used }

// UsedByLC returns the LC share of Used.
func (n *Node) UsedByLC() res.Vector { return n.usedLC }

// UsedByBE returns the BE share of Used.
func (n *Node) UsedByBE() res.Vector { return n.used.Sub(n.usedLC) }

// AvailableForLC is what LC admission may draw on under the §4.1
// regulations: idle resources plus everything BE currently holds
// (compressible via shares transfer, incompressible via eviction).
func (n *Node) AvailableForLC() res.Vector { return n.Capacity.Sub(n.usedLC) }

// QueueLen returns (LC, BE) queue lengths.
func (n *Node) QueueLen() (int, int) { return len(n.queueLC), len(n.queueBE) }

// InTransit returns the demand of requests dispatched to this node that
// have not arrived yet.
func (n *Node) InTransit() res.Vector { return n.inTransit }

// QueuedDemand sums the effective demand of every request waiting in
// this node's queues.
func (n *Node) QueuedDemand() res.Vector {
	sum := n.QueuedLCDemand()
	for _, r := range n.queueBE {
		sum = sum.Add(n.EffectiveDemand(r.Type))
	}
	return sum
}

// ProjectedUtilization is the dominant-share load counting running
// allocations, queued demand and in-transit dispatches — the forward-
// looking view a load balancer uses.
func (n *Node) ProjectedUtilization() float64 {
	return n.used.Add(n.inTransit).Add(n.QueuedDemand()).DominantShare(n.Capacity)
}

// QueuedLCDemand sums the effective demand of LC requests waiting in
// this node's queue — resources already spoken for by earlier dispatch
// rounds, which DSS-LC subtracts from availability (Eq. 2).
func (n *Node) QueuedLCDemand() res.Vector {
	var sum res.Vector
	for _, r := range n.queueLC {
		sum = sum.Add(n.EffectiveDemand(r.Type))
	}
	return sum
}

// QueuedOfType counts queued requests of one service type.
func (n *Node) QueuedOfType(t trace.TypeID) int {
	c := 0
	for _, r := range n.queueLC {
		if r.Type == t {
			c++
		}
	}
	for _, r := range n.queueBE {
		if r.Type == t {
			c++
		}
	}
	return c
}

// RunningCount returns the number of in-flight requests.
func (n *Node) RunningCount() int { return len(n.running) }

// EffectiveDemand is the minimum allocation for a type on this node,
// after any QoS re-assurance override.
func (n *Node) EffectiveDemand(t trace.TypeID) res.Vector {
	if v, ok := n.AllocOverride[t]; ok {
		return v
	}
	return n.eng.cfg.Catalog.Type(t).MinDemand
}

// Utilization returns Used/Capacity as the dominant-share fraction.
func (n *Node) Utilization() float64 { return n.used.DominantShare(n.Capacity) }

// CPUUtilization returns the CPU fraction in use.
func (n *Node) CPUUtilization() float64 {
	if n.Capacity.MilliCPU == 0 {
		return 0
	}
	return float64(n.used.MilliCPU) / float64(n.Capacity.MilliCPU)
}

// ---- preemption mechanics (§4.1) ----

// CompressBE transfers compressible resources (CPU, bandwidth) from
// running BE requests to the caller, newest victims first, without
// stopping them: each victim keeps at least minKeepFrac of its original
// CPU. Returns how much was actually freed.
func (n *Node) CompressBE(need res.Vector, minKeepFrac float64) res.Vector {
	if minKeepFrac <= 0 {
		minKeepFrac = 0.25
	}
	var freed res.Vector
	victims := n.runningBENewestFirst()
	for _, ru := range victims {
		if freed.MilliCPU >= need.MilliCPU && freed.BWMbps >= need.BWMbps {
			break
		}
		n.settle(ru)
		floorCPU := int64(float64(ru.req.SType.MinDemand.MilliCPU)*minKeepFrac + 0.5)
		if floorCPU < 10 {
			floorCPU = 10
		}
		cutCPU := ru.alloc.MilliCPU - floorCPU
		if cutCPU < 0 {
			cutCPU = 0
		}
		if wantCPU := need.MilliCPU - freed.MilliCPU; cutCPU > wantCPU {
			cutCPU = wantCPU
		}
		cutBW := ru.alloc.BWMbps
		if wantBW := need.BWMbps - freed.BWMbps; cutBW > wantBW {
			cutBW = wantBW
		}
		if cutCPU <= 0 && cutBW <= 0 {
			continue
		}
		cut := res.V(cutCPU, 0, cutBW)
		ru.alloc = ru.alloc.Sub(cut)
		n.used = n.used.Sub(cut)
		freed = freed.Add(cut)
		n.ScaleOps++
		if tr := n.eng.trc; tr.Enabled() {
			tr.Emit(obs.Ev(obs.EvCompress).Req(ru.req.ID).Node(int(n.ID)).
				Service(int(ru.req.Type)).Val(float64(cutCPU)).Au(cutBW))
		}
		n.scheduleDone(ru, 0)
	}
	return freed
}

// EvictBE evicts running BE requests (newest first) until at least
// needMemMiB of memory is reclaimed or no BE remains. Evicted requests
// are restarted from scratch at the tail of this node's BE queue
// (the §4.1 "evicting and restarting running BE services at a later
// time"). Returns the reclaimed memory.
func (n *Node) EvictBE(needMemMiB int64) int64 {
	var reclaimed int64
	for _, ru := range n.runningBENewestFirst() {
		if reclaimed >= needMemMiB {
			break
		}
		if ru.done != nil {
			ru.done.Cancel()
		}
		delete(n.running, ru.req.ID)
		n.used = n.used.Sub(ru.alloc)
		reclaimed += ru.alloc.MemoryMiB
		ru.req.Restarts++
		n.queueBE = append(n.queueBE, ru.req)
		n.ScaleOps++
		if tr := n.eng.trc; tr.Enabled() {
			tr.Emit(obs.Ev(obs.EvEvict).Req(ru.req.ID).Node(int(n.ID)).
				Service(int(ru.req.Type)).Val(float64(ru.alloc.MemoryMiB)).Au(int64(ru.req.Restarts)))
			n.emitEvictedSpan(ru.req)
		}
	}
	return reclaimed
}

// emitEvictedSpan closes the evicted request's current stage as an
// "evicted" child span, so restart cycles stay visible in the tiling.
func (n *Node) emitEvictedSpan(r *Request) {
	if r.SpanID == 0 {
		return
	}
	now := n.eng.cfg.Sim.Now()
	n.eng.trc.EmitSpan(obs.Sp(obs.SpanEvicted, r.mark, now).Child(r.SpanID).Req(r.ID).
		Clu(int(n.Cluster)).Node(int(n.ID)).Service(int(r.Type)).Cls(r.Class.String()))
	r.mark = now
}

// EvictBEUntil evicts running BE requests (newest first, restarting them
// at the BE queue tail) until the node's free resources fit need, or no
// BE remains. It reports whether need now fits.
func (n *Node) EvictBEUntil(need res.Vector) bool {
	for _, ru := range n.runningBENewestFirst() {
		if n.Free().Fits(need) {
			return true
		}
		if ru.done != nil {
			ru.done.Cancel()
		}
		delete(n.running, ru.req.ID)
		n.used = n.used.Sub(ru.alloc)
		ru.req.Restarts++
		n.queueBE = append(n.queueBE, ru.req)
		n.ScaleOps++
		if tr := n.eng.trc; tr.Enabled() {
			tr.Emit(obs.Ev(obs.EvEvict).Req(ru.req.ID).Node(int(n.ID)).
				Service(int(ru.req.Type)).Val(float64(ru.alloc.MemoryMiB)).Au(int64(ru.req.Restarts)))
			n.emitEvictedSpan(ru.req)
		}
	}
	return n.Free().Fits(need)
}

func (n *Node) runningBENewestFirst() []*running {
	var out []*running
	for _, ru := range n.running {
		if ru.req.Class == trace.BE {
			out = append(out, ru)
		}
	}
	// newest (highest seq) first; deterministic because seq is unique
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].seq > out[j-1].seq; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// GrantBE expands a running BE request's CPU allocation up to extra
// additional millicores if idle resources allow (BE maximizing idle
// resources, §4.1, Figure 4(a)). Returns the amount granted.
func (n *Node) GrantBE(reqID int64, extraCPU int64) int64 {
	ru, ok := n.running[reqID]
	if !ok || ru.req.Class != trace.BE {
		return 0
	}
	free := n.Free().MilliCPU
	if extraCPU > free {
		extraCPU = free
	}
	if extraCPU <= 0 {
		return 0
	}
	n.settle(ru)
	ru.alloc.MilliCPU += extraCPU
	n.used.MilliCPU += extraCPU
	n.ScaleOps++
	if tr := n.eng.trc; tr.Enabled() {
		tr.Emit(obs.Ev(obs.EvBoost).Req(reqID).Node(int(n.ID)).
			Service(int(ru.req.Type)).Val(float64(extraCPU)))
	}
	n.scheduleDone(ru, 0)
	return extraCPU
}

// RunningBE lists the IDs of running BE requests (newest first).
func (n *Node) RunningBE() []int64 {
	var ids []int64
	for _, ru := range n.runningBENewestFirst() {
		ids = append(ids, ru.req.ID)
	}
	return ids
}

// Down reports whether the node has failed.
func (n *Node) Down() bool { return n.down }

// Fail takes the node down: every running and queued request is
// displaced (handed to Config.OnDisplaced, or emitted as failed
// outcomes), allocations are released, and future arrivals are displaced
// immediately until Recover is called.
func (n *Node) Fail() {
	if n.down {
		return
	}
	n.down = true
	var displaced []*Request
	for _, ru := range n.running {
		if ru.done != nil {
			ru.done.Cancel()
		}
		n.used = n.used.Sub(ru.alloc)
		if ru.req.Class == trace.LC {
			n.usedLC = n.usedLC.Sub(ru.alloc)
		}
		ru.req.Restarts++
		displaced = append(displaced, ru.req)
	}
	n.running = map[int64]*running{}
	for _, r := range n.queueLC {
		if r.abandonEv != nil {
			r.abandonEv.Cancel()
			r.abandonEv = nil
		}
		displaced = append(displaced, r)
	}
	displaced = append(displaced, n.queueBE...)
	n.queueLC, n.queueBE = nil, nil
	// Deterministic order: by request ID.
	for i := 1; i < len(displaced); i++ {
		for j := i; j > 0 && displaced[j].ID < displaced[j-1].ID; j-- {
			displaced[j], displaced[j-1] = displaced[j-1], displaced[j]
		}
	}
	if tr := n.eng.trc; tr.Enabled() {
		tr.Emit(obs.Ev(obs.EvNodeFail).Node(int(n.ID)).Clu(int(n.Cluster)).Au(int64(len(displaced))))
		// The displaced slice is sorted by request ID, so span emission
		// order stays deterministic despite the map walk above.
		now := n.eng.cfg.Sim.Now()
		for _, r := range displaced {
			if r.SpanID == 0 {
				continue
			}
			tr.EmitSpan(obs.Sp(obs.SpanInterrupted, r.mark, now).Child(r.SpanID).Req(r.ID).
				Clu(int(n.Cluster)).Node(int(n.ID)).Service(int(r.Type)).Cls(r.Class.String()))
			r.mark = now
		}
	}
	n.eng.displace(displaced)
}

// Recover brings a failed node back with empty queues and full capacity.
func (n *Node) Recover() {
	if n.down {
		if tr := n.eng.trc; tr.Enabled() {
			tr.Emit(obs.Ev(obs.EvNodeRecover).Node(int(n.ID)).Clu(int(n.Cluster)))
		}
	}
	n.down = false
}

func (e *Engine) displace(reqs []*Request) {
	if len(reqs) == 0 {
		return
	}
	if e.cfg.OnDisplaced != nil {
		e.cfg.OnDisplaced(reqs)
		return
	}
	now := e.cfg.Sim.Now()
	for _, r := range reqs {
		if r.Class == trace.LC {
			e.Abandoned++
		}
		if tr := e.trc; tr.Enabled() && r.SpanID != 0 {
			tr.EmitSpan(obs.Sp(obs.SpanRequest, r.Arrival, now).WithID(r.SpanID).Req(r.ID).
				Clu(int(r.Cluster)).Service(int(r.Type)).Cls(r.Class.String()).
				Dec(r.DecisionID).Note("displaced"))
		}
		e.emit(Outcome{Req: r, Completed: false, Satisfied: false,
			Latency: now - r.Arrival, FinishedAt: now})
	}
}

// GreedyPolicy admits a request whenever its effective demand fits the
// node's idle resources — no priorities, no preemption. This is the
// baseline "unordered competition" behaviour of native K8s co-location.
type GreedyPolicy struct{}

// Admit implements Policy.
func (GreedyPolicy) Admit(n *Node, r *Request) (res.Vector, bool) {
	d := n.EffectiveDemand(r.Type)
	if n.Free().Fits(d) {
		return d, true
	}
	return res.Vector{}, false
}

// Name implements Policy.
func (GreedyPolicy) Name() string { return "greedy" }
