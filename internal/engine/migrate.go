// Live migration and cluster-scale failure mechanics (ROADMAP item 3,
// after KubeDSM/ecmus): a running request can be checkpointed, shipped
// to another worker over the LAN/WAN latency model, and resumed with
// its progress intact. The defragmenter (internal/chaos) and the chaos
// injector drive these; both are ordinary sim-event users, so every
// migration replays deterministically.
package engine

import (
	"time"

	"repro/internal/obs"
	"repro/internal/res"
	"repro/internal/topo"
	"repro/internal/trace"
)

// migrationStateKB models the checkpoint payload of a live migration:
// the dirty fraction of the request's memory allocation (1/64 of the
// resident set) plus the request payload itself. On the default link
// model that prices an intra-cluster move of a 512 MiB BE service at
// ~65 ms and a cross-WAN move at ~330 ms — cheap enough to pay off
// under churn, expensive enough that defrag prefers nearby receivers.
func migrationStateKB(alloc res.Vector, r *Request) int64 {
	return alloc.MemoryMiB*16 + r.SType.TxKB
}

// Migrate live-migrates a running request from one worker to another.
// The source releases its allocation immediately, the remaining work is
// checkpointed onto the request, and after the transfer delay (half an
// RTT plus checkpoint serialization over the link bandwidth) the
// request arrives at the target like any dispatched request — so a
// target that dies mid-transfer displaces it through the normal
// failure path instead of losing it. Returns false without side
// effects when the request is not running on `from`, either node is
// down, the clusters are partitioned, or the request is about to
// finish anyway.
func (e *Engine) Migrate(from, to topo.NodeID, reqID int64) bool {
	if from == to {
		return false
	}
	src, dst := e.Node(from), e.Node(to)
	ru, ok := src.running[reqID]
	if !ok || src.down || dst.down {
		return false
	}
	t := e.cfg.Topo
	if !t.Reachable(src.Cluster, dst.Cluster) {
		return false
	}
	src.settle(ru)
	if ru.workLeft <= 0 {
		return false
	}
	if ru.done != nil {
		ru.done.Cancel()
	}
	r := ru.req
	delete(src.running, reqID)
	src.used = src.used.Sub(ru.alloc)
	if r.Class == trace.LC {
		src.usedLC = src.usedLC.Sub(ru.alloc)
	}
	r.carryWork = ru.workLeft

	stateKB := migrationStateKB(ru.alloc, r)
	bw := t.LinkBandwidth(from, to)
	ser := time.Duration(float64(stateKB*8) / float64(bw) * float64(time.Millisecond))
	delay := t.RTT(from, to)/2 + ser
	d := dst.EffectiveDemand(r.Type)
	dst.inTransit = dst.inTransit.Add(d)
	e.Migrations++
	now := e.cfg.Sim.Now()
	if tr := e.trc; tr.Enabled() {
		tr.Emit(obs.Ev(obs.EvMigrate).Req(r.ID).Clu(int(src.Cluster)).Node(int(from)).
			Service(int(r.Type)).Cls(r.Class.String()).
			Val(float64(delay) / float64(time.Millisecond)).Au(int64(to)))
		if r.SpanID != 0 {
			// Close the partial execution at the source so the child spans
			// keep tiling [Arrival, completion]; the transfer window itself
			// becomes a "migrate" span on arrival.
			tr.EmitSpan(obs.Sp(obs.SpanExec, r.mark, now).Child(r.SpanID).Req(r.ID).
				Clu(int(src.Cluster)).Node(int(from)).Service(int(r.Type)).Cls(r.Class.String()))
			r.mark = now
		}
	}
	r.Target = to
	e.cfg.Sim.Schedule(delay, func() {
		dst.inTransit = dst.inTransit.Sub(d)
		if tr := e.trc; tr.Enabled() && r.SpanID != 0 {
			nw := e.cfg.Sim.Now()
			tr.EmitSpan(obs.Sp(obs.SpanMigrate, r.mark, nw).Child(r.SpanID).Req(r.ID).
				Clu(int(dst.Cluster)).Node(int(to)).Service(int(r.Type)).Cls(r.Class.String()))
			r.mark = nw
		}
		dst.arrive(r)
	})
	return true
}

// FailCluster fails every live worker of a cluster in the same tick.
// Requests already in transit to the cluster displace on arrival and
// flow through OnDisplaced (or failed outcomes) like the killed nodes'
// own work — never silently dropped. Returns how many workers went
// down.
func (e *Engine) FailCluster(c topo.ClusterID) int {
	count := 0
	for _, w := range e.cfg.Topo.WorkersOf(c) {
		if n := e.Node(w); !n.down {
			n.Fail()
			count++
		}
	}
	return count
}

// RecoverCluster revives every failed worker of a cluster. Returns how
// many workers came back.
func (e *Engine) RecoverCluster(c topo.ClusterID) int {
	count := 0
	for _, w := range e.cfg.Topo.WorkersOf(c) {
		if n := e.Node(w); n.down {
			n.Recover()
			count++
		}
	}
	return count
}

// DisplaceFailed resolves requests that will never be served again as
// failed outcomes (abandonments for LC), bypassing OnDisplaced. The
// dispatcher's end-of-run flush uses it so every accepted request
// resolves to exactly one outcome even when a failure lands so late
// that no dispatch round remains to re-route the re-queued work.
func (e *Engine) DisplaceFailed(reqs []*Request) {
	if len(reqs) == 0 {
		return
	}
	saved := e.cfg.OnDisplaced
	e.cfg.OnDisplaced = nil
	e.displace(reqs)
	e.cfg.OnDisplaced = saved
}

// NewestBE returns the ID and service type of the newest-admitted
// running BE request — the defragmenter's preferred migration victim,
// matching the newest-first order the preemption mechanics use. The
// max-by-seq scan is allocation-free and deterministic even though map
// iteration order is not.
func (n *Node) NewestBE() (int64, trace.TypeID, bool) {
	var best *running
	for _, ru := range n.running {
		if ru.req.Class != trace.BE {
			continue
		}
		if best == nil || ru.seq > best.seq {
			best = ru
		}
	}
	if best == nil {
		return 0, 0, false
	}
	return best.req.ID, best.req.Type, true
}

// RunningBECount counts running BE requests without allocating.
func (n *Node) RunningBECount() int {
	count := 0
	for _, ru := range n.running {
		if ru.req.Class == trace.BE {
			count++
		}
	}
	return count
}
