package engine

import (
	"testing"
	"time"

	"repro/internal/res"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// migEnv builds two 2-worker clusters ~260 km apart so both LAN and WAN
// migrations are exercised. Workers are 1..2 (cluster 0) and 4..5
// (cluster 1).
func migEnv(onDisplaced func([]*Request), onOutcome func(Outcome)) (*sim.Simulator, *Engine, *topo.Topology) {
	s := sim.New()
	b := topo.NewBuilder()
	caps := []res.Vector{res.V(4000, 8192, 500), res.V(4000, 8192, 500)}
	b.AddCluster(31.2, 121.5, res.V(8000, 16384, 1000), caps)
	b.AddCluster(32.1, 118.8, res.V(8000, 16384, 1000), caps)
	tp := b.Build()
	e := New(Config{
		Sim: s, Topo: tp, Catalog: trace.DefaultCatalog(), Policy: GreedyPolicy{},
		OnOutcome: onOutcome, OnDisplaced: onDisplaced, LCAbandonFactor: 1,
	})
	return s, e, tp
}

// expectedTransfer reproduces the migration cost model for assertions:
// half an RTT plus the checkpoint (1/64 of resident memory + payload)
// over the link bandwidth.
func expectedTransfer(tp *topo.Topology, from, to topo.NodeID, st trace.ServiceType) time.Duration {
	stateKB := st.MinDemand.MemoryMiB*16 + st.TxKB
	ser := time.Duration(float64(stateKB*8) / float64(tp.LinkBandwidth(from, to)) * float64(time.Millisecond))
	return tp.RTT(from, to)/2 + ser
}

func TestMigratePreservesProgress(t *testing.T) {
	s, e, tp := migEnv(nil, nil)
	st := trace.DefaultCatalog().Type(6) // be-training: 900k mcpu-ms / 1000 mcpu
	full := time.Duration(float64(st.Work) / float64(st.MinDemand.MilliCPU) * float64(time.Millisecond))
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 1, Type: 6, Class: trace.BE, Cluster: 0}), 1)
	s.RunFor(full / 2)
	if !e.Migrate(1, 2, 1) {
		t.Fatal("intra-cluster migration refused")
	}
	src := e.Node(1)
	if src.RunningCount() != 0 || !src.Used().IsZero() {
		t.Fatalf("source did not release: running=%d used=%v", src.RunningCount(), src.Used())
	}
	s.Run()
	if e.Completed != 1 {
		t.Fatalf("completed = %d, want 1", e.Completed)
	}
	// Progress carried: finish at half + transfer + remaining half, not
	// half + transfer + full (a restart).
	want := full/2 + expectedTransfer(tp, 1, 2, st) + full/2
	if diff := s.Now() - want; diff < -2*time.Millisecond || diff > 2*time.Millisecond {
		t.Fatalf("finish at %v, want ~%v (restart would be ~%v)", s.Now(), want, want+full/2)
	}
	if err := e.SelfCheck(); err != nil {
		t.Fatalf("self-check: %v", err)
	}
}

func TestMigrateTargetDiesMidTransfer(t *testing.T) {
	var displaced []*Request
	s, e, _ := migEnv(func(rs []*Request) { displaced = append(displaced, rs...) }, nil)
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 7, Type: 6, Class: trace.BE, Cluster: 0}), 1)
	s.RunFor(100 * time.Millisecond)
	if !e.Migrate(1, 4, 7) {
		t.Fatal("cross-cluster migration refused")
	}
	e.Node(4).Fail() // target dies while the checkpoint is on the wire
	s.Run()
	if len(displaced) != 1 || displaced[0].ID != 7 {
		t.Fatalf("displaced = %v, want exactly request 7", displaced)
	}
	if e.Completed != 0 {
		t.Fatalf("completed = %d, want 0", e.Completed)
	}
	if err := e.SelfCheck(); err != nil {
		t.Fatalf("self-check after mid-transfer death: %v", err)
	}
	// The checkpoint survives displacement: re-dispatching the request
	// resumes it instead of restarting.
	if displaced[0].carryWork <= 0 {
		t.Fatal("displaced migration lost its checkpoint")
	}
}

func TestMigrateDuringPartitionRefused(t *testing.T) {
	s, e, tp := migEnv(nil, nil)
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 3, Type: 6, Class: trace.BE, Cluster: 0}), 1)
	s.RunFor(50 * time.Millisecond)
	tp.Net().Partition(0, 1)
	if e.Migrate(1, 4, 3) {
		t.Fatal("migration crossed a partitioned WAN link")
	}
	if e.Node(1).RunningCount() != 1 {
		t.Fatal("refused migration must leave the source untouched")
	}
	tp.Net().Heal(0, 1)
	if !e.Migrate(1, 4, 3) {
		t.Fatal("migration refused after heal")
	}
	s.Run()
	if e.Completed != 1 {
		t.Fatalf("completed = %d, want 1", e.Completed)
	}
}

func TestMigrateRefusals(t *testing.T) {
	s, e, _ := migEnv(nil, nil)
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 1, Type: 6, Class: trace.BE, Cluster: 0}), 1)
	if e.Migrate(1, 1, 1) {
		t.Fatal("self-migration accepted")
	}
	if e.Migrate(2, 1, 1) {
		t.Fatal("migrating a request that is not on the source accepted")
	}
	e.Node(2).Fail()
	if e.Migrate(1, 2, 1) {
		t.Fatal("migration onto a down node accepted")
	}
	e.Node(2).Recover()
	s.Run()
	if e.Completed != 1 {
		t.Fatalf("completed = %d, want 1", e.Completed)
	}
}
