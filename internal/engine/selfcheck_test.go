package engine

import (
	"strings"
	"testing"
	"time"
)

func TestSelfCheckCleanThroughLifecycle(t *testing.T) {
	s, e, _ := testEnv(nil, nil)
	// Mid-flight, mid-queue and drained states must all pass.
	for i := int64(1); i <= 12; i++ {
		e.Dispatch(e.NewRequest(mkReq(i, 3, 0)), 1)
	}
	checkAt := []time.Duration{10 * time.Millisecond, 100 * time.Millisecond, 500 * time.Millisecond}
	for _, at := range checkAt {
		s.ScheduleAt(at, func() {
			if err := e.SelfCheck(); err != nil {
				t.Errorf("self-check at %v: %v", at, err)
			}
		})
	}
	s.Run()
	if err := e.SelfCheck(); err != nil {
		t.Fatalf("self-check after drain: %v", err)
	}
}

func TestSelfCheckAfterFailure(t *testing.T) {
	s, e, _ := testEnv(nil, nil)
	for i := int64(1); i <= 6; i++ {
		e.Dispatch(e.NewRequest(mkReq(i, 3, 0)), 1)
	}
	s.RunFor(20 * time.Millisecond)
	e.Node(1).Fail()
	if err := e.SelfCheck(); err != nil {
		t.Fatalf("self-check after node failure: %v", err)
	}
	s.Run()
	if err := e.SelfCheck(); err != nil {
		t.Fatalf("self-check after drain: %v", err)
	}
}

// corrupt the accounting directly and confirm the sweep notices. Each
// case gets a fresh engine with one running request.
func TestSelfCheckDetectsCorruption(t *testing.T) {
	setup := func() (*Engine, *Node) {
		s, e, _ := testEnv(nil, nil)
		e.Dispatch(e.NewRequest(mkReq(1, 1, 0)), 1)
		s.RunFor(50 * time.Millisecond) // request is mid-execution
		n := e.Node(1)
		if len(n.running) != 1 {
			t.Fatalf("setup: running = %d, want 1", len(n.running))
		}
		return e, n
	}

	cases := []struct {
		name    string
		mutate  func(n *Node)
		wantSub string
	}{
		{"used drift", func(n *Node) { n.used.MilliCPU += 100 }, "sum of running"},
		{"usedLC drift", func(n *Node) { n.usedLC.MilliCPU -= 50 }, "sum of LC"},
		{"over capacity", func(n *Node) {
			for _, ru := range n.running {
				ru.alloc.MilliCPU = n.Capacity.MilliCPU + 1
				n.used = ru.alloc
				n.usedLC = ru.alloc
			}
		}, "exceeds capacity"},
		{"negative transit", func(n *Node) { n.inTransit.MilliCPU = -1 }, "in-transit"},
		{"down with work", func(n *Node) { n.down = true }, "down but holds"},
		{"zero-cpu alloc", func(n *Node) {
			for _, ru := range n.running {
				ru.alloc.MilliCPU = 0
			}
			n.used.MilliCPU = 0
			n.usedLC.MilliCPU = 0
		}, "invalid allocation"},
	}
	for _, tc := range cases {
		e, n := setup()
		tc.mutate(n)
		err := e.SelfCheck()
		if err == nil {
			t.Errorf("%s: corruption not detected", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}
