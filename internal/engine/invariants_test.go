package engine

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/res"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// preemptPolicy mirrors the HRM admission rules (LC may compress/evict
// BE) without importing the hrm package (which depends on engine).
type preemptPolicy struct{}

func (preemptPolicy) Name() string { return "preempt-test" }
func (preemptPolicy) Admit(n *Node, r *Request) (res.Vector, bool) {
	d := n.EffectiveDemand(r.Type)
	if n.Free().Fits(d) {
		return d, true
	}
	if r.Class == trace.BE {
		return res.Vector{}, false
	}
	if !n.AvailableForLC().Fits(d) {
		return res.Vector{}, false
	}
	n.CompressBE(d.Sub(n.Free()).Max(res.Vector{}), 0.25)
	if n.Free().Fits(d) {
		return d, true
	}
	if n.EvictBEUntil(d) {
		return d, true
	}
	return res.Vector{}, false
}

// TestQuickEngineInvariants drives random workloads with random
// mid-flight preemption, boosting and failures, and checks after every
// step that node accounting never goes negative or above capacity, and
// that at the end every request is accounted for exactly once.
func TestQuickEngineInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := sim.New()
		b := topo.NewBuilder()
		b.AddCluster(31, 121, res.V(8000, 16384, 1000), []res.Vector{
			res.V(4000, 8192, 500), res.V(2000, 4096, 200),
		})
		tp := b.Build()
		outcomes := 0
		displaced := 0
		e := New(Config{
			Sim: s, Topo: tp, Catalog: trace.DefaultCatalog(), Policy: preemptPolicy{},
			LCAbandonFactor: 1,
			OnOutcome:       func(o Outcome) { outcomes++ },
			OnDisplaced:     func(rs []*Request) { displaced += len(rs) },
		})
		check := func() bool {
			for _, n := range e.Nodes() {
				if !n.Used().Nonnegative() || !n.UsedByLC().Nonnegative() {
					return false
				}
				if !n.Capacity.Fits(n.Used()) {
					return false
				}
				if !n.Used().Fits(n.UsedByLC()) {
					return false
				}
			}
			return true
		}
		total := 0
		workers := tp.Cluster(0).Workers
		for step := 0; step < 60; step++ {
			switch rng.Intn(10) {
			case 0: // random compression
				n := e.Node(workers[rng.Intn(2)])
				n.CompressBE(res.V(int64(rng.Intn(2000)), 0, 0), 0.25)
			case 1: // random boost
				n := e.Node(workers[rng.Intn(2)])
				for _, id := range n.RunningBE() {
					n.GrantBE(id, int64(rng.Intn(1000)))
				}
			case 2: // random eviction
				e.Node(workers[rng.Intn(2)]).EvictBE(int64(rng.Intn(3000)))
			case 3: // fail/recover
				n := e.Node(workers[rng.Intn(2)])
				if n.Down() {
					n.Recover()
				} else if rng.Intn(2) == 0 {
					n.Fail()
				}
			default: // inject a request
				tid := trace.TypeID(rng.Intn(10))
				r := e.NewRequest(trace.Request{
					ID: int64(total), Type: tid,
					Class:   trace.DefaultCatalog().Type(tid).Class,
					Arrival: s.Now(), Cluster: 0,
				})
				total++
				e.Dispatch(r, workers[rng.Intn(2)])
			}
			s.RunFor(time.Duration(rng.Intn(200)) * time.Millisecond)
			if !check() {
				return false
			}
		}
		// Recover everything and drain; every injected request must end
		// exactly once (outcome) or have been displaced to the caller.
		for _, w := range workers {
			e.Node(w).Recover()
		}
		s.RunFor(time.Hour)
		return outcomes+displaced+queued(e, workers) == total && check()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// queued counts requests still sitting in node queues (valid end state
// for BE work whose node saw no further drain trigger).
func queued(e *Engine, workers []topo.NodeID) int {
	total := 0
	for _, w := range workers {
		lc, be := e.Node(w).QueueLen()
		total += lc + be
	}
	return total
}
