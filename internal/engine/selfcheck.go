package engine

import (
	"fmt"

	"repro/internal/res"
	"repro/internal/trace"
)

// Internal-accounting invariants, swept by internal/check during
// verification runs. These live in the engine package because they
// validate unexported state (running allocations vs. the used/usedLC
// aggregates) that the public accessors deliberately do not expose.

// SelfCheck validates every node's internal accounting and returns the
// first violation found (nil when the engine is consistent).
func (e *Engine) SelfCheck() error {
	for _, n := range e.Nodes() {
		if err := n.SelfCheck(); err != nil {
			return err
		}
	}
	return nil
}

// SelfCheck validates the node's bookkeeping invariants:
//
//   - used equals the sum of running allocations, and usedLC the sum of
//     the LC subset (the incremental add/sub updates must never drift);
//   - no allocation is zero-CPU or negative, and each running entry is
//     keyed by its own request ID;
//   - used never exceeds Capacity (admission over-commit);
//   - in-transit demand is nonnegative;
//   - a failed node holds no running or queued work;
//   - queue membership matches request class.
func (n *Node) SelfCheck() error {
	var sum, sumLC res.Vector
	for id, ru := range n.running {
		if ru == nil || ru.req == nil {
			return fmt.Errorf("node %d: nil running entry %d", n.ID, id)
		}
		if ru.req.ID != id {
			return fmt.Errorf("node %d: running entry keyed %d holds request %d", n.ID, id, ru.req.ID)
		}
		if ru.alloc.MilliCPU <= 0 || !ru.alloc.Nonnegative() {
			return fmt.Errorf("node %d: request %d has invalid allocation %+v", n.ID, id, ru.alloc)
		}
		sum = sum.Add(ru.alloc)
		if ru.req.Class == trace.LC {
			sumLC = sumLC.Add(ru.alloc)
		}
	}
	if sum != n.used {
		return fmt.Errorf("node %d: used %+v != sum of running allocations %+v", n.ID, n.used, sum)
	}
	if sumLC != n.usedLC {
		return fmt.Errorf("node %d: usedLC %+v != sum of LC allocations %+v", n.ID, n.usedLC, sumLC)
	}
	if !n.Capacity.Fits(n.used) {
		return fmt.Errorf("node %d: used %+v exceeds capacity %+v", n.ID, n.used, n.Capacity)
	}
	if !n.inTransit.Nonnegative() {
		return fmt.Errorf("node %d: negative in-transit demand %+v", n.ID, n.inTransit)
	}
	if n.down && (len(n.running) > 0 || len(n.queueLC) > 0 || len(n.queueBE) > 0) {
		return fmt.Errorf("node %d: down but holds %d running / %d+%d queued",
			n.ID, len(n.running), len(n.queueLC), len(n.queueBE))
	}
	for _, r := range n.queueLC {
		if r.Class != trace.LC {
			return fmt.Errorf("node %d: request %d of class %v in LC queue", n.ID, r.ID, r.Class)
		}
	}
	for _, r := range n.queueBE {
		if r.Class != trace.BE {
			return fmt.Errorf("node %d: request %d of class %v in BE queue", n.ID, r.ID, r.Class)
		}
	}
	return nil
}
