package engine

import (
	"testing"
	"time"

	"repro/internal/res"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

func failEnv(onDisplaced func([]*Request), onOutcome func(Outcome)) (*sim.Simulator, *Engine) {
	s := sim.New()
	b := topo.NewBuilder()
	b.AddCluster(31, 121, res.V(8000, 16384, 1000), []res.Vector{
		res.V(4000, 8192, 500), res.V(4000, 8192, 500),
	})
	tp := b.Build()
	e := New(Config{
		Sim: s, Topo: tp, Catalog: trace.DefaultCatalog(), Policy: GreedyPolicy{},
		OnOutcome: onOutcome, OnDisplaced: onDisplaced, LCAbandonFactor: 1,
	})
	return s, e
}

func TestFailDisplacesRunningAndQueued(t *testing.T) {
	var displaced []*Request
	s, e := failEnv(func(rs []*Request) { displaced = append(displaced, rs...) }, nil)
	n := e.Node(1)
	// 4 running BE (fills CPU), 2 queued BE, 1 queued LC.
	for i := int64(0); i < 6; i++ {
		e.DispatchLocal(e.NewRequest(trace.Request{ID: i, Type: 6, Class: trace.BE, Cluster: 0}), 1)
	}
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 100, Type: 3, Class: trace.LC, Cluster: 0}), 1)
	if n.RunningCount() != 4 {
		t.Fatalf("setup: running = %d", n.RunningCount())
	}
	n.Fail()
	if !n.Down() {
		t.Fatal("node not down")
	}
	if len(displaced) != 7 {
		t.Fatalf("displaced = %d, want 7", len(displaced))
	}
	// Deterministic ID order.
	for i := 1; i < len(displaced); i++ {
		if displaced[i].ID < displaced[i-1].ID {
			t.Fatal("displaced not in ID order")
		}
	}
	if !n.Used().IsZero() {
		t.Fatalf("resources leaked: %v", n.Used())
	}
	lcq, beq := n.QueueLen()
	if lcq != 0 || beq != 0 {
		t.Fatal("queues not cleared")
	}
	// No completion events fire later.
	s.Run()
	if e.Completed != 0 {
		t.Fatalf("completed = %d after failure", e.Completed)
	}
}

func TestFailIsIdempotentAndRecoverWorks(t *testing.T) {
	calls := 0
	s, e := failEnv(func(rs []*Request) { calls++ }, nil)
	n := e.Node(1)
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 1, Type: 6, Class: trace.BE, Cluster: 0}), 1)
	n.Fail()
	n.Fail() // no-op
	if calls != 1 {
		t.Fatalf("OnDisplaced calls = %d", calls)
	}
	n.Recover()
	if n.Down() {
		t.Fatal("still down after Recover")
	}
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 2, Type: 6, Class: trace.BE, Cluster: 0}), 1)
	s.Run()
	if e.Completed != 1 {
		t.Fatalf("completed after recover = %d", e.Completed)
	}
}

func TestArrivalAtDownNodeDisplaced(t *testing.T) {
	var displaced []*Request
	s, e := failEnv(func(rs []*Request) { displaced = append(displaced, rs...) }, nil)
	e.Node(1).Fail()
	e.Dispatch(e.NewRequest(trace.Request{ID: 5, Type: 1, Class: trace.LC, Cluster: 0}), 1)
	s.Run()
	if len(displaced) != 1 || displaced[0].ID != 5 {
		t.Fatalf("displaced = %v", displaced)
	}
}

func TestFailWithoutHandlerEmitsFailedOutcomes(t *testing.T) {
	var outs []Outcome
	s, e := failEnv(nil, func(o Outcome) { outs = append(outs, o) })
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 1, Type: 1, Class: trace.LC, Cluster: 0}), 1)
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 2, Type: 6, Class: trace.BE, Cluster: 0}), 1)
	e.Node(1).Fail()
	if len(outs) != 2 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	for _, o := range outs {
		if o.Completed || o.Satisfied {
			t.Fatalf("failure outcome %+v should be failed", o)
		}
	}
	if e.Abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1 (the LC request)", e.Abandoned)
	}
	_ = s
}

func TestDisplacedRequestTracksRestart(t *testing.T) {
	var displaced []*Request
	_, e := failEnv(func(rs []*Request) { displaced = rs }, nil)
	r := e.NewRequest(trace.Request{ID: 1, Type: 6, Class: trace.BE, Cluster: 0})
	e.DispatchLocal(r, 1)
	e.Node(1).Fail()
	if len(displaced) != 1 || displaced[0].Restarts != 1 {
		t.Fatalf("running request should count a restart: %+v", displaced)
	}
}

func TestDownNodeExcludedUntilRecovery(t *testing.T) {
	s, e := failEnv(func(rs []*Request) {}, nil)
	n1, n2 := e.Node(1), e.Node(2)
	n1.Fail()
	// The other node still works.
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 1, Type: 1, Class: trace.LC, Cluster: 0}), 2)
	s.RunFor(5 * time.Second)
	if e.Completed != 1 {
		t.Fatal("healthy node should keep completing")
	}
	if n1.Down() == n2.Down() {
		t.Fatal("down state confused between nodes")
	}
}
