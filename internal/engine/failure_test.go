package engine

import (
	"testing"
	"time"

	"repro/internal/res"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

func failEnv(onDisplaced func([]*Request), onOutcome func(Outcome)) (*sim.Simulator, *Engine) {
	s := sim.New()
	b := topo.NewBuilder()
	b.AddCluster(31, 121, res.V(8000, 16384, 1000), []res.Vector{
		res.V(4000, 8192, 500), res.V(4000, 8192, 500),
	})
	tp := b.Build()
	e := New(Config{
		Sim: s, Topo: tp, Catalog: trace.DefaultCatalog(), Policy: GreedyPolicy{},
		OnOutcome: onOutcome, OnDisplaced: onDisplaced, LCAbandonFactor: 1,
	})
	return s, e
}

func TestFailDisplacesRunningAndQueued(t *testing.T) {
	var displaced []*Request
	s, e := failEnv(func(rs []*Request) { displaced = append(displaced, rs...) }, nil)
	n := e.Node(1)
	// 4 running BE (fills CPU), 2 queued BE, 1 queued LC.
	for i := int64(0); i < 6; i++ {
		e.DispatchLocal(e.NewRequest(trace.Request{ID: i, Type: 6, Class: trace.BE, Cluster: 0}), 1)
	}
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 100, Type: 3, Class: trace.LC, Cluster: 0}), 1)
	if n.RunningCount() != 4 {
		t.Fatalf("setup: running = %d", n.RunningCount())
	}
	n.Fail()
	if !n.Down() {
		t.Fatal("node not down")
	}
	if len(displaced) != 7 {
		t.Fatalf("displaced = %d, want 7", len(displaced))
	}
	// Deterministic ID order.
	for i := 1; i < len(displaced); i++ {
		if displaced[i].ID < displaced[i-1].ID {
			t.Fatal("displaced not in ID order")
		}
	}
	if !n.Used().IsZero() {
		t.Fatalf("resources leaked: %v", n.Used())
	}
	lcq, beq := n.QueueLen()
	if lcq != 0 || beq != 0 {
		t.Fatal("queues not cleared")
	}
	// No completion events fire later.
	s.Run()
	if e.Completed != 0 {
		t.Fatalf("completed = %d after failure", e.Completed)
	}
}

func TestFailIsIdempotentAndRecoverWorks(t *testing.T) {
	calls := 0
	s, e := failEnv(func(rs []*Request) { calls++ }, nil)
	n := e.Node(1)
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 1, Type: 6, Class: trace.BE, Cluster: 0}), 1)
	n.Fail()
	n.Fail() // no-op
	if calls != 1 {
		t.Fatalf("OnDisplaced calls = %d", calls)
	}
	n.Recover()
	if n.Down() {
		t.Fatal("still down after Recover")
	}
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 2, Type: 6, Class: trace.BE, Cluster: 0}), 1)
	s.Run()
	if e.Completed != 1 {
		t.Fatalf("completed after recover = %d", e.Completed)
	}
}

func TestArrivalAtDownNodeDisplaced(t *testing.T) {
	var displaced []*Request
	s, e := failEnv(func(rs []*Request) { displaced = append(displaced, rs...) }, nil)
	e.Node(1).Fail()
	e.Dispatch(e.NewRequest(trace.Request{ID: 5, Type: 1, Class: trace.LC, Cluster: 0}), 1)
	s.Run()
	if len(displaced) != 1 || displaced[0].ID != 5 {
		t.Fatalf("displaced = %v", displaced)
	}
}

func TestFailWithoutHandlerEmitsFailedOutcomes(t *testing.T) {
	var outs []Outcome
	s, e := failEnv(nil, func(o Outcome) { outs = append(outs, o) })
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 1, Type: 1, Class: trace.LC, Cluster: 0}), 1)
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 2, Type: 6, Class: trace.BE, Cluster: 0}), 1)
	e.Node(1).Fail()
	if len(outs) != 2 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	for _, o := range outs {
		if o.Completed || o.Satisfied {
			t.Fatalf("failure outcome %+v should be failed", o)
		}
	}
	if e.Abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1 (the LC request)", e.Abandoned)
	}
	_ = s
}

func TestDisplacedRequestTracksRestart(t *testing.T) {
	var displaced []*Request
	_, e := failEnv(func(rs []*Request) { displaced = rs }, nil)
	r := e.NewRequest(trace.Request{ID: 1, Type: 6, Class: trace.BE, Cluster: 0})
	e.DispatchLocal(r, 1)
	e.Node(1).Fail()
	if len(displaced) != 1 || displaced[0].Restarts != 1 {
		t.Fatalf("running request should count a restart: %+v", displaced)
	}
}

// Regression: requests in flight to a cluster killed in the same tick
// must be re-queued through OnDisplaced on arrival — exactly once, no
// silent drops, no duplicate outcomes.
func TestClusterKillRequeuesInFlight(t *testing.T) {
	var displaced []*Request
	s, e := failEnv(func(rs []*Request) { displaced = append(displaced, rs...) },
		func(o Outcome) { t.Fatalf("unexpected outcome %+v: re-queue handler is set", o) })
	// Both requests are still in transit when the whole cluster dies.
	e.Dispatch(e.NewRequest(trace.Request{ID: 1, Type: 1, Class: trace.LC, Cluster: 0}), 1)
	e.Dispatch(e.NewRequest(trace.Request{ID: 2, Type: 6, Class: trace.BE, Cluster: 0}), 2)
	if n := e.FailCluster(0); n != 2 {
		t.Fatalf("FailCluster took down %d workers, want 2", n)
	}
	if len(displaced) != 0 {
		t.Fatalf("in-transit requests displaced before arrival: %d", len(displaced))
	}
	s.Run()
	if len(displaced) != 2 {
		t.Fatalf("displaced %d requests, want 2 (silent drop?)", len(displaced))
	}
	seen := map[int64]int{}
	for _, r := range displaced {
		seen[r.ID]++
	}
	if seen[1] != 1 || seen[2] != 1 {
		t.Fatalf("displacement counts per ID = %v, want exactly one each", seen)
	}
	if e.Completed != 0 {
		t.Fatalf("completed = %d on a dead cluster", e.Completed)
	}
	if err := e.SelfCheck(); err != nil {
		t.Fatalf("self-check after cluster kill: %v", err)
	}
}

// Same scenario without a displacement handler: the in-flight requests
// must resolve as failed outcomes (abandoned for LC), never vanish.
func TestClusterKillInFlightWithoutHandler(t *testing.T) {
	var outs []Outcome
	s, e := failEnv(nil, func(o Outcome) { outs = append(outs, o) })
	e.Dispatch(e.NewRequest(trace.Request{ID: 1, Type: 1, Class: trace.LC, Cluster: 0}), 1)
	e.Dispatch(e.NewRequest(trace.Request{ID: 2, Type: 6, Class: trace.BE, Cluster: 0}), 2)
	e.FailCluster(0)
	s.Run()
	if len(outs) != 2 {
		t.Fatalf("outcomes = %d, want 2 (in-flight work lost)", len(outs))
	}
	for _, o := range outs {
		if o.Completed || o.Satisfied {
			t.Fatalf("outcome %+v should be failed", o)
		}
	}
	if e.Abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1 (the LC request)", e.Abandoned)
	}
}

func TestFailRecoverClusterRoundTrip(t *testing.T) {
	s, e := failEnv(func(rs []*Request) {}, nil)
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 1, Type: 6, Class: trace.BE, Cluster: 0}), 1)
	if n := e.FailCluster(0); n != 2 {
		t.Fatalf("FailCluster = %d, want 2", n)
	}
	if n := e.FailCluster(0); n != 0 {
		t.Fatalf("second FailCluster = %d, want 0 (idempotent)", n)
	}
	if n := e.RecoverCluster(0); n != 2 {
		t.Fatalf("RecoverCluster = %d, want 2", n)
	}
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 2, Type: 6, Class: trace.BE, Cluster: 0}), 1)
	s.Run()
	if e.Completed != 1 {
		t.Fatalf("completed after cluster recovery = %d, want 1", e.Completed)
	}
}

func TestDisplaceFailedBypassesHandler(t *testing.T) {
	var outs []Outcome
	handlerCalls := 0
	_, e := failEnv(func(rs []*Request) { handlerCalls++ }, func(o Outcome) { outs = append(outs, o) })
	reqs := []*Request{
		e.NewRequest(trace.Request{ID: 1, Type: 1, Class: trace.LC, Cluster: 0}),
		e.NewRequest(trace.Request{ID: 2, Type: 6, Class: trace.BE, Cluster: 0}),
	}
	e.DisplaceFailed(reqs)
	if handlerCalls != 0 {
		t.Fatal("DisplaceFailed must not loop through OnDisplaced")
	}
	if len(outs) != 2 || outs[0].Completed || outs[1].Completed {
		t.Fatalf("outcomes = %+v, want 2 failed", outs)
	}
	if e.Abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1", e.Abandoned)
	}
	// The handler must be back in place for ordinary failures.
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 3, Type: 6, Class: trace.BE, Cluster: 0}), 1)
	e.Node(1).Fail()
	if handlerCalls != 1 {
		t.Fatalf("OnDisplaced calls after restore = %d, want 1", handlerCalls)
	}
}

func TestDownNodeExcludedUntilRecovery(t *testing.T) {
	s, e := failEnv(func(rs []*Request) {}, nil)
	n1, n2 := e.Node(1), e.Node(2)
	n1.Fail()
	// The other node still works.
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 1, Type: 1, Class: trace.LC, Cluster: 0}), 2)
	s.RunFor(5 * time.Second)
	if e.Completed != 1 {
		t.Fatal("healthy node should keep completing")
	}
	if n1.Down() == n2.Down() {
		t.Fatal("down state confused between nodes")
	}
}
