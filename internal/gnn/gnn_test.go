package gnn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

func lineGraph(n int) *Graph {
	var edges [][2]int
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return NewGraph(n, edges)
}

func feat(rng *rand.Rand, n, f int) *nn.Mat {
	x := nn.NewMat(n, f)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

func TestNewGraph(t *testing.T) {
	g := NewGraph(3, [][2]int{{0, 1}, {1, 2}, {2, 2}}) // self loop dropped
	if len(g.Neigh[1]) != 2 {
		t.Fatalf("node 1 neighbours = %v", g.Neigh[1])
	}
	if len(g.Neigh[2]) != 1 {
		t.Fatalf("self loop not dropped: %v", g.Neigh[2])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	NewGraph(2, [][2]int{{0, 5}})
}

func TestSampleNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	neigh := []int{1, 2, 3, 4, 5}
	got := sampleNeighbors(neigh, 3, rng)
	if len(got) != 3 {
		t.Fatalf("sampled %d, want 3", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatal("sampled with replacement")
		}
		seen[v] = true
	}
	if len(sampleNeighbors(neigh, 0, rng)) != 5 {
		t.Fatal("p=0 should use all")
	}
	if len(sampleNeighbors(neigh, 10, rng)) != 5 {
		t.Fatal("p>deg should use all")
	}
}

func encoders(rng *rand.Rand, f, h, out int) []Encoder {
	return []Encoder{
		NewSAGE(rng, 0, f, h, out),
		NewGCN(rng, f, h, out),
		NewGAT(rng, f, h, out),
		NewNative(rng, f, h, out),
	}
}

func TestEncoderShapesAndNames(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := lineGraph(6)
	x := feat(rng, 6, 5)
	names := map[string]bool{}
	for _, e := range encoders(rng, 5, 8, 4) {
		y := e.Forward(g, x)
		if y.R != 6 || y.C != 4 {
			t.Fatalf("%s: output %dx%d, want 6x4", e.Name(), y.R, y.C)
		}
		if len(e.Params()) == 0 {
			t.Fatalf("%s: no params", e.Name())
		}
		names[e.Name()] = true
	}
	for _, n := range []string{"GraphSAGE", "GCN", "GAT", "Native"} {
		if !names[n] {
			t.Fatalf("missing encoder %s", n)
		}
	}
}

func TestGraphEncodersUseTopology(t *testing.T) {
	// Two nodes with identical features but different neighbourhoods must
	// get different embeddings from graph-aware encoders (and identical
	// ones from Native).
	rng := rand.New(rand.NewSource(3))
	g := NewGraph(4, [][2]int{{0, 2}, {2, 3}}) // node 1 isolated, node 0 has 1 neighbour
	x := nn.NewMat(4, 3)
	for j := 0; j < 3; j++ {
		x.Set(0, j, 1) // node 0 and 1 identical
		x.Set(1, j, 1)
		x.Set(2, j, float64(j))
		x.Set(3, j, -1)
	}
	for _, e := range []Encoder{NewSAGE(rng, 0, 3, 8, 4), NewGCN(rng, 3, 8, 4), NewGAT(rng, 3, 8, 4)} {
		y := e.Forward(g, x)
		same := true
		for c := 0; c < y.C; c++ {
			if math.Abs(y.At(0, c)-y.At(1, c)) > 1e-9 {
				same = false
			}
		}
		if same {
			t.Errorf("%s: identical embeddings for structurally different nodes", e.Name())
		}
	}
	nat := NewNative(rng, 3, 8, 4)
	y := nat.Forward(g, x)
	for c := 0; c < y.C; c++ {
		if math.Abs(y.At(0, c)-y.At(1, c)) > 1e-12 {
			t.Error("Native encoder should ignore topology")
		}
	}
}

func TestSAGEInductiveAcrossSizes(t *testing.T) {
	// The same SAGE weights must work on graphs of different sizes
	// (inductive property the paper cites for choosing GraphSAGE).
	rng := rand.New(rand.NewSource(4))
	s := NewSAGE(rng, 3, 4, 8, 4)
	y1 := s.Forward(lineGraph(5), feat(rng, 5, 4))
	y2 := s.Forward(lineGraph(50), feat(rng, 50, 4))
	if y1.R != 5 || y2.R != 50 {
		t.Fatal("inductive application failed")
	}
}

// gradCheck verifies encoder backprop on a scalar loss L = sum(out²)/2.
func gradCheck(t *testing.T, enc Encoder, g *Graph, x *nn.Mat, tol float64) {
	t.Helper()
	loss := func() float64 {
		y := enc.Forward(g, x)
		s := 0.0
		for _, v := range y.Data {
			s += 0.5 * v * v
		}
		return s
	}
	for _, p := range enc.Params() {
		p.Grad.Zero()
	}
	y := enc.Forward(g, x)
	enc.Backward(y.Clone())
	for _, p := range enc.Params() {
		for i := 0; i < len(p.Val.Data); i += 2 {
			const h = 1e-6
			orig := p.Val.Data[i]
			p.Val.Data[i] = orig + h
			lp := loss()
			p.Val.Data[i] = orig - h
			lm := loss()
			p.Val.Data[i] = orig
			want := (lp - lm) / (2 * h)
			got := p.Grad.Data[i]
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("%s %s[%d]: grad %g vs numerical %g", enc.Name(), p.Name, i, got, want)
			}
		}
	}
}

func TestGradCheckSAGE(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// p=0 (no sampling) so forward is deterministic for the check.
	enc := NewSAGE(rng, 0, 3, 6, 2)
	g := lineGraph(5)
	gradCheck(t, enc, g, feat(rng, 5, 3), 1e-4)
}

func TestGradCheckGCN(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	enc := NewGCN(rng, 3, 6, 2)
	gradCheck(t, enc, lineGraph(5), feat(rng, 5, 3), 1e-4)
}

func TestGradCheckNative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	enc := NewNative(rng, 3, 6, 2)
	gradCheck(t, enc, lineGraph(5), feat(rng, 5, 3), 1e-4)
}

// GAT uses a stop-gradient on attention, so exact grad-check only holds
// for the value path; verify training still reduces loss instead.
func TestGATTrainsDown(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	enc := NewGAT(rng, 3, 6, 2)
	g := lineGraph(6)
	x := feat(rng, 6, 3)
	target := feat(rng, 6, 2)
	opt := nn.NewAdam(0.01)
	lossAt := func() float64 {
		y := enc.Forward(g, x)
		s := 0.0
		for i := range y.Data {
			d := y.Data[i] - target.Data[i]
			s += d * d
		}
		return s
	}
	first := lossAt()
	for step := 0; step < 200; step++ {
		for _, p := range enc.Params() {
			p.Grad.Zero()
		}
		y := enc.Forward(g, x)
		dOut := nn.NewMat(y.R, y.C)
		for i := range y.Data {
			dOut.Data[i] = 2 * (y.Data[i] - target.Data[i])
		}
		enc.Backward(dOut)
		opt.Step(enc.Params())
	}
	last := lossAt()
	if last > first*0.7 {
		t.Fatalf("GAT did not train: %g -> %g", first, last)
	}
}

// Student-teacher: each encoder must be able to fit the output of a
// same-architecture teacher (guaranteed representable), demonstrating
// that the backward pass trains all layers.
func TestEncodersLearnTeacher(t *testing.T) {
	for _, mk := range []func(*rand.Rand) Encoder{
		func(r *rand.Rand) Encoder { return NewSAGE(r, 0, 2, 8, 1) },
		func(r *rand.Rand) Encoder { return NewGCN(r, 2, 8, 1) },
	} {
		teacher := mk(rand.New(rand.NewSource(99)))
		student := mk(rand.New(rand.NewSource(11)))
		g := NewGraph(6, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {4, 5}})
		rng := rand.New(rand.NewSource(21))
		x := feat(rng, 6, 2)
		target := teacher.Forward(g, x).Clone()
		opt := nn.NewAdam(0.02)
		var first, last float64
		for step := 0; step < 600; step++ {
			for _, p := range student.Params() {
				p.Grad.Zero()
			}
			y := student.Forward(g, x)
			dOut := nn.NewMat(y.R, y.C)
			last = 0
			for i := range y.Data {
				d := y.Data[i] - target.Data[i]
				last += d * d
				dOut.Data[i] = 2 * d
			}
			if step == 0 {
				first = last
			}
			student.Backward(dOut)
			opt.Step(student.Params())
		}
		if last > first/10 {
			t.Errorf("%s: teacher fit loss %g -> %g (want 10x drop)", student.Name(), first, last)
		}
	}
}

func TestSAGESamplingBoundsNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// star graph: node 0 connected to 1..9
	var edges [][2]int
	for i := 1; i < 10; i++ {
		edges = append(edges, [2]int{0, i})
	}
	g := NewGraph(10, edges)
	s := NewSAGE(rng, 3, 2, 4)
	s.Forward(g, feat(rng, 10, 2))
	if got := len(s.layers[0].samples[0]); got != 3 {
		t.Fatalf("sampled %d neighbours for hub, want 3", got)
	}
	if got := len(s.layers[0].samples[1]); got != 1 {
		t.Fatalf("leaf sampled %d, want its single neighbour", got)
	}
}

func TestForwardPanicsOnBadShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := lineGraph(4)
	x := feat(rng, 3, 2) // wrong row count
	for _, e := range encoders(rng, 2, 4, 2) {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on bad shape", e.Name())
				}
			}()
			e.Forward(g, x)
		}()
	}
}

func BenchmarkSAGEForward1000Nodes(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1000
	var edges [][2]int
	for i := 0; i < n; i++ {
		for k := 0; k < 4; k++ {
			edges = append(edges, [2]int{i, rng.Intn(n)})
		}
	}
	g := NewGraph(n, edges)
	s := NewSAGE(rng, 3, 9, 32, 32)
	x := feat(rng, n, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Forward(g, x)
	}
}
