// Package gnn implements the graph encoders DCG-BE uses to embed the
// edge-cloud network topology (§5.3.2): GraphSAGE (the paper's choice,
// Eq. 9 — neighbour sampling plus mean aggregation), and the ablation
// alternatives of Figure 11(d): GCN, GAT and a "native" encoder that
// ignores graph structure. All encoders are trainable with manual
// backpropagation through the aggregation steps.
//
// GAT's attention coefficients are treated as constants during the
// backward pass (gradients flow through the value path only). This
// stop-gradient simplification is standard for lightweight
// implementations and only affects an ablation baseline, not DCG-BE.
package gnn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/nn"
)

// Graph is an undirected topology view: Neigh[i] lists the neighbours of
// node i (no self loops needed; encoders add self contribution).
type Graph struct {
	N     int
	Neigh [][]int
}

// NewGraph builds a graph with n nodes and the given undirected edges.
func NewGraph(n int, edges [][2]int) *Graph {
	g := &Graph{N: n, Neigh: make([][]int, n)}
	for _, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || a >= n || b < 0 || b >= n {
			panic(fmt.Sprintf("gnn: edge (%d,%d) out of range n=%d", a, b, n))
		}
		if a == b {
			continue
		}
		g.Neigh[a] = append(g.Neigh[a], b)
		g.Neigh[b] = append(g.Neigh[b], a)
	}
	return g
}

// Encoder maps node features (N×F) to embeddings (N×D).
type Encoder interface {
	// Forward computes embeddings for the graph; it caches activations
	// for Backward.
	Forward(g *Graph, x *nn.Mat) *nn.Mat
	// Backward accumulates parameter gradients from dOut (N×D).
	Backward(dOut *nn.Mat)
	// Params returns the trainable parameters.
	Params() []*nn.Param
	// Name identifies the encoder in experiment output.
	Name() string
}

// sageLayer is one GraphSAGE aggregation: out = ReLU(mean(self∪N(i)) · W).
type sageLayer struct {
	w       *nn.Param
	relu    nn.ReLU
	g       *Graph
	in      *nn.Mat
	agg     *nn.Mat // cached aggregated input
	samples [][]int // neighbours actually sampled this forward
	counts  []float64
}

// SAGE is the GraphSAGE encoder: L layers of sample-and-mean-aggregate.
type SAGE struct {
	layers []*sageLayer
	// P is the per-node neighbour sample size p (§5.3.2); 0 = all.
	P   int
	rng *rand.Rand
}

// NewSAGE builds a GraphSAGE encoder with the given layer dimensions
// (e.g. NewSAGE(rng, p, F, 32, 32) for the paper's L=2 aggregations).
func NewSAGE(rng *rand.Rand, p int, dims ...int) *SAGE {
	if len(dims) < 2 {
		panic("gnn: SAGE needs at least input and output dims")
	}
	s := &SAGE{P: p, rng: rng}
	for i := 0; i+1 < len(dims); i++ {
		w := nn.NewMat(dims[i], dims[i+1])
		nn.XavierInit(w, rng)
		s.layers = append(s.layers, &sageLayer{
			w: &nn.Param{Name: fmt.Sprintf("sage%d.W", i), Val: w, Grad: nn.NewMat(dims[i], dims[i+1])},
		})
	}
	return s
}

// Name implements Encoder.
func (s *SAGE) Name() string { return "GraphSAGE" }

// Params implements Encoder.
func (s *SAGE) Params() []*nn.Param {
	ps := make([]*nn.Param, len(s.layers))
	for i, l := range s.layers {
		ps[i] = l.w
	}
	return ps
}

// sampleNeighbors picks at most p neighbours without replacement
// (paper's sampling step). With p <= 0 all neighbours are used.
func sampleNeighbors(neigh []int, p int, rng *rand.Rand) []int {
	if p <= 0 || len(neigh) <= p {
		return neigh
	}
	idx := rng.Perm(len(neigh))[:p]
	out := make([]int, p)
	for i, j := range idx {
		out[i] = neigh[j]
	}
	return out
}

// Forward implements Encoder.
func (s *SAGE) Forward(g *Graph, x *nn.Mat) *nn.Mat {
	if x.R != g.N {
		panic(fmt.Sprintf("gnn: %d feature rows for %d nodes", x.R, g.N))
	}
	h := x
	for _, l := range s.layers {
		l.g, l.in = g, h
		l.samples = make([][]int, g.N)
		l.counts = make([]float64, g.N)
		agg := nn.NewMat(g.N, h.C)
		for i := 0; i < g.N; i++ {
			ns := sampleNeighbors(g.Neigh[i], s.P, s.rng)
			l.samples[i] = ns
			cnt := float64(len(ns) + 1)
			l.counts[i] = cnt
			row := agg.Row(i)
			copy(row, h.Row(i))
			for _, j := range ns {
				for c, v := range h.Row(j) {
					row[c] += v
				}
			}
			for c := range row {
				row[c] /= cnt
			}
		}
		l.agg = agg
		h = l.relu.Forward(nn.MatMul(agg, l.w.Val))
	}
	return h
}

// Backward implements Encoder.
func (s *SAGE) Backward(dOut *nn.Mat) {
	d := dOut
	for li := len(s.layers) - 1; li >= 0; li-- {
		l := s.layers[li]
		if l.agg == nil {
			panic("gnn: SAGE.Backward before Forward")
		}
		dz := l.relu.Backward(d)
		nn.AddInPlace(l.w.Grad, nn.MatMulTransA(l.agg, dz))
		dAgg := nn.MatMulTransB(dz, l.w.Val)
		// Distribute mean-aggregation gradient to self and sampled
		// neighbours.
		dIn := nn.NewMat(l.in.R, l.in.C)
		for i := 0; i < l.g.N; i++ {
			inv := 1.0 / l.counts[i]
			src := dAgg.Row(i)
			self := dIn.Row(i)
			for c, v := range src {
				self[c] += v * inv
			}
			for _, j := range l.samples[i] {
				dst := dIn.Row(j)
				for c, v := range src {
					dst[c] += v * inv
				}
			}
		}
		d = dIn
	}
}

// GCN is a graph convolutional encoder: H' = ReLU(Â H W) with symmetric
// normalization Â = D^{-1/2}(A+I)D^{-1/2}.
type GCN struct {
	ws    []*nn.Param
	relus []nn.ReLU
	// caches
	g    *Graph
	ins  []*nn.Mat
	aggs []*nn.Mat
	norm []float64 // 1/sqrt(deg+1)
}

// NewGCN builds a GCN with the given layer dims.
func NewGCN(rng *rand.Rand, dims ...int) *GCN {
	if len(dims) < 2 {
		panic("gnn: GCN needs at least input and output dims")
	}
	g := &GCN{}
	for i := 0; i+1 < len(dims); i++ {
		w := nn.NewMat(dims[i], dims[i+1])
		nn.XavierInit(w, rng)
		g.ws = append(g.ws, &nn.Param{Name: fmt.Sprintf("gcn%d.W", i), Val: w, Grad: nn.NewMat(dims[i], dims[i+1])})
		g.relus = append(g.relus, nn.ReLU{})
	}
	return g
}

// Name implements Encoder.
func (g *GCN) Name() string { return "GCN" }

// Params implements Encoder.
func (g *GCN) Params() []*nn.Param { return g.ws }

func (g *GCN) propagate(gr *Graph, h *nn.Mat) *nn.Mat {
	out := nn.NewMat(h.R, h.C)
	for i := 0; i < gr.N; i++ {
		di := g.norm[i]
		row := out.Row(i)
		for c, v := range h.Row(i) {
			row[c] += v * di * di // self loop
		}
		for _, j := range gr.Neigh[i] {
			dj := g.norm[j]
			for c, v := range h.Row(j) {
				row[c] += v * di * dj
			}
		}
	}
	return out
}

// Forward implements Encoder.
func (g *GCN) Forward(gr *Graph, x *nn.Mat) *nn.Mat {
	if x.R != gr.N {
		panic("gnn: GCN feature rows mismatch")
	}
	g.g = gr
	g.norm = make([]float64, gr.N)
	for i := range g.norm {
		g.norm[i] = 1 / math.Sqrt(float64(len(gr.Neigh[i])+1))
	}
	g.ins = g.ins[:0]
	g.aggs = g.aggs[:0]
	h := x
	for i := range g.ws {
		g.ins = append(g.ins, h)
		agg := g.propagate(gr, h)
		g.aggs = append(g.aggs, agg)
		h = g.relus[i].Forward(nn.MatMul(agg, g.ws[i].Val))
	}
	return h
}

// Backward implements Encoder. Â is symmetric, so the adjoint of the
// propagation is the propagation itself.
func (g *GCN) Backward(dOut *nn.Mat) {
	d := dOut
	for li := len(g.ws) - 1; li >= 0; li-- {
		dz := g.relus[li].Backward(d)
		nn.AddInPlace(g.ws[li].Grad, nn.MatMulTransA(g.aggs[li], dz))
		dAgg := nn.MatMulTransB(dz, g.ws[li].Val)
		d = g.propagate(g.g, dAgg)
	}
}

// GAT is a graph attention encoder (single head per layer). Attention
// weights use LeakyReLU scoring as in Veličković et al.; the backward
// pass flows through the value path only (see package comment).
type GAT struct {
	ws    []*nn.Param // value transforms
	as    []*nn.Param // attention vectors, 1 × 2*out
	relus []nn.ReLU
	g     *Graph
	ins   []*nn.Mat
	atts  [][][]float64 // per layer, per node: attention over self+neighbours
	whs   []*nn.Mat     // transformed features per layer
}

// NewGAT builds a GAT with the given layer dims.
func NewGAT(rng *rand.Rand, dims ...int) *GAT {
	if len(dims) < 2 {
		panic("gnn: GAT needs at least input and output dims")
	}
	g := &GAT{}
	for i := 0; i+1 < len(dims); i++ {
		w := nn.NewMat(dims[i], dims[i+1])
		nn.XavierInit(w, rng)
		a := nn.NewMat(1, 2*dims[i+1])
		nn.XavierInit(a, rng)
		g.ws = append(g.ws, &nn.Param{Name: fmt.Sprintf("gat%d.W", i), Val: w, Grad: nn.NewMat(dims[i], dims[i+1])})
		g.as = append(g.as, &nn.Param{Name: fmt.Sprintf("gat%d.a", i), Val: a, Grad: nn.NewMat(1, 2*dims[i+1])})
		g.relus = append(g.relus, nn.ReLU{})
	}
	return g
}

// Name implements Encoder.
func (g *GAT) Name() string { return "GAT" }

// Params implements Encoder.
func (g *GAT) Params() []*nn.Param {
	var ps []*nn.Param
	for i := range g.ws {
		ps = append(ps, g.ws[i], g.as[i])
	}
	return ps
}

func leaky(x float64) float64 {
	if x < 0 {
		return 0.2 * x
	}
	return x
}

// Forward implements Encoder.
func (g *GAT) Forward(gr *Graph, x *nn.Mat) *nn.Mat {
	if x.R != gr.N {
		panic("gnn: GAT feature rows mismatch")
	}
	g.g = gr
	g.ins = g.ins[:0]
	g.atts = g.atts[:0]
	g.whs = g.whs[:0]
	h := x
	for li := range g.ws {
		g.ins = append(g.ins, h)
		wh := nn.MatMul(h, g.ws[li].Val)
		g.whs = append(g.whs, wh)
		out := nn.NewMat(gr.N, wh.C)
		att := make([][]float64, gr.N)
		avec := g.as[li].Val.Data
		d := wh.C
		for i := 0; i < gr.N; i++ {
			cand := append([]int{i}, gr.Neigh[i]...)
			scores := make([]float64, len(cand))
			for ci, j := range cand {
				s := 0.0
				for c := 0; c < d; c++ {
					s += avec[c] * wh.At(i, c)
					s += avec[d+c] * wh.At(j, c)
				}
				scores[ci] = leaky(s)
			}
			alpha := nn.SoftmaxRow(scores, nil)
			att[i] = alpha
			row := out.Row(i)
			for ci, j := range cand {
				a := alpha[ci]
				for c, v := range wh.Row(j) {
					row[c] += a * v
				}
			}
		}
		g.atts = append(g.atts, att)
		h = g.relus[li].Forward(out)
	}
	return h
}

// Backward implements Encoder (value path only; attention coefficients
// fixed).
func (g *GAT) Backward(dOut *nn.Mat) {
	d := dOut
	for li := len(g.ws) - 1; li >= 0; li-- {
		dz := g.relus[li].Backward(d)
		wh := g.whs[li]
		// dWH[j] = sum over i of att_i[j] * dz[i]
		dWH := nn.NewMat(wh.R, wh.C)
		for i := 0; i < g.g.N; i++ {
			cand := append([]int{i}, g.g.Neigh[i]...)
			src := dz.Row(i)
			for ci, j := range cand {
				a := g.atts[li][i][ci]
				dst := dWH.Row(j)
				for c, v := range src {
					dst[c] += a * v
				}
			}
		}
		nn.AddInPlace(g.ws[li].Grad, nn.MatMulTransA(g.ins[li], dWH))
		d = nn.MatMulTransB(dWH, g.ws[li].Val)
	}
}

// Native ignores the topology entirely — a per-node MLP. This is the
// "Native-A2C" baseline of Figure 11(d).
type Native struct {
	mlp *nn.MLP
}

// NewNative builds the structure-blind encoder.
func NewNative(rng *rand.Rand, dims ...int) *Native {
	return &Native{mlp: nn.NewMLP(rng, dims...)}
}

// Name implements Encoder.
func (n *Native) Name() string { return "Native" }

// Forward implements Encoder.
func (n *Native) Forward(g *Graph, x *nn.Mat) *nn.Mat {
	if x.R != g.N {
		panic("gnn: Native feature rows mismatch")
	}
	return n.mlp.Forward(x)
}

// Backward implements Encoder.
func (n *Native) Backward(dOut *nn.Mat) { n.mlp.Backward(dOut) }

// Params implements Encoder.
func (n *Native) Params() []*nn.Param { return n.mlp.Params() }
