package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/topo"
)

// csvHeader is the column layout used by WriteCSV and cmd/tracegen.
var csvHeader = []string{"id", "type", "class", "arrival_ns", "cluster"}

// WriteCSV serializes a request trace in the tracegen format.
func WriteCSV(w io.Writer, reqs []Request) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, r := range reqs {
		rec := []string{
			strconv.FormatInt(r.ID, 10),
			strconv.Itoa(int(r.Type)),
			r.Class.String(),
			strconv.FormatInt(int64(r.Arrival), 10),
			strconv.Itoa(int(r.Cluster)),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV / cmd/tracegen. The catalog
// validates type IDs and supplies each request's class (which must match
// the recorded class).
func ReadCSV(r io.Reader, cat *Catalog) ([]Request, error) {
	if cat == nil {
		cat = DefaultCatalog()
	}
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("trace: header has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", i, header[i], h)
		}
	}
	var out []Request
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad id %q", line, rec[0])
		}
		tid, err := strconv.Atoi(rec[1])
		if err != nil || tid < 0 || tid >= len(cat.Types) {
			return nil, fmt.Errorf("trace: line %d: bad type %q", line, rec[1])
		}
		st := cat.Type(TypeID(tid))
		if rec[2] != st.Class.String() {
			return nil, fmt.Errorf("trace: line %d: class %q does not match type %d (%s)",
				line, rec[2], tid, st.Class)
		}
		ns, err := strconv.ParseInt(rec[3], 10, 64)
		if err != nil || ns < 0 {
			return nil, fmt.Errorf("trace: line %d: bad arrival %q", line, rec[3])
		}
		cid, err := strconv.Atoi(rec[4])
		if err != nil || cid < 0 {
			return nil, fmt.Errorf("trace: line %d: bad cluster %q", line, rec[4])
		}
		out = append(out, Request{
			ID: id, Type: TypeID(tid), Class: st.Class,
			Arrival: time.Duration(ns),
			Cluster: topo.ClusterID(cid),
		})
	}
	// Enforce the sorted-arrival invariant callers rely on.
	for i := 1; i < len(out); i++ {
		if out[i].Arrival < out[i-1].Arrival {
			return nil, fmt.Errorf("trace: arrivals not sorted at row %d", i+1)
		}
	}
	return out, nil
}
