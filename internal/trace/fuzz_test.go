package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/topo"
)

// FuzzTraceCSV feeds arbitrary text through ReadCSV: it must never
// panic, and any stream it accepts must round-trip — writing the parsed
// requests back out and re-reading them yields the identical slice.
// Run continuously with `make fuzz-smoke` (or `go test -fuzz`).
func FuzzTraceCSV(f *testing.F) {
	// Seed corpus: a real generated trace, a minimal valid stream, and
	// near-misses (bad class, unsorted arrivals, short rows).
	var buf bytes.Buffer
	gen := DefaultGenConfig([]topo.ClusterID{0, 1}, P3, time.Second, 1)
	gen.LCRatePerSec, gen.BERatePerSec = 10, 5
	if err := WriteCSV(&buf, Generate(gen)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("id,type,class,arrival_ns,cluster\n1,1,LC,1000,0\n")
	f.Add("id,type,class,arrival_ns,cluster\n1,1,XX,1000,0\n")
	f.Add("id,type,class,arrival_ns,cluster\n1,1,LC,2000,0\n2,3,LC,1000,0\n")
	f.Add("id,type\n1,1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		reqs, err := ReadCSV(strings.NewReader(s), nil)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var out bytes.Buffer
		if err := WriteCSV(&out, reqs); err != nil {
			t.Fatalf("write-back of accepted input failed: %v", err)
		}
		again, err := ReadCSV(&out, nil)
		if err != nil {
			t.Fatalf("re-read of written output failed: %v\noutput:\n%s", err, out.String())
		}
		if len(reqs) == 0 && len(again) == 0 {
			return // DeepEqual treats nil and empty differently; both are empty
		}
		if !reflect.DeepEqual(reqs, again) {
			t.Fatalf("round-trip changed requests:\nfirst:  %+v\nsecond: %+v", reqs, again)
		}
	})
}
