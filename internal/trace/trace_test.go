package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/topo"
)

func TestDefaultCatalogShape(t *testing.T) {
	c := DefaultCatalog()
	if len(c.Types) != 10 {
		t.Fatalf("types = %d, want 10", len(c.Types))
	}
	if len(c.LCTypes()) != 5 || len(c.BETypes()) != 5 {
		t.Fatalf("LC/BE split = %d/%d", len(c.LCTypes()), len(c.BETypes()))
	}
	for _, st := range c.Types {
		if st.Class == LC {
			if st.QoSTarget <= 0 {
				t.Errorf("%s: LC type without QoS target", st.Name)
			}
			// Figure 1(b): most LC targets around 300ms.
			if st.QoSTarget < 100*time.Millisecond || st.QoSTarget > 600*time.Millisecond {
				t.Errorf("%s: QoS target %v outside the paper's envelope", st.Name, st.QoSTarget)
			}
		} else if st.QoSTarget != 0 {
			t.Errorf("%s: BE type with QoS target", st.Name)
		}
		if st.MinDemand.MilliCPU <= 0 || st.MinDemand.MemoryMiB <= 0 {
			t.Errorf("%s: demand not positive", st.Name)
		}
		if st.Work <= 0 {
			t.Errorf("%s: no work", st.Name)
		}
	}
	// BE jobs should be substantially heavier than LC requests on average.
	var lcW, beW int64
	for _, st := range c.Types {
		if st.Class == LC {
			lcW += st.Work
		} else {
			beW += st.Work
		}
	}
	if beW <= 2*lcW {
		t.Errorf("BE work %d not >> LC work %d", beW, lcW)
	}
}

func TestCatalogTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Type(99) did not panic")
		}
	}()
	DefaultCatalog().Type(99)
}

func TestClassAndPatternStrings(t *testing.T) {
	if LC.String() != "LC" || BE.String() != "BE" {
		t.Fatal("Class strings")
	}
	for p, want := range map[Pattern]string{P1: "P1", P2: "P2", P3: "P3", Diurnal: "diurnal"} {
		if p.String() != want {
			t.Fatalf("pattern %d = %q", int(p), p.String())
		}
	}
}

func clusters(n int) []topo.ClusterID {
	out := make([]topo.ClusterID, n)
	for i := range out {
		out[i] = topo.ClusterID(i)
	}
	return out
}

func TestGenerateSortedAndInRange(t *testing.T) {
	cfg := DefaultGenConfig(clusters(4), P3, 10*time.Second, 42)
	reqs := Generate(cfg)
	if len(reqs) == 0 {
		t.Fatal("no requests generated")
	}
	for i, r := range reqs {
		if r.Arrival < 0 || r.Arrival >= cfg.Duration {
			t.Fatalf("arrival %v out of range", r.Arrival)
		}
		if i > 0 && reqs[i-1].Arrival > r.Arrival {
			t.Fatal("not sorted by arrival")
		}
		if int(r.Cluster) < 0 || int(r.Cluster) >= 4 {
			t.Fatalf("cluster %d out of range", r.Cluster)
		}
		st := cfg.Catalog.Type(r.Type)
		if st.Class != r.Class {
			t.Fatal("request class does not match type class")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig(clusters(3), P1, 5*time.Second, 7)
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs", i)
		}
	}
	cfg.Seed = 8
	c := Generate(cfg)
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGenerateRateRoughlyMatches(t *testing.T) {
	cfg := DefaultGenConfig(clusters(2), P3, 60*time.Second, 11)
	reqs := Generate(cfg)
	s := Summarize(reqs)
	wantLC := cfg.LCRatePerSec * 60
	// P3's random multiplier averages 1.0, so expect within 30%.
	if math.Abs(float64(s.LCCount)-wantLC) > 0.3*wantLC {
		t.Fatalf("LC count %d far from expected %.0f", s.LCCount, wantLC)
	}
	wantBE := cfg.BERatePerSec * 60
	if math.Abs(float64(s.BECount)-wantBE) > 0.3*wantBE {
		t.Fatalf("BE count %d far from expected %.0f", s.BECount, wantBE)
	}
}

func TestP1IsPeriodicInLC(t *testing.T) {
	// With P1, the LC arrival counts per cycle-half should alternate
	// high/low; measure the peak-to-trough ratio over the cycle.
	cfg := DefaultGenConfig(clusters(1), P1, 64*time.Second, 3)
	cfg.PeriodicCycle = 8 * time.Second
	reqs := Generate(cfg)
	buckets := make([]float64, 8) // phase buckets of 1s across the 8s cycle
	for _, r := range reqs {
		if r.Class != LC {
			continue
		}
		phase := int(r.Arrival/time.Second) % 8
		buckets[phase]++
	}
	min, max := math.Inf(1), 0.0
	for _, b := range buckets {
		min = math.Min(min, b)
		max = math.Max(max, b)
	}
	if max < 2*min {
		t.Fatalf("P1 LC arrivals not periodic: buckets %v", buckets)
	}
}

func TestClusterWeightsSkewArrivals(t *testing.T) {
	cfg := DefaultGenConfig(clusters(2), P3, 30*time.Second, 5)
	cfg.ClusterWeights = []float64{9, 1}
	s := Summarize(Generate(cfg))
	c0, c1 := s.PerCluster[0], s.PerCluster[1]
	if c0 < 5*c1 {
		t.Fatalf("weights not respected: %d vs %d", c0, c1)
	}
}

func TestGeneratePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no clusters":   func() { Generate(GenConfig{Duration: time.Second}) },
		"zero duration": func() { Generate(GenConfig{Clusters: clusters(1)}) },
		"negative weight": func() {
			Generate(GenConfig{Clusters: clusters(1), Duration: time.Second, ClusterWeights: []float64{-1}})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, mean := range []float64{0.5, 3, 12, 80} {
		n := 20000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := float64(poisson(rng, mean))
			sum += x
			sumSq += x * x
		}
		m := sum / float64(n)
		v := sumSq/float64(n) - m*m
		if math.Abs(m-mean) > 0.1*mean+0.1 {
			t.Fatalf("mean(%g) = %g", mean, m)
		}
		if math.Abs(v-mean) > 0.2*mean+0.2 {
			t.Fatalf("var(%g) = %g", mean, v)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Fatal("poisson of non-positive mean should be 0")
	}
}

func TestSummarize(t *testing.T) {
	reqs := []Request{
		{ID: 0, Type: 0, Class: LC, Cluster: 0},
		{ID: 1, Type: 5, Class: BE, Cluster: 1},
		{ID: 2, Type: 5, Class: BE, Cluster: 1},
	}
	s := Summarize(reqs)
	if s.Total != 3 || s.LCCount != 1 || s.BECount != 2 {
		t.Fatalf("summary %+v", s)
	}
	if s.PerType[5] != 2 || s.PerCluster[1] != 2 {
		t.Fatalf("summary maps %+v", s)
	}
}

// Property: every generated trace is sorted, complete (IDs dense from 0
// after regeneration ordering) and class-consistent.
func TestQuickGenerateWellFormed(t *testing.T) {
	f := func(seed int64, pat uint8) bool {
		p := Pattern(int(pat) % 4)
		cfg := DefaultGenConfig(clusters(3), p, 5*time.Second, seed)
		cfg.LCRatePerSec, cfg.BERatePerSec = 40, 20
		reqs := Generate(cfg)
		seen := map[int64]bool{}
		for i, r := range reqs {
			if i > 0 && reqs[i-1].Arrival > r.Arrival {
				return false
			}
			if seen[r.ID] {
				return false
			}
			seen[r.ID] = true
			if cfg.Catalog.Type(r.Type).Class != r.Class {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
