package trace

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/topo"
)

// Seed stability: the generator must be a pure function of its config.
// Two independent Generate calls with the same seed produce the
// identical stream (the replay contract starts here), and different
// seeds or patterns diverge.
func TestGenerateSeedStability(t *testing.T) {
	clusters := []topo.ClusterID{0, 1, 2}
	mk := func(pattern Pattern, seed int64) []Request {
		cfg := DefaultGenConfig(clusters, pattern, 4*time.Second, seed)
		return Generate(cfg)
	}
	for _, pattern := range []Pattern{P1, P2, P3, Diurnal} {
		a := mk(pattern, 5)
		b := mk(pattern, 5)
		if len(a) == 0 {
			t.Fatalf("%v: empty stream", pattern)
		}
		if !reflect.DeepEqual(a, b) {
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v: streams diverge at request %d: %+v vs %+v", pattern, i, a[i], b[i])
				}
			}
			t.Fatalf("%v: streams differ in length: %d vs %d", pattern, len(a), len(b))
		}
	}
	// Different seeds must not collide (same length would be suspicious
	// only if contents also matched).
	if reflect.DeepEqual(mk(P3, 5), mk(P3, 6)) {
		t.Fatal("different seeds produced identical streams")
	}
}
