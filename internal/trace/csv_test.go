package trace

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/topo"
)

func TestCSVRoundTrip(t *testing.T) {
	cfg := DefaultGenConfig([]topo.ClusterID{0, 1, 2}, P3, 5*time.Second, 9)
	cfg.LCRatePerSec, cfg.BERatePerSec = 30, 12
	reqs := Generate(cfg)
	var b strings.Builder
	if err := WriteCSV(&b, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(b.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("round trip lost rows: %d vs %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, got[i], reqs[i])
		}
	}
}

func TestCSVEmptyTrace(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(b.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("rows = %d", len(got))
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad header":     "a,b,c,d,e\n",
		"short header":   "id,type,class\n",
		"bad id":         "id,type,class,arrival_us,cluster\nx,0,LC,0,0\n",
		"bad type":       "id,type,class,arrival_us,cluster\n1,99,LC,0,0\n",
		"class mismatch": "id,type,class,arrival_us,cluster\n1,0,BE,0,0\n",
		"bad arrival":    "id,type,class,arrival_us,cluster\n1,0,LC,-5,0\n",
		"bad cluster":    "id,type,class,arrival_us,cluster\n1,0,LC,0,-1\n",
		"unsorted":       "id,type,class,arrival_us,cluster\n1,0,LC,100,0\n2,0,LC,50,0\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), nil); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Property: WriteCSV∘ReadCSV is the identity for any generated trace.
func TestQuickCSVRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		cfg := DefaultGenConfig([]topo.ClusterID{0, 1}, Pattern(seed%4+3)%4, 2*time.Second, seed)
		cfg.LCRatePerSec, cfg.BERatePerSec = 20, 10
		reqs := Generate(cfg)
		var b strings.Builder
		if err := WriteCSV(&b, reqs); err != nil {
			return false
		}
		got, err := ReadCSV(strings.NewReader(b.String()), nil)
		if err != nil || len(got) != len(reqs) {
			return false
		}
		for i := range reqs {
			if got[i] != reqs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
