// Package trace is the workload substrate. The paper drives its
// experiments with the 2019 Google cluster-data trace, classifying
// records into 10 categories of LC and BE services via the
// LatencySensitivity field and sizing QoS targets with pressure tests.
// That trace is proprietary-scale (8.08 GB) and not redistributable, so
// this package generates an equivalent synthetic workload: the same 10
// service types (5 latency-critical, 5 best-effort), per-type resource
// demands and QoS targets in the ranges the paper reports (LC targets
// around 300 ms), and arrival processes matching the three experimental
// patterns P1/P2/P3 of §7.1 plus a diurnal Google-like load shape for
// the large-scale runs. Generation is fully deterministic given a seed.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/res"
	"repro/internal/topo"
)

// Class distinguishes latency-critical from best-effort services.
type Class int

const (
	LC Class = iota
	BE
)

func (c Class) String() string {
	if c == LC {
		return "LC"
	}
	return "BE"
}

// TypeID indexes the service catalog.
type TypeID int

// ServiceType describes one of the 10 co-located service categories.
type ServiceType struct {
	ID    TypeID
	Name  string
	Class Class
	// QoSTarget is the tail-latency target γ_k for LC services (zero for BE).
	QoSTarget time.Duration
	// MinDemand is the minimum resource allocation r_i^{c,k}, r_i^{m,k}
	// needed to process one request; the re-assurance mechanism adjusts
	// the effective value at runtime.
	MinDemand res.Vector
	// Work is the CPU work of one request in millicore-milliseconds:
	// a request allocated A millicores completes in Work/A milliseconds.
	Work int64
	// TxKB is the request+response payload, charging link bandwidth.
	TxKB int64
}

// Catalog is the set of service types driving an experiment.
type Catalog struct {
	Types []ServiceType
}

// DefaultCatalog returns the 10-type catalog (5 LC + 5 BE) used by every
// experiment, mirroring §6.2. LC targets bracket the ~300 ms average the
// paper measures; BE jobs are heavier analytics/training-style work.
func DefaultCatalog() *Catalog {
	return &Catalog{Types: []ServiceType{
		{0, "lc-cloud-render", LC, 240 * time.Millisecond, res.V(500, 512, 5), 60000, 64},
		{1, "lc-audio", LC, 200 * time.Millisecond, res.V(250, 256, 2), 25000, 16},
		{2, "lc-video", LC, 320 * time.Millisecond, res.V(750, 1024, 10), 120000, 128},
		{3, "lc-ar-inference", LC, 350 * time.Millisecond, res.V(1000, 1024, 5), 175000, 48},
		{4, "lc-game-sync", LC, 400 * time.Millisecond, res.V(350, 512, 3), 70000, 24},
		{5, "be-analytics", BE, 0, res.V(500, 1024, 2), 400000, 256},
		{6, "be-training", BE, 0, res.V(1000, 2048, 4), 900000, 512},
		{7, "be-transcode", BE, 0, res.V(750, 1024, 6), 600000, 384},
		{8, "be-backup", BE, 0, res.V(250, 512, 8), 200000, 1024},
		{9, "be-index", BE, 0, res.V(500, 512, 2), 300000, 128},
	}}
}

// Type returns the service type with the given ID.
func (c *Catalog) Type(id TypeID) ServiceType {
	if int(id) < 0 || int(id) >= len(c.Types) {
		panic(fmt.Sprintf("trace: type %d out of range", id))
	}
	return c.Types[id]
}

// LCTypes returns the IDs of latency-critical types.
func (c *Catalog) LCTypes() []TypeID { return c.byClass(LC) }

// BETypes returns the IDs of best-effort types.
func (c *Catalog) BETypes() []TypeID { return c.byClass(BE) }

func (c *Catalog) byClass(cl Class) []TypeID {
	var out []TypeID
	for _, t := range c.Types {
		if t.Class == cl {
			out = append(out, t.ID)
		}
	}
	return out
}

// Request is one service request arriving at a cluster's master node.
type Request struct {
	ID      int64
	Type    TypeID
	Class   Class
	Arrival time.Duration
	Cluster topo.ClusterID
}

// Pattern selects the arrival process of §7.1 / §7.3.
type Pattern int

const (
	// P1 sends LC requests periodically and BE requests randomly.
	P1 Pattern = iota
	// P2 sends BE requests periodically and LC requests randomly.
	P2
	// P3 sends both randomly.
	P3
	// Diurnal modulates both with a 24-hour day/night load curve plus
	// noise — the Google-trace-like shape for the large-scale runs.
	Diurnal
	// Wavy superposes two sinusoids of different frequency (a Genny-style
	// "wave" shape); the chaos injector uses it for flash-crowd bursts.
	Wavy
	// Normal follows a Gaussian bell over the periodic cycle: load ramps
	// up to a mid-cycle peak and back down — one self-contained surge.
	Normal
)

func (p Pattern) String() string {
	switch p {
	case P1:
		return "P1"
	case P2:
		return "P2"
	case P3:
		return "P3"
	case Diurnal:
		return "diurnal"
	case Wavy:
		return "wavy"
	case Normal:
		return "normal"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// GenConfig parameterizes workload generation.
type GenConfig struct {
	Catalog  *Catalog
	Pattern  Pattern
	Duration time.Duration
	// LCRatePerSec / BERatePerSec are mean system-wide arrivals per second.
	LCRatePerSec float64
	BERatePerSec float64
	// Clusters receive arrivals with weights (uneven geographic load,
	// §1: "user requests' loads are uneven and fluctuating across
	// geographical locations"). If nil, weights are drawn log-normally.
	Clusters       []topo.ClusterID
	ClusterWeights []float64
	// PeriodicCycle is the cycle of the periodic component (P1/P2).
	PeriodicCycle time.Duration
	Seed          int64
	// FirstID offsets the generated request IDs (default 0). Mid-run
	// burst generators (chaos flash crowds) use a high base so burst IDs
	// never collide with the main trace's.
	FirstID int64
	// Start offsets every arrival time (default 0), placing a generated
	// burst at an absolute point of an already-running scenario.
	Start time.Duration
}

// DefaultGenConfig returns a config sized like the physical-testbed
// experiments: ~120 LC and ~40 BE requests per second over all clusters.
func DefaultGenConfig(clusters []topo.ClusterID, pattern Pattern, duration time.Duration, seed int64) GenConfig {
	return GenConfig{
		Catalog:       DefaultCatalog(),
		Pattern:       pattern,
		Duration:      duration,
		LCRatePerSec:  120,
		BERatePerSec:  40,
		Clusters:      clusters,
		PeriodicCycle: 8 * time.Second,
		Seed:          seed,
	}
}

// Generate produces the arrival sequence, sorted by arrival time.
func Generate(cfg GenConfig) []Request {
	if cfg.Catalog == nil {
		cfg.Catalog = DefaultCatalog()
	}
	if len(cfg.Clusters) == 0 {
		panic("trace: Generate needs at least one cluster")
	}
	if cfg.Duration <= 0 {
		panic("trace: Generate needs positive duration")
	}
	if cfg.PeriodicCycle <= 0 {
		cfg.PeriodicCycle = 8 * time.Second
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	weights := cfg.ClusterWeights
	if len(weights) != len(cfg.Clusters) {
		weights = make([]float64, len(cfg.Clusters))
		for i := range weights {
			weights[i] = math.Exp(rng.NormFloat64() * 0.8)
		}
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("trace: negative cluster weight")
		}
		total += w
		cum[i] = total
	}
	pickCluster := func() topo.ClusterID {
		x := rng.Float64() * total
		i := sort.SearchFloat64s(cum, x)
		if i >= len(cum) {
			i = len(cum) - 1
		}
		return cfg.Clusters[i]
	}

	lcTypes, beTypes := cfg.Catalog.LCTypes(), cfg.Catalog.BETypes()
	var reqs []Request
	id := cfg.FirstID

	// The generator walks 100 ms slots; in each slot it draws Poisson
	// counts with a slot rate shaped by the pattern.
	const slot = 100 * time.Millisecond
	slots := int(cfg.Duration / slot)
	for si := 0; si < slots; si++ {
		at := cfg.Start + time.Duration(si)*slot
		frac := float64(si) * slot.Seconds()
		lcShape, beShape := shapes(cfg.Pattern, frac, cfg.PeriodicCycle.Seconds(), rng)
		lcMean := cfg.LCRatePerSec * slot.Seconds() * lcShape
		beMean := cfg.BERatePerSec * slot.Seconds() * beShape
		for i, n := 0, poisson(rng, lcMean); i < n; i++ {
			reqs = append(reqs, Request{
				ID: id, Type: lcTypes[rng.Intn(len(lcTypes))], Class: LC,
				Arrival: at + time.Duration(rng.Int63n(int64(slot))),
				Cluster: pickCluster(),
			})
			id++
		}
		for i, n := 0, poisson(rng, beMean); i < n; i++ {
			reqs = append(reqs, Request{
				ID: id, Type: beTypes[rng.Intn(len(beTypes))], Class: BE,
				Arrival: at + time.Duration(rng.Int63n(int64(slot))),
				Cluster: pickCluster(),
			})
			id++
		}
	}
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].Arrival != reqs[j].Arrival {
			return reqs[i].Arrival < reqs[j].Arrival
		}
		return reqs[i].ID < reqs[j].ID
	})
	return reqs
}

// shapes returns the (LC, BE) rate multipliers at time t seconds.
func shapes(p Pattern, t, cycle float64, rng *rand.Rand) (float64, float64) {
	// periodic: a raised sinusoid sweeping 0.2x..1.8x over the cycle.
	periodic := 1 + 0.8*math.Sin(2*math.Pi*t/cycle)
	random := 0.4 + 1.2*rng.Float64()
	switch p {
	case P1:
		return periodic, random
	case P2:
		return random, periodic
	case P3:
		r2 := 0.4 + 1.2*rng.Float64()
		return random, r2
	case Diurnal:
		// 24h curve compressed so experiments need not run a full day:
		// treat `cycle` as the day length. Low at night (0.3), peak in
		// the evening (1.6), plus noise.
		day := 2 * math.Pi * t / cycle
		base := 0.95 - 0.65*math.Cos(day) + 0.25*math.Sin(2*day)
		if base < 0.1 {
			base = 0.1
		}
		noise := 0.85 + 0.3*rng.Float64()
		return base * noise, base * (0.85 + 0.3*rng.Float64())
	case Wavy:
		// Two superposed waves (3:1 frequency ratio) with light noise;
		// clamped away from zero so a burst never goes fully silent.
		w := 1 + 0.6*math.Sin(2*math.Pi*t/cycle) + 0.35*math.Sin(2*math.Pi*3*t/cycle+1)
		if w < 0.05 {
			w = 0.05
		}
		return w * (0.9 + 0.2*rng.Float64()), w * (0.9 + 0.2*rng.Float64())
	case Normal:
		// Gaussian bell centered mid-cycle (σ = cycle/6): one surge that
		// ramps up and back down within the window.
		mid, sigma := cycle/2, cycle/6
		g := math.Exp(-(t - mid) * (t - mid) / (2 * sigma * sigma))
		base := 0.1 + 1.7*g
		return base * (0.9 + 0.2*rng.Float64()), base * (0.9 + 0.2*rng.Float64())
	default:
		panic(fmt.Sprintf("trace: unknown pattern %d", int(p)))
	}
}

// poisson draws a Poisson(mean) variate (Knuth for small means, normal
// approximation for large ones).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(mean + math.Sqrt(mean)*rng.NormFloat64() + 0.5)
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Stats summarizes a generated trace.
type Stats struct {
	Total, LCCount, BECount int
	PerType                 map[TypeID]int
	PerCluster              map[topo.ClusterID]int
}

// Summarize computes counts over a request slice.
func Summarize(reqs []Request) Stats {
	s := Stats{PerType: map[TypeID]int{}, PerCluster: map[topo.ClusterID]int{}}
	for _, r := range reqs {
		s.Total++
		if r.Class == LC {
			s.LCCount++
		} else {
			s.BECount++
		}
		s.PerType[r.Type]++
		s.PerCluster[r.Cluster]++
	}
	return s
}
