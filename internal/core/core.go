// Package core is the Tango framework itself (§3, Figure 3): it wires
// the LC traffic dispatcher on every master node, the centralized BE
// traffic dispatcher on the central cluster, the state storage fed by
// the metrics pipeline, the QoS detector / re-assurer, the D-VPA-backed
// resource policy and the execution engine into one runnable System.
//
// The System follows the paper's dispatch–allocate–adjust operation:
// (1) arriving requests enter the LC or BE scheduling queue of their
// cluster's master; LC requests are dispatched by the local DSS-LC
// dispatcher while BE requests are forwarded to the central cluster and
// dispatched by DCG-BE; (2) on the worker, the resource policy (HRM
// regulations through D-VPA) allocates the minimum required resources
// and reclaims them at completion; (3) the QoS detector feeds the
// re-assurance mechanism, which adjusts the per-node minimum
// allocations.
//
// Every component is swappable, which is how the baseline systems
// (native K8s, CERES, DSACO) and the Figure 12 algorithm pairings are
// expressed.
package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/chaos"
	"repro/internal/check"
	"repro/internal/dcgbe"
	"repro/internal/dsslc"
	"repro/internal/engine"
	"repro/internal/hrm"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/state"
	"repro/internal/topo"
	"repro/internal/trace"
)

// BatchLCScheduler is the batched dispatch interface DSS-LC provides.
type BatchLCScheduler interface {
	ScheduleBatch(c topo.ClusterID, reqs []*engine.Request) dsslc.Assignment
	Name() string
}

// BatchLCIntoScheduler is the allocation-free variant: the dispatcher
// hands in a reusable assignment map instead of receiving a fresh one
// per round. Schedulers implementing it (DSS-LC does) are preferred by
// dispatch.
type BatchLCIntoScheduler interface {
	ScheduleBatchInto(c topo.ClusterID, reqs []*engine.Request, out dsslc.Assignment)
	Name() string
}

// OutcomeObserver receives request outcomes (QoS detector consumers).
type OutcomeObserver interface {
	NotifyOutcome(o engine.Outcome)
}

// Options configures a System. Zero values select the paper's Tango
// configuration where meaningful.
type Options struct {
	Topo    *topo.Topology
	Catalog *trace.Catalog
	Seed    int64

	// Policy is the node resource policy; nil = HRM regulations.
	Policy engine.Policy
	// MakeLC builds the LC scheduler; nil = DSS-LC.
	MakeLC func(e *engine.Engine, seed int64) any
	// MakeBE builds the BE scheduler; nil = DCG-BE.
	MakeBE func(e *engine.Engine, seed int64) any

	// Reassure enables the QoS re-assurance mechanism (§4.3).
	Reassure bool
	// Boost enables BE idle-resource maximization (§4.1).
	Boost bool
	// CentralBE forwards BE requests to the central cluster before
	// scheduling (adds WAN latency, §5.3); false dispatches BE locally.
	CentralBE bool
	// ScaleLatency models the per-admission vertical scaling cost
	// (D-VPA's 23 ms; 0 for static allocation baselines).
	ScaleLatency time.Duration
	// DispatchEvery is the dispatcher cadence.
	DispatchEvery time.Duration
	// Period is the metrics collection period (800 ms in §6.2).
	Period time.Duration
	// LCAbandonFactor forwards to engine.Config.
	LCAbandonFactor float64
	// GeoRadiusKm bounds LC candidate clusters (footnote 4).
	GeoRadiusKm float64
	// LCShards > 1 partitions the topology into that many geographic
	// shards (internal/shard) and solves their DSS-LC instances
	// concurrently, with a sequential cross-shard overflow pass; 0 or 1
	// keeps the single global DSS-LC dispatcher. Applies only when
	// MakeLC is nil.
	LCShards int
	// LCShardWorkers bounds the shard solve pool (0 = GOMAXPROCS).
	LCShardWorkers int

	// TraceSink, when non-nil, enables simulation-time tracing: a Tracer
	// over the system clock is wired into the engine, the DSS-LC
	// scheduler and the QoS re-assurer, and every lifecycle event is
	// recorded into the sink. Use obs.NullSink{} to collect only the
	// per-kind event counts for the run report.
	TraceSink obs.Sink
	// TraceTag stamps every event (distinguishes systems sharing a sink).
	TraceTag string
	// SpanSampleRate, when in (0,1], installs a deterministic head-based
	// span sampler keyed by (request ID, Seed): each request's whole span
	// tree is kept or dropped atomically, reproducibly per seed. 0 (the
	// default) and 1 both record every span — a rate-1.0 run is
	// byte-identical to an unsampled one. Events and decision records are
	// never sampled.
	SpanSampleRate float64

	// Verify enables the differential-verification layer: a
	// check.Verifier sweeps the engine's internal accounting and the SLO
	// accountant's episode invariants on every collection period, and
	// cross-checks flow conservation after every DSS-LC min-cost-flow
	// solve. Violations are recorded, not fatal; read System.Verifier.
	Verify bool

	// OnOutcome, when non-nil, receives every request outcome after the
	// built-in observers. The chaos differential oracle uses it to prove
	// request conservation (exactly one outcome per accepted request).
	OnOutcome func(o engine.Outcome)

	// Chaos, when non-nil, arms the fault-injection program at Start:
	// every fault (and windowed clear) becomes an ordinary sim event, so
	// a chaos run replays byte-identically under the same scenario and
	// seed. Nil keeps the system exactly digest-identical to a build
	// without the chaos subsystem.
	Chaos *chaos.Program
	// ChaosGen overrides the flash-crowd burst template (catalog plus
	// base LC/BE rates the fault Factor scales). Nil uses 60 LC / 25 BE
	// requests per second over the default catalog.
	ChaosGen *trace.GenConfig
	// Defrag, when non-nil, runs a periodic defragmentation pass that
	// live-migrates the newest BE work off hot nodes onto cold reachable
	// ones (see chaos.DefragConfig for the thresholds).
	Defrag *chaos.DefragConfig

	// Profiler, when non-nil, enables phase profiling: the DSS-LC solve
	// stages, the dispatcher rounds, admission checks and the collector
	// tick are timed (wall clock and allocation deltas), the collector
	// samples Go runtime/metrics into perf_*-prefixed registry gauges,
	// and the run report gains a "perf" section. All of it is stripped by
	// obs.ReportDigest, so profiling never perturbs replay digests.
	Profiler *perf.Profiler
}

// Tango returns the full Tango configuration over a topology.
func Tango(t *topo.Topology, seed int64) Options {
	return Options{
		Topo: t, Seed: seed,
		Reassure: true, Boost: true, CentralBE: true,
		ScaleLatency: hrm.DVPAOpLatency,
	}
}

// System is a running edge-cloud deployment.
type System struct {
	Sim     *sim.Simulator
	Topo    *topo.Topology
	Engine  *engine.Engine
	Catalog *trace.Catalog

	lcSched   any
	beSched   any
	reassurer *hrm.ReAssurer
	booster   *hrm.Booster
	storage   *state.Storage
	observers []func(engine.Outcome)

	opts Options

	lcQueues map[topo.ClusterID][]*engine.Request
	lcAssign dsslc.Assignment // reused per dispatch round, cleared between uses
	// shardBatches is the reused per-round batch list of the sharded
	// LC dispatcher.
	shardBatches []shard.Batch
	beQueue      []*engine.Request
	central      topo.ClusterID

	Metrics *Collector
	// Tracer is non-nil when Options.TraceSink was set.
	Tracer *obs.Tracer
	// SLO tracks per-service satisfaction, tail latency and violation
	// episodes (always on; decision attribution needs the Tracer).
	SLO *obs.SLOAccountant
	// Verifier is non-nil when Options.Verify was set; it accumulates
	// invariant violations observed during the run.
	Verifier *check.Verifier
	// Chaos is non-nil when Options.Chaos was set.
	Chaos *chaos.Injector
	// Defrag is non-nil when Options.Defrag was set.
	Defrag *chaos.Defragmenter

	// masterStall / collStall hold the virtual times until which a
	// cluster's LC dispatch / the metrics collector are paused. The map
	// stays nil on chaos-free runs, keeping the hot dispatch path
	// untouched.
	masterStall map[topo.ClusterID]time.Duration
	collStall   time.Duration

	periodics []*sim.Event
}

// New assembles a System from options.
func New(o Options) *System {
	if o.Topo == nil {
		panic("core: Options.Topo required")
	}
	if o.Catalog == nil {
		o.Catalog = trace.DefaultCatalog()
	}
	if o.Policy == nil {
		o.Policy = hrm.NewRegulations()
	}
	if o.DispatchEvery <= 0 {
		o.DispatchEvery = 50 * time.Millisecond
	}
	if o.Period <= 0 {
		o.Period = 800 * time.Millisecond
	}
	if o.LCAbandonFactor == 0 {
		o.LCAbandonFactor = 1
	}
	if o.GeoRadiusKm == 0 {
		o.GeoRadiusKm = 500
	}

	s := &System{
		Sim:      sim.New(),
		Topo:     o.Topo,
		Catalog:  o.Catalog,
		opts:     o,
		lcQueues: map[topo.ClusterID][]*engine.Request{},
		central:  o.Topo.CentralCluster().ID,
	}
	s.Metrics = NewCollector(o.Period)
	s.SLO = obs.NewSLOAccountant(obs.SLOConfig{})
	if o.TraceSink != nil {
		s.Tracer = obs.NewTracer(s.Sim.Now, o.TraceSink)
		s.Tracer.SetTag(o.TraceTag)
		if o.SpanSampleRate > 0 {
			s.Tracer.SetSampler(obs.NewSampler(o.SpanSampleRate, o.Seed))
		}
	}
	s.Engine = engine.New(engine.Config{
		Sim: s.Sim, Topo: o.Topo, Catalog: o.Catalog, Policy: o.Policy,
		ScaleLatency:    o.ScaleLatency,
		LCAbandonFactor: o.LCAbandonFactor,
		OnOutcome:       s.onOutcome,
		OnDisplaced:     s.redispatch,
		Tracer:          s.Tracer,
		Prof:            o.Profiler,
	})
	if o.MakeLC == nil {
		if o.LCShards > 1 {
			o.MakeLC = func(e *engine.Engine, seed int64) any {
				return shard.New(e, seed, o.LCShards, o.LCShardWorkers)
			}
		} else {
			o.MakeLC = func(e *engine.Engine, seed int64) any { return dsslc.New(e, seed) }
		}
	}
	if o.MakeBE == nil {
		o.MakeBE = func(e *engine.Engine, seed int64) any { return dcgbe.New(e, seed) }
	}
	s.lcSched = o.MakeLC(s.Engine, o.Seed)
	s.beSched = o.MakeBE(s.Engine, o.Seed+1)
	if lc, ok := s.lcSched.(*dsslc.Scheduler); ok {
		lc.Tracer = s.Tracer
		lc.Prof = o.Profiler
		lc.OnDecision = func(d obs.Decision) { s.SLO.NoteDecision(d.ID, d.At) }
	}
	if sh, ok := s.lcSched.(*shard.Scheduler); ok {
		sh.GeoRadiusKm = o.GeoRadiusKm
		sh.Tracer = s.Tracer
		sh.Prof = o.Profiler
		sh.OnDecision = func(d obs.Decision) { s.SLO.NoteDecision(d.ID, d.At) }
	}
	if o.Verify {
		s.Verifier = check.NewVerifier(s.Sim.Now)
		if lc, ok := s.lcSched.(*dsslc.Scheduler); ok {
			lc.OnSolve = s.Verifier.FlowHook()
		}
		if sh, ok := s.lcSched.(*shard.Scheduler); ok {
			sh.OnSolve = s.Verifier.FlowHook()
		}
	}

	if o.Reassure {
		s.reassurer = hrm.NewReAssurer(s.Engine)
		s.reassurer.Tracer = s.Tracer
		s.observers = append(s.observers, s.reassurer.Observe)
	}
	if o.Boost {
		s.booster = hrm.NewBooster(s.Engine)
	}
	if obs, ok := s.beSched.(OutcomeObserver); ok {
		s.observers = append(s.observers, obs.NotifyOutcome)
	}
	if o.OnOutcome != nil {
		s.observers = append(s.observers, o.OnOutcome)
	}
	// The DCG-BE state includes the current slack score δ_k (§5.3.1);
	// feed it from the re-assurer's windows when both are present.
	if be, ok := s.beSched.(*dcgbe.Scheduler); ok && s.reassurer != nil {
		be.SlackFn = s.nodeSlack
	}
	// The state storage (Fig. 3 ➋) receives Prometheus pushes and the
	// QoS detector's slack scores every 100 ms.
	s.storage = state.New(s.Engine)
	if s.reassurer != nil {
		s.storage.SlackFn = s.nodeSlack
	}
	if o.Chaos != nil {
		gen := trace.GenConfig{Catalog: o.Catalog, LCRatePerSec: 60, BERatePerSec: 25}
		if o.ChaosGen != nil {
			gen = *o.ChaosGen
		}
		s.masterStall = map[topo.ClusterID]time.Duration{}
		s.Chaos = chaos.NewInjector(*o.Chaos, chaos.InjectorConfig{
			Sim: s.Sim, Engine: s.Engine, Topo: s.Topo, Tracer: s.Tracer,
			Gen:            gen,
			Inject:         s.Inject,
			StallMaster:    func(c topo.ClusterID, until time.Duration) { s.masterStall[c] = until },
			StallCollector: func(until time.Duration) { s.collStall = until },
			OnRevive: func() {
				// The differential oracle demands green self-checks after
				// every revive, not only at period boundaries.
				if s.Verifier != nil {
					s.Verifier.SweepEngine(s.Engine)
					s.Verifier.SweepSLO(s.SLO)
				}
			},
		})
	}
	if o.Defrag != nil {
		s.Defrag = chaos.NewDefragmenter(s.Engine, *o.Defrag)
	}
	s.Metrics.Bind(s)
	return s
}

// StateStorage exposes the masters' state storage (Fig. 3 ➋).
func (s *System) StateStorage() *state.Storage { return s.storage }

// nodeSlack returns the worst (minimum) slack score over the LC services
// observed on the node in the current window, 0 when nothing is known.
func (s *System) nodeSlack(id topo.NodeID) float64 {
	worst := 0.0
	seen := false
	for _, st := range s.Catalog.Types {
		if st.Class != trace.LC {
			continue
		}
		if v, ok := s.reassurer.Slack(id, st.ID); ok {
			if !seen || v < worst {
				worst, seen = v, true
			}
		}
	}
	return worst
}

// ReAssurer exposes the re-assurance mechanism (nil when disabled).
func (s *System) ReAssurer() *hrm.ReAssurer { return s.reassurer }

// LCSchedulerName reports the LC algorithm in use.
func (s *System) LCSchedulerName() string { return schedName(s.lcSched) }

// BESchedulerName reports the BE algorithm in use.
func (s *System) BESchedulerName() string { return schedName(s.beSched) }

func schedName(v any) string {
	if n, ok := v.(interface{ Name() string }); ok {
		return n.Name()
	}
	return fmt.Sprintf("%T", v)
}

func (s *System) onOutcome(o engine.Outcome) {
	s.Metrics.observe(o)
	if o.Req.Class == trace.LC {
		s.SLO.Observe(int(o.Req.Type), o.Req.SType.Name, o.Req.Class.String(),
			o.FinishedAt, float64(o.Latency)/float64(time.Millisecond),
			o.Completed, o.Satisfied)
	}
	for _, obs := range s.observers {
		obs(o)
	}
}

// Inject schedules the arrival of trace requests. Arrival times are
// absolute virtual times: injecting before Run places the whole trace
// as usual, while a mid-run injection (chaos flash crowds) lands each
// burst request at its stamped arrival rather than re-offsetting it.
func (s *System) Inject(reqs []trace.Request) {
	for _, r := range reqs {
		r := r
		s.Sim.ScheduleAt(r.Arrival, func() { s.accept(r) })
	}
}

// accept implements step (1): queue at the master (LC locally, BE
// forwarded to the central cluster when CentralBE).
func (s *System) accept(tr trace.Request) {
	r := s.Engine.NewRequest(tr)
	if t := s.Tracer; t.Enabled() {
		t.Emit(obs.Ev(obs.EvArrival).Req(r.ID).Clu(int(r.Cluster)).
			Service(int(r.Type)).Cls(r.Class.String()))
	}
	s.Metrics.arrived(r)
	if r.Class == trace.LC {
		s.lcQueues[r.Cluster] = append(s.lcQueues[r.Cluster], r)
		return
	}
	if !s.opts.CentralBE || r.Cluster == s.central {
		s.beQueue = append(s.beQueue, r)
		return
	}
	// Forward to the central cluster over the WAN.
	delay := s.Topo.ClusterRTT(r.Cluster, s.central) / 2
	s.Sim.Schedule(delay, func() { s.beQueue = append(s.beQueue, r) })
}

// Start arms the periodic dispatchers, metric sampler, booster and
// re-assurer.
func (s *System) Start() {
	s.periodics = append(s.periodics, s.Sim.Every(s.opts.DispatchEvery, s.dispatch))
	s.periodics = append(s.periodics, s.Sim.Every(s.opts.Period, s.collectorTick))
	s.periodics = append(s.periodics, s.storage.Start(s.Sim))
	if s.Chaos != nil {
		s.Chaos.Arm()
	}
	if s.Defrag != nil {
		s.periodics = append(s.periodics, s.Sim.Every(s.Defrag.Period(), func() { s.Defrag.Run() }))
	}
	if s.booster != nil {
		s.periodics = append(s.periodics, s.booster.Start(s.Sim))
	}
	if s.reassurer != nil {
		s.periodics = append(s.periodics, s.reassurer.Start(s.Sim))
	}
	if s.Verifier != nil {
		s.periodics = append(s.periodics, s.Sim.Every(s.opts.Period, func() {
			s.Verifier.SweepEngine(s.Engine)
			s.Verifier.SweepSLO(s.SLO)
		}))
	}
}

// Stop cancels the periodic work.
func (s *System) Stop() {
	for _, ev := range s.periodics {
		ev.Cancel()
	}
	s.periodics = nil
}

// collectorTick runs one collection period unless a chaos collector
// stall covers this instant (stalled periods are skipped, not
// deferred). Chaos-free runs always fall straight through.
func (s *System) collectorTick() {
	if s.Sim.Now() < s.collStall {
		return
	}
	s.Metrics.tick()
}

// Run executes the whole experiment: Start, run the clock until
// `until`, then Stop and let in-flight work complete.
func (s *System) Run(until time.Duration) {
	s.Start()
	s.Sim.RunUntil(until)
	s.Stop()
	s.Sim.Run() // drain in-flight completions
	s.flushLeftovers()
}

// flushLeftovers resolves requests still sitting in scheduling queues
// after the drain — work re-queued by a failure so late that no
// dispatch round remained to place it. Without this, such requests
// would silently vanish: accepted (arrival counted) but never resolved
// to an outcome, which the chaos conservation oracle flags. They
// resolve as failed outcomes in ID order, deterministically.
func (s *System) flushLeftovers() {
	var leftovers []*engine.Request
	for _, c := range s.Topo.Clusters {
		leftovers = append(leftovers, s.lcQueues[c.ID]...)
		s.lcQueues[c.ID] = nil
	}
	leftovers = append(leftovers, s.beQueue...)
	s.beQueue = nil
	if len(leftovers) == 0 {
		return
	}
	sort.Slice(leftovers, func(i, j int) bool { return leftovers[i].ID < leftovers[j].ID })
	s.Engine.DisplaceFailed(leftovers)
}

// dispatch is one dispatcher round over all LC queues and the BE queue.
func (s *System) dispatch() {
	s.opts.Profiler.Enter(perf.PhaseEngineDispatch)
	defer s.opts.Profiler.Exit(perf.PhaseEngineDispatch)
	if sh, ok := s.lcSched.(*shard.Scheduler); ok {
		// Sharded LC: one coordinated round over every master's queue.
		s.dispatchSharded(sh)
		s.dispatchBE()
		return
	}
	// LC: each master dispatches its own queue (distributed decisions).
	for _, c := range s.Topo.Clusters {
		q := s.lcQueues[c.ID]
		if len(q) == 0 || s.masterStalled(c.ID) {
			continue
		}
		s.lcQueues[c.ID] = nil
		switch lc := s.lcSched.(type) {
		case BatchLCIntoScheduler:
			if s.lcAssign == nil {
				s.lcAssign = make(dsslc.Assignment, len(q))
			} else {
				clear(s.lcAssign)
			}
			a := s.lcAssign
			lc.ScheduleBatchInto(c.ID, q, a)
			for _, r := range q {
				if nid, ok := a[r.ID]; ok {
					s.Engine.Dispatch(r, nid)
				} else {
					s.requeueLC(c.ID, r)
				}
			}
		case BatchLCScheduler:
			a := lc.ScheduleBatch(c.ID, q)
			for _, r := range q {
				if nid, ok := a[r.ID]; ok {
					s.Engine.Dispatch(r, nid)
				} else {
					s.requeueLC(c.ID, r)
				}
			}
		case sched.Scheduler:
			cands := sched.CandidatesLC(s.Engine, c.ID, s.opts.GeoRadiusKm)
			for _, r := range q {
				if nid, ok := lc.Pick(r, cands); ok {
					if id := sched.Audit(s.Tracer, lc, r, cands, nid, ok); id >= 0 {
						s.SLO.NoteDecision(id, s.Sim.Now())
					}
					s.Engine.Dispatch(r, nid)
				} else {
					s.requeueLC(c.ID, r)
				}
			}
		default:
			panic(fmt.Sprintf("core: LC scheduler %T implements no known interface", s.lcSched))
		}
	}
	s.dispatchBE()
}

// dispatchSharded runs one shard-parallel LC round: every non-empty
// master queue becomes a batch, batches are scheduled by the sharded
// layer, and each batch is dispatched through the deliver callback —
// immediately after its solve in single-shard mode (the exact unsharded
// interleave), after the join and overflow pass otherwise.
func (s *System) dispatchSharded(sh *shard.Scheduler) {
	s.shardBatches = s.shardBatches[:0]
	for _, c := range s.Topo.Clusters {
		q := s.lcQueues[c.ID]
		if len(q) == 0 || s.masterStalled(c.ID) {
			continue
		}
		s.lcQueues[c.ID] = nil
		s.shardBatches = append(s.shardBatches, shard.Batch{Cluster: c.ID, Reqs: q})
	}
	if len(s.shardBatches) == 0 {
		return
	}
	if s.lcAssign == nil {
		s.lcAssign = make(dsslc.Assignment)
	} else {
		clear(s.lcAssign)
	}
	a := s.lcAssign
	sh.ScheduleRound(s.shardBatches, a, func(b shard.Batch) {
		for _, r := range b.Reqs {
			if nid, ok := a[r.ID]; ok {
				s.Engine.Dispatch(r, nid)
			} else {
				s.requeueLC(b.Cluster, r)
			}
		}
	})
}

// dispatchBE drains the centralized BE queue.
func (s *System) dispatchBE() {
	if len(s.beQueue) == 0 {
		return
	}
	q := s.beQueue
	s.beQueue = nil
	be, ok := s.beSched.(sched.Scheduler)
	if !ok {
		panic(fmt.Sprintf("core: BE scheduler %T implements no known interface", s.beSched))
	}
	cands := sched.CandidatesBE(s.Engine)
	for _, r := range q {
		if nid, ok := be.Pick(r, cands); ok {
			s.Engine.Dispatch(r, nid)
		} else {
			s.beQueue = append(s.beQueue, r) // retry next round
		}
	}
}

func (s *System) requeueLC(c topo.ClusterID, r *engine.Request) {
	s.lcQueues[c] = append(s.lcQueues[c], r)
}

// masterStalled reports whether a chaos master stall currently covers
// cluster c. Always false on chaos-free runs (nil map).
func (s *System) masterStalled(c topo.ClusterID) bool {
	if s.masterStall == nil {
		return false
	}
	return s.Sim.Now() < s.masterStall[c]
}

// redispatch returns requests displaced by a node failure to their
// arrival master's scheduling queue (LC) or the central BE queue. The
// masters learn of the failure through the state storage, so the next
// dispatch round routes around the dead node.
func (s *System) redispatch(reqs []*engine.Request) {
	for _, r := range reqs {
		if r.Class == trace.LC {
			s.requeueLC(r.Cluster, r)
		} else {
			s.beQueue = append(s.beQueue, r)
		}
	}
}

// FailNode schedules a worker failure at virtual time `at`; its running
// and queued requests are re-dispatched elsewhere.
func (s *System) FailNode(id topo.NodeID, at time.Duration) {
	s.Sim.ScheduleAt(at, func() { s.Engine.Node(id).Fail() })
}

// RecoverNode schedules the worker's recovery.
func (s *System) RecoverNode(id topo.NodeID, at time.Duration) {
	s.Sim.ScheduleAt(at, func() { s.Engine.Node(id).Recover() })
}

// FailCluster schedules every worker of a cluster to fail at `at`.
func (s *System) FailCluster(c topo.ClusterID, at time.Duration) {
	s.Sim.ScheduleAt(at, func() { s.Engine.FailCluster(c) })
}

// RecoverCluster schedules the cluster's workers to recover at `at`.
func (s *System) RecoverCluster(c topo.ClusterID, at time.Duration) {
	s.Sim.ScheduleAt(at, func() { s.Engine.RecoverCluster(c) })
}

// Collector aggregates the paper's measurements into period series.
type Collector struct {
	Period time.Duration

	sys *System

	// Cumulative counters.
	LC metrics.QoSCounter
	BE metrics.QoSCounter

	// Per-period series (one sample per 800 ms period).
	UtilSeries      metrics.Series
	LCUtilSeries    metrics.Series
	BEUtilSeries    metrics.Series
	QoSRateSeries   metrics.Series
	ThroughputSer   metrics.Series
	AbandonedSeries metrics.Series
	TailLatencySer  metrics.Series
	LCArrivalsSer   metrics.Series
	BEArrivalsSer   metrics.Series

	// registry is the labeled metric substrate (the Prometheus stand-in);
	// each tick scrapes it into RegistrySeries, one period-indexed series
	// per labeled sample (keyed name{labels}).
	registry       *obs.Registry
	RegistrySeries map[string]*metrics.Series
	clusterStats   map[topo.ClusterID]*clusterStats
	latencyHists   map[trace.TypeID]*obs.Histogram
	nodeGauges     []nodeGauges
	phiGauges      map[int]phiGauges
	solverGauges   *solverGauges
	chaosG         *chaosGauges
	shardGauges    []shardGauges
	overflowGauge  *obs.Gauge
	gatherBuf      []obs.Sample // reused across scrapes (zero-alloc Gather)

	// Performance observability (nil unless Options.Profiler was set):
	// each tick samples Go runtime/metrics into perf_* gauges, which the
	// scrape then turns into period-aligned series like any other metric.
	prof          *perf.Profiler
	harvester     *perf.Harvester
	runtimeGauges map[string]*obs.Gauge
	lastRuntime   perf.RuntimeSample
	rtSampled     bool

	// Per-period scratch counters.
	pLCArr, pBEArr       int64
	pLCSat, pLCDone      int64
	pBEDone              int64
	pAbandoned           int64
	latencies            []float64
	allLatencies         []float64
	sumLCLatenciesMs     float64
	completedLCLatencies int64
}

// phiGauges caches one service's live SLO gauges.
type phiGauges struct {
	phi     *obs.Gauge
	rolling *obs.Gauge
}

// chaosGauges caches the chaos/migration gauges. They exist only when
// the run has a chaos program or defragmenter, so chaos-free reports
// keep their metric set — and their digests — unchanged.
type chaosGauges struct {
	applied  *obs.Gauge
	cleared  *obs.Gauge
	active   *obs.Gauge
	injected *obs.Gauge
	// migrations counts engine live migrations (injector- or
	// defrag-driven).
	migrations   *obs.Gauge
	defragPasses *obs.Gauge
	defragMoves  *obs.Gauge
}

// solverGauges caches the DSS-LC solver health gauges (warm-start hit
// rate is the headline statistic of the MCNF warm-start optimisation).
type solverGauges struct {
	solves   *obs.Gauge
	warmHits *obs.Gauge
	warmRate *obs.Gauge
}

// shardGauges caches one shard's solver series (sharded dispatcher
// only), labeled {shard="sN"}.
type shardGauges struct {
	solves   *obs.Gauge
	warmHits *obs.Gauge
	warmRate *obs.Gauge
	clusters *obs.Gauge
	overflow *obs.Gauge
}

// clusterStats caches the per-cluster counter handles so the arrival and
// outcome paths update fields instead of doing registry lookups.
type clusterStats struct {
	arrLC, arrBE   *obs.Counter
	doneLC, doneBE *obs.Counter
	satisfied      *obs.Counter
	abandoned      *obs.Counter
}

type nodeGauges struct {
	util, queue, scaleOps *obs.Gauge
}

// NewCollector builds a collector with the given period.
func NewCollector(period time.Duration) *Collector {
	return &Collector{
		Period:          period,
		UtilSeries:      metrics.Series{Name: "utilization"},
		LCUtilSeries:    metrics.Series{Name: "lc-utilization"},
		BEUtilSeries:    metrics.Series{Name: "be-utilization"},
		QoSRateSeries:   metrics.Series{Name: "qos-rate"},
		ThroughputSer:   metrics.Series{Name: "be-throughput"},
		AbandonedSeries: metrics.Series{Name: "abandoned"},
		TailLatencySer:  metrics.Series{Name: "lc-p95-ms"},
		LCArrivalsSer:   metrics.Series{Name: "lc-arrivals"},
		BEArrivalsSer:   metrics.Series{Name: "be-arrivals"},
		registry:        obs.NewRegistry(),
		RegistrySeries:  map[string]*metrics.Series{},
		clusterStats:    map[topo.ClusterID]*clusterStats{},
		latencyHists:    map[trace.TypeID]*obs.Histogram{},
	}
}

// Bind attaches the collector to a system (for utilization sampling).
func (c *Collector) Bind(s *System) {
	c.sys = s
	if p := s.opts.Profiler; p.Enabled() {
		c.prof = p
		c.harvester = perf.NewHarvester()
		c.runtimeGauges = map[string]*obs.Gauge{}
	}
}

// Registry exposes the labeled metric registry.
func (c *Collector) Registry() *obs.Registry { return c.registry }

func (c *Collector) statsFor(cl topo.ClusterID) *clusterStats {
	cs, ok := c.clusterStats[cl]
	if !ok {
		l := obs.Labels{Cluster: fmt.Sprintf("c%d", cl)}
		lc, be := l, l
		lc.Service, be.Service = "LC", "BE"
		cs = &clusterStats{
			arrLC:     c.registry.Counter("tango_requests_arrived_total", lc),
			arrBE:     c.registry.Counter("tango_requests_arrived_total", be),
			doneLC:    c.registry.Counter("tango_requests_completed_total", lc),
			doneBE:    c.registry.Counter("tango_requests_completed_total", be),
			satisfied: c.registry.Counter("tango_lc_satisfied_total", l),
			abandoned: c.registry.Counter("tango_lc_abandoned_total", l),
		}
		c.clusterStats[cl] = cs
	}
	return cs
}

func (c *Collector) latencyHist(t trace.TypeID) *obs.Histogram {
	h, ok := c.latencyHists[t]
	if !ok {
		name := c.sys.Catalog.Type(t).Name
		h = c.registry.Histogram("tango_lc_latency_ms", obs.Labels{Service: name}, nil)
		c.latencyHists[t] = h
	}
	return h
}

func (c *Collector) arrived(r *engine.Request) {
	cs := c.statsFor(r.Cluster)
	if r.Class == trace.LC {
		c.LC.Arrived++
		c.pLCArr++
		cs.arrLC.Inc()
	} else {
		c.BE.Arrived++
		c.pBEArr++
		cs.arrBE.Inc()
	}
}

func (c *Collector) observe(o engine.Outcome) {
	cs := c.statsFor(o.Req.Cluster)
	if o.Req.Class == trace.LC {
		if o.Completed {
			c.LC.Completed++
			c.pLCDone++
			cs.doneLC.Inc()
			if o.Satisfied {
				c.LC.Satisfied++
				c.pLCSat++
				cs.satisfied.Inc()
			}
			ms := float64(o.Latency) / float64(time.Millisecond)
			c.latencies = append(c.latencies, ms)
			c.allLatencies = append(c.allLatencies, ms)
			c.sumLCLatenciesMs += ms
			c.completedLCLatencies++
			c.latencyHist(o.Req.Type).Observe(ms)
		} else {
			c.LC.Abandoned++
			c.pAbandoned++
			cs.abandoned.Inc()
		}
		return
	}
	if o.Completed {
		c.BE.Completed++
		c.BE.Satisfied++
		c.pBEDone++
		cs.doneBE.Inc()
	}
}

// tick closes one collection period.
func (c *Collector) tick() {
	c.prof.Enter(perf.PhaseEngineCollect)
	defer c.prof.Exit(perf.PhaseEngineCollect)
	c.UtilSeries.Append(c.sys.Utilization())
	lc, be := c.sys.UtilizationSplit()
	c.LCUtilSeries.Append(lc)
	c.BEUtilSeries.Append(be)
	// Per-period satisfaction rate over LC requests resolved this period
	// (completions plus abandonments), as in the paper's period plots.
	var rate float64 = 1
	if resolved := c.pLCDone + c.pAbandoned; resolved > 0 {
		rate = float64(c.pLCSat) / float64(resolved)
	}
	c.QoSRateSeries.Append(rate)
	c.ThroughputSer.Append(float64(c.pBEDone))
	c.AbandonedSeries.Append(float64(c.pAbandoned))
	p95 := percentile95(c.latencies)
	c.TailLatencySer.Append(p95)
	c.LCArrivalsSer.Append(float64(c.pLCArr))
	c.BEArrivalsSer.Append(float64(c.pBEArr))
	c.pLCArr, c.pBEArr, c.pLCSat, c.pLCDone, c.pBEDone, c.pAbandoned = 0, 0, 0, 0, 0, 0
	c.latencies = c.latencies[:0]
	c.updateNodeGauges()
	c.updateSLOGauges()
	c.updateSolverGauges()
	c.updateChaosGauges()
	c.sampleRuntime()
	c.scrape()
}

// updateChaosGauges refreshes the tango_chaos_* / migration gauges.
// No-op unless the run has a chaos program or a defragmenter.
func (c *Collector) updateChaosGauges() {
	inj, df := c.sys.Chaos, c.sys.Defrag
	if inj == nil && df == nil {
		return
	}
	if c.chaosG == nil {
		g := &chaosGauges{
			migrations: c.registry.Gauge("tango_migrations_total", obs.Labels{}),
		}
		if inj != nil {
			g.applied = c.registry.Gauge("tango_chaos_faults_total", obs.Labels{})
			g.cleared = c.registry.Gauge("tango_chaos_cleared_total", obs.Labels{})
			g.active = c.registry.Gauge("tango_chaos_active", obs.Labels{})
			g.injected = c.registry.Gauge("tango_chaos_injected_total", obs.Labels{})
		}
		if df != nil {
			g.defragPasses = c.registry.Gauge("tango_defrag_passes_total", obs.Labels{})
			g.defragMoves = c.registry.Gauge("tango_defrag_moves_total", obs.Labels{})
		}
		c.chaosG = g
	}
	c.chaosG.migrations.Set(float64(c.sys.Engine.Migrations))
	if inj != nil {
		c.chaosG.applied.Set(float64(inj.Applied))
		c.chaosG.cleared.Set(float64(inj.Cleared))
		c.chaosG.active.Set(float64(inj.Active))
		c.chaosG.injected.Set(float64(inj.Injected))
	}
	if df != nil {
		c.chaosG.defragPasses.Set(float64(df.Passes))
		c.chaosG.defragMoves.Set(float64(df.Moves))
	}
}

// updateSLOGauges refreshes the per-service φ gauges from the SLO
// accountant. Pure simulation state, so the series it adds are as
// replay-deterministic as every other tango_* metric.
func (c *Collector) updateSLOGauges() {
	if c.phiGauges == nil {
		c.phiGauges = map[int]phiGauges{}
	}
	for _, s := range c.sys.SLO.Services() {
		g, ok := c.phiGauges[s.Service]
		if !ok {
			l := obs.Labels{Service: s.Name}
			g = phiGauges{
				phi:     c.registry.Gauge("tango_slo_phi", l),
				rolling: c.registry.Gauge("tango_slo_rolling_phi", l),
			}
			c.phiGauges[s.Service] = g
		}
		g.phi.Set(s.Phi())
		g.rolling.Set(s.RollingPhi())
	}
}

// updateSolverGauges refreshes the DSS-LC solver health gauges (no-op
// for baseline schedulers and before the first solve).
func (c *Collector) updateSolverGauges() {
	var solves, warmHits uint64
	switch lc := c.sys.lcSched.(type) {
	case *dsslc.Scheduler:
		ws := lc.Workspace()
		if ws == nil {
			return
		}
		solves, warmHits = ws.Solves, ws.WarmHits
	case *shard.Scheduler:
		solves, warmHits = lc.SolverTotals()
		if solves == 0 {
			return
		}
		// Per-shard series only exist in genuinely sharded mode; the K=1
		// degenerate scheduler keeps the exact unsharded gauge set (and
		// so the exact unsharded report digest).
		if lc.NumShards() > 1 {
			c.updateShardGauges(lc)
		}
	default:
		return
	}
	if c.solverGauges == nil {
		c.solverGauges = &solverGauges{
			solves:   c.registry.Gauge("tango_solver_solves_total", obs.Labels{}),
			warmHits: c.registry.Gauge("tango_solver_warm_hits_total", obs.Labels{}),
			warmRate: c.registry.Gauge("tango_solver_warm_hit_rate", obs.Labels{}),
		}
	}
	c.solverGauges.solves.Set(float64(solves))
	c.solverGauges.warmHits.Set(float64(warmHits))
	rate := 0.0
	if solves > 0 {
		rate = float64(warmHits) / float64(solves)
	}
	c.solverGauges.warmRate.Set(rate)
}

// updateShardGauges refreshes the per-shard solver series of the
// sharded LC dispatcher (tango_solver_shard_*, labeled by shard).
func (c *Collector) updateShardGauges(sh *shard.Scheduler) {
	if c.shardGauges == nil {
		c.shardGauges = make([]shardGauges, sh.NumShards())
		for i := range c.shardGauges {
			l := obs.Labels{Shard: fmt.Sprintf("s%d", i)}
			c.shardGauges[i] = shardGauges{
				solves:   c.registry.Gauge("tango_solver_shard_solves_total", l),
				warmHits: c.registry.Gauge("tango_solver_shard_warm_hits_total", l),
				warmRate: c.registry.Gauge("tango_solver_shard_warm_hit_rate", l),
				clusters: c.registry.Gauge("tango_solver_shard_clusters", l),
				overflow: c.registry.Gauge("tango_solver_shard_overflow_total", l),
			}
		}
		c.overflowGauge = c.registry.Gauge("tango_solver_overflow_routed_total", obs.Labels{})
	}
	for _, st := range sh.Stats() {
		g := c.shardGauges[st.Shard]
		g.solves.Set(float64(st.Solves))
		g.warmHits.Set(float64(st.WarmHits))
		rate := 0.0
		if st.Solves > 0 {
			rate = float64(st.WarmHits) / float64(st.Solves)
		}
		g.warmRate.Set(rate)
		g.clusters.Set(float64(st.Clusters))
		g.overflow.Set(float64(st.Overflow))
	}
	c.overflowGauge.Set(float64(sh.OverflowRouted))
}

// sampleRuntime reads the Go runtime/metrics harvester into perf_*
// gauges so heap, GC and scheduler health ride the same scrape path as
// every simulation metric. No-op when profiling is off.
func (c *Collector) sampleRuntime() {
	if c.harvester == nil {
		return
	}
	c.lastRuntime = c.harvester.Sample()
	c.rtSampled = true
	for k, v := range c.lastRuntime.Map() {
		g, ok := c.runtimeGauges[k]
		if !ok {
			g = c.registry.Gauge(k, obs.Labels{})
			c.runtimeGauges[k] = g
		}
		g.Set(v)
	}
}

// updateNodeGauges refreshes the per-node labeled gauges from live
// engine state (the "Prometheus push" half of the pipeline).
func (c *Collector) updateNodeGauges() {
	nodes := c.sys.Engine.Nodes()
	if c.nodeGauges == nil {
		c.nodeGauges = make([]nodeGauges, len(nodes))
		for i, n := range nodes {
			l := obs.Labels{Cluster: fmt.Sprintf("c%d", n.Cluster), Node: fmt.Sprintf("%d", n.ID)}
			c.nodeGauges[i] = nodeGauges{
				util:     c.registry.Gauge("tango_node_utilization", l),
				queue:    c.registry.Gauge("tango_node_queue_len", l),
				scaleOps: c.registry.Gauge("tango_node_scale_ops_total", l),
			}
		}
	}
	for i, n := range nodes {
		g := c.nodeGauges[i]
		g.util.Set(n.Utilization())
		lcq, beq := n.QueueLen()
		g.queue.Set(float64(lcq + beq))
		g.scaleOps.Set(float64(n.ScaleOps))
	}
}

// scrape appends every registry sample to its period-indexed series.
// Samples appearing for the first time mid-run are back-filled with
// zeros so all registry series stay period-aligned.
func (c *Collector) scrape() {
	periods := len(c.UtilSeries.Values) - 1 // periods closed before this one
	if periods < 0 {
		periods = 0
	}
	c.gatherBuf = c.registry.GatherAppend(c.gatherBuf[:0])
	for _, s := range c.gatherBuf {
		key := s.Key()
		ser, ok := c.RegistrySeries[key]
		if !ok {
			ser = &metrics.Series{Name: key}
			if periods > 0 {
				ser.Values = make([]float64, periods)
			}
			c.RegistrySeries[key] = ser
		}
		ser.Append(s.Value)
	}
}

// MeanLCLatencyMs returns the average completed-LC latency.
func (c *Collector) MeanLCLatencyMs() float64 {
	if c.completedLCLatencies == 0 {
		return 0
	}
	return c.sumLCLatenciesMs / float64(c.completedLCLatencies)
}

// TailPercentiles returns exact nearest-rank percentiles over every
// completed LC latency of the run (ms).
func (c *Collector) TailPercentiles() map[string]float64 {
	out := map[string]float64{"p50": 0, "p90": 0, "p95": 0, "p99": 0}
	if len(c.allLatencies) == 0 {
		return out
	}
	cp := make([]float64, len(c.allLatencies))
	copy(cp, c.allLatencies)
	sort.Float64s(cp)
	out["p50"] = metrics.SortedPercentile(cp, 50)
	out["p90"] = metrics.SortedPercentile(cp, 90)
	out["p95"] = metrics.SortedPercentile(cp, 95)
	out["p99"] = metrics.SortedPercentile(cp, 99)
	return out
}

// percentile95 leaves v untouched (per-period buffers are reused by the
// caller between ticks).
func percentile95(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	cp := make([]float64, len(v))
	copy(cp, v)
	return metrics.PercentileInPlace(cp, 95)
}

// Utilization returns the current dominant-share utilization over all
// workers, capacity-weighted by CPU.
func (s *System) Utilization() float64 {
	var used, capTot float64
	for _, n := range s.Engine.Nodes() {
		used += float64(n.Used().MilliCPU)
		capTot += float64(n.Capacity.MilliCPU)
	}
	if capTot == 0 {
		return 0
	}
	return used / capTot
}

// UtilizationSplit returns the CPU utilization contributed by LC and BE
// allocations separately.
func (s *System) UtilizationSplit() (lc, be float64) {
	var lcUsed, beUsed, capTot float64
	for _, n := range s.Engine.Nodes() {
		lcUsed += float64(n.UsedByLC().MilliCPU)
		beUsed += float64(n.UsedByBE().MilliCPU)
		capTot += float64(n.Capacity.MilliCPU)
	}
	if capTot == 0 {
		return 0, 0
	}
	return lcUsed / capTot, beUsed / capTot
}

// Summary condenses an experiment run.
type Summary struct {
	System  string
	LCSched string
	BESched string
	QoSRate float64
	// Throughput counts BE completions inside the measured horizon (the
	// paper's long-term throughput); completions during the post-run
	// drain do not count.
	Throughput  int64
	MeanUtil    float64
	Abandoned   int64
	MeanLCLatMs float64
}

// Summarize builds the end-of-run summary.
func (s *System) Summarize(name string) Summary {
	return Summary{
		System:      name,
		LCSched:     s.LCSchedulerName(),
		BESched:     s.BESchedulerName(),
		QoSRate:     s.Metrics.LC.Rate(),
		Throughput:  int64(s.Metrics.ThroughputSer.Sum()),
		MeanUtil:    s.Metrics.UtilSeries.Mean(),
		Abandoned:   s.Metrics.LC.Abandoned,
		MeanLCLatMs: s.Metrics.MeanLCLatencyMs(),
	}
}

// ConfigMap flattens the options that shape a run into the string map
// hashed by obs.ConfigDigest.
func (s *System) ConfigMap(name string) map[string]string {
	o := s.opts
	lcShards := 1
	if sh, ok := s.lcSched.(*shard.Scheduler); ok {
		lcShards = sh.NumShards()
	}
	m := map[string]string{
		"lc_shards":         fmt.Sprintf("%d", lcShards),
		"system":            name,
		"lc_scheduler":      s.LCSchedulerName(),
		"be_scheduler":      s.BESchedulerName(),
		"policy":            o.Policy.Name(),
		"seed":              fmt.Sprintf("%d", o.Seed),
		"clusters":          fmt.Sprintf("%d", len(s.Topo.Clusters)),
		"workers":           fmt.Sprintf("%d", len(s.Engine.Nodes())),
		"reassure":          fmt.Sprintf("%t", o.Reassure),
		"boost":             fmt.Sprintf("%t", o.Boost),
		"central_be":        fmt.Sprintf("%t", o.CentralBE),
		"scale_latency":     o.ScaleLatency.String(),
		"dispatch_every":    o.DispatchEvery.String(),
		"period":            o.Period.String(),
		"lc_abandon_factor": fmt.Sprintf("%g", o.LCAbandonFactor),
		"geo_radius_km":     fmt.Sprintf("%g", o.GeoRadiusKm),
	}
	// Chaos/defrag keys exist only when enabled, so every pre-chaos
	// config digest is preserved verbatim.
	if s.Chaos != nil {
		p := s.Chaos.Program()
		m["chaos"] = p.Name
		m["chaos_digest"] = p.Digest()
	}
	if s.Defrag != nil {
		cfg := s.Defrag.Config()
		m["defrag"] = fmt.Sprintf("%s/%d moves", cfg.Every, cfg.MaxMoves)
	}
	return m
}

// Report builds the run-report document from the same collectors that
// feed the printed tables: Phi is the table's QoS satisfaction rate and
// Series["lc-p95-ms"] is the per-period p95 column, so report and tables
// always agree. wall is the real time spent simulating.
func (s *System) Report(name string, wall time.Duration) *obs.Report {
	m := s.Metrics
	cfg := s.ConfigMap(name)
	series := map[string][]float64{}
	for _, ser := range []*metrics.Series{
		&m.UtilSeries, &m.LCUtilSeries, &m.BEUtilSeries, &m.QoSRateSeries,
		&m.ThroughputSer, &m.AbandonedSeries, &m.TailLatencySer,
		&m.LCArrivalsSer, &m.BEArrivalsSer,
	} {
		series[ser.Name] = ser.Values
	}
	for key, ser := range m.RegistrySeries {
		series[key] = ser.Values
	}
	var perfSec *obs.PerfSection
	if p := s.opts.Profiler; p.Enabled() {
		perfSec = &obs.PerfSection{Phases: p.ReportPhases()}
		if m.rtSampled {
			perfSec.Runtime = m.lastRuntime.Map()
		}
	}
	return &obs.Report{
		Schema:       obs.ReportSchema,
		System:       name,
		Tag:          s.opts.TraceTag,
		ConfigDigest: obs.ConfigDigest(cfg),
		Config:       cfg,
		VirtualMs:    float64(s.Sim.Now()) / float64(time.Millisecond),
		PeriodMs:     float64(m.Period) / float64(time.Millisecond),
		WallMs:       float64(wall) / float64(time.Millisecond),
		Phi:          m.LC.Rate(),
		LC: obs.ClassStats{
			Arrived: m.LC.Arrived, Completed: m.LC.Completed,
			Satisfied: m.LC.Satisfied, Abandoned: m.LC.Abandoned,
		},
		BE: obs.ClassStats{
			Arrived: m.BE.Arrived, Completed: m.BE.Completed,
			Satisfied: m.BE.Satisfied, Abandoned: m.BE.Abandoned,
		},
		BEThroughput:    int64(m.ThroughputSer.Sum()),
		MeanUtilization: m.UtilSeries.Mean(),
		MeanLCLatencyMs: m.MeanLCLatencyMs(),
		TailLatencyMs:   m.TailPercentiles(),
		Series:          series,
		Metrics:         obs.SamplesToReport(m.Registry().Gather()),
		EventCounts:     s.Tracer.Counts(),
		SLO:             s.SLOSnapshot(),
		Sink:            s.sinkStats(),
		Perf:            perfSec,
	}
}

// SLOSnapshot closes open violation episodes and renders the
// per-service SLO accounting.
func (s *System) SLOSnapshot() []obs.SLOReport {
	s.SLO.Finalize()
	return s.SLO.Snapshot()
}

// sinkStats summarizes trace-sink health for the report (nil when
// tracing was off).
func (s *System) sinkStats() *obs.SinkStats {
	if s.Tracer == nil {
		return nil
	}
	st := &obs.SinkStats{
		Events:    s.Tracer.Emitted(),
		Spans:     s.Tracer.SpanCount(),
		Decisions: s.Tracer.DecisionCount(),
	}
	switch sink := s.opts.TraceSink.(type) {
	case *obs.WriterSink:
		st.Lines, st.Dropped = sink.Lines, sink.Dropped
		if err := sink.Err(); err != nil {
			st.Error = err.Error()
		}
	case *obs.RingSink:
		st.Lines = sink.Total() + sink.SpanTotal()
	}
	return st
}
