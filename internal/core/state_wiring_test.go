package core

import (
	"testing"
	"time"

	"repro/internal/dcgbe"
	"repro/internal/engine"
	"repro/internal/topo"
	"repro/internal/trace"
)

func TestStateStorageSyncsDuringRun(t *testing.T) {
	tp := topo.PhysicalTestbed()
	sys := New(Tango(tp, 21))
	sys.Inject(smallTrace(tp, 3*time.Second, 21))
	sys.Run(5 * time.Second)
	st := sys.StateStorage()
	if st == nil {
		t.Fatal("no state storage")
	}
	// 5s at 100ms cadence plus the initial sync.
	if st.Syncs < 40 {
		t.Fatalf("syncs = %d", st.Syncs)
	}
	all := st.All()
	if len(all) != 16 {
		t.Fatalf("snapshots = %d, want 16 workers", len(all))
	}
	sums := st.Summarize()
	if len(sums) != 4 {
		t.Fatalf("cluster summaries = %d", len(sums))
	}
}

func TestSlackFeatureWiredIntoDCGBE(t *testing.T) {
	tp := topo.PhysicalTestbed()
	sys := New(Tango(tp, 22))
	be, ok := sys.beSched.(*dcgbe.Scheduler)
	if !ok {
		t.Fatal("default BE scheduler is not DCG-BE")
	}
	if be.SlackFn == nil {
		t.Fatal("slack feature not wired into DCG-BE")
	}
	// Feed an observation and verify the slack flows through.
	w := tp.Cluster(0).Workers[0]
	st := trace.DefaultCatalog().Type(1)
	sys.reassurer.Observe(engineOutcomeFor(w, st.QoSTarget/2))
	slack := be.SlackFn(w)
	if slack != 0.5 {
		t.Fatalf("slack = %v, want 0.5", slack)
	}
	// Unknown node: zero.
	if be.SlackFn(tp.Cluster(1).Workers[0]) != 0 {
		t.Fatal("unknown node slack should be 0")
	}
}

func TestNodeSlackPicksWorst(t *testing.T) {
	tp := topo.PhysicalTestbed()
	sys := New(Tango(tp, 23))
	w := tp.Cluster(0).Workers[0]
	cat := trace.DefaultCatalog()
	// type 1: slack 0.5; type 2: slack -0.5 (violation) -> worst wins.
	sys.reassurer.Observe(engineOutcomeFor(w, cat.Type(1).QoSTarget/2))
	o := engineOutcomeFor(w, cat.Type(2).QoSTarget*3/2)
	o.Req.Type = 2
	sys.reassurer.Observe(o)
	if got := sys.nodeSlack(w); got != -0.5 {
		t.Fatalf("worst slack = %v, want -0.5", got)
	}
}

// engineOutcomeFor fabricates an LC type-1 outcome with the given
// latency at a node, for feeding the re-assurer directly in tests.
func engineOutcomeFor(node topo.NodeID, latency time.Duration) engine.Outcome {
	return engine.Outcome{
		Req:       &engine.Request{ID: 1, Type: 1, Class: trace.LC, Target: node},
		Completed: true,
		Latency:   latency,
	}
}
