package core

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/topo"
	"repro/internal/trace"
)

// traceRun runs a Tango system with a ring sink big enough to retain
// every span. failWorkers>0 concentrates all load on cluster 0 and
// fails that many of its workers for the middle third (the failover
// scenario); 0 spreads the load over every cluster with no failures.
func traceRun(t *testing.T, dur time.Duration, lcRate, beRate float64, failWorkers int) (*System, *obs.RingSink) {
	t.Helper()
	tp := smallTopo()
	o := Tango(tp, 11)
	ring := obs.NewRingSink(1 << 18)
	o.TraceSink = ring
	sys := New(o)
	cs := []topo.ClusterID{0}
	if failWorkers == 0 {
		cs = nil
		for _, c := range tp.Clusters {
			cs = append(cs, c.ID)
		}
	}
	cfg := trace.DefaultGenConfig(cs, trace.P3, dur, 12)
	cfg.LCRatePerSec = lcRate
	cfg.BERatePerSec = beRate
	sys.Inject(trace.Generate(cfg))
	for _, v := range tp.Cluster(0).Workers[:failWorkers] {
		sys.FailNode(v, dur/3)
		sys.RecoverNode(v, 2*dur/3)
	}
	sys.Run(dur + 10*time.Second)
	if ring.SpanTotal() != uint64(len(ring.Spans())) {
		t.Fatalf("span ring wrapped (%d recorded, %d retained); raise capacity",
			ring.SpanTotal(), len(ring.Spans()))
	}
	return sys, ring
}

// TestSpanTilingOver60s pins the tentpole's core contract on a
// 60-sim-second run: for every resolved LC request, the child spans
// exactly tile [arrival, completion], so their durations sum to the
// end-to-end latency (well within the 1% acceptance bound).
func TestSpanTilingOver60s(t *testing.T) {
	if testing.Short() {
		t.Skip("60 sim-second run")
	}
	sys, ring := traceRun(t, 60*time.Second, 20, 5, 0)

	spans := ring.Spans()
	children := map[uint64][]obs.Span{}
	var roots []obs.Span
	for _, s := range spans {
		if s.Name == obs.SpanRequest {
			roots = append(roots, s)
		} else if s.Parent != 0 {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	if len(roots) == 0 {
		t.Fatal("no request root spans emitted")
	}
	var lcCompleted int
	for _, r := range roots {
		kids := children[r.ID]
		if len(kids) == 0 {
			t.Fatalf("request span %d (req %d) has no children", r.ID, r.ReqID)
		}
		var sum time.Duration
		for _, k := range kids {
			if k.End < k.Start {
				t.Fatalf("span %d %q has negative duration", k.ID, k.Name)
			}
			sum += k.Duration()
		}
		if sum != r.Duration() {
			t.Fatalf("req %d (%s, detail %q): child sum %v != e2e %v (children %d)",
				r.ReqID, r.Class, r.Detail, sum, r.Duration(), len(kids))
		}
		if r.Class == "LC" && (r.Detail == "" || r.Detail == "violated") {
			lcCompleted++
		}
	}
	if lcCompleted < 500 {
		t.Fatalf("only %d completed LC requests traced; load too light for the check", lcCompleted)
	}
	if int64(len(roots)) != sys.Metrics.LC.Completed+sys.Metrics.LC.Abandoned+sys.Metrics.BE.Completed+sys.Metrics.BE.Abandoned {
		t.Fatalf("root spans %d != resolved requests %d", len(roots),
			sys.Metrics.LC.Completed+sys.Metrics.LC.Abandoned+sys.Metrics.BE.Completed+sys.Metrics.BE.Abandoned)
	}
	if len(ring.Decisions()) == 0 {
		t.Fatal("no scheduling decisions audited")
	}
	// Every DSS-LC-routed request's sched span links a decision.
	var linked int
	for _, s := range spans {
		if s.Name == obs.SpanSched && s.Decision >= 0 {
			linked++
		}
	}
	if linked == 0 {
		t.Fatal("no sched spans link decision IDs")
	}
}

// TestViolationEpisodesAttributeDecisions induces a failure window (the
// failover scenario) and checks the run report's SLO section records
// violation episodes carrying the IDs of decisions active during them.
func TestViolationEpisodesAttributeDecisions(t *testing.T) {
	sys, ring := traceRun(t, 24*time.Second, 250, 30, 3)
	rep := sys.Report("tango", 0)
	if len(rep.SLO) == 0 {
		t.Fatal("report has no SLO section")
	}
	var episodes, withDecisions int
	for _, s := range rep.SLO {
		for _, ep := range s.Episodes {
			episodes++
			if ep.DecisionTotal > 0 && len(ep.Decisions) > 0 {
				withDecisions++
			}
			if ep.EndMs < ep.StartMs {
				t.Fatalf("episode ends before it starts: %+v", ep)
			}
		}
	}
	if episodes == 0 {
		t.Fatal("failure window induced no violation episodes")
	}
	if withDecisions == 0 {
		t.Fatal("no episode carries active decision IDs")
	}
	// The decision IDs must reference audited decisions.
	known := map[int64]bool{}
	for _, d := range ring.Decisions() {
		known[d.ID] = true
	}
	for _, s := range rep.SLO {
		for _, ep := range s.Episodes {
			for _, id := range ep.Decisions {
				if !known[id] {
					t.Fatalf("episode references unknown decision %d", id)
				}
			}
		}
	}
	if rep.Sink == nil || rep.Sink.Spans == 0 || rep.Sink.Decisions == 0 {
		t.Fatalf("sink stats incomplete: %+v", rep.Sink)
	}
}
