package core

import (
	"testing"
	"time"

	"repro/internal/topo"
	"repro/internal/trace"
)

// TestFailoverReroutesAroundDeadNodes injects a mid-run failure of half
// of one cluster's workers and checks that (a) all LC requests are still
// accounted for, (b) the system keeps satisfying most of them and (c)
// displaced requests were re-dispatched rather than dropped.
func TestFailoverReroutesAroundDeadNodes(t *testing.T) {
	tp := topo.PhysicalTestbed()
	sys := New(Tango(tp, 5))
	var clusters []topo.ClusterID
	for _, c := range tp.Clusters {
		clusters = append(clusters, c.ID)
	}
	gen := trace.DefaultGenConfig(clusters, trace.P3, 12*time.Second, 5)
	gen.LCRatePerSec = 60
	gen.BERatePerSec = 20
	gen.ClusterWeights = []float64{4, 1, 1, 1}
	reqs := trace.Generate(gen)
	sys.Inject(reqs)

	victims := tp.Cluster(0).Workers[:2]
	for _, v := range victims {
		sys.FailNode(v, 4*time.Second)
		sys.RecoverNode(v, 8*time.Second)
	}
	sys.Run(18 * time.Second)

	m := sys.Metrics
	if m.LC.Completed+m.LC.Abandoned != m.LC.Arrived {
		t.Fatalf("LC accounting broken: %d + %d != %d", m.LC.Completed, m.LC.Abandoned, m.LC.Arrived)
	}
	if m.LC.Rate() < 0.8 {
		t.Fatalf("QoS collapsed under failover: %.3f", m.LC.Rate())
	}
	if m.BE.Completed == 0 {
		t.Fatal("BE starved by failover")
	}
	// Nodes really recovered.
	for _, v := range victims {
		if sys.Engine.Node(v).Down() {
			t.Fatalf("node %d still down", v)
		}
	}
}

// TestFailoverWholeClusterDown fails every worker of one cluster: its LC
// traffic must spill to geo-nearby clusters via DSS-LC.
func TestFailoverWholeClusterDown(t *testing.T) {
	tp := topo.PhysicalTestbed()
	sys := New(Tango(tp, 6))
	gen := trace.DefaultGenConfig([]topo.ClusterID{0}, trace.P3, 8*time.Second, 6)
	gen.LCRatePerSec = 30
	gen.BERatePerSec = 10
	sys.Inject(trace.Generate(gen))
	for _, w := range tp.Cluster(0).Workers {
		sys.FailNode(w, 0)
	}
	sys.Run(14 * time.Second)
	m := sys.Metrics
	if m.LC.Completed == 0 {
		t.Fatal("no LC requests completed with the local cluster down")
	}
	// Everything ran remotely, so check the completion rate is still high.
	if m.LC.CompletionRate() < 0.9 {
		t.Fatalf("completion rate %.3f with nearby clusters available", m.LC.CompletionRate())
	}
}
