package core

import (
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/hrm"
	"repro/internal/sched"
	"repro/internal/topo"
	"repro/internal/trace"
)

func smallTopo() *topo.Topology { return topo.PhysicalTestbed() }

func smallTrace(t *topo.Topology, dur time.Duration, seed int64) []trace.Request {
	var cs []topo.ClusterID
	for _, c := range t.Clusters {
		cs = append(cs, c.ID)
	}
	cfg := trace.DefaultGenConfig(cs, trace.P3, dur, seed)
	cfg.LCRatePerSec = 40
	cfg.BERatePerSec = 15
	return trace.Generate(cfg)
}

func TestTangoSystemEndToEnd(t *testing.T) {
	tp := smallTopo()
	sys := New(Tango(tp, 1))
	reqs := smallTrace(tp, 10*time.Second, 2)
	sys.Inject(reqs)
	sys.Run(15 * time.Second)

	m := sys.Metrics
	if m.LC.Arrived == 0 || m.BE.Arrived == 0 {
		t.Fatal("no arrivals recorded")
	}
	total := m.LC.Completed + m.LC.Abandoned
	if total != m.LC.Arrived {
		t.Fatalf("LC accounting leak: %d completed + %d abandoned != %d arrived",
			m.LC.Completed, m.LC.Abandoned, m.LC.Arrived)
	}
	if m.LC.Rate() < 0.5 {
		t.Fatalf("Tango QoS rate %.2f suspiciously low", m.LC.Rate())
	}
	if m.BE.Completed == 0 {
		t.Fatal("no BE throughput")
	}
	if len(m.UtilSeries.Values) < 10 {
		t.Fatalf("utilization series too short: %d", len(m.UtilSeries.Values))
	}
	if sys.LCSchedulerName() != "DSS-LC" || sys.BESchedulerName() != "DCG-BE" {
		t.Fatalf("default schedulers = %s/%s", sys.LCSchedulerName(), sys.BESchedulerName())
	}
}

func TestSystemDeterministicForSeed(t *testing.T) {
	run := func() Summary {
		tp := smallTopo()
		sys := New(Tango(tp, 7))
		sys.Inject(smallTrace(tp, 5*time.Second, 3))
		sys.Run(8 * time.Second)
		return sys.Summarize("tango")
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestK8sNativeConfiguration(t *testing.T) {
	tp := smallTopo()
	reqs := smallTrace(tp, 8*time.Second, 4)
	o := Options{
		Topo:   tp,
		Policy: hrm.NewStaticPartition(trace.DefaultCatalog(), reqs),
		MakeLC: func(e *engine.Engine, seed int64) any { return &sched.RoundRobin{} },
		MakeBE: func(e *engine.Engine, seed int64) any { return &sched.RoundRobin{} },
	}
	sys := New(o)
	sys.Inject(reqs)
	sys.Run(12 * time.Second)
	if sys.LCSchedulerName() != "k8s-native" {
		t.Fatalf("LC sched = %s", sys.LCSchedulerName())
	}
	if sys.Metrics.LC.Arrived == 0 {
		t.Fatal("nothing arrived")
	}
	if sys.ReAssurer() != nil {
		t.Fatal("re-assurer should be off by default options")
	}
}

func TestCentralBEForwardingAddsLatency(t *testing.T) {
	tp := smallTopo()
	// Count when the first BE request reaches the central queue.
	mkOpts := func(central bool) Options {
		o := Tango(tp, 5)
		o.CentralBE = central
		return o
	}
	for _, central := range []bool{true, false} {
		sys := New(mkOpts(central))
		nonCentral := topo.ClusterID(0)
		if sys.central == nonCentral {
			nonCentral = 1
		}
		sys.Inject([]trace.Request{{ID: 1, Type: 6, Class: trace.BE, Arrival: 0, Cluster: nonCentral}})
		sys.Sim.RunUntil(1 * time.Millisecond)
		queued := len(sys.beQueue)
		if central && queued != 0 {
			t.Fatal("BE reached central queue before WAN delay")
		}
		if !central && queued != 1 {
			t.Fatal("local BE not queued immediately")
		}
	}
}

func TestCollectorPeriodSeries(t *testing.T) {
	tp := smallTopo()
	sys := New(Tango(tp, 6))
	sys.Inject(smallTrace(tp, 4*time.Second, 6))
	sys.Run(8 * time.Second)
	m := sys.Metrics
	// 8s / 800ms = 10 periods.
	if got := len(m.QoSRateSeries.Values); got != 10 {
		t.Fatalf("periods = %d, want 10", got)
	}
	for i, v := range m.QoSRateSeries.Values {
		if v < 0 || v > 1 {
			t.Fatalf("qos rate[%d] = %v out of range", i, v)
		}
	}
	if m.ThroughputSer.Sum() != float64(m.BE.Completed) {
		t.Fatalf("throughput series sum %v != completed %d", m.ThroughputSer.Sum(), m.BE.Completed)
	}
	// Arrivals recorded per period match the totals.
	if int64(m.LCArrivalsSer.Sum()) != m.LC.Arrived {
		t.Fatalf("arrival series %v != %d", m.LCArrivalsSer.Sum(), m.LC.Arrived)
	}
}

func TestSummarizeFields(t *testing.T) {
	tp := smallTopo()
	sys := New(Tango(tp, 8))
	sys.Inject(smallTrace(tp, 3*time.Second, 8))
	sys.Run(6 * time.Second)
	sum := sys.Summarize("tango")
	if sum.System != "tango" || sum.LCSched != "DSS-LC" || sum.BESched != "DCG-BE" {
		t.Fatalf("summary identity %+v", sum)
	}
	if sum.QoSRate < 0 || sum.QoSRate > 1 {
		t.Fatalf("qos %v", sum.QoSRate)
	}
	if sum.MeanUtil <= 0 {
		t.Fatal("mean utilization should be positive under load")
	}
	if sum.MeanLCLatMs <= 0 {
		t.Fatal("mean latency missing")
	}
}

func TestPercentile95Helper(t *testing.T) {
	if percentile95(nil) != 0 {
		t.Fatal("empty percentile")
	}
	v := []float64{5, 1, 4, 2, 3}
	if got := percentile95(v); got != 5 {
		t.Fatalf("p95 of 5 items = %v", got)
	}
	// input untouched
	if v[0] != 5 {
		t.Fatal("percentile95 mutated input")
	}
	hundred := make([]float64, 100)
	for i := range hundred {
		hundred[i] = float64(i + 1)
	}
	if got := percentile95(hundred); got != 95 {
		t.Fatalf("p95 of 1..100 = %v", got)
	}
}

func TestReassuranceAdjustsUnderLoad(t *testing.T) {
	tp := smallTopo()
	o := Tango(tp, 9)
	sys := New(o)
	// Overload one cluster with LC traffic to trigger poor slack.
	cfg := trace.DefaultGenConfig([]topo.ClusterID{0}, trace.P3, 8*time.Second, 9)
	cfg.LCRatePerSec = 120
	cfg.BERatePerSec = 0
	sys.Inject(trace.Generate(cfg))
	sys.Run(12 * time.Second)
	if sys.ReAssurer() == nil {
		t.Fatal("re-assurer missing")
	}
	if sys.ReAssurer().Adjustments == 0 {
		t.Fatal("re-assurer never adjusted under heavy load")
	}
}

func TestStopCancelsPeriodics(t *testing.T) {
	tp := smallTopo()
	sys := New(Tango(tp, 10))
	sys.Start()
	if sys.Sim.Pending() == 0 {
		t.Fatal("no periodic events armed")
	}
	sys.Stop()
	sys.Sim.Run() // must terminate: nothing periodic remains
	if len(sys.periodics) != 0 {
		t.Fatal("periodics not cleared")
	}
}

func TestPanicsOnMissingTopo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for missing topo")
		}
	}()
	New(Options{})
}
