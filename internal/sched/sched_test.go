package sched

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/res"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

func env() (*engine.Engine, *topo.Topology) {
	s := sim.New()
	b := topo.NewBuilder()
	w := []res.Vector{res.V(4000, 8192, 500), res.V(4000, 8192, 500)}
	b.AddCluster(30, 120, res.V(8000, 16384, 1000), w)
	b.AddCluster(30.5, 120, res.V(8000, 16384, 1000), w) // ~55km: geo-nearby
	b.AddCluster(40, 120, res.V(8000, 16384, 1000), w)   // ~1100km: far
	tp := b.Build()
	e := engine.New(engine.Config{Sim: s, Topo: tp, Catalog: trace.DefaultCatalog(), Policy: engine.GreedyPolicy{}})
	return e, tp
}

func lcReq(e *engine.Engine, id int64, cluster topo.ClusterID) *engine.Request {
	return e.NewRequest(trace.Request{ID: id, Type: 1, Class: trace.LC, Cluster: cluster})
}

func TestRoundRobinCycles(t *testing.T) {
	e, tp := env()
	rr := &RoundRobin{}
	cands := CandidatesLC(e, 0, 0) // local only: workers 1,2
	var got []topo.NodeID
	for i := 0; i < 4; i++ {
		id, ok := rr.Pick(lcReq(e, int64(i), 0), cands)
		if !ok {
			t.Fatal("pick failed")
		}
		got = append(got, id)
	}
	w := tp.Cluster(0).Workers
	want := []topo.NodeID{w[0], w[1], w[0], w[1]}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence %v, want %v", got, want)
		}
	}
	if _, ok := rr.Pick(lcReq(e, 9, 0), nil); ok {
		t.Fatal("empty candidates accepted")
	}
}

func TestLoadGreedyPicksIdlest(t *testing.T) {
	e, tp := env()
	w := tp.Cluster(0).Workers
	// Load worker 0 heavily.
	e.DispatchLocal(e.NewRequest(trace.Request{ID: 1, Type: 6, Class: trace.BE, Cluster: 0}), w[0])
	lg := LoadGreedy{}
	id, ok := lg.Pick(lcReq(e, 2, 0), CandidatesLC(e, 0, 0))
	if !ok || id != w[1] {
		t.Fatalf("picked %d, want idle %d", id, w[1])
	}
	// Equal load -> lowest ID.
	e2, tp2 := env()
	id, _ = lg.Pick(lcReq(e2, 1, 0), CandidatesLC(e2, 0, 0))
	if id != tp2.Cluster(0).Workers[0] {
		t.Fatalf("tie-break picked %d", id)
	}
	if _, ok := lg.Pick(lcReq(e, 3, 0), nil); ok {
		t.Fatal("empty candidates accepted")
	}
}

func TestScoringBalancesLoadAndDistance(t *testing.T) {
	e, tp := env()
	sc := NewScoring(tp)
	// All idle: local worker should win over the distant cluster's.
	cands := CandidatesLC(e, 0, 5000) // includes far cluster
	id, ok := sc.Pick(lcReq(e, 1, 0), cands)
	if !ok {
		t.Fatal("pick failed")
	}
	if e.Node(id).Cluster != 0 {
		t.Fatalf("picked remote cluster %d while local idle", e.Node(id).Cluster)
	}
	// Saturate the local cluster: scoring should go nearby.
	for _, w := range tp.Cluster(0).Workers {
		for i := int64(0); i < 8; i++ {
			e.DispatchLocal(e.NewRequest(trace.Request{ID: 100 + i, Type: 6, Class: trace.BE, Cluster: 0}), w)
		}
	}
	id, _ = sc.Pick(lcReq(e, 2, 0), cands)
	if e.Node(id).Cluster == 0 {
		t.Fatal("scoring stayed on saturated local cluster")
	}
	if _, ok := sc.Pick(lcReq(e, 3, 0), nil); ok {
		t.Fatal("empty candidates accepted")
	}
}

func TestCandidatesLCRespectsGeoRadius(t *testing.T) {
	e, _ := env()
	local := CandidatesLC(e, 0, 0)
	if len(local) != 2 {
		t.Fatalf("local candidates = %d", len(local))
	}
	near := CandidatesLC(e, 0, 500)
	if len(near) != 4 { // local + cluster 1
		t.Fatalf("500km candidates = %d", len(near))
	}
	all := CandidatesLC(e, 0, 5000)
	if len(all) != 6 {
		t.Fatalf("5000km candidates = %d", len(all))
	}
}

func TestCandidatesBEGlobal(t *testing.T) {
	e, _ := env()
	if got := len(CandidatesBE(e)); got != 6 {
		t.Fatalf("BE candidates = %d, want all 6 workers", got)
	}
}

func TestSchedulerNames(t *testing.T) {
	_, tp := env()
	if (&RoundRobin{}).Name() != "k8s-native" {
		t.Fatal("RoundRobin name")
	}
	if (LoadGreedy{}).Name() != "load-greedy" {
		t.Fatal("LoadGreedy name")
	}
	if NewScoring(tp).Name() != "scoring" {
		t.Fatal("Scoring name")
	}
}
