// Package sched defines the traffic-scheduling interface of Tango's
// dispatchers and the three baseline policies the paper compares against
// (§7.2): k8s-native round-robin [9], load-greedy (lowest-load node) and
// scoring (a weighted score over resource usage and transmission
// latency, after [42]). DSS-LC and DCG-BE implement the same interface
// in their own packages.
package sched

import (
	"math"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/topo"
)

// Scheduler picks a target worker for one request among candidate nodes.
// Implementations must be deterministic given their internal state.
type Scheduler interface {
	// Pick returns the chosen worker and true, or false when no
	// candidate is acceptable.
	Pick(r *engine.Request, cands []*engine.Node) (topo.NodeID, bool)
	Name() string
}

// RoundRobin is the K8s-native service-proxy baseline: it cycles through
// candidates regardless of load, priority or distance.
type RoundRobin struct {
	next int
}

// Name implements Scheduler.
func (r *RoundRobin) Name() string { return "k8s-native" }

// Pick implements Scheduler.
func (r *RoundRobin) Pick(_ *engine.Request, cands []*engine.Node) (topo.NodeID, bool) {
	if len(cands) == 0 {
		return 0, false
	}
	n := cands[r.next%len(cands)]
	r.next++
	return n.ID, true
}

// LoadGreedy dispatches to the candidate with the lowest projected
// dominant-share load (running + queued + in-transit), breaking ties
// toward the lowest node ID.
type LoadGreedy struct{}

// Name implements Scheduler.
func (LoadGreedy) Name() string { return "load-greedy" }

// Pick implements Scheduler.
func (LoadGreedy) Pick(_ *engine.Request, cands []*engine.Node) (topo.NodeID, bool) {
	if len(cands) == 0 {
		return 0, false
	}
	best := cands[0]
	bestU := best.ProjectedUtilization()
	for _, n := range cands[1:] {
		u := n.ProjectedUtilization()
		if u < bestU || (u == bestU && n.ID < best.ID) {
			best, bestU = n, u
		}
	}
	return best.ID, true
}

// Scoring is the weighted-score baseline [42]: it scores each candidate
// by free capacity, queue backlog and transmission latency and picks the
// maximum. Unlike DSS-LC it looks at one request at a time and cannot
// jointly optimize a batch.
type Scoring struct {
	Topo *topo.Topology
	// Weights; defaults favour free resources, then latency, then queue.
	WFree, WLatency, WQueue float64
}

// NewScoring builds the scoring baseline over a topology.
func NewScoring(t *topo.Topology) *Scoring {
	return &Scoring{Topo: t, WFree: 1.0, WLatency: 0.8, WQueue: 0.5}
}

// Name implements Scheduler.
func (s *Scoring) Name() string { return "scoring" }

// Pick implements Scheduler.
func (s *Scoring) Pick(r *engine.Request, cands []*engine.Node) (topo.NodeID, bool) {
	if len(cands) == 0 {
		return 0, false
	}
	master := s.Topo.Cluster(r.Cluster).Master
	best, bestScore := cands[0], math.Inf(-1)
	for _, n := range cands {
		free := 1 - n.ProjectedUtilization()
		rttMs := float64(s.Topo.RTT(master, n.ID)) / 1e6
		lcq, beq := n.QueueLen()
		score := s.WFree*free - s.WLatency*(rttMs/100) - s.WQueue*float64(lcq+beq)/10
		if score > bestScore || (score == bestScore && n.ID < best.ID) {
			best, bestScore = n, score
		}
	}
	return best.ID, true
}

// Audit emits one Decision audit record for a one-shot baseline pick:
// each candidate with its projected load, Flow=1 on the chosen node,
// losers marked not-chosen. The stamped decision ID is written to
// r.DecisionID so the request's spans link back to it. No-op (returns
// -1) when the tracer is disabled or the pick failed.
func Audit(tr *obs.Tracer, sc Scheduler, r *engine.Request, cands []*engine.Node, chosen topo.NodeID, ok bool) int64 {
	if !tr.Enabled() || !ok {
		return -1
	}
	d := obs.Decision{
		Algo:    sc.Name(),
		Cluster: int(r.Cluster), Svc: int(r.Type),
		Batch: 1, Routed: 1,
		Candidates: make([]obs.Candidate, len(cands)),
	}
	for i, n := range cands {
		c := obs.Candidate{Node: int(n.ID), Capacity: 1, Util: n.ProjectedUtilization()}
		if n.ID == chosen {
			c.Flow = 1
		} else {
			c.Reject = obs.RejectNotChosen
		}
		d.Candidates[i] = c
	}
	tr.EmitDecision(&d)
	r.DecisionID = d.ID
	return d.ID
}

// CandidatesLC returns the worker nodes an LC request may be dispatched
// to: the local cluster plus geo-nearby clusters within maxKm (footnote
// 4 of the paper; 500 km in the production dataset).
func CandidatesLC(e *engine.Engine, c topo.ClusterID, maxKm float64) []*engine.Node {
	t := e.Topology()
	var out []*engine.Node
	for _, w := range t.WorkersOf(c) {
		if n := e.Node(w); !n.Down() {
			out = append(out, n)
		}
	}
	for _, nc := range t.NeighborClusters(c, maxKm) {
		for _, w := range t.WorkersOf(nc) {
			if n := e.Node(w); !n.Down() {
				out = append(out, n)
			}
		}
	}
	return out
}

// CandidatesBE returns all live workers in the system (BE scheduling is
// centralized and global, §5.3).
func CandidatesBE(e *engine.Engine) []*engine.Node {
	var out []*engine.Node
	for _, n := range e.Nodes() {
		if !n.Down() {
			out = append(out, n)
		}
	}
	return out
}
