package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// RunInfo describes the run a scrape is observing (served at /runinfo).
type RunInfo struct {
	System     string  `json:"system"`
	Scenario   string  `json:"scenario,omitempty"`
	Seed       int64   `json:"seed"`
	PeriodMs   float64 `json:"period_ms,omitempty"`
	DurationMs float64 `json:"duration_ms,omitempty"`
	SampleRate float64 `json:"span_sample_rate"`
}

// Server exposes a running simulation over HTTP:
//
//	/metrics     OpenMetrics text exposition of the obs.Registry
//	/healthz     liveness probe
//	/runinfo     JSON RunInfo (scenario / seed / period)
//	/trace/tail  bounded live NDJSON stream from the TeeSink
//
// The source (registry + tee + run info) is swappable with SetSource so
// one server can outlive successive runs (tango-bench). The server
// never writes into the simulation's registry — its own counters are
// appended to the exposition on the fly — so attaching it cannot
// perturb replay digests.
type Server struct {
	mu   sync.Mutex
	reg  *obs.Registry
	tee  *obs.TeeSink
	info RunInfo

	ln   net.Listener
	srv  *http.Server
	done chan struct{}

	scrapes atomic.Uint64
	tails   atomic.Uint64
}

// Start listens on addr (host:port; port 0 picks a free one) and serves
// in the background. Wire a source with SetSource.
func Start(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/runinfo", s.handleRunInfo)
	mux.HandleFunc("/trace/tail", s.handleTail)
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln) // returns on Close
	}()
	return s, nil
}

// SetSource points the server at a run's registry, trace tee (either
// may be nil) and run info.
func (s *Server) SetSource(reg *obs.Registry, tee *obs.TeeSink, info RunInfo) {
	s.mu.Lock()
	s.reg, s.tee, s.info = reg, tee, info
	s.mu.Unlock()
}

func (s *Server) source() (*obs.Registry, *obs.TeeSink, RunInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reg, s.tee, s.info
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down, severing live tails.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		err = s.srv.Close()
	}
	select {
	case <-s.done:
	case <-time.After(2 * time.Second):
	}
	return err
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleRunInfo(w http.ResponseWriter, _ *http.Request) {
	_, _, info := s.source()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(info)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.scrapes.Add(1)
	reg, tee, _ := s.source()
	var fams []obs.FamilySnapshot
	if reg != nil {
		fams = reg.Snapshot()
	}
	fams = append(fams, s.selfMetrics(tee)...)
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	_ = WriteOpenMetrics(w, fams)
}

// selfMetrics are the server's own counters, materialised per scrape so
// they never enter the simulation registry (digest safety).
func (s *Server) selfMetrics(tee *obs.TeeSink) []obs.FamilySnapshot {
	one := func(name, kind string, v float64) obs.FamilySnapshot {
		return obs.FamilySnapshot{Name: name, Kind: kind,
			Members: []obs.MemberSnapshot{{Value: v}}}
	}
	out := []obs.FamilySnapshot{
		one("telemetry_scrapes_total", "counter", float64(s.scrapes.Load())),
		one("telemetry_tails_total", "counter", float64(s.tails.Load())),
	}
	if tee != nil {
		out = append(out,
			one("telemetry_tail_lines_total", "counter", float64(tee.Lines())),
			one("telemetry_tail_dropped_total", "counter", float64(tee.Dropped())),
			one("telemetry_tail_subscribers", "gauge", float64(tee.Subscribers())),
		)
	}
	return out
}

// handleTail streams NDJSON trace lines. Query parameters:
//
//	limit=N     stop after N lines (default 1000, 0 = unbounded)
//	backlog=0   skip the retained recent lines (default: replay them)
//
// The stream ends with one trailer object {"tail":{...}} reporting
// delivered and dropped counts, so a consumer can tell whether it kept
// up. A slow consumer never stalls the simulation: the tee drops for
// this subscriber and the drop is visible in the trailer and in
// telemetry_tail_dropped_total.
func (s *Server) handleTail(w http.ResponseWriter, r *http.Request) {
	s.tails.Add(1)
	_, tee, _ := s.source()
	if tee == nil {
		http.Error(w, "no trace stream attached", http.StatusServiceUnavailable)
		return
	}
	limit := 1000
	if v := r.URL.Query().Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			limit = n
		}
	}
	backlog := r.URL.Query().Get("backlog") != "0"

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	sub := tee.Subscribe(4096, backlog)
	defer sub.Close()

	sent := 0
	flushEvery := 64
	for limit == 0 || sent < limit {
		select {
		case line, ok := <-sub.Lines():
			if !ok {
				goto done
			}
			if _, err := w.Write(line); err != nil {
				goto done
			}
			sent++
			if sent%flushEvery == 0 && flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			goto done
		case <-time.After(250 * time.Millisecond):
			// Idle stream: flush what we have so a live reader sees
			// progress even below the flush batch size.
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
done:
	trailer, _ := json.Marshal(map[string]any{"tail": map[string]any{
		"sent":    sent,
		"dropped": sub.Dropped(),
	}})
	w.Write(append(trailer, '\n'))
	if flusher != nil {
		flusher.Flush()
	}
}
