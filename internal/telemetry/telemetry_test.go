package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func testRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("tango_requests_arrived_total", obs.Labels{Cluster: "c0"}).Add(42)
	r.Counter("tango_requests_arrived_total", obs.Labels{Cluster: "c1"}).Add(7)
	r.Gauge("tango_node_utilization", obs.Labels{Cluster: "c0", Node: "0"}).Set(0.625)
	h := r.Histogram("tango_lc_latency_ms", obs.Labels{Service: "lc-video"}, []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	return r
}

func TestOpenMetricsEncodeParseRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := WriteOpenMetrics(&b, testRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatalf("missing # EOF terminator:\n%s", text)
	}
	// Counter family name drops _total in the TYPE line, samples keep it.
	if !strings.Contains(text, "# TYPE tango_requests_arrived counter") {
		t.Fatalf("counter TYPE line wrong:\n%s", text)
	}
	if !strings.Contains(text, `tango_requests_arrived_total{cluster="c0"} 42`) {
		t.Fatalf("counter sample wrong:\n%s", text)
	}

	sc, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if !sc.SawEOF {
		t.Fatal("parser missed # EOF")
	}
	if sc.Types["tango_lc_latency_ms"] != "histogram" {
		t.Fatalf("types = %v", sc.Types)
	}
	if v, ok := sc.Value("tango_requests_arrived_total", map[string]string{"cluster": "c1"}); !ok || v != 7 {
		t.Fatalf("counter c1 = %v/%v", v, ok)
	}
	if v, ok := sc.Value("tango_node_utilization", map[string]string{"node": "0"}); !ok || v != 0.625 {
		t.Fatalf("gauge = %v/%v", v, ok)
	}
	// Histogram: cumulative buckets, +Inf equals _count.
	if v, ok := sc.Value("tango_lc_latency_ms_bucket", map[string]string{"le": "10", "service": "lc-video"}); !ok || v != 1 {
		t.Fatalf("bucket le=10 = %v/%v", v, ok)
	}
	if v, ok := sc.Value("tango_lc_latency_ms_bucket", map[string]string{"le": "100"}); !ok || v != 2 {
		t.Fatalf("bucket le=100 = %v/%v", v, ok)
	}
	inf, ok := sc.Value("tango_lc_latency_ms_bucket", map[string]string{"le": "+Inf"})
	cnt, ok2 := sc.Value("tango_lc_latency_ms_count", nil)
	if !ok || !ok2 || inf != cnt || cnt != 3 {
		t.Fatalf("+Inf bucket %v vs count %v", inf, cnt)
	}
	if v, ok := sc.Value("tango_lc_latency_ms_sum", nil); !ok || v != 555 {
		t.Fatalf("sum = %v/%v", v, ok)
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"metric_no_value\n",
		"m{unterminated 1\n",
		"m{l=unquoted} 1\n",
		"m notafloat\n",
		"# EOF\nmetric_after_eof 1\n",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Fatalf("parser accepted %q", bad)
		}
	}
	// Truncation (no # EOF) parses but is flagged.
	sc, err := ParseText(strings.NewReader("m 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if sc.SawEOF {
		t.Fatal("SawEOF on truncated document")
	}
}

func startTestServer(t *testing.T, reg *obs.Registry, tee *obs.TeeSink) *Server {
	t.Helper()
	srv, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.SetSource(reg, tee, RunInfo{System: "tango", Scenario: "test", Seed: 42, SampleRate: 1})
	return srv
}

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestServerEndpoints(t *testing.T) {
	tee := obs.NewTeeSink(nil, 64)
	srv := startTestServer(t, testRegistry(), tee)
	base := "http://" + srv.Addr()

	if body, _ := get(t, base+"/healthz"); strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz = %q", body)
	}

	body, ct := get(t, base+"/runinfo")
	if !strings.Contains(ct, "application/json") {
		t.Fatalf("runinfo content-type = %q", ct)
	}
	var info RunInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if info.System != "tango" || info.Seed != 42 {
		t.Fatalf("runinfo = %+v", info)
	}

	body, ct = get(t, base+"/metrics")
	if !strings.Contains(ct, "openmetrics-text") {
		t.Fatalf("metrics content-type = %q", ct)
	}
	sc, err := ParseText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("metrics do not parse: %v\n%s", err, body)
	}
	if !sc.SawEOF {
		t.Fatal("metrics missing # EOF")
	}
	if v, ok := sc.Value("tango_requests_arrived_total", map[string]string{"cluster": "c0"}); !ok || v != 42 {
		t.Fatalf("registry counter not exposed: %v/%v", v, ok)
	}
	// Server-local counters are exposed but never entered the registry.
	if v, ok := sc.Value("telemetry_scrapes_total", nil); !ok || v < 1 {
		t.Fatalf("telemetry_scrapes_total = %v/%v", v, ok)
	}
	if _, ok := sc.Value("telemetry_tail_subscribers", nil); !ok {
		t.Fatal("tee gauges missing")
	}
	for _, s := range testRegistry().Gather() {
		if strings.HasPrefix(s.Name, "telemetry_") {
			t.Fatal("server metrics leaked into the simulation registry")
		}
	}
}

func TestServerTailStreams(t *testing.T) {
	tee := obs.NewTeeSink(nil, 64)
	srv := startTestServer(t, nil, tee)

	// Emit a few lines before connecting: backlog replay must cover them.
	emit := func(seq uint64) {
		ev := *obs.Ev(obs.EvArrival).Req(int64(seq))
		ev.Seq = seq
		tee.Record(ev)
	}
	for i := uint64(0); i < 5; i++ {
		emit(i)
	}

	resp, err := http.Get("http://" + srv.Addr() + "/trace/tail?limit=8")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Keep emitting while the tail is attached.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(5); i < 20; i++ {
			emit(i)
			time.Sleep(time.Millisecond)
		}
	}()

	r := bufio.NewReader(resp.Body)
	var lines []string
	for {
		line, err := r.ReadString('\n')
		if line != "" {
			lines = append(lines, strings.TrimSpace(line))
		}
		if err != nil {
			break
		}
	}
	<-done
	if len(lines) != 9 { // 8 samples + trailer
		t.Fatalf("tail lines = %d, want 9:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	for i, line := range lines[:8] {
		var m struct {
			Seq  *uint64 `json:"seq"`
			Kind string  `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d invalid: %v (%q)", i, err, line)
		}
		if m.Seq == nil || *m.Seq != uint64(i) {
			t.Fatalf("line %d out of order: %q", i, line)
		}
	}
	var trailer struct {
		Tail *struct {
			Sent    int    `json:"sent"`
			Dropped uint64 `json:"dropped"`
		} `json:"tail"`
	}
	if err := json.Unmarshal([]byte(lines[8]), &trailer); err != nil || trailer.Tail == nil {
		t.Fatalf("bad trailer %q: %v", lines[8], err)
	}
	if trailer.Tail.Sent != 8 {
		t.Fatalf("trailer sent = %d, want 8", trailer.Tail.Sent)
	}
	if tee.Subscribers() != 0 {
		t.Fatalf("tail left %d subscribers attached", tee.Subscribers())
	}
}

func TestServerTailWithoutTee(t *testing.T) {
	srv := startTestServer(t, testRegistry(), nil)
	resp, err := http.Get("http://" + srv.Addr() + "/trace/tail")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}

// TestConcurrentScrapeVsEmit races live scrapes and a trace tail
// against a writer hammering the registry and the tee — the contract
// the whole plane exists for. Run under -race.
func TestConcurrentScrapeVsEmit(t *testing.T) {
	reg := obs.NewRegistry()
	tee := obs.NewTeeSink(nil, 32)
	srv := startTestServer(t, reg, tee)
	base := "http://" + srv.Addr()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the "engine"
		defer wg.Done()
		c := reg.Counter("tango_requests_arrived_total", obs.Labels{Cluster: "c0"})
		h := reg.Histogram("tango_lc_latency_ms", obs.Labels{Service: "lc"}, nil)
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Inc()
			h.Observe(float64(i % 300))
			ev := *obs.Ev(obs.EvArrival).Req(int64(i))
			ev.Seq = i
			tee.Record(ev)
			if i%100 == 0 { // structural churn mid-scrape
				reg.Gauge("tango_node_utilization", obs.Labels{Node: fmt.Sprint(i / 100)}).Set(0.5)
			}
		}
	}()

	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() { // scrapers
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Get(base + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := ParseText(strings.NewReader(string(body))); err != nil {
					t.Errorf("scrape %d unparseable: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // one live tail
		defer wg.Done()
		resp, err := http.Get(base + "/trace/tail?limit=200")
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}
