// Package telemetry is the live observation plane: it exposes a running
// simulation's obs.Registry in OpenMetrics text form over HTTP and
// streams the NDJSON trace tail to subscribers, without perturbing the
// deterministic replay contract (the server only ever reads snapshots;
// its own counters are appended at exposition time and never enter the
// simulation's registry, so replay digests are byte-identical with the
// server on or off).
package telemetry

import (
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// WriteOpenMetrics renders family snapshots in OpenMetrics text format
// (one # TYPE line per family, histogram expansion into cumulative
// _bucket/_sum/_count, terminated by # EOF).
func WriteOpenMetrics(w io.Writer, fams []obs.FamilySnapshot) error {
	var b strings.Builder
	for _, f := range fams {
		appendFamily(&b, f)
		if b.Len() > 32<<10 { // bounded buffering for large registries
			if _, err := io.WriteString(w, b.String()); err != nil {
				return err
			}
			b.Reset()
		}
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func appendFamily(b *strings.Builder, f obs.FamilySnapshot) {
	// OpenMetrics names the counter family without the _total suffix;
	// the sample line keeps it.
	famName := f.Name
	if f.Kind == "counter" {
		famName = strings.TrimSuffix(famName, "_total")
	}
	b.WriteString("# TYPE ")
	b.WriteString(famName)
	b.WriteByte(' ')
	b.WriteString(f.Kind)
	b.WriteByte('\n')
	for _, m := range f.Members {
		if f.Kind == "histogram" && m.Hist != nil {
			appendHistogram(b, f.Name, m)
			continue
		}
		b.WriteString(f.Name)
		b.WriteString(m.LabelStr)
		b.WriteByte(' ')
		appendValue(b, m.Value)
		b.WriteByte('\n')
	}
}

func appendHistogram(b *strings.Builder, name string, m obs.MemberSnapshot) {
	h := m.Hist
	var cum uint64
	for i := range h.Counts {
		cum += h.Counts[i]
		le := "+Inf"
		if i < len(h.Bounds) {
			le = strconv.FormatFloat(h.Bounds[i], 'g', -1, 64)
		}
		b.WriteString(name)
		b.WriteString("_bucket")
		b.WriteString(withLabel(m.LabelStr, "le", le))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(cum, 10))
		b.WriteByte('\n')
	}
	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(m.LabelStr)
	b.WriteByte(' ')
	appendValue(b, h.Sum)
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(m.LabelStr)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(h.Count, 10))
	b.WriteByte('\n')
}

// withLabel merges one extra label into an already-rendered label
// string ("" or "{k=\"v\",...}").
func withLabel(labelStr, k, v string) string {
	var b strings.Builder
	b.Grow(len(labelStr) + len(k) + len(v) + 6)
	if labelStr == "" {
		b.WriteByte('{')
	} else {
		b.WriteString(labelStr[:len(labelStr)-1])
		b.WriteByte(',')
	}
	b.WriteString(k)
	b.WriteString(`="`)
	b.WriteString(v)
	b.WriteString(`"}`)
	return b.String()
}

// appendValue renders a float64 the OpenMetrics way: shortest
// round-trippable decimal, NaN/Inf spelled out.
func appendValue(b *strings.Builder, v float64) {
	switch {
	case math.IsNaN(v):
		b.WriteString("NaN")
	case math.IsInf(v, 1):
		b.WriteString("+Inf")
	case math.IsInf(v, -1):
		b.WriteString("-Inf")
	default:
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
}
