package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Metric is one parsed sample line.
type Metric struct {
	Name   string
	Labels map[string]string // nil when unlabelled
	Value  float64
}

// Label returns the named label ("" when absent).
func (m Metric) Label(k string) string { return m.Labels[k] }

// Scrape is one parsed OpenMetrics document.
type Scrape struct {
	// Types maps family name (as written in the # TYPE line) to
	// "counter" | "gauge" | "histogram" | ...
	Types   map[string]string
	Samples []Metric
	// SawEOF reports whether the document carried the # EOF terminator —
	// its absence means a truncated scrape.
	SawEOF bool
}

// Value returns the first sample with the given name whose labels all
// match want (extra labels on the sample are allowed; nil matches any).
func (s *Scrape) Value(name string, want map[string]string) (float64, bool) {
	for _, m := range s.Samples {
		if m.Name != name {
			continue
		}
		ok := true
		for k, v := range want {
			if m.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return m.Value, true
		}
	}
	return 0, false
}

// Select returns every sample with the given name, in document order.
func (s *Scrape) Select(name string) []Metric {
	var out []Metric
	for _, m := range s.Samples {
		if m.Name == name {
			out = append(out, m)
		}
	}
	return out
}

// Names returns the sorted distinct sample names.
func (s *Scrape) Names() []string {
	set := map[string]bool{}
	for _, m := range s.Samples {
		set[m.Name] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ParseText parses an OpenMetrics/Prometheus text document. It is a
// strict-enough validator for the exposition this package writes: every
// non-comment line must be `name[{labels}] value`, label values must be
// quoted, and the document should end with # EOF (recorded in SawEOF,
// not an error, so Prometheus-flavoured output also parses).
func ParseText(r io.Reader) (*Scrape, error) {
	s := &Scrape{Types: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if line == "# EOF" {
				s.SawEOF = true
				continue
			}
			fields := strings.Fields(line)
			// "# TYPE <name> <kind>"
			if len(fields) >= 4 && fields[1] == "TYPE" {
				s.Types[fields[2]] = fields[3]
			}
			continue
		}
		if s.SawEOF {
			return nil, fmt.Errorf("line %d: sample after # EOF", lineNo)
		}
		m, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		s.Samples = append(s.Samples, m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseSample(line string) (Metric, error) {
	var m Metric
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return m, fmt.Errorf("no value: %q", line)
	} else {
		m.Name = rest[:i]
		rest = rest[i:]
	}
	if m.Name == "" {
		return m, fmt.Errorf("empty metric name: %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return m, fmt.Errorf("unterminated labels: %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return m, fmt.Errorf("%v: %q", err, line)
		}
		m.Labels = labels
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return m, fmt.Errorf("no value: %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return m, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	m.Value = v
	return m, nil
}

func parseLabels(body string) (map[string]string, error) {
	labels := map[string]string{}
	for body != "" {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return nil, fmt.Errorf("label without value")
		}
		key := body[:eq]
		body = body[eq+1:]
		if !strings.HasPrefix(body, `"`) {
			return nil, fmt.Errorf("unquoted label value")
		}
		end := strings.Index(body[1:], `"`)
		if end < 0 {
			return nil, fmt.Errorf("unterminated label value")
		}
		labels[key] = body[1 : 1+end]
		body = body[2+end:]
		body = strings.TrimPrefix(body, ",")
	}
	return labels, nil
}
