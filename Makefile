GO ?= go

.PHONY: all build test race bench check fmt vet clean trace-smoke verify replay-smoke fuzz-smoke perf bench-smoke telemetry-smoke race-telemetry race-shard chaos-smoke race-chaos

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments package takes ~5 min without -race and far longer with
# it; the default 10m per-package timeout is not enough.
race:
	$(GO) test -race -timeout 120m ./...

# The trace-overhead contract: TraceOff and TraceNull must report the
# same allocs/op (see bench_test.go).
bench-trace:
	$(GO) test -bench 'BenchmarkEngineTrace' -benchtime 100x -run xxx .

bench:
	$(GO) test -bench . -benchmem ./...

# Run a short traced simulation and check tango-trace parses, analyzes
# and Chrome-exports the stream.
trace-smoke:
	sh scripts/trace_smoke.sh

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

check: fmt vet build race

# The verification gate every perf PR must pass: vet, race-enabled
# tests (includes the differential oracles, metamorphic properties and
# replay tests in internal/check) and the end-to-end replay-digest
# smoke via tango-sim -digest -verify.
verify: vet race replay-smoke

replay-smoke:
	sh scripts/replay_smoke.sh

# 15-second fuzz budget over the native fuzz targets (5 s each): the
# MCNF differential oracle, the trace CSV round-trip, and the chaos
# survival oracle under fuzzer-chosen fault programs.
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzMinCostFlow -fuzztime 5s ./internal/flow
	$(GO) test -run xxx -fuzz FuzzTraceCSV -fuzztime 5s ./internal/trace
	$(GO) test -run xxx -fuzz FuzzChaosProgram -fuzztime 5s ./internal/check

# Write a BENCH_<date>.json perf snapshot (solver/engine/cgroup ns/op
# plus per-phase breakdowns) into the repo root for the perf trajectory
# baseline. Diff two snapshots with `tango-bench -compare old new`.
perf:
	$(GO) run ./cmd/tango-bench -perf .

# Bench regression-gate smoke: two quick snapshots compare clean, an
# injected regression makes `tango-bench -compare` exit non-zero.
bench-smoke:
	sh scripts/bench_smoke.sh

# Live-telemetry smoke: run tango-sim -listen, scrape /metrics /runinfo
# /trace/tail, validate the exposition via tango-top, and check the
# replay digests match a server-off run byte for byte.
telemetry-smoke:
	sh scripts/telemetry_smoke.sh

# Fast race pass over just the telemetry plane (scrape-vs-emit,
# tail-vs-hot-path); `make race` covers everything but takes far longer.
race-telemetry:
	$(GO) test -race ./internal/obs ./internal/telemetry

# Fast race pass over the sharded scheduling layer and the packages its
# concurrent solves lean on (pooled workspaces, keyed warm-start memos,
# the partitioner). `make race` covers everything but takes far longer.
race-shard:
	$(GO) test -race ./internal/shard ./internal/dsslc ./internal/flow ./internal/topo

# Chaos-replay smoke: the fault-injection run must pass the survival
# oracle and reproduce byte-identical digests across reruns (CLI half);
# the in-process half pins the golden fault schedules.
chaos-smoke:
	sh scripts/chaos_smoke.sh

# Fast race pass over the fault-injection path: the chaos package, the
# engine's failure/migration handling, and the check oracles (short
# sweep). `make race` covers everything but takes far longer.
race-chaos:
	$(GO) test -race -short ./internal/chaos ./internal/engine ./internal/check

clean:
	$(GO) clean ./...
	rm -f tango-sim tango-bench tango-trace
