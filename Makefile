GO ?= go

.PHONY: all build test race bench check fmt vet clean trace-smoke

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments package takes ~5 min without -race and far longer with
# it; the default 10m per-package timeout is not enough.
race:
	$(GO) test -race -timeout 120m ./...

# The trace-overhead contract: TraceOff and TraceNull must report the
# same allocs/op (see bench_test.go).
bench-trace:
	$(GO) test -bench 'BenchmarkEngineTrace' -benchtime 100x -run xxx .

bench:
	$(GO) test -bench . -benchmem ./...

# Run a short traced simulation and check tango-trace parses, analyzes
# and Chrome-exports the stream.
trace-smoke:
	sh scripts/trace_smoke.sh

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

check: fmt vet build race

clean:
	$(GO) clean ./...
	rm -f tango-sim tango-bench tango-trace
