#!/bin/sh
# Bench regression-gate smoke: prove the `tango-bench -compare` gate
# works in both directions. Two quick perf snapshots of the same seed
# must compare clean under generous thresholds (timing noise only), a
# snapshot compared against itself must be exactly clean, and a
# synthetically regressed snapshot (solver_ns_op x4 via benchmut) must
# make the gate exit non-zero.
set -eu

cd "$(dirname "$0")/.."

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

go build -o "$out/tango-bench" ./cmd/tango-bench
go build -o "$out/benchmut" ./scripts/benchmut

mkdir "$out/a" "$out/b"
echo "== perf snapshot A (quick) =="
"$out/tango-bench" -perf "$out/a" -perf-quick -seed 7
echo "== perf snapshot B (quick) =="
"$out/tango-bench" -perf "$out/b" -perf-quick -seed 7

snapA=$(ls "$out"/a/BENCH_*.json)
snapB=$(ls "$out"/b/BENCH_*.json)

echo "== compare A vs A (must pass, zero deltas) =="
"$out/tango-bench" -compare "$snapA" "$snapA"

# Quick snapshots have few calls per phase, and allocation attribution
# is process-global (background GC lands in whatever phase is open), so
# the clean-run gate uses wide thresholds; the injected regression is
# 10x (+900%), far outside them either way.
echo "== compare A vs B (must pass under noise thresholds) =="
"$out/tango-bench" -compare -threshold 300 -alloc-threshold 300 "$snapA" "$snapB"

echo "== compare A vs doctored B (must fail) =="
"$out/benchmut" -field solver_ns_op -scale 10 "$snapB" "$out/bad.json"
if "$out/tango-bench" -compare -threshold 300 -alloc-threshold 300 "$snapA" "$out/bad.json"; then
    echo "FAIL: -compare accepted a 10x solver regression" >&2
    exit 1
fi

# The solver hot path is allocation-free by contract, so the alloc gate
# must also catch a regression from a ~zero baseline (the floor-based
# 0 -> N rule in newAllocRow): doctor the Dijkstra phase back up to 512
# allocs/op, roughly its pre-workspace cost.
echo "== compare A vs alloc-doctored B (must fail) =="
"$out/benchmut" -section solver_phases -phase solve/dijkstra -field allocs_op -set 512 \
    "$snapB" "$out/bad-alloc.json"
if "$out/tango-bench" -compare -threshold 300 -alloc-threshold 300 "$snapA" "$out/bad-alloc.json"; then
    echo "FAIL: -compare accepted a 0 -> 512 allocs/op solver regression" >&2
    exit 1
fi
echo "OK: bench gate passes clean runs and rejects injected time and alloc regressions"
