// jsoncheck validates that a file is a single well-formed JSON document
// and, when a key is given, that the top-level object has a non-empty
// array under that key. Used by scripts/trace_smoke.sh to validate the
// Chrome trace_event export without depending on jq or python.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 || len(os.Args) > 3 {
		fmt.Fprintln(os.Stderr, "usage: jsoncheck <file> [required-array-key]")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "%s: invalid JSON: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	if len(os.Args) == 3 {
		key := os.Args[2]
		var arr []json.RawMessage
		if err := json.Unmarshal(doc[key], &arr); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %q is not an array: %v\n", os.Args[1], key, err)
			os.Exit(1)
		}
		if len(arr) == 0 {
			fmt.Fprintf(os.Stderr, "%s: %q is empty\n", os.Args[1], key)
			os.Exit(1)
		}
	}
}
