#!/bin/sh
# Chaos-replay smoke: the same scenario + seed + fault program must
# survive the full fault mix (node churn, cluster kill, WAN partition,
# RTT storm, flash crowd, stalls) with the defragmenter running, pass
# the invariant sweeps, and reproduce byte-identical stream and report
# digests across reruns. Faults are ordinary sim events, so chaos runs
# are covered by the exact same replay contract as clean runs.
set -eu

cd "$(dirname "$0")/.."

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

go build -o "$out/tango-sim" ./cmd/tango-sim

run() {
    "$out/tango-sim" -duration 4s -drain 2s -seed 7 \
        -chaos all -defrag -digest -verify "$@" \
        | grep '^digest:'
}

echo "== chaos replay digest (run 1) =="
d1=$(run)
echo "$d1"
echo "== chaos replay digest (run 2) =="
d2=$(run)
echo "$d2"

if [ "$d1" != "$d2" ]; then
    echo "FAIL: same chaos scenario+seed produced different digests" >&2
    exit 1
fi

# A different fault seed must change the run (the program actually
# perturbs the simulation rather than being digest-inert noise).
echo "== chaos replay digest (run 3, -chaos-seed 99) =="
d3=$(run -chaos-seed 99)
echo "$d3"
if [ "$d1" = "$d3" ]; then
    echo "FAIL: different fault programs produced identical digests" >&2
    exit 1
fi

# The in-process half: survival oracle + golden fault schedules.
go test -run 'TestChaosReplayDeterministic|TestChaosProgramGoldens' ./internal/check
echo "OK: chaos replay digests stable, fault seed perturbs the run"
