#!/bin/sh
# Repository health check: formatting, vet, build, race-enabled tests.
# Same steps as `make check`, for environments without make.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race (sharded scheduler fail-fast) =="
# Same packages as `make race-shard`: the concurrent shard solves are
# the likeliest place for a fresh data race, so surface one in seconds
# instead of at the end of the full -race pass below.
go test -race ./internal/shard ./internal/dsslc ./internal/flow ./internal/topo

echo "== go test -race =="
go test -race -timeout 120m ./...

echo "== replay smoke =="
sh scripts/replay_smoke.sh

echo "== bench smoke =="
sh scripts/bench_smoke.sh

echo "== telemetry smoke =="
sh scripts/telemetry_smoke.sh

echo "== chaos smoke =="
sh scripts/chaos_smoke.sh

echo "OK"
