// httpget fetches a URL and writes the response body to stdout, exiting
// non-zero on connection errors or non-2xx statuses. It keeps the
// repo's smoke scripts free of a curl/wget dependency.
//
// Usage: httpget [-timeout 5s] <url>
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	timeout := flag.Duration("timeout", 5*time.Second, "whole-request timeout")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: httpget [-timeout 5s] <url>")
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		fmt.Fprintf(os.Stderr, "GET %s: %s\n", flag.Arg(0), resp.Status)
		os.Exit(1)
	}
}
