#!/bin/sh
# Replay-determinism smoke: run the same scenario+seed twice through
# tango-sim -digest -verify and require byte-identical stream and report
# digests plus zero invariant violations. This is the CLI half of the
# deterministic-replay contract (internal/check has the in-process
# half); a digest mismatch means some nondeterminism (map iteration,
# wall-clock leakage, ...) crept into the simulation or its reporting.
set -eu

cd "$(dirname "$0")/.."

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

go build -o "$out/tango-sim" ./cmd/tango-sim

run() {
    "$out/tango-sim" -duration 4s -drain 2s -seed 7 -digest -verify "$@" \
        | grep '^digest:'
}

echo "== replay digest (run 1) =="
d1=$(run)
echo "$d1"
echo "== replay digest (run 2) =="
d2=$(run)
echo "$d2"

if [ "$d1" != "$d2" ]; then
    echo "FAIL: same scenario+seed produced different digests" >&2
    exit 1
fi

# Phase profiling measures host wall clock and allocations; none of it
# may leak into the digests.
echo "== replay digest (run 3, -perf) =="
d3=$(run -perf)
echo "$d3"
if [ "$d1" != "$d3" ]; then
    echo "FAIL: -perf instrumentation changed the digests" >&2
    exit 1
fi
echo "OK: replay digests identical (with and without -perf)"
