#!/bin/sh
# Live-telemetry smoke test: run a short simulation with -listen, scrape
# every endpoint while the server lingers, validate the OpenMetrics
# exposition through tango-top's strict parser, stream /trace/tail, and
# prove the replay digests are byte-identical with the server on vs off.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
trap 'rm -rf "$tmp"; [ -n "$pid" ] && kill "$pid" 2>/dev/null || true' EXIT

echo "== build =="
go build -o "$tmp/tango-sim" ./cmd/tango-sim
go build -o "$tmp/tango-top" ./cmd/tango-top
go build -o "$tmp/httpget" ./scripts/httpget

echo "== baseline run (server off) =="
"$tmp/tango-sim" -pattern P3 -duration 6s -drain 4s -seed 7 -digest \
    > "$tmp/off.log"
grep "^digest:" "$tmp/off.log"

echo "== live run (server on) =="
"$tmp/tango-sim" -pattern P3 -duration 6s -drain 4s -seed 7 -digest \
    -listen 127.0.0.1:0 -linger 60s > "$tmp/on.log" 2>&1 &
pid=$!

# Wait for the run to finish (the digest line prints before the linger
# window) so scrapes see the complete run and the server is still up.
i=0
until grep -q "^digest:" "$tmp/on.log" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 120 ] || { echo "live run never printed a digest"; cat "$tmp/on.log"; exit 1; }
    kill -0 "$pid" 2>/dev/null || { echo "live run died"; cat "$tmp/on.log"; exit 1; }
    sleep 0.5
done
addr=$(sed -n 's|^telemetry: listening on ||p' "$tmp/on.log")
[ -n "$addr" ] || { echo "no listen banner"; cat "$tmp/on.log"; exit 1; }
echo "server at $addr"

echo "== /healthz =="
[ "$("$tmp/httpget" "$addr/healthz")" = "ok" ] || { echo "healthz not ok"; exit 1; }

echo "== /runinfo =="
"$tmp/httpget" "$addr/runinfo" > "$tmp/runinfo.json"
go run ./scripts/jsoncheck "$tmp/runinfo.json"
grep -q '"system": "tango"' "$tmp/runinfo.json" || { echo "runinfo missing system"; exit 1; }

echo "== /metrics =="
"$tmp/httpget" "$addr/metrics" > "$tmp/metrics.txt"
for fam in tango_slo_phi tango_solver_solves_total tango_node_queue_len \
    tango_lc_latency_ms_bucket; do
    grep -q "^$fam" "$tmp/metrics.txt" || { echo "exposition missing $fam"; exit 1; }
done
tail -1 "$tmp/metrics.txt" | grep -q "^# EOF" || { echo "no # EOF terminator"; exit 1; }
# tango-top -n 1 re-parses the exposition strictly and renders one frame.
"$tmp/tango-top" -url "$addr" -n 1 > "$tmp/top.txt"
grep -q "SLO satisfaction" "$tmp/top.txt" || { echo "tango-top frame missing phi table"; exit 1; }

echo "== /trace/tail =="
"$tmp/httpget" "$addr/trace/tail?limit=5" > "$tmp/tail.ndjson"
lines=$(wc -l < "$tmp/tail.ndjson")
[ "$lines" -ge 1 ] || { echo "tail streamed nothing"; exit 1; }
tail -1 "$tmp/tail.ndjson" | grep -q '"tail"' || { echo "tail missing trailer"; exit 1; }

kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
pid=""

echo "== digest invariance (server on == server off) =="
off=$(grep "^digest:" "$tmp/off.log")
on=$(grep "^digest:" "$tmp/on.log")
[ "$off" = "$on" ] || { echo "digests differ:"; echo "off: $off"; echo "on:  $on"; exit 1; }

echo "telemetry smoke OK"
