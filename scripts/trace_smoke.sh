#!/bin/sh
# Trace-pipeline smoke test: run a short simulation with span tracing
# enabled and check that tango-trace can parse, summarize, analyze and
# Chrome-export the stream. Exercises the same path as
#   tango-sim -trace ... && tango-trace top ...
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== build =="
go build -o "$tmp/tango-sim" ./cmd/tango-sim
go build -o "$tmp/tango-trace" ./cmd/tango-trace

echo "== simulate (10s, traced) =="
"$tmp/tango-sim" -system tango -pattern P3 -duration 10s -seed 7 \
    -trace "$tmp/trace.ndjson"

[ -s "$tmp/trace.ndjson" ] || { echo "trace file empty"; exit 1; }

echo "== tango-trace summary =="
"$tmp/tango-trace" summary "$tmp/trace.ndjson" | tee "$tmp/summary.txt"
grep -q "spans:" "$tmp/summary.txt" || { echo "summary missing span count"; exit 1; }
# Every completed request's child spans must tile its e2e latency.
if grep -q "tiling:" "$tmp/summary.txt"; then
    tiling=$(grep "tiling:" "$tmp/summary.txt")
    total=$(echo "$tiling" | sed 's|.* \([0-9]*\)/\([0-9]*\) .*|\2|')
    exact=$(echo "$tiling" | sed 's|.* \([0-9]*\)/\([0-9]*\) .*|\1|')
    [ "$exact" = "$total" ] || { echo "tiling violated: $tiling"; exit 1; }
fi

echo "== tango-trace top (stdin) =="
"$tmp/tango-trace" top -k 5 < "$tmp/trace.ndjson" > /dev/null

echo "== tango-trace violations =="
"$tmp/tango-trace" violations "$tmp/trace.ndjson" > /dev/null

echo "== tango-trace chrome =="
"$tmp/tango-trace" chrome "$tmp/trace.ndjson" > "$tmp/chrome.json"
# The export must be one valid JSON document with a traceEvents array.
go run ./scripts/jsoncheck "$tmp/chrome.json" traceEvents

echo "trace smoke OK"
