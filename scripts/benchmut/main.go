// Command benchmut doctors a perf snapshot for negative testing: it
// multiplies one top-level numeric field by a factor and writes the
// result, so bench_smoke.sh can prove `tango-bench -compare` actually
// fails on a regression (not just passes on clean runs).
//
// Usage: benchmut -field solver_ns_op -scale 4 in.json out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	field := flag.String("field", "", "top-level numeric field to scale")
	scale := flag.Float64("scale", 1, "multiplier applied to the field")
	flag.Parse()
	if *field == "" || flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchmut -field <name> -scale <f> in.json out.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		fatal(err)
	}
	v, ok := doc[*field].(float64)
	if !ok {
		fatal(fmt.Errorf("field %q is not a number in %s", *field, flag.Arg(0)))
	}
	doc[*field] = v * *scale
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(flag.Arg(1), append(out, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchmut:", err)
	os.Exit(1)
}
