// Command benchmut doctors a perf snapshot for negative testing: it
// rewrites one numeric field — top-level, or inside one row of a phase
// section — so bench_smoke.sh can prove `tango-bench -compare` actually
// fails on a regression (not just passes on clean runs).
//
// Usage:
//
//	benchmut -field solver_ns_op -scale 4 in.json out.json
//	benchmut -section solver_phases -phase solve/dijkstra -field allocs_op -set 512 in.json out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	field := flag.String("field", "", "numeric field to rewrite")
	scale := flag.Float64("scale", 1, "multiplier applied to the field")
	set := flag.Float64("set", 0, "absolute value to write instead of scaling")
	setGiven := false
	section := flag.String("section", "", "phase section holding the field (e.g. solver_phases); empty = top level")
	phase := flag.String("phase", "", "phase name within -section (e.g. solve/dijkstra)")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "set" {
			setGiven = true
		}
	})
	if *field == "" || flag.NArg() != 2 || (*section == "") != (*phase == "") {
		fmt.Fprintln(os.Stderr, "usage: benchmut [-section <sec> -phase <name>] -field <name> (-scale <f> | -set <v>) in.json out.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		fatal(err)
	}
	target := doc
	if *section != "" {
		rows, ok := doc[*section].([]any)
		if !ok {
			fatal(fmt.Errorf("section %q is not a phase list in %s", *section, flag.Arg(0)))
		}
		target = nil
		for _, r := range rows {
			if m, ok := r.(map[string]any); ok && m["phase"] == *phase {
				target = m
				break
			}
		}
		if target == nil {
			fatal(fmt.Errorf("phase %q not found in section %q", *phase, *section))
		}
	}
	v, ok := target[*field].(float64)
	if !ok {
		fatal(fmt.Errorf("field %q is not a number in %s", *field, flag.Arg(0)))
	}
	if setGiven {
		target[*field] = *set
	} else {
		target[*field] = v * *scale
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(flag.Arg(1), append(out, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchmut:", err)
	os.Exit(1)
}
