// Package repro is a from-scratch Go reproduction of "Tango: Harmonious
// Management and Scheduling for Mixed Services Co-located among
// Distributed Edge-Clouds" (ICPP 2023).
//
// The implementation lives under internal/: the Tango framework itself
// (internal/core), Harmonious Resource Management (internal/hrm), the
// DSS-LC and DCG-BE traffic schedulers (internal/dsslc, internal/dcgbe)
// and every substrate they depend on — a deterministic discrete-event
// simulator, a behaviour-level Kubernetes model with cgroups, a min-cost
// max-flow solver, a neural-network/GraphSAGE/deep-RL stack and a
// synthetic workload generator. See DESIGN.md for the system inventory
// and EXPERIMENTS.md for the paper-versus-measured results.
//
// The benchmarks in bench_test.go regenerate every figure of the paper's
// evaluation; cmd/tango-bench does the same from the command line.
package repro
