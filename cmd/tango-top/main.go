// Command tango-top is a terminal dashboard over a live tango-sim or
// tango-bench telemetry server (-listen): it polls /metrics, parses the
// OpenMetrics exposition and renders φ per service, node queue depths,
// solver warm-start health and perf_* runtime gauges, refreshing in
// place like top(1).
//
// Usage:
//
//	tango-sim -listen 127.0.0.1:9090 -linger 1m &
//	tango-top -url http://127.0.0.1:9090
//	tango-top -url http://127.0.0.1:9090 -n 1   # one frame, no clearing
//	                                            # (doubles as a scrape validator)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/telemetry"
)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:9090", "telemetry server base URL")
		interval = flag.Duration("interval", time.Second, "poll interval")
		frames   = flag.Int("n", 0, "number of frames to render (0 = until interrupted; 1 = single frame, no screen clearing)")
		nodes    = flag.Int("nodes", 10, "busiest nodes to show")
	)
	flag.Parse()
	base := strings.TrimRight(*url, "/")

	info := fetchRunInfo(base)
	for i := 0; *frames == 0 || i < *frames; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		sc, err := scrape(base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tango-top: %v\n", err)
			os.Exit(1)
		}
		clear := *frames != 1
		render(os.Stdout, info, sc, *nodes, clear)
	}
}

func fetchRunInfo(base string) telemetry.RunInfo {
	var info telemetry.RunInfo
	resp, err := http.Get(base + "/runinfo")
	if err != nil {
		return info
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(body, &info)
	return info
}

func scrape(base string) (*telemetry.Scrape, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	sc, err := telemetry.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("invalid OpenMetrics exposition: %w", err)
	}
	if !sc.SawEOF {
		return nil, fmt.Errorf("truncated exposition (no # EOF)")
	}
	return sc, nil
}

func render(w io.Writer, info telemetry.RunInfo, sc *telemetry.Scrape, topNodes int, clear bool) {
	if clear {
		fmt.Fprint(w, "\x1b[H\x1b[2J")
	}
	fmt.Fprintf(w, "tango-top  system=%s scenario=%s seed=%d period=%.0fms sample=%.2f  %s\n\n",
		info.System, info.Scenario, info.Seed, info.PeriodMs, info.SampleRate,
		time.Now().Format("15:04:05"))

	renderPhi(w, sc)
	renderNodes(w, sc, topNodes)
	renderSolver(w, sc)
	renderPerf(w, sc)
}

func renderPhi(w io.Writer, sc *telemetry.Scrape) {
	phis := sc.Select("tango_slo_phi")
	if len(phis) == 0 {
		fmt.Fprintln(w, "(no tango_slo_phi yet — first collection period pending)")
		return
	}
	sort.Slice(phis, func(i, j int) bool { return phis[i].Label("service") < phis[j].Label("service") })
	tb := metrics.NewTable("SLO satisfaction (φ)", "service", "phi", "rolling", "p95 ms")
	for _, m := range phis {
		svc := m.Label("service")
		roll, _ := sc.Value("tango_slo_rolling_phi", map[string]string{"service": svc})
		var p95 float64
		if hs := sc.Select("tango_lc_latency_ms_bucket"); len(hs) > 0 {
			p95 = bucketQuantile(hs, svc, 0.95)
		}
		tb.AddRowF(svc, fmt.Sprintf("%.4f", m.Value), fmt.Sprintf("%.4f", roll), fmt.Sprintf("%.1f", p95))
	}
	fmt.Fprintln(w, tb.String())
}

// bucketQuantile recomputes a quantile from the exposed cumulative
// buckets of one service's latency histogram.
func bucketQuantile(buckets []telemetry.Metric, svc string, q float64) float64 {
	type bkt struct {
		le  float64
		cum float64
	}
	var bs []bkt
	for _, m := range buckets {
		if m.Label("service") != svc {
			continue
		}
		le := m.Label("le")
		if le == "+Inf" {
			continue
		}
		var ub float64
		fmt.Sscanf(le, "%g", &ub)
		bs = append(bs, bkt{ub, m.Value})
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
	if len(bs) == 0 || bs[len(bs)-1].cum == 0 {
		return 0
	}
	total, _ := bucketsTotal(buckets, svc)
	rank := q * total
	prevCum, prevLe := 0.0, 0.0
	for _, b := range bs {
		if b.cum >= rank && b.cum > prevCum {
			return prevLe + (b.le-prevLe)*(rank-prevCum)/(b.cum-prevCum)
		}
		prevCum, prevLe = b.cum, b.le
	}
	return bs[len(bs)-1].le
}

func bucketsTotal(buckets []telemetry.Metric, svc string) (float64, bool) {
	for _, m := range buckets {
		if m.Label("service") == svc && m.Label("le") == "+Inf" {
			return m.Value, true
		}
	}
	return 0, false
}

func renderNodes(w io.Writer, sc *telemetry.Scrape, topNodes int) {
	queues := sc.Select("tango_node_queue_len")
	if len(queues) == 0 {
		return
	}
	sort.Slice(queues, func(i, j int) bool {
		if queues[i].Value != queues[j].Value {
			return queues[i].Value > queues[j].Value
		}
		a := queues[i].Label("cluster") + "/" + queues[i].Label("node")
		b := queues[j].Label("cluster") + "/" + queues[j].Label("node")
		return a < b
	})
	if len(queues) > topNodes {
		queues = queues[:topNodes]
	}
	tb := metrics.NewTable(fmt.Sprintf("busiest nodes (top %d by queue depth)", len(queues)),
		"cluster", "node", "queue", "util")
	for _, m := range queues {
		util, _ := sc.Value("tango_node_utilization",
			map[string]string{"cluster": m.Label("cluster"), "node": m.Label("node")})
		tb.AddRowF(m.Label("cluster"), m.Label("node"), int64(m.Value), fmt.Sprintf("%.2f", util))
	}
	fmt.Fprintln(w, tb.String())
}

func renderSolver(w io.Writer, sc *telemetry.Scrape) {
	solves, ok := sc.Value("tango_solver_solves_total", nil)
	if !ok {
		return
	}
	hits, _ := sc.Value("tango_solver_warm_hits_total", nil)
	rate, _ := sc.Value("tango_solver_warm_hit_rate", nil)
	fmt.Fprintf(w, "solver: %d solves, %d warm hits (%.1f%% warm-hit rate)\n\n",
		int64(solves), int64(hits), rate*100)
}

func renderPerf(w io.Writer, sc *telemetry.Scrape) {
	var perf []telemetry.Metric
	for _, m := range sc.Samples {
		if strings.HasPrefix(m.Name, "perf_") {
			perf = append(perf, m)
		}
	}
	if len(perf) == 0 {
		return
	}
	sort.Slice(perf, func(i, j int) bool { return perf[i].Name < perf[j].Name })
	tb := metrics.NewTable("runtime health (perf_* gauges)", "metric", "value")
	for _, m := range perf {
		tb.AddRowF(m.Name, fmt.Sprintf("%.4g", m.Value))
	}
	fmt.Fprintln(w, tb.String())
}
