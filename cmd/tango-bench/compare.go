package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/metrics"
)

// Snapshot comparison: the bench regression gate. `tango-bench -compare
// old.json new.json` diffs two perf snapshots metric by metric and
// exits non-zero when any metric regressed past its threshold — wall
// time against -threshold, allocation counts against -alloc-threshold
// (allocations are near-deterministic, so their gate is tighter).

// compareRow is one metric diffed between two snapshots.
type compareRow struct {
	Metric    string
	Old, New  float64
	DeltaPct  float64
	Threshold float64 // percent; regression when DeltaPct > Threshold
	Regressed bool
}

// newRow diffs one metric; rows with a missing side (zero in either
// snapshot) are reported but never regress, so adding or removing a
// phase does not trip the gate.
func newRow(metric string, oldV, newV, thresholdPct float64) compareRow {
	r := compareRow{Metric: metric, Old: oldV, New: newV, Threshold: thresholdPct}
	if oldV > 0 && newV > 0 {
		r.DeltaPct = (newV - oldV) / oldV * 100
		r.Regressed = r.DeltaPct > thresholdPct
	}
	return r
}

// Allocation baselines of zero are meaningful — the solver hot path is
// allocation-free by contract — so unlike wall-time rows they must not
// be skipped as "missing". newAllocRow floors the old side (one alloc /
// allocBytesFloor bytes) instead: a 0→N regression trips the gate,
// while a new value at or below the floor stays quiet.
const (
	allocCountFloor = 1
	allocBytesFloor = 64
)

// The profiler's per-phase allocation deltas come from runtime/metrics
// counters that lag by up to one mcache span per size class (see
// perf.profiler_test): when a span fills inside a phase, hundreds of
// objects allocated elsewhere are flushed into that phase's account.
// The batching is deterministic per binary but shifts with any upstream
// allocation change, so two correct builds can disagree by a span's
// worth of objects on low-allocation phases. An alloc row therefore
// regresses only when the growth is also material across the whole run
// — more than these run-total floors — which keeps the gate sharp for
// real leaks (a per-op leak multiplies by the call count) while
// ignoring attribution noise at counter granularity.
const (
	allocObjsRunFloor  = 2048
	allocBytesRunFloor = 128 << 10
)

func newAllocRow(metric string, oldV, newV, thresholdPct, floor float64, calls uint64, runFloor float64) compareRow {
	r := compareRow{Metric: metric, Old: oldV, New: newV, Threshold: thresholdPct}
	base := oldV
	if base < floor {
		base = floor
	}
	switch {
	case newV > base:
		r.DeltaPct = (newV - base) / base * 100
		r.Regressed = r.DeltaPct > thresholdPct && (newV-base)*float64(calls) > runFloor
	case oldV > 0 && newV > 0:
		r.DeltaPct = (newV - oldV) / oldV * 100
	}
	return r
}

// compareSnapshots diffs every comparable metric of two snapshots.
func compareSnapshots(oldS, newS *perfSnapshot, nsPct, allocPct float64) []compareRow {
	rows := []compareRow{
		newRow("solver_ns_op", oldS.SolverNsOp, newS.SolverNsOp, nsPct),
		newRow("solver_warm_ns_op", oldS.SolverWarmNsOp, newS.SolverWarmNsOp, nsPct),
		newRow("dinic_ns_op", oldS.DinicNsOp, newS.DinicNsOp, nsPct),
		newRow("engine_event_ns", oldS.EngineEventNs, newS.EngineEventNs, nsPct),
		newRow("cgroup_resize_ns_op", oldS.CgroupResizeNsOp, newS.CgroupResizeNsOp, nsPct),
	}
	// Shard rows compare only when both snapshots swept the same fleet
	// size; a baseline predating the shard section (or a quick-vs-full
	// mix) leaves them informational via newRow's missing-side rule.
	if oldS.ShardNodes == newS.ShardNodes {
		shardIdx := map[int]shardRow{}
		for _, r := range oldS.ShardRows {
			shardIdx[r.Shards] = r
		}
		for _, nr := range newS.ShardRows {
			or, ok := shardIdx[nr.Shards]
			if !ok {
				continue
			}
			rows = append(rows, newRow(fmt.Sprintf("shard:k=%d wall_ms", nr.Shards), or.WallMs, nr.WallMs, nsPct))
		}
	}
	sections := []struct {
		name     string
		old, new []phaseRow
	}{
		{"solver", oldS.SolverPhases, newS.SolverPhases},
		{"engine", oldS.EnginePhases, newS.EnginePhases},
		{"cgroup", oldS.CgroupPhases, newS.CgroupPhases},
	}
	for _, sec := range sections {
		idx := map[string]phaseRow{}
		for _, p := range sec.old {
			idx[p.Phase] = p
		}
		for _, np := range sec.new {
			op, ok := idx[np.Phase]
			if !ok {
				continue // new phase: informational only
			}
			prefix := sec.name + ":" + np.Phase
			rows = append(rows,
				newRow(prefix+" ns_op", op.NsOp, np.NsOp, nsPct),
				newAllocRow(prefix+" bytes_op", op.BytesOp, np.BytesOp, allocPct, allocBytesFloor, np.Calls, allocBytesRunFloor),
				newAllocRow(prefix+" allocs_op", op.AllocsOp, np.AllocsOp, allocPct, allocCountFloor, np.Calls, allocObjsRunFloor),
			)
		}
	}
	return rows
}

func readSnapshot(path string) (*perfSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s perfSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != "tango.perf-snapshot/v1" {
		return nil, fmt.Errorf("%s: unexpected schema %q", path, s.Schema)
	}
	return &s, nil
}

// runCompare loads, diffs and prints; the returned code is the process
// exit code (0 clean, 1 regression, 2 load error).
func runCompare(oldPath, newPath string, nsPct, allocPct float64) int {
	oldS, err := readSnapshot(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	newS, err := readSnapshot(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	rows := compareSnapshots(oldS, newS, nsPct, allocPct)
	tb := metrics.NewTable(fmt.Sprintf("perf compare: %s -> %s", oldPath, newPath),
		"metric", "old", "new", "delta%", "limit%", "verdict")
	regressions := 0
	for _, r := range rows {
		verdict := "ok"
		switch {
		case r.Regressed:
			verdict = "REGRESSED"
			regressions++
		case r.Old == 0 || r.New == 0:
			verdict = "n/a"
		}
		tb.AddRowF(r.Metric, r.Old, r.New, r.DeltaPct, r.Threshold, verdict)
	}
	fmt.Println(tb.String())
	if oldS.Quick != newS.Quick {
		fmt.Fprintln(os.Stderr, "compare: warning: mixing -perf-quick and full snapshots")
	}
	fmt.Printf("compare: %d metrics, %d regression(s) (ns/op limit +%g%%, alloc limit +%g%%)\n",
		len(rows), regressions, nsPct, allocPct)
	if regressions > 0 {
		return 1
	}
	return 0
}
