package main

import "testing"

func baseSnap() *perfSnapshot {
	return &perfSnapshot{
		Schema:     "tango.perf-snapshot/v1",
		SolverNsOp: 1000, DinicNsOp: 500,
		EngineEventNs: 2000, CgroupResizeNsOp: 100,
		SolverPhases: []phaseRow{
			{Phase: "solve/mcnf", Calls: 10, NsOp: 900, BytesOp: 4096, AllocsOp: 8},
		},
		EnginePhases: []phaseRow{
			{Phase: "engine/dispatch", Calls: 2000, NsOp: 1500, BytesOp: 1024, AllocsOp: 4},
		},
	}
}

func countRegressions(rows []compareRow) (n int, names []string) {
	for _, r := range rows {
		if r.Regressed {
			n++
			names = append(names, r.Metric)
		}
	}
	return
}

func TestCompareIdenticalSnapshotsClean(t *testing.T) {
	rows := compareSnapshots(baseSnap(), baseSnap(), 25, 10)
	if n, names := countRegressions(rows); n != 0 {
		t.Fatalf("self compare regressed: %v", names)
	}
	if len(rows) != 5+2*3 {
		t.Fatalf("row count = %d, want 11", len(rows))
	}
}

// The allocation gate must catch regressions from a zero baseline: the
// hot-path phases are allocation-free by contract, and "0 allocs" is a
// real measurement, not a missing metric.
func TestCompareZeroBaselineAllocRegression(t *testing.T) {
	old := baseSnap()
	old.SolverPhases[0].AllocsOp = 0
	old.SolverPhases[0].BytesOp = 0
	ns := baseSnap()
	ns.SolverPhases[0].AllocsOp = 512
	ns.SolverPhases[0].BytesOp = 16384
	n, names := countRegressions(compareSnapshots(old, ns, 25, 10))
	if n != 2 {
		t.Fatalf("regressions = %v, want the mcnf allocs_op and bytes_op rows", names)
	}
	// Noise at or below the floor stays quiet...
	ns.SolverPhases[0].AllocsOp = allocCountFloor
	ns.SolverPhases[0].BytesOp = allocBytesFloor
	if n, names := countRegressions(compareSnapshots(old, ns, 25, 10)); n != 0 {
		t.Fatalf("floor-level allocs regressed: %v", names)
	}
	// ...and dropping to zero is an improvement, not a regression.
	imp := baseSnap()
	imp.SolverPhases[0].AllocsOp = 0
	imp.SolverPhases[0].BytesOp = 0
	if n, names := countRegressions(compareSnapshots(baseSnap(), imp, 25, 10)); n != 0 {
		t.Fatalf("N -> 0 allocs regressed: %v", names)
	}
}

func TestCompareFlagsNsRegression(t *testing.T) {
	ns := baseSnap()
	ns.SolverNsOp = 1400 // +40% > 25% limit
	rows := compareSnapshots(baseSnap(), ns, 25, 10)
	n, names := countRegressions(rows)
	if n != 1 || names[0] != "solver_ns_op" {
		t.Fatalf("regressions = %v, want [solver_ns_op]", names)
	}
	// Same delta under a looser limit is clean.
	if n, _ := countRegressions(compareSnapshots(baseSnap(), ns, 50, 10)); n != 0 {
		t.Fatalf("regression flagged despite +50%% limit")
	}
}

func TestComparePhaseAllocRegression(t *testing.T) {
	ns := baseSnap()
	ns.EnginePhases[0].BytesOp = 1200 // +17% > 10% alloc limit
	rows := compareSnapshots(baseSnap(), ns, 25, 10)
	n, names := countRegressions(rows)
	if n != 1 || names[0] != "engine:engine/dispatch bytes_op" {
		t.Fatalf("regressions = %v, want the dispatch bytes_op row", names)
	}
}

// Per-phase allocation deltas are read from runtime/metrics counters
// that flush one mcache span at a time, so a low-call-count phase can
// absorb a span's worth of someone else's allocations. Growth that
// stays under the run-total floors is attribution noise, not a leak.
func TestCompareAllocRunTotalFloor(t *testing.T) {
	old := baseSnap()
	old.EnginePhases = append(old.EnginePhases, phaseRow{Phase: "engine/collect", Calls: 12, BytesOp: 5400, AllocsOp: 50})
	ns := baseSnap()
	ns.EnginePhases = append(ns.EnginePhases, phaseRow{Phase: "engine/collect", Calls: 12, BytesOp: 13500, AllocsOp: 138})
	// +176% allocs but only ~1k objects / ~97KB across 12 calls: under
	// the counter granularity, so quiet.
	if n, names := countRegressions(compareSnapshots(old, ns, 25, 10)); n != 0 {
		t.Fatalf("sub-granularity alloc growth regressed: %v", names)
	}
	// The same per-op growth over enough calls is a real leak.
	ns.EnginePhases[1].Calls = 1200
	old.EnginePhases[1].Calls = 1200
	n, names := countRegressions(compareSnapshots(old, ns, 25, 10))
	if n != 2 {
		t.Fatalf("regressions = %v, want the collect bytes_op and allocs_op rows", names)
	}
}

func TestCompareShardRows(t *testing.T) {
	old := baseSnap()
	old.ShardNodes = 10000
	old.ShardRows = []shardRow{{Shards: 1, WallMs: 40000}, {Shards: 4, WallMs: 3000}}
	ns := baseSnap()
	ns.ShardNodes = 10000
	ns.ShardRows = []shardRow{{Shards: 1, WallMs: 41000}, {Shards: 4, WallMs: 3100}}
	if n, names := countRegressions(compareSnapshots(old, ns, 25, 10)); n != 0 {
		t.Fatalf("within-limit shard rows regressed: %v", names)
	}
	ns.ShardRows[1].WallMs = 4500 // +50% > 25% limit
	n, names := countRegressions(compareSnapshots(old, ns, 25, 10))
	if n != 1 || names[0] != "shard:k=4 wall_ms" {
		t.Fatalf("regressions = %v, want [shard:k=4 wall_ms]", names)
	}
	// Different fleet sizes are not comparable: rows are skipped.
	ns.ShardNodes = 2000
	if n, names := countRegressions(compareSnapshots(old, ns, 25, 10)); n != 0 {
		t.Fatalf("mismatched shard_nodes still compared: %v", names)
	}
	// A baseline predating the shard section never trips the gate.
	ns.ShardNodes = 10000
	if n, names := countRegressions(compareSnapshots(baseSnap(), ns, 25, 10)); n != 0 {
		t.Fatalf("shard rows vs pre-shard baseline regressed: %v", names)
	}
}

func TestCompareImprovementAndMissingSidesNeverRegress(t *testing.T) {
	ns := baseSnap()
	ns.SolverNsOp = 100                                             // big improvement
	ns.EnginePhases = append(ns.EnginePhases, phaseRow{Phase: "x"}) // phase only in new
	old := baseSnap()
	old.SolverPhases = append(old.SolverPhases, phaseRow{Phase: "y"}) // phase only in old
	old.CgroupResizeNsOp = 0                                          // metric absent in old
	if n, names := countRegressions(compareSnapshots(old, ns, 25, 10)); n != 0 {
		t.Fatalf("improvement/missing rows regressed: %v", names)
	}
}
