package main

import "testing"

func baseSnap() *perfSnapshot {
	return &perfSnapshot{
		Schema:     "tango.perf-snapshot/v1",
		SolverNsOp: 1000, DinicNsOp: 500,
		EngineEventNs: 2000, CgroupResizeNsOp: 100,
		SolverPhases: []phaseRow{
			{Phase: "solve/mcnf", Calls: 10, NsOp: 900, BytesOp: 4096, AllocsOp: 8},
		},
		EnginePhases: []phaseRow{
			{Phase: "engine/dispatch", Calls: 20, NsOp: 1500, BytesOp: 1024, AllocsOp: 4},
		},
	}
}

func countRegressions(rows []compareRow) (n int, names []string) {
	for _, r := range rows {
		if r.Regressed {
			n++
			names = append(names, r.Metric)
		}
	}
	return
}

func TestCompareIdenticalSnapshotsClean(t *testing.T) {
	rows := compareSnapshots(baseSnap(), baseSnap(), 25, 10)
	if n, names := countRegressions(rows); n != 0 {
		t.Fatalf("self compare regressed: %v", names)
	}
	if len(rows) != 5+2*3 {
		t.Fatalf("row count = %d, want 11", len(rows))
	}
}

// The allocation gate must catch regressions from a zero baseline: the
// hot-path phases are allocation-free by contract, and "0 allocs" is a
// real measurement, not a missing metric.
func TestCompareZeroBaselineAllocRegression(t *testing.T) {
	old := baseSnap()
	old.SolverPhases[0].AllocsOp = 0
	old.SolverPhases[0].BytesOp = 0
	ns := baseSnap()
	ns.SolverPhases[0].AllocsOp = 512
	ns.SolverPhases[0].BytesOp = 16384
	n, names := countRegressions(compareSnapshots(old, ns, 25, 10))
	if n != 2 {
		t.Fatalf("regressions = %v, want the mcnf allocs_op and bytes_op rows", names)
	}
	// Noise at or below the floor stays quiet...
	ns.SolverPhases[0].AllocsOp = allocCountFloor
	ns.SolverPhases[0].BytesOp = allocBytesFloor
	if n, names := countRegressions(compareSnapshots(old, ns, 25, 10)); n != 0 {
		t.Fatalf("floor-level allocs regressed: %v", names)
	}
	// ...and dropping to zero is an improvement, not a regression.
	imp := baseSnap()
	imp.SolverPhases[0].AllocsOp = 0
	imp.SolverPhases[0].BytesOp = 0
	if n, names := countRegressions(compareSnapshots(baseSnap(), imp, 25, 10)); n != 0 {
		t.Fatalf("N -> 0 allocs regressed: %v", names)
	}
}

func TestCompareFlagsNsRegression(t *testing.T) {
	ns := baseSnap()
	ns.SolverNsOp = 1400 // +40% > 25% limit
	rows := compareSnapshots(baseSnap(), ns, 25, 10)
	n, names := countRegressions(rows)
	if n != 1 || names[0] != "solver_ns_op" {
		t.Fatalf("regressions = %v, want [solver_ns_op]", names)
	}
	// Same delta under a looser limit is clean.
	if n, _ := countRegressions(compareSnapshots(baseSnap(), ns, 50, 10)); n != 0 {
		t.Fatalf("regression flagged despite +50%% limit")
	}
}

func TestComparePhaseAllocRegression(t *testing.T) {
	ns := baseSnap()
	ns.EnginePhases[0].BytesOp = 1200 // +17% > 10% alloc limit
	rows := compareSnapshots(baseSnap(), ns, 25, 10)
	n, names := countRegressions(rows)
	if n != 1 || names[0] != "engine:engine/dispatch bytes_op" {
		t.Fatalf("regressions = %v, want the dispatch bytes_op row", names)
	}
}

func TestCompareImprovementAndMissingSidesNeverRegress(t *testing.T) {
	ns := baseSnap()
	ns.SolverNsOp = 100                                             // big improvement
	ns.EnginePhases = append(ns.EnginePhases, phaseRow{Phase: "x"}) // phase only in new
	old := baseSnap()
	old.SolverPhases = append(old.SolverPhases, phaseRow{Phase: "y"}) // phase only in old
	old.CgroupResizeNsOp = 0                                          // metric absent in old
	if n, names := countRegressions(compareSnapshots(old, ns, 25, 10)); n != 0 {
		t.Fatalf("improvement/missing rows regressed: %v", names)
	}
}
