// Command tango-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	tango-bench                 # run the whole quick suite
//	tango-bench -exp fig13      # one experiment
//	tango-bench -full           # paper-scale configuration (slow)
//	tango-bench -list           # list experiment IDs
//
// Output is the text-table rendering of each figure plus the notes that
// compare the measured shape against the numbers the paper reports.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/cmd/internal/profcli"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment ID to run (default: all)")
		full     = flag.Bool("full", false, "paper-scale configuration (much slower)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		seed     = flag.Int64("seed", 1, "random seed")
		shards   = flag.Int("shards", 0, "partition LC scheduling into this many region shards (>1 enables the sharded scheduler for every Tango run)")
		traceOut = flag.String("trace", "", "write lifecycle events of every run as NDJSON to this file")
		report   = flag.String("report", "", "write a suite report (JSON) to this file")
		perfDir  = flag.String("perf", "", "write a BENCH_<date>.json perf snapshot into this directory and exit (combine with -exp to also run experiments)")
		quick    = flag.Bool("perf-quick", false, "with -perf: shrink timing budgets for a fast, lower-fidelity snapshot")
		compare  = flag.Bool("compare", false, "compare two perf snapshots (usage: tango-bench -compare old.json new.json); exit 1 on regression")
		nsPct    = flag.Float64("threshold", 25, "with -compare: allowed ns/op growth in percent")
		allocPct = flag.Float64("alloc-threshold", 10, "with -compare: allowed bytes/op and allocs/op growth in percent")
		profile  = flag.String("pprof", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write an allocation profile to this file at exit")
		listen   = flag.String("listen", "", "serve live telemetry (/metrics /healthz /runinfo /trace/tail) on this host:port (port 0 picks one)")
		linger   = flag.Duration("linger", 0, "keep the telemetry server up this long after the suite finishes (requires -listen)")
		chaosOn  = flag.String("chaos", "", "arm a fault program (churn | partition | flash | all) over every run of every experiment")
		chaosSd  = flag.Int64("chaos-seed", 0, "seed for the fault program (0 = use -seed)")
		defragOn = flag.Bool("defrag", false, "run the periodic BE defragmentation pass in every run")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: tango-bench -compare old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *nsPct, *allocPct))
	}

	if *perfDir != "" {
		path, err := writePerfSnapshot(*perfDir, *seed, *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("perf: snapshot -> %s\n", path)
		if *exp == "" && !*list {
			return
		}
	}

	type entry struct {
		id  string
		fn  func(experiments.Config) *experiments.Result
		des string
	}
	wall := func(f func()) time.Duration {
		start := time.Now()
		f()
		return time.Since(start)
	}
	entries := []entry{
		{"fig1", experiments.Fig1, "industrial edge-cloud measurement (motivation)"},
		{"fig9", experiments.Fig9, "HRM vs K8s-native under P1-P3"},
		{"dvpa", experiments.DVPAMicro, "D-VPA vs native VPA scaling operation"},
		{"fig10", experiments.Fig10, "QoS re-assurance on/off"},
		{"fig11ab", experiments.Fig11ab, "LC scheduling algorithms"},
		{"dsslc-decision", func(c experiments.Config) *experiments.Result {
			return experiments.DecisionTime(c, wall)
		}, "DSS-LC decision time at 500/1000 nodes"},
		{"fig11c", experiments.Fig11c, "BE scheduling algorithms"},
		{"fig11d", experiments.Fig11d, "GNN structure ablation"},
		{"fig12", experiments.Fig12, "4x4 algorithm pairing matrix"},
		{"fig13", experiments.Fig13, "Tango vs CERES vs DSACO at scale"},
		{"failover", experiments.Failover, "extension: worker failures mid-run"},
		{"scalability", func(c experiments.Config) *experiments.Result {
			return experiments.Scalability(c, wall)
		}, "extension: decision-time scaling sweep"},
		{"shard-scale", func(c experiments.Config) *experiments.Result {
			return experiments.ShardScale(c, wall)
		}, "extension: sharded scheduler throughput at 10k+ nodes"},
		{"chaos-migration", experiments.ChaosMigration, "extension: did migration+defrag help phi under churn"},
		{"chaos-survival", experiments.ChaosSurvival, "extension: full fault mix with the survival oracle"},
		{"ablation-masking", experiments.AblationMasking, "policy context filtering ablation"},
		{"ablation-reward", experiments.AblationReward, "reward split ablation"},
		{"ablation-preemption", experiments.AblationPreemption, "BE preemption ablation"},
	}

	if *list {
		for _, e := range entries {
			fmt.Printf("%-20s %s\n", e.id, e.des)
		}
		return
	}

	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Full()
	}
	cfg.Seed = *seed
	cfg.Shards = *shards
	cfg.Chaos = *chaosOn
	cfg.ChaosSeed = *chaosSd
	cfg.Defrag = *defragOn

	var wsink *obs.WriterSink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		wsink = obs.NewWriterSink(f)
		cfg.TraceSink = wsink
	}
	// Live telemetry: the tee wraps the suite's trace sink (or a null one)
	// so /trace/tail streams whatever the file sink would record, and the
	// OnSystem hook repoints /metrics at each experiment's system as the
	// suite progresses — a scrape always sees the run in flight.
	var tsrv *telemetry.Server
	if *listen != "" {
		if cfg.TraceSink == nil {
			cfg.TraceSink = obs.NullSink{}
		}
		tee := obs.NewTeeSink(cfg.TraceSink, 512)
		cfg.TraceSink = tee
		var err error
		tsrv, err = telemetry.Start(*listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("telemetry: listening on http://%s\n", tsrv.Addr())
		cfg.OnSystem = func(sys *core.System) {
			tsrv.SetSource(sys.Metrics.Registry(), tee, telemetry.RunInfo{
				System:     "tango-bench",
				Scenario:   cfg.TraceTag,
				Seed:       cfg.Seed,
				PeriodMs:   float64(sys.Metrics.Period) / float64(time.Millisecond),
				DurationMs: float64(cfg.Duration+cfg.Drain) / float64(time.Millisecond),
				SampleRate: sys.Tracer.Sampler().Rate(),
			})
		}
	}
	stopProf, err := profcli.Start(*profile, *memprof)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	// Suite report: one entry per experiment, with the machine-readable
	// values each Result exposes and the wall time it took.
	type expReport struct {
		ID     string             `json:"id"`
		Title  string             `json:"title"`
		WallMs float64            `json:"wall_ms"`
		Values map[string]float64 `json:"values,omitempty"`
		Notes  []string           `json:"notes,omitempty"`
	}
	suite := struct {
		Schema      string            `json:"schema"`
		Config      map[string]string `json:"config"`
		Digest      string            `json:"config_digest"`
		Experiments []expReport       `json:"experiments"`
	}{
		Schema: "tango.suite-report/v1",
		Config: map[string]string{
			"seed":     fmt.Sprintf("%d", cfg.Seed),
			"duration": cfg.Duration.String(),
			"drain":    cfg.Drain.String(),
			"lc_rate":  fmt.Sprintf("%g", cfg.LCRate),
			"be_rate":  fmt.Sprintf("%g", cfg.BERate),
			"virtual":  fmt.Sprintf("%d", cfg.VirtualClusters),
			"shards":   fmt.Sprintf("%d", cfg.Shards),
			"full":     fmt.Sprintf("%t", *full),
		},
	}
	suite.Digest = obs.ConfigDigest(suite.Config)

	ran := 0
	for _, e := range entries {
		if *exp != "" && e.id != *exp {
			continue
		}
		cfg.TraceTag = e.id
		start := time.Now()
		r := e.fn(cfg)
		took := time.Since(start)
		fmt.Println(r.String())
		fmt.Printf("(%s took %v)\n\n", e.id, took.Round(time.Millisecond))
		suite.Experiments = append(suite.Experiments, expReport{
			ID: r.ID, Title: r.Title, WallMs: float64(took) / float64(time.Millisecond),
			Values: r.Values, Notes: r.Notes,
		})
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	if wsink != nil {
		flushErr := wsink.Flush()
		fmt.Printf("trace: %d lines -> %s\n", wsink.Lines, *traceOut)
		if wsink.Dropped > 0 || wsink.Err() != nil {
			fmt.Fprintf(os.Stderr, "trace: %d lines dropped (%v)\n", wsink.Dropped, wsink.Err())
		}
		if flushErr != nil {
			os.Exit(1)
		}
	}
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&suite); err == nil {
			err = f.Close()
		} else {
			_ = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("report: %s (config digest %s)\n", *report, suite.Digest)
	}
	if tsrv != nil {
		if *linger > 0 {
			fmt.Printf("telemetry: lingering %s for late scrapes\n", *linger)
			time.Sleep(*linger)
		}
		_ = tsrv.Close()
	}
}
