// Command tango-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	tango-bench                 # run the whole quick suite
//	tango-bench -exp fig13      # one experiment
//	tango-bench -full           # paper-scale configuration (slow)
//	tango-bench -list           # list experiment IDs
//
// Output is the text-table rendering of each figure plus the notes that
// compare the measured shape against the numbers the paper reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp  = flag.String("exp", "", "experiment ID to run (default: all)")
		full = flag.Bool("full", false, "paper-scale configuration (much slower)")
		list = flag.Bool("list", false, "list experiment IDs and exit")
		seed = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	type entry struct {
		id  string
		fn  func(experiments.Config) *experiments.Result
		des string
	}
	wall := func(f func()) time.Duration {
		start := time.Now()
		f()
		return time.Since(start)
	}
	entries := []entry{
		{"fig1", experiments.Fig1, "industrial edge-cloud measurement (motivation)"},
		{"fig9", experiments.Fig9, "HRM vs K8s-native under P1-P3"},
		{"dvpa", experiments.DVPAMicro, "D-VPA vs native VPA scaling operation"},
		{"fig10", experiments.Fig10, "QoS re-assurance on/off"},
		{"fig11ab", experiments.Fig11ab, "LC scheduling algorithms"},
		{"dsslc-decision", func(c experiments.Config) *experiments.Result {
			return experiments.DecisionTime(c, wall)
		}, "DSS-LC decision time at 500/1000 nodes"},
		{"fig11c", experiments.Fig11c, "BE scheduling algorithms"},
		{"fig11d", experiments.Fig11d, "GNN structure ablation"},
		{"fig12", experiments.Fig12, "4x4 algorithm pairing matrix"},
		{"fig13", experiments.Fig13, "Tango vs CERES vs DSACO at scale"},
		{"failover", experiments.Failover, "extension: worker failures mid-run"},
		{"scalability", func(c experiments.Config) *experiments.Result {
			return experiments.Scalability(c, wall)
		}, "extension: decision-time scaling sweep"},
		{"ablation-masking", experiments.AblationMasking, "policy context filtering ablation"},
		{"ablation-reward", experiments.AblationReward, "reward split ablation"},
		{"ablation-preemption", experiments.AblationPreemption, "BE preemption ablation"},
	}

	if *list {
		for _, e := range entries {
			fmt.Printf("%-20s %s\n", e.id, e.des)
		}
		return
	}

	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Full()
	}
	cfg.Seed = *seed

	ran := 0
	for _, e := range entries {
		if *exp != "" && e.id != *exp {
			continue
		}
		start := time.Now()
		r := e.fn(cfg)
		fmt.Println(r.String())
		fmt.Printf("(%s took %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
}
