package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/cgroup"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/perf"
	"repro/internal/res"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Perf snapshot: a machine-readable baseline (BENCH_<date>.json) so
// future optimization PRs have a trajectory to compare against. Three
// hot paths are timed: the DSS-LC-shaped min-cost-flow solve (and the
// Dinic max-flow on the same graph), the end-to-end engine event rate
// of a standard Tango run, and the cgroup two-level D-VPA resize. Each
// section also carries the phase profiler's per-phase ns/op and
// allocation breakdown, which is what `tango-bench -compare` diffs.

type perfSnapshot struct {
	Schema string `json:"schema"`
	Date   string `json:"date"`
	Go     string `json:"go"`
	OSArch string `json:"os_arch"`
	Seed   int64  `json:"seed"`
	Quick  bool   `json:"quick,omitempty"`

	// Solver: src -> master -> 200 workers -> sink, routing a 128-request
	// batch, Reset+re-solve per iteration on a workspace-backed graph
	// (the production DSS-LC configuration). The warm variant replays the
	// memoized first Dijkstra pass per period; solves/warm-hits come from
	// the profiled pass and prove the warm path was actually exercised.
	SolverWorkers  int     `json:"solver_workers"`
	SolverBatch    int     `json:"solver_batch"`
	SolverNsOp     float64 `json:"solver_ns_op"`
	SolverWarmNsOp float64 `json:"solver_warm_ns_op,omitempty"`
	SolverSolves   uint64  `json:"solver_solves,omitempty"`
	SolverWarmHits uint64  `json:"solver_warm_hits,omitempty"`
	DinicNsOp      float64 `json:"dinic_ns_op"`

	// Engine: PhysicalTestbed Tango run under P3; ns per fired
	// simulation event amortizes dispatch, admission and completion.
	EngineEvents  uint64  `json:"engine_events"`
	EngineEventNs float64 `json:"engine_event_ns"`
	EngineWallMs  float64 `json:"engine_wall_ms"`

	// Cgroup: one D-VPA ResizePodAndContainer (up to 4 ordered limit
	// writes) alternating between two limit pairs.
	CgroupResizeNsOp float64 `json:"cgroup_resize_ns_op"`

	// Shard: one cold sharded ScheduleRound per shard count over the
	// standard scale-suite fleet (experiments.ShardRound: shard_nodes/20
	// clusters x 20 workers, 8 LC requests per cluster, unrestricted geo
	// radius). Quick snapshots shrink the fleet; -compare only diffs rows
	// whose shard_nodes match.
	ShardNodes int        `json:"shard_nodes,omitempty"`
	ShardRows  []shardRow `json:"shard_rows,omitempty"`

	// Per-phase breakdowns from a profiled pass of each section (ns, bytes
	// and objects per Enter/Exit pair). The profiled pass is separate from
	// the ns/op timing loops above, so those stay profiler-overhead-free.
	SolverPhases []phaseRow `json:"solver_phases,omitempty"`
	EnginePhases []phaseRow `json:"engine_phases,omitempty"`
	CgroupPhases []phaseRow `json:"cgroup_phases,omitempty"`
}

// shardRow is one shard-count point of the scale-suite round.
type shardRow struct {
	Shards     int     `json:"shards"`
	WallMs     float64 `json:"wall_ms"`
	ReqsPerSec float64 `json:"reqs_per_sec"`
	Overflow   int64   `json:"overflow"`
}

// phaseRow is one phase of a profiled section, normalized per call.
type phaseRow struct {
	Phase    string  `json:"phase"`
	Calls    uint64  `json:"calls"`
	NsOp     float64 `json:"ns_op"`
	BytesOp  float64 `json:"bytes_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// phaseRows renders the non-empty phases of a profiler.
func phaseRows(p *perf.Profiler) []phaseRow {
	var out []phaseRow
	for _, s := range p.Snapshot() {
		if s.Calls == 0 {
			continue
		}
		out = append(out, phaseRow{
			Phase:    s.Phase,
			Calls:    s.Calls,
			NsOp:     float64(s.TotalNs) / float64(s.Calls),
			BytesOp:  float64(s.AllocBytes) / float64(s.Calls),
			AllocsOp: float64(s.AllocObjects) / float64(s.Calls),
		})
	}
	return out
}

// perfGraph builds the DSS-LC routing shape used by the solver timings.
func perfGraph(workers int, batch int64) (*flow.Graph, int, int) {
	g := flow.NewGraph()
	src, master, sink := g.AddNode(), g.AddNode(), g.AddNode()
	g.AddEdge(src, master, batch, 0)
	for i := 0; i < workers; i++ {
		w := g.AddNode()
		// Deterministic capacity/cost spread standing in for Eq. 2/3.
		g.AddEdge(master, w, int64(1+i%7), int64(1000+137*(i%29)))
		g.AddEdge(w, sink, int64(1+i%7), 0)
	}
	return g, src, sink
}

// timeOp reports ns/op for fn, self-scaling the iteration count until
// at least `budget` of work was measured.
func timeOp(budget time.Duration, fn func()) float64 {
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		if elapsed >= budget || iters >= 1<<20 {
			return float64(elapsed.Nanoseconds()) / float64(iters)
		}
		iters *= 4
	}
}

// cgroupMicro builds a hierarchy with one burstable pod+container and
// returns a closure performing one alternating two-level resize.
func cgroupMicro() (func(), *cgroup.Hierarchy, error) {
	h := cgroup.NewHierarchy(res.V(64000, 262144, 0))
	pod, err := h.CreatePod(cgroup.Burstable, "bench-pod", cgroup.FromVector(res.V(4000, 4096, 0)))
	if err != nil {
		return nil, nil, err
	}
	cont, err := h.CreateContainer(pod, "bench-cont", cgroup.FromVector(res.V(2000, 2048, 0)))
	if err != nil {
		return nil, nil, err
	}
	big := [2]cgroup.Limits{cgroup.FromVector(res.V(4000, 4096, 0)), cgroup.FromVector(res.V(3000, 3072, 0))}
	small := [2]cgroup.Limits{cgroup.FromVector(res.V(2000, 2048, 0)), cgroup.FromVector(res.V(1000, 1024, 0))}
	i := 0
	return func() {
		var podL, contL cgroup.Limits
		if i%2 == 0 {
			podL, contL = small[0], small[1]
		} else {
			podL, contL = big[0], big[1]
		}
		i++
		if err := h.ResizePodAndContainer(pod, cont, podL, contL); err != nil {
			panic(err)
		}
	}, h, nil
}

func writePerfSnapshot(dir string, seed int64, quick bool) (string, error) {
	const workers, batch = 200, 128
	budget := 50 * time.Millisecond
	profIters := 64
	engineDur, engineRun := 8*time.Second, 10*time.Second
	if quick {
		budget = 10 * time.Millisecond
		profIters = 8
		engineDur, engineRun = 2*time.Second, 3*time.Second
	}
	snap := perfSnapshot{
		Schema:        "tango.perf-snapshot/v1",
		Date:          time.Now().Format("2006-01-02"),
		Go:            runtime.Version(),
		OSArch:        runtime.GOOS + "/" + runtime.GOARCH,
		Seed:          seed,
		Quick:         quick,
		SolverWorkers: workers, SolverBatch: batch,
	}

	g, src, sink := perfGraph(workers, batch)
	g.SetWorkspace(flow.NewWorkspace())
	snap.SolverNsOp = timeOp(budget, func() {
		g.MinCostFlow(src, sink, batch)
		g.Reset()
	})
	snap.DinicNsOp = timeOp(budget, func() {
		g.MaxFlowDinic(src, sink)
		g.Reset()
	})
	wg, wsrc, wsink := perfGraph(workers, batch)
	wg.SetWorkspace(flow.NewWorkspace())
	wg.WarmStart(wsrc, wsink, batch) // capture the memo
	wg.Reset()
	snap.SolverWarmNsOp = timeOp(budget, func() {
		wg.WarmStart(wsrc, wsink, batch)
		wg.Reset()
	})

	// Profiled solver pass (separate graph so the timing loops above stay
	// free of profiler overhead).
	sp := perf.New()
	pg, psrc, psink := perfGraph(workers, batch)
	pg.SetProfiler(sp)
	pws := flow.NewWorkspace()
	pg.SetWorkspace(pws)
	for i := 0; i < profIters; i++ {
		pg.MinCostFlow(psrc, psink, batch)
		pg.Reset()
		pg.WarmStart(psrc, psink, batch)
		pg.Reset()
		pg.MaxFlowDinic(psrc, psink)
		pg.Reset()
	}
	snap.SolverPhases = phaseRows(sp)
	snap.SolverSolves, snap.SolverWarmHits = pws.Solves, pws.WarmHits

	// Engine run, profiled: phase breakdown rides along and its overhead
	// (two runtime/metrics reads per phase) is part of the measured rate,
	// identically in baseline and candidate snapshots.
	tp := topo.PhysicalTestbed()
	var clusters []topo.ClusterID
	for _, c := range tp.Clusters {
		clusters = append(clusters, c.ID)
	}
	gen := trace.DefaultGenConfig(clusters, trace.P3, engineDur, seed)
	reqs := trace.Generate(gen)
	opts := core.Tango(tp, seed)
	ep := perf.New()
	opts.Profiler = ep
	sys := core.New(opts)
	sys.Inject(reqs)
	start := time.Now()
	sys.Run(engineRun)
	wall := time.Since(start)
	snap.EngineEvents = sys.Sim.Fired()
	snap.EngineWallMs = float64(wall) / float64(time.Millisecond)
	if snap.EngineEvents > 0 {
		snap.EngineEventNs = float64(wall.Nanoseconds()) / float64(snap.EngineEvents)
	}
	snap.EnginePhases = phaseRows(ep)

	// Sharded scheduler sweep: each point schedules the identical cold
	// round once (a single wall-clock measurement, not a timeOp loop — a
	// second pass would ride the warm-start memo and stop being the cold
	// round the trajectory tracks).
	snap.ShardNodes = 10_000
	if quick {
		snap.ShardNodes = 2_000
	}
	for _, k := range []int{1, 2, 4, 8} {
		el, reqs, overflow := experiments.ShardRound(seed, snap.ShardNodes, k, func(fn func()) time.Duration {
			start := time.Now()
			fn()
			return time.Since(start)
		})
		snap.ShardRows = append(snap.ShardRows, shardRow{
			Shards:     k,
			WallMs:     float64(el) / float64(time.Millisecond),
			ReqsPerSec: float64(reqs) / el.Seconds(),
			Overflow:   overflow,
		})
	}

	// Cgroup D-VPA resize micro.
	resize, _, err := cgroupMicro()
	if err != nil {
		return "", err
	}
	snap.CgroupResizeNsOp = timeOp(budget, resize)
	cp := perf.New()
	presize, ph, err := cgroupMicro()
	if err != nil {
		return "", err
	}
	ph.SetProfiler(cp)
	for i := 0; i < profIters; i++ {
		presize()
	}
	snap.CgroupPhases = phaseRows(cp)

	path := filepath.Join(dir, "BENCH_"+snap.Date+".json")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&snap); err != nil {
		_ = f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	fmt.Printf("perf: solver %.0f ns/op (warm %.0f, %d/%d warm hits), dinic %.0f ns/op, engine %.0f ns/event (%d events), cgroup resize %.0f ns/op\n",
		snap.SolverNsOp, snap.SolverWarmNsOp, snap.SolverWarmHits, snap.SolverSolves,
		snap.DinicNsOp, snap.EngineEventNs, snap.EngineEvents, snap.CgroupResizeNsOp)
	fmt.Printf("perf: shard round (%d nodes):", snap.ShardNodes)
	for _, r := range snap.ShardRows {
		fmt.Printf(" k=%d %.0fms (%.0f req/s)", r.Shards, r.WallMs, r.ReqsPerSec)
	}
	fmt.Println()
	return path, nil
}
