package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Perf snapshot: a small machine-readable baseline (BENCH_<date>.json)
// so future optimization PRs have a trajectory to compare against. Two
// hot paths are timed: the DSS-LC-shaped min-cost-flow solve (and the
// Dinic max-flow on the same graph) and the end-to-end engine event
// rate of a standard Tango run.

type perfSnapshot struct {
	Schema string `json:"schema"`
	Date   string `json:"date"`
	Go     string `json:"go"`
	OSArch string `json:"os_arch"`
	Seed   int64  `json:"seed"`

	// Solver: src -> master -> 200 workers -> sink, routing a 128-request
	// batch, Reset+re-solve per iteration.
	SolverWorkers int     `json:"solver_workers"`
	SolverBatch   int     `json:"solver_batch"`
	SolverNsOp    float64 `json:"solver_ns_op"`
	DinicNsOp     float64 `json:"dinic_ns_op"`

	// Engine: PhysicalTestbed Tango run under P3; ns per fired
	// simulation event amortizes dispatch, admission and completion.
	EngineEvents  uint64  `json:"engine_events"`
	EngineEventNs float64 `json:"engine_event_ns"`
	EngineWallMs  float64 `json:"engine_wall_ms"`
}

// perfGraph builds the DSS-LC routing shape used by the solver timings.
func perfGraph(workers int, batch int64) (*flow.Graph, int, int) {
	g := flow.NewGraph()
	src, master, sink := g.AddNode(), g.AddNode(), g.AddNode()
	g.AddEdge(src, master, batch, 0)
	for i := 0; i < workers; i++ {
		w := g.AddNode()
		// Deterministic capacity/cost spread standing in for Eq. 2/3.
		g.AddEdge(master, w, int64(1+i%7), int64(1000+137*(i%29)))
		g.AddEdge(w, sink, int64(1+i%7), 0)
	}
	return g, src, sink
}

// timeOp reports ns/op for fn, self-scaling the iteration count until
// at least 50 ms of work was measured.
func timeOp(fn func()) float64 {
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		if elapsed >= 50*time.Millisecond || iters >= 1<<20 {
			return float64(elapsed.Nanoseconds()) / float64(iters)
		}
		iters *= 4
	}
}

func writePerfSnapshot(dir string, seed int64) (string, error) {
	const workers, batch = 200, 128
	snap := perfSnapshot{
		Schema:        "tango.perf-snapshot/v1",
		Date:          time.Now().Format("2006-01-02"),
		Go:            runtime.Version(),
		OSArch:        runtime.GOOS + "/" + runtime.GOARCH,
		Seed:          seed,
		SolverWorkers: workers, SolverBatch: batch,
	}

	g, src, sink := perfGraph(workers, batch)
	snap.SolverNsOp = timeOp(func() {
		g.MinCostFlow(src, sink, batch)
		g.Reset()
	})
	snap.DinicNsOp = timeOp(func() {
		g.MaxFlowDinic(src, sink)
		g.Reset()
	})

	tp := topo.PhysicalTestbed()
	var clusters []topo.ClusterID
	for _, c := range tp.Clusters {
		clusters = append(clusters, c.ID)
	}
	gen := trace.DefaultGenConfig(clusters, trace.P3, 8*time.Second, seed)
	reqs := trace.Generate(gen)
	sys := core.New(core.Tango(tp, seed))
	sys.Inject(reqs)
	start := time.Now()
	sys.Run(10 * time.Second)
	wall := time.Since(start)
	snap.EngineEvents = sys.Sim.Fired()
	snap.EngineWallMs = float64(wall) / float64(time.Millisecond)
	if snap.EngineEvents > 0 {
		snap.EngineEventNs = float64(wall.Nanoseconds()) / float64(snap.EngineEvents)
	}

	path := filepath.Join(dir, "BENCH_"+snap.Date+".json")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&snap); err != nil {
		_ = f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	fmt.Printf("perf: solver %.0f ns/op, dinic %.0f ns/op, engine %.0f ns/event (%d events)\n",
		snap.SolverNsOp, snap.DinicNsOp, snap.EngineEventNs, snap.EngineEvents)
	return path, nil
}
