// tango-trace analyzes the NDJSON trace stream written by tango-sim
// and tango-bench (-trace): per-request span breakdowns, scheduling
// decisions active during QoS-violation episodes, and Chrome
// trace_event export for Perfetto.
//
// Usage:
//
//	tango-trace top [-k 10] [trace.ndjson]
//	tango-trace violations [-gap 1s] [-lookback 1s] [trace.ndjson]
//	tango-trace chrome [trace.ndjson] > trace.json
//	tango-trace summary [trace.ndjson]
//
// The trace is read from the file argument, or stdin when omitted, so
// it composes as: tango-sim -trace /dev/stdout ... | tango-trace top
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/tanalysis"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "top":
		err = cmdTop(args)
	case "violations":
		err = cmdViolations(args)
	case "chrome":
		err = cmdChrome(args)
	case "summary":
		err = cmdSummary(args)
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "tango-trace: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tango-trace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `tango-trace — analyze Tango NDJSON traces

commands:
  top        top-k slowest requests with per-span latency breakdown
  violations per-service QoS-violation episodes and the decisions active during them
  chrome     export to Chrome trace_event JSON (Perfetto / about://tracing)
  summary    line and span/event/decision counts

The trace file is the last argument; stdin is read when omitted.
`)
}

// load opens the trailing file argument (or stdin), parses it, and
// applies the -tag filter. Span/decision IDs restart per run, so when a
// multi-run trace (tango-bench writes every run to one file) is analyzed
// unfiltered, a hint listing the tags is printed.
func load(fs *flag.FlagSet, tag string) (*tanalysis.Trace, error) {
	var r io.Reader = os.Stdin
	if fs.NArg() > 1 {
		return nil, fmt.Errorf("at most one trace file argument, got %d", fs.NArg())
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	t, err := tanalysis.Load(r)
	if err != nil {
		return nil, err
	}
	if t.TruncatedTail {
		fmt.Fprintln(os.Stderr, "tango-trace: warning: trace ends mid-line (producer crashed or still writing); partial tail discarded")
	}
	if t.Empty() {
		src := "stdin"
		if fs.NArg() == 1 {
			src = fs.Arg(0)
		}
		if t.Skipped > 0 {
			return nil, fmt.Errorf("no trace records in %s: %d line(s) present but none parsed as span/event/decision (is this a Tango NDJSON trace?)", src, t.Skipped)
		}
		return nil, fmt.Errorf("no trace records in %s: stream is empty (did the run use -trace?)", src)
	}
	if tag != "" {
		t = t.FilterTag(tag)
		if len(t.Spans)+len(t.Events)+len(t.Decisions) == 0 {
			return nil, fmt.Errorf("no lines tagged %q in the trace", tag)
		}
	} else if tags := t.Tags(); len(tags) > 1 {
		fmt.Fprintf(os.Stderr, "tango-trace: trace holds %d runs %v; pass -tag to analyze one\n", len(tags), tags)
	}
	return t, nil
}

// tagFlag registers the -tag filter common to every subcommand.
func tagFlag(fs *flag.FlagSet) *string {
	return fs.String("tag", "", "analyze only lines from the run with this tag")
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	k := fs.Int("k", 10, "number of slowest requests to show")
	class := fs.String("class", "", "filter by request class (LC, BE)")
	tag := tagFlag(fs)
	fs.Parse(args)
	t, err := load(fs, *tag)
	if err != nil {
		return err
	}
	rts := t.TopK(0)
	if *class != "" {
		kept := rts[:0]
		for _, rt := range rts {
			if rt.Root.Class == *class {
				kept = append(kept, rt)
			}
		}
		rts = kept
	}
	if *k > 0 && *k < len(rts) {
		rts = rts[:*k]
	}
	tb := metrics.NewTable(fmt.Sprintf("top %d slowest requests", len(rts)),
		"req", "class", "svc", "node", "e2e-ms", "decision", "fate", "breakdown")
	for i := range rts {
		rt := &rts[i]
		fate := rt.Root.Detail
		if fate == "" {
			fate = "ok"
		}
		dec := "-"
		if rt.Root.Decision >= 0 {
			dec = fmt.Sprintf("%d", rt.Root.Decision)
		}
		tb.AddRowF(rt.Root.Req, rt.Root.Class, rt.Root.Service, rt.Root.Node,
			ms(rt.Root.Duration()), dec, fate, rt.BreakdownLine())
	}
	fmt.Print(tb.String())
	return nil
}

func cmdViolations(args []string) error {
	fs := flag.NewFlagSet("violations", flag.ExitOnError)
	gap := fs.Duration("gap", time.Second, "max gap between violations within one episode")
	lookback := fs.Duration("lookback", time.Second, "attribute decisions up to this long before an episode")
	showCands := fs.Bool("cands", false, "expand each decision's candidate table")
	tag := tagFlag(fs)
	fs.Parse(args)
	t, err := load(fs, *tag)
	if err != nil {
		return err
	}
	eps := t.Episodes(obs.SLOConfig{Gap: *gap, Lookback: *lookback})
	if len(eps) == 0 {
		fmt.Println("no violation episodes")
		return nil
	}
	for _, se := range eps {
		fmt.Printf("service %d (%s): %d episode(s)\n", se.Service, se.Class, len(se.Episodes))
		for i, ep := range se.Episodes {
			fmt.Printf("  episode %d: %.1f–%.1f ms, %d violation(s), %d decision(s) active\n",
				i+1, ms(ep.Start), ms(ep.End), ep.Violations, ep.DecisionTotal)
			if len(ep.Decisions) > 0 {
				fmt.Printf("    decisions: %v\n", ep.Decisions)
			}
			if *showCands {
				for _, id := range ep.Decisions {
					d := t.DecisionByID(id)
					if d == nil {
						continue
					}
					fmt.Printf("    #%d %s/%s cluster=%d svc=%d batch=%d routed=%d\n",
						d.ID, d.Algo, d.Phase, d.Cluster, d.Service, d.Batch, d.Routed)
					for _, c := range d.Cands {
						fmt.Printf("      node=%d cap=%d cost_us=%d link=%d flow=%d %s\n",
							c.Node, c.Capacity, c.CostUS, c.LinkCap, c.Flow, c.Reject)
					}
				}
			}
		}
	}
	return nil
}

func cmdChrome(args []string) error {
	fs := flag.NewFlagSet("chrome", flag.ExitOnError)
	tag := tagFlag(fs)
	fs.Parse(args)
	t, err := load(fs, *tag)
	if err != nil {
		return err
	}
	return t.WriteChrome(os.Stdout)
}

func cmdSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	tag := tagFlag(fs)
	fs.Parse(args)
	t, err := load(fs, *tag)
	if err != nil {
		return err
	}
	fmt.Printf("events: %d  spans: %d  decisions: %d  skipped lines: %d\n",
		len(t.Events), len(t.Spans), len(t.Decisions), t.Skipped)
	byName := map[string]struct {
		n   int
		tot time.Duration
	}{}
	for i := range t.Spans {
		s := &t.Spans[i]
		agg := byName[s.Name]
		agg.n++
		agg.tot += s.Duration()
		byName[s.Name] = agg
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	tb := metrics.NewTable("span durations", "name", "count", "total-ms", "mean-ms")
	for _, n := range names {
		agg := byName[n]
		tb.AddRowF(n, agg.n, ms(agg.tot), ms(agg.tot)/float64(agg.n))
	}
	fmt.Print(tb.String())
	rts := t.Requests()
	var tiled, exact int
	for i := range rts {
		rt := &rts[i]
		if rt.Root.Detail != "" || len(rt.Children) == 0 {
			continue
		}
		tiled++
		if rt.ChildSum() == rt.Root.Duration() {
			exact++
		}
	}
	if tiled > 0 {
		fmt.Printf("tiling: %d/%d completed requests have child spans summing exactly to e2e latency\n",
			exact, tiled)
	}
	return nil
}
