// Command tango-sim runs one mixed-service edge-cloud simulation and
// prints the per-period metrics and the final summary.
//
// Usage examples:
//
//	tango-sim                                   # Tango on the 4-cluster testbed
//	tango-sim -system ceres -pattern P1         # CERES under pattern P1
//	tango-sim -virtual 100 -duration 30s        # dual-space scale
//	tango-sim -system k8s -series               # print the period series
//	tango-sim -trace out.ndjson -report r.json  # export events + run report
//	tango-sim -chaos churn -defrag -verify      # fault injection + defrag
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/cmd/internal/profcli"
	"repro/internal/baselines"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/trace"
)

func main() {
	var (
		system   = flag.String("system", "tango", "system to run: tango | k8s | ceres | dsaco")
		pattern  = flag.String("pattern", "P3", "workload pattern: P1 | P2 | P3 | diurnal | wavy | normal")
		duration = flag.Duration("duration", 20*time.Second, "workload duration (virtual time)")
		drain    = flag.Duration("drain", 8*time.Second, "extra virtual time to drain in-flight work")
		virtual  = flag.Int("virtual", 0, "additional virtual clusters beyond the 4 physical ones")
		topoFile = flag.String("topo", "", "load the topology from a JSON file (see topo.ReadJSON)")
		lcRate   = flag.Float64("lc-rate", 60, "LC requests per second (system-wide)")
		beRate   = flag.Float64("be-rate", 25, "BE requests per second (system-wide)")
		seed     = flag.Int64("seed", 1, "random seed")
		shards   = flag.Int("shards", 0, "partition LC scheduling into this many region shards (>1, tango only)")
		series   = flag.Bool("series", false, "print per-period series")
		traceOut = flag.String("trace", "", "write lifecycle events as NDJSON to this file")
		report   = flag.String("report", "", "write the run report (JSON) to this file")
		digest   = flag.Bool("digest", false, "print the replay digests (trace stream + normalized report)")
		verify   = flag.Bool("verify", false, "run invariant sweeps and flow-solve cross-checks; exit 1 on any violation")
		profile  = flag.String("pprof", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write an allocation profile to this file at exit")
		perfOn   = flag.Bool("perf", false, "profile solver/engine/cgroup phases and Go runtime health; prints a phase table (excluded from -digest)")
		listen   = flag.String("listen", "", "serve live telemetry (/metrics /healthz /runinfo /trace/tail) on this host:port (port 0 picks one)")
		linger   = flag.Duration("linger", 0, "keep the telemetry server up this long after the run finishes (requires -listen)")
		spanRate = flag.Float64("span-sample", 0, "deterministic head-based span sampling rate in (0,1]; 0 or 1 = record every span")
		chaosOn  = flag.String("chaos", "", "inject a seed-randomized fault program: churn | partition | flash | all")
		chaosSd  = flag.Int64("chaos-seed", 0, "seed for the fault program (0 = use -seed)")
		defragOn = flag.Bool("defrag", false, "run the periodic BE defragmentation pass")
	)
	flag.Parse()

	var tp *topo.Topology
	switch {
	case *topoFile != "":
		f, err := os.Open(*topoFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tp, err = topo.ReadJSON(f)
		_ = f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *virtual > 0:
		tp = topo.DualSpace(*virtual, *seed)
	default:
		tp = topo.PhysicalTestbed()
	}

	var pat trace.Pattern
	switch *pattern {
	case "P1":
		pat = trace.P1
	case "P2":
		pat = trace.P2
	case "P3":
		pat = trace.P3
	case "diurnal":
		pat = trace.Diurnal
	case "wavy":
		pat = trace.Wavy
	case "normal":
		pat = trace.Normal
	default:
		fmt.Fprintf(os.Stderr, "unknown pattern %q\n", *pattern)
		os.Exit(2)
	}

	var clusters []topo.ClusterID
	for _, c := range tp.Clusters {
		clusters = append(clusters, c.ID)
	}
	gen := trace.DefaultGenConfig(clusters, pat, *duration, *seed)
	gen.LCRatePerSec = *lcRate
	gen.BERatePerSec = *beRate
	reqs := trace.Generate(gen)

	var opts core.Options
	switch *system {
	case "tango":
		opts = core.Tango(tp, *seed)
	case "k8s":
		opts = baselines.K8sNative(tp, reqs, *seed)
	case "ceres":
		opts = baselines.CERES(tp, *seed)
	case "dsaco":
		opts = baselines.DSACO(tp, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}

	// Observability: -trace streams NDJSON events; -report alone still
	// needs a tracer (for the event counts), so it gets a discarding sink.
	// -digest wraps whichever sink is active in a hashing sink (tracing
	// must be on for the stream digest to cover the run).
	var wsink *obs.WriterSink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		wsink = obs.NewWriterSink(f)
		opts.TraceSink = wsink
	} else if *report != "" || *digest || *listen != "" {
		opts.TraceSink = obs.NullSink{}
	}
	var dsink *obs.DigestSink
	if *digest {
		dsink = obs.NewDigestSink(opts.TraceSink)
		opts.TraceSink = dsink
	}
	// The live tee wraps the whole chain so /trace/tail sees exactly the
	// stream the file/digest sinks record.
	var tee *obs.TeeSink
	if *listen != "" {
		tee = obs.NewTeeSink(opts.TraceSink, 512)
		opts.TraceSink = tee
	}
	opts.TraceTag = *system
	opts.SpanSampleRate = *spanRate
	if *shards > 0 {
		// Only systems on the default DSS-LC react; baselines install
		// their own LC scheduler and ignore the knob.
		opts.LCShards = *shards
	}
	opts.Verify = *verify
	var prog chaos.Program
	if *chaosOn != "" {
		cs := *chaosSd
		if cs == 0 {
			cs = *seed
		}
		var err error
		prog, err = chaos.Preset(*chaosOn, tp, *duration, cs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts.Chaos = &prog
	}
	if *defragOn {
		opts.Defrag = &chaos.DefragConfig{}
	}
	var prof *perf.Profiler
	if *perfOn {
		prof = perf.New()
		// Label CPU samples by phase when both profiles are requested.
		prof.SetLabels(*profile != "")
		opts.Profiler = prof
	}

	var tsrv *telemetry.Server
	if *listen != "" {
		var err error
		tsrv, err = telemetry.Start(*listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("telemetry: listening on http://%s\n", tsrv.Addr())
	}

	fmt.Printf("system=%s pattern=%s clusters=%d workers=%d requests=%d (LC %d / BE %d)\n",
		*system, pat, len(tp.Clusters), len(tp.Nodes)-len(tp.Clusters), len(reqs),
		countClass(reqs, trace.LC), countClass(reqs, trace.BE))

	stopProf, err := profcli.Start(*profile, *memprof)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	start := time.Now()
	sys := core.New(opts)
	if tsrv != nil {
		tsrv.SetSource(sys.Metrics.Registry(), tee, telemetry.RunInfo{
			System:     *system,
			Scenario:   *pattern,
			Seed:       *seed,
			PeriodMs:   float64(sys.Metrics.Period) / float64(time.Millisecond),
			DurationMs: float64(*duration+*drain) / float64(time.Millisecond),
			SampleRate: sys.Tracer.Sampler().Rate(),
		})
	}
	sys.Inject(reqs)
	sys.Run(*duration + *drain)
	elapsed := time.Since(start)

	if wsink != nil {
		flushErr := wsink.Flush()
		fmt.Printf("trace: %d events, %d spans, %d decisions (%d lines) -> %s\n",
			sys.Tracer.Emitted(), sys.Tracer.SpanCount(), sys.Tracer.DecisionCount(),
			wsink.Lines, *traceOut)
		if wsink.Dropped > 0 || wsink.Err() != nil {
			fmt.Fprintf(os.Stderr, "trace: %d lines dropped (%v)\n", wsink.Dropped, wsink.Err())
		}
		if flushErr != nil {
			os.Exit(1)
		}
	}
	var rep *obs.Report
	if *report != "" || *digest {
		rep = sys.Report(*system, elapsed)
	}
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := rep.Write(f); err == nil {
			err = f.Close()
		} else {
			_ = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("report: %s (config digest %s)\n", *report, rep.ConfigDigest)
	}
	if *digest {
		// Replay contract: identical scenario + seed => identical digests
		// (the report digest is normalized over wall-clock fields).
		fmt.Printf("digest: stream=%s report=%s records=%d\n",
			dsink.Sum(), obs.ReportDigest(rep), dsink.Records())
	}

	sum := sys.Summarize(*system)
	tb := metrics.NewTable("summary", "metric", "value")
	tb.AddRowF("LC scheduler", sum.LCSched)
	tb.AddRowF("BE scheduler", sum.BESched)
	tb.AddRowF("QoS satisfaction rate", sum.QoSRate)
	tb.AddRowF("BE throughput (completed)", sum.Throughput)
	tb.AddRowF("mean utilization %", sum.MeanUtil*100)
	tb.AddRowF("abandoned LC requests", sum.Abandoned)
	tb.AddRowF("mean LC latency ms", sum.MeanLCLatMs)
	tb.AddRowF("virtual time simulated", *duration+*drain)
	tb.AddRowF("wall time", elapsed.Round(time.Millisecond))
	fmt.Println(tb.String())

	if sys.Chaos != nil || sys.Defrag != nil {
		ct := metrics.NewTable("chaos", "metric", "value")
		if inj := sys.Chaos; inj != nil {
			p := inj.Program()
			ct.AddRowF("fault program", p.Name)
			ct.AddRowF("program digest", p.Digest()[:16])
			ct.AddRowF("faults applied / cleared", fmt.Sprintf("%d / %d", inj.Applied, inj.Cleared))
			ct.AddRowF("flash-crowd requests injected", inj.Injected)
			sys.SLO.Finalize()
			attr, total := inj.AttributedEpisodes(sys.SLO)
			ct.AddRowF("SLO episodes in fault windows", fmt.Sprintf("%d / %d", attr, total))
		}
		ct.AddRowF("live migrations", sys.Engine.Migrations)
		if df := sys.Defrag; df != nil {
			ct.AddRowF("defrag passes / moves", fmt.Sprintf("%d / %d", df.Passes, df.Moves))
		}
		fmt.Println(ct.String())
	}

	if prof != nil {
		pt := metrics.NewTable("perf phases (host wall clock)",
			"phase", "calls", "total", "self", "alloc", "objects")
		for _, ps := range prof.Snapshot() {
			pt.AddRowF(ps.Phase, ps.Calls,
				time.Duration(ps.TotalNs).Round(time.Microsecond),
				time.Duration(ps.SelfNs).Round(time.Microsecond),
				ps.AllocBytes, ps.AllocObjects)
		}
		fmt.Println(pt.String())
	}

	if *series {
		m := sys.Metrics
		st := metrics.NewTable("per-period series (800ms periods)",
			"period", "util", "lc-util", "be-util", "qos", "be-done", "abandoned", "p95-ms")
		for i := range m.UtilSeries.Values {
			st.AddRowF(i,
				m.UtilSeries.Values[i], m.LCUtilSeries.Values[i], m.BEUtilSeries.Values[i],
				m.QoSRateSeries.Values[i], m.ThroughputSer.Values[i],
				m.AbandonedSeries.Values[i], m.TailLatencySer.Values[i])
		}
		fmt.Println(st.String())
	}

	if *verify {
		v := sys.Verifier
		fmt.Printf("verify: %d checks, %d violation(s)\n", v.Checks, v.Total)
		if err := v.Err(); err != nil {
			for _, viol := range v.Violations {
				fmt.Fprintf(os.Stderr, "verify: %s\n", viol)
			}
			os.Exit(1)
		}
	}

	if tsrv != nil {
		if *linger > 0 {
			fmt.Printf("telemetry: lingering %s for late scrapes\n", *linger)
			time.Sleep(*linger)
		}
		_ = tsrv.Close()
	}
}

func countClass(reqs []trace.Request, c trace.Class) int {
	n := 0
	for _, r := range reqs {
		if r.Class == c {
			n++
		}
	}
	return n
}
