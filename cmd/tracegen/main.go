// Command tracegen generates synthetic mixed-service workload traces
// (the stand-in for the 2019 Google cluster-data, see internal/trace)
// and writes them as CSV.
//
// Usage:
//
//	tracegen -duration 60s -pattern diurnal -clusters 8 > trace.csv
//	tracegen -stats -duration 60s            # summary only
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/topo"
	"repro/internal/trace"
)

func main() {
	var (
		duration = flag.Duration("duration", 30*time.Second, "trace duration")
		pattern  = flag.String("pattern", "P3", "P1 | P2 | P3 | diurnal")
		clusters = flag.Int("clusters", 4, "number of clusters receiving load")
		lcRate   = flag.Float64("lc-rate", 60, "LC requests/second")
		beRate   = flag.Float64("be-rate", 25, "BE requests/second")
		seed     = flag.Int64("seed", 1, "random seed")
		stats    = flag.Bool("stats", false, "print summary statistics instead of CSV")
	)
	flag.Parse()

	var pat trace.Pattern
	switch *pattern {
	case "P1":
		pat = trace.P1
	case "P2":
		pat = trace.P2
	case "P3":
		pat = trace.P3
	case "diurnal":
		pat = trace.Diurnal
	default:
		fmt.Fprintf(os.Stderr, "unknown pattern %q\n", *pattern)
		os.Exit(2)
	}

	ids := make([]topo.ClusterID, *clusters)
	for i := range ids {
		ids[i] = topo.ClusterID(i)
	}
	cfg := trace.DefaultGenConfig(ids, pat, *duration, *seed)
	cfg.LCRatePerSec = *lcRate
	cfg.BERatePerSec = *beRate
	reqs := trace.Generate(cfg)

	if *stats {
		s := trace.Summarize(reqs)
		fmt.Printf("requests: %d total, %d LC, %d BE\n", s.Total, s.LCCount, s.BECount)
		cat := trace.DefaultCatalog()
		var types []trace.TypeID
		for t := range s.PerType {
			types = append(types, t)
		}
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		for _, t := range types {
			fmt.Printf("  type %d (%-16s): %6d\n", t, cat.Type(t).Name, s.PerType[t])
		}
		var cs []topo.ClusterID
		for c := range s.PerCluster {
			cs = append(cs, c)
		}
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
		for _, c := range cs {
			fmt.Printf("  cluster %d: %6d\n", c, s.PerCluster[c])
		}
		return
	}

	if err := trace.WriteCSV(os.Stdout, reqs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
