// Package profcli is the pprof plumbing shared by the tango CLIs: one
// Start call arms the CPU profile (-pprof) and the heap profile
// (-memprofile), and the returned stop function finalizes both.
package profcli

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling. Either path may be empty; with both empty the
// returned stop is a no-op. The stop function must be called exactly
// once (defer it): it stops the CPU profile and writes the allocation
// profile, returning the first error encountered.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				first = err
			}
		}
		if memPath != "" {
			if err := writeAllocProfile(memPath); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}

// writeAllocProfile forces a GC (so the profile reflects live objects
// accurately) and writes the allocs profile, which covers every
// allocation since process start.
func writeAllocProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
